// Command mcsreplay closes the measurement loop: it generates a small
// synthetic week, replays every file operation through the real
// storage service (metadata server + front-end over loopback HTTP) in
// compressed wall time with virtual timestamps, and then runs session
// identification over the logs the front-end recorded — verifying that
// the service's own logging reproduces the session structure of the
// source trace.
//
// File sizes are scaled down (default 1/64) so the replay moves real
// bytes without gigabytes of traffic; session structure, operation
// counts and dedup behaviour are unaffected.
//
// Usage:
//
//	mcsreplay -users 40 -scale 64
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/session"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
	"mcloud/internal/workload"
)

func main() {
	var (
		users    = flag.Int("users", 40, "mobile users in the replayed week")
		seed     = flag.Uint64("seed", 1, "workload seed")
		scale    = flag.Int64("scale", 64, "divide file sizes by this factor for the replay")
		traceSmp = flag.Int("tracesample", 8, "trace every Nth replayed operation and report the slowest (0 disables tracing)")
	)
	flag.Parse()

	// 1. Generate the source trace.
	g, err := workload.New(workload.Config{Users: *users, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	srcLogs := g.Generate()
	fmt.Printf("source trace: %d logs\n", len(srcLogs))

	// 2. Bring up the service.
	store := storage.NewMemStore()
	meta := storage.NewMetadata()
	collector := &storage.Collector{}
	var tracer *tracing.Tracer
	if *traceSmp > 0 {
		tracer = tracing.New(tracing.Config{Node: "replay", Sample: *traceSmp})
	}
	fe := storage.NewFrontEnd(storage.FrontEndConfig{Store: store, Meta: meta, Sink: collector, Tracer: tracer})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: fe.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	meta.AddFrontEnd("http://" + ln.Addr().String())
	metaLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	metaSrv := &http.Server{Handler: meta.Handler()}
	go metaSrv.Serve(metaLn)
	defer metaSrv.Close()
	metaURL := "http://" + metaLn.Addr().String()

	// 3. Replay: reconstruct (file op -> size) from the trace and
	//    drive the protocol with virtual timestamps.
	type fileOp struct {
		at    time.Time
		log   trace.Log
		bytes int64 // size reassembled from the chunk records
	}
	var ops []fileOp
	// Chunk records follow their file operation in per-user time
	// order; attribute each chunk to the latest matching operation of
	// the same user, device and direction.
	type key struct {
		user, device uint64
		store        bool
	}
	lastOp := map[key]int{}
	for _, l := range srcLogs {
		k := key{user: l.UserID, device: l.DeviceID, store: l.Type.Store()}
		switch {
		case l.Type.FileOp():
			ops = append(ops, fileOp{at: l.Time, log: l})
			lastOp[k] = len(ops) - 1
		case l.Type.Chunk():
			if idx, ok := lastOp[k]; ok {
				ops[idx].bytes += l.Bytes
			}
		}
	}

	wallStart := time.Now()
	content := randx.New(*seed)
	urls := map[uint64][]string{} // per-user stored URLs for retrievals
	var allURLs []string          // global catalog: URL-shared content
	var replayed, storeOps, retrOps, dedups, skipped int
	var bytesMoved int64

	for _, op := range ops {
		virtual := op.at
		client := &storage.Client{
			MetaURL:  metaURL,
			UserID:   op.log.UserID,
			DeviceID: op.log.DeviceID,
			Device:   op.log.Device,
			SimRTT:   op.log.RTT,
			Proxied:  op.log.Proxied,
			SimClock: func() time.Time { return virtual },
			Tracer:   tracer,
		}
		size := op.bytes / *scale
		if size < 4<<10 {
			size = 4 << 10
		}
		if op.log.Type == trace.FileStore {
			data := make([]byte, size)
			cs := content.Split()
			for j := range data {
				data[j] = byte(cs.Uint64())
			}
			res, err := client.StoreFile(fmt.Sprintf("u%d-%d.bin", op.log.UserID, replayed), data)
			if err != nil {
				fatal(err)
			}
			if res.Deduplicated {
				dedups++
			}
			urls[op.log.UserID] = append(urls[op.log.UserID], res.URL)
			allURLs = append(allURLs, res.URL)
			bytesMoved += res.BytesSent
			storeOps++
		} else {
			// Retrieve one of the user's stored files, or fall back to
			// the global catalog (the content-distribution pattern:
			// URLs shared by other users, §3.2.1).
			pool := urls[op.log.UserID]
			if len(pool) == 0 {
				pool = allURLs
			}
			if len(pool) == 0 {
				skipped++ // nothing stored service-wide yet
				continue
			}
			url := pool[int(op.log.DeviceID+uint64(replayed))%len(pool)]
			data, err := client.RetrieveFile(url)
			if err != nil {
				fatal(err)
			}
			bytesMoved += int64(len(data))
			retrOps++
		}
		replayed++
	}
	fmt.Printf("replayed %d file operations (%d stores, %d retrieves, %d dedup hits, %d skipped) in %v\n",
		replayed, storeOps, retrOps, dedups, skipped, time.Since(wallStart).Round(time.Millisecond))
	fmt.Printf("bytes moved over HTTP: %.1f MB (sizes scaled 1/%d)\n", float64(bytesMoved)/(1<<20), *scale)

	// 4. Compare the session structure: source trace vs service logs.
	cut := func(logs []trace.Log) session.Stats {
		id := session.NewIdentifier(0)
		for _, l := range logs {
			id.Add(l)
		}
		return session.Summarize(id.Sessions())
	}
	src := cut(srcLogs)
	svc := cut(collector.Logs())
	fmt.Printf("\n%-22s %10s %10s\n", "", "source", "replayed")
	fmt.Printf("%-22s %10d %10d\n", "sessions", src.Total, svc.Total)
	fmt.Printf("%-22s %10d %10d\n", "store-only", src.ByClass[session.StoreOnly], svc.ByClass[session.StoreOnly])
	fmt.Printf("%-22s %10d %10d\n", "retrieve-only", src.ByClass[session.RetrieveOnly], svc.ByClass[session.RetrieveOnly])
	fmt.Printf("%-22s %10d %10d\n", "mixed", src.ByClass[session.Mixed], svc.ByClass[session.Mixed])
	fmt.Printf("%-22s %10d %10d\n", "file operations", src.TotalOps, svc.TotalOps)

	if svc.Total == 0 {
		fmt.Fprintln(os.Stderr, "mcsreplay: no sessions recovered from the service logs")
		os.Exit(2)
	}
	// The replay skips retrievals that had nothing to fetch, so the
	// counts may differ slightly; flag big structural divergence.
	if ratio := float64(svc.Total) / float64(src.Total); ratio < 0.85 || ratio > 1.15 {
		fmt.Fprintf(os.Stderr, "mcsreplay: session count diverged (ratio %.2f)\n", ratio)
		os.Exit(2)
	}
	fmt.Println("\nsession structure recovered from the live service's own request logs")

	// 5. Latency diagnosis from the in-process traces: both sides of
	//    every sampled operation were recorded by the same tracer, so a
	//    single export joins end-to-end.
	if tracer != nil {
		ex := tracing.Export{Node: tracer.Node(), Stats: tracer.TracerStats(), Spans: tracer.Snapshot(tracing.Filter{})}
		diag := tracing.Diagnose(tracing.Join([]tracing.Export{ex}))
		complete := 0
		for _, c := range diag.Chunks {
			if c.Complete {
				complete++
			}
		}
		fmt.Printf("\ntraced 1-in-%d operations: %d traces, %d chunk transfers diagnosed (%d complete)\n",
			*traceSmp, diag.Traces, len(diag.Chunks), complete)
		for _, st := range tracing.StageQuantiles(diag.Chunks) {
			fmt.Printf("  %-8s p99: total %v = queue %v + disk %v + fanout %v + network %v + retry %v (n=%d)\n",
				st.Dir, st.P99["total"].Round(time.Microsecond), st.P99["queue"].Round(time.Microsecond),
				st.P99["disk"].Round(time.Microsecond), st.P99["fanout"].Round(time.Microsecond),
				st.P99["network"].Round(time.Microsecond), st.P99["retry"].Round(time.Microsecond), st.Count)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsreplay:", err)
	os.Exit(1)
}
