// Command mcsserver runs the mobile cloud storage service on real TCP
// sockets: one metadata server and N storage front-ends, each logging
// every request in the Table 1 schema to a log file that mcsanalyze
// can consume directly. An optional ops listener exposes Prometheus
// metrics, health/readiness probes, expvar, and pprof for the whole
// process.
//
// Usage:
//
//	mcsserver -meta :8070 -frontends :8081,:8082 -log service.log -ops :8090
package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"flag"

	"mcloud/internal/cluster"
	"mcloud/internal/faults"
	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
)

func main() {
	var (
		metaAddr = flag.String("meta", ":8070", "metadata server listen address")
		feAddrs  = flag.String("frontends", ":8081", "comma-separated front-end listen addresses")
		logPath  = flag.String("log", "service.log", "request log output path")
		tsrvMS   = flag.Int("tsrv", 0, "simulated upstream processing median (ms); 0 disables the extra delay")
		metaSnap = flag.String("metasnap", "", "metadata snapshot file: loaded at startup, saved at shutdown")
		opsAddr  = flag.String("ops", ":8090", "ops listener address for /metrics, /healthz, /readyz, /debug/vars, /debug/pprof (empty disables)")
		cacheMB  = flag.Int("cache", 0, "read-path LRU chunk cache size in MB (0 disables)")
		drain    = flag.Duration("drain", 15*time.Second, "max time to wait for in-flight requests at shutdown")
		chaos    = flag.String("chaos", "", `fault-injection scenario, e.g. "mixed10,seed=42" or "error=0.05,reset=0.02" (empty disables; see internal/faults)`)
		maxInfl  = flag.Int("maxinflight", 0, "shed load with 503 + Retry-After beyond this many in-flight front-end requests (0 disables)")
		readTO   = flag.Duration("readtimeout", time.Minute, "per-connection request read deadline (0 disables)")
		shards   = flag.Int("shards", 0, "chunk store lock shards, rounded up to a power of two (0 = 4x GOMAXPROCS)")
		dataDir  = flag.String("data", "", "durable chunk store directory: segment files with crash recovery (empty keeps chunks in RAM)")
		segSize  = flag.Int64("segsize", 64<<20, "segment file size in bytes before rotation (with -data)")
		compact  = flag.Float64("compactbelow", 0.5, "rewrite sealed segments whose live-byte ratio falls below this (with -data)")
		compEvry = flag.Duration("compactevery", 30*time.Second, "background compaction sweep interval (with -data; 0 disables)")
		coldAftr = flag.Duration("coldafter", 0, "demote chunks idle this long from RAM to the disk cold tier (needs -data; 0 serves everything from disk)")
		nodeURL  = flag.String("node", "", "this node's advertised base URL in a cluster (default: first front-end listener)")
		peerList = flag.String("peers", "", "comma-separated base URLs of every cluster node, self included (empty = single node, no replication)")
		replicas = flag.Int("replicas", 3, "replica owners per chunk in a cluster (N)")
		quorum   = flag.Int("quorum", 2, "owner acks required before a chunk PUT is acknowledged (W)")
		metaURL  = flag.String("metaurl", "", "remote metadata service base URL(s), comma-separated primary-first; when set this node serves no metadata itself")
		metaDir  = flag.String("metadata-dir", "", "durable metadata directory: WAL + checkpoint with crash recovery (empty keeps metadata in RAM; supersedes -metasnap)")
		metaCkpt = flag.Duration("metacheckpoint", 30*time.Second, "periodic metadata checkpoint interval (with -metadata-dir; 0 disables)")
		metaStby = flag.String("metastandby", "", "serve metadata as a read-only standby replicating from this primary base URL")
		metaLeas = flag.Duration("metafailover", 0, "standby lease TTL: self-promote when the primary has not answered a pull for this long (with -metastandby; 0 = manual promotion only)")
		metaRiv  = flag.String("metapeers", "", "comma-separated base URLs of the other metadata nodes, checked before self-promotion so only one standby wins (with -metafailover)")
		metaFEs  = flag.String("metafrontends", "", "comma-separated front-end base URLs the metadata server assigns to clients (default: cluster peers, else this process's listeners)")
		metaShds = flag.String("metashards", "", `metadata shard map: ";"-separated shard groups, each a ","-separated endpoint list (primary first); every node of the plane shares one spec`)
		metaShID = flag.Int("metashard", 0, "which shard of -metashards this node's metadata server serves")
		legacyOn = flag.Bool("legacyapi", true, "serve the deprecated unversioned path aliases (/meta/*, /op/*, /chunk/*) alongside /v1; false withholds them")
		traceBuf = flag.Int("tracebuf", 65536, "distributed-tracing span ring capacity per process (0 disables tracing)")
		traceSmp = flag.Int("tracesample", 1, "record 1 in N locally-rooted traces (requests arriving with X-MCS-Trace are always recorded)")
		binAPI   = flag.Bool("binapi", true, "serve the mcsbin/1 binary chunk dialect (/v1/bin/*) and advertise it via X-MCS-Bin; false pins peers and clients to JSON")
	)
	flag.Parse()
	fmt.Printf("mcsserver: GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))

	scenario, err := faults.ParseScenario(*chaos)
	if err != nil {
		fatal(err)
	}

	logFile, err := os.Create(*logPath)
	if err != nil {
		fatal(err)
	}
	defer logFile.Close()
	sink := storage.NewWriterSink(trace.NewWriter(logFile))

	reg := metrics.NewRegistry()
	health := &metrics.Health{}

	// Chunk store stack, bottom up: RAM shards, or durable segments
	// (-data), optionally split hot-RAM/cold-disk (-coldafter), with a
	// read-path LRU (-cache) on top of whichever base was chosen.
	var store storage.ChunkStore
	var disk *storage.DiskStore
	var tiered *storage.TieredStore
	if *dataDir != "" {
		var err error
		disk, err = storage.OpenDiskStore(*dataDir, storage.DiskStoreOptions{
			SegmentSize:  *segSize,
			CompactBelow: *compact,
		})
		if err != nil {
			fatal(err)
		}
		disk.Instrument(reg)
		dst := disk.DiskStats()
		fmt.Printf("mcsserver: durable store %s: %d chunks across %d segments recovered in %v",
			*dataDir, disk.Stats().Chunks, dst.Segments, dst.Recovery.Round(time.Millisecond))
		if dst.Truncated > 0 {
			fmt.Printf(" (%d torn-tail bytes truncated)", dst.Truncated)
		}
		fmt.Println()
		store = disk
		if *coldAftr > 0 {
			hot := storage.NewMemStoreShards(*shards)
			tiered = storage.NewTieredStore(hot, disk, *coldAftr, nil)
			tiered.Instrument(reg)
			// Chunks recovered from disk start cold; a read promotes.
			adopted := 0
			disk.Range(func(sum storage.Sum, size int64) bool {
				tiered.AdoptCold(sum, size)
				adopted++
				return true
			})
			store = tiered
			fmt.Printf("mcsserver: tiering RAM-hot chunks to disk after %v idle (%d recovered chunks adopted cold)\n",
				*coldAftr, adopted)
		}
	} else {
		memStore := storage.NewMemStoreShards(*shards)
		fmt.Printf("mcsserver: chunk store sharded %d ways\n", memStore.Shards())
		store = memStore
	}
	storage.InstrumentStore(reg, store)
	var cached *storage.CachedStore
	if *cacheMB > 0 {
		cached = storage.NewCachedStore(store, int64(*cacheMB)<<20)
		cached.Instrument(reg)
		store = cached
	}

	// Metadata sharding: every node of a sharded plane (and every
	// front-end routing to it) shares one -metashards spec. The
	// resolved map carries a version that bumps whenever the layout
	// changes; metadata nodes persist it next to their WAL so a
	// restart under a changed spec is detectable.
	var smap *cluster.MetaShardMap
	if *metaShds != "" {
		groups, err := cluster.ParseMetaShards(*metaShds)
		if err != nil {
			fatal(err)
		}
		smap, err = cluster.ResolveShardMap(*metaDir, groups)
		if err != nil {
			fatal(err)
		}
		if *metaShID < 0 || *metaShID >= smap.NumShards() {
			fatal(fmt.Errorf("-metashard %d out of range: map has %d shards", *metaShID, smap.NumShards()))
		}
	}

	// Metadata: served in-process by default; in a cluster, non-meta
	// nodes point -metaurl at the node that does and commit uploads
	// over the wire instead.
	var meta *storage.Metadata
	var metaSvc storage.MetaService
	var remoteMeta *storage.RemoteMeta
	if *metaURL != "" || (*metaShds != "" && *metaAddr == "") {
		if smap != nil {
			remoteMeta = storage.NewShardedRemoteMeta(smap, nil)
			fmt.Printf("mcsserver: routing metadata across %d shards (map version %d)\n",
				smap.NumShards(), smap.Version)
		} else {
			remoteMeta = storage.NewRemoteMeta(*metaURL, nil)
			fmt.Printf("mcsserver: using remote metadata at %s\n", *metaURL)
		}
		metaSvc = remoteMeta
	} else {
		if *metaDir != "" {
			var err error
			meta, err = storage.OpenDurableMetadata(*metaDir)
			if err != nil {
				fatal(err)
			}
			ws := meta.WAL().Stats()
			fmt.Printf("mcsserver: durable metadata %s: %d files recovered in %v (checkpoint seq %d, last seq %d)",
				*metaDir, meta.Stats().Files, ws.Recovery.Round(time.Millisecond), ws.CheckpointSeq, meta.LastSeq())
			if ws.Truncated > 0 {
				fmt.Printf(" (%d torn-tail bytes truncated)", ws.Truncated)
			}
			fmt.Println()
		} else {
			meta = storage.NewMetadata()
			if *metaSnap != "" {
				if err := meta.LoadFile(*metaSnap); err != nil {
					fatal(err)
				}
				if n := meta.Stats().Files; n > 0 {
					fmt.Printf("mcsserver: restored %d files from %s\n", n, *metaSnap)
				}
			}
		}
		if smap != nil {
			meta.SetShard(*metaShID, smap)
			fmt.Printf("mcsserver: metadata shard %d of %d (map version %d)\n",
				*metaShID, smap.NumShards(), smap.Version)
		}
		meta.SetLegacyAPI(*legacyOn)
		meta.Instrument(reg)
		metaSvc = meta
	}

	// A node serving one shard of a multi-shard plane routes its own
	// front-ends' commits/lookups through the shard map — only calls
	// pinned to the local shard may short-circuit in process.
	if smap != nil && smap.NumShards() > 1 && meta != nil {
		remoteMeta = storage.NewShardedRemoteMeta(smap, nil)
		metaSvc = remoteMeta
	}

	// Standby mode: replicate the primary's WAL stream and reject
	// direct writes with a retryable 503, so front-ends fail over.
	var standby *storage.MetaStandby
	if *metaStby != "" {
		if meta == nil {
			fatal(fmt.Errorf("-metastandby requires serving metadata locally (drop -metaurl)"))
		}
		standby = storage.NewMetaStandby(meta, *metaStby, nil, 0)
		standby.Instrument(reg)
		standby.SetLogf(func(format string, args ...interface{}) {
			fmt.Printf("mcsserver: "+format+"\n", args...)
		})
		if *metaLeas > 0 {
			var rivals []string
			for _, r := range strings.Split(*metaRiv, ",") {
				if r = strings.TrimSpace(r); r != "" {
					rivals = append(rivals, r)
				}
			}
			standby.SetFailover(*metaLeas, rivals...)
			fmt.Printf("mcsserver: metadata standby replicating from %s (auto-failover lease %v, %d rivals)\n",
				*metaStby, *metaLeas, len(rivals))
		} else {
			fmt.Printf("mcsserver: metadata standby replicating from %s\n", *metaStby)
		}
	}

	cfg := storage.FrontEndConfig{
		Meta:          metaSvc,
		Sink:          sink,
		Metrics:       storage.NewFrontEndMetrics(reg),
		DisableBin:    !*binAPI,
		DisableLegacy: !*legacyOn,
	}
	if remoteMeta != nil {
		cfg.MetaSummary = remoteMeta.Summary
	} else if meta != nil {
		m := meta
		cfg.MetaSummary = func(context.Context) *storage.MetaShardSummary {
			v := m.ShardMapView()
			return &storage.MetaShardSummary{
				Shards:     v.NumShards(),
				MapVersion: v.Version,
				ShardInfo:  []storage.MetaShardInfo{{Shard: m.ShardID(), Epoch: m.WALStatus().Epoch}},
			}
		}
	}
	if *tsrvMS > 0 {
		src := randx.New(uint64(time.Now().UnixNano()))
		median := float64(*tsrvMS) * float64(time.Millisecond)
		cfg.UpstreamDelay = func() time.Duration {
			return time.Duration(src.LogNormal(math.Log(median), 0.45))
		}
		cfg.SleepUpstream = true
	}

	// Overload protection: one process-wide limiter shared by every
	// front-end listener, so the bound covers total in-flight load.
	var shedder *storage.Shedder
	if *maxInfl > 0 {
		shedder = storage.NewShedder(*maxInfl)
		shedder.Instrument(reg, "frontend")
		fmt.Printf("mcsserver: shedding load beyond %d in-flight front-end requests\n", *maxInfl)
	}

	// Front-end listeners come up before the serving stack: in a
	// cluster the node's advertised URL (first listener unless -node
	// overrides it) keys both ring placement and per-node chaos gating.
	type feListener struct {
		ln   net.Listener
		base string
	}
	var feLns []feListener
	for _, addr := range strings.Split(*feAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue // -frontends "" runs a dedicated metadata node
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fatal(err)
		}
		feLns = append(feLns, feListener{ln: ln, base: "http://" + hostify(ln.Addr().String())})
	}
	// The metadata listener comes up alongside the front-ends so a
	// dedicated metadata node (no front-ends) still has an identity.
	var metaLn net.Listener
	if meta != nil {
		var err error
		metaLn, err = net.Listen("tcp", *metaAddr)
		if err != nil {
			fatal(err)
		}
	}
	selfNode := *nodeURL
	switch {
	case selfNode != "":
	case len(feLns) > 0:
		selfNode = feLns[0].base
	case metaLn != nil:
		selfNode = "http://" + hostify(metaLn.Addr().String())
	default:
		fatal(fmt.Errorf("no listeners: provide -frontends or serve metadata"))
	}

	// Distributed tracing: one span ring for the whole process, shared
	// by every front-end and the metadata handler. Client-rooted
	// traces arriving with X-MCS-Trace are always recorded; locally
	// rooted ones obey -tracesample.
	var tracer *tracing.Tracer
	if *traceBuf > 0 {
		tracer = tracing.New(tracing.Config{Node: selfNode, Capacity: *traceBuf, Sample: *traceSmp})
		fmt.Printf("mcsserver: tracing %d-span ring (sample 1/%d) at /debug/traces\n", *traceBuf, max(1, *traceSmp))
	}
	cfg.Tracer = tracer

	// Fault injection: independent deterministic streams for the
	// front-end and metadata paths, derived from the scenario seed. A
	// scenario naming a node (node=...) fires only on that node, so a
	// whole cluster can share one -chaos spec and lose exactly one
	// replica.
	scenario = scenario.ForNode(selfNode)
	var injFE, injMeta *faults.Injector
	if scenario.Enabled() {
		injFE = faults.New(scenario.Derive("frontend"))
		injFE.Instrument(reg, "frontend")
		injMeta = faults.New(scenario.Derive("meta"))
		injMeta.Instrument(reg, "meta")
		fmt.Printf("mcsserver: chaos scenario %q\n", scenario)
	}

	// Replication: with -peers, every chunk maps onto N ring owners
	// and this node fans writes out / fails reads over among them; the
	// local store stack serves replica-internal traffic directly.
	serveStore := store
	var repl *storage.ReplicatedStore
	if *peerList != "" {
		peers := strings.Split(*peerList, ",")
		for i := range peers {
			peers[i] = strings.TrimSpace(peers[i])
		}
		var err error
		repl, err = storage.NewReplicatedStore(storage.ReplicatedConfig{
			Self:        selfNode,
			Peers:       peers,
			Replicas:    *replicas,
			WriteQuorum: *quorum,
			Local:       store,
			DisableBin:  !*binAPI,
		})
		if err != nil {
			fatal(err)
		}
		repl.Instrument(reg)
		serveStore = repl
		info := repl.Info()
		fmt.Printf("mcsserver: cluster node %s (%d peers, N=%d W=%d)\n",
			selfNode, len(info.Peers), info.Replicas, info.Quorum)
	}
	cfg.Store = serveStore
	cfg.Local = store

	newServer := func(h http.Handler) *http.Server {
		return &http.Server{
			Handler:           h,
			ReadTimeout:       *readTO,
			ReadHeaderTimeout: *readTO,
		}
	}

	// labeled tags request-serving goroutines so CPU profiles from
	// /debug/pprof split by component.
	labeled := func(component string, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			pprof.Do(r.Context(), pprof.Labels("component", component), func(ctx context.Context) {
				h.ServeHTTP(w, r.WithContext(ctx))
			})
		})
	}

	var servers []*http.Server
	for _, fl := range feLns {
		fe := storage.NewFrontEnd(cfg)
		h := fe.Handler()
		if injFE != nil {
			h = injFE.Middleware(h)
		}
		if shedder != nil {
			h = shedder.Wrap(h)
		}
		srv := newServer(labeled("frontend", h))
		go srv.Serve(fl.ln)
		servers = append(servers, srv)
		fmt.Printf("mcsserver: front-end on %s\n", fl.base)
	}
	if meta != nil {
		// The metadata server assigns front-ends to clients:
		// -metafrontends when given (dedicated metadata nodes), else
		// every peer node in a cluster, else this process's listeners.
		if *metaFEs != "" {
			for _, fe := range strings.Split(*metaFEs, ",") {
				if fe = strings.TrimSpace(fe); fe != "" {
					meta.AddFrontEnd(fe)
				}
			}
		} else if repl != nil {
			for _, p := range repl.Info().Peers {
				meta.AddFrontEnd(p)
			}
		} else {
			for _, fl := range feLns {
				meta.AddFrontEnd(fl.base)
			}
		}
		metaH := tracing.Middleware(tracer, tracing.CompMeta, nil, meta.Handler())
		if injMeta != nil {
			metaH = injMeta.Middleware(metaH)
		}
		metaSrv := newServer(labeled("meta", metaH))
		go metaSrv.Serve(metaLn)
		servers = append(servers, metaSrv)
		fmt.Printf("mcsserver: metadata server on http://%s\n", hostify(metaLn.Addr().String()))
	}
	fmt.Printf("mcsserver: logging requests to %s\n", *logPath)

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fatal(err)
		}
		metrics.PublishExpvar("mcs", reg)
		metrics.PublishBuildInfo(selfNode)
		opsMux := metrics.OpsMux(reg, health)
		if tracer != nil {
			opsMux.Handle("/debug/traces", tracing.Handler(tracer))
		}
		opsSrv = &http.Server{Handler: opsMux}
		go opsSrv.Serve(opsLn)
		fmt.Printf("mcsserver: ops listener on http://%s (/metrics /healthz /readyz /debug/vars /debug/traces /debug/pprof)\n",
			hostify(opsLn.Addr().String()))
	}
	health.SetReady(true)
	if standby != nil {
		standby.SetTracer(tracer)
		standby.Start()
	}
	// Probe assigned front-ends so pickFrontEnd skips dead ones
	// instead of handing clients an endpoint that cannot answer.
	var stopFEProbe func()
	if meta != nil {
		stopFEProbe = meta.ProbeFrontEnds(nil, 2*time.Second)
	}

	// Background maintenance: demote idle chunks to the cold tier,
	// reclaim dead segment space, and checkpoint the metadata WAL so
	// recovery replay stays short. All loops stop at shutdown so the
	// final fsync in Close is the last write.
	maintDone := make(chan struct{})
	var maintWG sync.WaitGroup
	if tiered != nil {
		every := *coldAftr / 4
		if every < time.Second {
			every = time.Second
		}
		maintWG.Add(1)
		go func() {
			defer maintWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-maintDone:
					return
				case <-tick.C:
					if n, err := tiered.Migrate(); err != nil {
						fmt.Fprintln(os.Stderr, "mcsserver: tier migrate:", err)
					} else if n > 0 {
						tiered.AccrueOccupancy(every)
					}
				}
			}
		}()
	}
	if disk != nil && *compEvry > 0 {
		maintWG.Add(1)
		go func() {
			defer maintWG.Done()
			tick := time.NewTicker(*compEvry)
			defer tick.Stop()
			for {
				select {
				case <-maintDone:
					return
				case <-tick.C:
					if _, err := disk.Compact(); err != nil {
						fmt.Fprintln(os.Stderr, "mcsserver: compact:", err)
					}
				}
			}
		}()
	}
	if meta != nil && meta.WAL() != nil && *metaCkpt > 0 {
		maintWG.Add(1)
		go func() {
			defer maintWG.Done()
			tick := time.NewTicker(*metaCkpt)
			defer tick.Stop()
			for {
				select {
				case <-maintDone:
					return
				case <-tick.C:
					if err := meta.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "mcsserver: meta checkpoint:", err)
					}
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful drain: stop accepting, let in-flight uploads finish so
	// their log records land before the sink is flushed, then flush and
	// snapshot. The ops listener stays up through the drain so the final
	// state remains scrapable; /readyz flips to 503 immediately.
	health.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	var wg sync.WaitGroup
	for _, s := range servers {
		wg.Add(1)
		go func(s *http.Server) {
			defer wg.Done()
			if err := s.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "mcsserver: shutdown:", err)
			}
		}(s)
	}
	wg.Wait()
	cancel()
	close(maintDone)
	maintWG.Wait()
	if stopFEProbe != nil {
		stopFEProbe()
	}
	if standby != nil {
		standby.Close()
	}
	if repl != nil {
		repl.Close()
	}
	if tiered != nil {
		// The hot tier is RAM: anything acknowledged but not yet
		// demoted must reach the durable cold tier before it closes.
		n, err := tiered.FlushHot()
		if err != nil {
			fatal(fmt.Errorf("flushing hot tier: %w", err))
		}
		fmt.Printf("mcsserver: flushed %d hot chunks to the cold tier\n", n)
	}
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	if disk != nil {
		if err := disk.Close(); err != nil {
			fatal(err)
		}
	}
	if meta != nil && meta.WAL() != nil {
		// CloseWAL checkpoints first, so the next open replays nothing.
		if err := meta.CloseWAL(); err != nil {
			fatal(err)
		}
		fmt.Printf("mcsserver: metadata checkpointed at seq %d in %s\n", meta.LastSeq(), *metaDir)
	} else if meta != nil && *metaSnap != "" {
		if err := meta.SaveFile(*metaSnap); err != nil {
			fatal(err)
		}
		fmt.Printf("mcsserver: metadata snapshot saved to %s\n", *metaSnap)
	}
	if opsSrv != nil {
		opsSrv.Close()
	}
	st := store.Stats()
	fmt.Printf("\nmcsserver: %d chunks (%0.2f MB unique), dedup ratio %.3f\n",
		st.Chunks, float64(st.Bytes)/(1<<20), st.DedupRatio())
	if meta != nil {
		ms := meta.Stats()
		fmt.Printf("mcsserver: %d files, %d users, %d dedup hits\n", ms.Files, ms.Users, ms.DedupHits)
		if w := meta.WAL(); w != nil {
			ws := w.Stats()
			fmt.Printf("mcsserver: metadata WAL %d appends (%0.2f KB), %d fsyncs, %d checkpoints\n",
				ws.Appends, float64(ws.BytesLogged)/(1<<10), ws.Fsyncs, ws.Checkpoints)
		}
	}
	if repl != nil {
		fmt.Printf("mcsserver: cluster under-replicated chunks at exit: %d\n", repl.Underreplicated())
	}
	if cached != nil {
		cs := cached.CacheStats()
		fmt.Printf("mcsserver: cache %.1f%% hit rate (%d hits / %d misses), %0.2f MB used of %0.2f MB\n",
			100*cs.HitRate(), cs.Hits, cs.Misses, float64(cs.Used)/(1<<20), float64(cs.Capacity)/(1<<20))
	}
	if disk != nil {
		dst := disk.DiskStats()
		fmt.Printf("mcsserver: disk store %d segments, %0.2f MB live / %0.2f MB dead, %d fsyncs, %d compactions\n",
			dst.Segments, float64(dst.LiveBytes)/(1<<20), float64(dst.DeadBytes)/(1<<20), dst.Fsyncs, dst.Compactions)
	}
	if tiered != nil {
		ti := tiered.TierStats()
		fmt.Printf("mcsserver: tiering %d demotions, %d promotions, %d hot / %d cold reads\n",
			ti.Demotions, ti.Promotions, ti.HotReads, ti.ColdReads)
	}
	if injFE != nil {
		fmt.Printf("mcsserver: chaos injected %d front-end + %d metadata faults across %d requests\n",
			injFE.Injected(), injMeta.Injected(), injFE.Requests()+injMeta.Requests())
	}
	if shedder != nil {
		ss := shedder.Stats()
		fmt.Printf("mcsserver: overload shed %d of %d requests\n", ss.Sheds, ss.Sheds+ss.Admitted)
	}
}

// hostify rewrites a wildcard listen address into a dialable one.
func hostify(addr string) string {
	if strings.HasPrefix(addr, "[::]") {
		return "127.0.0.1" + strings.TrimPrefix(addr, "[::]")
	}
	if strings.HasPrefix(addr, "0.0.0.0") {
		return "127.0.0.1" + strings.TrimPrefix(addr, "0.0.0.0")
	}
	return addr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsserver:", err)
	os.Exit(1)
}
