// Command mcsserver runs the mobile cloud storage service on real TCP
// sockets: one metadata server and N storage front-ends, each logging
// every request in the Table 1 schema to a log file that mcsanalyze
// can consume directly.
//
// Usage:
//
//	mcsserver -meta :8070 -frontends :8081,:8082 -log service.log
package main

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flag"

	"mcloud/internal/randx"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
)

func main() {
	var (
		metaAddr = flag.String("meta", ":8070", "metadata server listen address")
		feAddrs  = flag.String("frontends", ":8081", "comma-separated front-end listen addresses")
		logPath  = flag.String("log", "service.log", "request log output path")
		tsrvMS   = flag.Int("tsrv", 0, "simulated upstream processing median (ms); 0 disables the extra delay")
		metaSnap = flag.String("metasnap", "", "metadata snapshot file: loaded at startup, saved at shutdown")
	)
	flag.Parse()

	logFile, err := os.Create(*logPath)
	if err != nil {
		fatal(err)
	}
	defer logFile.Close()
	sink := storage.NewWriterSink(trace.NewWriter(logFile))

	store := storage.NewMemStore()
	meta := storage.NewMetadata()
	if *metaSnap != "" {
		if err := meta.LoadFile(*metaSnap); err != nil {
			fatal(err)
		}
		if n := meta.Stats().Files; n > 0 {
			fmt.Printf("mcsserver: restored %d files from %s\n", n, *metaSnap)
		}
	}

	var opts storage.FrontEndOptions
	if *tsrvMS > 0 {
		src := randx.New(uint64(time.Now().UnixNano()))
		median := float64(*tsrvMS) * float64(time.Millisecond)
		opts.UpstreamDelay = func() time.Duration {
			return time.Duration(src.LogNormal(math.Log(median), 0.45))
		}
		opts.SleepUpstream = true
	}

	var servers []*http.Server
	for _, addr := range strings.Split(*feAddrs, ",") {
		addr = strings.TrimSpace(addr)
		fe := storage.NewFrontEnd(store, meta, sink, opts)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: fe.Handler()}
		go srv.Serve(ln)
		base := "http://" + hostify(ln.Addr().String())
		meta.AddFrontEnd(base)
		servers = append(servers, srv)
		fmt.Printf("mcsserver: front-end on %s\n", base)
	}

	metaLn, err := net.Listen("tcp", *metaAddr)
	if err != nil {
		fatal(err)
	}
	metaSrv := &http.Server{Handler: meta.Handler()}
	go metaSrv.Serve(metaLn)
	fmt.Printf("mcsserver: metadata server on http://%s\n", hostify(metaLn.Addr().String()))
	fmt.Printf("mcsserver: logging requests to %s\n", *logPath)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	for _, s := range servers {
		s.Close()
	}
	metaSrv.Close()
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	if *metaSnap != "" {
		if err := meta.SaveFile(*metaSnap); err != nil {
			fatal(err)
		}
		fmt.Printf("mcsserver: metadata snapshot saved to %s\n", *metaSnap)
	}
	st := store.Stats()
	ms := meta.Stats()
	fmt.Printf("\nmcsserver: %d chunks (%0.2f MB unique), dedup ratio %.3f; %d files, %d users, %d dedup hits\n",
		st.Chunks, float64(st.Bytes)/(1<<20), st.DedupRatio(), ms.Files, ms.Users, ms.DedupHits)
}

// hostify rewrites a wildcard listen address into a dialable one.
func hostify(addr string) string {
	if strings.HasPrefix(addr, "[::]") {
		return "127.0.0.1" + strings.TrimPrefix(addr, "[::]")
	}
	if strings.HasPrefix(addr, "0.0.0.0") {
		return "127.0.0.1" + strings.TrimPrefix(addr, "0.0.0.0")
	}
	return addr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsserver:", err)
	os.Exit(1)
}
