// Command mcstrace joins the distributed traces exported by a running
// cluster and prints a chunk-level latency diagnosis in the style of
// the paper's §4 performance analysis: every acknowledged chunk
// transfer decomposed into additive queue / disk / fan-out / network /
// retry stages with p50/p99 per stage, plus a critical-path summary
// per file operation.
//
// Sources are ops listeners (fetched live from /debug/traces) and/or
// Export JSON files written by mcsload -tracedump:
//
//	mcstrace -from http://127.0.0.1:8090,http://127.0.0.1:8091,client.json
//
// With -strict the exit status is non-zero when any acknowledged
// transfer's trace failed to join end-to-end — the CI cluster smoke
// uses this to prove header propagation covers every hop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mcloud/internal/tracing"
)

func main() {
	var (
		from   = flag.String("from", "", "comma-separated trace sources: ops base URLs (read from /debug/traces) and/or Export JSON files")
		min    = flag.Duration("min", 0, "only diagnose traces whose chunk transfer took at least this long")
		only   = flag.String("trace", "", "only diagnose this trace ID (16 hex digits)")
		top    = flag.Int("top", 5, "file operations shown in the critical-path table")
		asJSON = flag.Bool("json", false, "emit the full diagnosis as JSON instead of tables")
		strict = flag.Bool("strict", false, "exit non-zero when any acked transfer's trace is incomplete (or no transfers were found)")
		tree   = flag.Bool("tree", false, "print the span tree of the slowest file operation")
	)
	flag.Parse()
	if *from == "" {
		fmt.Fprintln(os.Stderr, "mcstrace: -from is required (ops URLs and/or Export JSON files)")
		os.Exit(2)
	}

	var exports []tracing.Export
	var srcURLs, srcFiles int
	for _, src := range strings.Split(*from, ",") {
		src = strings.TrimSpace(src)
		if src == "" {
			continue
		}
		ex, isURL, err := fetch(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcstrace: %s: %v\n", src, err)
			os.Exit(1)
		}
		if isURL {
			srcURLs++
		} else {
			srcFiles++
		}
		exports = append(exports, ex)
	}

	traces := tracing.Join(exports)
	if *only != "" {
		id := tracing.ParseTraceID(*only)
		if id == 0 {
			fmt.Fprintf(os.Stderr, "mcstrace: -trace %q: not a 16-hex-digit trace ID\n", *only)
			os.Exit(2)
		}
		var kept []*tracing.Trace
		for _, tr := range traces {
			if tr.ID == id {
				kept = append(kept, tr)
			}
		}
		traces = kept
	}
	diag := tracing.Diagnose(traces)
	if *min > 0 {
		var kept []tracing.ChunkDiag
		for _, c := range diag.Chunks {
			if c.Total >= *min {
				kept = append(kept, c)
			}
		}
		diag.Chunks = kept
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diag); err != nil {
			fmt.Fprintln(os.Stderr, "mcstrace:", err)
			os.Exit(1)
		}
		os.Exit(exitCode(diag, *strict))
	}

	spans := 0
	for _, tr := range traces {
		spans += len(tr.Spans)
	}
	fmt.Printf("mcstrace: %d node(s) + %d file(s), %d spans, %d traces\n",
		srcURLs, srcFiles, spans, diag.Traces)

	complete, incomplete, failed := 0, 0, 0
	for _, c := range diag.Chunks {
		switch {
		case c.Complete:
			complete++
		case c.Acked:
			incomplete++
		default:
			failed++
		}
	}
	fmt.Printf("mcstrace: %d chunk transfers (%d complete, %d acked-but-unjoined, %d failed), %d file ops\n",
		complete+incomplete+failed, complete, incomplete, failed, len(diag.Ops))

	printStages(diag.Chunks)
	printOps(diag.Ops, *top)
	if *tree {
		printSlowestTree(traces, diag.Ops)
	}

	for _, c := range diag.Chunks {
		if c.Acked && !c.Complete {
			fmt.Printf("mcstrace: INCOMPLETE %s chunk=%s dir=%s: %s\n", c.Trace, short(c.Chunk), c.Dir, c.Missing)
		}
	}
	os.Exit(exitCode(diag, *strict))
}

// exitCode implements -strict: every acknowledged transfer must have
// joined end-to-end, and there must be something to check at all.
func exitCode(diag tracing.Diagnosis, strict bool) int {
	if !strict {
		return 0
	}
	acked, bad := 0, 0
	for _, c := range diag.Chunks {
		if !c.Acked {
			continue
		}
		acked++
		if !c.Complete {
			bad++
		}
	}
	if acked == 0 {
		fmt.Fprintln(os.Stderr, "mcstrace: STRICT: no acknowledged chunk transfers found in any trace")
		return 1
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mcstrace: STRICT: %d/%d acked transfers have incomplete traces\n", bad, acked)
		return 1
	}
	fmt.Printf("mcstrace: strict join check passed: %d/%d acked transfers fully joined\n", acked, acked)
	return 0
}

func fetch(src string) (tracing.Export, bool, error) {
	var ex tracing.Export
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		url := src
		if !strings.Contains(url, "/debug/traces") {
			url = strings.TrimRight(url, "/") + "/debug/traces"
		}
		resp, err := http.Get(url)
		if err != nil {
			return ex, true, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ex, true, fmt.Errorf("/debug/traces returned status %d", resp.StatusCode)
		}
		return ex, true, json.NewDecoder(resp.Body).Decode(&ex)
	}
	f, err := os.Open(src)
	if err != nil {
		return ex, false, err
	}
	defer f.Close()
	return ex, false, json.NewDecoder(f).Decode(&ex)
}

// printStages renders the per-stage quantile table per direction.
func printStages(chunks []tracing.ChunkDiag) {
	stats := tracing.StageQuantiles(chunks)
	if len(stats) == 0 {
		fmt.Println("\nmcstrace: no complete chunk transfers to decompose")
		return
	}
	fmt.Println("\nper-chunk stage decomposition (complete transfers only):")
	fmt.Printf("  %-9s %-4s %5s", "dir", "q", "n")
	for _, st := range tracing.Stages {
		fmt.Printf(" %9s", st)
	}
	fmt.Println()
	for _, st := range stats {
		for _, q := range []string{"p50", "p99"} {
			vals := st.P50
			if q == "p99" {
				vals = st.P99
			}
			fmt.Printf("  %-9s %-4s %5d", st.Dir, q, st.Count)
			for _, stage := range tracing.Stages {
				fmt.Printf(" %9s", fmtDur(vals[stage]))
			}
			fmt.Println()
		}
	}
}

// printOps renders the critical-path summary of the slowest file
// operations: wall time vs. the sum of chunk times (parallelism), and
// the stage that bounded the slowest chunk.
func printOps(ops []tracing.OpDiag, top int) {
	if len(ops) == 0 {
		return
	}
	sorted := append([]tracing.OpDiag(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
	if top > 0 && len(sorted) > top {
		sorted = sorted[:top]
	}
	fmt.Printf("\ncritical path, %d slowest file operations (of %d):\n", len(sorted), len(ops))
	fmt.Printf("  %-16s %-13s %-22s %6s %9s %9s %10s %13s  %s\n",
		"trace", "op", "node", "chunks", "bytes", "total", "chunk-sum", "slowest", "bottleneck")
	for _, op := range sorted {
		stage, d := bottleneck(op.Slowest)
		note := fmt.Sprintf("%s %s", stage, fmtDur(d))
		if op.Dedup {
			note = "dedup (no transfer)"
		}
		if !op.Complete {
			note += " (incomplete)"
		}
		fmt.Printf("  %-16s %-13s %-22s %6d %9s %9s %10s %13s  %s\n",
			op.Trace, op.Op, op.Node, op.Chunks, fmtBytes(op.Bytes),
			fmtDur(op.Total), fmtDur(op.ChunkSum), fmtDur(op.Slowest.Total), note)
	}
}

// bottleneck picks the dominant stage of a chunk decomposition.
func bottleneck(c tracing.ChunkDiag) (string, time.Duration) {
	best, bestD := "queue", time.Duration(-1)
	for _, st := range tracing.Stages {
		if st == "total" {
			continue
		}
		if d := stageOf(c, st); d > bestD {
			best, bestD = st, d
		}
	}
	if bestD < 0 {
		bestD = 0
	}
	return best, bestD
}

func stageOf(c tracing.ChunkDiag, name string) time.Duration {
	switch name {
	case "queue":
		return c.Queue
	case "disk":
		return c.Disk
	case "fanout":
		return c.Fanout
	case "network":
		return c.Network
	case "retry":
		return c.Retry
	}
	return 0
}

// printSlowestTree dumps the span tree of the slowest op for eyeballs.
func printSlowestTree(traces []*tracing.Trace, ops []tracing.OpDiag) {
	if len(ops) == 0 {
		return
	}
	slow := ops[0]
	for _, op := range ops {
		if op.Total > slow.Total {
			slow = op
		}
	}
	for _, tr := range traces {
		if tr.ID != slow.Trace {
			continue
		}
		fmt.Printf("\nspan tree of slowest op (trace %s):\n", tr.ID)
		roots := 0
		for _, sp := range tr.Spans {
			if sp.Parent == 0 || lookup(tr, sp.Parent) == nil {
				printSpan(tr, sp, 1)
				roots++
			}
		}
		if roots == 0 && len(tr.Spans) > 0 {
			printSpan(tr, tr.Spans[0], 1)
		}
	}
}

func lookup(tr *tracing.Trace, id tracing.SpanID) *tracing.Span {
	for _, sp := range tr.Spans {
		if sp.ID == id {
			return sp
		}
	}
	return nil
}

func printSpan(tr *tracing.Trace, sp *tracing.Span, depth int) {
	var kv []string
	for _, a := range sp.Annots {
		v := a.Value
		if a.Key == "chunk" {
			v = short(v)
		}
		kv = append(kv, a.Key+"="+v)
	}
	fmt.Printf("  %s%s/%s [%s] %s %s\n",
		strings.Repeat("  ", depth), sp.Component, sp.Name, sp.Node, fmtDur(sp.Duration), strings.Join(kv, " "))
	for _, kid := range tr.Children(sp.ID) {
		printSpan(tr, kid, depth+1)
	}
}

func short(hexsum string) string {
	if len(hexsum) > 8 {
		return hexsum[:8]
	}
	return hexsum
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d == 0:
		return "0"
	}
	return d.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
