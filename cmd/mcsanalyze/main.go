// Command mcsanalyze runs the paper's analyses over a log file in the
// Table 1 schema and prints each table and figure of the evaluation
// as text: fitted models, headline statistics, and ASCII renderings
// of the figure shapes.
//
// Usage:
//
//	mcsgen -users 20000 -o week.log
//	mcsanalyze -i week.log
//	mcsanalyze -i week.log -figure 3        # just Figure 3
//	mcsanalyze -i week.log -figure table3
package main

import (
	"bufio"
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"mcloud/internal/core"
	"mcloud/internal/textplot"
	"mcloud/internal/trace"
)

func main() {
	var (
		in      = flag.String("i", "-", "input log file (- for stdin)")
		figure  = flag.String("figure", "all", "which experiment to print: all, 1, 3, sessions, 4, 5, 6, 7, table3, 8, 9, 10, 12, 14, 15, 16, whatif")
		days    = flag.Int("days", 7, "observation window in days")
		flows   = flag.Int("idleflows", 120, "flows per class for the Fig 13/16 simulator study")
		workers = flag.Int("workers", 0, "analysis worker goroutines, sharded by user (0 = GOMAXPROCS)")
	)
	flag.Parse()
	// Tag the whole pass so /debug/pprof profiles attribute the fold.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("component", "analyzer")))

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(*in, ".gz") {
			gz, err := gzip.NewReader(f)
			if err != nil {
				fatal(err)
			}
			defer gz.Close()
			r = gz
		}
	}

	a := core.NewParallelAnalyzer(core.Options{Days: *days}, *workers)
	start := time.Now()
	badLines := 0
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(4); err == nil && string(magic) == "mcl1" {
		// Binary stream.
		tr := trace.NewBinaryReader(br)
		for {
			l, err := tr.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				fatal(err)
			}
			a.Add(l)
		}
	} else {
		// Text stream; tolerate malformed lines (e.g. a torn final
		// record from a crashed writer): count and continue.
		tr := trace.NewReader(br)
		for {
			l, err := tr.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				badLines++
				continue
			}
			a.Add(l)
		}
	}
	if badLines > 0 {
		fmt.Fprintf(os.Stderr, "mcsanalyze: skipped %d malformed lines\n", badLines)
	}
	res, err := a.Finish().Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("analyzed %d logs from %d users in %v (%d workers)\n",
		res.Logs, res.Users, time.Since(start).Round(time.Millisecond), a.Workers())
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "mcsanalyze: warning: %s\n", w)
	}
	fmt.Println()

	want := func(keys ...string) bool {
		if *figure == "all" {
			return true
		}
		for _, k := range keys {
			if *figure == k {
				return true
			}
		}
		return false
	}

	if want("1") {
		printFigure1(res)
	}
	if want("3") {
		printFigure3(res)
	}
	if want("sessions") {
		printSessions(res)
	}
	if want("4") {
		printFigure4(res)
	}
	if want("5") {
		printFigure5(res)
	}
	if want("6", "table2") {
		printFigure6(res)
	}
	if want("7") {
		printFigure7(res)
	}
	if want("table3") {
		printTable3(res)
	}
	if want("8") {
		printFigure8(res)
	}
	if want("9") {
		printFigure9(res)
	}
	if want("10") {
		printFigure10(res)
	}
	if want("12") {
		printFigure12(res)
	}
	if want("14") {
		printFigure14(res)
	}
	if want("15") {
		printFigure15(res)
	}
	if want("13", "16") {
		printIdleStudy(*flows)
	}
	if want("whatif") {
		printWhatIfs()
	}
}

// printWhatIfs runs the design-implication studies the paper proposes
// but could not evaluate on its dataset (no file identifiers): the
// web-cache offload under assumed Zipf popularity and the f4-style
// warm-storage cost split.
func printWhatIfs() {
	fmt.Println("== What-ifs: design implications (Table 4) ==")
	cache, err := core.RunCacheStudy(core.CacheStudyConfig{Seed: 1})
	if err != nil {
		fatal(err)
	}
	fmt.Println("web-cache proxies for downloads (assumed Zipf 1.1 popularity):")
	for _, p := range cache.Points {
		fmt.Printf("  cache = %4.0f%% of catalog: hit rate %.1f%%, origin offload %.1f%%\n",
			100*p.CacheFrac, 100*p.HitRate, 100*p.ByteHitRate)
	}
	tier, err := core.RunTieringStudy(core.TieringStudyConfig{Seed: 1})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nf4-style warm storage (reads on %.0f%% of uploads, cold price %.1fx hot):\n",
		100*tier.Config.ReadProb, tier.Config.ColdPrice/tier.Config.HotPrice)
	fmt.Printf("  demotions %d, promotions %d, cold share at day %d: %.1f%%\n",
		tier.Stats.Demotions, tier.Stats.Promotions, tier.Config.Days, 100*tier.ColdShareEnd)
	fmt.Printf("  storage cost: %.3g tiered vs %.3g hot-only -> %.1f%% saving\n",
		tier.TieredCost, tier.HotOnlyCost, 100*tier.Saving)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsanalyze:", err)
	os.Exit(1)
}

func gb(v int64) string { return fmt.Sprintf("%.2f GB", float64(v)/1e9) }

func printFigure1(res core.Results) {
	w := res.Workload
	fmt.Println("== Figure 1: temporal variation of workload ==")
	fmt.Printf("total stored: %s in %d files; retrieved: %s in %d files\n",
		gb(w.TotalStoreVol), w.TotalStoreFile, gb(w.TotalRetrVol), w.TotalRetrFile)
	fmt.Printf("stored/retrieved file ratio: %.2f (paper: >2x)\n", w.FileRatio())
	fmt.Printf("retrieved/stored volume ratio: %.2f (paper: retrievals dominate)\n", w.VolumeRatio())
	fmt.Printf("peak local hour: %02d:00 (paper: surge ~23:00), peak/trough %.1fx\n\n",
		w.PeakHourOfDay, w.PeakToTrough)

	var xs, store, retr []float64
	for _, h := range w.Hours {
		xs = append(xs, float64(h.Hour))
		store = append(store, float64(h.StoreVol)/1e9)
		retr = append(retr, float64(h.RetrVol)/1e9)
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "Fig 1a: hourly data volume (GB)", XLabel: "hour of week", Width: 70, Height: 12,
	}, textplot.Series{Name: "store", Xs: xs, Ys: store}, textplot.Series{Name: "retrieve", Xs: xs, Ys: retr}))
}

func printFigure3(res core.Results) {
	io := res.InterOp
	fmt.Println("== Figure 3: inter-file-operation time ==")
	if !io.Fitted() {
		fmt.Println("(not enough inter-operation gaps for the mixture fit)")
		fmt.Println()
		return
	}
	fmt.Printf("gaps fitted: %d\n", io.Gaps)
	fmt.Printf("GMM: %v\n", io.Mixture)
	fmt.Printf("in-session mean: %.1f s (paper ~10 s); inter-session mean: %.0f s ≈ %.2f days (paper ~1 day)\n",
		io.InSessionMeanSec(), io.InterSessionMeanSec(), io.InterSessionMeanSec()/86400)
	fmt.Printf("histogram valley: %.0f s; component crossover: %.0f s; τ := %.0f s (1 hour)\n\n",
		io.ValleySec, io.CrossoverSec, io.TauSec)

	h := io.Hist.H
	centers := make([]float64, len(h.Counts))
	for i := range centers {
		centers[i] = h.BinCenter(i)
	}
	fmt.Println(textplot.Histogram("histogram of log10(gap seconds), -1..7", centers, h.Counts, 70, 10))
}

func printSessions(res core.Results) {
	s := res.Sessions
	fmt.Println("== §3.1.1: session classification ==")
	fmt.Printf("sessions: %d\n", s.Stats.Total)
	fmt.Printf("store-only: %.1f%% (paper 68.2%%)  retrieve-only: %.1f%% (paper 29.9%%)  mixed: %.1f%% (paper ~2%%)\n\n",
		100*s.StoreOnlyFrac, 100*s.RetrieveOnlyFrac, 100*s.MixedFrac)
}

func printFigure4(res core.Results) {
	s := res.Sessions
	fmt.Println("== Figure 4: burstiness of file operations ==")
	fmt.Printf("P(normalized operating time < 0.1): %.3f (paper > 0.8)\n", s.BurstAll.P(0.1))
	fmt.Printf("median normalized op time, sessions > 20 ops: %.4f (paper ~0.03)\n\n", s.BurstOver20.Quantile(0.5))
	var series []textplot.Series
	for _, sc := range []struct {
		name string
		e    interface {
			Points(int) ([]float64, []float64)
		}
	}{{"#files>1", s.BurstAll}, {"#files>10", s.BurstOver10}, {"#files>20", s.BurstOver20}} {
		xs, ps := sc.e.Points(60)
		series = append(series, textplot.Series{Name: sc.name, Xs: xs, Ys: ps})
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "Fig 4: CDF of normalized user operating time", XLabel: "normalized time", Width: 70, Height: 14,
	}, series...))
}

func printFigure5(res core.Results) {
	s := res.Sessions
	fmt.Println("== Figure 5: session size ==")
	fmt.Printf("single-operation sessions: %.1f%% (paper ~40%%); >20 ops: %.1f%% (paper ~10%%)\n", 100*s.POneOp, 100*s.POver20Ops)
	fmt.Printf("store volume slope: %.2f MB/file (paper ~1.5)\n", s.StoreSlopeMB)
	fmt.Printf("1-file retrieve-session mean volume: %.1f MB (paper ~70)\n\n", s.OneFileRetrieveMeanMB)

	rows := [][]string{}
	for _, b := range s.StoreBins {
		if b.Files > 100 || b.N < 5 {
			continue
		}
		if b.Files%10 != 0 && b.Files != 1 && b.Files != 5 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", b.Files), fmt.Sprintf("%d", b.N),
			fmt.Sprintf("%.1f", b.MeanMB), fmt.Sprintf("%.1f", b.MedMB),
			fmt.Sprintf("%.1f-%.1f", b.P25MB, b.P75MB),
		})
	}
	fmt.Println("Fig 5b: store-only session volume by #files (MB)")
	fmt.Println(textplot.Table([]string{"#files", "n", "mean", "median", "25-75th"}, rows))
}

func printFigure6(res core.Results) {
	f := res.FileSize
	fmt.Println("== Figure 6 / Table 2: average file size mixtures ==")
	if len(f.StoreMixture.Components) == 0 || len(f.RetrieveMixture.Components) == 0 {
		fmt.Println("(not enough sessions for the mixture fits)")
		fmt.Println()
		return
	}
	fmt.Printf("store-only   (%d sessions): %v\n", f.StoreN, f.StoreMixture)
	fmt.Printf("  paper: α=(0.91, 0.07, 0.02) µ=(1.5, 13.1, 77.4) MB\n")
	fmt.Printf("  chi-square: stat %.1f df %d p %.4f\n", f.StoreGOF.Stat, f.StoreGOF.DF, f.StoreGOF.PValue)
	fmt.Printf("retrieve-only (%d sessions): %v\n", f.RetrieveN, f.RetrieveMixture)
	fmt.Printf("  paper: α=(0.46, 0.26, 0.28) µ=(1.6, 29.8, 146.8) MB\n")
	fmt.Printf("  chi-square: stat %.1f df %d p %.4f\n\n", f.RetrieveGOF.Stat, f.RetrieveGOF.DF, f.RetrieveGOF.PValue)

	// CCDF on log-log axes like the paper's Fig 6.
	for _, side := range []struct {
		name string
		e    interface {
			Quantile(float64) float64
			CCDF(float64) float64
		}
	}{{"store-only", f.StoreCCDF}, {"retrieve-only", f.RetrieveCCDF}} {
		var xs, ys []float64
		for p := 0.0; p < 6; p += 0.1 {
			x := math.Pow(10, p-1) // 0.1 MB .. 100 GB
			c := side.e.CCDF(x)
			if c <= 0 {
				break
			}
			xs = append(xs, x)
			ys = append(ys, math.Log10(c))
		}
		fmt.Println(textplot.Render(textplot.Options{
			Title: "Fig 6 CCDF (log10 P on y): " + side.name, XLabel: "avg file size MB", LogX: true, Width: 60, Height: 10,
		}, textplot.Series{Xs: xs, Ys: ys}))
	}
}

func printFigure7(res core.Results) {
	u := res.Usage
	fmt.Println("== Figure 7: per-user store/retrieve volume ratio ==")
	counts := func(ratios []float64) (down, mixed, up float64) {
		for _, r := range ratios {
			switch {
			case r < -5:
				down++
			case r > 5:
				up++
			default:
				mixed++
			}
		}
		n := float64(len(ratios))
		if n == 0 {
			return 0, 0, 0
		}
		return down / n, mixed / n, up / n
	}
	for _, g := range []struct {
		name   string
		ratios []float64
	}{
		{"mobile-only", u.RatiosMobileOnly},
		{"mobile-and-pc", u.RatiosMobileAndPC},
		{"pc-only", u.RatiosPCOnly},
	} {
		d, m, up := counts(g.ratios)
		fmt.Printf("%-14s: retrieval-dominant %.1f%%  mixed %.1f%%  storage-dominant %.1f%%\n",
			g.name, 100*d, 100*m, 100*up)
	}
	fmt.Println()
}

func printTable3(res core.Results) {
	fmt.Println("== Table 3: user types by category ==")
	cats := []string{"mobile-only", "mobile-and-pc", "pc-only"}
	rows := [][]string{}
	for _, class := range []string{"upload-only", "download-only", "occasional", "mixed"} {
		row := []string{class}
		for _, cat := range cats {
			r := res.Usage.Table3[class][cat]
			row = append(row, fmt.Sprintf("%.1f%%", 100*r.UserFrac),
				fmt.Sprintf("%.0f%%/%.0f%%", 100*r.StoreFrac, 100*r.RetrFrac))
		}
		rows = append(rows, row)
	}
	fmt.Println(textplot.Table(
		[]string{"class", "mob users", "st/rt vol", "m+pc users", "st/rt vol", "pc users", "st/rt vol"}, rows))
	fmt.Println("paper (mobile-only): upload 51.5% (86.6% vol), download 17.3% (84.5% vol), occasional 23.9%, mixed 7.2%")
	fmt.Println()
}

func printFigure8(res core.Results) {
	e := res.Engagement
	fmt.Println("== Figure 8: user engagement ==")
	strata := sortedKeys(e.Day0Users)
	for _, s := range strata {
		fmt.Printf("%-18s: %5d day-0 users, never-return %.1f%%", s, e.Day0Users[s], 100*e.NeverReturn[s])
		if rd := e.ReturnDay[s]; len(rd) > 1 {
			fmt.Printf(", return day1 %.1f%% day2 %.1f%%", 100*rd[1], 100*rd[2])
		}
		fmt.Println()
	}
	fmt.Println("paper: ~half of 1-device users never return; <20% for multi-device")
	fmt.Println()
}

func printFigure9(res core.Results) {
	e := res.Engagement
	fmt.Println("== Figure 9: retrieval after day-0 uploads ==")
	for _, s := range sortedKeys(e.Day0Uploaders) {
		curve := e.RetrievalByDay[s]
		if len(curve) == 0 {
			continue
		}
		fmt.Printf("%-18s: %5d uploaders, retrieve day0 %.1f%% ... day%d %.1f%%, never %.1f%%\n",
			s, e.Day0Uploaders[s], 100*curve[0], len(curve)-1, 100*curve[len(curve)-1], 100*e.NeverRetrieve[s])
	}
	fmt.Println("paper: >80% of mobile-only users never retrieve their uploads within the week")
	fmt.Println()
}

func printFigure10(res core.Results) {
	a := res.Activity
	fmt.Println("== Figure 10: user activity rank distributions ==")
	if a.StoreSE.C == 0 || a.RetrieveSE.C == 0 {
		fmt.Println("(not enough active users for the SE fits)")
		fmt.Println()
		return
	}
	fmt.Printf("storage:   SE c=%.3f x0=%.3f R²=%.4f (paper c=0.2, R²=0.9992); power-law R²=%.4f\n",
		a.StoreSE.C, a.StoreSE.X0, a.StoreSE.R2, a.StorePowerLawR2)
	fmt.Printf("retrieval: SE c=%.3f x0=%.3f R²=%.4f (paper c=0.15, R²=0.9990); power-law R²=%.4f\n\n",
		a.RetrieveSE.C, a.RetrieveSE.X0, a.RetrieveSE.R2, a.RetrievePowerLawR2)

	// Rank plot (log-log) for storage.
	desc := append([]float64(nil), a.StoreCounts...)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))
	var xs, ys []float64
	for i := 0; i < len(desc); i += 1 + len(desc)/200 {
		xs = append(xs, float64(i+1))
		ys = append(ys, math.Log10(desc[i]))
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "Fig 10a: stored files per user (log10 y) vs rank", XLabel: "rank", LogX: true, Width: 60, Height: 12,
	}, textplot.Series{Xs: xs, Ys: ys}))
}

func printFigure12(res core.Results) {
	p := res.Perf
	fmt.Println("== Figure 12: chunk transfer time by device ==")
	fmt.Printf("median upload:   android %.2fs (paper 4.1s)  ios %.2fs (paper 1.6s)\n",
		p.MedianUpload(trace.Android).Seconds(), p.MedianUpload(trace.IOS).Seconds())
	fmt.Printf("median download: android %.2fs  ios %.2fs\n\n",
		p.MedianDownload(trace.Android).Seconds(), p.MedianDownload(trace.IOS).Seconds())

	var series []textplot.Series
	for _, d := range []trace.DeviceType{trace.Android, trace.IOS} {
		xs, ps := p.UploadTime[d].Points(60)
		series = append(series, textplot.Series{Name: d.String(), Xs: xs, Ys: ps})
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "Fig 12a: CDF of chunk upload time (s)", XLabel: "seconds", Width: 70, Height: 12,
	}, series...))
}

func printFigure14(res core.Results) {
	p := res.Perf
	fmt.Println("== Figure 14: RTT ==")
	fmt.Printf("median %.0f ms (paper ~100 ms), q90 %.0f ms, q99 %.0f ms\n\n",
		p.RTT.Quantile(0.5)*1000, p.RTT.Quantile(0.9)*1000, p.RTT.Quantile(0.99)*1000)
	xs, ps := p.RTT.Points(80)
	for i := range xs {
		xs[i] *= 1000
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "Fig 14: CDF of RTT (ms, log x)", XLabel: "ms", LogX: true, Width: 70, Height: 12,
	}, textplot.Series{Xs: xs, Ys: ps}))
}

func printFigure15(res core.Results) {
	p := res.Perf
	fmt.Println("== Figure 15: estimated sending window for storage flows ==")
	fmt.Printf("P(swnd <= 64 KB): %.3f — concentration below the unscaled receive window\n", p.SWnd.P(66*1024))
	fmt.Printf("median %.1f KB, q90 %.1f KB\n\n", p.SWnd.Quantile(0.5)/1024, p.SWnd.Quantile(0.9)/1024)
}

func printIdleStudy(flows int) {
	res, err := core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: flows, Seed: 1})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Figures 13 & 16: idle time between chunks (TCP simulator) ==")
	rows := [][]string{}
	for _, cls := range []string{"android/storage", "ios/storage", "android/retrieval", "ios/retrieval"} {
		st := res.Classes[cls]
		rows = append(rows, []string{
			cls,
			fmt.Sprintf("%.0f ms", st.Tsrv.Quantile(0.5)*1000),
			fmt.Sprintf("%.0f ms", st.Tclt.Quantile(0.5)*1000),
			fmt.Sprintf("%.0f ms", st.Tclt.Quantile(0.9)*1000),
			fmt.Sprintf("%.1f%%", 100*st.RestartFrac),
			fmt.Sprintf("%.2f s", st.MedianChunkTime.Seconds()),
		})
	}
	fmt.Println(textplot.Table(
		[]string{"class", "med Tsrv", "med Tclt", "q90 Tclt", "idle>RTO", "med chunk"}, rows))
	fmt.Println("paper Fig 16c: 60% of Android storage idles restart slow-start vs 18% for iOS")

	// Fig 13: sequence number over time for the sample flows.
	for _, dev := range []string{"android", "ios"} {
		flow := res.SampleFlows[dev]
		var xs, ys []float64
		for _, s := range flow.Samples {
			if s.At > 10*time.Second {
				break
			}
			xs = append(xs, s.At.Seconds())
			ys = append(ys, float64(s.Seq)/1e6)
		}
		fmt.Println(textplot.Render(textplot.Options{
			Title:  "Fig 13a: sequence number (MB) over time, " + dev + " storage flow",
			XLabel: "s", Width: 70, Height: 10,
		}, textplot.Series{Xs: xs, Ys: ys}))
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
