// Command mcsrebalance restores the cluster's placement invariant:
// every chunk on exactly its N ring owners. It discovers the
// membership from any live node, takes a census of which node holds
// which chunks, streams missing owner copies from surviving replicas,
// and (with -prune) removes copies from nodes the ring does not
// assign — only after a batched stat confirms every owner holds the
// chunk.
//
// Run it after replacing a node's disk, changing the membership, or
// whenever mcs_cluster_underreplicated stays above zero (the online
// repair queue only heals failures the writing node itself observed).
//
// Usage:
//
//	mcsrebalance -node http://10.0.0.1:8080            # heal missing replicas
//	mcsrebalance -node http://10.0.0.1:8080 -prune     # also drop misplaced copies
//	mcsrebalance -node http://10.0.0.1:8080 -dry-run -v
package main

import (
	"flag"
	"fmt"
	"os"

	"mcloud/internal/storage"
)

func main() {
	var (
		node   = flag.String("node", "", "base URL of any live cluster node (required)")
		prune  = flag.Bool("prune", false, "delete misplaced copies once all owners are confirmed")
		dryRun = flag.Bool("dry-run", false, "report planned moves without transferring bytes")
		verb   = flag.Bool("v", false, "log every copy and prune")
	)
	flag.Parse()
	if *node == "" {
		fmt.Fprintln(os.Stderr, "mcsrebalance: -node is required")
		flag.Usage()
		os.Exit(2)
	}

	rb := &storage.Rebalancer{
		Seed:   *node,
		Prune:  *prune,
		DryRun: *dryRun,
	}
	if *verb {
		rb.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := rb.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsrebalance:", err)
		os.Exit(1)
	}
	mode := ""
	if *dryRun {
		mode = " (dry run)"
	}
	fmt.Printf("mcsrebalance%s: %d nodes, N=%d\n", mode, rep.Nodes, rep.Replicas)
	fmt.Printf("  chunks     %d (%d copies, %d misplaced)\n", rep.Chunks, rep.Copies, rep.Misplaced)
	fmt.Printf("  replicated %d\n", rep.Replicated)
	fmt.Printf("  pruned     %d\n", rep.Pruned)
	if rep.Unlistable > 0 {
		fmt.Printf("  unlistable %d node(s) — census incomplete, pruning disabled\n", rep.Unlistable)
	}
	if rep.Errors > 0 {
		fmt.Printf("  errors     %d\n", rep.Errors)
		os.Exit(1)
	}
}
