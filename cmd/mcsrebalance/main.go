// Command mcsrebalance restores the cluster's placement invariant:
// every chunk on exactly its N ring owners. It discovers the
// membership from any live node, takes a census of which node holds
// which chunks, streams missing owner copies from surviving replicas,
// and (with -prune) removes copies from nodes the ring does not
// assign — only after a batched stat confirms every owner holds the
// chunk.
//
// Run it after replacing a node's disk, changing the membership, or
// whenever mcs_cluster_underreplicated stays above zero (the online
// repair queue only heals failures the writing node itself observed).
//
// With -meta the same invariant is enforced on the metadata plane:
// every user namespace on the shard the versioned shard map assigns.
// Misplaced namespaces (leftovers of a -metashards change) are moved
// — export from the holder, import through the owner's WAL keeping
// the file URLs clients hold, verify, then evict the leftover.
// -verify audits placement without moving and exits nonzero when any
// namespace sits on the wrong shard.
//
// Usage:
//
//	mcsrebalance -node http://10.0.0.1:8080            # heal missing replicas
//	mcsrebalance -node http://10.0.0.1:8080 -prune     # also drop misplaced copies
//	mcsrebalance -node http://10.0.0.1:8080 -dry-run -v
//	mcsrebalance -meta -node http://10.0.0.1:8070      # move misplaced user namespaces
//	mcsrebalance -meta -node http://10.0.0.1:8070 -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"mcloud/internal/storage"
)

func main() {
	var (
		node   = flag.String("node", "", "base URL of any live cluster node (required; with -meta, any metadata endpoint)")
		prune  = flag.Bool("prune", false, "delete misplaced copies once all owners are confirmed")
		dryRun = flag.Bool("dry-run", false, "report planned moves without transferring bytes")
		verb   = flag.Bool("v", false, "log every copy and prune")
		meta   = flag.Bool("meta", false, "rebalance the metadata plane (user namespaces across shards) instead of chunks")
		verify = flag.Bool("verify", false, "with -meta: audit shard placement only; exit 1 when any namespace is misplaced")
	)
	flag.Parse()
	if *node == "" {
		fmt.Fprintln(os.Stderr, "mcsrebalance: -node is required")
		flag.Usage()
		os.Exit(2)
	}

	if *meta {
		runMeta(*node, *dryRun, *verify, *verb)
		return
	}

	rb := &storage.Rebalancer{
		Seed:   *node,
		Prune:  *prune,
		DryRun: *dryRun,
	}
	if *verb {
		rb.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := rb.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsrebalance:", err)
		os.Exit(1)
	}
	mode := ""
	if *dryRun {
		mode = " (dry run)"
	}
	fmt.Printf("mcsrebalance%s: %d nodes, N=%d\n", mode, rep.Nodes, rep.Replicas)
	fmt.Printf("  chunks     %d (%d copies, %d misplaced)\n", rep.Chunks, rep.Copies, rep.Misplaced)
	fmt.Printf("  replicated %d\n", rep.Replicated)
	fmt.Printf("  pruned     %d\n", rep.Pruned)
	if rep.Unlistable > 0 {
		fmt.Printf("  unlistable %d node(s) — census incomplete, pruning disabled\n", rep.Unlistable)
	}
	if rep.Errors > 0 {
		fmt.Printf("  errors     %d\n", rep.Errors)
		os.Exit(1)
	}
}

// runMeta drives the metadata-plane rebalance (or -verify audit).
func runMeta(seed string, dryRun, verify, verb bool) {
	rb := &storage.MetaRebalancer{Seed: seed, DryRun: dryRun, Verify: verify}
	if verb {
		rb.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := rb.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsrebalance:", err)
		os.Exit(1)
	}
	mode := ""
	switch {
	case verify:
		mode = " (verify)"
	case dryRun:
		mode = " (dry run)"
	}
	fmt.Printf("mcsrebalance -meta%s: %d shards, map version %d\n", mode, rep.Shards, rep.MapVersion)
	fmt.Printf("  users      %d (%d misplaced)\n", rep.Users, rep.Misplaced)
	fmt.Printf("  moved      %d\n", rep.Moved)
	fmt.Printf("  evicted    %d\n", rep.Evicted)
	if rep.Errors > 0 {
		fmt.Printf("  errors     %d\n", rep.Errors)
		os.Exit(1)
	}
	if verify && rep.Misplaced > 0 {
		os.Exit(1)
	}
}
