// Command mcsload drives a fleet of simulated devices against a
// running mcsserver: each worker stores files sized from the paper's
// Table 2 mixture and retrieves a fraction of them back, exercising
// the live dedup and chunk paths over real HTTP.
//
// Usage:
//
//	mcsserver -meta :8070 -frontends :8081 -log service.log &
//	mcsload -meta http://127.0.0.1:8070 -devices 8 -files 40
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"mcloud/internal/faults"
	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/storage"
	"mcloud/internal/textplot"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
	"mcloud/internal/workload"
)

func main() {
	var (
		metaURL  = flag.String("meta", "http://127.0.0.1:8070", "metadata server base URL(s), comma-separated primary-first; clients fail over and follow promotions")
		devices  = flag.Int("devices", 4, "concurrent simulated devices")
		files    = flag.Int("files", 20, "files stored per device")
		retr     = flag.Float64("retrieve", 0.3, "fraction of stored files retrieved back")
		dup      = flag.Float64("dup", 0.2, "probability a file duplicates another device's content")
		seed     = flag.Uint64("seed", 1, "workload seed")
		opsURL   = flag.String("ops", "", "mcsserver ops base URL(s), comma-separated (e.g. http://127.0.0.1:8090,http://127.0.0.1:8091); polls every /metrics and shows a merged live dashboard")
		dash     = flag.Duration("dash", time.Second, "dashboard poll interval when -ops is set")
		chaos    = flag.String("chaos", "", `client-side fault scenario, e.g. "mixed10,seed=42": faults are injected into the loaders' own transports (see internal/faults)`)
		maxFail  = flag.Float64("maxfail", 0, "tolerated operation failure rate before a non-zero exit")
		verify   = flag.Bool("verify", true, "after the run, retrieve every acknowledged store and verify it byte-identical")
		parallel = flag.Int("parallel", storage.DefaultParallel, "chunk requests kept in flight per transfer (1 = sequential)")
		waitRep  = flag.Duration("waitrepair", 0, "poll -ops /metrics after the run until mcs_cluster_underreplicated drops to 0, failing at this timeout")
		traceOut = flag.String("tracedump", "", "record client-side trace spans and write them to this file as Export JSON (joinable by mcstrace)")
		traceSmp = flag.Int("tracesample", 1, "with -tracedump, trace every Nth file operation")
	)
	flag.Parse()
	fmt.Printf("mcsload: GOMAXPROCS=%d, %d chunk requests in flight per transfer\n",
		runtime.GOMAXPROCS(0), *parallel)

	scenario, err := faults.ParseScenario(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsload:", err)
		os.Exit(2)
	}

	var dashboard *opsDashboard
	if *opsURL != "" {
		dashboard = startDashboard(*opsURL, *dash)
	}

	reg := metrics.NewRegistry()
	cm := storage.NewClientMetrics(reg)

	// The loader is the trace root: client spans carry the sampling
	// decision, servers record every continued trace, and mcstrace
	// joins this dump with the nodes' /debug/traces exports.
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Config{Node: "loadgen", Sample: *traceSmp})
	}

	// acked remembers every store the service acknowledged, with the
	// content hash the client computed, for the post-run verification
	// sweep: url -> hex MD5.
	acked := make(map[string]string)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var stored, deduped, retrieved int
	var storeFails, retrFails int
	var bytesUp, bytesDown int64
	start := time.Now()

	for d := 0; d < *devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			// Tag the loader goroutines (and the chunk-window goroutines
			// they spawn) so CPU profiles split client from server work.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("component", "client")))
			src := randx.Derive(*seed, fmt.Sprintf("loader/%d", d))
			dev := trace.Android
			if src.Bool(1 - workload.AndroidShare) {
				dev = trace.IOS
			}
			cfg := storage.ClientConfig{
				MetaURL:   *metaURL,
				UserID:    uint64(1000 + d),
				DeviceID:  uint64(d),
				Device:    dev,
				SimRTT:    100 * time.Millisecond,
				RetrySeed: *seed,
				Metrics:   cm,
				Parallel:  *parallel,
				Tracer:    tracer,
			}
			if scenario.Enabled() {
				// Each device owns a derived fault stream, so the fault
				// sequence a device sees is reproducible regardless of
				// goroutine interleaving.
				cfg.HTTP = &http.Client{
					Transport: faults.NewTransport(scenario.Derive(fmt.Sprintf("loader/%d", d)), nil),
				}
			}
			client := storage.NewClient(cfg)
			var urls []string
			for i := 0; i < *files; i++ {
				// Duplicated content: a fixed-size, fixed-content file
				// derived from a shared stream so different devices
				// collide (exercises the metadata dedup path). Unique
				// content gets a size from the paper's store mixture,
				// capped to keep the demo quick.
				var size int64
				var content *randx.Source
				if src.Bool(*dup) {
					idx := src.Intn(8)
					size = int64(idx+1) * 384 << 10
					content = randx.Derive(*seed, fmt.Sprintf("shared/%d", idx))
				} else {
					size = int64(src.MixtureExp(workload.StoreSizeAlphas, workload.StoreSizeMus) * float64(1<<20))
					if size > 8<<20 {
						size = 8 << 20
					}
					if size < 4<<10 {
						size = 4 << 10
					}
					content = src.Split()
				}
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(content.Uint64())
				}
				res, err := client.StoreFile(fmt.Sprintf("d%d-f%d.bin", d, i), data)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mcsload: store: %v\n", err)
					mu.Lock()
					storeFails++
					mu.Unlock()
					continue
				}
				mu.Lock()
				stored++
				if res.Deduplicated {
					deduped++
				}
				bytesUp += res.BytesSent
				acked[res.URL] = storage.SumBytes(data).String()
				mu.Unlock()
				urls = append(urls, res.URL)
			}
			for _, u := range urls {
				if !src.Bool(*retr) {
					continue
				}
				data, err := client.RetrieveFile(u)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mcsload: retrieve: %v\n", err)
					mu.Lock()
					retrFails++
					mu.Unlock()
					continue
				}
				mu.Lock()
				retrieved++
				bytesDown += int64(len(data))
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()

	if dashboard != nil {
		dashboard.stop()
	}
	fmt.Printf("mcsload: stored %d files (%d deduplicated server-side), uploaded %.1f MB\n",
		stored, deduped, float64(bytesUp)/(1<<20))
	fmt.Printf("mcsload: retrieved %d files, downloaded %.1f MB\n", retrieved, float64(bytesDown)/(1<<20))
	if storeFails+retrFails > 0 {
		fmt.Printf("mcsload: FAILED %d stores, %d retrieves\n", storeFails, retrFails)
	}
	if rs := cm.Stats(); rs.Retries > 0 || scenario.Enabled() {
		ratio := 0.0
		if rs.Retries > 0 {
			ratio = float64(rs.RetrySuccess) / float64(rs.Retries)
		}
		fmt.Printf("mcsload: resilience: %d retries (%.0f%% recovered), %d give-ups, %d upload resumes, %d chunk re-fetches\n",
			rs.Retries, 100*ratio, rs.GiveUps, rs.Resumes, rs.Refetches)
	}
	fmt.Printf("mcsload: elapsed %v\n", time.Since(start).Round(time.Millisecond))

	// The headline invariant: everything the service acknowledged must
	// come back byte-identical, over a clean (fault-free) connection.
	lost, corrupt := 0, 0
	if *verify && len(acked) > 0 {
		verifier := storage.NewClient(storage.ClientConfig{MetaURL: *metaURL, UserID: 999, DeviceID: 999, Device: trace.PC, Metrics: cm, Parallel: *parallel})
		for url, md5 := range acked {
			data, err := verifier.RetrieveFile(url)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcsload: verify %s: %v\n", url, err)
				lost++
				continue
			}
			if storage.SumBytes(data).String() != md5 {
				fmt.Fprintf(os.Stderr, "mcsload: verify %s: content mismatch\n", url)
				corrupt++
			}
		}
		fmt.Printf("mcsload: verified %d acknowledged files: %d lost, %d corrupted\n", len(acked), lost, corrupt)
	}

	if dashboard != nil {
		dashboard.render(os.Stdout)
	}

	if tracer != nil {
		spans := tracer.Snapshot(tracing.Filter{})
		ex := tracing.Export{Node: tracer.Node(), Stats: tracer.TracerStats(), Spans: spans}
		f, err := os.Create(*traceOut)
		if err == nil {
			err = json.NewEncoder(f).Encode(ex)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsload: tracedump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mcsload: tracedump: wrote %d spans (%d traces pinned) to %s\n",
			len(spans), ex.Stats.Pinned, *traceOut)
	}

	// Cluster runs: wait for the repair loop to drain the
	// under-replication left behind by injected outages.
	if *waitRep > 0 {
		if *opsURL == "" {
			fmt.Fprintln(os.Stderr, "mcsload: -waitrepair needs -ops to scrape /metrics")
			os.Exit(2)
		}
		probe := &opsDashboard{urls: splitList(*opsURL)}
		deadline := time.Now().Add(*waitRep)
		for {
			vals, err := probe.scrape()
			if err == nil && vals[metrics.Key("mcs_cluster_underreplicated")] == 0 {
				fmt.Println("mcsload: cluster fully replicated (mcs_cluster_underreplicated = 0)")
				break
			}
			if time.Now().After(deadline) {
				under := math.NaN()
				if err == nil {
					under = vals[metrics.Key("mcs_cluster_underreplicated")]
				}
				fmt.Fprintf(os.Stderr, "mcsload: repair did not drain within %v (underreplicated=%v, err=%v)\n", *waitRep, under, err)
				os.Exit(1)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	ops := stored + retrieved + storeFails + retrFails
	failRate := 0.0
	if ops > 0 {
		failRate = float64(storeFails+retrFails) / float64(ops)
	}
	if lost > 0 || corrupt > 0 {
		fmt.Fprintf(os.Stderr, "mcsload: INVARIANT VIOLATED: %d lost, %d corrupted acknowledged files\n", lost, corrupt)
		os.Exit(1)
	}
	if failRate > *maxFail {
		fmt.Fprintf(os.Stderr, "mcsload: failure rate %.3f exceeds -maxfail %.3f\n", failRate, *maxFail)
		os.Exit(1)
	}
}

// opsDashboard polls one or more mcsserver ops listeners' /metrics
// endpoints during the run (a sharded metadata plane exposes one per
// node), prints a live status line per tick, and renders the merged
// time series as textplot charts afterwards.
type opsDashboard struct {
	urls     []string
	interval time.Duration
	done     chan struct{}
	finished chan struct{}

	mu      sync.Mutex
	times   []float64 // seconds since start
	rps     []float64
	p99ms   []float64
	hitRate []float64 // cache hit fraction, NaN when no cache
	under   []float64 // mcs_cluster_underreplicated gauge
	sheds   []float64 // cumulative overload sheds across scopes
	metaP99 []float64 // metadata commit p99 (ms), worst shard, NaN before first commit
	walP99  []float64 // metadata WAL fsync-wait p99 (ms), worst shard, NaN when not durable

	// Per-shard metadata series, keyed by the shard label. Shards may
	// appear mid-run (a promotion brings a new node's ops online), so
	// each history is padded with NaN up to the tick it first reported.
	shardP99 map[string][]float64 // commit p99 (ms) by shard
	shardLag map[string][]float64 // standby replication lag (records) by shard
}

func startDashboard(opsURL string, interval time.Duration) *opsDashboard {
	d := &opsDashboard{
		urls:     splitList(opsURL),
		interval: interval,
		done:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	go d.loop()
	return d
}

func (d *opsDashboard) loop() {
	defer close(d.finished)
	start := time.Now()
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	var prevReqs, prevT float64
	first := true
	for {
		select {
		case <-d.done:
			return
		case <-tick.C:
		}
		vals, err := d.scrape()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsload: ops poll: %v\n", err)
			continue
		}
		t := time.Since(start).Seconds()
		var reqs float64
		for _, op := range []string{"file-store", "file-retrieve", "chunk-store", "chunk-retrieve"} {
			reqs += vals[metrics.Key("mcs_frontend_requests_total", "op", op)]
		}
		rps := 0.0
		if !first && t > prevT {
			rps = (reqs - prevReqs) / (t - prevT)
		}
		prevReqs, prevT, first = reqs, t, false

		p99 := vals[metrics.Key("mcs_frontend_chunk_seconds", "dir", "store", "device", "all", "quantile", "0.99")]
		hit := math.NaN()
		hits, okH := vals[metrics.Key("mcs_cache_hits_total")]
		misses, okM := vals[metrics.Key("mcs_cache_misses_total")]
		if okH && okM && hits+misses > 0 {
			hit = hits / (hits + misses)
		}
		// Cluster health: without these two a degraded cluster (replicas
		// missing, requests bounced at the door) looks healthy live.
		under := vals[metrics.Key("mcs_cluster_underreplicated")]
		sheds := sumPrefix(vals, "mcs_overload_sheds_total")

		// Metadata plane: commit latency is what every store waits on,
		// and the WAL fsync wait is its durable floor. Series carry a
		// shard label; the status line shows the worst shard and the
		// per-shard histories feed their own charts.
		commitByShard := shardSeries(vals, "mcs_meta_op_seconds", `op="commit"`, `quantile="0.99"`)
		metaP99 := math.NaN()
		for shard, v := range commitByShard {
			commitByShard[shard] = v * 1000
			if math.IsNaN(metaP99) || v*1000 > metaP99 {
				metaP99 = v * 1000
			}
		}
		walP99 := math.NaN()
		for _, v := range shardSeries(vals, "mcs_meta_wal_fsync_seconds", `quantile="0.99"`) {
			if math.IsNaN(walP99) || v*1000 > walP99 {
				walP99 = v * 1000
			}
		}
		lagByShard := shardSeries(vals, "mcs_meta_standby_lag")

		d.mu.Lock()
		d.times = append(d.times, t)
		d.rps = append(d.rps, rps)
		d.p99ms = append(d.p99ms, p99*1000)
		d.hitRate = append(d.hitRate, hit)
		d.under = append(d.under, under)
		d.sheds = append(d.sheds, sheds)
		d.metaP99 = append(d.metaP99, metaP99)
		d.walP99 = append(d.walP99, walP99)
		if d.shardP99 == nil {
			d.shardP99 = make(map[string][]float64)
			d.shardLag = make(map[string][]float64)
		}
		ticks := len(d.times) - 1
		appendShard(d.shardP99, commitByShard, ticks)
		appendShard(d.shardLag, lagByShard, ticks)
		d.mu.Unlock()

		line := fmt.Sprintf("mcsload: [dash] t=%5.1fs rps=%7.1f upload_p99=%7.1fms", t, rps, p99*1000)
		if !math.IsNaN(hit) {
			line += fmt.Sprintf(" cache_hit=%5.1f%%", 100*hit)
		}
		if !math.IsNaN(metaP99) {
			line += fmt.Sprintf(" meta_p99=%5.1fms", metaP99)
		}
		if !math.IsNaN(walP99) {
			line += fmt.Sprintf(" fsync_p99=%5.1fms", walP99)
		}
		line += fmt.Sprintf(" under=%d sheds=%d", int64(under), int64(sheds))
		fmt.Println(line)
	}
}

// scrape polls every ops endpoint and merges the expositions: series
// labeled by shard are disjoint across nodes, plain counters and
// gauges sum, and quantile series keep the worst (highest) value.
func (d *opsDashboard) scrape() (map[string]float64, error) {
	merged := make(map[string]float64)
	var lastErr error
	ok := 0
	for _, u := range d.urls {
		vals, err := d.scrapeOne(u)
		if err != nil {
			lastErr = err
			continue
		}
		ok++
		for k, v := range vals {
			if strings.Contains(k, `quantile="`) {
				if cur, dup := merged[k]; !dup || v > cur {
					merged[k] = v
				}
				continue
			}
			merged[k] += v
		}
	}
	if ok == 0 {
		return nil, lastErr
	}
	return merged, nil
}

func (d *opsDashboard) scrapeOne(u string) (map[string]float64, error) {
	resp, err := http.Get(u + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// splitList parses a comma-separated URL list.
func splitList(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// shardSeries collects one metric's per-shard values: every series of
// name carrying all the given label pairs contributes its shard label
// value. Series without a shard label land under "".
func shardSeries(vals map[string]float64, name string, labels ...string) map[string]float64 {
	out := make(map[string]float64)
	prefix := name + "{"
	for k, v := range vals {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		all := true
		for _, l := range labels {
			if !strings.Contains(k, l) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		shard := ""
		if i := strings.Index(k, `shard="`); i >= 0 {
			rest := k[i+len(`shard="`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				shard = rest[:j]
			}
		}
		out[shard] = v
	}
	return out
}

// appendShard folds one tick's per-shard readings into the padded
// histories: shards seen for the first time are back-filled with NaN,
// shards missing this tick record NaN.
func appendShard(hist map[string][]float64, byShard map[string]float64, ticks int) {
	for shard := range byShard {
		if _, ok := hist[shard]; !ok {
			pad := make([]float64, ticks)
			for i := range pad {
				pad[i] = math.NaN()
			}
			hist[shard] = pad
		}
	}
	for shard, h := range hist {
		if v, ok := byShard[shard]; ok {
			hist[shard] = append(h, v)
		} else {
			hist[shard] = append(h, math.NaN())
		}
	}
}

func (d *opsDashboard) stop() {
	close(d.done)
	<-d.finished
}

// render draws the collected series as ASCII charts.
func (d *opsDashboard) render(w *os.File) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.times) < 2 {
		return
	}
	opts := textplot.Options{Width: 64, Height: 10, XLabel: "s since start"}
	plot := func(title string, ys []float64, scale float64) {
		var xs, vs []float64
		for i, v := range ys {
			if !math.IsNaN(v) {
				xs = append(xs, d.times[i])
				vs = append(vs, v*scale)
			}
		}
		if len(xs) < 2 {
			return
		}
		opts.Title = title
		fmt.Fprint(w, textplot.Render(opts, textplot.Series{Xs: xs, Ys: vs}))
	}
	plot("requests/s at the front-ends", d.rps, 1)
	plot("p99 chunk upload latency (ms)", d.p99ms, 1)
	plot("cache hit rate (%)", d.hitRate, 100)
	plot("p99 metadata commit latency (ms)", d.metaP99, 1)
	plot("p99 metadata WAL fsync wait (ms)", d.walP99, 1)
	// Per-shard metadata charts, when the plane is sharded: one commit
	// latency chart per shard, and replication lag for any standby
	// that reported (a flat-zero lag chart is noise, skip it).
	for _, shard := range sortedShards(d.shardP99) {
		if len(d.shardP99) > 1 {
			plot(fmt.Sprintf("p99 metadata commit latency, shard %s (ms)", shard), d.shardP99[shard], 1)
		}
	}
	for _, shard := range sortedShards(d.shardLag) {
		if peak(d.shardLag[shard]) > 0 {
			plot(fmt.Sprintf("metadata standby lag, shard %s (records)", shard), d.shardLag[shard], 1)
		}
	}
	if peak(d.under) > 0 {
		plot("under-replicated chunks", d.under, 1)
	}
	if peak(d.sheds) > 0 {
		plot("overload sheds (cumulative)", d.sheds, 1)
	}
}

// sumPrefix totals every series of a metric across its label sets
// (e.g. mcs_overload_sheds_total{scope="frontend"} + {scope="meta"}).
func sumPrefix(vals map[string]float64, name string) float64 {
	var sum float64
	for k, v := range vals {
		if k == name || (len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '{') {
			sum += v
		}
	}
	return sum
}

// sortedShards returns the map's shard labels in stable order.
func sortedShards(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func peak(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
