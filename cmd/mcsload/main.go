// Command mcsload drives a fleet of simulated devices against a
// running mcsserver: each worker stores files sized from the paper's
// Table 2 mixture and retrieves a fraction of them back, exercising
// the live dedup and chunk paths over real HTTP.
//
// Usage:
//
//	mcsserver -meta :8070 -frontends :8081 -log service.log &
//	mcsload -meta http://127.0.0.1:8070 -devices 8 -files 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

func main() {
	var (
		metaURL = flag.String("meta", "http://127.0.0.1:8070", "metadata server base URL")
		devices = flag.Int("devices", 4, "concurrent simulated devices")
		files   = flag.Int("files", 20, "files stored per device")
		retr    = flag.Float64("retrieve", 0.3, "fraction of stored files retrieved back")
		dup     = flag.Float64("dup", 0.2, "probability a file duplicates another device's content")
		seed    = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var stored, deduped, retrieved int
	var bytesUp, bytesDown int64
	start := time.Now()

	for d := 0; d < *devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			src := randx.Derive(*seed, fmt.Sprintf("loader/%d", d))
			dev := trace.Android
			if src.Bool(1 - workload.AndroidShare) {
				dev = trace.IOS
			}
			client := &storage.Client{
				MetaURL:  *metaURL,
				UserID:   uint64(1000 + d),
				DeviceID: uint64(d),
				Device:   dev,
				SimRTT:   100 * time.Millisecond,
			}
			var urls []string
			for i := 0; i < *files; i++ {
				// Duplicated content: a fixed-size, fixed-content file
				// derived from a shared stream so different devices
				// collide (exercises the metadata dedup path). Unique
				// content gets a size from the paper's store mixture,
				// capped to keep the demo quick.
				var size int64
				var content *randx.Source
				if src.Bool(*dup) {
					idx := src.Intn(8)
					size = int64(idx+1) * 384 << 10
					content = randx.Derive(*seed, fmt.Sprintf("shared/%d", idx))
				} else {
					size = int64(src.MixtureExp(workload.StoreSizeAlphas, workload.StoreSizeMus) * float64(1<<20))
					if size > 8<<20 {
						size = 8 << 20
					}
					if size < 4<<10 {
						size = 4 << 10
					}
					content = src.Split()
				}
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(content.Uint64())
				}
				res, err := client.StoreFile(fmt.Sprintf("d%d-f%d.bin", d, i), data)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mcsload: store: %v\n", err)
					return
				}
				mu.Lock()
				stored++
				if res.Deduplicated {
					deduped++
				}
				bytesUp += res.BytesSent
				mu.Unlock()
				urls = append(urls, res.URL)
			}
			for _, u := range urls {
				if !src.Bool(*retr) {
					continue
				}
				data, err := client.RetrieveFile(u)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mcsload: retrieve: %v\n", err)
					return
				}
				mu.Lock()
				retrieved++
				bytesDown += int64(len(data))
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()

	fmt.Printf("mcsload: stored %d files (%d deduplicated server-side), uploaded %.1f MB\n",
		stored, deduped, float64(bytesUp)/(1<<20))
	fmt.Printf("mcsload: retrieved %d files, downloaded %.1f MB\n", retrieved, float64(bytesDown)/(1<<20))
	fmt.Printf("mcsload: elapsed %v\n", time.Since(start).Round(time.Millisecond))
}
