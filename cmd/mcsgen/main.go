// Command mcsgen generates a synthetic mobile cloud storage log
// dataset in the Table 1 schema, standing in for the paper's
// proprietary 349-million-entry trace.
//
// Usage:
//
//	mcsgen -users 20000 -pc 8000 -seed 1 -o week.log
//
// The output is one tab-separated record per HTTP request (file
// operations and chunk requests), time-ordered across the whole
// population.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

func main() {
	var (
		users  = flag.Int("users", 20000, "number of mobile users")
		pc     = flag.Int("pc", 0, "number of additional PC-only users")
		seed   = flag.Uint64("seed", 1, "dataset seed")
		days   = flag.Int("days", 7, "observation window in days")
		out    = flag.String("o", "-", "output file (- for stdout)")
		binFmt = flag.Bool("binary", false, "write the compact binary format instead of text")
	)
	flag.Parse()

	g, err := workload.New(workload.Config{
		Users:       *users,
		PCOnlyUsers: *pc,
		Seed:        *seed,
		Days:        *days,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
		if strings.HasSuffix(*out, ".gz") {
			gz := gzip.NewWriter(f)
			defer gz.Close()
			w = gz
		}
	}

	start := time.Now()
	var n int64
	if *binFmt {
		n, err = generateBinary(g, w)
	} else {
		n, err = g.GenerateTo(w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mcsgen: wrote %d log records for %d users in %v\n",
		n, g.Population(), time.Since(start).Round(time.Millisecond))
}

// generateBinary streams the dataset in the compact binary format.
func generateBinary(g *workload.Generator, w io.Writer) (int64, error) {
	bw := trace.NewBinaryWriter(w)
	s := g.Stream()
	for {
		l, ok := s.Next()
		if !ok {
			break
		}
		if err := bw.Write(l); err != nil {
			return bw.Count(), err
		}
	}
	return bw.Count(), bw.Flush()
}
