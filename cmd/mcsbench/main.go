// Command mcsbench measures how the four parallelized hot paths scale
// with worker count — sharded chunk-store writes, pipelined chunk
// transfers over a live in-process service, bounded-memory workload
// generation, and user-sharded analysis — and writes the results to a
// JSON report (BENCH_pipeline.json by default).
//
// The report records GOMAXPROCS and NumCPU alongside every timing:
// the store, generation, and analysis paths are CPU-bound, so their
// scaling is limited by available cores, while the transfer path is
// latency-bound (it overlaps simulated upstream processing delays)
// and scales with the in-flight window even on one core.
//
// Usage:
//
//	mcsbench                # full run, writes BENCH_pipeline.json
//	mcsbench -quick         # reduced sizes for CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/core"
	"mcloud/internal/randx"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
	"mcloud/internal/workload"
)

var workerCounts = []int{1, 2, 4, 8}

// pathReport is one hot path's scaling measurement.
type pathReport struct {
	// SecondsByWorkers maps worker count to wall-clock seconds.
	SecondsByWorkers map[string]float64 `json:"seconds_by_workers"`
	// SpeedupAt8 is t(1 worker) / t(8 workers).
	SpeedupAt8 float64 `json:"speedup_at_8"`
	Notes      string  `json:"notes,omitempty"`
}

type report struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Quick      bool   `json:"quick"`
	Timestamp  string `json:"timestamp"`

	Paths map[string]pathReport `json:"paths"`
	// AggregateSpeedupAt8 is the geometric mean of the per-path
	// 8-worker speedups.
	AggregateSpeedupAt8 float64 `json:"aggregate_speedup_at_8"`
	// TracedOverheadAt8 is t(transfer_traced, 8w) / t(transfer, 8w) - 1:
	// the fraction of transfer time added by tracing every operation.
	TracedOverheadAt8 float64 `json:"traced_overhead_at_8"`
	// BinGainAt8 is 1 - t(transfer_bin, 8w) / t(transfer, 8w): the
	// fraction of 8-worker transfer time saved by the mcsbin/1 batched
	// binary dialect over per-chunk JSON.
	BinGainAt8 float64 `json:"bin_gain_at_8"`
}

// gatedPaths are the hot paths the -baseline flag guards: a run whose
// speedup_at_8 drops more than 10% below the committed baseline fails.
var gatedPaths = []string{"store", "disk", "transfer"}

const baselineSlack = 0.9

func main() {
	var (
		out      = flag.String("o", "BENCH_pipeline.json", "report output path")
		quick    = flag.Bool("quick", false, "reduced problem sizes for CI smoke runs")
		baseline = flag.String("baseline", "", "committed report to gate against: exit non-zero if any of store/disk/transfer speedup_at_8 drops >10% below it")
		only     = flag.String("only", "", "comma-separated path names to run (default all); aggregate and delta lines need their inputs present")
		reps     = flag.Int("reps", 3, "repetitions per timing; the minimum is reported (least-noise estimator, stabilizes the gated speedup ratios)")
	)
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      *quick,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Paths:      map[string]pathReport{},
	}
	fmt.Printf("mcsbench: GOMAXPROCS=%d NumCPU=%d quick=%v\n", rep.GOMAXPROCS, rep.NumCPU, *quick)

	paths := []struct {
		name  string
		notes string
		run   func(workers int, quick bool) float64
	}{
		{"store", "CPU/lock-bound: concurrent Put into the sharded chunk store", benchStore},
		{"disk", "fsync-bound: concurrent durable Put into the segment store; group commit amortizes fsyncs across writers", benchDisk},
		{"transfer", "latency-bound: pipelined per-chunk JSON PUT+GET against a live front-end with a 20ms median simulated upstream delay (dialect pinned to JSON)", benchTransfer},
		{"transfer_bin", "the same workload over the mcsbin/1 batched binary dialect; the delta vs transfer is the dialect win (batched frames share upstream round trips)", benchTransferBin},
		{"transfer_traced", "the JSON transfer path with distributed tracing on and every operation sampled; the delta vs transfer is the tracing overhead", benchTransferTraced},
		{"cluster", "same workload and negotiated binary dialect as transfer_bin, but through a 3-node N=3/W=2 replicated cluster on loopback; the delta vs transfer_bin is the replication fan-out and one-hop forwarding overhead", benchCluster},
		{"generate", "CPU-bound: bounded-memory workload generation via StreamP", benchGenerate},
		{"analyze", "CPU-bound: user-sharded fold + merge via ParallelAnalyzer", benchAnalyze},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	speedups := make([]float64, 0, len(paths))
	for _, p := range paths {
		if len(want) > 0 && !want[p.name] {
			continue
		}
		pr := pathReport{SecondsByWorkers: map[string]float64{}, Notes: p.notes}
		// One discarded warmup run per path: the first timed run
		// otherwise pays heap growth and page faults for the path's
		// working set, inflating t(1) and with it the reported speedup.
		runtime.GC()
		p.run(workerCounts[len(workerCounts)-1], *quick)
		var t1, t8 float64
		for _, w := range workerCounts {
			secs := math.Inf(1)
			for r := 0; r < *reps; r++ {
				// Settle allocator debt from setup/previous runs so one
				// timing doesn't pay another's GC bill.
				runtime.GC()
				secs = math.Min(secs, p.run(w, *quick))
			}
			pr.SecondsByWorkers[fmt.Sprint(w)] = secs
			fmt.Printf("mcsbench: %-8s workers=%d  %8.3fs\n", p.name, w, secs)
			if w == 1 {
				t1 = secs
			}
			if w == 8 {
				t8 = secs
			}
		}
		if t8 > 0 {
			pr.SpeedupAt8 = t1 / t8
		}
		fmt.Printf("mcsbench: %-8s speedup at 8 workers: %.2fx\n", p.name, pr.SpeedupAt8)
		rep.Paths[p.name] = pr
		speedups = append(speedups, pr.SpeedupAt8)
	}

	if len(speedups) > 0 {
		logSum := 0.0
		for _, s := range speedups {
			logSum += math.Log(math.Max(s, 1e-9))
		}
		rep.AggregateSpeedupAt8 = math.Exp(logSum / float64(len(speedups)))
		fmt.Printf("mcsbench: aggregate speedup at 8 workers: %.2fx (geometric mean)\n", rep.AggregateSpeedupAt8)
	}

	if plain, traced := rep.Paths["transfer"].SecondsByWorkers["8"], rep.Paths["transfer_traced"].SecondsByWorkers["8"]; plain > 0 && traced > 0 {
		rep.TracedOverheadAt8 = traced/plain - 1
		fmt.Printf("mcsbench: tracing overhead on the transfer path at 8 workers: %+.1f%%\n", 100*rep.TracedOverheadAt8)
	}
	if plain, bin := rep.Paths["transfer"].SecondsByWorkers["8"], rep.Paths["transfer_bin"].SecondsByWorkers["8"]; plain > 0 && bin > 0 {
		rep.BinGainAt8 = 1 - bin/plain
		fmt.Printf("mcsbench: mcsbin/1 gain over JSON on the transfer path at 8 workers: %.1f%%\n", 100*rep.BinGainAt8)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("mcsbench: wrote %s\n", *out)

	if *baseline != "" {
		if err := gateAgainst(*baseline, rep); err != nil {
			fatal(err)
		}
	}
}

// gateAgainst compares this run's gated speedups with a committed
// baseline report and errors if any regressed past the slack. The
// baseline must come from the same mode: quick runs have smaller,
// overhead-dominated problem sizes whose speedups are not comparable
// with full-size numbers.
func gateAgainst(path string, rep report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Quick != rep.Quick {
		return fmt.Errorf("baseline %s was recorded with quick=%v but this run is quick=%v; speedups are only comparable within a mode", path, base.Quick, rep.Quick)
	}
	failed := false
	for _, name := range gatedPaths {
		want, ok := base.Paths[name]
		if !ok || want.SpeedupAt8 <= 0 {
			fmt.Printf("mcsbench: gate %-8s no baseline speedup recorded; skipping\n", name)
			continue
		}
		got := rep.Paths[name].SpeedupAt8
		floor := want.SpeedupAt8 * baselineSlack
		verdict := "ok"
		if got < floor {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("mcsbench: gate %-8s speedup_at_8 %.2fx vs baseline %.2fx (floor %.2fx): %s\n",
			name, got, want.SpeedupAt8, floor, verdict)
	}
	if failed {
		return fmt.Errorf("speedup regression vs baseline %s (floor is %.0f%% of committed speedup_at_8)", path, 100*baselineSlack)
	}
	return nil
}

// benchStore times W goroutines putting pre-hashed chunks into one
// sharded MemStore — the pure store write path, no HTTP.
func benchStore(workers int, quick bool) float64 {
	chunks, size := 4096, 64<<10
	if quick {
		chunks, size = 512, 16<<10
	}
	data := make([][]byte, chunks)
	sums := make([]storage.Sum, chunks)
	src := randx.New(1)
	for i := range data {
		buf := make([]byte, size)
		for j := 0; j < size; j += 8 {
			v := src.Uint64()
			for k := 0; k < 8 && j+k < size; k++ {
				buf[j+k] = byte(v >> (8 * k))
			}
		}
		data[i] = buf
		sums[i] = storage.SumBytes(buf)
	}

	store := storage.NewMemStore()
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				if err := store.Put(sums[i], data[i]); err != nil {
					fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start).Seconds()
}

// benchDisk times W goroutines putting pre-hashed chunks into a
// DiskStore with full durability (every acknowledged Put is
// fsync-covered). Unlike the RAM path this is fsync-bound, so the
// scaling it measures is the group commit: more concurrent writers
// share each fsync instead of issuing their own.
func benchDisk(workers int, quick bool) float64 {
	// Quick mode still needs enough puts for the fsync group-commit
	// ratio to settle — a ~0.1s run is all scheduler noise and makes
	// the CI regression gate flake.
	chunks, size := 1024, 64<<10
	if quick {
		chunks, size = 512, 16<<10
	}
	data := make([][]byte, chunks)
	sums := make([]storage.Sum, chunks)
	src := randx.New(11)
	for i := range data {
		buf := make([]byte, size)
		for j := 0; j < size; j += 8 {
			v := src.Uint64()
			for k := 0; k < 8 && j+k < size; k++ {
				buf[j+k] = byte(v >> (8 * k))
			}
		}
		data[i] = buf
		sums[i] = storage.SumBytes(buf)
	}

	dir, err := os.MkdirTemp("", "mcsbench-disk-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := storage.OpenDiskStore(dir, storage.DiskStoreOptions{SegmentSize: 16 << 20})
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				if err := store.Put(sums[i], data[i]); err != nil {
					fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := store.DiskStats()
	fmt.Printf("mcsbench: disk     workers=%d  %d puts / %d fsyncs\n", workers, chunks, st.Fsyncs)
	return elapsed
}

// benchTransfer times storing and retrieving files through a live
// in-process front-end whose upstream delay is a ~20 ms lognormal,
// with the client keeping `workers` chunk requests in flight. The
// dialect is pinned to per-chunk JSON so this path stays comparable
// with pre-mcsbin baselines; transfer_bin measures the binary dialect.
func benchTransfer(workers int, quick bool) float64 {
	return benchTransferWith(workers, quick, nil, true)
}

// benchTransferBin is the identical workload with the mcsbin/1 batched
// binary dialect negotiated (the default for current clients).
func benchTransferBin(workers int, quick bool) float64 {
	return benchTransferWith(workers, quick, nil, false)
}

// benchTransferTraced is the identical workload with a tracer on both
// sides and every operation sampled — the worst case for tracing
// overhead on the wire path.
func benchTransferTraced(workers int, quick bool) float64 {
	return benchTransferWith(workers, quick, tracing.New(tracing.Config{Node: "bench", Sample: 1}), true)
}

func benchTransferWith(workers int, quick bool, tracer *tracing.Tracer, disableBin bool) float64 {
	// Few deep files rather than many shallow ones: a 16 MB sync object
	// keeps a 32-chunk pipeline busy, which is the shape where window
	// depth (and batched round trips) matter; per-file metadata ops
	// amortize identically across both dialects.
	files, chunksPerFile := 2, 32
	if quick {
		files, chunksPerFile = 2, 8
	}

	// The paper's service sees upstream processing times (Tsrv) of
	// tens to hundreds of milliseconds; 20 ms keeps the run short
	// while still dominating per-chunk CPU work.
	delaySrc := randx.New(99)
	var delayMu sync.Mutex
	median := float64(20 * time.Millisecond)
	store := storage.NewMemStore()
	meta := storage.NewMetadata()
	fe := storage.NewFrontEnd(storage.FrontEndConfig{
		Store:         store,
		Meta:          meta,
		Sink:          &storage.Collector{},
		SleepUpstream: true,
		UpstreamDelay: func() time.Duration {
			delayMu.Lock()
			defer delayMu.Unlock()
			return time.Duration(delaySrc.LogNormal(math.Log(median), 0.45))
		},
		Tracer: tracer,
	})
	feSrv := httptest.NewServer(fe.Handler())
	defer feSrv.Close()
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()
	meta.AddFrontEnd(feSrv.URL)

	client := &storage.Client{
		MetaURL:    metaSrv.URL,
		UserID:     1,
		DeviceID:   1,
		Device:     trace.Android,
		Parallel:   workers,
		Tracer:     tracer,
		DisableBin: disableBin,
	}

	payloads := make([][]byte, files)
	src := randx.New(7)
	for i := range payloads {
		buf := make([]byte, chunksPerFile*storage.ChunkSize)
		for j := 0; j < len(buf); j += 4096 {
			v := src.Uint64()
			buf[j] = byte(v)
			buf[j+1] = byte(v >> 8)
		}
		payloads[i] = buf
	}

	start := time.Now()
	for i, p := range payloads {
		res, err := client.StoreFile(fmt.Sprintf("bench-%d-%d.bin", workers, i), p)
		if err != nil {
			fatal(err)
		}
		got, err := client.RetrieveFile(res.URL)
		if err != nil {
			fatal(err)
		}
		if len(got) != len(p) {
			fatal(fmt.Errorf("transfer bench: got %d bytes, want %d", len(got), len(p)))
		}
	}
	return time.Since(start).Seconds()
}

// benchCluster is the transfer workload through a 3-node replicated
// cluster: every chunk PUT fans out to its ring owners (quorum W=2 of
// N=3) and GETs may forward one hop to a replica. The client
// negotiates mcsbin/1 as it would in production, so the honest
// single-node comparison point is transfer_bin (same shape, same
// dialect); that delta isolates the replication overhead.
func benchCluster(workers int, quick bool) float64 {
	files, chunksPerFile := 2, 32
	if quick {
		files, chunksPerFile = 2, 8
	}

	delaySrc := randx.New(99)
	var delayMu sync.Mutex
	median := float64(20 * time.Millisecond)
	upstream := func() time.Duration {
		delayMu.Lock()
		defer delayMu.Unlock()
		return time.Duration(delaySrc.LogNormal(math.Log(median), 0.45))
	}

	// Listeners first: the membership URLs must exist before the
	// replicated stores that reference them.
	const nodes = 3
	lns := make([]net.Listener, nodes)
	peers := make([]string, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	meta := storage.NewMetadata()
	var servers []*http.Server
	for i := range lns {
		rs, err := storage.NewReplicatedStore(storage.ReplicatedConfig{
			Self:        peers[i],
			Peers:       peers,
			Replicas:    3,
			WriteQuorum: 2,
			Local:       storage.NewMemStore(),
			RepairEvery: -1,
		})
		if err != nil {
			fatal(err)
		}
		defer rs.Close()
		fe := storage.NewFrontEnd(storage.FrontEndConfig{
			Store:         rs,
			Meta:          meta,
			Sink:          &storage.Collector{},
			SleepUpstream: true,
			UpstreamDelay: upstream,
		})
		srv := &http.Server{Handler: fe.Handler()}
		go srv.Serve(lns[i])
		servers = append(servers, srv)
		meta.AddFrontEnd(peers[i])
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()

	client := storage.NewClient(storage.ClientConfig{
		MetaURL:  metaSrv.URL,
		UserID:   2,
		DeviceID: 2,
		Device:   trace.Android,
		Parallel: workers,
	})

	payloads := make([][]byte, files)
	src := randx.New(7)
	for i := range payloads {
		buf := make([]byte, chunksPerFile*storage.ChunkSize)
		for j := 0; j < len(buf); j += 4096 {
			v := src.Uint64()
			buf[j] = byte(v)
			buf[j+1] = byte(v >> 8)
		}
		payloads[i] = buf
	}

	start := time.Now()
	for i, p := range payloads {
		res, err := client.StoreFile(fmt.Sprintf("clbench-%d-%d.bin", workers, i), p)
		if err != nil {
			fatal(err)
		}
		got, err := client.RetrieveFile(res.URL)
		if err != nil {
			fatal(err)
		}
		if len(got) != len(p) {
			fatal(fmt.Errorf("cluster bench: got %d bytes, want %d", len(got), len(p)))
		}
	}
	return time.Since(start).Seconds()
}

// benchGenerate times draining the bounded-memory workload stream
// with `workers` generation goroutines.
func benchGenerate(workers int, quick bool) float64 {
	users := 4000
	if quick {
		users = 800
	}
	g, err := workload.New(workload.Config{Users: users, PCOnlyUsers: users / 8, Seed: 5})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	s := g.StreamP(workers)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		fatal(fmt.Errorf("generate bench: empty stream"))
	}
	return time.Since(start).Seconds()
}

// analyzeLogs caches the generated trace shared by every analysis
// timing so each worker count folds identical input.
var analyzeLogs struct {
	once sync.Once
	logs []trace.Log
}

// benchAnalyze times the user-sharded analysis fold and merge.
func benchAnalyze(workers int, quick bool) float64 {
	analyzeLogs.once.Do(func() {
		users := 4000
		if quick {
			users = 800
		}
		g, err := workload.New(workload.Config{Users: users, PCOnlyUsers: users / 8, Seed: 6})
		if err != nil {
			fatal(err)
		}
		analyzeLogs.logs = trace.Drain(g.StreamP(0))
	})
	start := time.Now()
	a := core.NewParallelAnalyzer(core.Options{}, workers)
	for _, l := range analyzeLogs.logs {
		a.Add(l)
	}
	final := a.Finish()
	if final.TotalLogs() != int64(len(analyzeLogs.logs)) {
		fatal(fmt.Errorf("analyze bench: folded %d logs, want %d", final.TotalLogs(), len(analyzeLogs.logs)))
	}
	return time.Since(start).Seconds()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsbench:", err)
	os.Exit(1)
}
