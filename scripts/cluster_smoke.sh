#!/usr/bin/env bash
# Cluster smoke test: boot a replicated cluster with a dedicated
# durable metadata node and a warm standby, then run three chaos
# phases against it:
#
#   Phase A — chunk-plane outage: mcsload drives the cluster while a
#   seeded chaos scenario takes storage node 3 through a 200-request
#   outage window.
#   Phase B — metadata-plane failover: a second load runs while the
#   metadata primary is SIGKILLed mid-load and NOT restarted. The
#   standby's lease expires, it self-promotes (bumping the fencing
#   epoch), and the load finishes against the new primary. The old
#   primary then comes back from its own WAL, is fenced on its first
#   write (typed "fenced" error), and rejoins as a standby of the
#   new primary.
#   Phase C — sharded metadata plane: a fresh cluster runs with TWO
#   metadata shards (each a primary+standby pair sharing one
#   -metashards map). Mid-load, shard 1's primary is SIGKILLed and
#   NOT restarted: shard 1 fails over to its standby while shard 0
#   never notices. The load finishes with every acked file intact,
#   mcsrebalance -meta -verify audits the namespace placement clean,
#   and mcstrace -strict decomposes every acked transfer.
#
# The phases are sequential so each gate is deterministic: phase A's
# verify sweep runs against a cluster whose outage window has closed,
# and phase B's runs against a healthy chunk plane, isolating what the
# metadata kill must not break.
#
# Invariants asserted:
#
#   1. every acknowledged upload is retrieved back byte-identical
#      (0 lost, 0 corrupted) — mcsload -verify exits non-zero
#      otherwise — in BOTH phases, which for phase B means every file
#      acked before the SIGKILL survived the failover without the
#      primary ever coming back;
#   2. mcs_cluster_underreplicated returns to 0 on every node once the
#      repair loop has re-streamed the replicas the outage missed;
#   3. the standby self-promotes within its lease TTL, the deposed
#      primary's writes are rejected with the typed "fenced" error,
#      and once re-attached as a standby it drains its lag to 0;
#   4. a follow-up mcsrebalance pass finds nothing left to move;
#   5. distributed tracing joins end-to-end: mcstrace -strict over the
#      storage nodes' /debug/traces plus both loaders' trace dumps must
#      decompose every acknowledged chunk transfer completely.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/mcsserver ./cmd/mcsload ./cmd/mcsrebalance ./cmd/mcstrace

N1=http://127.0.0.1:8081
N2=http://127.0.0.1:8082
N3=http://127.0.0.1:8083
PEERS="$N1,$N2,$N3"
META=http://127.0.0.1:8070
METASTBY=http://127.0.0.1:8071
# Node 3 rejects every request in its [30, 230) request window; the
# other nodes share the spec but the node= gate disables it for them.
CHAOS="name=smoke,seed=7,outage=30+200,node=$N3"

# The metadata plane is its own pair of processes: a durable primary
# (WAL + 2s checkpoints) that assigns the storage nodes as front-ends,
# and a standby replicating its WAL stream with a 2s failover lease —
# if the primary stops answering pulls for 2s, the standby promotes
# itself after confirming no better rival exists. Front-ends list
# both endpoints and rediscover the primary via /v1/meta/wal/status.
start_meta_primary() {
    "$BIN/mcsserver" -meta :8070 -frontends "" -ops :8093 -log "$WORK/m$1.log" \
        -metadata-dir "$WORK/meta" -metacheckpoint 2s -metafrontends "$PEERS" \
        >"$WORK/m$1.out" 2>&1 &
    MPID=$!
    pids+=($MPID)
}
start_meta_primary 1
"$BIN/mcsserver" -meta :8071 -frontends "" -ops :8094 -log "$WORK/s.log" \
    -metadata-dir "$WORK/metastby" -metastandby "$META" -metafrontends "$PEERS" \
    -metafailover 2s -metapeers "$META" \
    >"$WORK/s.out" 2>&1 &
pids+=($!)

# Each storage node gets a durable segment store so the traced disk
# stage (append + fsync-wait spans) carries real time in the diagnosis.
"$BIN/mcsserver" -frontends :8081 -metaurl "$META,$METASTBY" -ops :8090 -log "$WORK/n1.log" \
    -data "$WORK/d1" \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n1.out" 2>&1 &
pids+=($!)
# N2 runs with the binary dialect withheld (-binapi=false): a
# mixed-version ring where one legacy-JSON node keeps serving while
# its peers negotiate mcsbin/1 among themselves.
"$BIN/mcsserver" -frontends :8082 -metaurl "$META,$METASTBY" -ops :8091 -log "$WORK/n2.log" \
    -data "$WORK/d2" -binapi=false \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n2.out" 2>&1 &
pids+=($!)
"$BIN/mcsserver" -frontends :8083 -metaurl "$META,$METASTBY" -ops :8092 -log "$WORK/n3.log" \
    -data "$WORK/d3" \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n3.out" 2>&1 &
pids+=($!)

ready() {
    for i in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "cluster_smoke: node on ops port $1 never became ready" >&2
    cat "$WORK"/*.out >&2 || true
    return 1
}
ready 8093
ready 8094
ready 8090
ready 8091
ready 8092
echo "cluster_smoke: 5 processes up (meta primary + standby, 3 storage nodes, N=3 W=2)"

# --- Phase A: chunk-plane outage -----------------------------------
# Invariant 1 (and 2 on node 1): mcsload exits non-zero on any lost or
# corrupted acknowledged file, or if node 1's under-replication gauge
# does not drain. The outage makes some operations fail outright —
# that's expected and capped by -maxfail.
echo "cluster_smoke: phase A: load with node 3 in a 200-request outage"
"$BIN/mcsload" -meta "$META" -devices 4 -files 10 -retrieve 0.5 -seed 3 \
    -ops http://127.0.0.1:8090 -waitrepair 60s -maxfail 0.5 \
    -tracedump "$WORK/client-traces-a.json"

# Invariant 2 on the other nodes: their repair queues must drain too.
# Series may carry labels (e.g. mcs_meta_standby_lag{shard="0"}), so
# the name matches as a prefix.
gauge_zero() {
    for i in $(seq 1 150); do
        v=$(curl -fsS "http://127.0.0.1:$1/metrics" | awk -v g="$2" 'index($1, g) == 1 {print $2}')
        if [ "${v:-1}" = "0" ]; then return 0; fi
        sleep 0.2
    done
    echo "cluster_smoke: $2 stuck at ${v:-?} on ops port $1" >&2
    return 1
}
gauge_zero 8091 mcs_cluster_underreplicated
gauge_zero 8092 mcs_cluster_underreplicated
echo "cluster_smoke: under-replication drained to 0 on all nodes"

# --- Phase B: metadata-plane failover ------------------------------
# Invariant 3, first act: once the second load is demonstrably in
# flight (the primary has durably committed several phase-B files),
# SIGKILL the metadata primary and do NOT restart it. The standby's
# 2s lease expires and it promotes itself; the load — whose clients
# know both endpoints — finishes against the new primary with every
# acked file intact.
# Commit counter on the given ops port; the series carries a shard
# label, so the selector matches up to the op label only.
meta_commits() {
    curl -fsS "http://127.0.0.1:$1/metrics" 2>/dev/null |
        grep '^mcs_meta_op_seconds_count{op="commit"' | awk '{print $2}'
}
meta_status() { curl -fsS "$1/v1/meta/wal/status" 2>/dev/null; }
base=$(meta_commits 8093 || echo 0)
echo "cluster_smoke: phase B: load with a mid-load metadata kill, no restart (commit count starts at ${base:-0})"
# Writes fail hard inside the promotion gap (neither node takes
# them — that is the consistency side of the fencing design), so the
# file count gives the run enough post-failover successes to stay
# inside -maxfail.
"$BIN/mcsload" -meta "$META,$METASTBY" -devices 4 -files 12 -retrieve 0.5 -seed 5 \
    -maxfail 0.6 -tracedump "$WORK/client-traces-b.json" &
LOAD=$!

killed=0
for i in $(seq 1 300); do
    c=$(meta_commits 8093 || true)
    if [ "${c:-0}" -ge $((${base:-0} + 5)) ] 2>/dev/null; then
        kill -9 "$MPID"
        echo "cluster_smoke: SIGKILLed metadata primary after $((c - base)) phase-B commits"
        killed=1
        break
    fi
    sleep 0.1
done
if [ "$killed" != 1 ]; then
    echo "cluster_smoke: metadata kill never triggered (load too fast or primary down)" >&2
    exit 1
fi

# The standby must self-promote: status flips standby:false and the
# fencing epoch goes positive, all within a few lease TTLs.
promoted=0
for i in $(seq 1 100); do
    st=$(meta_status "$METASTBY" || true)
    if echo "$st" | grep -q '"standby":true'; then :; elif echo "$st" | grep -q '"epoch":[1-9]'; then
        promoted=1
        break
    fi
    sleep 0.2
done
if [ "$promoted" != 1 ]; then
    echo "cluster_smoke: standby never promoted itself (status: $(meta_status "$METASTBY"))" >&2
    cat "$WORK/s.out" >&2 || true
    exit 1
fi
NEWEPOCH=$(meta_status "$METASTBY" | grep -o '"epoch":[0-9]*' | cut -d: -f2)
echo "cluster_smoke: standby self-promoted to primary at epoch $NEWEPOCH"

wait $LOAD
echo "cluster_smoke: phase B load survived the failover (0 lost, 0 corrupted, primary never restarted)"

# Invariant 3, second act: the deposed primary comes back from its own
# WAL believing it is a primary at the old epoch. Its first write
# request carrying the new epoch must be rejected with the typed
# fencing error — not silently applied onto a forked history.
start_meta_primary 2
ready 8093
grep "durable metadata" "$WORK/m2.out" | sed 's/^/cluster_smoke: /'
fence=$(curl -sS -X POST "$META/v1/meta/store-check" \
    -H "Content-Type: application/json" -H "X-MCS-Meta-Epoch: $NEWEPOCH" \
    -d '{"user_id":1,"name":"fence-probe","size":1,"file_md5":"d41d8cd98f00b204e9800998ecf8427e"}')
if ! echo "$fence" | grep -q '"code":"fenced"'; then
    echo "cluster_smoke: deposed primary accepted a write instead of fencing: $fence" >&2
    exit 1
fi
echo "cluster_smoke: deposed primary fenced its first write (code=fenced)"

# Invariant 3, third act: the old primary rejoins as a standby of the
# new primary, reseeds across the epoch boundary, and drains its
# replication lag to 0.
kill -9 "$MPID" 2>/dev/null || true
sleep 0.5
"$BIN/mcsserver" -meta :8070 -frontends "" -ops :8093 -log "$WORK/m3.log" \
    -metadata-dir "$WORK/meta" -metacheckpoint 2s -metafrontends "$PEERS" \
    -metastandby "$METASTBY" \
    >"$WORK/m3.out" 2>&1 &
pids+=($!)
ready 8093
gauge_zero 8093 mcs_meta_standby_lag
st=$(meta_status "$META")
if ! echo "$st" | grep -q '"standby":true'; then
    echo "cluster_smoke: old primary did not rejoin as standby: $st" >&2
    exit 1
fi
echo "cluster_smoke: old primary rejoined as standby of the new primary (lag 0, epoch $(echo "$st" | grep -o '"epoch":[0-9]*' | cut -d: -f2))"

# Invariant 4: placement is already correct, so the rebalancer is a
# no-op (it exits non-zero on any transfer error).
"$BIN/mcsrebalance" -node "$N1"

# Invariant 5: join both loaders' traces with every storage node's
# ring and demand a complete stage decomposition for each acked
# transfer — a single missed header propagation anywhere fails the
# run. (The killed primary's span ring died with it; chunk-transfer
# joins live on the storage nodes and the loaders, so the gate still
# has teeth.)
"$BIN/mcstrace" -strict \
    -from "http://127.0.0.1:8090,http://127.0.0.1:8091,http://127.0.0.1:8092,$WORK/client-traces-a.json,$WORK/client-traces-b.json"

# --- Phase C: sharded metadata plane -------------------------------
# A second, independent cluster on fresh ports runs the metadata
# plane as TWO shards, each a durable primary with a lease-failover
# standby, all four processes sharing one -metashards map. Storage
# nodes route each user's metadata to the owning shard's current
# primary; clients fetch the shard map from any bootstrap endpoint.
CMETA0=http://127.0.0.1:8170
CSTBY0=http://127.0.0.1:8171
CMETA1=http://127.0.0.1:8172
CSTBY1=http://127.0.0.1:8173
CSHARDS="$CMETA0,$CSTBY0;$CMETA1,$CSTBY1"
C1=http://127.0.0.1:8181
C2=http://127.0.0.1:8182
C3=http://127.0.0.1:8183
CPEERS="$C1,$C2,$C3"

"$BIN/mcsserver" -meta :8170 -frontends "" -ops :8193 -log "$WORK/cm0.log" \
    -metadata-dir "$WORK/cmeta0" -metacheckpoint 2s -metafrontends "$CPEERS" \
    -metashards "$CSHARDS" -metashard 0 >"$WORK/cm0.out" 2>&1 &
pids+=($!)
"$BIN/mcsserver" -meta :8171 -frontends "" -ops :8194 -log "$WORK/cs0.log" \
    -metadata-dir "$WORK/cstby0" -metastandby "$CMETA0" -metafrontends "$CPEERS" \
    -metafailover 2s -metapeers "$CMETA0" \
    -metashards "$CSHARDS" -metashard 0 >"$WORK/cs0.out" 2>&1 &
pids+=($!)
"$BIN/mcsserver" -meta :8172 -frontends "" -ops :8195 -log "$WORK/cm1.log" \
    -metadata-dir "$WORK/cmeta1" -metacheckpoint 2s -metafrontends "$CPEERS" \
    -metashards "$CSHARDS" -metashard 1 >"$WORK/cm1.out" 2>&1 &
C1PID=$!
pids+=($C1PID)
"$BIN/mcsserver" -meta :8173 -frontends "" -ops :8196 -log "$WORK/cs1.log" \
    -metadata-dir "$WORK/cstby1" -metastandby "$CMETA1" -metafrontends "$CPEERS" \
    -metafailover 2s -metapeers "$CMETA1" \
    -metashards "$CSHARDS" -metashard 1 >"$WORK/cs1.out" 2>&1 &
pids+=($!)

# -meta "" keeps these nodes pure front-ends: with -metashards set
# they route every metadata call to the owning shard's primary.
for p in 8181 8182 8183; do
    "$BIN/mcsserver" -frontends ":$p" -meta "" -metashards "$CSHARDS" -ops ":$((p + 9))" \
        -log "$WORK/cn$p.log" -data "$WORK/cd$p" \
        -peers "$CPEERS" -replicas 3 -quorum 2 >"$WORK/cn$p.out" 2>&1 &
    pids+=($!)
done
ready 8193
ready 8194
ready 8195
ready 8196
ready 8190
ready 8191
ready 8192
echo "cluster_smoke: phase C: 7 processes up (2 metadata shards, each primary+standby, 3 storage nodes)"

# Mid-load, SIGKILL shard 1's primary (no restart): shard 1 must fail
# over to its standby while shard 0's primary keeps serving, and no
# acked file may be lost anywhere. Clients know all four metadata
# endpoints; the fetched shard map routes each user to the owner.
"$BIN/mcsload" -meta "$CMETA0,$CSTBY0,$CMETA1,$CSTBY1" -devices 4 -files 12 \
    -retrieve 0.5 -seed 9 -maxfail 0.6 \
    -tracedump "$WORK/client-traces-c.json" &
CLOAD=$!

killed=0
for i in $(seq 1 300); do
    c=$(meta_commits 8195 || true)
    if [ "${c:-0}" -ge 3 ] 2>/dev/null; then
        kill -9 "$C1PID"
        echo "cluster_smoke: SIGKILLed shard 1's metadata primary after $c shard-1 commits"
        killed=1
        break
    fi
    sleep 0.1
done
if [ "$killed" != 1 ]; then
    echo "cluster_smoke: shard 1 kill never triggered (no shard-1 commits observed)" >&2
    exit 1
fi

promoted=0
for i in $(seq 1 100); do
    st=$(meta_status "$CSTBY1" || true)
    if echo "$st" | grep -q '"standby":true'; then :; elif echo "$st" | grep -q '"epoch":[1-9]'; then
        promoted=1
        break
    fi
    sleep 0.2
done
if [ "$promoted" != 1 ]; then
    echo "cluster_smoke: shard 1 standby never promoted itself (status: $(meta_status "$CSTBY1"))" >&2
    cat "$WORK/cs1.out" >&2 || true
    exit 1
fi
echo "cluster_smoke: shard 1 standby self-promoted (epoch $(meta_status "$CSTBY1" | grep -o '"epoch":[0-9]*' | cut -d: -f2))"

wait $CLOAD
echo "cluster_smoke: phase C load survived the shard-1 failover (0 lost, 0 corrupted)"

# Shard 0 must be untouched by its neighbor's failover: still the
# primary it started as, unfenced, at its original epoch 0.
st=$(meta_status "$CMETA0")
if echo "$st" | grep -q '"standby":true\|"fenced":true'; then
    echo "cluster_smoke: shard 0 primary disturbed by shard 1's failover: $st" >&2
    exit 1
fi
echo "cluster_smoke: shard 0 primary unaffected ($(meta_commits 8193) commits served)"

# Fencing is per shard: the deposed shard-1 primary comes back from
# its own WAL at the old epoch, and its first write carrying shard
# 1's new epoch must be rejected with the typed fenced error (user 1
# hashes to shard 1, so the probe reaches the write guard, not the
# shard guard).
CEPOCH=$(meta_status "$CSTBY1" | grep -o '"epoch":[0-9]*' | cut -d: -f2)
"$BIN/mcsserver" -meta :8172 -frontends "" -ops :8195 -log "$WORK/cm2.log" \
    -metadata-dir "$WORK/cmeta1" -metacheckpoint 2s -metafrontends "$CPEERS" \
    -metashards "$CSHARDS" -metashard 1 >"$WORK/cm2.out" 2>&1 &
pids+=($!)
ready 8195
fence=$(curl -sS -X POST "$CMETA1/v1/meta/store-check" \
    -H "Content-Type: application/json" -H "X-MCS-Meta-Epoch: $CEPOCH" \
    -d '{"user_id":1,"name":"fence-probe","size":1,"file_md5":"d41d8cd98f00b204e9800998ecf8427e"}')
if ! echo "$fence" | grep -q '"code":"fenced"'; then
    echo "cluster_smoke: deposed shard-1 primary accepted a write instead of fencing: $fence" >&2
    exit 1
fi
echo "cluster_smoke: deposed shard-1 primary fenced its first write (code=fenced), shard 0 never involved"

# Namespace placement audit: every user on the shard the map assigns
# (exit 1 on any misplaced namespace or unreachable shard).
"$BIN/mcsrebalance" -meta -node "$CMETA0" -verify

# Strict trace gate over the sharded cluster's storage nodes and the
# loader's dump (shard 1's killed primary took its span ring with it;
# chunk-transfer joins live on the storage nodes and the loader).
"$BIN/mcstrace" -strict \
    -from "http://127.0.0.1:8190,http://127.0.0.1:8191,http://127.0.0.1:8192,$WORK/client-traces-c.json"

echo "cluster_smoke: PASS"
