#!/usr/bin/env bash
# Cluster smoke test: boot a 3-node replicated cluster (node 1 also
# serves metadata), drive it with mcsload while a seeded chaos scenario
# takes node 3 through a full outage window, then assert the headline
# invariants:
#
#   1. every acknowledged upload is retrieved back byte-identical
#      (0 lost, 0 corrupted) — mcsload -verify exits non-zero otherwise;
#   2. mcs_cluster_underreplicated returns to 0 on every node once the
#      repair loop has re-streamed the replicas the outage missed;
#   3. a follow-up mcsrebalance pass finds nothing left to move;
#   4. distributed tracing joins end-to-end: mcstrace -strict over the
#      three nodes' /debug/traces plus the loader's trace dump must
#      decompose every acknowledged chunk transfer completely.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/mcsserver ./cmd/mcsload ./cmd/mcsrebalance ./cmd/mcstrace

N1=http://127.0.0.1:8081
N2=http://127.0.0.1:8082
N3=http://127.0.0.1:8083
PEERS="$N1,$N2,$N3"
META=http://127.0.0.1:8070
# Node 3 rejects every request in its [30, 230) request window; the
# other nodes share the spec but the node= gate disables it for them.
CHAOS="name=smoke,seed=7,outage=30+200,node=$N3"

# Each node gets a durable segment store so the traced disk stage
# (append + fsync-wait spans) carries real time in the diagnosis.
"$BIN/mcsserver" -meta :8070 -frontends :8081 -ops :8090 -log "$WORK/n1.log" \
    -data "$WORK/d1" \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n1.out" 2>&1 &
pids+=($!)
"$BIN/mcsserver" -frontends :8082 -metaurl "$META" -ops :8091 -log "$WORK/n2.log" \
    -data "$WORK/d2" \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n2.out" 2>&1 &
pids+=($!)
"$BIN/mcsserver" -frontends :8083 -metaurl "$META" -ops :8092 -log "$WORK/n3.log" \
    -data "$WORK/d3" \
    -peers "$PEERS" -replicas 3 -quorum 2 -chaos "$CHAOS" >"$WORK/n3.out" 2>&1 &
pids+=($!)

ready() {
    for i in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "cluster_smoke: node on ops port $1 never became ready" >&2
    cat "$WORK"/n*.out >&2 || true
    return 1
}
ready 8090
ready 8091
ready 8092
echo "cluster_smoke: 3 nodes up (N=3, W=2), node 3 will outage for 200 requests"

# Invariant 1 (and 2 on node 1): mcsload exits non-zero on any lost or
# corrupted acknowledged file, or if node 1's under-replication gauge
# does not drain. The outage makes some operations fail outright —
# that's expected and capped by -maxfail.
"$BIN/mcsload" -meta "$META" -devices 4 -files 10 -retrieve 0.5 -seed 3 \
    -ops http://127.0.0.1:8090 -waitrepair 60s -maxfail 0.5 \
    -tracedump "$WORK/client-traces.json"

# Invariant 2 on the other nodes: their repair queues must drain too.
gauge_zero() {
    for i in $(seq 1 150); do
        v=$(curl -fsS "http://127.0.0.1:$1/metrics" | awk '$1 == "mcs_cluster_underreplicated" {print $2}')
        if [ "${v:-1}" = "0" ]; then return 0; fi
        sleep 0.2
    done
    echo "cluster_smoke: mcs_cluster_underreplicated stuck at ${v:-?} on ops port $1" >&2
    return 1
}
gauge_zero 8091
gauge_zero 8092
echo "cluster_smoke: under-replication drained to 0 on all nodes"

# Invariant 3: placement is already correct, so the rebalancer is a
# no-op (it exits non-zero on any transfer error).
"$BIN/mcsrebalance" -node "$N1"

# Invariant 4: join the loader's traces with every node's ring and
# demand a complete stage decomposition for each acked transfer —
# a single missed header propagation anywhere fails the run.
"$BIN/mcstrace" -strict \
    -from "http://127.0.0.1:8090,http://127.0.0.1:8091,http://127.0.0.1:8092,$WORK/client-traces.json"

echo "cluster_smoke: PASS"
