package mcloud_test

import (
	"bytes"
	"testing"
	"time"

	"mcloud"
)

func TestGenerateAndAnalyzeRoundTrip(t *testing.T) {
	cfg := mcloud.DatasetConfig{Users: 400, Seed: 5}
	logs, err := mcloud.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatal("empty dataset")
	}
	res, err := mcloud.AnalyzeLogs(logs, logs[0].Time, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logs != int64(len(logs)) {
		t.Errorf("analyzed %d of %d logs", res.Logs, len(logs))
	}
	if res.Sessions.Stats.Total == 0 {
		t.Error("no sessions identified")
	}
}

func TestGenerateToAndAnalyzeReader(t *testing.T) {
	cfg := mcloud.DatasetConfig{Users: 200, Seed: 6}
	var buf bytes.Buffer
	n, err := mcloud.GenerateTo(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// A zero start means "anchor on the first log seen".
	res, err := mcloud.AnalyzeReader(&buf, time.Time{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logs != n {
		t.Errorf("reader analyzed %d of %d", res.Logs, n)
	}
}

func TestStudyIdleTime(t *testing.T) {
	res, err := mcloud.StudyIdleTime(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 4 {
		t.Errorf("expected 4 flow classes, got %d", len(res.Classes))
	}
}

func TestReproduceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction is slow")
	}
	rep, err := mcloud.Reproduce(mcloud.DatasetConfig{Users: 2500, PCOnlyUsers: 900, Seed: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	ok, total := rep.Passed()
	if total < 30 {
		t.Fatalf("only %d comparison rows", total)
	}
	if float64(ok) < 0.85*float64(total) {
		for _, r := range rep.Rows {
			if !r.OK() {
				t.Logf("deviates: %s %s = %s", r.Experiment, r.Quantity, r.Measured)
			}
		}
		t.Errorf("%d/%d rows in band; want >= 85%%", ok, total)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := mcloud.Generate(mcloud.DatasetConfig{Users: -5}); err == nil {
		t.Error("negative population accepted")
	}
}
