// Benchmarks: one per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment from the synthetic dataset
// (or the TCP simulator for the §4 packet-level figures) and reports
// the headline quantities as custom metrics, so `go test -bench .`
// prints the same rows/series the paper reports next to the cost of
// producing them.
package mcloud_test

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mcloud/internal/core"
	"mcloud/internal/dist"
	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/report"
	"mcloud/internal/session"
	"mcloud/internal/storage"
	"mcloud/internal/tcpsim"
	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

// benchScale is the population used by the figure benchmarks; large
// enough for stable statistics, small enough for -bench runs.
const (
	benchUsers   = 3000
	benchPCUsers = 1000
	benchSeed    = 2016
)

var (
	benchOnce sync.Once
	benchGen  *workload.Generator
	benchLogs []trace.Log
	benchRes  core.Results
)

// benchData generates and analyzes the shared dataset once.
func benchData(b *testing.B) (*workload.Generator, []trace.Log, core.Results) {
	b.Helper()
	benchOnce.Do(func() {
		g, err := workload.New(workload.Config{
			Users: benchUsers, PCOnlyUsers: benchPCUsers, Seed: benchSeed,
		})
		if err != nil {
			panic(err)
		}
		benchGen = g
		benchLogs = g.Generate()
		a := core.NewAnalyzer(core.Options{Start: g.Config().Start, Days: g.Config().Days})
		for _, l := range benchLogs {
			a.Add(l)
		}
		benchRes, err = a.Run()
		if err != nil {
			panic(err)
		}
	})
	return benchGen, benchLogs, benchRes
}

// BenchmarkGenerate measures dataset generation (§2.2 workload).
func BenchmarkGenerate(b *testing.B) {
	g, logs, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small, err := workload.New(workload.Config{Users: 200, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if got := small.Generate(); len(got) == 0 {
			b.Fatal("empty dataset")
		}
	}
	b.ReportMetric(float64(len(logs)), "logs")
	b.ReportMetric(float64(len(logs))/float64(g.Population()), "logs/user")
}

// BenchmarkFigure1 regenerates the workload temporal pattern.
func BenchmarkFigure1(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAnalyzer(core.Options{})
		for _, l := range logs[:len(logs)/10] {
			a.Add(l)
		}
	}
	b.ReportMetric(res.Workload.FileRatio(), "storedPerRetrievedFile")
	b.ReportMetric(res.Workload.VolumeRatio(), "retrPerStoreVolume")
	b.ReportMetric(float64(res.Workload.PeakHourOfDay), "peakHour")
}

// BenchmarkFigure3 fits the inter-operation Gaussian mixture.
func BenchmarkFigure3(b *testing.B) {
	_, logs, res := benchData(b)

	gaps := session.InterOpGaps(logs)
	var lg []float64
	for _, g := range gaps {
		if g >= 1 {
			lg = append(lg, math.Log10(g))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitGaussianMixture(lg, 2, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.InterOp.InSessionMeanSec(), "inSession_s")
	b.ReportMetric(res.InterOp.InterSessionMeanSec()/86400, "interSession_days")
	b.ReportMetric(res.InterOp.ValleySec, "valley_s")
}

// BenchmarkSessionClassification cuts sessions (§3.1.1).
func BenchmarkSessionClassification(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := session.NewIdentifier(0)
		for _, l := range logs {
			id.Add(l)
		}
		if got := id.Sessions(); len(got) == 0 {
			b.Fatal("no sessions")
		}
	}
	b.ReportMetric(res.Sessions.StoreOnlyFrac, "storeOnlyFrac")
	b.ReportMetric(res.Sessions.RetrieveOnlyFrac, "retrieveOnlyFrac")
	b.ReportMetric(res.Sessions.MixedFrac, "mixedFrac")
}

// BenchmarkFigure4 computes the burstiness CDFs.
func BenchmarkFigure4(b *testing.B) {
	_, logs, res := benchData(b)
	id := session.NewIdentifier(0)
	for _, l := range logs {
		id.Add(l)
	}
	sessions := id.Sessions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var vals []float64
		for j := range sessions {
			if sessions[j].FileOps > 1 {
				vals = append(vals, sessions[j].NormalizedOperatingTime())
			}
		}
		dist.NewECDF(vals)
	}
	b.ReportMetric(res.Sessions.BurstAll.P(0.1), "P_opTimeBelow0.1")
	b.ReportMetric(res.Sessions.BurstOver20.Quantile(0.5), "medianOver20ops")
}

// BenchmarkFigure5 computes the session-size bins.
func BenchmarkFigure5(b *testing.B) {
	_, _, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The bin computation is part of the session analysis; rerun
		// the linear fit over the bins as the kernel.
		var xs, ys []float64
		for _, bin := range res.Sessions.StoreBins {
			xs = append(xs, float64(bin.Files))
			ys = append(ys, bin.MedMB)
		}
		dist.LinearFit(xs, ys)
	}
	b.ReportMetric(res.Sessions.POneOp, "P_oneOp")
	b.ReportMetric(res.Sessions.POver20Ops, "P_over20ops")
	b.ReportMetric(res.Sessions.StoreSlopeMB, "storeSlope_MBperFile")
	b.ReportMetric(res.Sessions.OneFileRetrieveMeanMB, "oneFileRetrMean_MB")
}

// BenchmarkFigure6Table2 fits the average-file-size mixtures.
func BenchmarkFigure6Table2(b *testing.B) {
	_, logs, res := benchData(b)
	comps := res.FileSize.StoreMixture.Components
	var wSmall, mSmall float64
	for _, c := range comps {
		if c.Mu < 3 {
			wSmall += c.Alpha
			mSmall += c.Alpha * c.Mu
		}
	}
	rt := res.FileSize.RetrieveMixture.Components[len(res.FileSize.RetrieveMixture.Components)-1]

	id := session.NewIdentifier(0)
	for _, l := range logs {
		id.Add(l)
	}
	var store []float64
	for _, s := range id.Sessions() {
		if s.FileOps > 0 && s.Class() == session.StoreOnly {
			store = append(store, s.AvgFileSize()/(1<<20))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitExpMixture(store, 3, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(wSmall, "storePhotoAlpha")
	if wSmall > 0 {
		b.ReportMetric(mSmall/wSmall, "storePhotoMu_MB")
	}
	b.ReportMetric(rt.Alpha, "retrTailAlpha")
	b.ReportMetric(rt.Mu, "retrTailMu_MB")
}

// BenchmarkFigure7 computes the per-user volume-ratio distributions.
func BenchmarkFigure7(b *testing.B) {
	_, logs, res := benchData(b)
	up := 0
	for _, r := range res.Usage.RatiosMobileOnly {
		if r > 5 {
			up++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := map[uint64]int64{}
		retr := map[uint64]int64{}
		for _, l := range logs {
			switch l.Type {
			case trace.ChunkStore:
				store[l.UserID] += l.Bytes
			case trace.ChunkRetrieve:
				retr[l.UserID] += l.Bytes
			}
		}
	}
	b.ReportMetric(float64(up)/float64(len(res.Usage.RatiosMobileOnly)), "mobileStorageDominant")
}

// BenchmarkTable3 classifies users into the four types.
func BenchmarkTable3(b *testing.B) {
	_, logs, res := benchData(b)
	mo := res.Usage.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAnalyzer(core.Options{})
		for _, l := range logs {
			a.Add(l)
		}
	}
	b.ReportMetric(mo["upload-only"]["mobile-only"].UserFrac, "uploadOnlyShare")
	b.ReportMetric(mo["download-only"]["mobile-only"].UserFrac, "downloadOnlyShare")
	b.ReportMetric(mo["occasional"]["mobile-only"].UserFrac, "occasionalShare")
	b.ReportMetric(mo["mixed"]["mobile-only"].UserFrac, "mixedShare")
}

// BenchmarkFigure8 computes engagement curves.
func BenchmarkFigure8(b *testing.B) {
	g, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anchor := g.Config().Start
		active := map[uint64]uint8{}
		for _, l := range logs {
			d := int(l.Time.Sub(anchor) / (24 * time.Hour))
			if d >= 0 && d < 8 {
				active[l.UserID] |= 1 << uint(d)
			}
		}
	}
	b.ReportMetric(res.Engagement.NeverReturn[core.StratumOneDevice], "oneDevNeverReturn")
	b.ReportMetric(res.Engagement.NeverReturn[core.StratumMultiDevice], "multiDevNeverReturn")
}

// BenchmarkFigure9 computes retrieval-after-upload curves.
func BenchmarkFigure9(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first := map[uint64]time.Time{}
		for _, l := range logs {
			if l.Type == trace.FileStore {
				if t, ok := first[l.UserID]; !ok || l.Time.Before(t) {
					first[l.UserID] = l.Time
				}
			}
		}
	}
	if v, ok := res.Engagement.NeverRetrieve[core.StratumOneDevice]; ok {
		b.ReportMetric(v, "oneDevNeverRetrieve")
	}
	if mp, ok := res.Engagement.RetrievalByDay[core.StratumMobileAndPC]; ok && len(mp) > 0 {
		b.ReportMetric(mp[0], "mobilePCDay0Retrieval")
	}
}

// BenchmarkFigure10 fits the stretched-exponential activity models.
func BenchmarkFigure10(b *testing.B) {
	_, _, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitStretchedExpRank(res.Activity.StoreCounts, 0.05, 1.2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Activity.StoreSE.C, "storeC")
	b.ReportMetric(res.Activity.RetrieveSE.C, "retrieveC")
	b.ReportMetric(res.Activity.StoreSE.R2, "storeR2")
}

// BenchmarkFigure12 measures the chunk-time distributions by device.
func BenchmarkFigure12(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var android []float64
		for _, l := range logs {
			if l.Type == trace.ChunkStore && l.Device == trace.Android {
				android = append(android, l.TransferTime().Seconds())
			}
		}
		dist.NewECDF(android)
	}
	b.ReportMetric(res.Perf.MedianUpload(trace.Android).Seconds(), "androidMedUpload_s")
	b.ReportMetric(res.Perf.MedianUpload(trace.IOS).Seconds(), "iosMedUpload_s")
}

// BenchmarkFigure13 replays the sample storage flows through the
// simulator (sequence-number / inflight time series).
func BenchmarkFigure13(b *testing.B) {
	var androidSamples, iosSamples int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dev := range []tcpsim.DeviceProfile{tcpsim.AndroidProfile, tcpsim.IOSProfile} {
			res, err := tcpsim.SimulateUpload(tcpsim.TransferConfig{
				Device: dev, Server: tcpsim.DefaultServer,
				FileSize: 4 << 20, RTT: 100 * time.Millisecond, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			if dev.Name == "android" {
				androidSamples = len(res.Flow.Samples)
			} else {
				iosSamples = len(res.Flow.Samples)
			}
		}
	}
	b.ReportMetric(float64(androidSamples), "androidRounds")
	b.ReportMetric(float64(iosSamples), "iosRounds")
}

// BenchmarkFigure14 computes the RTT distribution.
func BenchmarkFigure14(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rtts []float64
		for _, l := range logs {
			if l.Type.Chunk() && l.Device.Mobile() && !l.Proxied {
				rtts = append(rtts, l.RTT.Seconds())
			}
		}
		dist.NewECDF(rtts)
	}
	b.ReportMetric(res.Perf.RTT.Quantile(0.5)*1000, "medianRTT_ms")
}

// BenchmarkFigure15 estimates the sending-window distribution.
func BenchmarkFigure15(b *testing.B) {
	_, logs, res := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var swnd []float64
		for _, l := range logs {
			if l.Type == trace.ChunkStore && l.Bytes == 512<<10 && !l.Proxied && l.Device.Mobile() {
				if tt := l.TransferTime().Seconds(); tt > 0 {
					swnd = append(swnd, float64(l.Bytes)*l.RTT.Seconds()/tt)
				}
			}
		}
		dist.NewECDF(swnd)
	}
	b.ReportMetric(res.Perf.SWnd.P(66*1024), "P_swndBelow64KB")
}

// BenchmarkFigure16 runs the idle-time dissection on the simulator.
func BenchmarkFigure16(b *testing.B) {
	var res core.IdleTimeResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: 20, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Classes["android/storage"].RestartFrac, "androidRestartFrac")
	b.ReportMetric(res.Classes["ios/storage"].RestartFrac, "iosRestartFrac")
}

// BenchmarkReproduceAll runs the complete comparison (every row of
// EXPERIMENTS.md) once per iteration at a reduced scale.
func BenchmarkReproduceAll(b *testing.B) {
	_, _, res := benchData(b)
	idle, err := core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rows := report.Compare(res, idle)
	ok, total := report.Summary(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Compare(res, idle)
	}
	b.ReportMetric(float64(ok), "rowsInBand")
	b.ReportMetric(float64(total), "rowsTotal")
}

// --- Ablations: the design-choice experiments from §3.3/§4.3 ---------

// BenchmarkAblationChunkSize sweeps the chunk size (the §4.3 "use
// larger chunks" remedy).
func BenchmarkAblationChunkSize(b *testing.B) {
	sizes := []int64{512 << 10, 2 << 20}
	var thr [2]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, cs := range sizes {
			res, err := tcpsim.SimulateUpload(tcpsim.TransferConfig{
				Device: tcpsim.AndroidProfile, Server: tcpsim.DefaultServer,
				FileSize: 10 << 20, ChunkSize: cs,
				RTT: 100 * time.Millisecond, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			thr[j] = res.Flow.Throughput()
		}
	}
	b.ReportMetric(thr[0]/1024, "kbps_512KB")
	b.ReportMetric(thr[1]/1024, "kbps_2MB")
	b.ReportMetric(thr[1]/thr[0], "speedup")
}

// BenchmarkAblationSSAI toggles slow-start-after-idle.
func BenchmarkAblationSSAI(b *testing.B) {
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, noSSAI := range []bool{false, true} {
			res, err := tcpsim.SimulateUpload(tcpsim.TransferConfig{
				Device: tcpsim.AndroidProfile, Server: tcpsim.DefaultServer,
				FileSize: 10 << 20, RTT: 100 * time.Millisecond,
				NoSSAI: noSSAI, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			if noSSAI {
				off = res.Flow.Throughput()
			} else {
				on = res.Flow.Throughput()
			}
		}
	}
	b.ReportMetric(off/on, "speedupWithoutSSAI")
}

// BenchmarkAblationWindowScaling toggles the server's 64 KB clamp.
func BenchmarkAblationWindowScaling(b *testing.B) {
	var clamped, scaled float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ws := range []bool{false, true} {
			server := tcpsim.DefaultServer
			server.WindowScaling = ws
			res, err := tcpsim.SimulateUpload(tcpsim.TransferConfig{
				Device: tcpsim.IOSProfile, Server: server,
				FileSize: 10 << 20, RTT: 100 * time.Millisecond, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			if ws {
				scaled = res.Flow.Throughput()
			} else {
				clamped = res.Flow.Throughput()
			}
		}
	}
	b.ReportMetric(scaled/clamped, "speedupWithScaling")
}

// BenchmarkAblationDeferral measures the smart-backup peak shaving
// (the §3.2.2 implication; see examples/backupadvisor for the full
// policy).
func BenchmarkAblationDeferral(b *testing.B) {
	g, logs, _ := benchData(b)
	loc := g.Config().Start.Location()
	var peakReduction, eveningReduction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var before, after [24]float64
		for _, l := range logs {
			if l.Type != trace.ChunkStore {
				continue
			}
			h := l.Time.In(loc).Hour()
			v := float64(l.Bytes)
			before[h] += v
			if h < 20 {
				after[h] += v
			}
		}
		// Water-fill the deferred evening volume into the least-loaded
		// morning hours (00:00-10:00), as examples/backupadvisor does.
		var deferred float64
		for h := 20; h < 24; h++ {
			deferred += before[h]
		}
		for deferred > 0 {
			min := 0
			for h := 1; h < 10; h++ {
				if after[h] < after[min] {
					min = h
				}
			}
			step := deferred
			if step > 64<<20 {
				step = 64 << 20
			}
			after[min] += step
			deferred -= step
		}
		maxOf := func(p [24]float64) float64 {
			m := 0.0
			for _, v := range p {
				if v > m {
					m = v
				}
			}
			return m
		}
		peakReduction = 1 - maxOf(after)/maxOf(before)
		var evBefore, evAfter float64
		for h := 20; h < 24; h++ {
			evBefore += before[h]
			evAfter += after[h]
		}
		eveningReduction = 1 - evAfter/evBefore
	}
	b.ReportMetric(peakReduction, "peakReduction")
	b.ReportMetric(eveningReduction, "eveningLoadReduction")
}

// BenchmarkAblationRestartPolicy compares the three §4.3 idle-restart
// policies under the default burst model: deployed slow-start restart,
// naive SSAI-off (burst-loss risk), and paced restart.
func BenchmarkAblationRestartPolicy(b *testing.B) {
	var thr [3]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []tcpsim.RestartPolicy{
			tcpsim.RestartSlowStart, tcpsim.KeepWindow, tcpsim.PacedRestart,
		} {
			res, err := tcpsim.SimulateUploadPolicy(tcpsim.TransferConfig{
				Device: tcpsim.AndroidProfile, Server: tcpsim.DefaultServer,
				FileSize: 10 << 20, RTT: 100 * time.Millisecond, Seed: uint64(i),
			}, pol, tcpsim.DefaultBurst)
			if err != nil {
				b.Fatal(err)
			}
			thr[pol] = res.Throughput / 1024
		}
	}
	b.ReportMetric(thr[tcpsim.RestartSlowStart], "kbps_slowstart")
	b.ReportMetric(thr[tcpsim.KeepWindow], "kbps_keepwindow")
	b.ReportMetric(thr[tcpsim.PacedRestart], "kbps_paced")
}

// BenchmarkAblationCache runs the web-cache what-if (§3.1.4): Zipf
// download popularity through the live LRU cache.
func BenchmarkAblationCache(b *testing.B) {
	var small, large float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunCacheStudy(core.CacheStudyConfig{
			Objects: 500, Requests: 10000, ObjectBytes: 8 << 10,
			CacheFracs: []float64{0.05, 0.2}, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		small = res.Points[0].HitRate
		large = res.Points[1].HitRate
	}
	b.ReportMetric(small, "hitRate_5pctCache")
	b.ReportMetric(large, "hitRate_20pctCache")
}

// BenchmarkAblationTiering runs the f4-style warm-storage what-if
// (§3.2.2): with ~80% of uploads never read, demoting idle objects
// cuts storage cost.
func BenchmarkAblationTiering(b *testing.B) {
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunTieringStudy(core.TieringStudyConfig{
			Objects: 500, ObjectBytes: 16 << 10, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		saving = res.Saving
	}
	b.ReportMetric(saving, "costSaving")
}

// BenchmarkAblationDedup measures deduplication benefit on the live
// chunk store when a fraction of uploads share content (the design
// choice the paper argues matters little for mobile backup workloads,
// where uploads are mostly unique photos — compare dupProb 0.05
// against a PC-like 0.3).
func BenchmarkAblationDedup(b *testing.B) {
	var mobileRatio, pcRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mobileRatio = dedupRun(uint64(i), 200, 0.05).DedupRatio()
		pcRatio = dedupRun(uint64(i), 200, 0.30).DedupRatio()
	}
	b.ReportMetric(mobileRatio, "mobileBytesSaved")
	b.ReportMetric(pcRatio, "pcBytesSaved")
}

// --- Observability overhead ------------------------------------------

// BenchmarkMetricsHotPath measures the raw cost of the per-request
// instrumentation: one counter increment plus one histogram
// observation. This is the number the "<100 ns of overhead" claim in
// README's Observability section rests on.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := metrics.NewRegistry()
	c := reg.Counter("bench_requests_total", "bench")
	h := reg.Histogram("bench_seconds", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// benchFrontEndChunkPut drives PUT /chunk/{md5} directly against the
// front-end handler (no sockets), with or without metrics attached.
func benchFrontEndChunkPut(b *testing.B, instrumented bool) {
	var cfg storage.FrontEndConfig
	if instrumented {
		cfg.Metrics = storage.NewFrontEndMetrics(metrics.NewRegistry())
	}
	cfg.Store = storage.NewMemStore()
	cfg.Meta = storage.NewMetadata("http://fe")
	fe := storage.NewFrontEnd(cfg)
	handler := fe.Handler()
	data := make([]byte, 4<<10)
	for i := range data {
		data[i] = byte(i)
	}
	path := "/chunk/" + storage.SumBytes(data).String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPut, path, bytes.NewReader(data))
		req.Header.Set("X-Device-Type", "android")
		req.Header.Set("X-Device-ID", "42")
		req.Header.Set("X-User-ID", "1042")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkFrontEndUninstrumented is the baseline for the pair; the
// delta to BenchmarkFrontEndInstrumented is the full per-request
// instrumentation cost on the chunk hot path.
func BenchmarkFrontEndUninstrumented(b *testing.B) { benchFrontEndChunkPut(b, false) }

// BenchmarkFrontEndInstrumented is the same request path with the
// counter + histogram instrumentation attached.
func BenchmarkFrontEndInstrumented(b *testing.B) { benchFrontEndChunkPut(b, true) }

// dedupRun pushes n 64 KB chunk uploads into a fresh store; each
// upload duplicates one of 8 shared contents with probability dupProb.
func dedupRun(seed uint64, n int, dupProb float64) storage.StoreStats {
	store := storage.NewMemStore()
	src := randx.New(seed)
	shared := make([][]byte, 8)
	for i := range shared {
		s := randx.Derive(seed, "shared")
		buf := make([]byte, 64<<10)
		for j := range buf {
			buf[j] = byte(s.Uint64() + uint64(i))
		}
		shared[i] = buf
	}
	for i := 0; i < n; i++ {
		var data []byte
		if src.Bool(dupProb) {
			data = shared[src.Intn(len(shared))]
		} else {
			data = make([]byte, 64<<10)
			for j := range data {
				data[j] = byte(src.Uint64())
			}
		}
		if err := store.Put(storage.SumBytes(data), data); err != nil {
			panic(err)
		}
	}
	return store.Stats()
}
