// Tcptuning explores the paper's §4.3 transmission-optimization
// implications on the TCP simulator: for Android and iOS upload flows
// it sweeps the remedies the paper discusses — larger chunks (fewer
// inter-chunk idles), disabling slow-start-after-idle, and enabling
// window scaling at the server — and reports the throughput effect of
// each.
package main

import (
	"fmt"
	"time"

	"mcloud/internal/tcpsim"
	"mcloud/internal/textplot"
)

const (
	fileSize = 20 << 20
	flows    = 40
	rtt      = 100 * time.Millisecond
)

// meanThroughput runs upload flows and returns goodput in KB/s plus
// the slow-start restart fraction.
func meanThroughput(dev tcpsim.DeviceProfile, chunk int64, noSSAI, winScale bool) (kbps float64, restartFrac float64) {
	server := tcpsim.DefaultServer
	server.WindowScaling = winScale
	var total float64
	restarts, gaps := 0, 0
	for i := 0; i < flows; i++ {
		res, err := tcpsim.SimulateUpload(tcpsim.TransferConfig{
			Device:    dev,
			Server:    server,
			FileSize:  fileSize,
			ChunkSize: chunk,
			RTT:       rtt,
			NoSSAI:    noSSAI,
			Seed:      uint64(i) * 31,
		})
		if err != nil {
			panic(err)
		}
		total += res.Flow.Throughput()
		for ci, c := range res.Flow.Chunks {
			if ci > 0 {
				gaps++
				if c.Restarted {
					restarts++
				}
			}
		}
	}
	rf := 0.0
	if gaps > 0 {
		rf = float64(restarts) / float64(gaps)
	}
	return total / flows / 1024, rf
}

func main() {
	fmt.Println("== §4.3: transmission optimizations for upload flows ==")
	fmt.Printf("(20 MB uploads, RTT %v, %d flows per cell)\n\n", rtt, flows)

	devices := []tcpsim.DeviceProfile{tcpsim.AndroidProfile, tcpsim.IOSProfile}

	// Baseline.
	rows := [][]string{}
	for _, dev := range devices {
		base, rf := meanThroughput(dev, 512<<10, false, false)
		noSSAI, _ := meanThroughput(dev, 512<<10, true, false)
		big, bigRf := meanThroughput(dev, 2<<20, false, false)
		scaled, _ := meanThroughput(dev, 512<<10, false, true)
		all, _ := meanThroughput(dev, 2<<20, true, true)
		rows = append(rows, []string{
			dev.Name,
			fmt.Sprintf("%.0f KB/s (%.0f%% restarts)", base, 100*rf),
			fmt.Sprintf("%.0f (+%.0f%%)", noSSAI, 100*(noSSAI/base-1)),
			fmt.Sprintf("%.0f (+%.0f%%, %.0f%% restarts)", big, 100*(big/base-1), 100*bigRf),
			fmt.Sprintf("%.0f (+%.0f%%)", scaled, 100*(scaled/base-1)),
			fmt.Sprintf("%.0f (+%.0f%%)", all, 100*(all/base-1)),
		})
	}
	fmt.Println(textplot.Table(
		[]string{"device", "baseline 512KB", "no SSAI", "2MB chunks", "win scaling", "all three"}, rows))

	// Chunk-size sweep: the paper recommends 1.5-2 MB chunks since the
	// median stored file is ~1.5 MB.
	fmt.Println("chunk size sweep (Android uploads):")
	var xs, ys, rfs []float64
	for _, c := range []int64{256 << 10, 512 << 10, 1 << 20, 1536 << 10, 2 << 20, 4 << 20, 8 << 20} {
		thr, rf := meanThroughput(tcpsim.AndroidProfile, c, false, false)
		xs = append(xs, float64(c)/(1<<20))
		ys = append(ys, thr)
		rfs = append(rfs, 100*rf)
		fmt.Printf("  %6.2f MB chunks: %6.0f KB/s, %4.0f%% of idles restart slow-start\n",
			float64(c)/(1<<20), thr, 100*rf)
	}
	fmt.Println()
	fmt.Println(textplot.Render(textplot.Options{
		Title: "upload throughput (KB/s) vs chunk size (MB)", XLabel: "MB", Width: 60, Height: 10,
	}, textplot.Series{Xs: xs, Ys: ys}))

	// Restart-policy comparison under an explicit burst model: the
	// paper warns that simply disabling SSAI risks tail losses after
	// the idle burst; pacing gets the benefit safely.
	fmt.Println("restart policy comparison (Android uploads, lossy bottleneck):")
	harsh := tcpsim.BurstParams{SafeBurst: 24 << 10, LossProb: 0.8, RecoveryRTOs: 3}
	prows := [][]string{}
	for _, pol := range []tcpsim.RestartPolicy{
		tcpsim.RestartSlowStart, tcpsim.KeepWindow, tcpsim.PacedRestart,
	} {
		var thr float64
		losses, restarts, paced := 0, 0, 0
		for i := 0; i < flows; i++ {
			res, err := tcpsim.SimulateUploadPolicy(tcpsim.TransferConfig{
				Device: tcpsim.AndroidProfile, Server: tcpsim.DefaultServer,
				FileSize: fileSize, RTT: rtt, Seed: uint64(i),
			}, pol, harsh)
			if err != nil {
				panic(err)
			}
			thr += res.Throughput / 1024
			losses += res.BurstLosses
			restarts += res.Restarts
			paced += res.PacedIdles
		}
		prows = append(prows, []string{
			pol.String(),
			fmt.Sprintf("%.0f KB/s", thr/flows),
			fmt.Sprintf("%d", restarts),
			fmt.Sprintf("%d", losses),
			fmt.Sprintf("%d", paced),
		})
	}
	fmt.Println(textplot.Table(
		[]string{"policy", "throughput", "ss-restarts", "burst losses", "paced idles"}, prows))

	fmt.Println("takeaways (matching §4.3):")
	fmt.Println(" - larger chunks cut the number of idle intervals, the dominant Android penalty")
	fmt.Println(" - disabling slow-start-after-idle helps, but post-idle bursts cost timeouts on lossy paths")
	fmt.Println(" - paced restarts keep the window safely (Visweswaraiah & Heidemann)")
	fmt.Println(" - window scaling lifts the 64 KB clamp that bounds every upload flow")
}
