// Quickstart: generate a small synthetic week of mobile cloud storage
// logs, identify sessions with the paper's τ = 1 h rule, and fit the
// two-component Gaussian mixture of Figure 3 — the minimal end-to-end
// tour of the public API.
package main

import (
	"fmt"
	"log"

	"mcloud"
)

func main() {
	// 1. Generate a week of logs for a small population.
	logs, err := mcloud.Generate(mcloud.DatasetConfig{Users: 1000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d request logs\n", len(logs))

	// 2. Run the paper's full analysis pass.
	res, err := mcloud.AnalyzeLogs(logs, logs[0].Time, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Session structure (§3.1.1).
	s := res.Sessions
	fmt.Printf("sessions: %d (store-only %.1f%%, retrieve-only %.1f%%, mixed %.1f%%)\n",
		s.Stats.Total, 100*s.StoreOnlyFrac, 100*s.RetrieveOnlyFrac, 100*s.MixedFrac)

	// 4. The Figure 3 mixture: in-session vs inter-session intervals.
	io := res.InterOp
	fmt.Printf("inter-operation mixture: %v\n", io.Mixture)
	fmt.Printf("  in-session mean %.1f s, inter-session mean %.2f days, valley at %.0f s -> τ = 1 h\n",
		io.InSessionMeanSec(), io.InterSessionMeanSec()/86400, io.ValleySec)

	// 5. The headline finding: the service is upload-dominated, yet
	//    most users never come back for their data.
	fmt.Printf("stored/retrieved file ratio: %.2f\n", res.Workload.FileRatio())
	if nr, ok := res.Engagement.NeverRetrieve["1-mobile-device"]; ok {
		fmt.Printf("single-device users who never retrieve their day-0 uploads: %.0f%%\n", 100*nr)
	}
}
