// Servicedemo runs the complete storage service on loopback sockets —
// a metadata server plus two storage front-ends — drives simulated
// Android and iOS devices through the §2.1 store/retrieve protocol
// over real HTTP, then feeds the front-ends' request logs through the
// session-identification pipeline, closing the loop the paper's
// measurement setup describes (log collection at the front-ends).
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/session"
	"mcloud/internal/storage"
	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

func main() {
	// 1. Bring up the service.
	store := storage.NewMemStore()
	meta := storage.NewMetadata()
	collector := &storage.Collector{}

	var servers []*http.Server
	for i := 0; i < 2; i++ {
		fe := storage.NewFrontEnd(storage.FrontEndConfig{
			Store:         store,
			Meta:          meta,
			Sink:          collector,
			UpstreamDelay: func() time.Duration { return 2 * time.Millisecond },
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: fe.Handler()}
		go srv.Serve(ln)
		servers = append(servers, srv)
		meta.AddFrontEnd("http://" + ln.Addr().String())
		fmt.Printf("front-end %d on %s\n", i+1, ln.Addr())
	}
	metaLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	metaSrv := &http.Server{Handler: meta.Handler()}
	go metaSrv.Serve(metaLn)
	metaURL := "http://" + metaLn.Addr().String()
	fmt.Printf("metadata server on %s\n\n", metaLn.Addr())

	// 2. Drive devices: three users, one of them with two devices, one
	//    sharing content with another (dedup).
	src := randx.New(2016)
	mkData := func(n int, stream *randx.Source) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(stream.Uint64())
		}
		return b
	}

	alice := &storage.Client{MetaURL: metaURL, UserID: 1, DeviceID: 11, Device: trace.Android, SimRTT: 90 * time.Millisecond}
	bob := &storage.Client{MetaURL: metaURL, UserID: 2, DeviceID: 21, Device: trace.IOS, SimRTT: 60 * time.Millisecond}
	bobPad := &storage.Client{MetaURL: metaURL, UserID: 2, DeviceID: 22, Device: trace.Android, SimRTT: 120 * time.Millisecond}

	// Alice backs up a batch of "photos" (sizes from the paper's
	// store mixture component 1).
	var aliceURLs []string
	for i := 0; i < 6; i++ {
		size := int(src.Exp(workload.StoreSizeMus[0] * float64(1<<20)))
		if size < 64<<10 {
			size = 64 << 10
		}
		if size > 3<<20 {
			size = 3 << 20
		}
		res, err := alice.StoreFile(fmt.Sprintf("photo-%d.jpg", i), mkData(size, src.Split()))
		if err != nil {
			log.Fatal(err)
		}
		aliceURLs = append(aliceURLs, res.URL)
	}
	fmt.Printf("alice uploaded %d photos\n", len(aliceURLs))

	// Bob uploads a video, then his second device uploads the *same*
	// video — the metadata server deduplicates it.
	video := mkData(5<<20/2, src.Split())
	res1, err := bob.StoreFile("clip.mp4", video)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := bobPad.StoreFile("clip-copy.mp4", video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob uploaded a %.1f MB video; second device dedup=%v (0 chunks resent)\n",
		float64(len(video))/(1<<20), res2.Deduplicated)
	if !res2.Deduplicated || res2.ChunksSent != 0 {
		log.Fatal("expected server-side deduplication")
	}

	// Bob's pad retrieves one of Alice's files via its shared URL (the
	// content-distribution usage pattern of §3.2.1).
	got, err := bobPad.RetrieveFile(aliceURLs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's pad fetched alice's shared photo (%.1f KB) via URL\n\n", float64(len(got))/1024)
	_ = res1

	// 3. Shut down and analyze the captured request logs.
	for _, s := range servers {
		s.Close()
	}
	metaSrv.Close()

	logs := collector.Logs()
	id := session.NewIdentifier(0)
	for _, l := range logs {
		id.Add(l)
	}
	sessions := id.Sessions()
	st := session.Summarize(sessions)
	fmt.Printf("front-end request logs captured: %d\n", len(logs))
	fmt.Printf("sessions identified: %d (store-only %d, retrieve-only %d, mixed %d)\n",
		st.Total, st.ByClass[session.StoreOnly], st.ByClass[session.RetrieveOnly], st.ByClass[session.Mixed])
	for _, s := range sessions {
		fmt.Printf("  user %d dev %d %-13s ops=%d chunks=%d vol=%.2f MB len=%v\n",
			s.UserID, s.DeviceID, s.Class(), s.FileOps, s.ChunkReqs,
			float64(s.Volume())/(1<<20), s.Length().Round(time.Millisecond))
	}

	ss := store.Stats()
	ms := meta.Stats()
	fmt.Printf("\nchunk store: %d unique chunks, %.1f MB unique of %.1f MB offered (dedup ratio %.2f)\n",
		ss.Chunks, float64(ss.Bytes)/(1<<20), float64(ss.BytesStored)/(1<<20), ss.DedupRatio())
	fmt.Printf("metadata: %d files, %d users, %d file-level dedup hits\n", ms.Files, ms.Users, ms.DedupHits)
}
