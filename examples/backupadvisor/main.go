// Backupadvisor quantifies the paper's §3.2.2 design implication: most
// uploads are never retrieved within the week, so a "smart auto
// backup" can defer uploads from the evening peak into the early
// morning trough, cutting the peak load the storage servers must be
// provisioned for.
//
// The example generates a week of logs, applies a deferral policy
// (uploads arriving inside the peak window move to the next morning
// unless the user retrieves the same day), and reports the peak-hour
// load before and after.
package main

import (
	"fmt"
	"log"
	"time"

	"mcloud"
	"mcloud/internal/textplot"
	"mcloud/internal/trace"
)

// Policy parameters: uploads arriving in the evening peak window are
// deferred into the next morning's trough, spread across several hours
// (per-user assignment) so the deferral does not create a new spike.
const (
	peakStart   = 20 // defer uploads arriving from 20:00 local
	troughStart = 0  // spread deferred uploads over 00:00 ...
	troughHours = 10 // ... to 10:00 (next morning)
)

func main() {
	logs, err := mcloud.Generate(mcloud.DatasetConfig{Users: 4000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Users that retrieve anything on a given day: deferring their
	// uploads would risk hurting QoE, so the policy leaves them alone.
	retrievesOn := map[uint64]map[int]bool{}
	anchor := logs[0].Time.Truncate(24 * time.Hour)
	dayOf := func(t time.Time) int { return int(t.Sub(anchor) / (24 * time.Hour)) }
	for _, l := range logs {
		if l.Type.Retrieve() {
			if retrievesOn[l.UserID] == nil {
				retrievesOn[l.UserID] = map[int]bool{}
			}
			retrievesOn[l.UserID][dayOf(l.Time)] = true
		}
	}

	loc := time.FixedZone("CST", 8*3600)

	deferred := make([]trace.Log, len(logs))
	copy(deferred, logs)
	// Greedy water-filling: each deferred upload lands in whichever
	// trough hour currently carries the least volume, so the deferral
	// flattens the morning instead of creating a new spike. (The real
	// client would get its slot from the server with the same
	// least-loaded rule.)
	var troughLoad [troughHours]float64
	for _, l := range logs {
		if l.Type == trace.ChunkStore {
			if h := l.Time.In(loc).Hour(); h >= troughStart && h < troughStart+troughHours {
				troughLoad[h-troughStart] += float64(l.Bytes)
			}
		}
	}
	// A user's whole deferred batch goes to one slot per day so its
	// files stay together; slots are picked per (user, day).
	slot := map[[2]uint64]int{}
	moved, total := 0, 0
	for i, l := range deferred {
		if l.Type != trace.ChunkStore && l.Type != trace.FileStore {
			continue
		}
		if l.Type == trace.ChunkStore {
			total++
		}
		lt := l.Time.In(loc)
		if lt.Hour() < peakStart { // outside the evening peak window
			continue
		}
		if retrievesOn[l.UserID][dayOf(l.Time)] || retrievesOn[l.UserID][dayOf(l.Time)+1] {
			continue // user touches data soon: do not defer
		}
		key := [2]uint64{l.UserID, uint64(dayOf(l.Time))}
		h, ok := slot[key]
		if !ok {
			h = 0
			for c := 1; c < troughHours; c++ {
				if troughLoad[c] < troughLoad[h] {
					h = c
				}
			}
			slot[key] = h
		}
		if l.Type == trace.ChunkStore {
			troughLoad[h] += float64(l.Bytes)
			moved++
		}
		y, m, d := lt.Date()
		midnight := time.Date(y, m, d, 0, 0, 0, 0, loc).Add(24 * time.Hour)
		deferred[i].Time = midnight.Add(time.Duration(troughStart+h) * time.Hour).
			Add(time.Duration(lt.Minute()) * time.Minute).
			Add(time.Duration(lt.Second()) * time.Second)
	}

	// Peak provisioning is driven by the hour-of-day profile: fold the
	// week's upload volume onto 24 local hours.
	fold := func(ls []trace.Log) []float64 {
		out := make([]float64, 24)
		for _, l := range ls {
			if l.Type == trace.ChunkStore {
				out[l.Time.In(loc).Hour()] += float64(l.Bytes) / 1e9
			}
		}
		return out
	}
	before := fold(logs)
	after := fold(deferred)

	peak := func(profile []float64) (float64, int) {
		best, bestH := 0.0, 0
		for h, v := range profile {
			if v > best {
				best, bestH = v, h
			}
		}
		return best, bestH
	}
	pb, hb := peak(before)
	pa, ha := peak(after)
	window := func(profile []float64) float64 {
		v := 0.0
		for h := peakStart; h < 24; h++ {
			v += profile[h]
		}
		return v
	}
	wb, wa := window(before), window(after)

	fmt.Println("== Smart auto-backup deferral (paper §3.2.2) ==")
	fmt.Printf("deferral window: uploads from %02d:00 local move into %02d:00-%02d:00 next morning\n",
		peakStart, troughStart, troughStart+troughHours)
	fmt.Printf("chunks deferred: %d of %d (%.1f%%)\n", moved, total, 100*float64(moved)/float64(total))
	fmt.Printf("evening-window (%02d:00-24:00) upload load: %.1f GB -> %.1f GB (-%.0f%%)\n",
		peakStart, wb, wa, 100*(1-wa/wb))
	fmt.Printf("provisioning peak hour: %.2f GB at %02d:00 -> %.2f GB at %02d:00 (%.1f%% lower)\n",
		pb, hb, pa, ha, 100*(1-pa/pb))
	fmt.Println("(the morning is water-filled flat, so the remaining peak is the")
	fmt.Println(" bound; the big win is the freed evening capacity that would")
	fmt.Println(" otherwise be provisioned for)")
	fmt.Println()
	if pa > pb {
		log.Fatalf("deferral raised the provisioning peak: %.2f -> %.2f GB", pb, pa)
	}
	xs := make([]float64, 24)
	for i := range xs {
		xs[i] = float64(i)
	}
	fmt.Println(textplot.Render(textplot.Options{
		Title: "upload volume by hour of day (GB, week total)", XLabel: "hour", Width: 70, Height: 12,
	},
		textplot.Series{Name: "before", Xs: xs, Ys: before},
		textplot.Series{Name: "after deferral", Xs: xs, Ys: after},
	))

	// Sanity: deferral preserves total volume.
	var vb, va float64
	for _, v := range before {
		vb += v
	}
	for _, v := range after {
		va += v
	}
	if diff := vb - va; diff > 1e-9 || diff < -1e-9 {
		log.Fatalf("volume changed: %.3f -> %.3f GB", vb, va)
	}
	fmt.Printf("total upload volume unchanged: %.2f GB\n", vb)
}
