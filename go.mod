module mcloud

go 1.22
