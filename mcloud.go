// Package mcloud reproduces "An Empirical Analysis of a Large-scale
// Mobile Cloud Storage Service" (IMC 2016): a calibrated synthetic
// workload standing in for the paper's proprietary 349-million-entry
// log dataset, a runnable mobile cloud storage service, a TCP flow
// simulator for the packet-level performance study, and the full
// analysis pipeline that regenerates every table and figure in the
// paper's evaluation.
//
// The package is a thin facade over the internal engines:
//
//   - Generate produces a week of front-end request logs for a
//     population of mobile (and optionally PC) users whose behaviour
//     follows the paper's fitted models.
//   - Analyze runs the paper's complete §2-§3 analysis over any log
//     stream in the Table 1 schema.
//   - StudyIdleTime runs the §4 packet-level study on the TCP
//     simulator, reproducing the slow-start-after-idle findings.
//   - Reproduce does all of the above and emits a paper-vs-measured
//     comparison row per table and figure.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded results.
package mcloud

import (
	"io"
	"time"

	"mcloud/internal/core"
	"mcloud/internal/report"
	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

// DatasetConfig sizes a synthetic dataset. It mirrors
// workload.Config; see that package for the calibration constants.
type DatasetConfig struct {
	Users       int    // mobile users (default 2000)
	PCOnlyUsers int    // additional PC-only population (default Users/2)
	Seed        uint64 // dataset seed
	Days        int    // observation window (default 7)
}

func (c DatasetConfig) workload() workload.Config {
	if c.Users == 0 {
		c.Users = 2000
	}
	if c.PCOnlyUsers == 0 {
		c.PCOnlyUsers = c.Users / 2
	}
	return workload.Config{
		Users:       c.Users,
		PCOnlyUsers: c.PCOnlyUsers,
		Seed:        c.Seed,
		Days:        c.Days,
	}
}

// Generate materializes a dataset in memory.
func Generate(cfg DatasetConfig) ([]trace.Log, error) {
	g, err := workload.New(cfg.workload())
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// GenerateTo streams a dataset to w in the text log format and returns
// the number of records written.
func GenerateTo(cfg DatasetConfig, w io.Writer) (int64, error) {
	g, err := workload.New(cfg.workload())
	if err != nil {
		return 0, err
	}
	return g.GenerateTo(w)
}

// Results is the full analysis output; it aliases the internal type.
type Results = core.Results

// AnalyzeLogs runs the paper's analyses over an in-memory log set.
func AnalyzeLogs(logs []trace.Log, start time.Time, days int) (Results, error) {
	a := core.NewAnalyzer(core.Options{Start: start, Days: days})
	for _, l := range logs {
		a.Add(l)
	}
	return a.Run()
}

// AnalyzeReader runs the analyses over a text-format log stream.
func AnalyzeReader(r io.Reader, start time.Time, days int) (Results, error) {
	a := core.NewAnalyzer(core.Options{Start: start, Days: days})
	if err := trace.ForEach(r, func(l trace.Log) error {
		a.Add(l)
		return nil
	}); err != nil {
		return Results{}, err
	}
	return a.Run()
}

// IdleTimeResult aliases the §4 study output.
type IdleTimeResult = core.IdleTimeResult

// StudyIdleTime runs the §4.2 idle-time dissection on the TCP
// simulator with flows flows per device/direction class.
func StudyIdleTime(flows int, seed uint64) (IdleTimeResult, error) {
	return core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: flows, Seed: seed})
}

// Reproduction bundles a full run: the analysis results, the idle-time
// study, and the paper-vs-measured comparison rows.
type Reproduction struct {
	Results Results
	Idle    IdleTimeResult
	Rows    []report.Row
}

// Passed returns how many comparison rows landed inside their
// acceptance band.
func (r Reproduction) Passed() (ok, total int) { return report.Summary(r.Rows) }

// Reproduce generates a dataset, analyzes it, runs the idle-time
// study, and compares everything against the paper's reported values.
func Reproduce(cfg DatasetConfig, idleFlows int) (Reproduction, error) {
	g, err := workload.New(cfg.workload())
	if err != nil {
		return Reproduction{}, err
	}
	a := core.NewAnalyzer(core.Options{
		Start: g.Config().Start,
		Days:  g.Config().Days,
	})
	a.AddStream(g.Stream())
	res, err := a.Run()
	if err != nil {
		return Reproduction{}, err
	}
	if idleFlows <= 0 {
		idleFlows = 100
	}
	idle, err := core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: idleFlows, Seed: cfg.Seed + 1})
	if err != nil {
		return Reproduction{}, err
	}
	return Reproduction{
		Results: res,
		Idle:    idle,
		Rows:    report.Compare(res, idle),
	}, nil
}
