package tracing

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers one tracer from many goroutines —
// the shape `go test -race` needs to certify the sharded ring. Every
// span must be accounted for: recorded in the ring or counted dropped.
func TestConcurrentRecording(t *testing.T) {
	const workers, perWorker = 16, 200
	tr := New(Config{Node: "n", Capacity: 1024})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.StartRoot("client", "op")
				root.AnnotateInt("worker", int64(w))
				kid := root.StartChild("disk", "append")
				kid.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()

	st := tr.TracerStats()
	want := int64(workers * perWorker * 2)
	if st.Recorded != want {
		t.Fatalf("recorded = %d, want %d", st.Recorded, want)
	}
	spans := tr.Snapshot(Filter{})
	// The ring holds at most Capacity spans; whole-trace filtering can
	// only shrink that set further.
	if len(spans) == 0 || len(spans) > 1024 {
		t.Fatalf("snapshot holds %d spans, want 1..1024", len(spans))
	}
	if got := st.Recorded - st.Dropped; int64(len(spans)) > got {
		t.Fatalf("snapshot %d spans > %d retained", len(spans), got)
	}
}

// TestRingEvictionOrder pins Shards to 1 so eviction order is global:
// overflowing the ring must drop the oldest spans first and keep the
// newest Capacity spans.
func TestRingEvictionOrder(t *testing.T) {
	const capacity, total = 8, 12
	tr := New(Config{Node: "n", Capacity: capacity, Shards: 1})
	for i := 0; i < total; i++ {
		sp := tr.StartRoot("client", fmt.Sprintf("op-%d", i))
		sp.End()
	}
	st := tr.TracerStats()
	if st.Dropped != total-capacity {
		t.Fatalf("dropped = %d, want %d", st.Dropped, total-capacity)
	}
	seen := map[string]bool{}
	for _, sp := range tr.Snapshot(Filter{}) {
		seen[sp.Name] = true
	}
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("op-%d", i)
		wantKept := i >= total-capacity
		if seen[name] != wantKept {
			t.Errorf("span %s kept = %v, want %v (oldest must evict first)", name, seen[name], wantKept)
		}
	}
}

// TestSampling: 1-in-N roots recorded, remote continuations always.
func TestSampling(t *testing.T) {
	tr := New(Config{Node: "n", Sample: 4})
	live := 0
	for i := 0; i < 16; i++ {
		if sp := tr.StartRoot("client", "op"); sp != nil {
			live++
			sp.End()
		}
	}
	if live != 4 {
		t.Fatalf("sampled %d of 16 roots, want 4", live)
	}
	// A trace that arrives over the wire was already sampled upstream.
	for i := 0; i < 8; i++ {
		sp := tr.StartRemote(TraceID(100+i), SpanID(1), "frontend", "h")
		if sp == nil {
			t.Fatal("remote continuation was sampled away")
		}
		sp.End()
	}
}

// TestPinSurvivesEviction: a pinned trace's spans must remain readable
// after the ring has completely turned over — the tail-exemplar
// guarantee behind /debug/traces.
func TestPinSurvivesEviction(t *testing.T) {
	tr := New(Config{Node: "n", Capacity: 8, Shards: 1})
	slow := tr.StartRoot("client", "slow-op")
	slow.End()
	slow.Pin()

	for i := 0; i < 64; i++ {
		sp := tr.StartRoot("client", "noise")
		sp.End()
	}
	found := false
	for _, sp := range tr.Snapshot(Filter{Trace: slow.Trace}) {
		if sp.ID == slow.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("pinned span evicted by ring wrap-around")
	}
	// Spans of a pinned trace recorded after the pin accrete too.
	late := tr.StartRemote(slow.Trace, slow.ID, "frontend", "late")
	late.End()
	found = false
	for _, sp := range tr.Snapshot(Filter{Trace: slow.Trace}) {
		if sp.ID == late.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("span recorded after Pin not captured")
	}
}

// TestPinBounds: the pin set must stay bounded no matter how many
// traces qualify as exemplars.
func TestPinBounds(t *testing.T) {
	tr := New(Config{Node: "n", Capacity: 8})
	for i := 0; i < maxPinnedTraces*3; i++ {
		tr.Pin(TraceID(1000 + i))
	}
	if got := tr.TracerStats().Pinned; got != maxPinnedTraces {
		t.Fatalf("pinned = %d, want bound %d", got, maxPinnedTraces)
	}
}

// TestSnapshotWholeTraces: a filter matches traces, not spans — a
// matching trace comes back complete.
func TestSnapshotWholeTraces(t *testing.T) {
	tr := New(Config{Node: "n"})
	root := tr.StartRoot("client", "op")
	fast := root.StartChild("disk", "append")
	fast.End() // sub-microsecond
	slowKid := root.StartChild("disk", "fsync-wait")
	time.Sleep(2 * time.Millisecond)
	slowKid.End()
	root.End()

	other := tr.StartRoot("client", "other")
	other.End()

	spans := tr.Snapshot(Filter{MinDuration: time.Millisecond})
	ids := map[SpanID]bool{}
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Fatalf("trace %s leaked through MinDuration filter", sp.Trace)
		}
		ids[sp.ID] = true
	}
	if !ids[fast.ID] || !ids[slowKid.ID] || !ids[root.ID] {
		t.Fatalf("matched trace not returned whole: got %d spans", len(spans))
	}
}

// TestNilSafety: every operation on nil tracer/span must be usable.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("c", "n")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	kid := sp.StartChild("c", "n")
	kid.Annotate("k", "v")
	kid.AnnotateInt("k", 1)
	kid.Inject(nil)
	kid.Pin()
	kid.EndErr(nil)
	sp.End()
	if tr.Snapshot(Filter{}) != nil || tr.Node() != "" {
		t.Fatal("nil tracer snapshot not empty")
	}
	if (Stats{}) != tr.TracerStats() {
		t.Fatal("nil tracer stats not zero")
	}
}

// TestIDRoundTrip: wire form parses back to the same ID; garbage is 0.
func TestIDRoundTrip(t *testing.T) {
	id := TraceID(nextID())
	if got := ParseTraceID(id.String()); got != id {
		t.Fatalf("ParseTraceID(%q) = %v, want %v", id.String(), got, id)
	}
	sid := SpanID(nextID())
	if got := ParseSpanID(sid.String()); got != sid {
		t.Fatalf("ParseSpanID round trip = %v, want %v", got, sid)
	}
	if ParseTraceID("not-hex") != 0 || ParseSpanID("") != 0 {
		t.Fatal("garbage must parse to 0")
	}
}
