// Package tracing provides the distributed request tracing that turns
// the service's aggregate histograms into per-request causality: every
// file operation opens a trace at the client, every HTTP request
// carries the trace across the wire (X-MCS-Trace / X-MCS-Span), and
// every layer that spends time on the request — front-end handler,
// replication fan-out, segment append, group-commit fsync wait, retry
// attempt — records a span into a bounded in-process ring buffer.
// cmd/mcstrace later joins the rings of all nodes by trace ID and
// decomposes each chunk transfer into queue / disk / fan-out /
// network / retry stages, the live-cluster analogue of the paper's §4
// chunk-level performance diagnosis.
//
// Design constraints, in order:
//
//   - The untraced hot path must cost nothing: a nil *Span and a nil
//     *Tracer are fully usable no-ops, so call sites need no guards
//     and an unsampled request never allocates.
//   - Recording must be lock-light: finished spans land in a sharded
//     ring (one mutex per shard, spans spread by span ID), so
//     concurrent request goroutines rarely contend.
//   - Memory is bounded: the ring holds a fixed number of spans and
//     overwrites the oldest; slow exemplars survive eviction through
//     an explicitly bounded pin set (see Pin).
package tracing

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Wire headers. Every traced request carries both; a server that sees
// them continues the caller's trace instead of rooting its own.
const (
	// TraceHeader carries the 16-hex-digit trace ID.
	TraceHeader = "X-MCS-Trace"
	// SpanHeader carries the caller's span ID; the server's span is
	// recorded as its child, which is what lets mcstrace join client
	// attempt spans to server handler spans across processes.
	SpanHeader = "X-MCS-Span"
)

// TraceID identifies one end-to-end operation across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }
func (s SpanID) String() string  { return fmt.Sprintf("%016x", uint64(s)) }

// ParseTraceID decodes the wire form; zero means invalid/absent.
func ParseTraceID(s string) TraceID {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return TraceID(v)
}

// ParseSpanID decodes the wire form; zero means invalid/absent.
func ParseSpanID(s string) SpanID {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return SpanID(v)
}

// Annotation is one key/value attached to a span (chunk MD5, byte
// count, replica node, retry attempt, fault observed, ...).
type Annotation struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed piece of work inside a trace. A span is owned by
// the goroutine that started it until End; after End it is an
// immutable record in the tracer's ring.
type Span struct {
	Trace     TraceID       `json:"trace"`
	ID        SpanID        `json:"span"`
	Parent    SpanID        `json:"parent,omitempty"`
	Component string        `json:"component"`
	Name      string        `json:"name"`
	Node      string        `json:"node,omitempty"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Annots    []Annotation  `json:"kv,omitempty"`

	tracer *Tracer
}

// id generation: splitmix64 over a process-unique atomic counter. IDs
// must be unique across the processes of one cluster run, so the
// stream is seeded from the wall clock and pid at init.
var idCtr atomic.Uint64

func init() {
	idCtr.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

func nextID() uint64 {
	x := idCtr.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Config configures a Tracer.
type Config struct {
	// Node names this process in exported spans (a cluster node's
	// advertised URL, or "client" for a load generator).
	Node string
	// Capacity bounds the span ring; 0 means 65536 spans (~16 MB at
	// the observed mean span size). The ring overwrites oldest-first.
	Capacity int
	// Shards splits the ring to cut record contention; 0 means 8,
	// values are rounded up to a power of two. Tests pin Shards to 1
	// to get a deterministic global eviction order.
	Shards int
	// Sample records 1 in Sample locally-rooted traces; 0 and 1 both
	// mean every trace. Requests arriving with trace headers are
	// always recorded — the caller already paid for the decision.
	Sample int
}

// Tracer records finished spans into a bounded sharded ring.
// All methods are safe for concurrent use and safe on a nil receiver
// (every operation becomes a no-op), so components hold a *Tracer
// unconditionally.
type Tracer struct {
	node   string
	sample uint64
	ctr    atomic.Uint64 // root-trace counter for sampling

	shards []ringShard
	mask   uint64

	pinMu     sync.Mutex
	pinned    map[TraceID][]Span
	pinOrder  []TraceID
	pinLimit  int
	pinActive atomic.Int64 // fast-path check: 0 = no pins, skip map lookup

	recorded atomic.Int64
	dropped  atomic.Int64 // spans overwritten before ever being read
}

type ringShard struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded into this shard
	_    [64 - 8]byte
}

// maxPinnedTraces bounds the slow-exemplar set; the oldest pin is
// dropped when a new one arrives beyond the bound.
const maxPinnedTraces = 64

// maxPinnedSpans bounds one pinned trace's span list, so a pinned
// trace that keeps accreting spans cannot grow without limit.
const maxPinnedSpans = 512

// New returns a tracer with the given config.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 65536
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	t := &Tracer{
		node:     cfg.Node,
		sample:   uint64(cfg.Sample),
		shards:   make([]ringShard, n),
		mask:     uint64(n - 1),
		pinned:   make(map[TraceID][]Span),
		pinLimit: maxPinnedTraces,
	}
	for i := range t.shards {
		t.shards[i].buf = make([]Span, 0, per)
	}
	return t
}

// Node returns the tracer's node name ("" on nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// sampled decides whether a locally-rooted trace is recorded.
func (t *Tracer) sampled() bool {
	if t.sample <= 1 {
		return true
	}
	return t.ctr.Add(1)%t.sample == 0
}

// StartRoot opens a new trace and returns its root span, or nil when
// the tracer is nil or the sampling decision says skip — all Span
// methods are nil-safe, so callers never check.
func (t *Tracer) StartRoot(component, name string) *Span {
	if t == nil || !t.sampled() {
		return nil
	}
	return &Span{
		Trace:     TraceID(nextID()),
		ID:        SpanID(nextID()),
		Component: component,
		Name:      name,
		Node:      t.node,
		Start:     time.Now(),
		tracer:    t,
	}
}

// StartRemote opens a span continuing a trace that arrived over the
// wire: trace is the caller's trace ID and parent the caller's span.
// Remote continuations bypass sampling — the root already decided.
func (t *Tracer) StartRemote(trace TraceID, parent SpanID, component, name string) *Span {
	if t == nil || trace == 0 {
		return nil
	}
	return &Span{
		Trace:     trace,
		ID:        SpanID(nextID()),
		Parent:    parent,
		Component: component,
		Name:      name,
		Node:      t.node,
		Start:     time.Now(),
		tracer:    t,
	}
}

// StartChild opens a child span in the same trace (nil-safe: a nil
// parent yields a nil child).
func (s *Span) StartChild(component, name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		Trace:     s.Trace,
		ID:        SpanID(nextID()),
		Parent:    s.ID,
		Component: component,
		Name:      name,
		Node:      s.tracer.Node(),
		Start:     time.Now(),
		tracer:    s.tracer,
	}
}

// Annotate attaches one key/value (nil-safe).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.Annots = append(s.Annots, Annotation{Key: key, Value: value})
}

// AnnotateInt attaches one integer-valued annotation (nil-safe).
func (s *Span) AnnotateInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Annots = append(s.Annots, Annotation{Key: key, Value: strconv.FormatInt(v, 10)})
}

// Annotation returns the value of the first annotation with the key,
// and whether it exists.
func (s *Span) Annotation(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Annots {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// End stamps the duration and records the span (nil-safe). A span
// must be ended exactly once; annotating after End is a bug.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tracer.record(*s)
}

// EndErr is End, annotating the error first when err != nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Annotate("err", err.Error())
	}
	s.End()
}

// Inject writes the trace headers for an outgoing request carrying
// this span as the remote side's parent (nil-safe no-op).
func (s *Span) Inject(h http.Header) {
	if s == nil {
		return
	}
	h.Set(TraceHeader, s.Trace.String())
	h.Set(SpanHeader, s.ID.String())
}

// Pin protects this span's whole trace from ring eviction — called
// when a latency observation lands in a histogram's top buckets, so
// the traces behind the p99 tail remain inspectable long after the
// ring has turned over (nil-safe).
func (s *Span) Pin() {
	if s == nil {
		return
	}
	s.tracer.Pin(s.Trace)
}

// record appends one finished span to the ring, and to the pinned set
// when its trace is pinned.
func (t *Tracer) record(sp Span) {
	if t == nil {
		return
	}
	sp.tracer = nil
	if t.pinActive.Load() > 0 {
		t.pinMu.Lock()
		if spans, ok := t.pinned[sp.Trace]; ok && len(spans) < maxPinnedSpans {
			t.pinned[sp.Trace] = append(spans, sp)
		}
		t.pinMu.Unlock()
	}
	sh := &t.shards[uint64(sp.ID)&t.mask]
	sh.mu.Lock()
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, sp)
	} else {
		sh.buf[sh.next%uint64(cap(sh.buf))] = sp
		t.dropped.Add(1)
	}
	sh.next++
	sh.mu.Unlock()
	t.recorded.Add(1)
}

// Pin marks a trace as protected from eviction: its spans currently
// in the ring are copied aside, and spans recorded later are added as
// they finish. At most maxPinnedTraces traces are pinned; beyond
// that the oldest pin is dropped. Pinning an already-pinned trace is
// a no-op.
func (t *Tracer) Pin(trace TraceID) {
	if t == nil || trace == 0 {
		return
	}
	t.pinMu.Lock()
	if _, ok := t.pinned[trace]; ok {
		t.pinMu.Unlock()
		return
	}
	for len(t.pinOrder) >= t.pinLimit {
		oldest := t.pinOrder[0]
		t.pinOrder = t.pinOrder[1:]
		delete(t.pinned, oldest)
	}
	t.pinned[trace] = nil
	t.pinOrder = append(t.pinOrder, trace)
	t.pinActive.Store(int64(len(t.pinOrder)))
	t.pinMu.Unlock()

	// Copy what the ring already holds for this trace. Pinning is a
	// rare tail event, so the O(capacity) scan is off the hot path.
	var have []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, sp := range sh.buf {
			if sp.Trace == trace {
				have = append(have, sp)
			}
		}
		sh.mu.Unlock()
	}
	if len(have) > 0 {
		t.pinMu.Lock()
		if spans, ok := t.pinned[trace]; ok {
			// Spans recorded between the two critical sections appear
			// in both lists; Snapshot dedups by span ID.
			if len(spans)+len(have) > maxPinnedSpans {
				have = have[:maxPinnedSpans-len(spans)]
			}
			t.pinned[trace] = append(spans, have...)
		}
		t.pinMu.Unlock()
	}
}

// Stats reports the tracer's record/drop counters.
type Stats struct {
	Recorded int64 // spans recorded since start
	Dropped  int64 // spans overwritten by ring wrap-around
	Pinned   int   // traces currently pinned
}

// TracerStats returns a snapshot of the counters (zero on nil).
func (t *Tracer) TracerStats() Stats {
	if t == nil {
		return Stats{}
	}
	t.pinMu.Lock()
	pins := len(t.pinOrder)
	t.pinMu.Unlock()
	return Stats{Recorded: t.recorded.Load(), Dropped: t.dropped.Load(), Pinned: pins}
}

// Filter selects spans for Snapshot; zero values mean "no constraint".
type Filter struct {
	// MinDuration drops spans shorter than this... but never drops a
	// span whose trace has at least one qualifying span — filtering
	// happens per trace, so a matched trace is returned whole.
	MinDuration time.Duration
	// Component keeps only traces containing a span of this component.
	Component string
	// Trace keeps only this trace.
	Trace TraceID
}

// Snapshot returns the ring's current spans (plus pinned spans no
// longer in the ring), whole traces only: a filter matches traces,
// not spans, so a returned trace is complete as far as this process
// knows. Spans are deduplicated by span ID.
func (t *Tracer) Snapshot(f Filter) []Span {
	if t == nil {
		return nil
	}
	var all []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		all = append(all, sh.buf...)
		sh.mu.Unlock()
	}
	t.pinMu.Lock()
	for _, spans := range t.pinned {
		all = append(all, spans...)
	}
	t.pinMu.Unlock()

	seen := make(map[SpanID]bool, len(all))
	dedup := all[:0]
	for _, sp := range all {
		if !seen[sp.ID] {
			seen[sp.ID] = true
			dedup = append(dedup, sp)
		}
	}
	all = dedup

	// Find qualifying traces, then keep those traces whole.
	keep := make(map[TraceID]bool)
	for _, sp := range all {
		if f.Trace != 0 && sp.Trace != f.Trace {
			continue
		}
		if f.Component != "" && sp.Component != f.Component {
			continue
		}
		if sp.Duration < f.MinDuration {
			continue
		}
		keep[sp.Trace] = true
	}
	out := make([]Span, 0, len(all))
	for _, sp := range all {
		if keep[sp.Trace] {
			out = append(out, sp)
		}
	}
	return out
}

// --- context plumbing ---------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, nil when absent (and
// on a nil ctx, so store layers can pass contexts through blindly).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ChildFromContext starts a child of the context's span: the one call
// store layers make on their hot paths. Nil context, absent span, or
// untraced request all return nil at the cost of one context lookup.
func ChildFromContext(ctx context.Context, component, name string) *Span {
	return FromContext(ctx).StartChild(component, name)
}
