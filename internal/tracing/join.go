package tracing

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Span vocabulary shared by the recording sites in internal/storage
// and the join logic here. The stage decomposition keys off these
// names, so they live in one place.
const (
	// Components.
	CompClient    = "client"    // mcsload / storage.Client
	CompFrontEnd  = "frontend"  // HTTP handler middleware
	CompMeta      = "meta"      // metadata service handler
	CompReplicate = "replicate" // ReplicatedStore fan-out / failover
	CompDisk      = "disk"      // DiskStore append / fsync / read
	CompStore     = "store"     // tier and cache layers

	// Client-side span names.
	SpanStoreFile    = "store-file"
	SpanRetrieveFile = "retrieve-file"
	SpanChunkPut     = "chunk-put"
	SpanChunkGet     = "chunk-get"
	SpanAttempt      = "attempt"

	// Server-side span names.
	SpanFanout     = "fanout"      // replication fan-out barrier (put)
	SpanReplicaPut = "replica-put" // one remote replica write
	SpanReplicaGet = "replica-get" // one remote failover read
	SpanDiskAppend = "append"      // segment append under the store lock
	SpanDiskFsync  = "fsync-wait"  // group-commit fsync wait
	SpanDiskRead   = "read"        // segment read + verify

	// Metadata WAL span names (component CompMeta). They sit under the
	// meta handler span, so a slow metadata commit decomposes into log
	// append vs. group-commit fsync wait — the same split the chunk
	// disk stage gets.
	SpanWALAppend = "wal-append"     // record append under the metadata lock
	SpanWALFsync  = "wal-fsync-wait" // group-commit fsync wait for the record's LSN

	// Failover span names (component CompMeta). Root spans on the
	// standby: the lease lifecycle and the promotion it triggers.
	SpanLeaseRenew   = "lease-renew"   // one successful replication pull (= lease renewal)
	SpanLeaseExpired = "lease-expired" // pull failures crossed the lease TTL
	SpanPromote      = "meta-promote"  // standby self-promotion (epoch bump + fence record)
)

// Trace is one operation's spans joined across every exporting node.
type Trace struct {
	ID    TraceID
	Spans []*Span

	byID     map[SpanID]*Span
	children map[SpanID][]*Span
}

// Join merges node exports into whole traces. Duplicate span IDs
// (the same node exported twice, or a pinned span also in the ring)
// collapse to one.
func Join(exports []Export) []*Trace {
	byTrace := map[TraceID]*Trace{}
	for _, ex := range exports {
		for i := range ex.Spans {
			sp := ex.Spans[i]
			if sp.Node == "" {
				sp.Node = ex.Node
			}
			tr := byTrace[sp.Trace]
			if tr == nil {
				tr = &Trace{
					ID:       sp.Trace,
					byID:     map[SpanID]*Span{},
					children: map[SpanID][]*Span{},
				}
				byTrace[sp.Trace] = tr
			}
			if _, dup := tr.byID[sp.ID]; dup {
				continue
			}
			cp := sp
			tr.byID[cp.ID] = &cp
			tr.Spans = append(tr.Spans, &cp)
		}
	}
	out := make([]*Trace, 0, len(byTrace))
	for _, tr := range byTrace {
		for _, sp := range tr.Spans {
			if sp.Parent != 0 {
				tr.children[sp.Parent] = append(tr.children[sp.Parent], sp)
			}
		}
		for _, kids := range tr.children {
			sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		}
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start.Before(tr.Spans[j].Start) })
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Children returns the direct children of a span, start-ordered.
func (t *Trace) Children(id SpanID) []*Span { return t.children[id] }

// Find returns the first span matching component and name ("" = any).
func (t *Trace) Find(component, name string) *Span {
	for _, sp := range t.Spans {
		if (component == "" || sp.Component == component) && (name == "" || sp.Name == name) {
			return sp
		}
	}
	return nil
}

// descendantsOn collects all descendants of root with the given
// component recorded on the given node. Cross-node edges are real
// parent links (the remote handler span's parent is the local client
// span), so the walk naturally crosses processes; the node filter is
// what pins "local disk time" to the serving node.
func (t *Trace) descendantsOn(root SpanID, component, node string, out *[]*Span) {
	for _, kid := range t.children[root] {
		if kid.Component == component && (node == "" || kid.Node == node) {
			*out = append(*out, kid)
		}
		t.descendantsOn(kid.ID, component, node, out)
	}
}

// ChunkDiag is the §4-style decomposition of one chunk transfer. The
// five stages are additive: Total = Retry + Network + Queue + Fanout +
// Disk (each clamped at zero against timer noise). All values come
// from span durations and parent links only — never from comparing
// timestamps across nodes — so the decomposition is clock-skew safe.
type ChunkDiag struct {
	Trace TraceID `json:"trace"`
	Chunk string  `json:"chunk"` // hex MD5 (first chunk of a batch)
	Dir   string  `json:"dir"`   // "store" | "retrieve"
	Node  string  `json:"node"`  // serving front-end
	// Count is how many chunks the transfer carried: 1 on the
	// per-chunk JSON dialect, the batch size on mcsbin/1 (the batch
	// shares one request, so it decomposes as one transfer).
	Count    int           `json:"count"`
	Bytes    int64         `json:"bytes"`
	Attempts int           `json:"attempts"`
	Total    time.Duration `json:"total"`
	Retry    time.Duration `json:"retry"`   // failed attempts + backoff before the acked one
	Network  time.Duration `json:"network"` // acked attempt minus server handler time
	Queue    time.Duration `json:"queue"`   // server handler time not in storage (decode, hash, commit, shed waits)
	Fanout   time.Duration `json:"fanout"`  // replication wait beyond local disk (stragglers, failover reads)
	Disk     time.Duration `json:"disk"`    // local segment append + fsync wait, or segment read
	Acked    bool          `json:"acked"`   // the transfer succeeded at the client
	Complete bool          `json:"complete"`
	Missing  string        `json:"missing,omitempty"` // why the join is incomplete
}

// OpDiag summarizes one file operation (critical path view).
type OpDiag struct {
	Trace    TraceID       `json:"trace"`
	Op       string        `json:"op"` // "store-file" | "retrieve-file"
	Node     string        `json:"node,omitempty"`
	Chunks   int           `json:"chunks"`
	Bytes    int64         `json:"bytes"`
	Total    time.Duration `json:"total"`     // wall time of the operation
	ChunkSum time.Duration `json:"chunk_sum"` // sum of chunk transfer times (> Total under parallelism)
	Slowest  ChunkDiag     `json:"slowest"`   // the chunk that bounded the critical path
	Dedup    bool          `json:"dedup,omitempty"`
	Complete bool          `json:"complete"`
}

// Diagnosis is the joined cluster-wide view mcstrace renders.
type Diagnosis struct {
	Traces int         `json:"traces"`
	Chunks []ChunkDiag `json:"chunks"`
	Ops    []OpDiag    `json:"ops"`
}

// Diagnose decomposes every chunk transfer and file operation found
// in the joined traces.
func Diagnose(traces []*Trace) Diagnosis {
	var d Diagnosis
	d.Traces = len(traces)
	for _, tr := range traces {
		ops := 0
		for _, sp := range tr.Spans {
			switch {
			case sp.Component == CompClient && (sp.Name == SpanChunkPut || sp.Name == SpanChunkGet):
				d.Chunks = append(d.Chunks, diagnoseChunk(tr, sp))
			case sp.Component == CompClient && (sp.Name == SpanStoreFile || sp.Name == SpanRetrieveFile):
				ops++
			}
		}
		if ops > 0 {
			for _, sp := range tr.Spans {
				if sp.Component == CompClient && (sp.Name == SpanStoreFile || sp.Name == SpanRetrieveFile) {
					d.Ops = append(d.Ops, diagnoseOp(tr, sp, d.Chunks))
				}
			}
		}
	}
	return d
}

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// diagnoseChunk decomposes one client chunk span.
//
// Stage math (all from durations + parent links):
//
//	retry   = chunk total − acked attempt duration
//	network = acked attempt − server handler span
//	disk    = Σ local disk spans under the handler (append + fsync, or read)
//	fanout  = fan-out span − local disk   (put: replication wait beyond
//	          the local write; get: Σ remote failover reads)
//	queue   = server handler − fan-out − non-fanout disk  (residual:
//	          decode, digest verify, commit bookkeeping, lock waits)
func diagnoseChunk(tr *Trace, chunk *Span) ChunkDiag {
	diag := ChunkDiag{
		Trace: tr.ID,
		Chunk: firstAnnot(chunk, "chunk"),
		Count: 1,
		Total: chunk.Duration,
	}
	if v, ok := chunk.Annotation("count"); ok {
		fmt.Sscan(v, &diag.Count)
		if diag.Count < 1 {
			diag.Count = 1
		}
	}
	if chunk.Name == SpanChunkPut {
		diag.Dir = "store"
	} else {
		diag.Dir = "retrieve"
	}
	if v, ok := chunk.Annotation("bytes"); ok {
		fmt.Sscan(v, &diag.Bytes)
	}

	attempts := tr.Children(chunk.ID)
	var acked *Span
	for _, a := range attempts {
		if a.Name != SpanAttempt {
			continue
		}
		diag.Attempts++
		if _, failed := a.Annotation("fault"); !failed {
			acked = a
		}
	}
	if _, chunkFailed := chunk.Annotation("err"); chunkFailed {
		diag.Missing = "chunk transfer failed (not acked)"
		return diag
	}
	diag.Acked = true
	if acked == nil {
		diag.Missing = "no successful attempt span"
		return diag
	}
	diag.Retry = clampDur(chunk.Duration - acked.Duration)

	// The server handler span is the acked attempt's only child — it
	// lives on whichever node served the request.
	var server *Span
	for _, kid := range tr.Children(acked.ID) {
		if kid.Component == CompFrontEnd {
			server = kid
			break
		}
	}
	if server == nil {
		diag.Missing = "no server span joined to the acked attempt"
		return diag
	}
	diag.Node = server.Node
	diag.Network = clampDur(acked.Duration - server.Duration)

	// Local storage time under the handler, on the serving node only:
	// remote replicas' disk time is part of Fanout, not Disk.
	var disk []*Span
	tr.descendantsOn(server.ID, CompDisk, server.Node, &disk)
	for _, dsp := range disk {
		diag.Disk += dsp.Duration
	}

	var inFanout time.Duration
	for _, kid := range tr.Children(server.ID) {
		if kid.Component != CompReplicate {
			continue
		}
		switch kid.Name {
		case SpanFanout:
			// Put: the barrier span covers local write + remote
			// replicas in parallel; its excess over the local disk
			// time is the pure replication wait.
			diag.Fanout += clampDur(kid.Duration - diag.Disk)
			inFanout = kid.Duration
			// Completeness: every remote replica write that was
			// acknowledged must have joined its server-side span.
			for _, rep := range tr.Children(kid.ID) {
				if rep.Name != SpanReplicaPut {
					continue
				}
				if _, failed := rep.Annotation("err"); failed {
					continue
				}
				if !hasChild(tr, rep.ID, CompFrontEnd) {
					diag.Missing = "replica write on " + firstAnnot(rep, "node") + " not joined"
				}
			}
		case SpanReplicaGet:
			// Get: failover reads are sequential, so they sum.
			diag.Fanout += kid.Duration
			inFanout += kid.Duration
			if _, failed := kid.Annotation("err"); !failed {
				if !hasChild(tr, kid.ID, CompFrontEnd) {
					diag.Missing = "replica read on " + firstAnnot(kid, "node") + " not joined"
				}
			}
		}
	}
	// Queue is the handler residual. When replication is in play the
	// local disk time is inside the fan-out barrier, so subtract the
	// barrier (which already contains it) rather than both.
	if inFanout > 0 {
		diag.Queue = clampDur(server.Duration - inFanout - nonFanoutDisk(tr, server, diag.Disk))
	} else {
		diag.Queue = clampDur(server.Duration - diag.Disk)
	}
	if diag.Missing == "" {
		diag.Complete = true
	}
	return diag
}

// nonFanoutDisk returns local disk time under the handler that is NOT
// inside a fan-out barrier (e.g. a direct read on the retrieve path
// next to failover replica-gets).
func nonFanoutDisk(tr *Trace, server *Span, totalDisk time.Duration) time.Duration {
	var under time.Duration
	for _, kid := range tr.Children(server.ID) {
		if kid.Component == CompReplicate && kid.Name == SpanFanout {
			var disk []*Span
			tr.descendantsOn(kid.ID, CompDisk, server.Node, &disk)
			for _, dsp := range disk {
				under += dsp.Duration
			}
		}
	}
	return clampDur(totalDisk - under)
}

func hasChild(tr *Trace, id SpanID, component string) bool {
	for _, kid := range tr.Children(id) {
		if kid.Component == component {
			return true
		}
	}
	return false
}

func firstAnnot(sp *Span, key string) string {
	v, _ := sp.Annotation(key)
	return v
}

// diagnoseOp builds the critical-path summary for one file operation
// from the chunk diagnoses already computed for its trace.
func diagnoseOp(tr *Trace, op *Span, chunks []ChunkDiag) OpDiag {
	od := OpDiag{
		Trace:    tr.ID,
		Op:       op.Name,
		Total:    op.Duration,
		Complete: true,
	}
	if v, ok := op.Annotation("bytes"); ok {
		fmt.Sscan(v, &od.Bytes)
	}
	for _, cd := range chunks {
		if cd.Trace != tr.ID {
			continue
		}
		od.Chunks += cd.Count
		od.ChunkSum += cd.Total
		if cd.Total > od.Slowest.Total {
			od.Slowest = cd
		}
		if !cd.Complete {
			od.Complete = false
		}
		if od.Node == "" {
			od.Node = cd.Node
		}
	}
	if od.Chunks == 0 {
		// A deduplicated store legitimately transfers nothing; every
		// other zero-chunk op is missing its transfer spans.
		if _, dedup := op.Annotation("dedup"); !dedup {
			od.Complete = false
		} else {
			od.Dedup = true
		}
	}
	if _, failed := op.Annotation("err"); failed {
		od.Complete = false
	}
	return od
}

// StageStats holds per-stage quantiles for one direction.
type StageStats struct {
	Dir   string                   `json:"dir"`
	Count int                      `json:"count"`
	P50   map[string]time.Duration `json:"p50"`
	P99   map[string]time.Duration `json:"p99"`
}

// Stages lists the decomposition columns in display order.
var Stages = []string{"total", "queue", "disk", "fanout", "network", "retry"}

func (c ChunkDiag) stage(name string) time.Duration {
	switch name {
	case "total":
		return c.Total
	case "queue":
		return c.Queue
	case "disk":
		return c.Disk
	case "fanout":
		return c.Fanout
	case "network":
		return c.Network
	case "retry":
		return c.Retry
	}
	return 0
}

// StageQuantiles computes p50/p99 per stage per direction over the
// complete chunk diagnoses.
func StageQuantiles(chunks []ChunkDiag) []StageStats {
	byDir := map[string][]ChunkDiag{}
	for _, c := range chunks {
		if c.Complete {
			byDir[c.Dir] = append(byDir[c.Dir], c)
		}
	}
	var out []StageStats
	for _, dir := range []string{"store", "retrieve"} {
		cs := byDir[dir]
		if len(cs) == 0 {
			continue
		}
		st := StageStats{Dir: dir, Count: len(cs),
			P50: map[string]time.Duration{}, P99: map[string]time.Duration{}}
		for _, stage := range Stages {
			vals := make([]time.Duration, len(cs))
			for i, c := range cs {
				vals[i] = c.stage(stage)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			st.P50[stage] = quantile(vals, 0.50)
			st.P99[stage] = quantile(vals, 0.99)
		}
		out = append(out, st)
	}
	return out
}

// quantile picks the nearest-rank quantile from sorted values: the
// smallest value with at least ceil(q*n) values at or below it, so
// p99 of a small sample is its maximum rather than its minimum.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
