package tracing

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestMiddlewareContinuesRemoteTrace: a request carrying the wire
// headers must produce a server span parented to the caller's span,
// and the response must echo the trace ID.
func TestMiddlewareContinuesRemoteTrace(t *testing.T) {
	tr := New(Config{Node: "srv"})
	var ctxSpan *Span
	h := Middleware(tr, "frontend", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctxSpan = FromContext(r.Context())
		w.WriteHeader(http.StatusCreated)
	}))

	client := New(Config{Node: "cli"})
	parent := client.StartRoot("client", "attempt")
	req := httptest.NewRequest(http.MethodPut, "/v1/chunk/abc", nil)
	parent.Inject(req.Header)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	parent.End()

	if rec.Header().Get(TraceHeader) != parent.Trace.String() {
		t.Fatalf("response %s = %q, want %s", TraceHeader, rec.Header().Get(TraceHeader), parent.Trace)
	}
	if ctxSpan == nil {
		t.Fatal("no span in request context")
	}
	if ctxSpan.Trace != parent.Trace || ctxSpan.Parent != parent.ID {
		t.Fatalf("server span trace/parent = %s/%s, want %s/%s",
			ctxSpan.Trace, ctxSpan.Parent, parent.Trace, parent.ID)
	}
	spans := tr.Snapshot(Filter{Trace: parent.Trace})
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(spans))
	}
	if v, _ := spans[0].Annotation("status"); v != "201" {
		t.Fatalf("status annotation = %q, want 201", v)
	}
}

// TestMiddlewareRootsWhenNoHeaders: header-less requests root their
// own trace under the server's sampling policy.
func TestMiddlewareRootsWhenNoHeaders(t *testing.T) {
	tr := New(Config{Node: "srv"})
	h := Middleware(tr, "frontend", func(r *http.Request) string { return "named" }, http.NotFoundHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Header().Get(TraceHeader) == "" {
		t.Fatal("rooted request did not echo a trace ID")
	}
	spans := tr.Snapshot(Filter{})
	if len(spans) != 1 || spans[0].Name != "named" || spans[0].Parent != 0 {
		t.Fatalf("rooted span = %+v, want one parentless span named %q", spans, "named")
	}
}

// TestMiddlewareNilTracer: disabled tracing must pass the handler
// through untouched.
func TestMiddlewareNilTracer(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Middleware(nil, "frontend", nil, inner); got == nil {
		t.Fatal("nil tracer returned nil handler")
	}
	rec := httptest.NewRecorder()
	Middleware(nil, "frontend", nil, inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Header().Get(TraceHeader) != "" {
		t.Fatal("nil tracer stamped a trace header")
	}
}

// TestDebugTracesHandler: /debug/traces serves the ring as an Export,
// honoring min-duration and component filters per trace.
func TestDebugTracesHandler(t *testing.T) {
	tr := New(Config{Node: "srv"})
	slow := tr.StartRoot("frontend", "slow")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	fast := tr.StartRoot("disk", "fast")
	fast.End()

	srv := httptest.NewServer(Handler(tr))
	defer srv.Close()

	get := func(query string) Export {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", query, resp.StatusCode)
		}
		var ex Export
		if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
			t.Fatal(err)
		}
		return ex
	}

	if ex := get(""); len(ex.Spans) != 2 || ex.Node != "srv" {
		t.Fatalf("unfiltered export = node %q, %d spans; want srv, 2", ex.Node, len(ex.Spans))
	}
	if ex := get("?min=1ms"); len(ex.Spans) != 1 || ex.Spans[0].Name != "slow" {
		t.Fatalf("min filter kept %d spans, want just the slow trace", len(ex.Spans))
	}
	if ex := get("?component=disk"); len(ex.Spans) != 1 || ex.Spans[0].Name != "fast" {
		t.Fatalf("component filter kept %d spans, want just the disk trace", len(ex.Spans))
	}
	if ex := get("?trace=" + slow.Trace.String()); len(ex.Spans) != 1 || ex.Spans[0].ID != slow.ID {
		t.Fatalf("trace filter failed")
	}
	resp, err := http.Get(srv.URL + "?min=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min duration: status %d, want 400", resp.StatusCode)
	}
}
