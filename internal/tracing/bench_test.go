package tracing

import (
	"net/http"
	"testing"
)

// BenchmarkUnsampledRoot is the hot-path cost ceiling: a request that
// loses the sampling coin flip must pay almost nothing (one atomic add
// plus a modulo — tens of nanoseconds, no allocation).
func BenchmarkUnsampledRoot(b *testing.B) {
	tr := New(Config{Node: "bench", Sample: 1 << 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("client", "op")
		sp.Annotate("k", "v") // nil-safe no-ops on the unsampled path
		sp.End()
	}
}

// BenchmarkNilTracer is the disabled-tracing cost: call sites keep
// their calls, the nil receiver eats them.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("client", "op")
		kid := sp.StartChild("disk", "append")
		kid.End()
		sp.End()
	}
}

// BenchmarkRecordedSpan is the full record path: start, annotate,
// end into the sharded ring.
func BenchmarkRecordedSpan(b *testing.B) {
	tr := New(Config{Node: "bench", Capacity: 1 << 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("client", "op")
		sp.AnnotateInt("bytes", 65536)
		sp.End()
	}
}

// BenchmarkRecordedSpanParallel measures ring contention across
// goroutines — the sharding exists for this case.
func BenchmarkRecordedSpanParallel(b *testing.B) {
	tr := New(Config{Node: "bench", Capacity: 1 << 16})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.StartRoot("client", "op")
			sp.End()
		}
	})
}

// BenchmarkInject is the per-request wire cost of propagation.
func BenchmarkInject(b *testing.B) {
	tr := New(Config{Node: "bench"})
	sp := tr.StartRoot("client", "op")
	h := make(http.Header, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Inject(h)
	}
}
