package tracing

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Export is the JSON document served at /debug/traces and consumed by
// cmd/mcstrace. Spans carry the node name so exports from several
// processes can be concatenated before joining.
type Export struct {
	Node  string `json:"node"`
	Stats Stats  `json:"stats"`
	Spans []Span `json:"spans"`
}

// Handler serves the tracer's ring as JSON. Query parameters:
//
//	min=DURATION   keep only traces containing a span >= DURATION
//	               (Go duration syntax, e.g. min=50ms)
//	component=C    keep only traces containing a span of component C
//	trace=HEXID    keep only the given trace
//
// Filters match whole traces: a matching trace is returned with all
// of its locally-known spans, so the output is always joinable.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f Filter
		q := r.URL.Query()
		if v := q.Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "tracing: bad min duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDuration = d
		}
		f.Component = q.Get("component")
		if v := q.Get("trace"); v != "" {
			f.Trace = ParseTraceID(v)
			if f.Trace == 0 {
				http.Error(w, "tracing: bad trace id", http.StatusBadRequest)
				return
			}
		}
		spans := t.Snapshot(f)
		// Stable output order: by trace, then start time, helps both
		// humans and tests.
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Trace != spans[j].Trace {
				return spans[i].Trace < spans[j].Trace
			}
			return spans[i].Start.Before(spans[j].Start)
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if strings.Contains(r.URL.RawQuery, "indent") {
			enc.SetIndent("", "  ")
		}
		enc.Encode(Export{Node: t.Node(), Stats: t.TracerStats(), Spans: spans})
	})
}

// Middleware wraps an HTTP handler so every request runs under a span:
// requests arriving with X-MCS-Trace continue the remote trace,
// others root a new one subject to the tracer's sampling rate. The
// span is placed in the request context for the layers below, the
// response echoes X-MCS-Trace so clients can quote the ID, and the
// HTTP status is annotated on completion. name maps a request to the
// span name (nil means "METHOD path").
func Middleware(t *Tracer, component string, name func(*http.Request) string, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := ""
		if name != nil {
			n = name(r)
		}
		if n == "" {
			n = r.Method + " " + r.URL.Path
		}
		var sp *Span
		if tid := ParseTraceID(r.Header.Get(TraceHeader)); tid != 0 {
			sp = t.StartRemote(tid, ParseSpanID(r.Header.Get(SpanHeader)), component, n)
		} else {
			sp = t.StartRoot(component, n)
		}
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set(TraceHeader, sp.Trace.String())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(NewContext(r.Context(), sp)))
		sp.AnnotateInt("status", int64(sw.status))
		sp.End()
	})
}

// statusWriter records the response status for span annotation.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so streaming handlers keep working
// under the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
