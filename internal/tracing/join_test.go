package tracing

import (
	"testing"
	"time"
)

var testBase = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func mkSpan(trace TraceID, id, parent SpanID, comp, name, node string, dur time.Duration, kv ...string) Span {
	sp := Span{
		Trace: trace, ID: id, Parent: parent,
		Component: comp, Name: name, Node: node,
		Start:    testBase.Add(time.Duration(id) * time.Millisecond),
		Duration: dur,
	}
	for i := 0; i+1 < len(kv); i += 2 {
		sp.Annots = append(sp.Annots, Annotation{Key: kv[i], Value: kv[i+1]})
	}
	return sp
}

// storeTraceSpans builds a synthetic put: two attempts (first faulted),
// the acked one served on n1 with a replication fan-out that wrote one
// remote replica on n2.
func storeTraceSpans(tr TraceID) []Span {
	ms := time.Millisecond
	return []Span{
		mkSpan(tr, 1, 0, CompClient, SpanChunkPut, "loadgen", 100*ms, "chunk", "00aabb", "bytes", "65536"),
		mkSpan(tr, 2, 1, CompClient, SpanAttempt, "loadgen", 30*ms, "attempt", "1", "fault", "timeout"),
		mkSpan(tr, 3, 1, CompClient, SpanAttempt, "loadgen", 60*ms, "attempt", "2"),
		mkSpan(tr, 4, 3, CompFrontEnd, "PUT /chunk", "n1", 50*ms, "status", "201"),
		mkSpan(tr, 5, 4, CompReplicate, SpanFanout, "n1", 40*ms, "replicas", "3", "quorum", "2"),
		mkSpan(tr, 6, 5, CompDisk, SpanDiskAppend, "n1", 10*ms),
		mkSpan(tr, 7, 5, CompDisk, SpanDiskFsync, "n1", 5*ms),
		mkSpan(tr, 8, 5, CompReplicate, SpanReplicaPut, "n1", 35*ms, "node", "n2"),
		mkSpan(tr, 9, 8, CompFrontEnd, "PUT /chunk (replica)", "n2", 30*ms),
		mkSpan(tr, 10, 9, CompDisk, SpanDiskAppend, "n2", 8*ms),
	}
}

// TestDiagnoseStoreDecomposition checks the additive stage math on the
// put path: Total = Retry + Network + Queue + Fanout + Disk, with
// remote replicas' disk time landing in Fanout, not Disk.
func TestDiagnoseStoreDecomposition(t *testing.T) {
	const trID = TraceID(0xabc)
	traces := Join([]Export{{Node: "x", Spans: storeTraceSpans(trID)}})
	d := Diagnose(traces)
	if len(d.Chunks) != 1 {
		t.Fatalf("diagnosed %d chunks, want 1", len(d.Chunks))
	}
	c := d.Chunks[0]
	ms := time.Millisecond
	if !c.Acked || !c.Complete {
		t.Fatalf("acked/complete = %v/%v (%s), want true/true", c.Acked, c.Complete, c.Missing)
	}
	if c.Dir != "store" || c.Node != "n1" || c.Chunk != "00aabb" || c.Bytes != 65536 || c.Attempts != 2 {
		t.Fatalf("identity fields wrong: %+v", c)
	}
	want := map[string]time.Duration{
		"total": 100 * ms, "retry": 40 * ms, "network": 10 * ms,
		"disk": 15 * ms, "fanout": 25 * ms, "queue": 10 * ms,
	}
	for stage, w := range want {
		if got := c.stage(stage); got != w {
			t.Errorf("%s = %v, want %v", stage, got, w)
		}
	}
	if sum := c.Retry + c.Network + c.Queue + c.Fanout + c.Disk; sum != c.Total {
		t.Errorf("stages sum to %v, want Total %v (decomposition must be additive)", sum, c.Total)
	}
}

// TestDiagnoseRetrieveDecomposition: the get path with a failed local
// read and a remote failover — failover time is Fanout.
func TestDiagnoseRetrieveDecomposition(t *testing.T) {
	const trID = TraceID(0xdef)
	ms := time.Millisecond
	spans := []Span{
		mkSpan(trID, 21, 0, CompClient, SpanChunkGet, "loadgen", 50*ms, "chunk", "ffee00", "bytes", "4096"),
		mkSpan(trID, 22, 21, CompClient, SpanAttempt, "loadgen", 45*ms, "attempt", "1"),
		mkSpan(trID, 23, 22, CompFrontEnd, "GET /chunk", "n1", 40*ms),
		mkSpan(trID, 24, 23, CompDisk, SpanDiskRead, "n1", 5*ms, "err", "not found"),
		mkSpan(trID, 25, 23, CompReplicate, SpanReplicaGet, "n1", 20*ms, "node", "n2"),
		mkSpan(trID, 26, 25, CompFrontEnd, "GET /chunk (replica)", "n2", 18*ms),
	}
	d := Diagnose(Join([]Export{{Node: "x", Spans: spans}}))
	if len(d.Chunks) != 1 {
		t.Fatalf("diagnosed %d chunks, want 1", len(d.Chunks))
	}
	c := d.Chunks[0]
	if c.Dir != "retrieve" || !c.Complete {
		t.Fatalf("dir/complete = %s/%v (%s)", c.Dir, c.Complete, c.Missing)
	}
	want := map[string]time.Duration{
		"retry": 5 * ms, "network": 5 * ms, "disk": 5 * ms, "fanout": 20 * ms, "queue": 15 * ms,
	}
	for stage, w := range want {
		if got := c.stage(stage); got != w {
			t.Errorf("%s = %v, want %v", stage, got, w)
		}
	}
}

// TestDiagnoseDetectsUnjoinedReplica: an acked replica write whose
// server-side span is missing must be flagged incomplete — that is
// exactly the condition the CI strict check trips on.
func TestDiagnoseDetectsUnjoinedReplica(t *testing.T) {
	const trID = TraceID(0x123)
	spans := storeTraceSpans(trID)[:8] // drop the remote n2 spans
	d := Diagnose(Join([]Export{{Node: "x", Spans: spans}}))
	c := d.Chunks[0]
	if !c.Acked {
		t.Fatal("chunk should still count as acked")
	}
	if c.Complete || c.Missing == "" {
		t.Fatalf("complete = %v, missing = %q; want incomplete with reason", c.Complete, c.Missing)
	}
}

// TestDiagnoseFailedChunkNotAcked: a chunk span that ended in error is
// reported but neither acked nor complete — it must not trip the
// strict join gate.
func TestDiagnoseFailedChunkNotAcked(t *testing.T) {
	const trID = TraceID(0x456)
	ms := time.Millisecond
	spans := []Span{
		mkSpan(trID, 1, 0, CompClient, SpanChunkPut, "loadgen", 90*ms, "chunk", "aa", "err", "gave up"),
		mkSpan(trID, 2, 1, CompClient, SpanAttempt, "loadgen", 30*ms, "fault", "conn reset"),
	}
	d := Diagnose(Join([]Export{{Node: "x", Spans: spans}}))
	c := d.Chunks[0]
	if c.Acked || c.Complete {
		t.Fatalf("failed chunk acked/complete = %v/%v, want false/false", c.Acked, c.Complete)
	}
}

// TestDiagnoseOpCriticalPath: the op summary must aggregate its chunk
// diagnoses and point at the slowest one.
func TestDiagnoseOpCriticalPath(t *testing.T) {
	const trID = TraceID(0x789)
	ms := time.Millisecond
	spans := storeTraceSpans(trID)
	spans = append(spans,
		mkSpan(trID, 40, 0, CompClient, SpanStoreFile, "loadgen", 120*ms, "bytes", "131072"),
		// A second, faster chunk under the same op.
		mkSpan(trID, 41, 40, CompClient, SpanChunkPut, "loadgen", 20*ms, "chunk", "11ccdd", "bytes", "65536"),
		mkSpan(trID, 42, 41, CompClient, SpanAttempt, "loadgen", 20*ms, "attempt", "1"),
		mkSpan(trID, 43, 42, CompFrontEnd, "PUT /chunk", "n1", 15*ms),
	)
	d := Diagnose(Join([]Export{{Node: "x", Spans: spans}}))
	if len(d.Ops) != 1 {
		t.Fatalf("diagnosed %d ops, want 1", len(d.Ops))
	}
	op := d.Ops[0]
	if op.Op != SpanStoreFile || op.Chunks != 2 || op.Bytes != 131072 {
		t.Fatalf("op summary wrong: %+v", op)
	}
	if op.Total != 120*ms || op.ChunkSum != 120*ms {
		t.Fatalf("total/chunksum = %v/%v, want 120ms/120ms", op.Total, op.ChunkSum)
	}
	if op.Slowest.Chunk != "00aabb" {
		t.Fatalf("slowest chunk = %s, want 00aabb", op.Slowest.Chunk)
	}
	if !op.Complete {
		t.Fatalf("op incomplete: %+v", op.Slowest)
	}
}

// TestDiagnoseDedupAndFailedOps: a deduplicated store transfers no
// chunks but is still complete; an op that ended in error is not.
func TestDiagnoseDedupAndFailedOps(t *testing.T) {
	ms := time.Millisecond
	spans := []Span{
		mkSpan(0x111, 1, 0, CompClient, SpanStoreFile, "loadgen", 3*ms, "dedup", "true"),
		mkSpan(0x222, 2, 0, CompClient, SpanStoreFile, "loadgen", 9*ms, "err", "gave up"),
	}
	d := Diagnose(Join([]Export{{Node: "loadgen", Spans: spans}}))
	if len(d.Ops) != 2 {
		t.Fatalf("diagnosed %d ops, want 2", len(d.Ops))
	}
	for _, op := range d.Ops {
		switch op.Trace {
		case 0x111:
			if !op.Dedup || !op.Complete || op.Chunks != 0 {
				t.Errorf("dedup op = %+v, want complete with 0 chunks", op)
			}
		case 0x222:
			if op.Complete {
				t.Errorf("failed op diagnosed complete: %+v", op)
			}
		}
	}
}

// TestJoinDedupsAcrossExports: the same span exported by two sources
// (ring + pin, or a re-fetch) must collapse to one.
func TestJoinDedupsAcrossExports(t *testing.T) {
	const trID = TraceID(0x999)
	spans := storeTraceSpans(trID)
	traces := Join([]Export{
		{Node: "a", Spans: spans[:6]},
		{Node: "a", Spans: spans}, // overlaps the first export
	})
	if len(traces) != 1 {
		t.Fatalf("joined %d traces, want 1", len(traces))
	}
	if len(traces[0].Spans) != len(spans) {
		t.Fatalf("joined %d spans, want %d deduplicated", len(traces[0].Spans), len(spans))
	}
}

// TestStageQuantiles: quantiles cover complete diagnoses only, split
// by direction.
func TestStageQuantiles(t *testing.T) {
	ms := time.Millisecond
	chunks := []ChunkDiag{
		{Dir: "store", Complete: true, Acked: true, Total: 10 * ms, Disk: 4 * ms, Queue: 6 * ms},
		{Dir: "store", Complete: true, Acked: true, Total: 30 * ms, Disk: 10 * ms, Queue: 20 * ms},
		{Dir: "store", Acked: true, Total: 500 * ms}, // incomplete: excluded
		{Dir: "retrieve", Complete: true, Acked: true, Total: 7 * ms, Disk: 7 * ms},
	}
	stats := StageQuantiles(chunks)
	if len(stats) != 2 {
		t.Fatalf("got %d directions, want 2", len(stats))
	}
	store := stats[0]
	if store.Dir != "store" || store.Count != 2 {
		t.Fatalf("store stats = %+v", store)
	}
	if store.P99["total"] != 30*ms {
		t.Fatalf("store p99 total = %v, want 30ms (incomplete 500ms must be excluded)", store.P99["total"])
	}
	if stats[1].P50["disk"] != 7*ms {
		t.Fatalf("retrieve p50 disk = %v, want 7ms", stats[1].P50["disk"])
	}
}
