package dist

import (
	"math"
	"testing"

	"mcloud/internal/randx"
)

func TestFitGaussianMixtureTwoWellSeparated(t *testing.T) {
	src := randx.New(100)
	xs := make([]float64, 0, 30000)
	for i := 0; i < 30000; i++ {
		if src.Bool(0.7) {
			xs = append(xs, src.Normal(1.0, 0.6)) // "in-session" log10 s
		} else {
			xs = append(xs, src.Normal(4.9, 0.5)) // "inter-session"
		}
	}
	m, err := FitGaussianMixture(xs, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) != 2 {
		t.Fatalf("got %d components", len(m.Components))
	}
	c0, c1 := m.Components[0], m.Components[1]
	if math.Abs(c0.Mean-1.0) > 0.05 {
		t.Errorf("component 0 mean = %.4f, want ~1.0", c0.Mean)
	}
	if math.Abs(c1.Mean-4.9) > 0.05 {
		t.Errorf("component 1 mean = %.4f, want ~4.9", c1.Mean)
	}
	if math.Abs(c0.Weight-0.7) > 0.02 {
		t.Errorf("component 0 weight = %.4f, want ~0.7", c0.Weight)
	}
	if math.Abs(c0.StdDev-0.6) > 0.05 || math.Abs(c1.StdDev-0.5) > 0.05 {
		t.Errorf("stddevs = %.4f/%.4f, want ~0.6/0.5", c0.StdDev, c1.StdDev)
	}
}

func TestGaussianMixtureWeightsSumToOne(t *testing.T) {
	src := randx.New(101)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Normal(float64(i%3)*5, 1)
	}
	m, err := FitGaussianMixture(xs, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range m.Components {
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// Components sorted by mean.
	for i := 1; i < len(m.Components); i++ {
		if m.Components[i].Mean < m.Components[i-1].Mean {
			t.Error("components not sorted by mean")
		}
	}
}

func TestGaussianMixturePDFIntegratesToOne(t *testing.T) {
	m := GaussianMixture{Components: []GaussianComponent{
		{Weight: 0.3, Mean: -2, StdDev: 1},
		{Weight: 0.7, Mean: 5, StdDev: 2},
	}}
	integral := 0.0
	for x := -20.0; x <= 30; x += 0.01 {
		integral += m.PDF(x) * 0.01
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("PDF integrates to %v", integral)
	}
	if math.Abs(m.CDF(30)-1) > 1e-6 || m.CDF(-20) > 1e-6 {
		t.Error("CDF endpoints wrong")
	}
}

func TestEquallyLikelyPoint(t *testing.T) {
	m := GaussianMixture{Components: []GaussianComponent{
		{Weight: 0.5, Mean: 0, StdDev: 1},
		{Weight: 0.5, Mean: 10, StdDev: 1},
	}}
	x := m.EquallyLikely(0, 1)
	if math.Abs(x-5) > 1e-6 {
		t.Errorf("equally likely point = %v, want 5 by symmetry", x)
	}
	// Posterior responsibilities are equal there.
	r0 := m.Responsibility(0, x)
	if math.Abs(r0-0.5) > 1e-6 {
		t.Errorf("responsibility at crossover = %v, want 0.5", r0)
	}
}

func TestFitGaussianMixtureErrors(t *testing.T) {
	if _, err := FitGaussianMixture([]float64{1, 2, 3}, 2, 0, 0); err == nil {
		t.Error("expected error: sample too small")
	}
	if _, err := FitGaussianMixture([]float64{1, 2, 3}, 0, 0, 0); err == nil {
		t.Error("expected error: k < 1")
	}
}

func TestFitExpMixtureRecoversTable2Store(t *testing.T) {
	// The paper's store-only parameters: α=(.91,.07,.02), µ=(1.5,13.1,77.4) MB.
	src := randx.New(102)
	alphas := []float64{0.91, 0.07, 0.02}
	mus := []float64{1.5, 13.1, 77.4}
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = src.MixtureExp(alphas, mus)
	}
	m, err := FitExpMixture(xs, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) != 3 {
		t.Fatalf("got %d components", len(m.Components))
	}
	wantAlpha := []float64{0.91, 0.07, 0.02}
	wantMu := []float64{1.5, 13.1, 77.4}
	for i, c := range m.Components {
		if math.Abs(c.Alpha-wantAlpha[i]) > 0.04 {
			t.Errorf("α[%d] = %.4f, want ~%.2f", i, c.Alpha, wantAlpha[i])
		}
		if math.Abs(c.Mu-wantMu[i])/wantMu[i] > 0.25 {
			t.Errorf("µ[%d] = %.4f, want ~%.1f", i, c.Mu, wantMu[i])
		}
	}
}

func TestExpMixtureMoments(t *testing.T) {
	m := ExpMixture{Components: []ExpComponent{
		{Alpha: 0.5, Mu: 2},
		{Alpha: 0.5, Mu: 8},
	}}
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := m.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := m.CCDF(0); got != 1 {
		t.Errorf("CCDF(0) = %v", got)
	}
	// CDF + CCDF = 1 everywhere.
	for x := 0.1; x < 50; x += 3.3 {
		if math.Abs(m.CDF(x)+m.CCDF(x)-1) > 1e-12 {
			t.Errorf("CDF+CCDF != 1 at %v", x)
		}
	}
}

func TestExpMixturePDFIntegratesToOne(t *testing.T) {
	m := ExpMixture{Components: []ExpComponent{
		{Alpha: 0.9, Mu: 1.5},
		{Alpha: 0.1, Mu: 30},
	}}
	integral := 0.0
	for x := 0.0005; x < 400; x += 0.001 {
		integral += m.PDF(x) * 0.001
	}
	if math.Abs(integral-1) > 5e-3 {
		t.Errorf("PDF integrates to %v", integral)
	}
}

func TestFitExpMixtureRejectsNegatives(t *testing.T) {
	if _, err := FitExpMixture([]float64{1, -1, 2, 3}, 1, 0, 0); err == nil {
		t.Error("expected error for negative samples")
	}
}

func TestSelectExpMixtureStopsAtNegligibleComponent(t *testing.T) {
	// A single-exponential sample should select far fewer than maxK
	// components (an extra component would get negligible weight).
	src := randx.New(103)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.Exp(3)
	}
	m, err := SelectExpMixture(xs, 5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) > 3 {
		t.Errorf("selected %d components for single-exp data", len(m.Components))
	}
	if math.Abs(m.Mean()-3) > 0.15 {
		t.Errorf("selected mixture mean = %v, want ~3", m.Mean())
	}
}

func TestSelectExpMixtureFindsThreeComponents(t *testing.T) {
	src := randx.New(104)
	alphas := []float64{0.46, 0.26, 0.28}
	mus := []float64{1.6, 29.8, 146.8}
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = src.MixtureExp(alphas, mus)
	}
	m, err := SelectExpMixture(xs, 4, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) < 3 {
		t.Errorf("selected only %d components for 3-scale data", len(m.Components))
	}
}
