package dist

import (
	"errors"
	"math"
)

// regularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, via the series expansion for x < a+1 and the
// continued fraction for x >= a+1 (Numerical Recipes approach).
func regularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinued(a, x)
	}
}

// regularizedGammaQ computes Q(a, x) = 1 - P(a, x).
func regularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinued(a, x)
	}
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareSurvival returns P(X > x) — the p-value of a chi-square
// statistic x with k degrees of freedom.
func ChiSquareSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(k)/2, x/2)
}

// GOFResult reports a chi-square goodness-of-fit test.
type GOFResult struct {
	Stat   float64 // chi-square statistic
	DF     int     // degrees of freedom
	PValue float64
	Bins   int // bins actually used after merging sparse ones
}

// Pass reports whether the fit is NOT rejected at significance level
// alpha (the paper uses P0 = 5%).
func (r GOFResult) Pass(alpha float64) bool { return r.PValue > alpha }

// ChiSquareGOF tests the sample xs against a model CDF using
// equal-probability bins under the model (so every bin has the same
// expected count). nParams is the number of model parameters estimated
// from the data (subtracted from the degrees of freedom). bins is a
// suggestion; it is reduced if the sample is small so the expected
// count per bin stays at least 5.
//
// Binning by model quantiles requires inverting the CDF, which is done
// by bisection over the sample range extended by a factor of 10 on
// each side.
func ChiSquareGOF(xs []float64, cdf func(float64) float64, nParams, bins int) (GOFResult, error) {
	n := len(xs)
	if n < 10 {
		return GOFResult{}, errors.New("dist: too few samples for a chi-square test")
	}
	if bins < 3 {
		bins = 3
	}
	for n/bins < 5 && bins > 3 {
		bins--
	}

	sorted := SortedCopy(xs)
	lo := sorted[0]
	hi := sorted[n-1]
	span := hi - lo
	if span <= 0 {
		span = math.Abs(hi) + 1
	}
	searchLo := lo - 10*span
	searchHi := hi + 10*span

	invert := func(p float64) float64 {
		a, b := searchLo, searchHi
		for i := 0; i < 200; i++ {
			mid := (a + b) / 2
			if cdf(mid) < p {
				a = mid
			} else {
				b = mid
			}
		}
		return (a + b) / 2
	}

	// Observed counts in equal-model-probability bins.
	observed := make([]int, bins)
	edges := make([]float64, bins-1)
	for i := 1; i < bins; i++ {
		edges[i-1] = invert(float64(i) / float64(bins))
	}
	for _, x := range xs {
		b := 0
		for b < bins-1 && x > edges[b] {
			b++
		}
		observed[b]++
	}

	expected := float64(n) / float64(bins)
	stat := 0.0
	for _, o := range observed {
		d := float64(o) - expected
		stat += d * d / expected
	}
	df := bins - 1 - nParams
	if df < 1 {
		df = 1
	}
	return GOFResult{
		Stat:   stat,
		DF:     df,
		PValue: ChiSquareSurvival(stat, df),
		Bins:   bins,
	}, nil
}
