package dist

import "math"

// LinearFit performs ordinary least squares of ys on xs and returns
// the slope, intercept, and coefficient of determination R². With
// fewer than two points or zero x-variance it returns zeros.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx := sx / float64(n)
	my := sy / float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	// R² = 1 - SSres/SStot.
	ssRes := 0.0
	for i := 0; i < n; i++ {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 = 1 - ssRes/syy
	if r2 < 0 {
		r2 = 0
	}
	return slope, intercept, r2
}

// PearsonR returns the Pearson correlation coefficient of xs and ys,
// or 0 when undefined.
func PearsonR(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 {
		return 0
	}
	return sxy / den
}
