package dist

import (
	"errors"
	"math"
)

// KSResult reports a one-sample Kolmogorov-Smirnov test of a sample
// against a model CDF.
type KSResult struct {
	Stat   float64 // D_n: the supremum distance between ECDF and model
	N      int
	PValue float64 // asymptotic Kolmogorov distribution
}

// Pass reports whether the model is NOT rejected at level alpha.
func (r KSResult) Pass(alpha float64) bool { return r.PValue > alpha }

// KolmogorovSmirnov computes the one-sample KS statistic of xs against
// cdf and the asymptotic p-value. It complements the chi-square test
// for continuous fits: no binning choices, sensitive to the worst
// pointwise deviation rather than average misfit.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n < 5 {
		return KSResult{}, errors.New("dist: too few samples for a KS test")
	}
	sorted := SortedCopy(xs)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return KSResult{}, errors.New("dist: model CDF out of [0, 1]")
		}
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if v := math.Abs(hi - f); v > d {
			d = v
		}
		if v := math.Abs(f - lo); v > d {
			d = v
		}
	}
	return KSResult{Stat: d, N: n, PValue: ksPValue(d, n)}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution
// Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²) at λ = D(√n + 0.12 +
// 0.11/√n), the Stephens correction used by Numerical Recipes.
func ksPValue(d float64, n int) float64 {
	sq := math.Sqrt(float64(n))
	lambda := (sq + 0.12 + 0.11/sq) * d
	if lambda < 1e-6 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// KSTwoSample computes the two-sample KS statistic between xs and ys
// with the asymptotic p-value — used to compare device classes (e.g.
// Android vs iOS chunk-time distributions in Fig 12 really do differ).
func KSTwoSample(xs, ys []float64) (KSResult, error) {
	if len(xs) < 5 || len(ys) < 5 {
		return KSResult{}, errors.New("dist: too few samples for a KS test")
	}
	a := SortedCopy(xs)
	b := SortedCopy(ys)
	var i, j int
	d := 0.0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if v := math.Abs(fa - fb); v > d {
			d = v
		}
	}
	ne := float64(len(a)) * float64(len(b)) / float64(len(a)+len(b))
	return KSResult{
		Stat:   d,
		N:      len(a) + len(b),
		PValue: ksPValue(d, int(math.Round(ne))),
	}, nil
}
