package dist

import (
	"math"
	"testing"

	"mcloud/internal/randx"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{7.815, 3, 0.95},
		{18.307, 10, 0.95},
		{2.706, 1, 0.90},
		{0.0158, 1, 0.10},
		{4.605, 2, 0.90},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.k)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("ChiSquareCDF(%v, %d) = %.5f, want %.3f", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareCDFWithExponentialIdentity(t *testing.T) {
	// Chi-square with 2 dof is Exp(mean 2): CDF(x) = 1 - exp(-x/2).
	for x := 0.1; x < 20; x += 0.7 {
		want := 1 - math.Exp(-x/2)
		got := ChiSquareCDF(x, 2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestChiSquareSurvivalComplement(t *testing.T) {
	for _, k := range []int{1, 2, 5, 20, 100} {
		for x := 0.5; x < 150; x *= 2 {
			sum := ChiSquareCDF(x, k) + ChiSquareSurvival(x, k)
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("CDF+Survival = %v at x=%v k=%d", sum, x, k)
			}
		}
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if ChiSquareCDF(0, 3) != 0 || ChiSquareCDF(-1, 3) != 0 {
		t.Error("CDF at non-positive x should be 0")
	}
	if ChiSquareSurvival(0, 3) != 1 {
		t.Error("survival at 0 should be 1")
	}
}

func TestChiSquareGOFAcceptsTrueModel(t *testing.T) {
	src := randx.New(200)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Exp(2)
	}
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/2)
	}
	res, err := ChiSquareGOF(xs, cdf, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass(0.05) {
		t.Errorf("true model rejected: stat=%.2f df=%d p=%.4f", res.Stat, res.DF, res.PValue)
	}
}

func TestChiSquareGOFRejectsWrongModel(t *testing.T) {
	src := randx.New(201)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Exp(2)
	}
	// Deliberately wrong model: exponential with mean 6.
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/6)
	}
	res, err := ChiSquareGOF(xs, cdf, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass(0.05) {
		t.Errorf("wrong model accepted: stat=%.2f p=%.4f", res.Stat, res.PValue)
	}
}

func TestChiSquareGOFTooFewSamples(t *testing.T) {
	if _, err := ChiSquareGOF([]float64{1, 2}, func(x float64) float64 { return x }, 0, 10); err == nil {
		t.Error("expected error for tiny sample")
	}
}

func TestChiSquareGOFMixtureFitPassesLikePaper(t *testing.T) {
	// The paper reports its Table 2 mixture fits pass chi-square at 5%.
	src := randx.New(202)
	alphas := []float64{0.91, 0.07, 0.02}
	mus := []float64{1.5, 13.1, 77.4}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.MixtureExp(alphas, mus)
	}
	m, err := FitExpMixture(xs, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChiSquareGOF(xs, m.CDF, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass(0.05) {
		t.Errorf("fitted mixture rejected: stat=%.2f df=%d p=%.4f", res.Stat, res.DF, res.PValue)
	}
}
