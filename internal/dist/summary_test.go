package dist

import (
	"math"
	"testing"
	"testing/quick"

	"mcloud/internal/randx"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := randx.New(seed)
		var all, a, b Summary
		for i := 0; i < 200; i++ {
			x := src.Normal(3, 7)
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty changes nothing
	if a != before {
		t.Error("merging an empty summary changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Error("merging into an empty summary did not copy")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty slice did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.CCDF(2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CCDF(2) = %v, want 0.4", got)
	}
}

func TestECDFMonotonic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := randx.New(seed)
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = src.Normal(0, 10)
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			p := e.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ps := e.Points(11)
	if len(xs) != 11 || len(ps) != 11 {
		t.Fatalf("Points returned %d/%d values", len(xs), len(ps))
	}
	if ps[0] != 0 || ps[10] != 1 {
		t.Error("probability endpoints should be 0 and 1")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Error("ECDF points are not sorted")
		}
	}
}
