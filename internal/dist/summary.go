// Package dist implements the statistical machinery used by the
// analyses in this repository: descriptive statistics, empirical
// distribution functions, histograms, expectation-maximization fitting
// for Gaussian and exponential mixtures, maximum-likelihood fitting of
// stretched-exponential (Weibull) models, chi-square goodness-of-fit
// testing, and simple regression.
//
// Everything is implemented from the standard library alone; the
// special functions needed for the chi-square test (the regularized
// incomplete gamma function) live in gamma.go.
package dist

import (
	"math"
	"sort"
)

// Summary holds streaming descriptive statistics over float64 samples.
// The zero value is an empty summary ready to use.
type Summary struct {
	n                 int
	mean, m2          float64
	min, max          float64
	sum               float64
	initializedMinMax bool
}

// Add incorporates one observation (Welford's algorithm).
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.initializedMinMax || x < s.min {
		s.min = x
	}
	if !s.initializedMinMax || x > s.max {
		s.max = x
	}
	s.initializedMinMax = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Sum returns the running total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the unbiased sample variance, or 0 for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Merge combines another summary into s, as if all of other's
// observations had been added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted using linear
// interpolation between closest ranks. It panics if sorted is empty or
// q is out of range. sorted must be in ascending order.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("dist: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("dist: quantile out of [0,1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of sorted (ascending).
func Median(sorted []float64) float64 { return Quantile(sorted, 0.5) }

// SortedCopy returns an ascending-sorted copy of xs.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Mean returns the arithmetic mean of xs, or 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ECDF is an empirical cumulative distribution function built from a
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (the input is copied and sorted).
func NewECDF(xs []float64) *ECDF {
	return &ECDF{sorted: SortedCopy(xs)}
}

// P returns the empirical P(X <= x).
func (e *ECDF) P(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, x)
	// Advance past equal values so P is right-continuous.
	for idx < len(e.sorted) && e.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// CCDF returns the empirical P(X > x).
func (e *ECDF) CCDF(x float64) float64 { return 1 - e.P(x) }

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 { return Quantile(e.sorted, q) }

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points samples the ECDF at n evenly spaced probabilities and returns
// (value, probability) pairs suitable for plotting a CDF curve.
func (e *ECDF) Points(n int) (xs, ps []float64) {
	if n < 2 || len(e.sorted) == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		xs[i] = Quantile(e.sorted, q)
		ps[i] = q
	}
	return xs, ps
}
