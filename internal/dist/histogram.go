package dist

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are accumulated in underflow/overflow counters so that totals
// are never lost.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram returns a histogram with bins equal-width bins spanning
// [lo, hi). It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("dist: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("dist: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard against floating point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the count of all observations, including out-of-range.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// InRange returns the count of observations that landed in a bin.
func (h *Histogram) InRange() int64 {
	t := int64(0)
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density of bin i (so that the sum of
// density*binwidth over bins equals the in-range fraction).
func (h *Histogram) Density(i int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(total) * h.BinWidth())
}

// Mode returns the center of the highest-count bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// ValleyBetween locates the lowest-count bin center strictly between
// the two given x positions; it is used to find the natural session
// cut between the two modes of the inter-operation time histogram.
// It returns an error if the interval covers no bins.
func (h *Histogram) ValleyBetween(a, b float64) (float64, error) {
	if a > b {
		a, b = b, a
	}
	lo := int((a - h.Lo) / h.BinWidth())
	hi := int((b - h.Lo) / h.BinWidth())
	if lo < 0 {
		lo = 0
	}
	if hi > len(h.Counts)-1 {
		hi = len(h.Counts) - 1
	}
	if lo > hi {
		return 0, fmt.Errorf("dist: valley interval [%g, %g] covers no bins", a, b)
	}
	best := lo
	for i := lo; i <= hi; i++ {
		if h.Counts[i] < h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best), nil
}

// LogHistogram bins positive values by their base-10 logarithm. It is
// the natural shape for the paper's Figure 3 (inter-operation times
// spanning seconds to days).
type LogHistogram struct {
	H *Histogram
}

// NewLogHistogram returns a histogram over log10 values spanning
// [10^loExp, 10^hiExp) with the given number of bins.
func NewLogHistogram(loExp, hiExp float64, bins int) *LogHistogram {
	return &LogHistogram{H: NewHistogram(loExp, hiExp, bins)}
}

// Add records a positive observation; non-positive values count as
// underflow.
func (lh *LogHistogram) Add(x float64) {
	if x <= 0 {
		lh.H.Underflow++
		return
	}
	lh.H.Add(math.Log10(x))
}

// ValleySeconds finds the histogram valley between two modes given in
// seconds and returns it in seconds.
func (lh *LogHistogram) ValleySeconds(a, b float64) (float64, error) {
	v, err := lh.H.ValleyBetween(math.Log10(a), math.Log10(b))
	if err != nil {
		return 0, err
	}
	return math.Pow(10, v), nil
}
