package dist

import (
	"math"
	"testing"

	"mcloud/internal/randx"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2 (0 and 0.5)", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bins 5/9 = %d/%d, want 1/1", h.Counts[5], h.Counts[9])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	if h.InRange() != 4 {
		t.Errorf("in-range = %d, want 4", h.InRange())
	}
}

func TestHistogramDensityIntegratesToInRangeFraction(t *testing.T) {
	src := randx.New(5)
	h := NewHistogram(-3, 3, 60)
	const n = 50000
	for i := 0; i < n; i++ {
		h.Add(src.NormFloat64())
	}
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	wantFrac := float64(h.InRange()) / float64(h.Total())
	if math.Abs(integral-wantFrac) > 1e-9 {
		t.Errorf("density integral = %v, want %v", integral, wantFrac)
	}
}

func TestHistogramMode(t *testing.T) {
	src := randx.New(6)
	h := NewHistogram(0, 20, 40)
	for i := 0; i < 20000; i++ {
		h.Add(src.Normal(12, 1))
	}
	if m := h.Mode(); math.Abs(m-12) > 1 {
		t.Errorf("mode = %v, want ~12", m)
	}
}

func TestValleyBetween(t *testing.T) {
	src := randx.New(7)
	h := NewHistogram(0, 30, 60)
	for i := 0; i < 30000; i++ {
		if i%2 == 0 {
			h.Add(src.Normal(5, 1.5))
		} else {
			h.Add(src.Normal(25, 1.5))
		}
	}
	v, err := h.ValleyBetween(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if v < 10 || v > 20 {
		t.Errorf("valley = %v, want within (10, 20)", v)
	}
}

func TestValleyBetweenEmptyInterval(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if _, err := h.ValleyBetween(50, 60); err == nil {
		t.Error("expected error for interval outside histogram")
	}
}

func TestLogHistogram(t *testing.T) {
	lh := NewLogHistogram(-1, 6, 70)
	lh.Add(0)    // underflow
	lh.Add(-5)   // underflow
	lh.Add(10)   // log10 = 1
	lh.Add(1000) // log10 = 3
	if lh.H.Underflow != 2 {
		t.Errorf("underflow = %d, want 2", lh.H.Underflow)
	}
	if lh.H.InRange() != 2 {
		t.Errorf("in-range = %d, want 2", lh.H.InRange())
	}
}

func TestLogHistogramValleySeconds(t *testing.T) {
	// Two log-normal modes at ~10s and ~1day, like the paper's Fig 3.
	src := randx.New(8)
	lh := NewLogHistogram(-1, 7, 80)
	for i := 0; i < 40000; i++ {
		if i%3 != 0 {
			lh.Add(src.LogNormal(math.Log(10), 1.0))
		} else {
			lh.Add(src.LogNormal(math.Log(86400), 1.0))
		}
	}
	v, err := lh.ValleySeconds(10, 86400)
	if err != nil {
		t.Fatal(err)
	}
	// The valley should be within an order of magnitude of one hour.
	if v < 360 || v > 36000 {
		t.Errorf("valley = %v s, want within [360, 36000]", v)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
