package dist

import (
	"math"
	"testing"

	"mcloud/internal/randx"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSAcceptsTrueModel(t *testing.T) {
	src := randx.New(400)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	res, err := KolmogorovSmirnov(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass(0.05) {
		t.Errorf("true model rejected: D=%.4f p=%.4f", res.Stat, res.PValue)
	}
}

func TestKSRejectsWrongModel(t *testing.T) {
	src := randx.New(401)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = src.Exp(1)
	}
	// Deliberately wrong: exponential with triple the mean.
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/3)
	}
	res, err := KolmogorovSmirnov(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass(0.05) {
		t.Errorf("wrong model accepted: D=%.4f p=%.4f", res.Stat, res.PValue)
	}
}

func TestKSStatExactSmallSample(t *testing.T) {
	// Sample {0.5}: ECDF jumps 0 -> 1 at 0.5; against U(0,1) the
	// distance is max(|1-0.5|, |0.5-0|) = 0.5 for five copies shifted.
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	res, err := KolmogorovSmirnov(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	// ECDF steps at exactly the right places: D = 0.1.
	if math.Abs(res.Stat-0.1) > 1e-12 {
		t.Errorf("D = %v, want 0.1", res.Stat)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov([]float64{1, 2}, uniformCDF); err == nil {
		t.Error("tiny sample accepted")
	}
	bad := func(float64) float64 { return 2 }
	if _, err := KolmogorovSmirnov([]float64{1, 2, 3, 4, 5}, bad); err == nil {
		t.Error("invalid CDF accepted")
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	src := randx.New(402)
	xs := make([]float64, 1500)
	ys := make([]float64, 1500)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
		ys[i] = src.Normal(0, 1)
	}
	res, err := KSTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass(0.01) {
		t.Errorf("same distribution rejected: D=%.4f p=%.4f", res.Stat, res.PValue)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	// The Fig 12 situation: Android vs iOS chunk times are lognormals
	// with different medians; the test must separate them.
	src := randx.New(403)
	android := make([]float64, 800)
	ios := make([]float64, 800)
	for i := range android {
		android[i] = src.LogNormal(math.Log(4.1), 0.75)
		ios[i] = src.LogNormal(math.Log(1.6), 0.70)
	}
	res, err := KSTwoSample(android, ios)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass(0.001) {
		t.Errorf("clearly different distributions accepted: D=%.4f p=%.4f", res.Stat, res.PValue)
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.0
	for d := 0.01; d < 0.5; d += 0.01 {
		p := ksPValue(d, 100)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at D=%.2f", d)
		}
		prev = p
	}
	if ksPValue(1e-9, 100) != 1 {
		t.Error("tiny D should give p=1")
	}
}
