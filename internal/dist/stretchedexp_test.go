package dist

import (
	"math"
	"testing"
	"testing/quick"

	"mcloud/internal/randx"
)

func TestFitStretchedExpRecoversWeibull(t *testing.T) {
	src := randx.New(300)
	const wantC, wantX0 = 0.5, 40.0
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.Weibull(wantX0, wantC)
	}
	se, err := FitStretchedExp(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se.C-wantC) > 0.02 {
		t.Errorf("C = %.4f, want ~%.2f", se.C, wantC)
	}
	if math.Abs(se.X0-wantX0)/wantX0 > 0.05 {
		t.Errorf("X0 = %.4f, want ~%.1f", se.X0, wantX0)
	}
	if se.R2 < 0.98 {
		t.Errorf("rank-plot R² = %.4f, want > 0.98 for true SE data", se.R2)
	}
}

func TestFitStretchedExpSmallShape(t *testing.T) {
	// Shapes like the paper's c=0.2 produce extremely heavy tails.
	src := randx.New(301)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.Weibull(1.0, 0.2)
	}
	se, err := FitStretchedExp(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se.C-0.2) > 0.01 {
		t.Errorf("C = %.4f, want ~0.20", se.C)
	}
}

func TestStretchedExpQuantileInvertsCDF(t *testing.T) {
	se := StretchedExp{C: 0.3, X0: 25}
	if err := quick.Check(func(raw float64) bool {
		q := math.Mod(math.Abs(raw), 0.98) + 0.01
		x := se.Quantile(q)
		return math.Abs(se.CDF(x)-q) < 1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStretchedExpCCDFBounds(t *testing.T) {
	se := StretchedExp{C: 0.2, X0: 5}
	if se.CCDF(0) != 1 || se.CCDF(-3) != 1 {
		t.Error("CCDF at non-positive x should be 1")
	}
	prev := 1.0
	for x := 0.1; x < 1e6; x *= 3 {
		c := se.CCDF(x)
		if c > prev || c < 0 {
			t.Errorf("CCDF not monotone at %v", x)
		}
		prev = c
	}
}

func TestFitStretchedExpRank(t *testing.T) {
	src := randx.New(302)
	xs := make([]float64, 30000)
	for i := range xs {
		// Discretized activity counts, like "number of stored files".
		v := src.Weibull(2.0, 0.25)
		xs[i] = math.Ceil(v)
	}
	se, err := FitStretchedExpRank(xs, 0.05, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if se.C < 0.1 || se.C > 0.45 {
		t.Errorf("rank-fit C = %.4f, want near 0.25", se.C)
	}
	// Ceiling discretization flattens the rank-plot tail, so the
	// linearity is a little below what continuous SE data achieves.
	if se.R2 < 0.94 {
		t.Errorf("rank-fit R² = %.4f, want > 0.94", se.R2)
	}
}

func TestSEBeatsPowerLawForSEData(t *testing.T) {
	// The paper's argument: SE fits activity better than a power law.
	src := randx.New(303)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Ceil(src.Weibull(1.5, 0.2))
	}
	se, err := FitStretchedExpRank(xs, 0.05, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	_, plR2, err := PowerLawRankR2(xs)
	if err != nil {
		t.Fatal(err)
	}
	if se.R2 <= plR2 {
		t.Errorf("SE R² (%.4f) should exceed power-law R² (%.4f) on SE data", se.R2, plR2)
	}
}

func TestFitStretchedExpErrors(t *testing.T) {
	if _, err := FitStretchedExp([]float64{1, 2, 3}); err == nil {
		t.Error("expected error for tiny sample")
	}
	if _, err := FitStretchedExp(make([]float64, 100)); err == nil {
		t.Error("expected error for all-zero sample")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %vx + %v, want 2x + 1", slope, intercept)
	}
	if r2 != 1 {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, i, r2 := LinearFit([]float64{1}, []float64{2}); s != 0 || i != 0 || r2 != 0 {
		t.Error("single point should return zeros")
	}
	// Zero x-variance.
	s, i, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if s != 0 || math.Abs(i-2) > 1e-12 || r2 != 0 {
		t.Errorf("vertical data: got %v,%v,%v", s, i, r2)
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r := PearsonR(xs, []float64{2, 4, 6, 8}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive r = %v", r)
	}
	if r := PearsonR(xs, []float64{8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative r = %v", r)
	}
	if r := PearsonR(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant y should give r = 0, got %v", r)
	}
}
