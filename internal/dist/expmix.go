package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ExpComponent is one component of an exponential mixture: weight
// Alpha and mean Mu (the paper's α_i and µ_i, Table 2).
type ExpComponent struct {
	Alpha float64
	Mu    float64
}

// ExpMixture is a mixture of exponential distributions
//
//	f(x) = Σ α_i (1/µ_i) exp(-x/µ_i)
//
// as used by the paper to model average file sizes (§3.1.4).
// Components are kept sorted by ascending mean.
type ExpMixture struct {
	Components []ExpComponent
	LogLik     float64
	Iters      int
}

func (m ExpMixture) String() string {
	s := "ExpMix{"
	for i, c := range m.Components {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("α=%.3f µ=%.4g", c.Alpha, c.Mu)
	}
	return s + "}"
}

// PDF evaluates the mixture density at x (0 for x < 0).
func (m ExpMixture) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	p := 0.0
	for _, c := range m.Components {
		p += c.Alpha / c.Mu * math.Exp(-x/c.Mu)
	}
	return p
}

// CDF evaluates the mixture distribution function at x.
func (m ExpMixture) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p := 0.0
	for _, c := range m.Components {
		p += c.Alpha * (1 - math.Exp(-x/c.Mu))
	}
	return p
}

// CCDF evaluates P(X > x).
func (m ExpMixture) CCDF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	p := 0.0
	for _, c := range m.Components {
		p += c.Alpha * math.Exp(-x/c.Mu)
	}
	return p
}

// Mean returns the mixture mean Σ α_i µ_i.
func (m ExpMixture) Mean() float64 {
	mean := 0.0
	for _, c := range m.Components {
		mean += c.Alpha * c.Mu
	}
	return mean
}

// FitExpMixture fits a k-component exponential mixture to the
// non-negative sample xs with expectation-maximization. Initial means
// are placed at spread-out sample quantiles so the fit is
// deterministic.
func FitExpMixture(xs []float64, k, maxIter int, tol float64) (ExpMixture, error) {
	if k < 1 {
		return ExpMixture{}, errors.New("dist: mixture needs k >= 1")
	}
	if len(xs) < 2*k {
		return ExpMixture{}, fmt.Errorf("dist: %d samples insufficient for %d components", len(xs), k)
	}
	for _, x := range xs {
		if x < 0 {
			return ExpMixture{}, errors.New("dist: exponential mixture requires non-negative samples")
		}
	}
	if maxIter <= 0 {
		maxIter = 5000
	}
	if tol <= 0 {
		tol = 1e-13
	}

	comps := initExpComponents(xs, k)

	// EM over exponential mixtures needs on the order of a thousand
	// iterations when components overlap near zero (they always do),
	// so the sample is first compressed into equal-count quantile bins
	// and EM runs on the weighted bin means. With thousands of bins
	// the compression loss is far below the Monte Carlo noise of any
	// realistic sample, and the iteration cost drops by the ratio of
	// sample size to bin count.
	vals, weights := compressSample(xs, 4096)

	n := float64(len(xs))
	m := len(vals)
	resp := make([][]float64, k)
	for i := range resp {
		resp[i] = make([]float64, m)
	}

	prevLL := math.Inf(-1)
	var ll float64
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		ll = 0
		for j, x := range vals {
			total := 0.0
			for i, c := range comps {
				p := c.Alpha / c.Mu * math.Exp(-x/c.Mu)
				resp[i][j] = p
				total += p
			}
			if total <= 0 {
				for i := range comps {
					resp[i][j] = 1 / float64(k)
				}
				ll += weights[j] * math.Log(math.SmallestNonzeroFloat64)
				continue
			}
			for i := range comps {
				resp[i][j] /= total
			}
			ll += weights[j] * math.Log(total)
		}

		for i := range comps {
			nk := 0.0
			sum := 0.0
			for j, x := range vals {
				w := weights[j] * resp[i][j]
				nk += w
				sum += w * x
			}
			if nk < 1e-12 {
				comps[i].Alpha = 1e-9
				continue
			}
			mu := sum / nk
			if mu <= 0 {
				mu = 1e-12
			}
			comps[i] = ExpComponent{Alpha: nk / n, Mu: mu}
		}

		if math.Abs(ll-prevLL) < tol*(1+math.Abs(ll)) {
			iter++
			break
		}
		prevLL = ll
	}

	sort.Slice(comps, func(a, b int) bool { return comps[a].Mu < comps[b].Mu })
	return ExpMixture{Components: comps, LogLik: ll, Iters: iter}, nil
}

// compressSample reduces xs to at most maxBins (value, weight) pairs
// by equal-count binning of the sorted sample, each bin represented by
// its mean. Samples smaller than 2*maxBins are passed through with
// unit weights.
func compressSample(xs []float64, maxBins int) (vals, weights []float64) {
	if len(xs) <= 2*maxBins {
		w := make([]float64, len(xs))
		for i := range w {
			w[i] = 1
		}
		return xs, w
	}
	sorted := SortedCopy(xs)
	vals = make([]float64, 0, maxBins)
	weights = make([]float64, 0, maxBins)
	per := float64(len(sorted)) / float64(maxBins)
	start := 0
	for b := 0; b < maxBins; b++ {
		end := int(float64(b+1) * per)
		if b == maxBins-1 {
			end = len(sorted)
		}
		if end <= start {
			continue
		}
		sum := 0.0
		for _, v := range sorted[start:end] {
			sum += v
		}
		vals = append(vals, sum/float64(end-start))
		weights = append(weights, float64(end-start))
		start = end
	}
	return vals, weights
}

// initExpComponents seeds EM with scales log-spaced between a low and
// a high sample quantile, then assigns each point to its nearest scale
// (in log space) to obtain initial weights and means. Heavy-tailed
// mixtures have components at very different scales, so a log-domain
// partition lands close to the EM fixed point and avoids the slow
// crawl EM exhibits from a flat start.
func initExpComponents(xs []float64, k int) []ExpComponent {
	sorted := SortedCopy(xs)
	lo := Quantile(sorted, 0.10)
	hi := Quantile(sorted, 0.995)
	if lo <= 0 {
		lo = 1e-9
	}
	if hi <= lo {
		hi = lo * 10
	}
	centers := make([]float64, k)
	if k == 1 {
		centers[0] = Mean(xs)
	} else {
		for i := range centers {
			f := float64(i) / float64(k-1)
			centers[i] = math.Exp(math.Log(lo) + f*(math.Log(hi)-math.Log(lo)))
		}
	}
	counts := make([]float64, k)
	sums := make([]float64, k)
	for _, x := range xs {
		best := 0
		bestD := math.Inf(1)
		lx := math.Log(math.Max(x, 1e-12))
		for i, c := range centers {
			d := math.Abs(lx - math.Log(c))
			if d < bestD {
				bestD = d
				best = i
			}
		}
		counts[best]++
		sums[best] += x
	}
	comps := make([]ExpComponent, k)
	n := float64(len(xs))
	for i := range comps {
		mu := centers[i]
		if counts[i] > 0 && sums[i] > 0 {
			mu = sums[i] / counts[i]
		}
		if mu <= 0 {
			mu = 1e-9
		}
		alpha := counts[i] / n
		if alpha <= 0 {
			alpha = 1 / n
		}
		comps[i] = ExpComponent{Alpha: alpha, Mu: mu}
	}
	return comps
}

// SelectExpMixture applies the paper's model-selection rule (§3.1.4):
// grow the number of exponential components starting from 1 and stop
// when adding another component leaves some α_i below minAlpha
// (the paper uses 0.001) or k reaches maxK. A component that merely
// duplicates an existing scale (means within a factor of two) is also
// treated as negligible, since EM on data with fewer true scales
// splits one component's mass instead of driving a weight to zero.
// It returns the selected mixture.
func SelectExpMixture(xs []float64, maxK int, minAlpha float64) (ExpMixture, error) {
	if maxK < 1 {
		maxK = 1
	}
	if minAlpha <= 0 {
		minAlpha = 0.001
	}
	best, err := FitExpMixture(xs, 1, 0, 0)
	if err != nil {
		return ExpMixture{}, err
	}
	for k := 2; k <= maxK; k++ {
		m, err := FitExpMixture(xs, k, 0, 0)
		if err != nil {
			break
		}
		negligible := false
		for i, c := range m.Components {
			if c.Alpha < minAlpha {
				negligible = true
				break
			}
			if i > 0 && c.Mu < 2*m.Components[i-1].Mu {
				negligible = true
				break
			}
		}
		if negligible {
			break
		}
		best = m
	}
	return best, nil
}
