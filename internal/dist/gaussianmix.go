package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// GaussianComponent is one component of a one-dimensional Gaussian
// mixture.
type GaussianComponent struct {
	Weight float64 // mixing proportion, in (0, 1]
	Mean   float64
	StdDev float64
}

// GaussianMixture is a one-dimensional mixture of Gaussians, fit with
// expectation-maximization. Components are kept sorted by mean.
type GaussianMixture struct {
	Components []GaussianComponent
	LogLik     float64 // final log-likelihood of the fit
	Iters      int     // EM iterations performed
}

func (g GaussianMixture) String() string {
	s := "GMM{"
	for i, c := range g.Components {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("w=%.3f N(%.3f, %.3f)", c.Weight, c.Mean, c.StdDev)
	}
	return s + "}"
}

// PDF evaluates the mixture density at x.
func (g GaussianMixture) PDF(x float64) float64 {
	p := 0.0
	for _, c := range g.Components {
		p += c.Weight * normPDF(x, c.Mean, c.StdDev)
	}
	return p
}

// CDF evaluates the mixture distribution function at x.
func (g GaussianMixture) CDF(x float64) float64 {
	p := 0.0
	for _, c := range g.Components {
		p += c.Weight * normCDF(x, c.Mean, c.StdDev)
	}
	return p
}

// Responsibility returns the posterior probability that x was drawn
// from component i.
func (g GaussianMixture) Responsibility(i int, x float64) float64 {
	total := g.PDF(x)
	if total == 0 {
		return 0
	}
	c := g.Components[i]
	return c.Weight * normPDF(x, c.Mean, c.StdDev) / total
}

// EquallyLikely returns the point between the means of components i
// and j at which both components have equal posterior probability —
// the paper uses the 1-hour mark being "equally likely to be within
// the two components" to validate the session threshold. The point is
// found by bisection between the two component means.
func (g GaussianMixture) EquallyLikely(i, j int) float64 {
	ci, cj := g.Components[i], g.Components[j]
	lo, hi := ci.Mean, cj.Mean
	if lo > hi {
		lo, hi = hi, lo
	}
	f := func(x float64) float64 {
		return ci.Weight*normPDF(x, ci.Mean, ci.StdDev) - cj.Weight*normPDF(x, cj.Mean, cj.StdDev)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 == (f(lo) > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func normPDF(x, mean, sd float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := (x - mean) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi))
}

func normCDF(x, mean, sd float64) float64 {
	if sd <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mean)/(sd*math.Sqrt2))
}

// minGaussianSD floors component standard deviations to keep EM from
// collapsing a component onto a single point.
const minGaussianSD = 1e-6

// FitGaussianMixture fits a k-component Gaussian mixture to xs using
// expectation-maximization. Initial means are placed at evenly spaced
// sample quantiles, which makes the fit deterministic. It returns an
// error if the sample is smaller than 2k or k < 1.
func FitGaussianMixture(xs []float64, k int, maxIter int, tol float64) (GaussianMixture, error) {
	if k < 1 {
		return GaussianMixture{}, errors.New("dist: mixture needs k >= 1")
	}
	if len(xs) < 2*k {
		return GaussianMixture{}, fmt.Errorf("dist: %d samples insufficient for %d components", len(xs), k)
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-8
	}

	sorted := SortedCopy(xs)
	overall := NewECDF(nil) // placeholder to avoid nil checks below
	_ = overall
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	sd := s.StdDev()
	if sd < minGaussianSD {
		sd = minGaussianSD
	}

	comps := make([]GaussianComponent, k)
	for i := range comps {
		q := (float64(i) + 0.5) / float64(k)
		comps[i] = GaussianComponent{
			Weight: 1 / float64(k),
			Mean:   Quantile(sorted, q),
			StdDev: sd / float64(k),
		}
	}

	n := len(xs)
	resp := make([][]float64, k)
	for i := range resp {
		resp[i] = make([]float64, n)
	}

	prevLL := math.Inf(-1)
	var ll float64
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		// E-step.
		ll = 0
		for j, x := range xs {
			total := 0.0
			for i, c := range comps {
				p := c.Weight * normPDF(x, c.Mean, c.StdDev)
				resp[i][j] = p
				total += p
			}
			if total <= 0 {
				// Point is in the extreme tail of every component;
				// assign it uniformly to keep EM well-defined.
				for i := range comps {
					resp[i][j] = 1 / float64(k)
				}
				ll += math.Log(math.SmallestNonzeroFloat64)
				continue
			}
			for i := range comps {
				resp[i][j] /= total
			}
			ll += math.Log(total)
		}

		// M-step.
		for i := range comps {
			nk := 0.0
			for j := 0; j < n; j++ {
				nk += resp[i][j]
			}
			if nk < 1e-12 {
				// Dead component: re-seed at the overall mean.
				comps[i] = GaussianComponent{Weight: 1e-6, Mean: s.Mean(), StdDev: sd}
				continue
			}
			mean := 0.0
			for j, x := range xs {
				mean += resp[i][j] * x
			}
			mean /= nk
			variance := 0.0
			for j, x := range xs {
				d := x - mean
				variance += resp[i][j] * d * d
			}
			variance /= nk
			if variance < minGaussianSD*minGaussianSD {
				variance = minGaussianSD * minGaussianSD
			}
			comps[i] = GaussianComponent{
				Weight: nk / float64(n),
				Mean:   mean,
				StdDev: math.Sqrt(variance),
			}
		}

		if math.Abs(ll-prevLL) < tol*(1+math.Abs(ll)) {
			iter++
			break
		}
		prevLL = ll
	}

	sort.Slice(comps, func(a, b int) bool { return comps[a].Mean < comps[b].Mean })
	return GaussianMixture{Components: comps, LogLik: ll, Iters: iter}, nil
}
