package dist

import (
	"errors"
	"math"
	"sort"
)

// StretchedExp models the paper's stretched-exponential (SE) user
// activity distribution (§3.2.3):
//
//	P(X >= x) = exp(-(x/X0)^C)
//
// which is a Weibull survival function with shape C (the "stretch
// factor") and scale X0. The rank-plot form is y_i^C = -A·log(i) + B
// for the i-th ranked value y_i; A and B are derived from C, X0 and
// the top-ranked value.
type StretchedExp struct {
	C  float64 // stretch factor (Weibull shape)
	X0 float64 // scale
	A  float64 // rank-plot slope (a = x0^c / adjusted by sample size)
	B  float64 // rank-plot intercept (b = y_1^c)
	R2 float64 // coefficient of determination of the log-y^c rank plot
}

// CCDF returns P(X >= x) under the model.
func (se StretchedExp) CCDF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(x/se.X0, se.C))
}

// CDF returns P(X < x) under the model.
func (se StretchedExp) CDF(x float64) float64 { return 1 - se.CCDF(x) }

// Quantile inverts the CDF: the value x with P(X < x) = q.
func (se StretchedExp) Quantile(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return se.X0 * math.Pow(-math.Log(1-q), 1/se.C)
}

// FitStretchedExp fits the SE model to a positive sample by Weibull
// maximum likelihood (Newton iteration on the shape), then evaluates
// the rank-plot linearity (R² of y^c against log rank), mirroring how
// the paper reports its fits (Figure 10). It returns an error for
// samples smaller than 10 or with no positive spread.
func FitStretchedExp(xs []float64) (StretchedExp, error) {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			clean = append(clean, x)
		}
	}
	if len(clean) < 10 {
		return StretchedExp{}, errors.New("dist: too few positive samples for SE fit")
	}

	c, x0, err := weibullMLE(clean)
	if err != nil {
		return StretchedExp{}, err
	}
	se := StretchedExp{C: c, X0: x0}
	se.A, se.B, se.R2 = se.rankPlotFit(clean)
	return se, nil
}

// FitStretchedExpRank fits the SE model by choosing the stretch factor
// c that maximizes the linearity (R²) of the y^c vs log-rank plot,
// with the slope and intercept from least squares. This is the visual
// criterion of the paper's Figure 10, and is more robust than MLE for
// heavily discretized counts. The search is golden-section over
// c in [cLo, cHi].
func FitStretchedExpRank(xs []float64, cLo, cHi float64) (StretchedExp, error) {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			clean = append(clean, x)
		}
	}
	if len(clean) < 10 {
		return StretchedExp{}, errors.New("dist: too few positive samples for SE fit")
	}
	if cLo <= 0 {
		cLo = 0.01
	}
	if cHi <= cLo {
		cHi = 1.5
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(clean)))

	r2For := func(c float64) float64 {
		_, _, r2 := rankPlot(clean, c)
		return r2
	}
	// Golden-section maximization of r2For over [cLo, cHi].
	const phi = 0.6180339887498949
	a, b := cLo, cHi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := r2For(x1), r2For(x2)
	for i := 0; i < 80; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = r2For(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = r2For(x1)
		}
	}
	c := (a + b) / 2
	slope, intercept, r2 := rankPlot(clean, c)
	// From y^c = -A log i + B: B = y_1^c so X0 follows from the SE
	// survival at rank 1: i/N = exp(-(y_i/x0)^c) gives x0 from A.
	x0 := math.Pow(slope, 1/c)
	return StretchedExp{C: c, X0: x0, A: slope, B: intercept, R2: r2}, nil
}

// rankPlotFit computes the rank-plot parameters for an already fit
// model against the sample.
func (se StretchedExp) rankPlotFit(xs []float64) (a, b, r2 float64) {
	desc := SortedCopy(xs)
	// reverse to descending
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	return rankPlot(desc, se.C)
}

// rankPlot regresses y_i^c on log(i) for descending-ranked data and
// returns slope magnitude a (so y^c = -a log i + b), intercept b, and
// R².
func rankPlot(desc []float64, c float64) (a, b, r2 float64) {
	n := len(desc)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, y := range desc {
		xs[i] = math.Log(float64(i) + 1)
		ys[i] = math.Pow(y, c)
	}
	slope, intercept, r2 := LinearFit(xs, ys)
	return -slope, intercept, r2
}

// weibullMLE solves the Weibull maximum-likelihood equations by Newton
// iteration on the shape parameter.
func weibullMLE(xs []float64) (shape, scale float64, err error) {
	n := float64(len(xs))
	sumLog := 0.0
	for _, x := range xs {
		sumLog += math.Log(x)
	}
	meanLog := sumLog / n

	// g(k) = S1(k)/S0(k) - 1/k - meanLog where
	// S0 = Σ x^k, S1 = Σ x^k ln x, S2 = Σ x^k (ln x)^2.
	g := func(k float64) (val, deriv float64) {
		var s0, s1, s2 float64
		for _, x := range xs {
			lx := math.Log(x)
			xk := math.Pow(x, k)
			s0 += xk
			s1 += xk * lx
			s2 += xk * lx * lx
		}
		val = s1/s0 - 1/k - meanLog
		deriv = (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
		return val, deriv
	}

	k := 1.0
	// A standard moment-based starting point.
	var s Summary
	for _, x := range xs {
		s.Add(math.Log(x))
	}
	if sd := s.StdDev(); sd > 0 {
		k = 1.2 / sd // Menon's estimator ~ pi/(sqrt(6)*sd)
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		k = 1
	}

	for i := 0; i < 200; i++ {
		val, deriv := g(k)
		if math.Abs(deriv) < 1e-300 {
			break
		}
		next := k - val/deriv
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*(1+k) {
			k = next
			break
		}
		k = next
	}
	if math.IsNaN(k) || k <= 0 {
		return 0, 0, errors.New("dist: Weibull MLE did not converge")
	}
	var s0 float64
	for _, x := range xs {
		s0 += math.Pow(x, k)
	}
	scale = math.Pow(s0/n, 1/k)
	return k, scale, nil
}

// PowerLawRankR2 returns the R² of a pure power-law fit to the rank
// plot (log y against log rank). The paper contrasts this with the SE
// fit to argue the activity distribution is not a power law.
func PowerLawRankR2(xs []float64) (alpha, r2 float64, err error) {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			clean = append(clean, x)
		}
	}
	if len(clean) < 10 {
		return 0, 0, errors.New("dist: too few positive samples")
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(clean)))
	lx := make([]float64, len(clean))
	ly := make([]float64, len(clean))
	for i, y := range clean {
		lx[i] = math.Log(float64(i) + 1)
		ly[i] = math.Log(y)
	}
	slope, _, r2 := LinearFit(lx, ly)
	return -slope, r2, nil
}
