package workload

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/trace"
)

// StreamP returns the population's merged, time-ordered log stream
// with the given generation parallelism (workers <= 0 means
// GOMAXPROCS).
//
// Unlike a naive k-way merge over all user weeks, the stream is
// bounded-memory: users are sorted by the time of their first record
// — computable from a cheap RNG-prefix replay, without emitting any
// sessions — and a user's week is only generated (on a fork-join
// worker batch) once the merge clock reaches their first record. A
// fully consumed week is released immediately. Resident state is
// therefore O(concurrently active users + one generation batch), not
// O(population), so million-user populations stream in steady memory.
//
// The output is identical to eagerly merging every user week: the
// heap breaks timestamp ties by user index, exactly like trace.Merge
// over per-user streams in user order, and per-user generation is
// seed-deterministic, so worker count and batching cannot reorder or
// alter records.
func (g *Generator) StreamP(workers int) trace.Stream {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.Population()

	// First-record time of every user, computed in parallel: the
	// prefix replay is ~50x cheaper than generating a week.
	starts := make([]time.Time, n)
	if workers > 1 && n > 64 {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					starts[i] = g.firstLogTime(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range starts {
			starts[i] = g.firstLogTime(i)
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := starts[order[a]], starts[order[b]]
		if !ta.Equal(tb) {
			return ta.Before(tb)
		}
		return order[a] < order[b]
	})
	sortedStarts := make([]time.Time, n)
	for pos, idx := range order {
		sortedStarts[pos] = starts[idx]
	}

	batch := workers * 8
	if batch < 16 {
		batch = 16
	}
	return &boundedStream{
		g:       g,
		workers: workers,
		order:   order,
		starts:  sortedStarts,
		batch:   batch,
	}
}

// boundedStream is the lazily-generating merge behind StreamP.
type boundedStream struct {
	g       *Generator
	workers int
	order   []int       // user indices sorted by first-record time
	starts  []time.Time // first-record time per order position
	nextPos int         // next order position not yet ingested
	batch   int         // generation batch size
	queue   [][]trace.Log
	heads   cursorHeap

	maxResident int // high-water mark of resident weeks (for tests)
}

type userCursor struct {
	userIdx int
	logs    []trace.Log
	pos     int
}

// cursorHeap orders active users by (head record time, user index) —
// the same tie-break trace.Merge applies to per-user streams passed
// in user order, which keeps StreamP's output bit-identical to the
// eager merge.
type cursorHeap []*userCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(a, b int) bool {
	ta, tb := h[a].logs[h[a].pos].Time, h[b].logs[h[b].pos].Time
	if !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return h[a].userIdx < h[b].userIdx
}
func (h cursorHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*userCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// takeNext returns the week of the user at order position nextPos,
// generating the next batch of weeks on the worker pool when the
// queue runs dry. Generation is fork-join per batch — no goroutine
// outlives the call — so an abandoned stream leaks nothing.
func (s *boundedStream) takeNext() []trace.Log {
	if len(s.queue) == 0 {
		lo, hi := s.nextPos, s.nextPos+s.batch
		if hi > len(s.order) {
			hi = len(s.order)
		}
		s.queue = s.generateBatch(lo, hi)
	}
	w := s.queue[0]
	s.queue[0] = nil
	s.queue = s.queue[1:]
	return w
}

func (s *boundedStream) generateBatch(lo, hi int) [][]trace.Log {
	out := make([][]trace.Log, hi-lo)
	gen := func(k int) {
		idx := s.order[k]
		out[k-lo] = s.g.userWeek(s.g.User(idx))
	}
	w := s.workers
	if w > hi-lo {
		w = hi - lo
	}
	if w <= 1 {
		for k := lo; k < hi; k++ {
			gen(k)
		}
		return out
	}
	var next atomic.Int64
	next.Store(int64(lo - 1))
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1))
				if k >= hi {
					return
				}
				gen(k)
			}
		}()
	}
	wg.Wait()
	return out
}

// Next implements trace.Stream.
func (s *boundedStream) Next() (trace.Log, bool) {
	// Ingest every user whose first record is due at or before the
	// current merge minimum; on ties the ingested user may itself be
	// the minimum, which is why the comparison is "not after".
	for s.nextPos < len(s.order) &&
		(len(s.heads) == 0 || !s.starts[s.nextPos].After(s.heads[0].logs[s.heads[0].pos].Time)) {
		logs := s.takeNext()
		idx := s.order[s.nextPos]
		s.nextPos++
		if len(logs) > 0 {
			heap.Push(&s.heads, &userCursor{userIdx: idx, logs: logs})
		}
	}
	if resident := len(s.heads) + len(s.queue); resident > s.maxResident {
		s.maxResident = resident
	}
	if len(s.heads) == 0 {
		return trace.Log{}, false
	}
	cur := s.heads[0]
	l := cur.logs[cur.pos]
	cur.pos++
	if cur.pos >= len(cur.logs) {
		heap.Pop(&s.heads) // week fully consumed: release it
	} else {
		heap.Fix(&s.heads, 0)
	}
	return l, true
}
