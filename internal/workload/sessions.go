package workload

import (
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// SessionType classifies a planned session.
type SessionType uint8

// Session types (§3.1.1).
const (
	StoreOnly SessionType = iota
	RetrieveOnly
	MixedSession
)

var sessionTypeNames = [...]string{"store-only", "retrieve-only", "mixed"}

func (t SessionType) String() string { return sessionTypeNames[t] }

// plannedFile is one file transfer within a session.
type plannedFile struct {
	store bool
	size  int64
}

// sessionPlan is a fully sampled session before log emission.
type sessionPlan struct {
	start   time.Time
	device  Device
	typ     SessionType
	files   []plannedFile
	batched bool // operations issued app-paced rather than user-paced
}

// planSession samples the content of one session for a user.
func planSession(src *randx.Source, u *User, device Device, typ SessionType, start time.Time) sessionPlan {
	p := sessionPlan{start: start, device: device, typ: typ}

	switch typ {
	case StoreOnly, RetrieveOnly:
		store := typ == StoreOnly
		if u.Class == Occasional {
			// One tiny file, total below 1 MB (§3.2.1). The size is
			// the photo component of the Table 2 mixture truncated to
			// the occasional budget, so these sessions reinforce
			// rather than distort the Fig 6 mixture shape.
			mu := StoreSizeMus[0]
			if !store {
				mu = RetrieveSizeMus[0]
			}
			size := int64(4 << 10)
			for try := 0; try < 64; try++ {
				v := src.Exp(mu * float64(1<<20))
				if v < occasionalMaxBytes {
					if v > 4<<10 {
						size = int64(v)
					}
					break
				}
			}
			p.files = []plannedFile{{store: store, size: size}}
			return p
		}
		// The session syncs one kind of content: pick the size
		// component first, then the batch size appropriate to it and
		// the per-file sizes around the session average.
		component := sampleSizeComponent(src, store)
		n := sampleOpCount(src, store, component, u.Intensity)
		avg := sampleSessionAvgSize(src, store, component)
		sizes := spreadFileSizes(src, avg, n)
		p.files = make([]plannedFile, n)
		for i, s := range sizes {
			p.files[i] = plannedFile{store: store, size: s}
		}
		p.batched = n > batchThreshold
	default: // MixedSession
		nStore := 1 + src.Intn(3)
		nRet := 1 + src.Intn(3)
		storeAvg := sampleSessionAvgSize(src, true, sampleSizeComponent(src, true))
		retAvg := sampleSessionAvgSize(src, false, sampleSizeComponent(src, false))
		for _, s := range spreadFileSizes(src, storeAvg, nStore) {
			p.files = append(p.files, plannedFile{store: true, size: s})
		}
		for _, s := range spreadFileSizes(src, retAvg, nRet) {
			p.files = append(p.files, plannedFile{store: false, size: s})
		}
		// Interleave deterministically via shuffle.
		src.Shuffle(len(p.files), func(i, j int) { p.files[i], p.files[j] = p.files[j], p.files[i] })
	}
	return p
}

// emit expands a session plan into its log records: one file operation
// per file, issued in a burst at the session head (Fig 4), followed by
// the sequential chunk requests of each file.
func (p sessionPlan) emit(src *randx.Source, u *User) []trace.Log {
	logs := make([]trace.Log, 0, p.totalChunks()+len(p.files))

	// File operation requests: the first at session start, the rest
	// separated by in-session gaps (batch-paced or user-paced).
	opTimes := make([]time.Time, len(p.files))
	t := p.start
	appPaced := p.batched || (len(p.files) > 1 && src.Bool(multiSelectShare))
	for i := range p.files {
		if i > 0 {
			var gap time.Duration
			switch {
			case appPaced:
				m, s := batchGap(len(p.files))
				gap = log10Normal(src, m, s)
			case src.Bool(quickGapShare):
				gap = log10Normal(src, quickGapMeanLog10, quickGapSigmaLog10)
			default:
				gap = log10Normal(src, slowGapMeanLog10, slowGapSigmaLog10)
			}
			if gap > sessionGapCeiling {
				gap = sessionGapCeiling
			}
			t = t.Add(gap)
		}
		opTimes[i] = t
	}

	for i, f := range p.files {
		typ := trace.FileRetrieve
		if f.store {
			typ = trace.FileStore
		}
		logs = append(logs, trace.Log{
			Time:     opTimes[i],
			Device:   p.device.Type,
			DeviceID: p.device.ID,
			UserID:   u.ID,
			Type:     typ,
			Bytes:    0,
			Proc:     sampleTsrv(src) + time.Duration(src.Int63n(int64(50*time.Millisecond))),
			Server:   0,
			RTT:      jitterRTT(src, u.RTT),
			Proxied:  u.Proxied,
		})
	}

	// Chunk requests: files transfer sequentially on the connection,
	// starting right after their operation request (or after the
	// previous file finishes, whichever is later).
	cursor := opTimes[0]
	for i, f := range p.files {
		if opTimes[i].After(cursor) {
			cursor = opTimes[i]
		}
		typ := trace.ChunkRetrieve
		if f.store {
			typ = trace.ChunkStore
		}
		remaining := f.size
		for remaining > 0 {
			size := ChunkSize
			if size > remaining {
				size = remaining
			}
			remaining -= size
			tsrv := sampleTsrv(src)
			ttran := sampleChunkTransfer(src, p.device.Type, f.store, size)
			cursor = cursor.Add(ttran + tsrv)
			logs = append(logs, trace.Log{
				Time:     cursor,
				Device:   p.device.Type,
				DeviceID: p.device.ID,
				UserID:   u.ID,
				Type:     typ,
				Bytes:    size,
				Proc:     ttran + tsrv,
				Server:   tsrv,
				RTT:      jitterRTT(src, u.RTT),
				Proxied:  u.Proxied,
			})
		}
	}
	return logs
}

// end returns the timestamp of the session's last emitted record.
func (p sessionPlan) end(logs []trace.Log) time.Time {
	if len(logs) == 0 {
		return p.start
	}
	return logs[len(logs)-1].Time
}

// jitterRTT perturbs the user's base RTT per request.
func jitterRTT(src *randx.Source, base time.Duration) time.Duration {
	m := 1 + 0.15*src.NormFloat64()
	if m < 0.4 {
		m = 0.4
	}
	d := time.Duration(float64(base) * m)
	if d < rttFloor {
		d = rttFloor
	}
	if d > rttCeil {
		d = rttCeil
	}
	return d
}

func (p sessionPlan) totalChunks() int {
	n := 0
	for _, f := range p.files {
		n += int((f.size + ChunkSize - 1) / ChunkSize)
	}
	return n
}
