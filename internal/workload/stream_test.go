package workload

import (
	"testing"

	"mcloud/internal/trace"
)

// eagerMerge is the reference semantics StreamP must reproduce: every
// user week materialized, then k-way merged in user order (ties by
// stream index).
func eagerMerge(t *testing.T, g *Generator) []trace.Log {
	t.Helper()
	streams := make([]trace.Stream, g.Population())
	for i := range streams {
		streams[i] = trace.NewSliceStream(g.userWeek(g.User(i)))
	}
	return trace.Drain(trace.NewMerge(streams...))
}

func TestStreamMatchesEagerMerge(t *testing.T) {
	g, err := New(Config{Users: 1500, PCOnlyUsers: 400, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}
	want := eagerMerge(t, g)
	for _, workers := range []int{1, 4} {
		got := trace.Drain(g.StreamP(workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d differs:\n got  %+v\n want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamBoundedResidency(t *testing.T) {
	g, err := New(Config{Users: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := g.StreamP(4)
	n := trace.Drain(s)
	if len(n) == 0 {
		t.Fatal("empty stream")
	}
	bs := s.(*boundedStream)
	// The whole point: the week-long window never needs anywhere near
	// the full population resident. The bound is loose (sessions
	// cluster within the window) but must be far below Population.
	if limit := g.Population() / 2; bs.maxResident > limit {
		t.Errorf("peak resident user-weeks = %d, want <= %d (population %d)",
			bs.maxResident, limit, g.Population())
	}
	if bs.maxResident == 0 {
		t.Error("residency accounting inert")
	}
	t.Logf("peak resident user-weeks: %d of %d users", bs.maxResident, g.Population())
}
