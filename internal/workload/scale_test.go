package workload

import (
	"testing"

	"mcloud/internal/trace"
)

// TestScaleFreeStatistics verifies that per-user statistics are stable
// across population sizes (the scale knob of DESIGN.md): doubling the
// population should not move the per-user log rate or the session
// class mix beyond sampling noise.
func TestScaleFreeStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rate := func(users int) (logsPerUser float64, storeShare float64) {
		g, err := New(Config{Users: users, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		s := g.Stream()
		var logs, storeChunks, chunks int64
		for {
			l, ok := s.Next()
			if !ok {
				break
			}
			logs++
			if l.Type.Chunk() {
				chunks++
				if l.Type == trace.ChunkStore {
					storeChunks++
				}
			}
		}
		return float64(logs) / float64(users), float64(storeChunks) / float64(chunks)
	}
	small, smallShare := rate(1500)
	large, largeShare := rate(6000)
	if ratio := large / small; ratio < 0.85 || ratio > 1.18 {
		t.Errorf("logs/user moved from %.1f to %.1f across scales", small, large)
	}
	if diff := largeShare - smallShare; diff > 0.06 || diff < -0.06 {
		t.Errorf("store chunk share moved from %.3f to %.3f", smallShare, largeShare)
	}
}

// TestStreamOrderedFromFirstRecord checks the merged stream yields
// time-ordered output immediately and can be abandoned early.
func TestStreamOrderedFromFirstRecord(t *testing.T) {
	g, err := New(Config{Users: 2000, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream()
	var prev trace.Log
	for i := 0; i < 500; i++ {
		l, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended after %d records", i)
		}
		if i > 0 && l.Time.Before(prev.Time) {
			t.Fatal("stream not time-ordered")
		}
		prev = l
	}
}
