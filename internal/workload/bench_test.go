package workload

import (
	"fmt"
	"testing"
)

// BenchmarkStreamP measures draining the bounded-memory workload
// stream at several generation worker counts.
func BenchmarkStreamP(b *testing.B) {
	g, err := New(Config{Users: 1000, PCOnlyUsers: 125, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := g.StreamP(workers)
				n := 0
				for {
					if _, ok := s.Next(); !ok {
						break
					}
					n++
				}
				if n == 0 {
					b.Fatal("empty stream")
				}
			}
		})
	}
}
