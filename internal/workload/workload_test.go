package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"mcloud/internal/dist"
	"mcloud/internal/randx"
	"mcloud/internal/session"
	"mcloud/internal/trace"
)

// testLogs generates a moderately sized population once and shares it
// across the statistical tests (generation is deterministic).
var testGen = func() *Generator {
	g, err := New(Config{Users: 4000, PCOnlyUsers: 1500, Seed: 1})
	if err != nil {
		panic(err)
	}
	return g
}()

var testLogs = testGen.Generate()

func mobileLogs() []trace.Log {
	var out []trace.Log
	for _, l := range testLogs {
		if l.Device.Mobile() {
			out = append(out, l)
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := New(Config{Users: -1}); err == nil {
		t.Error("negative population accepted")
	}
	if _, err := New(Config{Users: 10, Days: -2}); err == nil {
		t.Error("negative window accepted")
	}
	g, err := New(Config{Users: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().Days != ObservationDays {
		t.Error("default window not applied")
	}
	if !g.Config().Start.Equal(ObservationStart) {
		t.Error("default start not applied")
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := New(Config{Users: 50, Seed: 9})
	g2, _ := New(Config{Users: 50, Seed: 9})
	a := g1.Generate()
	b := g2.Generate()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	g3, _ := New(Config{Users: 50, Seed: 10})
	c := g3.Generate()
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestStreamIsTimeOrdered(t *testing.T) {
	for i := 1; i < len(testLogs); i++ {
		if testLogs[i].Time.Before(testLogs[i-1].Time) {
			t.Fatalf("log %d out of order", i)
		}
	}
}

func TestAllLogsWithinWindow(t *testing.T) {
	start := testGen.Config().Start
	end := testGen.Config().End()
	for _, l := range testLogs {
		if l.Time.Before(start) || !l.Time.Before(end) {
			t.Fatalf("log at %v outside [%v, %v)", l.Time, start, end)
		}
	}
}

func TestEveryUserIsActive(t *testing.T) {
	seen := make(map[uint64]bool)
	for _, l := range testLogs {
		seen[l.UserID] = true
	}
	if got, want := len(seen), testGen.Population(); got != want {
		t.Errorf("%d active users, want %d (all users active)", got, want)
	}
}

func TestLogInternalConsistency(t *testing.T) {
	for _, l := range testLogs {
		if l.Type.Chunk() {
			if l.Bytes <= 0 || l.Bytes > int64(ChunkSize) {
				t.Fatalf("chunk bytes %d out of (0, 512K]", l.Bytes)
			}
		} else if l.Bytes != 0 {
			t.Fatalf("file operation carries %d bytes", l.Bytes)
		}
		if l.Proc < l.Server {
			t.Fatalf("Proc %v below Server %v", l.Proc, l.Server)
		}
		if l.RTT < rttFloor || l.RTT > rttCeil {
			t.Fatalf("RTT %v out of bounds", l.RTT)
		}
	}
}

func TestDeviceMix(t *testing.T) {
	counts := map[trace.DeviceType]int{}
	for _, l := range testLogs {
		counts[l.Device]++
	}
	mob := counts[trace.Android] + counts[trace.IOS]
	androidShare := float64(counts[trace.Android]) / float64(mob)
	// §2.2: 78.4 % of accesses from Android.
	if math.Abs(androidShare-AndroidShare) > 0.05 {
		t.Errorf("Android access share = %.3f, want ~%.3f", androidShare, AndroidShare)
	}
	if counts[trace.PC] == 0 {
		t.Error("no PC traffic generated")
	}
}

func TestSessionClassMix(t *testing.T) {
	// §3.1.1: 68.2 % store-only, 29.9 % retrieve-only, ~2 % mixed.
	id := session.NewIdentifier(0)
	for _, l := range mobileLogs() {
		id.Add(l)
	}
	st := session.Summarize(id.Sessions())
	if f := st.ClassFraction(session.StoreOnly); f < 0.62 || f > 0.74 {
		t.Errorf("store-only fraction = %.3f, want ~0.68", f)
	}
	if f := st.ClassFraction(session.RetrieveOnly); f < 0.24 || f > 0.36 {
		t.Errorf("retrieve-only fraction = %.3f, want ~0.30", f)
	}
	if f := st.ClassFraction(session.Mixed); f < 0.005 || f > 0.06 {
		t.Errorf("mixed fraction = %.3f, want ~0.02", f)
	}
}

func TestFileCountAndVolumeShape(t *testing.T) {
	// §2.4 / Fig 1: stored files outnumber retrieved about 2:1 while
	// retrieval carries more volume than storage.
	var storeFiles, retrFiles int
	var storeVol, retrVol int64
	for _, l := range mobileLogs() {
		switch l.Type {
		case trace.FileStore:
			storeFiles++
		case trace.FileRetrieve:
			retrFiles++
		case trace.ChunkStore:
			storeVol += l.Bytes
		case trace.ChunkRetrieve:
			retrVol += l.Bytes
		}
	}
	fileRatio := float64(storeFiles) / float64(retrFiles)
	if fileRatio < 1.8 || fileRatio > 3.4 {
		t.Errorf("stored/retrieved file ratio = %.2f, want ~2-3", fileRatio)
	}
	volRatio := float64(retrVol) / float64(storeVol)
	if volRatio < 1.15 || volRatio > 2.4 {
		t.Errorf("retrieve/store volume ratio = %.2f, want > 1 (retrievals dominate volume)", volRatio)
	}
}

func TestInterOpGapGMM(t *testing.T) {
	// Fig 3: two-component structure with an in-session component at
	// seconds scale and an inter-session component near a day, with
	// the 1-hour mark between them.
	gaps := session.InterOpGaps(mobileLogs())
	var lg []float64
	for _, g := range gaps {
		if g >= 1 { // the paper's histogram domain starts at 1 s
			lg = append(lg, math.Log10(g))
		}
	}
	m, err := dist.FitGaussianMixture(lg, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := m.Components[0], m.Components[1]
	if c0.Mean < -0.3 || c0.Mean > 1.4 {
		t.Errorf("in-session component mean = 10^%.2f s, want seconds scale", c0.Mean)
	}
	if c1.Mean < 4.0 || c1.Mean > 5.6 {
		t.Errorf("inter-session component mean = 10^%.2f s, want ~1 day", c1.Mean)
	}
	// τ = 1 h (log10 ≈ 3.56) must lie between the components.
	tau := math.Log10(3600)
	if !(c0.Mean < tau && tau < c1.Mean) {
		t.Errorf("1-hour mark not between components (%.2f, %.2f)", c0.Mean, c1.Mean)
	}
}

func TestOpsPerSession(t *testing.T) {
	// Fig 5a: ~40 % single-operation sessions, ~10 % above 20.
	id := session.NewIdentifier(0)
	for _, l := range mobileLogs() {
		id.Add(l)
	}
	sessions := id.Sessions()
	one, over20 := 0, 0
	for i := range sessions {
		if sessions[i].FileOps == 1 {
			one++
		}
		if sessions[i].FileOps > 20 {
			over20++
		}
	}
	p1 := float64(one) / float64(len(sessions))
	p20 := float64(over20) / float64(len(sessions))
	if p1 < 0.35 || p1 > 0.58 {
		t.Errorf("P(1 op) = %.3f, want ~0.4-0.5", p1)
	}
	if p20 < 0.06 || p20 > 0.16 {
		t.Errorf("P(>20 ops) = %.3f, want ~0.10", p20)
	}
}

func TestBurstiness(t *testing.T) {
	// Fig 4: most multi-op sessions issue every operation within the
	// first tenth of the session; large sessions are even more
	// front-loaded.
	id := session.NewIdentifier(0)
	for _, l := range mobileLogs() {
		id.Add(l)
	}
	var all, big []float64
	for _, s := range id.Sessions() {
		if s.FileOps <= 1 {
			continue
		}
		v := s.NormalizedOperatingTime()
		all = append(all, v)
		if s.FileOps > 20 {
			big = append(big, v)
		}
	}
	e := dist.NewECDF(all)
	if p := e.P(0.1); p < 0.65 || p > 0.95 {
		t.Errorf("P(normalized op time < 0.1) = %.3f, want ~0.8", p)
	}
	eb := dist.NewECDF(big)
	if p := eb.P(0.1); p < 0.9 {
		t.Errorf("P(< 0.1 | >20 ops) = %.3f, want near 1 (batch issuance)", p)
	}
	if med := eb.Quantile(0.5); med > 0.06 {
		t.Errorf("median normalized op time for >20-op sessions = %.3f, want < 0.06", med)
	}
}

func TestAvgFileSizeMixture(t *testing.T) {
	// Fig 6 / Table 2 shape: the dominant store component sits near
	// 1.5 MB with most of the weight; the retrieve mixture has a fat
	// ~150 MB tail component.
	id := session.NewIdentifier(0)
	for _, l := range mobileLogs() {
		id.Add(l)
	}
	var store, retr []float64
	for _, s := range id.Sessions() {
		if s.FileOps == 0 {
			continue
		}
		mb := s.AvgFileSize() / (1 << 20)
		switch s.Class() {
		case session.StoreOnly:
			store = append(store, mb)
		case session.RetrieveOnly:
			retr = append(retr, mb)
		}
	}
	sm, err := dist.FitExpMixture(store, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := dist.FitExpMixture(retr, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Store: components below 3 MB (the photo mass) must carry >= 0.85
	// weight with a weighted mean near 1.5 MB.
	var wSmall, meanSmall float64
	for _, c := range sm.Components {
		if c.Mu < 3 {
			wSmall += c.Alpha
			meanSmall += c.Alpha * c.Mu
		}
	}
	if wSmall < 0.85 {
		t.Errorf("store small-component weight = %.3f, want >= 0.85 (paper: 0.91)", wSmall)
	}
	if m := meanSmall / wSmall; m < 1.0 || m > 2.0 {
		t.Errorf("store small-component mean = %.2f MB, want ~1.5", m)
	}
	tail := sm.Components[len(sm.Components)-1]
	if tail.Mu < 20 || tail.Mu > 110 {
		t.Errorf("store tail component µ = %.1f MB, want tens of MB", tail.Mu)
	}

	// Retrieve: a heavy large-file component near 150 MB with weight
	// around 0.28, and a photo component near 1.6 MB.
	rTail := rm.Components[len(rm.Components)-1]
	if rTail.Mu < 90 || rTail.Mu > 260 {
		t.Errorf("retrieve tail µ = %.1f MB, want ~150", rTail.Mu)
	}
	if rTail.Alpha < 0.15 || rTail.Alpha > 0.40 {
		t.Errorf("retrieve tail α = %.3f, want ~0.28", rTail.Alpha)
	}
	if c := rm.Components[0]; c.Mu > 3.0 {
		t.Errorf("retrieve photo component µ = %.2f MB, want ~1.6", c.Mu)
	}
	// The retrieve mixture mean far exceeds the store mixture mean.
	if rm.Mean() < 2*sm.Mean() {
		t.Errorf("retrieve mean (%.1f) should dwarf store mean (%.1f)", rm.Mean(), sm.Mean())
	}
}

func TestUserClassVolumes(t *testing.T) {
	// Table 3 structure: upload-only users store and never retrieve;
	// download-only the reverse; occasional users move < 1 MB.
	storeVol := map[uint64]int64{}
	retrVol := map[uint64]int64{}
	for _, l := range testLogs {
		if l.Type == trace.ChunkStore {
			storeVol[l.UserID] += l.Bytes
		}
		if l.Type == trace.ChunkRetrieve {
			retrVol[l.UserID] += l.Bytes
		}
	}
	for i := 0; i < testGen.Population(); i++ {
		u := testGen.User(i)
		switch u.Class {
		case UploadOnly:
			if retrVol[u.ID] > 0 {
				t.Fatalf("upload-only user %d retrieved %d bytes", u.ID, retrVol[u.ID])
			}
			if storeVol[u.ID] == 0 {
				t.Fatalf("upload-only user %d stored nothing", u.ID)
			}
		case DownloadOnly:
			if storeVol[u.ID] > 0 {
				t.Fatalf("download-only user %d stored %d bytes", u.ID, storeVol[u.ID])
			}
		case Occasional:
			if tot := storeVol[u.ID] + retrVol[u.ID]; tot >= 1<<20 {
				t.Fatalf("occasional user %d moved %d bytes, want < 1 MB", u.ID, tot)
			}
		}
	}
}

func TestUserClassSharesMatchTable3(t *testing.T) {
	// Apply the paper's volume-based classification (§3.2.1) to the
	// generated week and compare the observed shares with Table 3.
	storeVol := map[uint64]int64{}
	retrVol := map[uint64]int64{}
	for _, l := range testLogs {
		if l.Type == trace.ChunkStore {
			storeVol[l.UserID] += l.Bytes
		}
		if l.Type == trace.ChunkRetrieve {
			retrVol[l.UserID] += l.Bytes
		}
	}
	classify := func(s, r int64) string {
		if s+r < 1<<20 {
			return "occasional"
		}
		ratio := (float64(s) + 1) / (float64(r) + 1)
		switch {
		case ratio > 1e5:
			return "upload-only"
		case ratio < 1e-5:
			return "download-only"
		default:
			return "mixed"
		}
	}
	counts := map[Category]map[string]int{}
	totals := map[Category]int{}
	for i := 0; i < testGen.Population(); i++ {
		u := testGen.User(i)
		if counts[u.Category] == nil {
			counts[u.Category] = map[string]int{}
		}
		counts[u.Category][classify(storeVol[u.ID], retrVol[u.ID])]++
		totals[u.Category]++
	}
	check := func(cat Category, class string, want float64) {
		got := float64(counts[cat][class]) / float64(totals[cat])
		if math.Abs(got-want) > 0.06 {
			t.Errorf("%v/%s observed share = %.3f, want %.3f (Table 3)", cat, class, got, want)
		}
	}
	check(MobileOnly, "upload-only", 0.515)
	check(MobileOnly, "download-only", 0.173)
	check(MobileOnly, "occasional", 0.239)
	check(MobileOnly, "mixed", 0.072)
	check(MobileAndPC, "upload-only", 0.537)
	check(MobileAndPC, "mixed", 0.180)
	check(PCOnly, "upload-only", 0.316)
	check(PCOnly, "occasional", 0.341)
}

func TestStretchedExponentialActivity(t *testing.T) {
	// Fig 10: per-user stored and retrieved file counts follow a
	// stretched exponential; retrieval is the more skewed (smaller c),
	// and the SE fit beats a power law.
	storeCount := map[uint64]float64{}
	retrCount := map[uint64]float64{}
	for _, l := range testLogs {
		if l.Type == trace.FileStore {
			storeCount[l.UserID]++
		}
		if l.Type == trace.FileRetrieve {
			retrCount[l.UserID]++
		}
	}
	collect := func(m map[uint64]float64) []float64 {
		var out []float64
		for _, v := range m {
			out = append(out, v)
		}
		return out
	}
	seS, err := dist.FitStretchedExpRank(collect(storeCount), 0.05, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	seR, err := dist.FitStretchedExpRank(collect(retrCount), 0.05, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if seS.C < 0.12 || seS.C > 0.45 {
		t.Errorf("store SE c = %.3f, want ~0.2", seS.C)
	}
	if seR.C < 0.04 || seR.C > 0.30 {
		t.Errorf("retrieve SE c = %.3f, want ~0.15", seR.C)
	}
	if seR.C >= seS.C {
		t.Errorf("retrieval (c=%.3f) should be more skewed than storage (c=%.3f)", seR.C, seS.C)
	}
	if seS.R2 < 0.95 || seR.R2 < 0.93 {
		t.Errorf("SE fits R² = %.4f/%.4f, want near 1", seS.R2, seR.R2)
	}
	_, plR2, err := dist.PowerLawRankR2(collect(storeCount))
	if err != nil {
		t.Fatal(err)
	}
	if seS.R2 <= plR2 {
		t.Errorf("SE (R²=%.4f) should beat power law (R²=%.4f)", seS.R2, plR2)
	}
}

// engagement computes day-0 user return fractions by stratum.
func engagementByStratum(t *testing.T) map[string]float64 {
	t.Helper()
	start := testGen.Config().Start
	activeDays := map[uint64]map[int]bool{}
	for _, l := range testLogs {
		d := int(l.Time.Sub(start).Hours() / 24)
		if activeDays[l.UserID] == nil {
			activeDays[l.UserID] = map[int]bool{}
		}
		activeDays[l.UserID][d] = true
	}
	type agg struct{ total, ret int }
	res := map[string]*agg{}
	for i := 0; i < testGen.Population(); i++ {
		u := testGen.User(i)
		if !activeDays[u.ID][0] {
			continue
		}
		key := "pc-only"
		switch {
		case u.Category == MobileAndPC:
			key = "mobile+pc"
		case u.Category == MobileOnly && len(u.MobileDevices()) > 1:
			key = "multi-dev"
		case u.Category == MobileOnly:
			key = "1-dev"
		}
		a := res[key]
		if a == nil {
			a = &agg{}
			res[key] = a
		}
		a.total++
		for d := 1; d < ObservationDays; d++ {
			if activeDays[u.ID][d] {
				a.ret++
				break
			}
		}
	}
	out := map[string]float64{}
	for k, v := range res {
		if v.total > 0 {
			out[k] = float64(v.ret) / float64(v.total)
		}
	}
	return out
}

func TestEngagementStrata(t *testing.T) {
	// Fig 8: about half of one-device users never return; multi-device
	// and mobile+PC users return far more often.
	e := engagementByStratum(t)
	if v := e["1-dev"]; v < 0.30 || v > 0.60 {
		t.Errorf("1-device return fraction = %.3f, want ~0.4-0.5", v)
	}
	if v := e["multi-dev"]; v < 0.60 {
		t.Errorf("multi-device return fraction = %.3f, want > 0.6", v)
	}
	if v := e["mobile+pc"]; v < 0.60 {
		t.Errorf("mobile+pc return fraction = %.3f, want > 0.6", v)
	}
	if e["multi-dev"] <= e["1-dev"] || e["mobile+pc"] <= e["1-dev"] {
		t.Error("multi-terminal users should out-return single-device users")
	}
}

func TestRetrievalAfterUpload(t *testing.T) {
	// Fig 9: over 80 % of mobile-only users that upload on day one
	// never retrieve during the week; mobile+PC users retrieve far
	// more often.
	start := testGen.Config().Start
	uploadedDay0 := map[uint64]bool{}
	retrievedLater := map[uint64]bool{}
	var firstUpload = map[uint64]time.Time{}
	for _, l := range testLogs {
		d := int(l.Time.Sub(start).Hours() / 24)
		if l.Type == trace.FileStore && d == 0 && l.Device.Mobile() {
			uploadedDay0[l.UserID] = true
			if firstUpload[l.UserID].IsZero() {
				firstUpload[l.UserID] = l.Time
			}
		}
	}
	for _, l := range testLogs {
		if l.Type == trace.FileRetrieve && uploadedDay0[l.UserID] && l.Time.After(firstUpload[l.UserID]) {
			retrievedLater[l.UserID] = true
		}
	}
	var moTotal, moRet, mpTotal, mpRet int
	for i := 0; i < testGen.Population(); i++ {
		u := testGen.User(i)
		if !uploadedDay0[u.ID] {
			continue
		}
		switch u.Category {
		case MobileOnly:
			moTotal++
			if retrievedLater[u.ID] {
				moRet++
			}
		case MobileAndPC:
			mpTotal++
			if retrievedLater[u.ID] {
				mpRet++
			}
		}
	}
	if moTotal == 0 || mpTotal == 0 {
		t.Fatal("no day-0 uploaders found")
	}
	moFrac := float64(moRet) / float64(moTotal)
	mpFrac := float64(mpRet) / float64(mpTotal)
	if moFrac > 0.20 {
		t.Errorf("mobile-only retrieval-after-upload = %.3f, want <= 0.20 (paper: >80%% never retrieve)", moFrac)
	}
	if mpFrac <= moFrac {
		t.Errorf("mobile+pc (%.3f) should retrieve more than mobile-only (%.3f)", mpFrac, moFrac)
	}
}

func TestDiurnalPattern(t *testing.T) {
	// Fig 1: clear diurnal cycle with the peak in the late evening and
	// the trough before dawn.
	loc := testGen.Config().Start.Location()
	hours := make([]float64, 24)
	for _, l := range testLogs {
		hours[l.Time.In(loc).Hour()]++
	}
	peak, trough := 0, 0
	for h := range hours {
		if hours[h] > hours[peak] {
			peak = h
		}
		if hours[h] < hours[trough] {
			trough = h
		}
	}
	if peak < 20 && peak != 0 { // wrap-past-midnight spill is fine
		t.Errorf("peak hour = %d, want late evening", peak)
	}
	if trough < 1 || trough > 7 {
		t.Errorf("trough hour = %d, want pre-dawn", trough)
	}
	if hours[peak] < 2.2*hours[trough] {
		t.Errorf("peak/trough ratio = %.2f, want > 2.2", hours[peak]/hours[trough])
	}
}

func TestRTTDistribution(t *testing.T) {
	// Fig 14: median RTT ≈ 100 ms with a heavy tail.
	var rtts []float64
	for _, l := range mobileLogs() {
		rtts = append(rtts, float64(l.RTT)/float64(time.Millisecond))
	}
	e := dist.NewECDF(rtts)
	if med := e.Quantile(0.5); med < 60 || med > 170 {
		t.Errorf("median RTT = %.0f ms, want ~100", med)
	}
	if q99 := e.Quantile(0.99); q99 < 400 {
		t.Errorf("99th percentile RTT = %.0f ms, want a heavy tail", q99)
	}
}

func TestChunkTransferTimesByDevice(t *testing.T) {
	// Fig 12: median chunk upload ~4.1 s Android vs ~1.6 s iOS.
	var android, ios []float64
	for _, l := range mobileLogs() {
		if l.Type != trace.ChunkStore || l.Bytes < int64(ChunkSize) {
			continue
		}
		tt := l.TransferTime().Seconds()
		if l.Device == trace.Android {
			android = append(android, tt)
		} else {
			ios = append(ios, tt)
		}
	}
	am := dist.Median(dist.SortedCopy(android))
	im := dist.Median(dist.SortedCopy(ios))
	if am < 3.2 || am > 5.2 {
		t.Errorf("Android median chunk upload = %.2f s, want ~4.1", am)
	}
	if im < 1.1 || im > 2.2 {
		t.Errorf("iOS median chunk upload = %.2f s, want ~1.6", im)
	}
	if am < 1.5*im {
		t.Errorf("Android (%.2f) should be much slower than iOS (%.2f)", am, im)
	}
}

func TestProxiedShare(t *testing.T) {
	prox := 0
	for _, l := range testLogs {
		if l.Proxied {
			prox++
		}
	}
	share := float64(prox) / float64(len(testLogs))
	if share < 0.02 || share > 0.25 {
		t.Errorf("proxied share = %.3f, want a small minority", share)
	}
}

func TestGenerateToRoundTrip(t *testing.T) {
	g, _ := New(Config{Users: 30, Seed: 4})
	var buf bytes.Buffer
	n, err := g.GenerateTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(logs)) != n {
		t.Errorf("wrote %d, read %d", n, len(logs))
	}
	direct := g.Generate()
	if len(direct) != len(logs) {
		t.Errorf("GenerateTo (%d) and Generate (%d) differ", len(logs), len(direct))
	}
}

func TestUserProfileDeterminism(t *testing.T) {
	a := testGen.User(17)
	b := testGen.User(17)
	if a.ID != b.ID || a.Class != b.Class || a.Intensity != b.Intensity || len(a.Devices) != len(b.Devices) {
		t.Error("User(i) is not deterministic")
	}
}

func TestPCOnlyUsersHaveNoMobileDevices(t *testing.T) {
	g, _ := New(Config{Users: 10, PCOnlyUsers: 10, Seed: 2})
	for i := 10; i < 20; i++ {
		u := g.User(i)
		if u.Category != PCOnly {
			t.Fatalf("user %d category = %v, want pc-only", i, u.Category)
		}
		if len(u.MobileDevices()) != 0 {
			t.Fatalf("pc-only user %d has mobile devices", i)
		}
		if _, ok := u.PCDevice(); !ok {
			t.Fatalf("pc-only user %d has no PC", i)
		}
	}
}

func TestSessionsDoNotStraddleTau(t *testing.T) {
	// Generated in-session gaps are capped below τ so the identifier
	// recovers the generator's session structure.
	src := randx.New(3)
	u := sampleUser(3, 900001, MobileOnly)
	u.Class = UploadOnly
	plan := planSession(src, u, u.Devices[0], StoreOnly, ObservationStart)
	logs := plan.emit(src, u)
	var prevOp time.Time
	first := true
	for _, l := range logs {
		if !l.Type.FileOp() {
			continue
		}
		if !first && l.Time.Sub(prevOp) > session.DefaultTau {
			t.Fatalf("in-session op gap %v exceeds tau", l.Time.Sub(prevOp))
		}
		prevOp = l.Time
		first = false
	}
}

func BenchmarkGenerateUserWeek(b *testing.B) {
	g, _ := New(Config{Users: 1000, Seed: 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := g.User(i % 1000)
		_ = g.userWeek(u)
	}
}
