package workload

import (
	"fmt"
	"math"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// Device is one client terminal owned by a user.
type Device struct {
	ID   uint64
	Type trace.DeviceType
}

// User is one sampled account with all the static attributes that
// shape its week of activity.
type User struct {
	ID       uint64
	Category Category
	Class    UserClass
	Devices  []Device // mobile devices first; PC last when present

	// Intensity is the per-user activity multiplier drawn from the
	// stretched-exponential prior; it scales session counts and batch
	// sizes (Fig 10).
	Intensity float64
	// Churn is the per-session probability of abandoning the service
	// for the rest of the week (Fig 8).
	Churn float64
	// RTT is the user's path latency to the front-ends (Fig 14).
	RTT time.Duration
	// Proxied marks a user behind an HTTP proxy.
	Proxied bool
}

// MobileDevices returns the user's mobile terminals.
func (u *User) MobileDevices() []Device {
	var out []Device
	for _, d := range u.Devices {
		if d.Type.Mobile() {
			out = append(out, d)
		}
	}
	return out
}

// PCDevice returns the PC terminal and whether the user has one.
func (u *User) PCDevice() (Device, bool) {
	for _, d := range u.Devices {
		if d.Type == trace.PC {
			return d, true
		}
	}
	return Device{}, false
}

// sampleUser draws the static profile of user id for the given
// population category.
func sampleUser(seed uint64, id uint64, cat Category) *User {
	src := randx.Derive(seed, fmt.Sprintf("user/%d", id))
	u := &User{ID: id, Category: cat}
	u.Class = UserClass(src.Categorical(classMix(cat)))

	// Devices.
	devSeq := id << 8
	if cat != PCOnly {
		n := 1
		if src.Bool(multiDeviceProb(u.Class)) {
			n = 2 + src.Categorical(extraDeviceWeights)
		}
		for i := 0; i < n; i++ {
			typ := trace.IOS
			if src.Bool(AndroidShare) {
				typ = trace.Android
			}
			u.Devices = append(u.Devices, Device{ID: devSeq, Type: typ})
			devSeq++
		}
	}
	if cat != MobileOnly {
		u.Devices = append(u.Devices, Device{ID: devSeq, Type: trace.PC})
	}

	// Activity intensity: Weibull-tailed multiplier, normalized to
	// unit mean so population-level rates stay at their calibrated
	// values.
	shape := intensityShapeStore
	if u.Class == DownloadOnly {
		shape = intensityShapeRetrieve
	}
	mean := math.Gamma(1 + 1/shape)
	u.Intensity = src.Weibull(1, shape) / mean
	if u.Intensity < 0.05 {
		u.Intensity = 0.05
	}

	u.Churn = churnProb(cat, len(u.MobileDevices()))
	u.RTT = sampleRTT(src)
	u.Proxied = src.Bool(proxiedShare)
	return u
}

// sampleRTT draws a per-user connection RTT (Fig 14).
func sampleRTT(src *randx.Source) time.Duration {
	mu := math.Log(float64(rttMedian))
	d := time.Duration(src.LogNormal(mu, rttSigma))
	if d < rttFloor {
		d = rttFloor
	}
	if d > rttCeil {
		d = rttCeil
	}
	return d
}

// sampleTsrv draws one upstream processing time (Fig 16).
func sampleTsrv(src *randx.Source) time.Duration {
	mu := math.Log(float64(tsrvMedian))
	return time.Duration(src.LogNormal(mu, tsrvSigma))
}

// sampleChunkTransfer draws the user-perceived transfer time of one
// chunk (Fig 12), ttran = Tchunk − Tsrv.
func sampleChunkTransfer(src *randx.Source, dev trace.DeviceType, store bool, size int64) time.Duration {
	p := chunkTime(dev, store)
	mu := math.Log(float64(p.median))
	d := time.Duration(src.LogNormal(mu, p.sigma))
	if size < ChunkSize {
		// Tail chunks scale roughly with their size, floored so the
		// per-request overhead never vanishes.
		f := float64(size) / float64(ChunkSize)
		if f < 0.3 {
			f = 0.3
		}
		d = time.Duration(float64(d) * f)
	}
	if d < 400*time.Millisecond {
		d = 400 * time.Millisecond
	}
	return d
}

// log10Normal draws 10^N(mean, sigma) seconds as a duration.
func log10Normal(src *randx.Source, mean, sigma float64) time.Duration {
	secs := math.Pow(10, src.Normal(mean, sigma))
	return time.Duration(secs * float64(time.Second))
}

// sampleOpCount draws the number of file operations in a session for
// a direction and size component, scaled by the user's intensity for
// batch buckets.
func sampleOpCount(src *randx.Source, store bool, component int, intensity float64) int {
	buckets := opCountBuckets(store, component)
	weights := make([]float64, len(buckets))
	for i, b := range buckets {
		weights[i] = b.prob
	}
	b := buckets[src.Categorical(weights)]
	if b.lo == b.hi {
		return b.lo
	}
	// Log-uniform within the bucket, scaled by user intensity for the
	// big-batch bucket — this is where the stretched-exponential
	// activity tail (Fig 10) comes from.
	lo, hi := float64(b.lo), float64(b.hi)
	v := math.Exp(src.Float64()*(math.Log(hi)-math.Log(lo)) + math.Log(lo))
	if intensity > 1 && b.lo > 20 {
		v *= math.Min(intensity, 8)
	}
	n := int(v + 0.5)
	if n < b.lo {
		n = b.lo
	}
	if n > 8*b.hi {
		n = 8 * b.hi
	}
	return n
}

// sampleSizeComponent picks the session's Table 2 size component.
func sampleSizeComponent(src *randx.Source, store bool) int {
	if store {
		return src.Categorical(StoreSizeAlphas)
	}
	return src.Categorical(RetrieveSizeAlphas)
}

// sampleSessionAvgSize draws the session's average file size in bytes
// from the selected exponential component, so the per-session average
// follows the paper's mixture-exponential model (Fig 6) exactly.
func sampleSessionAvgSize(src *randx.Source, store bool, component int) float64 {
	mus := RetrieveSizeMus
	if store {
		mus = StoreSizeMus
	}
	v := src.Exp(mus[component] * float64(1<<20))
	if v < 8<<10 {
		v = 8 << 10 // floor: 8 KB
	}
	if v > 4<<30 {
		v = 4 << 30 // service cap: 4 GB
	}
	return v
}

// spreadFileSizes produces n per-file sizes whose mean is exactly avg:
// lognormal jitter around the session average, renormalized. Files in
// one session are the same kind of content, so their sizes cluster.
func spreadFileSizes(src *randx.Source, avg float64, n int) []int64 {
	sizes := make([]int64, n)
	if n == 1 {
		sizes[0] = int64(avg)
		return sizes
	}
	jitter := make([]float64, n)
	total := 0.0
	for i := range jitter {
		jitter[i] = src.LogNormal(0, 0.25)
		total += jitter[i]
	}
	for i := range sizes {
		v := avg * float64(n) * jitter[i] / total
		if v < 4<<10 {
			v = 4 << 10
		}
		sizes[i] = int64(v)
	}
	return sizes
}

// diurnalTimeOfDay samples a time-of-day offset following the Fig 1
// intensity profile for the given weekday.
func diurnalTimeOfDay(src *randx.Source, weekday time.Weekday) time.Duration {
	w := diurnalWeights
	if weekday == time.Saturday || weekday == time.Sunday {
		for h := 10; h <= 16; h++ {
			w[h] *= weekendMiddayBoost
		}
	}
	hour := src.Categorical(w[:])
	return time.Duration(hour)*time.Hour + time.Duration(src.Int63n(int64(time.Hour)))
}
