package workload

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// Config sizes a synthetic population. All statistical targets are
// per-user, so the emitted distributions are scale-free in Users.
type Config struct {
	// Users is the number of mobile users (mobile-only plus
	// mobile-and-PC, split per §2.2).
	Users int
	// PCOnlyUsers adds a PC-only population for the §3.2 comparisons;
	// the paper extracts >2 million PC users, roughly 2x its mobile
	// population. Zero is valid.
	PCOnlyUsers int
	// Seed makes the dataset reproducible.
	Seed uint64
	// Start anchors the observation window; zero means the paper's
	// week (2015-08-03, UTC+8).
	Start time.Time
	// Days is the window length; zero means 7.
	Days int
}

func (c Config) withDefaults() (Config, error) {
	if c.Users < 0 || c.PCOnlyUsers < 0 {
		return c, fmt.Errorf("workload: negative population")
	}
	if c.Users == 0 && c.PCOnlyUsers == 0 {
		return c, fmt.Errorf("workload: empty population")
	}
	if c.Start.IsZero() {
		c.Start = ObservationStart
	}
	if c.Days == 0 {
		c.Days = ObservationDays
	}
	if c.Days < 0 {
		return c, fmt.Errorf("workload: negative window")
	}
	return c, nil
}

// End returns the end of the observation window.
func (c Config) End() time.Time {
	cc, _ := c.withDefaults()
	return cc.Start.AddDate(0, 0, cc.Days)
}

// Generator produces the population and its log stream.
type Generator struct {
	cfg Config
}

// New returns a Generator for the given configuration.
func New(cfg Config) (*Generator, error) {
	cc, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Generator{cfg: cc}, nil
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// User materializes the static profile of user i (0 <= i <
// Users+PCOnlyUsers). Mobile users come first; their category is
// mobile-and-PC with probability MobileAndPCShare.
func (g *Generator) User(i int) *User {
	id := uint64(i) + 1
	if i >= g.cfg.Users {
		return sampleUser(g.cfg.Seed, id, PCOnly)
	}
	src := randx.Derive(g.cfg.Seed, fmt.Sprintf("usercat/%d", id))
	cat := MobileOnly
	if src.Bool(intendedMobileAndPCShare) {
		cat = MobileAndPC
	}
	return sampleUser(g.cfg.Seed, id, cat)
}

// Population returns the total number of users.
func (g *Generator) Population() int { return g.cfg.Users + g.cfg.PCOnlyUsers }

// userWeek generates the complete, time-ordered log slice of one user
// for the observation window.
func (g *Generator) userWeek(u *User) []trace.Log {
	src := randx.Derive(g.cfg.Seed, fmt.Sprintf("userweek/%d", u.ID))
	end := g.cfg.End()
	windowDays := g.cfg.Days

	// Expected sessions this week; the user's first session lands on a
	// uniformly chosen day (diurnal time-of-day), later sessions
	// follow inter-session gaps until churn or window end. Session
	// counts feel the activity skew only within a clamp — the skew's
	// full strength goes into batch sizes — and multi-device users run
	// more sessions (cross-device sync).
	si := u.Intensity
	if si < sessionIntensityFloor {
		si = sessionIntensityFloor
	}
	if si > sessionIntensityCeil {
		si = sessionIntensityCeil
	}
	target := meanSessions(u.Class) * si
	if len(u.Devices) > 1 {
		// Multi-terminal users (extra mobile devices or a PC) run more
		// sessions: cross-device synchronization (Fig 8).
		target *= multiDeviceSessionBoost
	}
	nominal := 1 + src.Poisson(target-1) // at least one session: all users are active
	if u.Class == Occasional {
		// Occasional users stay under their 1 MB weekly budget
		// (§3.2.1): one tiny session, no returns.
		nominal = 1
	}

	day := src.Intn(windowDays)
	start := g.cfg.Start.AddDate(0, 0, day)
	start = start.Add(diurnalTimeOfDay(src, start.Weekday()))

	var logs []trace.Log
	sessions := 0
	pendingPCSync := false
	usedPC := false
	for start.Before(end) && sessions < 4*nominal+8 {
		// A mobile+PC user who has not yet touched the PC runs the
		// second session from it — both installed clients get used,
		// so the log-based category identification (§2.2) sees them.
		forcePC := u.Category == MobileAndPC && sessions == 1 && !usedPC
		device, typ := g.pickSessionShape(src, u, pendingPCSync, forcePC)
		pendingPCSync = false
		if device.Type == trace.PC {
			usedPC = true
		}
		plan := planSession(src, u, device, typ, start)
		sess := plan.emit(src, u)
		logs = append(logs, sess...)
		sessions++

		// Mixed-class mobile+PC users sync fresh uploads from the PC
		// soon after storing (Fig 9 day-0 effect).
		if typ == StoreOnly && u.Class == Mixed && u.Category == MobileAndPC &&
			device.Type.Mobile() && src.Bool(pcSyncProb) {
			pendingPCSync = true
		}

		// Continue or churn.
		if sessions >= nominal && !pendingPCSync {
			break
		}
		if !pendingPCSync && src.Bool(u.Churn) {
			break
		}
		last := plan.end(sess)
		var gap time.Duration
		if pendingPCSync {
			gap = log10Normal(src, pcSyncDelayMeanLog10, pcSyncDelaySigmaLog10)
		} else {
			gap = log10Normal(src, interSessionGapMeanLog10, interSessionGapSigmaLog10)
			if gap < 2*time.Hour {
				gap = 2 * time.Hour
			}
		}
		start = last.Add(gap)
		if !pendingPCSync && gap > 12*time.Hour {
			// Long returns land at a diurnally plausible hour.
			dayStart := start.Truncate(24 * time.Hour)
			start = dayStart.Add(diurnalTimeOfDay(src, start.Weekday()))
			if !start.After(last) {
				start = last.Add(2 * time.Hour)
			}
		}
	}

	// Trim anything past the window (sessions near the boundary can
	// spill chunk requests over).
	trimmed := logs[:0]
	for _, l := range logs {
		if l.Time.Before(end) {
			trimmed = append(trimmed, l)
		}
	}
	logs = trimmed
	trace.SortByTime(logs)
	return logs
}

// pickSessionShape chooses the device and session type for the next
// session.
func (g *Generator) pickSessionShape(src *randx.Source, u *User, pcSync, forcePC bool) (Device, SessionType) {
	if pcSync {
		if pc, ok := u.PCDevice(); ok {
			return pc, RetrieveOnly
		}
	}
	// Device: uniformly among the user's devices, with the PC used for
	// a substantial share of a mobile+PC user's sessions.
	var device Device
	mobile := u.MobileDevices()
	pc, hasPC := u.PCDevice()
	switch {
	case len(mobile) == 0:
		device = pc
	case hasPC && (forcePC || src.Bool(pcSessionShare)):
		device = pc
	default:
		device = mobile[src.Intn(len(mobile))]
	}

	var typ SessionType
	switch u.Class {
	case UploadOnly:
		typ = StoreOnly
	case DownloadOnly:
		typ = RetrieveOnly
	case Occasional:
		if src.Bool(occasionalStoreShare) {
			typ = StoreOnly
		} else {
			typ = RetrieveOnly
		}
	default: // Mixed
		typ = SessionType(src.Categorical(mixedSessionWeights))
	}
	return device, typ
}

// userStream lazily yields one user's week.
type userStream struct {
	g    *Generator
	idx  int
	logs []trace.Log
	pos  int
}

func (s *userStream) prime() {
	if s.logs == nil {
		s.logs = s.g.userWeek(s.g.User(s.idx))
	}
}

func (s *userStream) Next() (trace.Log, bool) {
	s.prime()
	if s.pos >= len(s.logs) {
		return trace.Log{}, false
	}
	l := s.logs[s.pos]
	s.pos++
	return l, true
}

// peek returns the first timestamp without consuming, generating the
// user's week on first use.
func (s *userStream) peek() (time.Time, bool) {
	s.prime()
	if s.pos >= len(s.logs) {
		return time.Time{}, false
	}
	return s.logs[s.pos].Time, true
}

// Stream returns the population's merged, time-ordered log stream.
// Per-user weeks are generated on all cores up front (generation is
// per-user deterministic, so parallelism does not affect the output),
// then merged with a k-way heap. Memory holds every user's week at
// once; for very large populations prefer GenerateTo with sharding.
func (g *Generator) Stream() trace.Stream {
	users := make([]*userStream, g.Population())
	streams := make([]trace.Stream, g.Population())
	for i := range streams {
		users[i] = &userStream{g: g, idx: i}
		streams[i] = users[i]
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && g.Population() > 64 {
		var wg sync.WaitGroup
		next := int64(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(users) {
						return
					}
					users[i].prime()
				}
			}()
		}
		wg.Wait()
	}
	return trace.NewMerge(streams...)
}

// Generate materializes the full dataset in memory (tests,
// small-scale runs).
func (g *Generator) Generate() []trace.Log {
	return trace.Drain(g.Stream())
}

// GenerateTo streams the dataset to w in the trace text format and
// returns the number of records written.
func (g *Generator) GenerateTo(w io.Writer) (int64, error) {
	tw := trace.NewWriter(w)
	s := g.Stream()
	for {
		l, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(l); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
