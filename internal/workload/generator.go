package workload

import (
	"fmt"
	"io"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// Config sizes a synthetic population. All statistical targets are
// per-user, so the emitted distributions are scale-free in Users.
type Config struct {
	// Users is the number of mobile users (mobile-only plus
	// mobile-and-PC, split per §2.2).
	Users int
	// PCOnlyUsers adds a PC-only population for the §3.2 comparisons;
	// the paper extracts >2 million PC users, roughly 2x its mobile
	// population. Zero is valid.
	PCOnlyUsers int
	// Seed makes the dataset reproducible.
	Seed uint64
	// Start anchors the observation window; zero means the paper's
	// week (2015-08-03, UTC+8).
	Start time.Time
	// Days is the window length; zero means 7.
	Days int
}

func (c Config) withDefaults() (Config, error) {
	if c.Users < 0 || c.PCOnlyUsers < 0 {
		return c, fmt.Errorf("workload: negative population")
	}
	if c.Users == 0 && c.PCOnlyUsers == 0 {
		return c, fmt.Errorf("workload: empty population")
	}
	if c.Start.IsZero() {
		c.Start = ObservationStart
	}
	if c.Days == 0 {
		c.Days = ObservationDays
	}
	if c.Days < 0 {
		return c, fmt.Errorf("workload: negative window")
	}
	return c, nil
}

// End returns the end of the observation window.
func (c Config) End() time.Time {
	cc, _ := c.withDefaults()
	return cc.Start.AddDate(0, 0, cc.Days)
}

// Generator produces the population and its log stream.
type Generator struct {
	cfg Config
}

// New returns a Generator for the given configuration.
func New(cfg Config) (*Generator, error) {
	cc, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Generator{cfg: cc}, nil
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// User materializes the static profile of user i (0 <= i <
// Users+PCOnlyUsers). Mobile users come first; their category is
// mobile-and-PC with probability MobileAndPCShare.
func (g *Generator) User(i int) *User {
	id := uint64(i) + 1
	if i >= g.cfg.Users {
		return sampleUser(g.cfg.Seed, id, PCOnly)
	}
	src := randx.Derive(g.cfg.Seed, fmt.Sprintf("usercat/%d", id))
	cat := MobileOnly
	if src.Bool(intendedMobileAndPCShare) {
		cat = MobileAndPC
	}
	return sampleUser(g.cfg.Seed, id, cat)
}

// Population returns the total number of users.
func (g *Generator) Population() int { return g.cfg.Users + g.cfg.PCOnlyUsers }

// weekPrefix performs the draws that precede session emission on src
// and returns the nominal session count and the first session's start
// time. userWeek continues on the same source, so splitting the
// prefix out cannot change the generated stream; firstLogTime uses
// the prefix alone to learn a user's first record time at a fraction
// of the cost of generating the week.
func (g *Generator) weekPrefix(u *User, src *randx.Source) (nominal int, start time.Time) {
	// Expected sessions this week; the user's first session lands on a
	// uniformly chosen day (diurnal time-of-day), later sessions
	// follow inter-session gaps until churn or window end. Session
	// counts feel the activity skew only within a clamp — the skew's
	// full strength goes into batch sizes — and multi-device users run
	// more sessions (cross-device sync).
	si := u.Intensity
	if si < sessionIntensityFloor {
		si = sessionIntensityFloor
	}
	if si > sessionIntensityCeil {
		si = sessionIntensityCeil
	}
	target := meanSessions(u.Class) * si
	if len(u.Devices) > 1 {
		// Multi-terminal users (extra mobile devices or a PC) run more
		// sessions: cross-device synchronization (Fig 8).
		target *= multiDeviceSessionBoost
	}
	nominal = 1 + src.Poisson(target-1) // at least one session: all users are active
	if u.Class == Occasional {
		// Occasional users stay under their 1 MB weekly budget
		// (§3.2.1): one tiny session, no returns.
		nominal = 1
	}

	day := src.Intn(g.cfg.Days)
	start = g.cfg.Start.AddDate(0, 0, day)
	start = start.Add(diurnalTimeOfDay(src, start.Weekday()))
	return nominal, start
}

// firstLogTime returns the timestamp of user i's first log record
// without generating the week: a session's first file-operation log
// is emitted exactly at the session start (see planSession), and
// later sessions only move forward in time, so the first session's
// start is the first record's time.
func (g *Generator) firstLogTime(i int) time.Time {
	u := g.User(i)
	src := randx.Derive(g.cfg.Seed, fmt.Sprintf("userweek/%d", u.ID))
	_, start := g.weekPrefix(u, src)
	return start
}

// userWeek generates the complete, time-ordered log slice of one user
// for the observation window.
func (g *Generator) userWeek(u *User) []trace.Log {
	src := randx.Derive(g.cfg.Seed, fmt.Sprintf("userweek/%d", u.ID))
	end := g.cfg.End()
	nominal, start := g.weekPrefix(u, src)

	var logs []trace.Log
	sessions := 0
	pendingPCSync := false
	usedPC := false
	for start.Before(end) && sessions < 4*nominal+8 {
		// A mobile+PC user who has not yet touched the PC runs the
		// second session from it — both installed clients get used,
		// so the log-based category identification (§2.2) sees them.
		forcePC := u.Category == MobileAndPC && sessions == 1 && !usedPC
		device, typ := g.pickSessionShape(src, u, pendingPCSync, forcePC)
		pendingPCSync = false
		if device.Type == trace.PC {
			usedPC = true
		}
		plan := planSession(src, u, device, typ, start)
		sess := plan.emit(src, u)
		logs = append(logs, sess...)
		sessions++

		// Mixed-class mobile+PC users sync fresh uploads from the PC
		// soon after storing (Fig 9 day-0 effect).
		if typ == StoreOnly && u.Class == Mixed && u.Category == MobileAndPC &&
			device.Type.Mobile() && src.Bool(pcSyncProb) {
			pendingPCSync = true
		}

		// Continue or churn.
		if sessions >= nominal && !pendingPCSync {
			break
		}
		if !pendingPCSync && src.Bool(u.Churn) {
			break
		}
		last := plan.end(sess)
		var gap time.Duration
		if pendingPCSync {
			gap = log10Normal(src, pcSyncDelayMeanLog10, pcSyncDelaySigmaLog10)
		} else {
			gap = log10Normal(src, interSessionGapMeanLog10, interSessionGapSigmaLog10)
			if gap < 2*time.Hour {
				gap = 2 * time.Hour
			}
		}
		start = last.Add(gap)
		if !pendingPCSync && gap > 12*time.Hour {
			// Long returns land at a diurnally plausible hour.
			dayStart := start.Truncate(24 * time.Hour)
			start = dayStart.Add(diurnalTimeOfDay(src, start.Weekday()))
			if !start.After(last) {
				start = last.Add(2 * time.Hour)
			}
		}
	}

	// Trim anything past the window (sessions near the boundary can
	// spill chunk requests over).
	trimmed := logs[:0]
	for _, l := range logs {
		if l.Time.Before(end) {
			trimmed = append(trimmed, l)
		}
	}
	logs = trimmed
	trace.SortByTime(logs)
	return logs
}

// pickSessionShape chooses the device and session type for the next
// session.
func (g *Generator) pickSessionShape(src *randx.Source, u *User, pcSync, forcePC bool) (Device, SessionType) {
	if pcSync {
		if pc, ok := u.PCDevice(); ok {
			return pc, RetrieveOnly
		}
	}
	// Device: uniformly among the user's devices, with the PC used for
	// a substantial share of a mobile+PC user's sessions.
	var device Device
	mobile := u.MobileDevices()
	pc, hasPC := u.PCDevice()
	switch {
	case len(mobile) == 0:
		device = pc
	case hasPC && (forcePC || src.Bool(pcSessionShare)):
		device = pc
	default:
		device = mobile[src.Intn(len(mobile))]
	}

	var typ SessionType
	switch u.Class {
	case UploadOnly:
		typ = StoreOnly
	case DownloadOnly:
		typ = RetrieveOnly
	case Occasional:
		if src.Bool(occasionalStoreShare) {
			typ = StoreOnly
		} else {
			typ = RetrieveOnly
		}
	default: // Mixed
		typ = SessionType(src.Categorical(mixedSessionWeights))
	}
	return device, typ
}

// Stream returns the population's merged, time-ordered log stream
// with default (per-core) generation parallelism; see StreamP for the
// mechanics and memory bound.
func (g *Generator) Stream() trace.Stream { return g.StreamP(0) }

// Generate materializes the full dataset in memory (tests,
// small-scale runs).
func (g *Generator) Generate() []trace.Log {
	return trace.Drain(g.Stream())
}

// GenerateTo streams the dataset to w in the trace text format and
// returns the number of records written.
func (g *Generator) GenerateTo(w io.Writer) (int64, error) {
	tw := trace.NewWriter(w)
	s := g.Stream()
	for {
		l, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(l); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
