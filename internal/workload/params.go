// Package workload generates a synthetic log stream with the
// statistical structure the paper reports for its proprietary
// dataset: per-user session processes, session class mix, file-size
// mixtures, burst-issued file operations, diurnal load, device mix,
// engagement bimodality and stretched-exponential activity skew.
//
// The generator substitutes for the paper's 349 M-entry dataset (the
// original public release is gone): it emits records with exactly the
// Table 1 schema, at any population scale, deterministically from a
// seed. Every constant in params.go cites the paper section it is
// calibrated against.
package workload

import (
	"time"

	"mcloud/internal/trace"
)

// ObservationStart anchors the simulated week: the paper's data is
// "one week in August 2015" from a service whose users are
// predominantly in China (UTC+8). Monday 2015-08-03 00:00 CST.
var ObservationStart = time.Date(2015, 8, 3, 0, 0, 0, 0, time.FixedZone("CST", 8*3600))

// ObservationDays is the paper's observation window length.
const ObservationDays = 7

// Device population (§2.2): 78.4 % of accesses from Android, the rest
// iOS.
const AndroidShare = 0.784

// Fraction of mobile users that also use a PC client (§2.2: 164,764
// of 1,148,640). This is an observed statistic: the paper identifies
// the category from the complete logs, so a user only counts once both
// device kinds appear within the week.
const MobileAndPCShare = 0.143

// intendedMobileAndPCShare is the generator-side share of users who
// own both clients. Single-session users and window truncation hide
// the PC from the logs for a sizeable minority, so intent runs above
// the observed 14.3 % target.
const intendedMobileAndPCShare = 0.25

// Devices per mobile user (§2.2: 1,396,494 devices for 1,148,640
// users, mean ≈ 1.22). Multi-device ownership correlates with usage
// class — users who sync across terminals skew mixed/download-heavy —
// which is what makes multi-device users less storage-dominant in
// Fig 7b. Occasional users own a single device (casual use).
func multiDeviceProb(class UserClass) float64 {
	switch class {
	case UploadOnly:
		return 0.17
	case DownloadOnly:
		return 0.25
	case Occasional:
		return 0
	default: // Mixed
		return 0.65
	}
}

// extraDeviceWeights splits multi-device users into 2/3/4 terminals.
var extraDeviceWeights = []float64{0.70, 0.20, 0.10}

// UserClass is the paper's four-way usage classification (§3.2.1,
// Table 3).
type UserClass uint8

// User classes per Table 3.
const (
	UploadOnly UserClass = iota
	DownloadOnly
	Occasional
	Mixed
)

var userClassNames = [...]string{"upload-only", "download-only", "occasional", "mixed"}

func (c UserClass) String() string { return userClassNames[c] }

// Population category: which clients a user owns.
type Category uint8

// Categories of users by client ownership (§3.2).
const (
	MobileOnly Category = iota
	MobileAndPC
	PCOnly
)

var categoryNames = [...]string{"mobile-only", "mobile-and-pc", "pc-only"}

func (c Category) String() string { return categoryNames[c] }

// classMix returns the intended user-class weights per category
// (order: upload-only, download-only, occasional, mixed). The weights
// are calibrated so that the paper's volume-based classification
// (§3.2.1: occasional = total volume < 1 MB; upload-only = ratio >
// 1e5; …) applied to the generated week reproduces Table 3: a slice
// of single-session uploaders and downloaders whose one file stays
// under 1 MB classifies as occasional, so the intended occasional
// share sits below the observed 23.9 %.
func classMix(c Category) []float64 {
	switch c {
	case MobileOnly:
		return []float64{0.565, 0.195, 0.155, 0.085}
	case MobileAndPC:
		// Calibrated against the *observed* grouping the analysis (and
		// the paper) applies: a user counts as mobile-and-pc only if
		// both device kinds appear in the logs. Low-activity
		// upload-only users often show just their phone, which
		// concentrates mixed-class users in the observed group; the
		// intent weights compensate.
		return []float64{0.600, 0.145, 0.065, 0.190}
	default: // PCOnly
		return []float64{0.350, 0.190, 0.260, 0.200}
	}
}

// Mean sessions per week by user class, calibrated so the aggregate
// session-class mix reproduces §3.1.1 (68.2 % store-only, 29.9 %
// retrieve-only, ~2 % mixed over 2.07 sessions/user/week).
func meanSessions(class UserClass) float64 {
	switch class {
	case UploadOnly:
		return 2.3
	case DownloadOnly:
		return 2.6
	case Occasional:
		return 1.15
	default: // Mixed
		return 3.0
	}
}

// Session type split for Mixed-class users (others are single-typed).
// Store-heavy to keep the aggregate at the §3.1.1 proportions.
var mixedSessionWeights = []float64{0.35, 0.40, 0.25} // store-only, retrieve-only, mixed

// Fraction of occasional users whose single tiny session stores
// rather than retrieves.
const occasionalStoreShare = 0.70

// File-size mixtures (Table 2), in MB. α weights sessions; µ is the
// per-session mean file size of an exponential component.
var (
	StoreSizeAlphas    = []float64{0.91, 0.07, 0.02}
	StoreSizeMus       = []float64{1.5, 13.1, 77.4} // MB
	RetrieveSizeAlphas = []float64{0.46, 0.26, 0.28}
	RetrieveSizeMus    = []float64{1.6, 29.8, 146.8} // MB
)

// Inter-operation time model (Fig 3): base-10 log-normal components.
// In-session gaps are seconds-scale — batch sessions are app-paced
// (~1 s between operation requests), user-paced sessions mix quick
// successive selections (~2 s) with occasional mid-transfer operations
// (~1 min) — which both reproduces the Fig 4 burstiness (operations
// issued at the session head, then a long transfer tail) and leaves
// the histogram valley between the in-session mass and the ~1-day
// inter-session component near the paper's τ = 1 h.
const (
	// Quick user-paced gap, log10 seconds.
	quickGapMeanLog10  = 0.50 // ~3 s median
	quickGapSigmaLog10 = 0.50
	// Mid-transfer user-paced gap, log10 seconds.
	slowGapMeanLog10  = 1.75 // ~56 s median
	slowGapSigmaLog10 = 0.50
	// Probability that a user-paced gap is quick rather than slow.
	quickGapShare = 0.75
	// Probability that a small multi-file session was multi-selected
	// in the app (operations app-paced) rather than picked one by one.
	multiSelectShare = 0.80
	// Inter-session gap, log10 seconds: mean ≈ 1 day.
	interSessionGapMeanLog10  = 4.94 // ≈ 87 000 s
	interSessionGapSigmaLog10 = 0.55
	// Sessions with more than this many operations are batch-issued.
	batchThreshold = 5
)

// batchGap returns the log10-space parameters of the app-paced gap
// between operation requests: the more files selected at once, the
// faster the app fires their metadata requests (Fig 4: sessions with
// more than 20 operations issue everything within 3 % of the session).
func batchGap(n int) (meanLog10, sigmaLog10 float64) {
	switch {
	case n > 20:
		return -0.90, 0.30 // ~0.13 s
	case n > batchThreshold:
		return -0.50, 0.35 // ~0.32 s
	default:
		return -0.30, 0.40 // ~0.5 s
	}
}

// SessionGapCeiling truncates in-session gaps below the session
// threshold so generated sessions never straddle the τ = 1 h cut.
const sessionGapCeiling = 45 * time.Minute

// Churn: probability that a user abandons the service after each
// session, by stratum. Calibrated to Fig 8: about half of one-device
// mobile users never return within the week, under 20 % for
// multi-device users, lowest for mobile+PC users.
func churnProb(cat Category, devices int) float64 {
	switch {
	case cat == MobileAndPC:
		return 0.05
	case cat == PCOnly:
		return 0.28
	case devices > 1:
		return 0.08
	default:
		return 0.30
	}
}

// Multi-device users run more sessions (cross-device synchronization,
// Fig 8): their session target is boosted by this factor.
const multiDeviceSessionBoost = 1.8

// Session-count intensity clamp: the stretched-exponential activity
// multiplier drives batch sizes at full strength, but session counts
// only within this band, so the median user still has the ~2
// sessions/week the paper's session totals imply.
const (
	sessionIntensityFloor = 1.0
	sessionIntensityCeil  = 3.0
)

// Share of a mobile+PC user's sessions run from the PC client. High
// enough that most such users show both device kinds within the week
// (the analysis identifies the category from the logs, as the paper
// did).
const pcSessionShare = 0.42

// PC-sync behaviour (Fig 9): mixed-class mobile+PC users follow a
// store session with a same-day PC retrieval with this probability.
const pcSyncProb = 0.45

// pcSyncDelay is the gap before the synced PC retrieval session.
const (
	pcSyncDelayMeanLog10  = 3.6 // ~ 1.1 h
	pcSyncDelaySigmaLog10 = 0.4
)

// Activity skew (Fig 10): a per-user intensity multiplier drawn from a
// Weibull distribution (stretched-exponential tail) scales both
// session counts and batch sizes, producing the SE-distributed
// per-user file counts with c ≈ 0.2 for storage and a more skewed
// c ≈ 0.15 for retrieval.
const (
	intensityShapeStore    = 0.33
	intensityShapeRetrieve = 0.42
)

// Diurnal profile (Fig 1): relative session-arrival intensity by local
// hour. Clear trough before dawn and a sharp surge around 23:00, when
// users are at home on WiFi.
var diurnalWeights = [24]float64{
	1.0, 0.55, 0.35, 0.25, 0.22, 0.25, 0.40, 0.60, // 00-07
	0.85, 1.00, 1.05, 1.10, 1.15, 1.10, 1.05, 1.05, // 08-15
	1.10, 1.20, 1.35, 1.55, 1.90, 2.40, 3.00, 2.60, // 16-23
}

// Weekend multiplier applied to midday hours (Sat/Sun).
const weekendMiddayBoost = 1.15

// Network path model (Fig 14): per-connection average RTT, lognormal
// with ~100 ms median and a heavy tail.
const (
	rttMedian = 100 * time.Millisecond
	rttSigma  = 0.70
	rttFloor  = 8 * time.Millisecond
	rttCeil   = 30 * time.Second
)

// Fraction of requests relayed via HTTP proxies (filtered out by the
// §4 analysis).
const proxiedShare = 0.09

// Server-side processing time Tsrv (Fig 16): ~100 ms regardless of
// device and direction.
const (
	tsrvMedian = 100 * time.Millisecond
	tsrvSigma  = 0.45
)

// Chunk transfer-time model (Fig 12): user-perceived time to move one
// 512 KB chunk, ttran = Tchunk − Tsrv, lognormal by device and
// direction. Medians from Fig 12 (uploads: 4.1 s Android vs 1.6 s
// iOS); downloads are faster and closer together.
type chunkTimeParams struct {
	median time.Duration
	sigma  float64
}

func chunkTime(dev trace.DeviceType, store bool) chunkTimeParams {
	switch {
	case store && dev == trace.Android:
		return chunkTimeParams{4100 * time.Millisecond, 0.75}
	case store && dev == trace.IOS:
		return chunkTimeParams{1600 * time.Millisecond, 0.70}
	case store: // PC upload
		return chunkTimeParams{1200 * time.Millisecond, 0.60}
	case dev == trace.Android:
		return chunkTimeParams{1900 * time.Millisecond, 0.80}
	case dev == trace.IOS:
		return chunkTimeParams{1300 * time.Millisecond, 0.65}
	default: // PC download
		return chunkTimeParams{900 * time.Millisecond, 0.55}
	}
}

// Files-per-session model (Fig 5a): component-1 ("photo") sessions
// carry batches with a heavy tail; large-file components carry a few
// files. Aggregate: ~40 % single-operation sessions, ~10 % above 20.
type opCountBucket struct {
	prob   float64
	lo, hi int // inclusive range, log-uniform-ish within
}

func opCountBuckets(store bool, component int) []opCountBucket {
	if component > 0 {
		// Video-scale files: nobody bulk-transfers dozens of them.
		return []opCountBucket{{0.55, 1, 1}, {0.30, 2, 2}, {0.15, 3, 4}}
	}
	if store {
		return []opCountBucket{
			{0.33, 1, 1}, {0.33, 2, 5}, {0.20, 6, 20}, {0.14, 21, 120},
		}
	}
	// Photo-scale retrievals are commonly whole-directory syncs to a
	// new device, so their batches run larger; this is what makes the
	// per-file retrieval size land far below the per-session average
	// (§2.4: stored files outnumber retrieved 2:1 while retrieval
	// carries more volume).
	return []opCountBucket{
		{0.40, 1, 1}, {0.18, 2, 5}, {0.20, 6, 30}, {0.22, 31, 150},
	}
}

// Occasional users move a single tiny file (< 1 MB total, §3.2.1),
// drawn from the truncated photo component, capped at this budget.
const occasionalMaxBytes = 900 << 10

// ChunkSize is the service's transfer unit (§2.1).
const ChunkSize int64 = 512 << 10
