package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary codec: a compact varint encoding of the log record for
// full-scale datasets (the paper's trace has 349 M records; the text
// format costs ~90 bytes/record, the binary one ~25). Records are
// delta-encoded on the timestamp, which is nearly monotone in a
// generated stream, so the common case is a small varint.
//
// Layout per record (all varints unless noted):
//
//	delta   timestamp delta in ns (zigzag, relative to previous record)
//	flags   byte: bits 0-1 device, bits 2-3 request type, bit 4 proxied
//	devID   uvarint
//	userID  uvarint
//	bytes   uvarint
//	proc    uvarint (ns)
//	server  uvarint (ns)
//	rtt     uvarint (ns)

// binaryMagic opens a binary stream, so readers can reject text input.
var binaryMagic = [4]byte{'m', 'c', 'l', '1'}

// BinaryWriter encodes logs in the binary format.
type BinaryWriter struct {
	bw     *bufio.Writer
	buf    []byte
	prevNS int64
	n      int64
	opened bool
}

// NewBinaryWriter returns a BinaryWriter on w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

// Write emits one record.
func (w *BinaryWriter) Write(l Log) error {
	if !w.opened {
		if _, err := w.bw.Write(binaryMagic[:]); err != nil {
			return err
		}
		w.opened = true
	}
	ns := l.Time.UnixNano()
	delta := ns - w.prevNS
	w.prevNS = ns

	flags := byte(l.Device)&0x3 | (byte(l.Type)&0x3)<<2
	if l.Proxied {
		flags |= 1 << 4
	}

	b := w.buf[:0]
	b = binary.AppendVarint(b, delta)
	b = append(b, flags)
	b = binary.AppendUvarint(b, l.DeviceID)
	b = binary.AppendUvarint(b, l.UserID)
	b = binary.AppendUvarint(b, uint64(l.Bytes))
	b = binary.AppendUvarint(b, uint64(l.Proc))
	b = binary.AppendUvarint(b, uint64(l.Server))
	b = binary.AppendUvarint(b, uint64(l.RTT))
	w.buf = b
	w.n++
	_, err := w.bw.Write(b)
	return err
}

// Count returns the number of records written.
func (w *BinaryWriter) Count() int64 { return w.n }

// Flush flushes buffered output.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// BinaryReader decodes the binary format.
type BinaryReader struct {
	br     *bufio.Reader
	prevNS int64
	opened bool
}

// NewBinaryReader returns a BinaryReader on r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF at end of stream.
func (r *BinaryReader) Read() (Log, error) {
	if !r.opened {
		var magic [4]byte
		if _, err := io.ReadFull(r.br, magic[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Log{}, io.EOF
			}
			return Log{}, err
		}
		if magic != binaryMagic {
			return Log{}, fmt.Errorf("trace: not a binary log stream (magic %q)", magic[:])
		}
		r.opened = true
	}

	delta, err := binary.ReadVarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Log{}, io.EOF
		}
		return Log{}, err
	}
	flags, err := r.br.ReadByte()
	if err != nil {
		return Log{}, unexpectedEOF(err)
	}
	var l Log
	r.prevNS += delta
	l.Time = time.Unix(0, r.prevNS).UTC()
	l.Device = DeviceType(flags & 0x3)
	l.Type = ReqType((flags >> 2) & 0x3)
	l.Proxied = flags&(1<<4) != 0
	if l.Device > PC {
		return Log{}, fmt.Errorf("trace: invalid device in flags %#x", flags)
	}

	fields := []*uint64{&l.DeviceID, &l.UserID}
	for _, f := range fields {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Log{}, unexpectedEOF(err)
		}
		*f = v
	}
	ints := []*int64{&l.Bytes}
	for _, f := range ints {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Log{}, unexpectedEOF(err)
		}
		*f = int64(v)
	}
	durs := []*time.Duration{&l.Proc, &l.Server, &l.RTT}
	for _, d := range durs {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Log{}, unexpectedEOF(err)
		}
		*d = time.Duration(v)
	}
	return l, nil
}

// unexpectedEOF maps a mid-record EOF to ErrUnexpectedEOF so a
// truncated file is distinguishable from a clean end of stream.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteAllBinary writes all entries in the binary format and flushes.
func WriteAllBinary(w io.Writer, logs []Log) error {
	bw := NewBinaryWriter(w)
	for _, l := range logs {
		if err := bw.Write(l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAllBinary slurps a binary stream.
func ReadAllBinary(r io.Reader) ([]Log, error) {
	br := NewBinaryReader(r)
	var out []Log
	for {
		l, err := br.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, l)
	}
}
