package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mcloud/internal/randx"
)

func TestBinaryRoundTripSingle(t *testing.T) {
	l := sampleLog()
	l.Proxied = true
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, []Log{l}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], l) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, l)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		src := randx.New(seed)
		logs := make([]Log, int(n%40)+1)
		for i := range logs {
			logs[i] = randomLog(src)
		}
		var buf bytes.Buffer
		if err := WriteAllBinary(&buf, logs); err != nil {
			return false
		}
		got, err := ReadAllBinary(&buf)
		return err == nil && reflect.DeepEqual(got, logs)
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBinaryTimestampDeltas(t *testing.T) {
	// Out-of-order timestamps (negative deltas) must survive.
	src := randx.New(21)
	a := randomLog(src)
	b := a
	b.Time = a.Time.Add(-3 * 1e9) // 3 s earlier
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, []Log{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].Time.Equal(b.Time) {
		t.Errorf("negative delta decoded to %v, want %v", got[1].Time, b.Time)
	}
}

func TestBinaryCompactness(t *testing.T) {
	src := randx.New(22)
	logs := make([]Log, 2000)
	for i := range logs {
		logs[i] = randomLog(src)
	}
	SortByTime(logs)
	var text, bin bytes.Buffer
	if err := WriteAll(&text, logs); err != nil {
		t.Fatal(err)
	}
	if err := WriteAllBinary(&bin, logs); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(text.Len())
	if ratio > 0.55 {
		t.Errorf("binary format only %.0f%% smaller than text (%d vs %d bytes)",
			100*(1-ratio), bin.Len(), text.Len())
	}
}

func TestBinaryRejectsTextInput(t *testing.T) {
	l := sampleLog()
	text := string(l.AppendText(nil))
	if _, err := ReadAllBinary(strings.NewReader(text)); err == nil {
		t.Error("text stream accepted as binary")
	}
}

func TestBinaryTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, []Log{sampleLog(), sampleLog()}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	_, err := ReadAllBinary(bytes.NewReader(cut))
	if err == nil {
		t.Error("truncated stream read without error")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	got, err := ReadAllBinary(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %d records", err, len(got))
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	src := randx.New(23)
	logs := make([]Log, 1000)
	for i := range logs {
		logs[i] = randomLog(src)
	}
	SortByTime(logs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteAllBinary(&buf, logs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	src := randx.New(24)
	logs := make([]Log, 1000)
	for i := range logs {
		logs[i] = randomLog(src)
	}
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, logs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAllBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
