// Package trace defines the HTTP request log record produced by the
// storage front-end servers — the exact schema of Table 1 in the paper
// — together with a compact streaming text codec, filters, and
// time-ordered merging.
//
// A log entry is written for every file operation request (the request
// that opens a file store or retrieve and carries the file metadata)
// and for every chunk request (the transfer of one 512 KB chunk).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// DeviceType identifies the client platform.
type DeviceType uint8

// Device types. The paper's mobile dataset contains Android and iOS;
// PC covers the desktop-client logs used in §3.2.
const (
	Android DeviceType = iota
	IOS
	PC
)

var deviceNames = [...]string{"android", "ios", "pc"}

func (d DeviceType) String() string {
	if int(d) < len(deviceNames) {
		return deviceNames[d]
	}
	return fmt.Sprintf("device(%d)", uint8(d))
}

// Mobile reports whether the device is a mobile terminal.
func (d DeviceType) Mobile() bool { return d == Android || d == IOS }

// ParseDeviceType parses the textual device type.
func ParseDeviceType(s string) (DeviceType, error) {
	for i, n := range deviceNames {
		if s == n {
			return DeviceType(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown device type %q", s)
}

// ReqType identifies the request: file operation vs chunk request,
// crossed with transfer direction.
type ReqType uint8

// Request types, following the paper's terminology: a "file operation"
// opens a store or retrieve of one file; a "chunk request" moves one
// chunk.
const (
	FileStore ReqType = iota
	FileRetrieve
	ChunkStore
	ChunkRetrieve
)

var reqNames = [...]string{"file-store", "file-retrieve", "chunk-store", "chunk-retrieve"}

func (r ReqType) String() string {
	if int(r) < len(reqNames) {
		return reqNames[r]
	}
	return fmt.Sprintf("req(%d)", uint8(r))
}

// ParseReqType parses the textual request type.
func ParseReqType(s string) (ReqType, error) {
	for i, n := range reqNames {
		if s == n {
			return ReqType(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown request type %q", s)
}

// FileOp reports whether the request is a file operation (the begin of
// a store/retrieve), as opposed to a chunk transfer.
func (r ReqType) FileOp() bool { return r == FileStore || r == FileRetrieve }

// Chunk reports whether the request is a chunk transfer.
func (r ReqType) Chunk() bool { return r == ChunkStore || r == ChunkRetrieve }

// Store reports whether the request belongs to an upload.
func (r ReqType) Store() bool { return r == FileStore || r == ChunkStore }

// Retrieve reports whether the request belongs to a download.
func (r ReqType) Retrieve() bool { return r == FileRetrieve || r == ChunkRetrieve }

// Log is one HTTP request log entry with the fields of Table 1 plus
// the upstream processing time used by the §4 performance analysis.
type Log struct {
	Time     time.Time     // request timestamp
	Device   DeviceType    // android / ios / pc
	DeviceID uint64        // anonymized device identifier
	UserID   uint64        // anonymized account identifier
	Type     ReqType       // file operation or chunk request × direction
	Bytes    int64         // data volume moved by a chunk request
	Proc     time.Duration // Tchunk: first byte in to last byte out at the front-end
	Server   time.Duration // Tsrv: upstream storage-server processing time
	RTT      time.Duration // average RTT of the carrying TCP connection
	Proxied  bool          // via HTTP proxy (X-FORWARDED-FOR present)
}

// TransferTime returns the paper's ttran = Tchunk - Tsrv, the
// user-perceived chunk transfer time. It is never negative.
func (l Log) TransferTime() time.Duration {
	t := l.Proc - l.Server
	if t < 0 {
		return 0
	}
	return t
}

// fieldCount is the number of tab-separated fields in the text format.
const fieldCount = 10

// lineSizeHint is an upper bound on one encoded entry: six 20-digit
// numerics, two enum names, tabs and the flag. Growing dst once up
// front keeps AppendText to at most a single allocation.
const lineSizeHint = 160

// AppendText appends the log entry to dst in the tab-separated text
// format: unix-nanos, device, deviceID, userID, reqtype, bytes,
// proc-ns, server-ns, rtt-ns, proxied.
func (l Log) AppendText(dst []byte) []byte {
	if cap(dst)-len(dst) < lineSizeHint {
		grown := make([]byte, len(dst), cap(dst)+lineSizeHint)
		copy(grown, dst)
		dst = grown
	}
	dst = strconv.AppendInt(dst, l.Time.UnixNano(), 10)
	dst = append(dst, '\t')
	dst = append(dst, l.Device.String()...)
	dst = append(dst, '\t')
	dst = strconv.AppendUint(dst, l.DeviceID, 10)
	dst = append(dst, '\t')
	dst = strconv.AppendUint(dst, l.UserID, 10)
	dst = append(dst, '\t')
	dst = append(dst, l.Type.String()...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, l.Bytes, 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(l.Proc), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(l.Server), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(l.RTT), 10)
	dst = append(dst, '\t')
	if l.Proxied {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	dst = append(dst, '\n')
	return dst
}

// ParseLine parses one text-format line (without requiring the
// trailing newline).
func ParseLine(line string) (Log, error) {
	line = strings.TrimSuffix(line, "\n")
	// Cut the fields into a stack-resident array rather than
	// strings.Split: the Reader calls this once per record, and the
	// per-line []string header + backing array dominated its garbage.
	var fields [fieldCount]string
	rest := line
	for i := 0; i < fieldCount-1; i++ {
		j := strings.IndexByte(rest, '\t')
		if j < 0 {
			return Log{}, fmt.Errorf("trace: %d fields, want %d", i+1, fieldCount)
		}
		fields[i] = rest[:j]
		rest = rest[j+1:]
	}
	if strings.IndexByte(rest, '\t') >= 0 {
		return Log{}, fmt.Errorf("trace: %d fields, want %d",
			fieldCount+strings.Count(rest, "\t"), fieldCount)
	}
	fields[fieldCount-1] = rest
	var l Log
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Log{}, fmt.Errorf("trace: bad timestamp: %v", err)
	}
	l.Time = time.Unix(0, ns).UTC()
	if l.Device, err = ParseDeviceType(fields[1]); err != nil {
		return Log{}, err
	}
	if l.DeviceID, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
		return Log{}, fmt.Errorf("trace: bad device id: %v", err)
	}
	if l.UserID, err = strconv.ParseUint(fields[3], 10, 64); err != nil {
		return Log{}, fmt.Errorf("trace: bad user id: %v", err)
	}
	if l.Type, err = ParseReqType(fields[4]); err != nil {
		return Log{}, err
	}
	if l.Bytes, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return Log{}, fmt.Errorf("trace: bad byte count: %v", err)
	}
	proc, err := strconv.ParseInt(fields[6], 10, 64)
	if err != nil {
		return Log{}, fmt.Errorf("trace: bad processing time: %v", err)
	}
	l.Proc = time.Duration(proc)
	srv, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return Log{}, fmt.Errorf("trace: bad server time: %v", err)
	}
	l.Server = time.Duration(srv)
	rtt, err := strconv.ParseInt(fields[8], 10, 64)
	if err != nil {
		return Log{}, fmt.Errorf("trace: bad rtt: %v", err)
	}
	l.RTT = time.Duration(rtt)
	switch fields[9] {
	case "0":
		l.Proxied = false
	case "1":
		l.Proxied = true
	default:
		return Log{}, fmt.Errorf("trace: bad proxied flag %q", fields[9])
	}
	return l, nil
}

// Writer writes log entries in the text format, buffered.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
	n   int64
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one log entry.
func (w *Writer) Write(l Log) error {
	w.buf = l.AppendText(w.buf[:0])
	w.n++
	_, err := w.bw.Write(w.buf)
	return err
}

// Count returns the number of entries written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader reads log entries from the text format.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next entry, or io.EOF at end of stream.
func (r *Reader) Read() (Log, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return Log{}, err
		}
		return Log{}, io.EOF
	}
	r.line++
	l, err := ParseLine(r.sc.Text())
	if err != nil {
		return Log{}, fmt.Errorf("line %d: %w", r.line, err)
	}
	return l, nil
}

// ForEach streams every entry from r to fn, stopping on the first
// error. fn may return ErrStop to end iteration early without error.
func ForEach(r io.Reader, fn func(Log) error) error {
	tr := NewReader(r)
	for {
		l, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(l); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// ErrStop signals early termination of ForEach without error.
var ErrStop = errors.New("trace: stop iteration")

// ReadAll slurps every entry; intended for tests and small inputs.
func ReadAll(r io.Reader) ([]Log, error) {
	var out []Log
	err := ForEach(r, func(l Log) error {
		out = append(out, l)
		return nil
	})
	return out, err
}

// WriteAll writes all entries and flushes.
func WriteAll(w io.Writer, logs []Log) error {
	tw := NewWriter(w)
	for _, l := range logs {
		if err := tw.Write(l); err != nil {
			return err
		}
	}
	return tw.Flush()
}
