package trace

import (
	"container/heap"
	"sort"
	"time"
)

// Stream is a pull-based source of time-ordered log entries. Next
// returns false when the stream is exhausted.
type Stream interface {
	Next() (Log, bool)
}

// SliceStream adapts a slice of logs to a Stream. The slice is
// consumed in order; sort it by time first if order matters.
type SliceStream struct {
	logs []Log
	pos  int
}

// NewSliceStream returns a Stream over logs.
func NewSliceStream(logs []Log) *SliceStream { return &SliceStream{logs: logs} }

// Next implements Stream.
func (s *SliceStream) Next() (Log, bool) {
	if s.pos >= len(s.logs) {
		return Log{}, false
	}
	l := s.logs[s.pos]
	s.pos++
	return l, true
}

// SortByTime sorts logs chronologically in place, with ties broken by
// user then request type for determinism.
func SortByTime(logs []Log) {
	sort.SliceStable(logs, func(i, j int) bool {
		if !logs[i].Time.Equal(logs[j].Time) {
			return logs[i].Time.Before(logs[j].Time)
		}
		if logs[i].UserID != logs[j].UserID {
			return logs[i].UserID < logs[j].UserID
		}
		return logs[i].Type < logs[j].Type
	})
}

// mergeItem is one source in the merge heap.
type mergeItem struct {
	log Log
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if !h[i].log.Time.Equal(h[j].log.Time) {
		return h[i].log.Time.Before(h[j].log.Time)
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Merge combines several individually time-ordered streams into one
// time-ordered stream using a k-way heap merge.
type Merge struct {
	sources []Stream
	h       mergeHeap
	primed  bool
}

// NewMerge returns a merging Stream over the given sources. Each
// source must itself be time-ordered.
func NewMerge(sources ...Stream) *Merge {
	return &Merge{sources: sources}
}

// Next implements Stream.
func (m *Merge) Next() (Log, bool) {
	if !m.primed {
		m.h = make(mergeHeap, 0, len(m.sources))
		for i, s := range m.sources {
			if l, ok := s.Next(); ok {
				m.h = append(m.h, mergeItem{log: l, src: i})
			}
		}
		heap.Init(&m.h)
		m.primed = true
	}
	if len(m.h) == 0 {
		return Log{}, false
	}
	top := m.h[0]
	if l, ok := m.sources[top.src].Next(); ok {
		m.h[0] = mergeItem{log: l, src: top.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.log, true
}

// Filter wraps a stream, passing through only entries for which keep
// returns true.
type Filter struct {
	src  Stream
	keep func(Log) bool
}

// NewFilter returns a filtering Stream.
func NewFilter(src Stream, keep func(Log) bool) *Filter {
	return &Filter{src: src, keep: keep}
}

// Next implements Stream.
func (f *Filter) Next() (Log, bool) {
	for {
		l, ok := f.src.Next()
		if !ok {
			return Log{}, false
		}
		if f.keep(l) {
			return l, true
		}
	}
}

// Drain consumes a stream into a slice.
func Drain(s Stream) []Log {
	var out []Log
	for {
		l, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, l)
	}
}

// MobileOnly keeps only mobile-device entries.
func MobileOnly(l Log) bool { return l.Device.Mobile() }

// Unproxied keeps only entries not relayed through an HTTP proxy; the
// paper's §4 performance analysis filters proxied requests out.
func Unproxied(l Log) bool { return !l.Proxied }

// Within returns a predicate keeping entries in [from, to).
func Within(from, to time.Time) func(Log) bool {
	return func(l Log) bool {
		return !l.Time.Before(from) && l.Time.Before(to)
	}
}
