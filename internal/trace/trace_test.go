package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mcloud/internal/randx"
)

func sampleLog() Log {
	return Log{
		Time:     time.Date(2015, 8, 4, 19, 10, 1, 0, time.UTC),
		Device:   Android,
		DeviceID: 0x33ab8c95437f,
		UserID:   1355653977,
		Type:     ChunkStore,
		Bytes:    512 << 10,
		Proc:     4398 * time.Millisecond,
		Server:   100 * time.Millisecond,
		RTT:      89238 * time.Microsecond,
		Proxied:  true,
	}
}

func TestRoundTripSingle(t *testing.T) {
	l := sampleLog()
	line := string(l.AppendText(nil))
	got, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, l)
	}
}

func randomLog(src *randx.Source) Log {
	base := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	return Log{
		Time:     base.Add(time.Duration(src.Int63n(7 * 24 * int64(time.Hour)))),
		Device:   DeviceType(src.Intn(3)),
		DeviceID: src.Uint64() >> 16,
		UserID:   src.Uint64() >> 32,
		Type:     ReqType(src.Intn(4)),
		Bytes:    src.Int63n(1 << 30),
		Proc:     time.Duration(src.Int63n(int64(time.Minute))),
		Server:   time.Duration(src.Int63n(int64(time.Second))),
		RTT:      time.Duration(src.Int63n(int64(2 * time.Second))),
		Proxied:  src.Bool(0.5),
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := randx.New(seed)
		l := randomLog(src)
		got, err := ParseLine(string(l.AppendText(nil)))
		return err == nil && reflect.DeepEqual(got, l)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	src := randx.New(9)
	var logs []Log
	for i := 0; i < 1000; i++ {
		logs = append(logs, randomLog(src))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, logs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, logs) {
		t.Error("bulk round trip mismatch")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 7; i++ {
		if err := w.Write(sampleLog()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Errorf("Count = %d, want 7", w.Count())
	}
}

func TestParseLineErrors(t *testing.T) {
	good := string(sampleLog().AppendText(nil))
	bad := []string{
		"",
		"1\t2\t3",
		strings.Replace(good, "android", "blackberry", 1),
		strings.Replace(good, "chunk-store", "chunk-query", 1),
		"x" + good,
		strings.TrimSuffix(good, "1\n") + "7\n", // bad proxied flag
	}
	for i, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, line)
		}
	}
}

func TestForEachStop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Log{sampleLog(), sampleLog(), sampleLog()}); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := ForEach(&buf, func(Log) error {
		n++
		if n == 2 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("visited %d entries, want 2", n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("not a log line\n")
	if err := ForEach(&buf, func(Log) error { return nil }); err == nil {
		t.Error("expected parse error")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestReqTypePredicates(t *testing.T) {
	cases := []struct {
		r                              ReqType
		fileOp, chunk, store, retrieve bool
	}{
		{FileStore, true, false, true, false},
		{FileRetrieve, true, false, false, true},
		{ChunkStore, false, true, true, false},
		{ChunkRetrieve, false, true, false, true},
	}
	for _, c := range cases {
		if c.r.FileOp() != c.fileOp || c.r.Chunk() != c.chunk ||
			c.r.Store() != c.store || c.r.Retrieve() != c.retrieve {
			t.Errorf("%v predicates wrong", c.r)
		}
	}
}

func TestDeviceTypeMobile(t *testing.T) {
	if !Android.Mobile() || !IOS.Mobile() || PC.Mobile() {
		t.Error("Mobile() predicate wrong")
	}
}

func TestTransferTime(t *testing.T) {
	l := Log{Proc: 5 * time.Second, Server: time.Second}
	if got := l.TransferTime(); got != 4*time.Second {
		t.Errorf("TransferTime = %v, want 4s", got)
	}
	l = Log{Proc: time.Second, Server: 2 * time.Second}
	if got := l.TransferTime(); got != 0 {
		t.Errorf("negative transfer time should clamp to 0, got %v", got)
	}
}

func TestSortByTime(t *testing.T) {
	src := randx.New(10)
	var logs []Log
	for i := 0; i < 500; i++ {
		logs = append(logs, randomLog(src))
	}
	SortByTime(logs)
	for i := 1; i < len(logs); i++ {
		if logs[i].Time.Before(logs[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
}

func TestMergePreservesOrder(t *testing.T) {
	src := randx.New(11)
	var a, b, c []Log
	for i := 0; i < 300; i++ {
		l := randomLog(src)
		switch i % 3 {
		case 0:
			a = append(a, l)
		case 1:
			b = append(b, l)
		default:
			c = append(c, l)
		}
	}
	SortByTime(a)
	SortByTime(b)
	SortByTime(c)
	m := NewMerge(NewSliceStream(a), NewSliceStream(b), NewSliceStream(c))
	out := Drain(m)
	if len(out) != 300 {
		t.Fatalf("merged %d entries, want 300", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatal("merge output not time-ordered")
		}
	}
}

func TestMergeEmptySources(t *testing.T) {
	m := NewMerge(NewSliceStream(nil), NewSliceStream(nil))
	if _, ok := m.Next(); ok {
		t.Error("merge of empty sources should be empty")
	}
}

func TestFilter(t *testing.T) {
	logs := []Log{
		{Device: Android, Proxied: true},
		{Device: PC},
		{Device: IOS},
	}
	got := Drain(NewFilter(NewSliceStream(logs), MobileOnly))
	if len(got) != 2 {
		t.Errorf("MobileOnly kept %d, want 2", len(got))
	}
	got = Drain(NewFilter(NewSliceStream(logs), Unproxied))
	if len(got) != 2 {
		t.Errorf("Unproxied kept %d, want 2", len(got))
	}
}

func TestWithin(t *testing.T) {
	t0 := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	pred := Within(t0, t0.Add(time.Hour))
	if !pred(Log{Time: t0}) {
		t.Error("inclusive lower bound failed")
	}
	if pred(Log{Time: t0.Add(time.Hour)}) {
		t.Error("exclusive upper bound failed")
	}
	if pred(Log{Time: t0.Add(-time.Nanosecond)}) {
		t.Error("below range accepted")
	}
}

func BenchmarkAppendText(b *testing.B) {
	l := sampleLog()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = l.AppendText(buf[:0])
	}
}

func BenchmarkParseLine(b *testing.B) {
	line := string(sampleLog().AppendText(nil))
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}
