package faults

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a Transport in place of a response
// when the scenario resets the connection. Clients should treat it
// like any transport-level network error (retryable).
var ErrInjectedReset = errors.New("faults: injected connection reset")

// Transport applies a Scenario on the client side of the wire, as an
// http.RoundTripper wrapper. It lets a load generator exercise client
// resilience against any server — injected 5xx responses and resets
// never reach the network; truncations corrupt the response body on
// the way back. Decisions are drawn in round-trip order from the same
// deterministic stream an Injector uses.
type Transport struct {
	base http.RoundTripper

	mu sync.Mutex
	ch chooser

	counts [numKinds]atomic.Int64
}

// NewTransport wraps base (nil means http.DefaultTransport) with the
// scenario.
func NewTransport(sc Scenario, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, ch: newChooser(sc)}
}

// Count returns how many round trips received the given fault kind.
func (t *Transport) Count(k Kind) int64 { return t.counts[k].Load() }

// Injected returns the total number of disrupted round trips.
func (t *Transport) Injected() int64 {
	return t.Count(Error) + t.Count(Reset) + t.Count(Truncate) + t.Count(OutageHit)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	d := t.ch.next(req.URL.Path)
	t.mu.Unlock()
	t.counts[d.Kind].Add(1)

	switch d.Kind {
	case Error, OutageHit:
		if req.Body != nil {
			req.Body.Close()
		}
		return t.syntheticError(req, d.Kind), nil
	case Reset:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, ErrInjectedReset
	case Latency:
		time.Sleep(d.Delay)
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil || d.Kind != Truncate {
		return resp, err
	}
	resp.Body = &truncatingBody{rc: resp.Body, remaining: t.ch.sc.truncateAfter()}
	resp.ContentLength = -1
	return resp, nil
}

// syntheticError fabricates the response an injecting server would
// have produced, without touching the network.
func (t *Transport) syntheticError(req *http.Request, kind Kind) *http.Response {
	code := t.ch.sc.errorCode()
	body := `{"error":"faults: injected ` + kind.String() + `"}` + "\n"
	header := make(http.Header)
	header.Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable {
		header.Set("Retry-After", "1")
	}
	return &http.Response{
		Status:        http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatingBody delivers at most remaining bytes of the real body and
// then fails the read, mimicking a connection dropped mid-transfer.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF || (err == nil && b.remaining <= 0) {
		// Even a short body ends in failure: the cut must be
		// indistinguishable from a dropped connection.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }
