// Package faults is the deterministic fault-injection layer used to
// test the storage service under the failure regime the paper's
// production front-ends lived in: flaky mobile links, interrupted
// transfers, overloaded servers. A Scenario describes *what* goes
// wrong and how often; an Injector applies it to a server as net/http
// middleware, and a Transport applies it client-side as an
// http.RoundTripper. All randomness flows through randx, so a chaos
// run is reproducible from its seed: the decision for the N-th request
// is a pure function of (seed, N).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mcloud/internal/randx"
)

// Outage is a window of total unavailability, expressed in request
// counts rather than wall time so that a scenario replays identically
// regardless of machine speed: requests [After, After+Length) are
// rejected with the scenario's error code.
type Outage struct {
	After  int64 // requests served before the outage begins
	Length int64 // requests rejected during the outage
}

// Scenario configures a fault injector. The zero value injects
// nothing. Rates are per-request probabilities; at most one fault is
// injected per request, chosen by a single uniform draw against the
// cumulative rates (error, reset, truncate, latency — in that order).
type Scenario struct {
	Name string // label for logs and metrics; free-form
	Seed uint64 // randx seed driving every decision

	ErrorRate float64 // respond with ErrorCode instead of serving
	ErrorCode int     // status for injected errors; 0 means 503

	ResetRate float64 // abort the connection before any response

	TruncateRate  float64 // serve a partial body, then kill the connection
	TruncateAfter int     // body bytes delivered before the cut; 0 means 1024

	LatencyRate float64       // stall the request before serving it
	LatencyMin  time.Duration // stall duration bounds (uniform)
	LatencyMax  time.Duration

	Outages []Outage // request-count windows of total unavailability

	PathPrefix string // only inject on matching URL paths; "" means all

	// Node, when set, restricts the whole scenario to the named
	// cluster node: every mcsserver in a cluster can be started with
	// the same -chaos spec, and only the node whose -node value
	// matches injects anything (see ForNode). This is how the smoke
	// tests kill exactly one replica mid-load, deterministically.
	Node string
}

// ForNode resolves per-node gating: a scenario naming a Node applies
// only on that node; every other node gets a disabled scenario (the
// seed and name survive, so logs still identify the run). Scenarios
// without a Node apply everywhere.
func (s Scenario) ForNode(name string) Scenario {
	if s.Node == "" || s.Node == name {
		return s
	}
	return Scenario{Name: s.Name, Seed: s.Seed, Node: s.Node}
}

// Enabled reports whether the scenario can inject anything.
func (s Scenario) Enabled() bool {
	return s.ErrorRate > 0 || s.ResetRate > 0 || s.TruncateRate > 0 ||
		s.LatencyRate > 0 || len(s.Outages) > 0
}

// FaultRate is the total per-request probability of a disruptive
// fault (everything except added latency), outside outage windows.
func (s Scenario) FaultRate() float64 {
	return s.ErrorRate + s.ResetRate + s.TruncateRate
}

// Derive returns a copy of the scenario whose seed is a deterministic
// function of the parent seed and label, so independent components
// (each front-end, each simulated device) draw statistically
// independent fault streams that are still reproducible together.
func (s Scenario) Derive(label string) Scenario {
	out := s
	out.Seed = randx.Derive(s.Seed, "faults/"+label).Uint64()
	if s.Name != "" {
		out.Name = s.Name + "/" + label
	} else {
		out.Name = label
	}
	return out
}

func (s Scenario) errorCode() int {
	if s.ErrorCode == 0 {
		return 503
	}
	return s.ErrorCode
}

func (s Scenario) truncateAfter() int {
	if s.TruncateAfter <= 0 {
		return 1024
	}
	return s.TruncateAfter
}

// presets are named scenarios accepted by ParseScenario. "mixed10" is
// the canonical ~10% chaos mix used by the README, the e2e chaos test
// and the CI smoke job.
var presets = map[string]Scenario{
	"mixed10": {
		Name:         "mixed10",
		Seed:         1,
		ErrorRate:    0.04,
		ResetRate:    0.02,
		TruncateRate: 0.02,
		LatencyRate:  0.02,
		LatencyMin:   5 * time.Millisecond,
		LatencyMax:   50 * time.Millisecond,
	},
}

// ParseScenario parses a -chaos flag value. The spec is either a
// preset name ("mixed10"), optionally followed by comma-separated
// overrides, or a bare list of key=value pairs:
//
//	seed=42            decision-stream seed
//	error=0.05         5xx injection rate
//	code=500           status used for injected errors (default 503)
//	reset=0.02         connection-abort rate
//	truncate=0.02      truncated-body rate
//	truncate=0.02:4096 ... cutting after 4096 body bytes
//	latency=0.1:5ms-50ms  added-latency rate and uniform bounds
//	outage=500+100     total outage for requests [500, 600); repeatable
//	path=/chunk/       restrict injection to matching URL paths
//	name=run7          label for logs/metrics
//
// An empty spec or "off" yields a disabled scenario.
func ParseScenario(spec string) (Scenario, error) {
	var sc Scenario
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return sc, nil
	}
	parts := strings.Split(spec, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i == 0 && !strings.Contains(part, "=") {
			p, ok := presets[part]
			if !ok {
				return sc, fmt.Errorf("faults: unknown scenario preset %q (have: %s)", part, presetNames())
			}
			sc = p
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return sc, fmt.Errorf("faults: malformed scenario term %q (want key=value)", part)
		}
		if err := sc.set(k, v); err != nil {
			return sc, err
		}
	}
	return sc, nil
}

func presetNames() string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (s *Scenario) set(k, v string) error {
	switch k {
	case "name":
		s.Name = v
	case "path":
		s.PathPrefix = v
	case "node":
		s.Node = v
	case "seed":
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: seed %q: %w", v, err)
		}
		s.Seed = n
	case "code":
		n, err := strconv.Atoi(v)
		if err != nil || n < 400 || n > 599 {
			return fmt.Errorf("faults: error code %q must be a 4xx/5xx status", v)
		}
		s.ErrorCode = n
	case "error":
		return parseRate(v, &s.ErrorRate)
	case "reset":
		return parseRate(v, &s.ResetRate)
	case "truncate":
		rate, extra, hasExtra := strings.Cut(v, ":")
		if err := parseRate(rate, &s.TruncateRate); err != nil {
			return err
		}
		if hasExtra {
			n, err := strconv.Atoi(extra)
			if err != nil || n <= 0 {
				return fmt.Errorf("faults: truncate byte count %q", extra)
			}
			s.TruncateAfter = n
		}
	case "latency":
		rate, bounds, hasBounds := strings.Cut(v, ":")
		if err := parseRate(rate, &s.LatencyRate); err != nil {
			return err
		}
		if hasBounds {
			lo, hi, ok := strings.Cut(bounds, "-")
			if !ok {
				return fmt.Errorf("faults: latency bounds %q (want min-max)", bounds)
			}
			dlo, err := time.ParseDuration(lo)
			if err != nil {
				return fmt.Errorf("faults: latency min %q: %w", lo, err)
			}
			dhi, err := time.ParseDuration(hi)
			if err != nil {
				return fmt.Errorf("faults: latency max %q: %w", hi, err)
			}
			if dlo < 0 || dhi < dlo {
				return fmt.Errorf("faults: latency bounds %q out of order", bounds)
			}
			s.LatencyMin, s.LatencyMax = dlo, dhi
		}
	case "outage":
		after, length, ok := strings.Cut(v, "+")
		if !ok {
			return fmt.Errorf("faults: outage %q (want after+length)", v)
		}
		a, err := strconv.ParseInt(after, 10, 64)
		if err != nil || a < 0 {
			return fmt.Errorf("faults: outage start %q", after)
		}
		l, err := strconv.ParseInt(length, 10, 64)
		if err != nil || l <= 0 {
			return fmt.Errorf("faults: outage length %q", length)
		}
		s.Outages = append(s.Outages, Outage{After: a, Length: l})
	default:
		return fmt.Errorf("faults: unknown scenario key %q", k)
	}
	return nil
}

func parseRate(v string, dst *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("faults: rate %q must be in [0, 1]", v)
	}
	*dst = f
	return nil
}

// String renders the scenario as a spec that ParseScenario accepts.
func (s Scenario) String() string {
	if !s.Enabled() {
		return "off"
	}
	var terms []string
	add := func(f string, args ...interface{}) { terms = append(terms, fmt.Sprintf(f, args...)) }
	if s.Name != "" {
		add("name=%s", s.Name)
	}
	add("seed=%d", s.Seed)
	if s.ErrorRate > 0 {
		add("error=%g", s.ErrorRate)
	}
	if s.ErrorCode != 0 {
		add("code=%d", s.ErrorCode)
	}
	if s.ResetRate > 0 {
		add("reset=%g", s.ResetRate)
	}
	if s.TruncateRate > 0 {
		if s.TruncateAfter > 0 {
			add("truncate=%g:%d", s.TruncateRate, s.TruncateAfter)
		} else {
			add("truncate=%g", s.TruncateRate)
		}
	}
	if s.LatencyRate > 0 {
		add("latency=%g:%s-%s", s.LatencyRate, s.LatencyMin, s.LatencyMax)
	}
	for _, o := range s.Outages {
		add("outage=%d+%d", o.After, o.Length)
	}
	if s.PathPrefix != "" {
		add("path=%s", s.PathPrefix)
	}
	if s.Node != "" {
		add("node=%s", s.Node)
	}
	return strings.Join(terms, ",")
}
