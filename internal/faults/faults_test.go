package faults

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcloud/internal/metrics"
)

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("seed=42,error=0.05,code=500,reset=0.02,truncate=0.03:4096,latency=0.1:5ms-50ms,outage=500+100,path=/chunk/,name=run7")
	if err != nil {
		t.Fatal(err)
	}
	want := Scenario{
		Name: "run7", Seed: 42,
		ErrorRate: 0.05, ErrorCode: 500,
		ResetRate:    0.02,
		TruncateRate: 0.03, TruncateAfter: 4096,
		LatencyRate: 0.1, LatencyMin: 5 * time.Millisecond, LatencyMax: 50 * time.Millisecond,
		Outages:    []Outage{{After: 500, Length: 100}},
		PathPrefix: "/chunk/",
	}
	if sc.Name != want.Name || sc.Seed != want.Seed || sc.ErrorRate != want.ErrorRate ||
		sc.ErrorCode != want.ErrorCode || sc.ResetRate != want.ResetRate ||
		sc.TruncateRate != want.TruncateRate || sc.TruncateAfter != want.TruncateAfter ||
		sc.LatencyRate != want.LatencyRate || sc.LatencyMin != want.LatencyMin ||
		sc.LatencyMax != want.LatencyMax || sc.PathPrefix != want.PathPrefix ||
		len(sc.Outages) != 1 || sc.Outages[0] != want.Outages[0] {
		t.Errorf("parsed %+v, want %+v", sc, want)
	}

	// String() must round-trip through ParseScenario.
	back, err := ParseScenario(sc.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sc.String(), err)
	}
	if back.String() != sc.String() {
		t.Errorf("round trip: %q != %q", back.String(), sc.String())
	}
}

func TestParseScenarioPresetWithOverride(t *testing.T) {
	sc, err := ParseScenario("mixed10,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || sc.ErrorRate != 0.04 || sc.FaultRate() != 0.08 {
		t.Errorf("preset override: %+v", sc)
	}
	if off, err := ParseScenario("off"); err != nil || off.Enabled() {
		t.Errorf("off: %+v, %v", off, err)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, bad := range []string{
		"nosuchpreset", "error=1.5", "error=x", "code=200", "latency=0.1:50ms",
		"outage=10", "outage=-1+5", "frobnicate=1", "seed",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

// TestDecisionDeterminism is the reproducibility contract: the fault
// decision for request N is a pure function of (seed, N).
func TestDecisionDeterminism(t *testing.T) {
	sc, err := ParseScenario("mixed10,seed=42,outage=50+10")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Decision {
		ch := newChooser(sc)
		out := make([]Decision, 0, 1000)
		for i := 0; i < 1000; i++ {
			out = append(out, ch.next("/chunk/x"))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	var injected int
	for _, d := range a {
		if d.Kind == Error || d.Kind == Reset || d.Kind == Truncate || d.Kind == OutageHit {
			injected++
		}
	}
	// mixed10 disrupts ~8% of requests plus the 10-request outage.
	if injected < 40 || injected > 180 {
		t.Errorf("injected %d/1000 faults, want around 90", injected)
	}

	other := sc
	other.Seed = 43
	ch := newChooser(other)
	same := true
	for i := 0; i < 1000; i++ {
		if ch.next("/chunk/x") != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestOutageWindowAndPathFilter(t *testing.T) {
	ch := newChooser(Scenario{Outages: []Outage{{After: 2, Length: 3}}})
	var kinds []Kind
	for i := 0; i < 6; i++ {
		kinds = append(kinds, ch.next("/x").Kind)
	}
	want := []Kind{None, None, OutageHit, OutageHit, OutageHit, None}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("request %d: kind %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}

	filtered := newChooser(Scenario{ErrorRate: 1, PathPrefix: "/chunk/"})
	if d := filtered.next("/meta/store-check"); d.Kind != None {
		t.Errorf("filtered path injected %v", d.Kind)
	}
	if d := filtered.next("/chunk/abc"); d.Kind != Error {
		t.Errorf("matching path got %v, want Error", d.Kind)
	}
}

func okHandler(body []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	})
}

func TestMiddlewareInjectedError(t *testing.T) {
	in := New(Scenario{ErrorRate: 1})
	srv := httptest.NewServer(in.Middleware(okHandler([]byte("ok"))))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Error("503 missing Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "injected error") {
		t.Errorf("body = %q", body)
	}
	if in.Count(Error) != 1 || in.Injected() != 1 {
		t.Errorf("counters: error=%d injected=%d", in.Count(Error), in.Injected())
	}
}

func TestMiddlewareReset(t *testing.T) {
	in := New(Scenario{ResetRate: 1})
	srv := httptest.NewServer(in.Middleware(okHandler([]byte("ok"))))
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/x"); err == nil {
		t.Fatal("reset request succeeded")
	}
	if in.Count(Reset) != 1 {
		t.Errorf("reset count = %d", in.Count(Reset))
	}
}

func TestMiddlewareTruncate(t *testing.T) {
	big := bytes.Repeat([]byte("t"), 64<<10)
	in := New(Scenario{TruncateRate: 1, TruncateAfter: 1024})
	srv := httptest.NewServer(in.Middleware(okHandler(big)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil && len(got) == len(big) {
		t.Fatal("truncated response arrived complete")
	}
	if len(got) > 1024 {
		t.Errorf("read %d bytes past the 1024-byte cut", len(got))
	}
}

func TestMiddlewareLatency(t *testing.T) {
	in := New(Scenario{LatencyRate: 1, LatencyMin: 20 * time.Millisecond, LatencyMax: 20 * time.Millisecond})
	srv := httptest.NewServer(in.Middleware(okHandler([]byte("ok"))))
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("latency fault finished in %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("latency fault changed status to %d", resp.StatusCode)
	}
}

func TestTransportFaults(t *testing.T) {
	big := bytes.Repeat([]byte("b"), 8<<10)
	srv := httptest.NewServer(okHandler(big))
	defer srv.Close()

	// Injected error: never reaches the server.
	tr := NewTransport(Scenario{ErrorRate: 1}, nil)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "injected") {
		t.Errorf("synthetic error: status %d body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Error("synthetic 503 missing Retry-After")
	}

	// Reset: transport-level error.
	client.Transport = NewTransport(Scenario{ResetRate: 1}, nil)
	if _, err := client.Get(srv.URL + "/x"); err == nil {
		t.Error("injected reset round trip succeeded")
	}

	// Truncation: body read fails partway.
	client.Transport = NewTransport(Scenario{TruncateRate: 1, TruncateAfter: 100}, nil)
	resp, err = client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != io.ErrUnexpectedEOF {
		t.Errorf("truncated read error = %v, want unexpected EOF", err)
	}
	if len(got) > 100 {
		t.Errorf("read %d bytes past the cut", len(got))
	}
}

func TestTransportDeterministicAcrossRuns(t *testing.T) {
	srv := httptest.NewServer(okHandler([]byte("ok")))
	defer srv.Close()
	sc := Scenario{Seed: 9, ErrorRate: 0.3}

	run := func() []int {
		client := &http.Client{Transport: NewTransport(sc, nil)}
		var codes []int
		for i := 0; i < 50; i++ {
			resp, err := client.Get(srv.URL + "/x")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	base := Scenario{Seed: 1, ErrorRate: 0.5}
	a, b := base.Derive("fe/0"), base.Derive("fe/1")
	if a.Seed == b.Seed {
		t.Fatal("derived scenarios share a seed")
	}
	if again := base.Derive("fe/0"); again.Seed != a.Seed {
		t.Error("Derive is not stable")
	}
}

func TestInjectorInstrument(t *testing.T) {
	in := New(Scenario{ErrorRate: 1})
	reg := metrics.NewRegistry()
	in.Instrument(reg, "frontend")
	srv := httptest.NewServer(in.Middleware(okHandler([]byte("ok"))))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := metrics.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := vals[metrics.Key("mcs_faults_injected_total", "scope", "frontend", "kind", "error")]; v != 1 {
		t.Errorf("injected error counter = %v, want 1", v)
	}
	if v := vals[metrics.Key("mcs_faults_requests_total", "scope", "frontend")]; v != 1 {
		t.Errorf("requests counter = %v, want 1", v)
	}
}
