package faults

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/randx"
)

// Kind identifies the fault injected into one request.
type Kind uint8

// Fault kinds, in the order the cumulative-rate draw checks them.
const (
	None      Kind = iota // request served untouched
	Error                 // replaced by an ErrorCode response
	Reset                 // connection aborted before any response
	Truncate              // partial body delivered, then connection killed
	Latency               // request stalled, then served normally
	OutageHit             // rejected inside an outage window
	numKinds
)

var kindNames = [...]string{"none", "error", "reset", "truncate", "latency", "outage"}

func (k Kind) String() string { return kindNames[k] }

// Decision is one per-request verdict from the seeded stream.
type Decision struct {
	N     int64 // zero-based request index
	Kind  Kind
	Delay time.Duration // nonzero only for Latency
}

// chooser turns the seeded stream into per-request decisions. The
// decision for request N is a pure function of (scenario, N): exactly
// one uniform draw per request selects the kind, and a second draw is
// consumed only when that kind is Latency. Callers must serialize
// access.
type chooser struct {
	sc  Scenario
	src *randx.Source
	n   int64
}

func newChooser(sc Scenario) chooser {
	return chooser{sc: sc, src: randx.New(sc.Seed)}
}

func (c *chooser) next(path string) Decision {
	d := Decision{N: c.n}
	c.n++
	// Always consume the base draw so the stream stays aligned with
	// the request index even across outage windows and filtered paths.
	u := c.src.Float64()
	if c.sc.PathPrefix != "" && !pathMatch(path, c.sc.PathPrefix) {
		return d
	}
	for _, o := range c.sc.Outages {
		if d.N >= o.After && d.N < o.After+o.Length {
			d.Kind = OutageHit
			return d
		}
	}
	cum := c.sc.ErrorRate
	if u < cum {
		d.Kind = Error
		return d
	}
	cum += c.sc.ResetRate
	if u < cum {
		d.Kind = Reset
		return d
	}
	cum += c.sc.TruncateRate
	if u < cum {
		d.Kind = Truncate
		return d
	}
	cum += c.sc.LatencyRate
	if u < cum {
		d.Kind = Latency
		span := c.sc.LatencyMax - c.sc.LatencyMin
		d.Delay = c.sc.LatencyMin
		if span > 0 {
			d.Delay += time.Duration(c.src.Float64() * float64(span))
		}
	}
	return d
}

func pathMatch(path, prefix string) bool {
	return len(path) >= len(prefix) && path[:len(prefix)] == prefix
}

// Injector applies a Scenario to a server as net/http middleware. It
// is safe for concurrent use: decisions are drawn under a mutex in
// request-arrival order, so a serialized client sees a bit-identical
// fault sequence for a given seed, and concurrent runs reproduce the
// same decision-by-index sequence.
type Injector struct {
	mu sync.Mutex
	ch chooser

	counts [numKinds]atomic.Int64

	// OnDecision, when set, observes every per-request decision
	// (including None) in draw order — used by reproducibility checks.
	// It is called with the injector's mutex held; keep it cheap.
	OnDecision func(Decision)
}

// New returns an injector for the scenario.
func New(sc Scenario) *Injector {
	return &Injector{ch: newChooser(sc)}
}

// Scenario returns the injector's configuration.
func (in *Injector) Scenario() Scenario { return in.ch.sc }

// decide draws the verdict for the next request.
func (in *Injector) decide(path string) Decision {
	in.mu.Lock()
	d := in.ch.next(path)
	if in.OnDecision != nil {
		in.OnDecision(d)
	}
	in.mu.Unlock()
	in.counts[d.Kind].Add(1)
	return d
}

// Requests returns how many requests the injector has decided.
func (in *Injector) Requests() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ch.n
}

// Count returns how many requests received the given fault kind.
func (in *Injector) Count(k Kind) int64 { return in.counts[k].Load() }

// Injected returns the total number of disrupted requests (everything
// except None and Latency — latency-only requests still complete).
func (in *Injector) Injected() int64 {
	return in.Count(Error) + in.Count(Reset) + in.Count(Truncate) + in.Count(OutageHit)
}

// Instrument registers the injector's counters, labeled with the
// scope (e.g. "frontend", "meta") so one process can expose several
// injectors side by side.
func (in *Injector) Instrument(reg *metrics.Registry, scope string) {
	for k := Kind(1); k < numKinds; k++ {
		k := k
		reg.CounterFunc("mcs_faults_injected_total",
			"Faults injected by the chaos middleware, by kind.",
			func() float64 { return float64(in.Count(k)) },
			"scope", scope, "kind", k.String())
	}
	reg.CounterFunc("mcs_faults_requests_total",
		"Requests that passed through the chaos middleware.",
		func() float64 { return float64(in.Requests()) }, "scope", scope)
}

// Middleware wraps next with the injector. Injected errors carry the
// scenario's status code as a JSON error body (plus Retry-After for
// 503s); resets and truncations abort the client connection via
// http.ErrAbortHandler, which net/http turns into a closed socket.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide(r.URL.Path)
		switch d.Kind {
		case None:
			next.ServeHTTP(w, r)
		case Latency:
			time.Sleep(d.Delay)
			next.ServeHTTP(w, r)
		case Error, OutageHit:
			writeInjectedError(w, in.ch.sc.errorCode(), d.Kind)
		case Reset:
			panic(http.ErrAbortHandler)
		case Truncate:
			tw := &truncatingWriter{ResponseWriter: w, remaining: in.ch.sc.truncateAfter()}
			next.ServeHTTP(tw, r)
			// Kill the connection so the client cannot mistake the
			// partial body for a complete response.
			panic(http.ErrAbortHandler)
		}
	})
}

func writeInjectedError(w http.ResponseWriter, code int, kind Kind) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"error":"faults: injected %s"}`+"\n", kind)
}

// truncatingWriter forwards at most remaining body bytes, flushing
// them so they reach the wire before the connection is aborted, and
// silently swallows the rest.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	n := len(p)
	if t.remaining <= 0 {
		return n, nil // pretend success; the abort comes after the handler
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	written, err := t.ResponseWriter.Write(p)
	t.remaining -= written
	if t.remaining <= 0 {
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
	}
	if err != nil {
		return written, err
	}
	return n, nil
}
