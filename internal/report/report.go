// Package report assembles the paper-versus-measured comparison for
// every experiment: each Row pairs a quantity the paper reports with
// the value this reproduction measures, plus a tolerance band that
// encodes "the shape holds". The mcsrepro binary renders the rows into
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
	"time"

	"mcloud/internal/core"
	"mcloud/internal/trace"
)

// Row is one paper-vs-measured comparison.
type Row struct {
	Experiment string  // e.g. "Fig 3"
	Quantity   string  // what is compared
	Paper      string  // the paper's reported value (as text)
	Measured   string  // our value (as text)
	Value      float64 // numeric measured value
	Lo, Hi     float64 // acceptance band for Value
	Unitless   bool
}

// OK reports whether the measured value falls in the acceptance band.
func (r Row) OK() bool {
	if math.IsNaN(r.Value) {
		return false
	}
	return r.Value >= r.Lo && r.Value <= r.Hi
}

// Status renders PASS/FAIL.
func (r Row) Status() string {
	if r.OK() {
		return "ok"
	}
	return "DEVIATES"
}

// Compare derives the full row set from an analysis result and an idle
// time study.
func Compare(res core.Results, idle core.IdleTimeResult) []Row {
	var rows []Row
	add := func(exp, quantity, paper string, value, lo, hi float64, format string) {
		rows = append(rows, Row{
			Experiment: exp,
			Quantity:   quantity,
			Paper:      paper,
			Measured:   fmt.Sprintf(format, value),
			Value:      value,
			Lo:         lo,
			Hi:         hi,
		})
	}

	// Fig 1.
	w := res.Workload
	add("Fig 1a", "retrieved/stored volume ratio", "~1.3-1.5 (retrievals dominate volume)",
		w.VolumeRatio(), 1.0, 2.6, "%.2f")
	add("Fig 1b", "stored/retrieved file-count ratio", "over 2x",
		w.FileRatio(), 1.7, 3.6, "%.2f")
	add("Fig 1", "peak hour of day (local)", "surge around 23:00",
		float64(w.PeakHourOfDay), 20, 24, "%.0f")

	// Fig 3 (rows only when the mixture fit had enough gaps).
	if io := res.InterOp; io.Fitted() {
		add("Fig 3", "in-session component mean (s)", "~10 s",
			io.InSessionMeanSec(), 0.5, 30, "%.1f")
		add("Fig 3", "inter-session component mean (s)", "~1 day (86 400 s)",
			io.InterSessionMeanSec(), 10000, 400000, "%.0f")
		add("Fig 3", "histogram valley (s)", "~1 hour (3600 s)",
			io.ValleySec, 300, 5*3600, "%.0f")
	}

	// §3.1.1.
	s := res.Sessions
	add("§3.1.1", "store-only session share", "68.2 %", s.StoreOnlyFrac, 0.60, 0.76, "%.3f")
	add("§3.1.1", "retrieve-only session share", "29.9 %", s.RetrieveOnlyFrac, 0.22, 0.38, "%.3f")
	add("§3.1.1", "mixed session share", "~2 %", s.MixedFrac, 0.0, 0.06, "%.3f")

	// Fig 4.
	add("Fig 4", "P(normalized op time < 0.1), >1 op", "> 0.8",
		s.BurstAll.P(0.1), 0.60, 1.0, "%.3f")
	add("Fig 4", "median normalized op time, >20 ops", "~0.03",
		s.BurstOver20.Quantile(0.5), 0, 0.06, "%.4f")

	// Fig 5.
	add("Fig 5a", "share of single-operation sessions", "~40 %", s.POneOp, 0.30, 0.60, "%.3f")
	add("Fig 5a", "share of sessions with > 20 ops", "~10 %", s.POver20Ops, 0.05, 0.18, "%.3f")
	add("Fig 5b", "store volume slope (MB/file)", "~1.5", s.StoreSlopeMB, 0.8, 2.6, "%.2f")
	add("Fig 5c", "mean volume of 1-file retrieve sessions (MB)", "~70",
		s.OneFileRetrieveMeanMB, 25, 130, "%.1f")

	// Fig 6 / Table 2 (rows only when both mixtures were fitted).
	f := res.FileSize
	if len(f.StoreMixture.Components) > 0 && len(f.RetrieveMixture.Components) > 0 {
		var wSmall, mSmall float64
		for _, c := range f.StoreMixture.Components {
			if c.Mu < 3 {
				wSmall += c.Alpha
				mSmall += c.Alpha * c.Mu
			}
		}
		add("Table 2", "store photo-component weight", "α1 = 0.91", wSmall, 0.80, 1.0, "%.3f")
		if wSmall > 0 {
			add("Table 2", "store photo-component mean (MB)", "µ1 = 1.5", mSmall/wSmall, 0.9, 2.2, "%.2f")
		}
		rt := f.RetrieveMixture.Components[len(f.RetrieveMixture.Components)-1]
		add("Table 2", "retrieve large-file component mean (MB)", "µ3 = 146.8", rt.Mu, 90, 260, "%.1f")
		add("Table 2", "retrieve large-file component weight", "α3 = 0.28", rt.Alpha, 0.14, 0.42, "%.3f")
	}

	// Table 3.
	u := res.Usage
	mo := func(class string) core.UserClassRow { return u.Table3[class]["mobile-only"] }
	add("Table 3", "mobile-only upload-only user share", "51.5 %", mo("upload-only").UserFrac, 0.44, 0.60, "%.3f")
	add("Table 3", "mobile-only download-only user share", "17.3 %", mo("download-only").UserFrac, 0.11, 0.24, "%.3f")
	add("Table 3", "mobile-only occasional user share", "23.9 %", mo("occasional").UserFrac, 0.17, 0.31, "%.3f")
	add("Table 3", "mobile-only mixed user share", "7.2 %", mo("mixed").UserFrac, 0.03, 0.13, "%.3f")
	add("Table 3", "upload-only share of stored volume", "86.6 %", mo("upload-only").StoreFrac, 0.70, 1.0, "%.3f")
	add("Table 3", "pc-only upload-only user share", "31.6 % (more even than mobile)",
		u.Table3["upload-only"]["pc-only"].UserFrac, 0.24, 0.44, "%.3f")
	add("Table 3", "mobile+pc mixed user share", "18.0 %",
		u.Table3["mixed"]["mobile-and-pc"].UserFrac, 0.10, 0.26, "%.3f")

	// Fig 8.
	e := res.Engagement
	add("Fig 8", "1-device never-return fraction", "~50 %",
		e.NeverReturn[core.StratumOneDevice], 0.38, 0.72, "%.3f")
	add("Fig 8", "multi-device never-return fraction", "< 20 %",
		e.NeverReturn[core.StratumMultiDevice], 0, 0.40, "%.3f")

	// Fig 9.
	if v, ok := e.NeverRetrieve[core.StratumOneDevice]; ok {
		add("Fig 9", "mobile-only (1 dev) never-retrieve after day-0 upload", "> 80 %",
			v, 0.80, 1.0, "%.3f")
	}
	if mp, ok := e.RetrievalByDay[core.StratumMobileAndPC]; ok && len(mp) > 0 {
		add("Fig 9", "mobile+pc day-0 retrieval fraction", "highest among strata, same-day sync",
			mp[0], 0.02, 1.0, "%.3f")
	}

	// Fig 10 (rows only when the SE fits ran).
	if act := res.Activity; act.StoreSE.C > 0 && act.RetrieveSE.C > 0 {
		add("Fig 10a", "storage SE stretch factor c", "0.20", act.StoreSE.C, 0.12, 0.45, "%.3f")
		add("Fig 10b", "retrieval SE stretch factor c", "0.15", act.RetrieveSE.C, 0.04, 0.30, "%.3f")
		add("Fig 10a", "storage SE rank-plot R²", "0.9992", act.StoreSE.R2, 0.95, 1.0, "%.4f")
		add("Fig 10b", "retrieval SE rank-plot R²", "0.9990", act.RetrieveSE.R2, 0.93, 1.0, "%.4f")
	}

	// Fig 12.
	p := res.Perf
	add("Fig 12a", "median Android chunk upload (s)", "4.1 s",
		p.MedianUpload(trace.Android).Seconds(), 3.2, 5.2, "%.2f")
	add("Fig 12a", "median iOS chunk upload (s)", "1.6 s",
		p.MedianUpload(trace.IOS).Seconds(), 1.1, 2.3, "%.2f")
	add("Fig 12a", "Android-vs-iOS KS distance", "distributions clearly separated",
		p.UploadGapKS.Stat, 0.2, 1.0, "%.3f")

	// Fig 14.
	add("Fig 14", "median RTT (ms)", "~100 ms",
		p.RTT.Quantile(0.5)*1000, 60, 170, "%.0f")

	// Fig 15.
	add("Fig 15", "P(estimated swnd <= 64 KB)", "concentration at 64 KB",
		p.SWnd.P(66*1024), 0.85, 1.0, "%.3f")

	// Fig 16 (from the idle-time study).
	if as, ok := idle.Classes["android/storage"]; ok {
		is := idle.Classes["ios/storage"]
		add("Fig 16c", "Android storage idle>RTO fraction", "~60 %", as.RestartFrac, 0.45, 0.75, "%.3f")
		add("Fig 16c", "iOS storage idle>RTO fraction", "~18 %", is.RestartFrac, 0.08, 0.30, "%.3f")
		add("Fig 16a", "Android storage median Tclt - iOS (ms)", "~90 ms more",
			(as.Tclt.Quantile(0.5)-is.Tclt.Quantile(0.5))*1000, 50, 250, "%.0f")
		add("Fig 16a/b", "median Tsrv (ms)", "~100 ms regardless of device",
			as.Tsrv.Quantile(0.5)*1000, 60, 160, "%.0f")
		ar := idle.Classes["android/retrieval"]
		ir := idle.Classes["ios/retrieval"]
		add("Fig 16b", "Android retrieval 90th-pct Tclt (s)", "~1 s",
			ar.Tclt.Quantile(0.9), 0.4, 3.0, "%.2f")
		add("Fig 16b", "iOS retrieval 90th-pct Tclt (s)", "~0.1 s (order of magnitude below Android)",
			ir.Tclt.Quantile(0.9), 0.0, 0.4, "%.2f")
		add("Fig 13", "Android median chunk time / iOS (simulator)", "clearly slower",
			float64(as.MedianChunkTime)/float64(is.MedianChunkTime), 1.3, 10, "%.2f")
	}
	return rows
}

// Markdown renders rows as an EXPERIMENTS.md table body.
func Markdown(rows []Row) string {
	var b strings.Builder
	b.WriteString("| Experiment | Quantity | Paper | Measured | Status |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			r.Experiment, r.Quantity, r.Paper, r.Measured, r.Status())
	}
	return b.String()
}

// Text renders rows as an aligned console table.
func Text(rows []Row) string {
	var b strings.Builder
	expW, qW, pW, mW := 10, 20, 20, 10
	for _, r := range rows {
		if len(r.Experiment) > expW {
			expW = len(r.Experiment)
		}
		if len(r.Quantity) > qW {
			qW = len(r.Quantity)
		}
		if len(r.Paper) > pW {
			pW = len(r.Paper)
		}
		if len(r.Measured) > mW {
			mW = len(r.Measured)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %-*s  %s\n", expW, "Experiment", qW, "Quantity", pW, "Paper", mW, "Measured", "Status")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", expW+qW+pW+mW+16))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %-*s  %s\n", expW, r.Experiment, qW, r.Quantity, pW, r.Paper, mW, r.Measured, r.Status())
	}
	return b.String()
}

// Summary counts passing rows.
func Summary(rows []Row) (ok, total int) {
	for _, r := range rows {
		if r.OK() {
			ok++
		}
	}
	return ok, len(rows)
}

// RunHeader describes a reproduction run for the report preamble.
type RunHeader struct {
	Users     int
	PCUsers   int
	Seed      uint64
	Logs      int64
	Started   time.Time
	Elapsed   time.Duration
	IdleFlows int
}

// HeaderText renders the run header.
func HeaderText(h RunHeader) string {
	return fmt.Sprintf("population: %d mobile users + %d pc-only users (seed %d)\nlogs analyzed: %d\nidle-time study: %d flows per class\nelapsed: %v\n",
		h.Users, h.PCUsers, h.Seed, h.Logs, h.IdleFlows, h.Elapsed.Round(time.Millisecond))
}
