package report

import (
	"math"
	"strings"
	"testing"

	"mcloud/internal/core"
	"mcloud/internal/workload"
)

func TestRowOK(t *testing.T) {
	r := Row{Value: 5, Lo: 1, Hi: 10}
	if !r.OK() || r.Status() != "ok" {
		t.Error("in-band row should pass")
	}
	r.Value = 11
	if r.OK() || r.Status() != "DEVIATES" {
		t.Error("out-of-band row should fail")
	}
	r.Value = math.NaN()
	if r.OK() {
		t.Error("NaN should fail")
	}
}

func TestCompareProducesFullRowSet(t *testing.T) {
	g, err := workload.New(workload.Config{Users: 1500, PCOnlyUsers: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(core.Options{Start: g.Config().Start, Days: g.Config().Days})
	a.AddStream(g.Stream())
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	idle, err := core.RunIdleTimeStudy(core.IdleTimeConfig{Flows: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := Compare(res, idle)
	if len(rows) < 30 {
		t.Fatalf("only %d comparison rows; every figure/table needs coverage", len(rows))
	}
	// Each major experiment must appear.
	want := []string{"Fig 1", "Fig 3", "§3.1.1", "Fig 4", "Fig 5", "Table 2",
		"Table 3", "Fig 8", "Fig 9", "Fig 10", "Fig 12", "Fig 14", "Fig 15", "Fig 16", "Fig 13"}
	joined := ""
	for _, r := range rows {
		joined += r.Experiment + "\n"
	}
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("experiment %q missing from comparison", w)
		}
	}
	// At this scale the vast majority of rows must land in-band.
	ok, total := Summary(rows)
	if float64(ok) < 0.85*float64(total) {
		for _, r := range rows {
			if !r.OK() {
				t.Logf("deviates: %s %s = %s (band [%g, %g])", r.Experiment, r.Quantity, r.Measured, r.Lo, r.Hi)
			}
		}
		t.Errorf("only %d/%d rows in band", ok, total)
	}

	md := Markdown(rows)
	if !strings.Contains(md, "| Experiment |") || strings.Count(md, "\n") < len(rows) {
		t.Error("markdown rendering incomplete")
	}
	txt := Text(rows)
	if !strings.Contains(txt, "Status") {
		t.Error("text rendering incomplete")
	}
}

func TestHeaderText(t *testing.T) {
	h := RunHeader{Users: 100, PCUsers: 50, Seed: 3, Logs: 1234, IdleFlows: 10}
	out := HeaderText(h)
	for _, want := range []string{"100", "50", "1234", "seed 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("header missing %q: %s", want, out)
		}
	}
}
