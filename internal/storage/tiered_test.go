package storage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicClock is a goroutine-safe fake clock for tier tests that race
// reads against migration.
type atomicClock struct{ ns atomic.Int64 }

func (c *atomicClock) Set(t time.Time)     { c.ns.Store(t.UnixNano()) }
func (c *atomicClock) Add(d time.Duration) { c.ns.Add(int64(d)) }
func (c *atomicClock) Now() time.Time      { return time.Unix(0, c.ns.Load()) }
func newClock(t time.Time) *atomicClock    { c := &atomicClock{}; c.Set(t); return c }

// TestTieredStoreStatsAggregation pins Stats() to a hand-computed
// fixture that includes the cold tier: before the fix, demoted chunks
// vanished from the counters because only the hot tier was consulted.
func TestTieredStoreStatsAggregation(t *testing.T) {
	clock := newClock(time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC))
	ts := NewTieredStore(NewMemStore(), NewMemStore(), time.Hour, clock.Now)

	a := bytes.Repeat([]byte("a"), 100)
	b := bytes.Repeat([]byte("b"), 200)
	c := bytes.Repeat([]byte("c"), 400)
	for _, data := range [][]byte{a, b, c} {
		if err := ts.Put(SumBytes(data), data); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate Put of b is a dedup hit, offered bytes still counted.
	if err := ts.Put(SumBytes(b), b); err != nil {
		t.Fatal(err)
	}
	// Demote everything, then read c to promote it back: the logical
	// store still holds exactly three chunks.
	clock.Add(2 * time.Hour)
	if n, err := ts.Migrate(); err != nil || n != 3 {
		t.Fatalf("migrate: n=%d err=%v", n, err)
	}
	if _, err := ts.Get(SumBytes(c)); err != nil {
		t.Fatal(err)
	}

	want := StoreStats{
		Chunks:      3,
		Bytes:       700,
		Puts:        4,
		DedupHits:   1,
		BytesStored: 900, // 100+200+400 + the duplicate 200
	}
	if got := ts.Stats(); got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
	st := ts.TierStats()
	if st.Demotions != 3 || st.Promotions != 1 || st.ColdReads != 1 {
		t.Fatalf("TierStats = %+v, want 3 demotions, 1 promotion, 1 cold read", st)
	}

	// And with a duplicate re-Put of a demoted chunk: still a dedup
	// hit, not a hot-tier resurrection.
	if err := ts.Put(SumBytes(a), a); err != nil {
		t.Fatal(err)
	}
	got := ts.Stats()
	if got.Chunks != 3 || got.Bytes != 700 || got.DedupHits != 2 {
		t.Fatalf("Stats after cold re-Put = %+v, want 3 chunks/700 bytes/2 dedup hits", got)
	}
	if ts.hot.Has(SumBytes(a)) {
		t.Fatal("re-Put of a demoted chunk resurrected an unaccounted hot copy")
	}
}

// TestTieredStoreMigrateRechecksLastRead reproduces the demotion race
// deterministically: while Migrate is busy demoting a chunk in one
// shard, a read refreshes another stale chunk in a different shard.
// The re-check under the shard lock must spare the freshly-read chunk.
func TestTieredStoreMigrateRechecksLastRead(t *testing.T) {
	clock := newClock(time.Unix(0, 0))
	var ts *TieredStore

	// Two stale chunks in different shards, with A's shard strictly
	// earlier in Migrate's scan order, so A's demotion runs first and
	// our interleaved read of B lands between the candidate scan and
	// B's demotion.
	var dataA, dataB []byte
	var sumA, sumB Sum
	findChunks := func() {
		shardIdx := func(sum Sum) uint32 { return ts.shardIndex(sum) }
		dataA = []byte("shard probe A")
		sumA = SumBytes(dataA)
		for i := 0; ; i++ {
			dataB = []byte(fmt.Sprintf("shard probe B %d", i))
			sumB = SumBytes(dataB)
			if shardIdx(sumB) > shardIdx(sumA) {
				return
			}
		}
	}

	// raceCold triggers the interleaved read while Migrate is copying
	// chunk A into the cold tier (A's shard lock held, B's free).
	raceCold := &hookStore{ChunkStore: NewMemStore()}
	raceCold.onPut = func(sum Sum) {
		if sum != sumA {
			return
		}
		// Simulate a user reading chunk B between the candidate scan
		// and its demotion.
		clock.Add(30 * time.Minute)
		if _, err := ts.Get(sumB); err != nil {
			t.Error(err)
		}
	}

	ts = NewTieredStore(NewMemStore(), raceCold, time.Hour, clock.Now)
	findChunks()
	if err := ts.Put(sumA, dataA); err != nil {
		t.Fatal(err)
	}
	if err := ts.Put(sumB, dataB); err != nil {
		t.Fatal(err)
	}

	clock.Add(2 * time.Hour)
	n, err := ts.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one demotion: A went cold, B was spared by the re-check
	// because the interleaved read refreshed its lastRead.
	if n != 1 {
		t.Fatalf("migrate demoted %d chunks, want 1 (freshly-read chunk must be spared)", n)
	}
	st := ts.TierStats()
	if st.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", st.Demotions)
	}
	sB := ts.shard(sumB)
	sB.mu.Lock()
	hotB := sB.placedHot[sumB]
	sB.mu.Unlock()
	if !hotB {
		t.Fatal("freshly-read chunk was demoted despite the re-check")
	}
}

// TestTieredStoreMigrateGetRace hammers reads, writes, and migration
// concurrently (run under -race); afterwards every chunk must be
// readable and the placement/accounting invariants must hold.
func TestTieredStoreMigrateGetRace(t *testing.T) {
	clock := newClock(time.Unix(0, 0))
	ts := NewTieredStore(NewMemStore(), NewMemStore(), time.Millisecond, clock.Now)

	const chunks = 64
	var data [][]byte
	var sums []Sum
	for i := 0; i < chunks; i++ {
		d := []byte(fmt.Sprintf("race chunk %d", i))
		data = append(data, d)
		sums = append(sums, SumBytes(d))
		if err := ts.Put(sums[i], d); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j := (i*7 + w) % chunks
				got, err := ts.Get(sums[j])
				if err != nil {
					t.Errorf("Get %d: %v", j, err)
					return
				}
				if !bytes.Equal(got, data[j]) {
					t.Errorf("Get %d: wrong bytes", j)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			clock.Add(time.Millisecond)
			if _, err := ts.Migrate(); err != nil {
				t.Errorf("Migrate: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()

	// Every chunk still readable, accounting intact.
	for i := range sums {
		got, err := ts.Get(sums[i])
		if err != nil || !bytes.Equal(got, data[i]) {
			t.Fatalf("chunk %d after race: %v", i, err)
		}
	}
	st := ts.Stats()
	if st.Chunks != chunks {
		t.Fatalf("Chunks = %d, want %d", st.Chunks, chunks)
	}
	ti := ts.TierStats()
	if ti.Promotions > ti.Demotions {
		t.Fatalf("promotions %d > demotions %d", ti.Promotions, ti.Demotions)
	}
}

// hookStore wraps a ChunkStore with injectable Put behaviour.
type hookStore struct {
	ChunkStore
	mu      sync.Mutex
	puts    int
	failPut func(n int) error // called with 1-based Put ordinal
	onPut   func(sum Sum)     // called before delegating
}

func (h *hookStore) Put(sum Sum, data []byte) error {
	h.mu.Lock()
	h.puts++
	n := h.puts
	h.mu.Unlock()
	if h.onPut != nil {
		h.onPut(sum)
	}
	if h.failPut != nil {
		if err := h.failPut(n); err != nil {
			return err
		}
	}
	return h.ChunkStore.Put(sum, data)
}

// TestTieredStoreMigratePartialFailure drives Migrate into a cold
// store that fails its second Put: the first chunk must be cleanly
// cold, the failing chunk must remain fully hot and readable, and the
// accounting must reflect exactly one demotion.
func TestTieredStoreMigratePartialFailure(t *testing.T) {
	clock := newClock(time.Unix(0, 0))
	coldErr := fmt.Errorf("cold tier down")
	cold := &hookStore{ChunkStore: NewMemStore()}
	cold.failPut = func(n int) error {
		if n == 2 {
			return coldErr
		}
		return nil
	}
	ts := NewTieredStore(NewMemStore(), cold, time.Hour, clock.Now)

	var sums []Sum
	var data [][]byte
	for i := 0; i < 2; i++ {
		d := []byte(fmt.Sprintf("partial failure chunk %d", i))
		data = append(data, d)
		sums = append(sums, SumBytes(d))
		if err := ts.Put(sums[i], d); err != nil {
			t.Fatal(err)
		}
	}

	clock.Add(2 * time.Hour)
	n, err := ts.Migrate()
	if err != coldErr {
		t.Fatalf("err = %v, want the injected cold failure", err)
	}
	if n != 1 {
		t.Fatalf("demoted = %d, want 1", n)
	}
	if ts.TierStats().Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", ts.TierStats().Demotions)
	}

	// Both chunks readable; exactly one hot, one cold, and the hot one
	// still has its hot-tier bytes.
	hotCount := 0
	for i := range sums {
		got, err := ts.Get(sums[i])
		if err != nil || !bytes.Equal(got, data[i]) {
			t.Fatalf("chunk %d after failed migrate: %v", i, err)
		}
	}
	for i := range sums {
		s := ts.shard(sums[i])
		s.mu.Lock()
		if s.placedHot[sums[i]] {
			hotCount++
			if !ts.hot.Has(sums[i]) {
				t.Fatal("placement says hot but hot tier lacks the bytes")
			}
		}
		s.mu.Unlock()
	}
	// The cold read above promoted the demoted chunk back, so both are
	// hot again; before promotion exactly one was. Re-derive from tier
	// stats instead: one demotion, one promotion.
	st := ts.TierStats()
	if st.Promotions != 1 || st.ColdReads != 1 {
		t.Fatalf("TierStats = %+v, want exactly one promotion and cold read", st)
	}
	if ts.Stats().Chunks != 2 {
		t.Fatalf("Chunks = %d, want 2", ts.Stats().Chunks)
	}
}

// TestTieredStoreDelete covers the GC path for tiered placement: a
// delete must clear the chunk from both tiers and the accounting.
func TestTieredStoreDelete(t *testing.T) {
	clock := newClock(time.Unix(0, 0))
	ts := NewTieredStore(NewMemStore(), NewMemStore(), time.Hour, clock.Now)

	hotData := []byte("stays hot")
	coldData := []byte("goes cold then is deleted")
	for _, d := range [][]byte{hotData, coldData} {
		if err := ts.Put(SumBytes(d), d); err != nil {
			t.Fatal(err)
		}
	}
	// Age only coldData out.
	s := ts.shard(SumBytes(hotData))
	clock.Add(2 * time.Hour)
	s.mu.Lock()
	s.lastRead[SumBytes(hotData)] = clock.Now()
	s.mu.Unlock()
	if n, err := ts.Migrate(); err != nil || n != 1 {
		t.Fatalf("migrate: n=%d err=%v", n, err)
	}

	for _, d := range [][]byte{hotData, coldData} {
		if err := ts.Delete(SumBytes(d)); err != nil {
			t.Fatal(err)
		}
		if _, err := ts.Get(SumBytes(d)); err != ErrNotFound {
			t.Fatalf("Get after Delete: %v", err)
		}
		if err := ts.Delete(SumBytes(d)); err != ErrNotFound {
			t.Fatalf("double delete: %v", err)
		}
	}
	st := ts.Stats()
	if st.Chunks != 0 || st.Bytes != 0 {
		t.Fatalf("Stats after deletes = %+v, want empty", st)
	}
	if ts.hot.Stats().Chunks != 0 || ts.cold.Stats().Chunks != 0 {
		t.Fatal("backing tiers still hold deleted bytes")
	}
}

// TestTieredStoreDiskCold runs the tiered split with the durable
// store as its cold tier — the deployment shape mcsserver wires with
// -data and -coldafter — across a demote/promote cycle and a reopen.
// TestTieredStoreFlushHot covers the shutdown path of a volatile hot
// tier: chunks acknowledged into RAM but not yet idle long enough for
// Migrate must reach the durable cold tier via FlushHot, or they die
// with the process. The regression this pins: a fresh Put survives a
// flush-then-restart even though Migrate would have skipped it.
func TestTieredStoreFlushHot(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clock := newClock(time.Unix(0, 0))
	ts := NewTieredStore(NewMemStore(), disk, time.Hour, clock.Now)

	fresh := bytes.Repeat([]byte("acked seconds before shutdown"), 40)
	freshSum := SumBytes(fresh)
	if err := ts.Put(freshSum, fresh); err != nil {
		t.Fatal(err)
	}

	// Migrate sees nothing idle; the chunk is still hot-only.
	if n, err := ts.Migrate(); err != nil || n != 0 {
		t.Fatalf("migrate: n=%d err=%v, want 0 demotions", n, err)
	}
	if disk.Has(freshSum) {
		t.Fatal("chunk demoted before FlushHot")
	}

	n, err := ts.FlushHot()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("FlushHot flushed %d chunks, want 1", n)
	}
	if !disk.Has(freshSum) {
		t.Fatal("cold tier missing the flushed chunk")
	}
	if st := ts.TierStats(); st.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", st.Demotions)
	}
	// Idempotent: nothing hot remains.
	if n, err := ts.FlushHot(); err != nil || n != 0 {
		t.Fatalf("second FlushHot: n=%d err=%v, want 0", n, err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// The "restart": only the cold tier survives.
	disk2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	got, err := disk2.Get(freshSum)
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("flushed chunk after reopen: %v", err)
	}
}

func TestTieredStoreDiskCold(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clock := newClock(time.Unix(0, 0))
	ts := NewTieredStore(NewMemStore(), disk, time.Hour, clock.Now)

	data := bytes.Repeat([]byte("tiered durable chunk"), 50)
	sum := SumBytes(data)
	if err := ts.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	clock.Add(2 * time.Hour)
	if n, err := ts.Migrate(); err != nil || n != 1 {
		t.Fatalf("migrate: n=%d err=%v", n, err)
	}
	if !disk.Has(sum) {
		t.Fatal("cold tier missing the demoted chunk")
	}
	got, err := ts.Get(sum)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold read: %v", err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// The cold tier survives a restart: reopen and read directly.
	disk2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	got, err = disk2.Get(sum)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold tier after reopen: %v", err)
	}
}
