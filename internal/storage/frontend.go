package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcloud/internal/trace"
	"mcloud/internal/tracing"
)

// LogSink receives the request logs emitted by a front-end, one per
// file operation and chunk request (Table 1). Implementations must be
// safe for concurrent use.
type LogSink interface {
	Record(trace.Log)
}

// Collector is an in-memory LogSink.
type Collector struct {
	mu   sync.Mutex
	logs []trace.Log
}

// Record implements LogSink.
func (c *Collector) Record(l trace.Log) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs = append(c.logs, l)
}

// Logs returns a copy of the collected entries.
func (c *Collector) Logs() []trace.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]trace.Log, len(c.logs))
	copy(out, c.logs)
	return out
}

// WriterSink streams logs to a trace.Writer.
type WriterSink struct {
	mu      sync.Mutex
	w       *trace.Writer
	err     error // first write error, latched
	dropped int64 // records recorded after the first error
}

// NewWriterSink wraps w.
func NewWriterSink(w *trace.Writer) *WriterSink { return &WriterSink{w: w} }

// Record implements LogSink. The first write error is latched and
// reported by Flush, together with how many records were recorded
// after it (and therefore possibly lost).
func (s *WriterSink) Record(l trace.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped++
		return
	}
	if err := s.w.Write(l); err != nil {
		s.err = err
	}
}

// Flush flushes the underlying writer. If any Record failed, Flush
// reports that first error instead of silently dropping log records.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return fmt.Errorf("storage: request log write failed (%d later records dropped): %w", s.dropped, s.err)
	}
	return s.w.Flush()
}

// FrontEndConfig configures a front-end server. It replaces the old
// positional NewFrontEnd(store, meta, sink, opts) signature so that
// cluster knobs — and whatever comes after them — extend the API
// without another signature break.
type FrontEndConfig struct {
	// Store serves and persists chunks. In a cluster this is the
	// node's ReplicatedStore; single-node deployments pass the local
	// store directly.
	Store ChunkStore
	// Local, when set, serves cluster-internal replica requests
	// (X-MCS-Replica) directly, bypassing any replication layer in
	// Store so forwarded traffic never fans out again. Nil means:
	// Store's local side if Store is a *ReplicatedStore, else Store.
	Local ChunkStore
	// Meta commits uploads and resolves retrievals. Use *Metadata
	// in-process or RemoteMeta against another node.
	Meta MetaService
	// Sink receives the Table 1 request log (nil discards).
	Sink LogSink
	// UpstreamDelay samples the upstream storage-server processing
	// time Tsrv recorded in each log. Nil means zero.
	UpstreamDelay func() time.Duration
	// SleepUpstream, when true, actually sleeps for the sampled delay
	// (live-service realism); tests leave it false.
	SleepUpstream bool
	// Now supplies timestamps (defaults to time.Now); tests and the
	// workload player override it to generate logs on simulated time.
	Now func() time.Time
	// Metrics, when non-nil, receives per-request counters and latency
	// observations (see NewFrontEndMetrics). One instance may be
	// shared across front-ends for service-level totals.
	Metrics *FrontEndMetrics
	// Tracer, when non-nil, records a span per request (continuing
	// the client's trace when the request carries X-MCS-Trace) and
	// pins the traces behind top-bucket latency observations.
	Tracer *tracing.Tracer
	// DisableBin withholds the mcsbin/1 binary dialect: the /v1/bin/*
	// endpoints are not registered and responses carry no X-MCS-Bin
	// stamp, so negotiated peers stay on JSON/HTTP. Used to run
	// legacy-JSON nodes in mixed-version clusters.
	DisableBin bool
	// DisableLegacy withholds the unversioned path aliases (/op/store,
	// /op/retrieve, /chunk/): a /v1-only node. While the aliases are
	// registered they answer with the deprecation headers (-legacyapi;
	// see LegacySunset).
	DisableLegacy bool
	// MetaSummary, when non-nil, supplies the metadata-shard summary
	// attached to /v1/cluster/info (a sharded RemoteMeta's Summary, or
	// a colocated Metadata's view).
	MetaSummary func(ctx context.Context) *MetaShardSummary
}

// FrontEnd is one storage front-end server: it accepts file operation
// requests and chunk transfers, persists chunks (replicating them
// across the cluster when configured), commits uploads to the
// metadata service, and logs every request.
type FrontEnd struct {
	store ChunkStore
	local ChunkStore // serves replica-internal traffic
	meta  MetaService
	sink  LogSink
	cfg   FrontEndConfig

	mu      sync.Mutex
	pending map[string]*pendingUpload
}

type pendingUpload struct {
	url      string
	shard    int // metadata shard that reserved the URL (from the op request)
	expected []Sum
	got      map[Sum]bool
}

// missingLocked lists the expected chunks that have not arrived, in
// upload order without duplicates (caller holds mu).
func (p *pendingUpload) missingLocked() []Sum {
	var missing []Sum
	seen := make(map[Sum]bool, len(p.expected))
	for _, s := range p.expected {
		if !p.got[s] && !seen[s] {
			seen[s] = true
			missing = append(missing, s)
		}
	}
	return missing
}

// NewFrontEnd returns a front-end built from cfg.
func NewFrontEnd(cfg FrontEndConfig) *FrontEnd {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	local := cfg.Local
	if local == nil {
		if rs, ok := cfg.Store.(*ReplicatedStore); ok {
			local = rs.Local()
		} else {
			local = cfg.Store
		}
	}
	return &FrontEnd{
		store:   cfg.Store,
		local:   local,
		meta:    cfg.Meta,
		sink:    cfg.Sink,
		cfg:     cfg,
		pending: make(map[string]*pendingUpload),
	}
}

// reqIdentity extracts the client identity headers.
func reqIdentity(r *http.Request) (dev trace.DeviceType, devID, userID uint64, rtt time.Duration, proxied bool) {
	dev, _ = trace.ParseDeviceType(r.Header.Get("X-Device-Type"))
	devID, _ = strconv.ParseUint(r.Header.Get("X-Device-ID"), 10, 64)
	userID, _ = strconv.ParseUint(r.Header.Get("X-User-ID"), 10, 64)
	if v := r.Header.Get("X-Sim-RTT"); v != "" {
		if ns, err := strconv.ParseInt(v, 10, 64); err == nil {
			rtt = time.Duration(ns)
		}
	}
	proxied = r.Header.Get("X-Forwarded-For") != ""
	return dev, devID, userID, rtt, proxied
}

// simTime reads the client's virtual timestamp header, used when a
// pre-generated trace is replayed through the live service in
// compressed wall time: the front-end logs the trace's simulated
// clock instead of time.Now, so session analysis of the replayed logs
// matches the source trace. Zero when absent.
func simTime(r *http.Request) time.Time {
	v := r.Header.Get("X-Sim-Time")
	if v == "" {
		return time.Time{}
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// record emits one log entry and the matching metric observations. A
// replayed request's virtual timestamp (X-Sim-Time) takes precedence
// over the wall clock.
func (f *FrontEnd) record(r *http.Request, typ trace.ReqType, bytes int64, started time.Time, tsrv time.Duration) {
	if f.sink == nil && f.cfg.Metrics == nil {
		return
	}
	dev, devID, userID, rtt, proxied := reqIdentity(r)
	elapsed := f.cfg.Now().Sub(started)
	if fm := f.cfg.Metrics; fm != nil {
		// elapsed equals the log's TransferTime (Proc - Server), so the
		// scraped histogram matches what mcsanalyze computes from the log.
		fm.observe(typ, dev, bytes, elapsed)
		// Tail-based exemplar capture: an observation landing in the
		// histogram's top buckets pins its trace, so the requests
		// behind the p99 stay inspectable after the ring turns over.
		if fm.slowExemplar(typ, elapsed.Seconds()) {
			tracing.FromContext(r.Context()).Pin()
		}
	}
	if f.sink == nil {
		return
	}
	logTime := started
	if st := simTime(r); !st.IsZero() {
		logTime = st
	}
	f.sink.Record(trace.Log{
		Time:     logTime,
		Device:   dev,
		DeviceID: devID,
		UserID:   userID,
		Type:     typ,
		Bytes:    bytes,
		Proc:     elapsed + tsrv,
		Server:   tsrv,
		RTT:      rtt,
		Proxied:  proxied,
	})
}

// countErr bumps the error counter for a request type.
func (f *FrontEnd) countErr(typ trace.ReqType) {
	if fm := f.cfg.Metrics; fm != nil {
		fm.errors[typ].Inc()
	}
}

// fail counts and writes one error response in the dialect the
// request speaks (typed /v1 envelope or legacy body).
func (f *FrontEnd) fail(w http.ResponseWriter, r *http.Request, code int, err error, typ trace.ReqType) {
	f.countErr(typ)
	writeAPIError(w, r, code, err)
}

// upstream samples (and optionally performs) the upstream delay.
func (f *FrontEnd) upstream() time.Duration {
	if f.cfg.UpstreamDelay == nil {
		return 0
	}
	d := f.cfg.UpstreamDelay()
	if f.cfg.SleepUpstream && d > 0 {
		time.Sleep(d)
	}
	return d
}

// Handler returns the front-end HTTP API. The versioned surface:
//
//	POST /v1/op/store        file storage operation request
//	POST /v1/op/retrieve     file retrieval operation request
//	POST /v1/op/stat         batched chunk existence check
//	PUT  /v1/chunk/{md5}     chunk storage request
//	GET  /v1/chunk/{md5}     chunk retrieval request
//	GET  /v1/cluster/info    node's cluster configuration
//	GET  /v1/cluster/chunks  locally-held chunk listing (rebalance)
//
// The legacy unversioned paths (/op/store, /op/retrieve, /chunk/)
// remain as thin aliases onto the same handlers. Every response
// carries X-MCS-API: v1; errors follow the request's dialect.
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	if !f.cfg.DisableLegacy {
		mux.HandleFunc("/op/store", deprecateAlias("/op/store", f.handleStoreOp))
		mux.HandleFunc("/op/retrieve", deprecateAlias("/op/retrieve", f.handleRetrieveOp))
		mux.HandleFunc("/chunk/", deprecateAlias("/chunk/", f.handleChunk))
	}
	mux.HandleFunc("/v1/op/store", f.handleStoreOp)
	mux.HandleFunc("/v1/op/retrieve", f.handleRetrieveOp)
	mux.HandleFunc("/v1/op/stat", f.handleStatOp)
	mux.HandleFunc("/v1/chunk/", f.handleChunk)
	mux.HandleFunc("/v1/cluster/info", f.handleClusterInfo)
	mux.HandleFunc("/v1/cluster/chunks", f.handleClusterChunks)
	if !f.cfg.DisableBin {
		mux.HandleFunc("/v1/bin/get", f.handleBinGet)
		mux.HandleFunc("/v1/bin/put", f.handleBinPut)
	}
	// The tracing middleware wraps the whole surface — legacy aliases
	// included, so traces survive dialect fallback — and places the
	// request span in the context for the store layers below.
	return tracing.Middleware(f.cfg.Tracer, tracing.CompFrontEnd, spanName,
		advertiseDialects(!f.cfg.DisableBin, mux))
}

// spanName maps a request onto a low-cardinality span name: the
// digest is stripped from chunk paths and the /v1 prefix is dropped
// so both dialects trace identically. Replica-internal hops are
// marked so fan-out spans are distinguishable from client requests.
func spanName(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/v1")
	if strings.HasPrefix(p, "/chunk/") {
		p = "/chunk"
	}
	if isReplicaRequest(r) {
		p += " (replica)"
	}
	return r.Method + " " + p
}

func (f *FrontEnd) handleStoreOp(w http.ResponseWriter, r *http.Request) {
	started := f.cfg.Now()
	var req FileOpRequest
	if !decodeJSON(w, r, &req) {
		f.countErr(trace.FileStore)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		f.fail(w, r, http.StatusBadRequest, fmt.Errorf("storage: missing url parameter"), trace.FileStore)
		return
	}
	expected := make([]Sum, 0, len(req.ChunkMD5s))
	for _, s := range req.ChunkMD5s {
		sum, err := ParseSum(s)
		if err != nil {
			f.fail(w, r, http.StatusBadRequest, err, trace.FileStore)
			return
		}
		expected = append(expected, sum)
	}
	if len(expected) == 0 {
		// Zero-byte files carry no chunks; commit immediately.
		if err := metaCommit(r.Context(), f.meta, req.Shard, url, nil); err != nil {
			f.fail(w, r, metaErrStatus(err, http.StatusNotFound), err, trace.FileStore)
			return
		}
		tsrv := f.upstream()
		f.record(r, trace.FileStore, 0, started, tsrv)
		writeJSON(w, FileOpResponse{OK: true, Resumable: true})
		return
	}

	// Probe which chunks the store already holds — from an interrupted
	// earlier attempt or shared with another file — in one batched
	// call, outside the pending-table lock: on a replicated store each
	// Has is network I/O, and the batch collapses the per-chunk round
	// trips to one per replica owner. Staleness is harmless: a chunk
	// that lands between probe and registration is simply re-sent, and
	// chunk PUTs are idempotent.
	present := multiHas(f.store, expected)

	// Re-issuing the operation for an in-flight URL resumes it: the
	// upload's progress survives, and the response tells the client
	// which chunks are still needed.
	f.mu.Lock()
	p, ok := f.pending[url]
	if !ok {
		p = &pendingUpload{url: url, shard: req.Shard, expected: expected, got: make(map[Sum]bool)}
		for i, s := range expected {
			if present[i] {
				p.got[s] = true
			}
		}
		f.pending[url] = p
		if fm := f.cfg.Metrics; fm != nil {
			fm.pending.Inc()
		}
	} else {
		p.expected = expected
	}
	missing := p.missingLocked()
	var snapshot []Sum
	if len(missing) == 0 {
		snapshot = append([]Sum(nil), p.expected...)
	}
	f.mu.Unlock()

	if len(missing) == 0 {
		if err := f.commitUpload(r.Context(), req.Shard, url, snapshot); err != nil {
			f.fail(w, r, metaErrStatus(err, http.StatusInternalServerError), err, trace.FileStore)
			return
		}
	}

	tsrv := f.upstream()
	f.record(r, trace.FileStore, 0, started, tsrv)
	writeJSON(w, FileOpResponse{OK: true, Resumable: true, MissingMD5s: sumStrings(missing)})
}

// handleStatOp answers the batched existence check: one round trip
// for a whole file's worth of chunk digests. v1-only (no legacy
// alias); stat requests are control-plane traffic and are not logged
// in the Table 1 schema.
func (f *FrontEnd) handleStatOp(w http.ResponseWriter, r *http.Request) {
	var req StatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sums, err := parseSums(req.ChunkMD5s)
	if err != nil {
		writeAPIError(w, r, http.StatusBadRequest, err)
		return
	}
	// Replica-internal stats answer for this node's local holdings
	// only (the rebalancer and peer owners ask "do YOU have it", not
	// "can the cluster find it").
	store := f.store
	if isReplicaRequest(r) {
		store = f.local
	}
	present := multiHas(store, sums)
	resp := StatResponse{}
	for i, ok := range present {
		if ok {
			resp.Present++
		} else {
			resp.MissingMD5s = append(resp.MissingMD5s, req.ChunkMD5s[i])
		}
	}
	writeJSON(w, resp)
}

// commitUpload finalizes a completed upload at the metadata server and
// only then drops the pending record, so a failed commit remains
// retryable by the client (via op re-issue or chunk re-PUT). The
// request context rides along so the metadata server's WAL spans join
// the caller's trace.
func (f *FrontEnd) commitUpload(ctx context.Context, shard int, url string, expected []Sum) error {
	if err := metaCommit(ctx, f.meta, shard, url, expected); err != nil {
		return err
	}
	f.mu.Lock()
	_, ok := f.pending[url]
	delete(f.pending, url)
	f.mu.Unlock()
	if ok {
		if fm := f.cfg.Metrics; fm != nil {
			fm.pending.Dec()
		}
	}
	return nil
}

func (f *FrontEnd) handleRetrieveOp(w http.ResponseWriter, r *http.Request) {
	started := f.cfg.Now()
	var req FileOpRequest
	if !decodeJSON(w, r, &req) {
		f.countErr(trace.FileRetrieve)
		return
	}
	sum, err := ParseSum(req.FileMD5)
	if err != nil {
		f.fail(w, r, http.StatusBadRequest, err, trace.FileRetrieve)
		return
	}
	meta, err := metaLookup(r.Context(), f.meta, req.Shard, sum)
	if err != nil {
		f.fail(w, r, http.StatusNotFound, err, trace.FileRetrieve)
		return
	}
	tsrv := f.upstream()
	f.record(r, trace.FileRetrieve, 0, started, tsrv)
	writeJSON(w, FileOpResponse{OK: true, ChunkMD5s: sumStrings(meta.ChunkMD5s), Size: meta.Size})
}

func (f *FrontEnd) handleChunk(w http.ResponseWriter, r *http.Request) {
	started := f.cfg.Now()
	// Attribute pre-dispatch errors to the direction the method implies.
	typ := trace.ChunkRetrieve
	if r.Method == http.MethodPut {
		typ = trace.ChunkStore
	}
	sum, err := ParseSum(trimChunkPath(r.URL.Path))
	if err != nil {
		f.fail(w, r, http.StatusBadRequest, err, typ)
		return
	}
	// Replica-internal traffic (PUT fan-out, GET failover, repair and
	// rebalance streams) addresses this node's local store directly
	// and is never re-forwarded, bounding the cluster's forwarding
	// depth to one hop. It also bypasses upload tracking — the node
	// that accepted the client's upload owns that bookkeeping.
	if isReplicaRequest(r) {
		f.handleReplicaChunk(w, r, sum)
		return
	}
	switch r.Method {
	case http.MethodPut:
		f.putChunk(w, r, sum, started)
	case http.MethodGet:
		f.getChunk(w, r, sum, started)
	default:
		f.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method), typ)
	}
}

// handleReplicaChunk serves cluster-internal chunk traffic from the
// local store: PUT stores, GET reads (404 when absent — the caller
// fails over to the next replica), DELETE drops a misplaced copy
// (used by mcsrebalance -prune).
func (f *FrontEnd) handleReplicaChunk(w http.ResponseWriter, r *http.Request, sum Sum) {
	switch r.Method {
	case http.MethodPut:
		scratch := getChunkBuf()
		defer putChunkBuf(scratch)
		n, overflow, err := readBody(r.Body, *scratch)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		data := (*scratch)[:n]
		if overflow || len(data) > ChunkSize {
			writeAPIError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w: chunk exceeds %d bytes", ErrTooLarge, ChunkSize))
			return
		}
		if err := PutCtx(r.Context(), f.local, sum, data); err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, FileOpResponse{OK: true})
	case http.MethodGet:
		rd, err := GetReader(r.Context(), f.local, sum)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		defer rd.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(rd.Size(), 10))
		f.streamChunk(w, r, rd, sum, trace.ChunkRetrieve)
	case http.MethodDelete:
		d, ok := f.local.(Deleter)
		if !ok {
			writeAPIError(w, r, http.StatusNotImplemented,
				fmt.Errorf("storage: local store cannot delete"))
			return
		}
		if err := d.Delete(sum); err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, FileOpResponse{OK: true})
	default:
		writeAPIError(w, r, http.StatusMethodNotAllowed,
			fmt.Errorf("storage: method %s not allowed", r.Method))
	}
}

// handleClusterInfo reports the node's placement configuration, plus a
// metadata-plane summary when this node knows how to build one.
func (f *FrontEnd) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	var info ClusterInfo
	if rs, ok := f.store.(*ReplicatedStore); ok {
		info = rs.Info()
	} else {
		info = ClusterInfo{Replicas: 1, Quorum: 1}
	}
	if f.cfg.MetaSummary != nil {
		info.Meta = f.cfg.MetaSummary(r.Context())
	}
	writeJSON(w, info)
}

// handleClusterChunks streams the digests held by this node's local
// store, for the rebalancer. Requires a store that supports Range.
func (f *FrontEnd) handleClusterChunks(w http.ResponseWriter, r *http.Request) {
	ranger, ok := f.local.(Ranger)
	if !ok {
		writeAPIError(w, r, http.StatusNotImplemented,
			fmt.Errorf("storage: local store cannot enumerate chunks"))
		return
	}
	var chunks []ChunkInfo
	ranger.Range(func(sum Sum, size int64) bool {
		chunks = append(chunks, ChunkInfo{MD5: sum.String(), Size: size})
		return true
	})
	writeJSON(w, chunks)
}

func (f *FrontEnd) putChunk(w http.ResponseWriter, r *http.Request, sum Sum, started time.Time) {
	// The body lands in a pooled chunk-sized buffer: the store copies
	// what it keeps, so the hot upload path allocates only that copy.
	scratch := getChunkBuf()
	defer putChunkBuf(scratch)
	n, overflow, err := readBody(r.Body, *scratch)
	if err != nil {
		f.fail(w, r, http.StatusBadRequest, err, trace.ChunkStore)
		return
	}
	data := (*scratch)[:n]
	if overflow || len(data) > ChunkSize {
		f.fail(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%w: chunk exceeds %d bytes", ErrTooLarge, ChunkSize), trace.ChunkStore)
		return
	}
	if err := PutCtx(r.Context(), f.store, sum, data); err != nil {
		code := http.StatusBadRequest
		if IsUnavailable(err) {
			code = http.StatusServiceUnavailable
		}
		f.fail(w, r, code, err, trace.ChunkStore)
		return
	}
	tsrv := f.upstream()

	// Track upload completion for the owning file, if any.
	url := r.URL.Query().Get("url")
	if url != "" {
		f.mu.Lock()
		var snapshot []Sum
		var shard int
		if p, ok := f.pending[url]; ok {
			p.got[sum] = true
			if f.completeLocked(p) {
				snapshot = append([]Sum(nil), p.expected...)
				shard = p.shard
			}
		}
		f.mu.Unlock()
		if snapshot != nil {
			if err := f.commitUpload(r.Context(), shard, url, snapshot); err != nil {
				f.fail(w, r, metaErrStatus(err, http.StatusInternalServerError), err, trace.ChunkStore)
				return
			}
		}
	}

	f.record(r, trace.ChunkStore, int64(len(data)), started, tsrv)
	writeJSON(w, FileOpResponse{OK: true})
}

// completeLocked reports whether every expected chunk has arrived.
func (f *FrontEnd) completeLocked(p *pendingUpload) bool {
	for _, s := range p.expected {
		if !p.got[s] {
			return false
		}
	}
	return true
}

func (f *FrontEnd) getChunk(w http.ResponseWriter, r *http.Request, sum Sum, started time.Time) {
	rd, err := GetReader(r.Context(), f.store, sum)
	if err != nil {
		code := http.StatusNotFound
		if IsUnavailable(err) {
			code = http.StatusServiceUnavailable
		}
		f.fail(w, r, code, err, trace.ChunkRetrieve)
		return
	}
	defer rd.Close()
	tsrv := f.upstream()
	f.record(r, trace.ChunkRetrieve, rd.Size(), started, tsrv)
	// Content-Length is known from the record header, so the response
	// skips chunked framing and the client can fail fast on truncation.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(rd.Size(), 10))
	f.streamChunk(w, r, rd, sum, trace.ChunkRetrieve)
}

// streamChunk copies a chunk payload into the response, verifying the
// record CRC during the copy (disk-backed readers; no second pass).
// A partial or failed write is counted and annotated on the request
// span instead of being silently dropped — the status line is already
// out, so that is all a server can do for a dead client. Corruption
// detected mid-stream aborts the connection: the client sees a short
// body, fails its digest check, and re-fetches from another replica.
func (f *FrontEnd) streamChunk(w http.ResponseWriter, r *http.Request, rd *ChunkReader, sum Sum, typ trace.ReqType) {
	_, verified, werr := rd.StreamTo(w)
	if werr != nil {
		f.countErr(typ)
		tracing.FromContext(r.Context()).Annotate("write_err", werr.Error())
		return
	}
	if !verified {
		f.countErr(typ)
		tracing.FromContext(r.Context()).Annotate("corrupt", sum.String())
		panic(http.ErrAbortHandler)
	}
}

// binErrStatus maps a frame/batch decode error onto its HTTP status;
// classifyAPIError then renders the matching typed envelope code.
func binErrStatus(err error) int {
	if errors.Is(err, ErrTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// upstreamBatch samples one upstream delay per batched chunk but
// sleeps only the maximum once: the batch members share the upstream
// round trip, which is where the binary dialect's latency win on
// upstream-bound paths comes from. Each chunk's log still records its
// own sampled tsrv.
func (f *FrontEnd) upstreamBatch(n int) []time.Duration {
	out := make([]time.Duration, n)
	if f.cfg.UpstreamDelay == nil {
		return out
	}
	var max time.Duration
	for i := range out {
		out[i] = f.cfg.UpstreamDelay()
		if out[i] > max {
			max = out[i]
		}
	}
	if f.cfg.SleepUpstream && max > 0 {
		time.Sleep(max)
	}
	return out
}

// handleBinGet serves a batched binary chunk fetch: the request body
// lists digests, the response is one mcsbin/1 frame per digest in
// order (not-found frames for absent chunks). All readers are opened
// before the first response byte — pins held across the response, so
// every error can still use the typed envelope and the Content-Length
// is exact. Disk-resident chunks stream their raw record region
// (framing and checksum included) with no re-encode.
func (f *FrontEnd) handleBinGet(w http.ResponseWriter, r *http.Request) {
	started := f.cfg.Now()
	if r.Method != http.MethodPost {
		f.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method), trace.ChunkRetrieve)
		return
	}
	sums, err := decodeBinGetRequest(r.Body, binMaxBatch)
	if err != nil {
		f.fail(w, r, binErrStatus(err), err, trace.ChunkRetrieve)
		return
	}
	store := f.store
	if isReplicaRequest(r) {
		store = f.local
	}
	readers := make([]*ChunkReader, len(sums))
	defer func() {
		for _, rd := range readers {
			if rd != nil {
				rd.Close()
			}
		}
	}()
	var total int64
	for i, sum := range sums {
		rd, err := GetReader(r.Context(), store, sum)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				total += recHeaderSize
				continue
			}
			code := http.StatusInternalServerError
			if IsUnavailable(err) {
				code = http.StatusServiceUnavailable
			}
			f.fail(w, r, code, err, trace.ChunkRetrieve)
			return
		}
		readers[i] = rd
		total += recHeaderSize + rd.Size()
	}
	tsrvs := f.upstreamBatch(len(sums))
	w.Header().Set("Content-Type", binContentType)
	w.Header().Set("Content-Length", strconv.FormatInt(total, 10))
	prev := started
	for i, sum := range sums {
		rd := readers[i]
		if rd == nil {
			if _, werr := w.Write(binNotFoundFrame(sum)); werr != nil {
				f.countErr(trace.ChunkRetrieve)
				tracing.FromContext(r.Context()).Annotate("write_err", werr.Error())
				return
			}
			continue
		}
		var werr error
		if fr, _, ok := rd.Frame(); ok {
			buf := getCopyBuf()
			_, werr = io.CopyBuffer(w, fr, *buf)
			putCopyBuf(buf)
		} else {
			var hdr [recHeaderSize]byte
			data, _ := rd.Bytes()
			encodeHeader(hdr[:], sum, uint32(rd.Size()), data)
			if _, werr = w.Write(hdr[:]); werr == nil {
				_, _, werr = rd.StreamTo(w)
			}
		}
		size := rd.Size()
		rd.Close()
		readers[i] = nil
		if werr != nil {
			f.countErr(trace.ChunkRetrieve)
			tracing.FromContext(r.Context()).Annotate("write_err", werr.Error())
			return
		}
		// Per-chunk Table 1 logs with additive elapsed shares, so the
		// batch accounts for the same wall time as n single requests.
		f.record(r, trace.ChunkRetrieve, size, prev, tsrvs[i])
		prev = f.cfg.Now()
	}
}

// handleBinPut accepts a batched binary chunk upload: count frames,
// each verified (CRC during the streaming read, then MD5 against the
// frame digest) and stored before the next is read. Any bad frame
// fails the whole request closed with the typed envelope — nothing
// has been written to the response yet — and the client falls back to
// per-chunk JSON PUTs, which are idempotent over whatever this batch
// already stored. The ?url= query ties the chunks to their pending
// upload exactly like PUT /v1/chunk/{md5}.
func (f *FrontEnd) handleBinPut(w http.ResponseWriter, r *http.Request) {
	started := f.cfg.Now()
	if r.Method != http.MethodPost {
		f.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method), trace.ChunkStore)
		return
	}
	count, err := decodeBinCount(r.Body, binMaxBatch)
	if err != nil {
		f.fail(w, r, binErrStatus(err), err, trace.ChunkStore)
		return
	}
	store := f.store
	replica := isReplicaRequest(r)
	if replica {
		store = f.local
	}
	scratch := getChunkBuf()
	defer putChunkBuf(scratch)
	sums := make([]Sum, 0, count)
	tsrvs := f.upstreamBatch(count)
	prev := started
	for i := 0; i < count; i++ {
		fr, err := readBinFrame(r.Body, *scratch)
		if err != nil {
			f.fail(w, r, binErrStatus(err), err, trace.ChunkStore)
			return
		}
		if fr.notFound {
			f.fail(w, r, http.StatusBadRequest, fmt.Errorf("storage: mcsbin: not-found frame in put batch"), trace.ChunkStore)
			return
		}
		if fr.got != fr.sum {
			f.fail(w, r, http.StatusBadRequest,
				fmt.Errorf("%w: frame payload hashes to %s, header says %s", ErrBadDigest, fr.got, fr.sum), trace.ChunkStore)
			return
		}
		if err := PutCtx(r.Context(), store, fr.sum, fr.payload); err != nil {
			code := http.StatusBadRequest
			if IsUnavailable(err) {
				code = http.StatusServiceUnavailable
			}
			f.fail(w, r, code, err, trace.ChunkStore)
			return
		}
		sums = append(sums, fr.sum)
		f.record(r, trace.ChunkStore, int64(len(fr.payload)), prev, tsrvs[i])
		prev = f.cfg.Now()
	}

	if url := r.URL.Query().Get("url"); url != "" && !replica {
		f.mu.Lock()
		var snapshot []Sum
		var shard int
		if p, ok := f.pending[url]; ok {
			for _, sum := range sums {
				p.got[sum] = true
			}
			if f.completeLocked(p) {
				snapshot = append([]Sum(nil), p.expected...)
				shard = p.shard
			}
		}
		f.mu.Unlock()
		if snapshot != nil {
			if err := f.commitUpload(r.Context(), shard, url, snapshot); err != nil {
				f.fail(w, r, metaErrStatus(err, http.StatusInternalServerError), err, trace.ChunkStore)
				return
			}
		}
	}
	writeJSON(w, FileOpResponse{OK: true})
}

// IsUnavailable reports whether err is the cluster's "not enough live
// replicas" condition, which maps to 503 rather than 404/400.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrUnavailable)
}
