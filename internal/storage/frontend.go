package storage

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcloud/internal/trace"
)

// LogSink receives the request logs emitted by a front-end, one per
// file operation and chunk request (Table 1). Implementations must be
// safe for concurrent use.
type LogSink interface {
	Record(trace.Log)
}

// Collector is an in-memory LogSink.
type Collector struct {
	mu   sync.Mutex
	logs []trace.Log
}

// Record implements LogSink.
func (c *Collector) Record(l trace.Log) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs = append(c.logs, l)
}

// Logs returns a copy of the collected entries.
func (c *Collector) Logs() []trace.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]trace.Log, len(c.logs))
	copy(out, c.logs)
	return out
}

// WriterSink streams logs to a trace.Writer.
type WriterSink struct {
	mu      sync.Mutex
	w       *trace.Writer
	err     error // first write error, latched
	dropped int64 // records recorded after the first error
}

// NewWriterSink wraps w.
func NewWriterSink(w *trace.Writer) *WriterSink { return &WriterSink{w: w} }

// Record implements LogSink. The first write error is latched and
// reported by Flush, together with how many records were recorded
// after it (and therefore possibly lost).
func (s *WriterSink) Record(l trace.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped++
		return
	}
	if err := s.w.Write(l); err != nil {
		s.err = err
	}
}

// Flush flushes the underlying writer. If any Record failed, Flush
// reports that first error instead of silently dropping log records.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return fmt.Errorf("storage: request log write failed (%d later records dropped): %w", s.dropped, s.err)
	}
	return s.w.Flush()
}

// FrontEndOptions tunes a front-end server.
type FrontEndOptions struct {
	// UpstreamDelay samples the upstream storage-server processing
	// time Tsrv recorded in each log. Nil means zero.
	UpstreamDelay func() time.Duration
	// SleepUpstream, when true, actually sleeps for the sampled delay
	// (live-service realism); tests leave it false.
	SleepUpstream bool
	// Now supplies timestamps (defaults to time.Now); tests and the
	// workload player override it to generate logs on simulated time.
	Now func() time.Time
	// Metrics, when non-nil, receives per-request counters and latency
	// observations (see NewFrontEndMetrics). One instance may be
	// shared across front-ends for service-level totals.
	Metrics *FrontEndMetrics
}

// FrontEnd is one storage front-end server: it accepts file operation
// requests and chunk transfers, persists chunks, commits uploads to
// the metadata server, and logs every request.
type FrontEnd struct {
	store ChunkStore
	meta  *Metadata
	sink  LogSink
	opts  FrontEndOptions

	mu      sync.Mutex
	pending map[string]*pendingUpload
}

type pendingUpload struct {
	url      string
	expected []Sum
	got      map[Sum]bool
}

// missingLocked lists the expected chunks that have not arrived, in
// upload order without duplicates (caller holds mu).
func (p *pendingUpload) missingLocked() []Sum {
	var missing []Sum
	seen := make(map[Sum]bool, len(p.expected))
	for _, s := range p.expected {
		if !p.got[s] && !seen[s] {
			seen[s] = true
			missing = append(missing, s)
		}
	}
	return missing
}

// NewFrontEnd returns a front-end backed by the given chunk store and
// metadata server, logging into sink (which may be nil to discard).
func NewFrontEnd(store ChunkStore, meta *Metadata, sink LogSink, opts FrontEndOptions) *FrontEnd {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &FrontEnd{
		store:   store,
		meta:    meta,
		sink:    sink,
		opts:    opts,
		pending: make(map[string]*pendingUpload),
	}
}

// reqIdentity extracts the client identity headers.
func reqIdentity(r *http.Request) (dev trace.DeviceType, devID, userID uint64, rtt time.Duration, proxied bool) {
	dev, _ = trace.ParseDeviceType(r.Header.Get("X-Device-Type"))
	devID, _ = strconv.ParseUint(r.Header.Get("X-Device-ID"), 10, 64)
	userID, _ = strconv.ParseUint(r.Header.Get("X-User-ID"), 10, 64)
	if v := r.Header.Get("X-Sim-RTT"); v != "" {
		if ns, err := strconv.ParseInt(v, 10, 64); err == nil {
			rtt = time.Duration(ns)
		}
	}
	proxied = r.Header.Get("X-Forwarded-For") != ""
	return dev, devID, userID, rtt, proxied
}

// simTime reads the client's virtual timestamp header, used when a
// pre-generated trace is replayed through the live service in
// compressed wall time: the front-end logs the trace's simulated
// clock instead of time.Now, so session analysis of the replayed logs
// matches the source trace. Zero when absent.
func simTime(r *http.Request) time.Time {
	v := r.Header.Get("X-Sim-Time")
	if v == "" {
		return time.Time{}
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// record emits one log entry and the matching metric observations. A
// replayed request's virtual timestamp (X-Sim-Time) takes precedence
// over the wall clock.
func (f *FrontEnd) record(r *http.Request, typ trace.ReqType, bytes int64, started time.Time, tsrv time.Duration) {
	if f.sink == nil && f.opts.Metrics == nil {
		return
	}
	dev, devID, userID, rtt, proxied := reqIdentity(r)
	elapsed := f.opts.Now().Sub(started)
	if fm := f.opts.Metrics; fm != nil {
		// elapsed equals the log's TransferTime (Proc - Server), so the
		// scraped histogram matches what mcsanalyze computes from the log.
		fm.observe(typ, dev, bytes, elapsed)
	}
	if f.sink == nil {
		return
	}
	logTime := started
	if st := simTime(r); !st.IsZero() {
		logTime = st
	}
	f.sink.Record(trace.Log{
		Time:     logTime,
		Device:   dev,
		DeviceID: devID,
		UserID:   userID,
		Type:     typ,
		Bytes:    bytes,
		Proc:     elapsed + tsrv,
		Server:   tsrv,
		RTT:      rtt,
		Proxied:  proxied,
	})
}

// countErr bumps the error counter for a request type.
func (f *FrontEnd) countErr(typ trace.ReqType) {
	if fm := f.opts.Metrics; fm != nil {
		fm.errors[typ].Inc()
	}
}

// fail counts and writes one error response.
func (f *FrontEnd) fail(w http.ResponseWriter, code int, err error, typ trace.ReqType) {
	f.countErr(typ)
	writeError(w, code, err)
}

// upstream samples (and optionally performs) the upstream delay.
func (f *FrontEnd) upstream() time.Duration {
	if f.opts.UpstreamDelay == nil {
		return 0
	}
	d := f.opts.UpstreamDelay()
	if f.opts.SleepUpstream && d > 0 {
		time.Sleep(d)
	}
	return d
}

// Handler returns the front-end HTTP API:
//
//	POST /op/store      file storage operation request
//	POST /op/retrieve   file retrieval operation request
//	PUT  /chunk/{md5}   chunk storage request
//	GET  /chunk/{md5}   chunk retrieval request
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/op/store", f.handleStoreOp)
	mux.HandleFunc("/op/retrieve", f.handleRetrieveOp)
	mux.HandleFunc("/chunk/", f.handleChunk)
	return mux
}

func (f *FrontEnd) handleStoreOp(w http.ResponseWriter, r *http.Request) {
	started := f.opts.Now()
	var req FileOpRequest
	if !decodeJSON(w, r, &req) {
		f.countErr(trace.FileStore)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		f.fail(w, http.StatusBadRequest, fmt.Errorf("storage: missing url parameter"), trace.FileStore)
		return
	}
	expected := make([]Sum, 0, len(req.ChunkMD5s))
	for _, s := range req.ChunkMD5s {
		sum, err := ParseSum(s)
		if err != nil {
			f.fail(w, http.StatusBadRequest, err, trace.FileStore)
			return
		}
		expected = append(expected, sum)
	}
	if len(expected) == 0 {
		// Zero-byte files carry no chunks; commit immediately.
		if err := f.meta.Commit(url, nil); err != nil {
			f.fail(w, http.StatusNotFound, err, trace.FileStore)
			return
		}
		tsrv := f.upstream()
		f.record(r, trace.FileStore, 0, started, tsrv)
		writeJSON(w, FileOpResponse{OK: true, Resumable: true})
		return
	}

	// Re-issuing the operation for an in-flight URL resumes it: the
	// upload's progress survives, and the response tells the client
	// which chunks are still needed. Chunks the store already holds —
	// from an interrupted earlier attempt or shared with another file —
	// are counted as arrived, so clients never re-send stored bytes.
	f.mu.Lock()
	p, ok := f.pending[url]
	if !ok {
		p = &pendingUpload{url: url, expected: expected, got: make(map[Sum]bool)}
		for _, s := range expected {
			if f.store.Has(s) {
				p.got[s] = true
			}
		}
		f.pending[url] = p
		if fm := f.opts.Metrics; fm != nil {
			fm.pending.Inc()
		}
	} else {
		p.expected = expected
	}
	missing := p.missingLocked()
	var snapshot []Sum
	if len(missing) == 0 {
		snapshot = append([]Sum(nil), p.expected...)
	}
	f.mu.Unlock()

	if len(missing) == 0 {
		if err := f.commitUpload(url, snapshot); err != nil {
			f.fail(w, http.StatusInternalServerError, err, trace.FileStore)
			return
		}
	}

	tsrv := f.upstream()
	f.record(r, trace.FileStore, 0, started, tsrv)
	missStrs := make([]string, len(missing))
	for i, s := range missing {
		missStrs[i] = s.String()
	}
	writeJSON(w, FileOpResponse{OK: true, Resumable: true, MissingMD5s: missStrs})
}

// commitUpload finalizes a completed upload at the metadata server and
// only then drops the pending record, so a failed commit remains
// retryable by the client (via op re-issue or chunk re-PUT).
func (f *FrontEnd) commitUpload(url string, expected []Sum) error {
	if err := f.meta.Commit(url, expected); err != nil {
		return err
	}
	f.mu.Lock()
	_, ok := f.pending[url]
	delete(f.pending, url)
	f.mu.Unlock()
	if ok {
		if fm := f.opts.Metrics; fm != nil {
			fm.pending.Dec()
		}
	}
	return nil
}

func (f *FrontEnd) handleRetrieveOp(w http.ResponseWriter, r *http.Request) {
	started := f.opts.Now()
	var req FileOpRequest
	if !decodeJSON(w, r, &req) {
		f.countErr(trace.FileRetrieve)
		return
	}
	sum, err := ParseSum(req.FileMD5)
	if err != nil {
		f.fail(w, http.StatusBadRequest, err, trace.FileRetrieve)
		return
	}
	meta, err := f.meta.Lookup(sum)
	if err != nil {
		f.fail(w, http.StatusNotFound, err, trace.FileRetrieve)
		return
	}
	chunkStrs := make([]string, len(meta.ChunkMD5s))
	for i, c := range meta.ChunkMD5s {
		chunkStrs[i] = c.String()
	}
	tsrv := f.upstream()
	f.record(r, trace.FileRetrieve, 0, started, tsrv)
	writeJSON(w, FileOpResponse{OK: true, ChunkMD5s: chunkStrs, Size: meta.Size})
}

func (f *FrontEnd) handleChunk(w http.ResponseWriter, r *http.Request) {
	started := f.opts.Now()
	// Attribute pre-dispatch errors to the direction the method implies.
	typ := trace.ChunkRetrieve
	if r.Method == http.MethodPut {
		typ = trace.ChunkStore
	}
	digest := strings.TrimPrefix(r.URL.Path, "/chunk/")
	sum, err := ParseSum(digest)
	if err != nil {
		f.fail(w, http.StatusBadRequest, err, typ)
		return
	}
	switch r.Method {
	case http.MethodPut:
		f.putChunk(w, r, sum, started)
	case http.MethodGet:
		f.getChunk(w, r, sum, started)
	default:
		f.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method), typ)
	}
}

func (f *FrontEnd) putChunk(w http.ResponseWriter, r *http.Request, sum Sum, started time.Time) {
	// The body lands in a pooled chunk-sized buffer: the store copies
	// what it keeps, so the hot upload path allocates only that copy.
	scratch := getChunkBuf()
	defer putChunkBuf(scratch)
	n, overflow, err := readBody(r.Body, *scratch)
	if err != nil {
		f.fail(w, http.StatusBadRequest, err, trace.ChunkStore)
		return
	}
	data := (*scratch)[:n]
	if overflow || len(data) > ChunkSize {
		f.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("storage: chunk exceeds %d bytes", ChunkSize), trace.ChunkStore)
		return
	}
	if err := f.store.Put(sum, data); err != nil {
		f.fail(w, http.StatusBadRequest, err, trace.ChunkStore)
		return
	}
	tsrv := f.upstream()

	// Track upload completion for the owning file, if any.
	url := r.URL.Query().Get("url")
	if url != "" {
		f.mu.Lock()
		var snapshot []Sum
		if p, ok := f.pending[url]; ok {
			p.got[sum] = true
			if f.completeLocked(p) {
				snapshot = append([]Sum(nil), p.expected...)
			}
		}
		f.mu.Unlock()
		if snapshot != nil {
			if err := f.commitUpload(url, snapshot); err != nil {
				f.fail(w, http.StatusInternalServerError, err, trace.ChunkStore)
				return
			}
		}
	}

	f.record(r, trace.ChunkStore, int64(len(data)), started, tsrv)
	writeJSON(w, FileOpResponse{OK: true})
}

// completeLocked reports whether every expected chunk has arrived.
func (f *FrontEnd) completeLocked(p *pendingUpload) bool {
	for _, s := range p.expected {
		if !p.got[s] {
			return false
		}
	}
	return true
}

func (f *FrontEnd) getChunk(w http.ResponseWriter, r *http.Request, sum Sum, started time.Time) {
	data, err := f.store.Get(sum)
	if err != nil {
		f.fail(w, http.StatusNotFound, err, trace.ChunkRetrieve)
		return
	}
	tsrv := f.upstream()
	f.record(r, trace.ChunkRetrieve, int64(len(data)), started, tsrv)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
