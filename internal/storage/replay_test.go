package storage

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/session"
)

// TestVirtualTimeReplay replays a scripted two-session day through the
// live HTTP service in compressed wall time, with the client stamping
// each request with the virtual clock. The front-end logs must carry
// the virtual timestamps, and session identification over the captured
// logs must recover the scripted session structure exactly.
func TestVirtualTimeReplay(t *testing.T) {
	client, col, _, _, cleanup := newTestService(t)
	defer cleanup()

	clock := time.Date(2015, 8, 4, 9, 0, 0, 0, time.UTC)
	client.SimClock = func() time.Time { return clock }

	src := randx.New(91)
	mkData := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(src.Uint64())
		}
		return b
	}

	// Session 1: two files stored 30 virtual seconds apart.
	var urls []string
	for i := 0; i < 2; i++ {
		res, err := client.StoreFile(fmt.Sprintf("a%d.jpg", i), mkData(600<<10))
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, res.URL)
		clock = clock.Add(30 * time.Second)
	}

	// Two virtual hours pass: next activity is a new session.
	clock = clock.Add(2 * time.Hour)

	// Session 2: retrieve the first upload.
	if _, err := client.RetrieveFile(urls[0]); err != nil {
		t.Fatal(err)
	}

	logs := col.Logs()
	for _, l := range logs {
		if l.Time.Before(time.Date(2015, 8, 4, 0, 0, 0, 0, time.UTC)) {
			t.Fatalf("log carries wall time, not virtual time: %v", l.Time)
		}
	}

	id := session.NewIdentifier(time.Hour)
	for _, l := range logs {
		id.Add(l)
	}
	sessions := id.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("identified %d sessions, want 2", len(sessions))
	}
	if sessions[0].Class() != session.StoreOnly || sessions[0].FileOps != 2 {
		t.Errorf("session 1 = %v with %d ops, want store-only with 2", sessions[0].Class(), sessions[0].FileOps)
	}
	if sessions[1].Class() != session.RetrieveOnly || sessions[1].FileOps != 1 {
		t.Errorf("session 2 = %v with %d ops, want retrieve-only with 1", sessions[1].Class(), sessions[1].FileOps)
	}
	// Chunk accounting: 2 x 600 KB up (2 chunks each), 1 x 600 KB down.
	if sessions[0].StoreVol != 2*600<<10 {
		t.Errorf("session 1 volume = %d", sessions[0].StoreVol)
	}
	if sessions[1].RetrVol != 600<<10 {
		t.Errorf("session 2 volume = %d", sessions[1].RetrVol)
	}
}

// TestSimTimeHeaderIgnoredWhenAbsent keeps the wall-clock path intact.
func TestSimTimeHeaderIgnoredWhenAbsent(t *testing.T) {
	client, col, _, _, cleanup := newTestService(t)
	defer cleanup()
	before := time.Now()
	if _, err := client.StoreFile("x.bin", []byte("wall clock")); err != nil {
		t.Fatal(err)
	}
	for _, l := range col.Logs() {
		if l.Time.Before(before.Add(-time.Minute)) {
			t.Errorf("wall-clock log in the past: %v", l.Time)
		}
	}
}

// TestSimTimeMalformedHeader: the server-side parser must treat
// garbage as "absent" and fall back to the wall clock.
func TestSimTimeMalformedHeader(t *testing.T) {
	req, err := http.NewRequest(http.MethodGet, "http://example/chunk/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := simTime(req); !got.IsZero() {
		t.Errorf("missing header parsed to %v", got)
	}
	req.Header.Set("X-Sim-Time", "not-a-number")
	if got := simTime(req); !got.IsZero() {
		t.Errorf("malformed header parsed to %v", got)
	}
	req.Header.Set("X-Sim-Time", "1438678201000000000")
	want := time.Unix(0, 1438678201000000000).UTC()
	if got := simTime(req); !got.Equal(want) {
		t.Errorf("valid header parsed to %v, want %v", got, want)
	}
}
