package storage

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"mcloud/internal/tracing"
)

// The service speaks two wire dialects:
//
//   - The versioned /v1 API: /v1/op/store, /v1/op/retrieve,
//     /v1/op/stat, /v1/chunk/{md5}, plus the /v1/cluster/* admin
//     endpoints. Errors are a typed JSON envelope
//     {code, message, retryable} that maps onto the package's
//     sentinel errors on both sides of the wire.
//   - The legacy unversioned paths (/op/store, /op/retrieve,
//     /chunk/{md5}), kept as thin aliases. Errors are the historical
//     {"error": "..."} body.
//
// Negotiation rides on the X-MCS-API header: servers stamp every
// response with "v1"; clients advertise "v1" on every request and
// fall back to the legacy paths when a /v1 request comes back 404
// without the header (which only an old server produces — a v1
// server's 404s always carry it). A client that has fallen back
// remembers the verdict per front-end, so negotiation costs one
// round trip per host, once. Requests on a legacy alias that carry
// the header still receive the typed envelope.

// APIHeader is the version-negotiation header.
const APIHeader = "X-MCS-API"

// APIV1 is the current wire version tag.
const APIV1 = "v1"

// ReplicaHeader marks cluster-internal replica traffic: a chunk
// request carrying it is served from (or written to) the node's local
// store directly, never re-forwarded — this is what bounds the
// forwarding depth of the replication fan-out to one hop.
const ReplicaHeader = "X-MCS-Replica"

// Error codes of the /v1 envelope. Each maps to a sentinel error (or
// to nil for the generic codes); see APIError.Unwrap.
const (
	CodeBadRequest       = "bad_request"
	CodeBadDigest        = "bad_digest"
	CodeNotFound         = "not_found"
	CodeTooLarge         = "too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeOverloaded       = "overloaded"
	CodeUnavailable      = "unavailable"
	CodeNotPrimary       = "not_primary"
	CodeFenced           = "fenced"
	CodeWrongShard       = "wrong_shard"
	CodeInternal         = "internal"
)

// MetaEpochHeader carries the metadata leadership epoch. Every
// /v1/meta/* response is stamped with the serving node's current
// epoch; clients echo the highest epoch they have observed on their
// requests. A primary that receives a request carrying a higher epoch
// than its own has been deposed and fences itself: subsequent writes
// fail with CodeFenced until it rejoins as a standby.
const MetaEpochHeader = "X-MCS-Meta-Epoch"

// MetaShardHeader carries the metadata shard exchange, mirroring the
// epoch exchange: every /v1/meta/* response is stamped with
// "<shard>@<map-version>" naming the shard the serving node owns and
// the shard-map version it owns it under; clients echo the shard they
// *meant* to reach and the map version they routed with. A mismatch
// surfaces as the typed wrong_shard redirect rather than a silently
// misplaced write.
const MetaShardHeader = "X-MCS-Meta-Shard"

// ShardAssignment is the authoritative routing fact carried inside a
// wrong_shard envelope: which shard owns the user the request was
// about, under which map version, and (when the server knows them)
// the owning shard group's endpoints. A client that adopts the
// assignment converges in one bounce.
type ShardAssignment struct {
	Shard      int      `json:"shard"`
	MapVersion uint64   `json:"map_version"`
	Endpoints  []string `json:"endpoints,omitempty"`
}

// FormatMetaShard renders the MetaShardHeader value.
func FormatMetaShard(shard int, mapVersion uint64) string {
	return fmt.Sprintf("%d@%d", shard, mapVersion)
}

// ParseMetaShard decodes a MetaShardHeader value; ok is false for a
// missing or malformed header (legacy peer).
func ParseMetaShard(v string) (shard int, mapVersion uint64, ok bool) {
	if v == "" {
		return 0, 0, false
	}
	var s int
	var mv uint64
	if _, err := fmt.Sscanf(v, "%d@%d", &s, &mv); err != nil || s < 0 {
		return 0, 0, false
	}
	return s, mv, true
}

// APIError is the typed /v1 error envelope. On the server it is
// rendered as the response body; on the client it is decoded back and
// unwraps to the matching sentinel, so errors.Is(err, ErrNotFound)
// holds across the wire.
type APIError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	// TraceID echoes the request's X-MCS-Trace, when it carried one,
	// so a client-side retry span can be joined to the server-side
	// rejection that caused it.
	TraceID string `json:"trace_id,omitempty"`
	// Assignment rides on wrong_shard envelopes only: the
	// authoritative shard for the user the request addressed.
	Assignment *ShardAssignment `json:"assignment,omitempty"`
	// Status is the HTTP status the envelope arrived with
	// (client-side only; not serialized).
	Status int `json:"-"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("storage: api error %s: %s", e.Code, e.Message)
}

// Unwrap maps the wire code back onto the package sentinel, so typed
// error checks work identically against local and remote servers.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case CodeBadDigest:
		return ErrBadDigest
	case CodeNotFound:
		return ErrNotFound
	case CodeTooLarge:
		return ErrTooLarge
	case CodeOverloaded:
		return ErrOverloaded
	case CodeUnavailable:
		return ErrUnavailable
	case CodeNotPrimary:
		return ErrNotPrimary
	case CodeFenced:
		return ErrFenced
	case CodeWrongShard:
		return ErrWrongShard
	default:
		return nil
	}
}

// wrongShardError is the server-side carrier of a shard redirect: it
// unwraps to ErrWrongShard and classifyAPIError lifts its Assignment
// into the envelope.
type wrongShardError struct {
	assignment ShardAssignment
}

func (e *wrongShardError) Error() string {
	return fmt.Sprintf("storage: wrong metadata shard: owner is shard %d (map v%d)",
		e.assignment.Shard, e.assignment.MapVersion)
}

func (e *wrongShardError) Unwrap() error { return ErrWrongShard }

// classifyAPIError derives the envelope for an error escaping a
// handler with the given HTTP status.
func classifyAPIError(status int, err error) APIError {
	e := APIError{Message: err.Error(), Status: status}
	switch {
	case errors.Is(err, ErrBadDigest):
		e.Code = CodeBadDigest
	case errors.Is(err, ErrNotFound):
		e.Code = CodeNotFound
	case errors.Is(err, ErrTooLarge):
		e.Code = CodeTooLarge
	case errors.Is(err, ErrOverloaded):
		e.Code, e.Retryable = CodeOverloaded, true
	case errors.Is(err, ErrWrongShard):
		// Retryable: the client adopts the attached assignment and the
		// retry lands on the owning shard — one bounce, by design.
		e.Code, e.Retryable = CodeWrongShard, true
		var ws *wrongShardError
		if errors.As(err, &ws) {
			a := ws.assignment
			e.Assignment = &a
		}
	case errors.Is(err, ErrFenced):
		// Retryable: the write will succeed once the client re-routes
		// to the primary that holds the newer epoch.
		e.Code, e.Retryable = CodeFenced, true
	case errors.Is(err, ErrNotPrimary):
		// Checked before ErrUnavailable: ErrNotPrimary wraps it.
		e.Code, e.Retryable = CodeNotPrimary, true
	case errors.Is(err, ErrUnavailable):
		e.Code, e.Retryable = CodeUnavailable, true
	case status == http.StatusMethodNotAllowed:
		e.Code = CodeMethodNotAllowed
	case status == http.StatusServiceUnavailable, status == http.StatusTooManyRequests:
		e.Code, e.Retryable = CodeOverloaded, true
	case status >= 500:
		e.Code, e.Retryable = CodeInternal, true
	default:
		e.Code = CodeBadRequest
	}
	return e
}

// wantsV1 reports whether the request asked for the typed envelope:
// it arrived on a /v1 path, or it advertises v1 via X-MCS-API.
func wantsV1(r *http.Request) bool {
	if r == nil {
		return false
	}
	return strings.HasPrefix(r.URL.Path, "/v1/") || r.Header.Get(APIHeader) == APIV1
}

// requestTraceID returns the trace the request runs under: the
// context span when the tracing middleware admitted it, else the raw
// X-MCS-Trace header (set even when this process records no spans —
// e.g. a shed request rejected before the middleware).
func requestTraceID(r *http.Request) string {
	if r == nil {
		return ""
	}
	if sp := tracing.FromContext(r.Context()); sp != nil {
		return sp.Trace.String()
	}
	if tid := tracing.ParseTraceID(r.Header.Get(tracing.TraceHeader)); tid != 0 {
		return tid.String()
	}
	return ""
}

// writeAPIError writes one error response in the dialect the request
// speaks: the typed /v1 envelope, or the legacy {"error": ...} body.
// Either way the response echoes the request's trace ID (header
// always, envelope field on /v1) so failed attempts stay joinable.
func writeAPIError(w http.ResponseWriter, r *http.Request, status int, err error) {
	tid := requestTraceID(r)
	if tid != "" {
		w.Header().Set(tracing.TraceHeader, tid)
	}
	if !wantsV1(r) {
		writeError(w, status, err)
		return
	}
	env := classifyAPIError(status, err)
	env.TraceID = tid
	if env.Code == CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	// Stamp the dialect here, not just in advertiseV1: error writers
	// that sit outside the mux (the shedder's 503 fast path) must still
	// come back as a typed envelope, or the client degrades the error
	// to the legacy body and loses the code and trace ID.
	w.Header().Set(APIHeader, APIV1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, env)
}

// advertiseV1 wraps a handler so every response — success or error —
// carries the X-MCS-API stamp clients negotiate against.
func advertiseV1(next http.Handler) http.Handler {
	return advertiseDialects(false, next)
}

// advertiseDialects stamps every response with the dialects this
// server speaks: always X-MCS-API: v1, plus X-MCS-Bin: mcsbin/1 when
// the binary chunk dialect is enabled. Clients treat the bin stamp as
// the capability signal, so a node built (or flagged) without the
// dialect silently keeps its peers on JSON.
func advertiseDialects(bin bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(APIHeader, APIV1)
		if bin {
			w.Header().Set(BinHeader, BinV1)
		}
		next.ServeHTTP(w, r)
	})
}

// LegacySunset is the announced removal date for the unversioned
// legacy aliases, stamped into the Sunset header of every alias
// response (see API.md, "Deprecation timeline"). The aliases default
// on for one release behind -legacyapi, then default off.
const LegacySunset = "Sun, 01 Nov 2026 00:00:00 GMT"

// deprecateAlias wraps a legacy-alias handler so every response
// carries the deprecation trio: Deprecation (RFC 9745), Sunset
// (RFC 8594) naming the removal date, and a Link to the /v1
// successor route.
func deprecateAlias(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := w.Header()
		hdr.Set("Deprecation", "true")
		hdr.Set("Sunset", LegacySunset)
		hdr.Set("Link", `</v1`+path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// registerBoth registers a handler under its legacy path and the /v1
// alias, so negotiated and legacy clients land on the same code.
func registerBoth(mux *http.ServeMux, path string, h http.HandlerFunc) {
	registerBothGated(mux, true, path, h)
}

// registerBothGated is registerBoth with the legacy alias behind a
// gate: when legacy is false only the /v1 route exists and the
// unversioned path 404s like any unknown route; when true the alias
// answers, stamped with the deprecation headers.
func registerBothGated(mux *http.ServeMux, legacy bool, path string, h http.HandlerFunc) {
	if legacy {
		mux.HandleFunc(path, deprecateAlias(path, h))
	}
	mux.HandleFunc("/v1"+path, h)
}

// isReplicaRequest reports cluster-internal replica traffic.
func isReplicaRequest(r *http.Request) bool {
	return r.Header.Get(ReplicaHeader) != ""
}

// trimChunkPath extracts the digest from either dialect's chunk path.
func trimChunkPath(path string) string {
	path = strings.TrimPrefix(path, "/v1")
	return strings.TrimPrefix(path, "/chunk/")
}
