package storage

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"net/http"
	"sync"
)

// mcsbin/1 is the negotiated binary chunk dialect for the hot transfer
// path. A frame is exactly a DiskStore record:
//
//	sum[16] | len uint32 LE | crc32 uint32 LE | payload
//
// with the CRC covering the first 20 header bytes and the payload —
// so a disk-resident chunk's response IS the raw record region of the
// segment file, streamed without re-encoding or checksum recompute,
// and an uploaded frame can be verified with the same single pass the
// recovery scan uses. A frame whose len field is the tombstone
// sentinel (^uint32(0)) carries no payload and means "not found" in a
// batched GET response.
//
// Two endpoints speak it, both POST (the batch body is the request):
//
//	POST /v1/bin/get   body: count uint32 LE, then count×16-byte sums.
//	                   response: count frames, in request order,
//	                   not-found frames for absent chunks.
//	POST /v1/bin/put   body: count uint32 LE, then count frames.
//	                   query ?url= ties the chunks to a pending upload
//	                   exactly like PUT /v1/chunk/{md5}. Response is
//	                   the JSON FileOpResponse.
//
// Negotiation rides next to the existing X-MCS-API probe: capable
// servers stamp every response with "X-MCS-Bin: mcsbin/1", and a
// client only sends binary requests to a host it has seen the stamp
// from. Errors are rejected before any response byte is written and
// use the standard typed /v1 envelope, so the JSON/HTTP fallback is
// graceful in both directions.

// BinHeader is the binary-dialect capability header.
const BinHeader = "X-MCS-Bin"

// BinV1 is the current binary dialect tag.
const BinV1 = "mcsbin/1"

// binContentType labels binary request/response bodies.
const binContentType = "application/x-mcsbin1"

// binMaxBatch caps the frames one binary request may carry; it bounds
// the per-request pin count on the serving side and the assembled
// request body on the sending side (16 × 512 KB = 8 MB worst case).
const binMaxBatch = 16

// md5Pool recycles MD5 states for the streaming frame decode: batched
// transfers verify a digest per frame, and the pool keeps that from
// allocating a fresh hasher per chunk.
var md5Pool = sync.Pool{New: func() any { return md5.New() }}

// binFrame is one decoded frame. payload aliases the scratch buffer
// handed to readBinFrame, valid until the buffer's next use.
type binFrame struct {
	sum      Sum
	payload  []byte
	got      Sum // MD5 of payload, computed during the streaming read
	notFound bool
}

// readBinFrame decodes one frame from r into buf. The payload CRC and
// MD5 are both folded into the read loop — one pass over the bytes as
// they arrive, no re-scan. Every malformed input fails closed with an
// error wrapping a package sentinel, so the server side maps it onto
// the typed envelope (truncation → bad_request, oversized →
// too_large, checksum mismatch → bad_digest) and the client side
// refuses the bytes.
func readBinFrame(r io.Reader, buf []byte) (binFrame, error) {
	var f binFrame
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return f, fmt.Errorf("storage: mcsbin: truncated frame header: %w", io.ErrUnexpectedEOF)
	}
	copy(f.sum[:], hdr[:16])
	length := binary.LittleEndian.Uint32(hdr[16:20])
	want := binary.LittleEndian.Uint32(hdr[20:24])
	if length == tombstoneLen {
		if crc32.ChecksumIEEE(hdr[:20]) != want {
			return f, fmt.Errorf("%w: mcsbin not-found frame checksum mismatch", ErrBadDigest)
		}
		f.notFound = true
		return f, nil
	}
	if length > ChunkSize || int(length) > len(buf) {
		return f, fmt.Errorf("%w: mcsbin frame declares %d payload bytes", ErrTooLarge, length)
	}
	payload := buf[:length]
	crc := crc32.ChecksumIEEE(hdr[:20])
	h := md5Pool.Get().(hash.Hash)
	h.Reset()
	defer md5Pool.Put(h)
	for off := 0; off < int(length); {
		n, rerr := r.Read(payload[off:])
		if n > 0 {
			crc = crc32.Update(crc, crc32.IEEETable, payload[off:off+n])
			h.Write(payload[off : off+n])
			off += n
		}
		if off >= int(length) {
			break
		}
		if rerr != nil {
			return f, fmt.Errorf("storage: mcsbin: truncated frame payload (%d of %d bytes): %w", off, length, io.ErrUnexpectedEOF)
		}
	}
	if crc != want {
		return f, fmt.Errorf("%w: mcsbin frame checksum mismatch for %s", ErrBadDigest, f.sum)
	}
	h.Sum(f.got[:0])
	f.payload = payload
	return f, nil
}

// appendBinCount appends the u32 batch-count prefix.
func appendBinCount(dst []byte, n int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(n))
	return append(dst, b[:]...)
}

// appendBinFrame appends one data frame.
func appendBinFrame(dst []byte, sum Sum, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	encodeHeader(hdr[:], sum, uint32(len(payload)), payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendBinNotFound appends a not-found frame for sum.
func appendBinNotFound(dst []byte, sum Sum) []byte {
	var hdr [recHeaderSize]byte
	encodeHeader(hdr[:], sum, tombstoneLen, nil)
	return append(dst, hdr[:]...)
}

// binNotFoundFrame renders a standalone not-found frame.
func binNotFoundFrame(sum Sum) []byte { return appendBinNotFound(nil, sum) }

// encodeBinGet builds a /v1/bin/get request body.
func encodeBinGet(sums []Sum) []byte {
	out := make([]byte, 4, 4+16*len(sums))
	binary.LittleEndian.PutUint32(out, uint32(len(sums)))
	for _, s := range sums {
		out = append(out, s[:]...)
	}
	return out
}

// decodeBinCount reads and bounds a batch count prefix.
func decodeBinCount(r io.Reader, max int) (int, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("storage: mcsbin: truncated batch header: %w", io.ErrUnexpectedEOF)
	}
	n := binary.LittleEndian.Uint32(b[:])
	if n == 0 {
		return 0, fmt.Errorf("storage: mcsbin: empty batch")
	}
	if int64(n) > int64(max) {
		return 0, fmt.Errorf("%w: mcsbin batch of %d exceeds %d", ErrTooLarge, n, max)
	}
	return int(n), nil
}

// decodeBinGetRequest reads a /v1/bin/get body.
func decodeBinGetRequest(r io.Reader, max int) ([]Sum, error) {
	n, err := decodeBinCount(r, max)
	if err != nil {
		return nil, err
	}
	sums := make([]Sum, n)
	for i := range sums {
		if _, err := io.ReadFull(r, sums[i][:]); err != nil {
			return nil, fmt.Errorf("storage: mcsbin: truncated digest list: %w", io.ErrUnexpectedEOF)
		}
	}
	return sums, nil
}

// binAdvertised reports whether a response came from a binary-capable
// server.
func binAdvertised(h http.Header) bool { return h.Get(BinHeader) == BinV1 }

// --- single-chunk helpers (replication fan-out, rebalancer) ------------

// binGetOneReq builds a single-chunk binary GET request against node.
func binGetOneReq(node string, sum Sum) (*http.Request, error) {
	req, err := http.NewRequest(http.MethodPost, node+"/v1/bin/get", bytes.NewReader(encodeBinGet([]Sum{sum})))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", binContentType)
	return req, nil
}

// binPutOneReq builds a single-chunk binary PUT request against node.
func binPutOneReq(node string, sum Sum, data []byte) (*http.Request, error) {
	body := make([]byte, 4, 4+recHeaderSize+len(data))
	binary.LittleEndian.PutUint32(body, 1)
	body = appendBinFrame(body, sum, data)
	req, err := http.NewRequest(http.MethodPost, node+"/v1/bin/put", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", binContentType)
	return req, nil
}

// binReadOneFrame consumes a single-chunk binary GET response: it
// verifies the frame CRC during the read and the MD5 against the
// requested digest, returning an owned copy of the payload. The CRC
// travels from the sender's segment file, so disk corruption on the
// far side fails here instead of propagating.
func binReadOneFrame(resp *http.Response, sum Sum) ([]byte, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	scratch := getChunkBuf()
	defer putChunkBuf(scratch)
	f, err := readBinFrame(resp.Body, *scratch)
	if err != nil {
		return nil, err
	}
	if f.notFound {
		return nil, ErrNotFound
	}
	if f.sum != sum || f.got != sum {
		return nil, fmt.Errorf("%w: mcsbin frame digest mismatch for %s", ErrBadDigest, sum)
	}
	out := make([]byte, len(f.payload))
	copy(out, f.payload)
	return out, nil
}
