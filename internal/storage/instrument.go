package storage

import (
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/trace"
)

// Exported metric names (see README "Observability" for the full
// catalog). Everything lives under the mcs_ prefix; label sets are
// fixed at registration so the serving hot path is a pre-resolved
// atomic add — no map lookups, no allocation.

// devIndex maps a device type onto the fixed histogram slot; unknown
// devices share the PC slot.
func devIndex(d trace.DeviceType) int {
	switch d {
	case trace.Android:
		return 0
	case trace.IOS:
		return 1
	default:
		return 2
	}
}

var devSlots = [...]trace.DeviceType{trace.Android, trace.IOS, trace.PC}

// FrontEndMetrics holds the pre-resolved front-end series. One
// instance may be shared by every front-end of a process so the
// exposition shows service-level totals.
type FrontEndMetrics struct {
	requests [4]*metrics.Counter // by trace.ReqType
	errors   [4]*metrics.Counter
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	pending  *metrics.Gauge
	// chunk transfer latency (the log's ttran = Tchunk - Tsrv) by
	// direction and device, plus a device="all" aggregate per
	// direction for dashboards.
	chunkLat    [2][3]*metrics.Histogram // [store|retrieve][device]
	chunkLatAll [2]*metrics.Histogram
}

// NewFrontEndMetrics registers the front-end series in reg and
// returns the handle to hand to FrontEndOptions.Metrics.
func NewFrontEndMetrics(reg *metrics.Registry) *FrontEndMetrics {
	fm := &FrontEndMetrics{}
	reqTypes := [...]trace.ReqType{trace.FileStore, trace.FileRetrieve, trace.ChunkStore, trace.ChunkRetrieve}
	for _, t := range reqTypes {
		fm.requests[t] = reg.Counter("mcs_frontend_requests_total",
			"Requests served by the storage front-ends.", "op", t.String())
		fm.errors[t] = reg.Counter("mcs_frontend_errors_total",
			"Requests the front-ends rejected with an error status.", "op", t.String())
	}
	fm.bytesIn = reg.Counter("mcs_frontend_bytes_total",
		"Chunk payload bytes moved through the front-ends.", "dir", "in")
	fm.bytesOut = reg.Counter("mcs_frontend_bytes_total",
		"Chunk payload bytes moved through the front-ends.", "dir", "out")
	fm.pending = reg.Gauge("mcs_frontend_pending_uploads",
		"File uploads opened but not yet fully committed.")
	dirs := [...]string{"store", "retrieve"}
	for di, dir := range dirs {
		for _, dev := range devSlots {
			fm.chunkLat[di][devIndex(dev)] = reg.Histogram("mcs_frontend_chunk_seconds",
				"Chunk transfer time at the front-end (Tchunk - Tsrv), by direction and device.",
				"dir", dir, "device", dev.String())
		}
		fm.chunkLatAll[di] = reg.Histogram("mcs_frontend_chunk_seconds",
			"Chunk transfer time at the front-end (Tchunk - Tsrv), by direction and device.",
			"dir", dir, "device", "all")
	}
	return fm
}

// observe records one successfully served request. elapsed is the
// front-end processing time excluding the simulated upstream delay —
// exactly the ttran that mcsanalyze later recovers from the request
// log, so scraped quantiles and log-replay quantiles agree.
func (fm *FrontEndMetrics) observe(typ trace.ReqType, dev trace.DeviceType, bytes int64, elapsed time.Duration) {
	fm.requests[typ].Inc()
	sec := elapsed.Seconds()
	switch typ {
	case trace.ChunkStore:
		fm.bytesIn.Add(bytes)
		fm.chunkLat[0][devIndex(dev)].Observe(sec)
		fm.chunkLatAll[0].Observe(sec)
	case trace.ChunkRetrieve:
		fm.bytesOut.Add(bytes)
		fm.chunkLat[1][devIndex(dev)].Observe(sec)
		fm.chunkLatAll[1].Observe(sec)
	}
}

// slowExemplarMinCount gates exemplar pinning until the direction's
// histogram has seen enough traffic that "top bucket" means tail, not
// warm-up noise (the first observation is always its own maximum).
const slowExemplarMinCount = 64

// slowExemplar reports whether a chunk observation belongs to the top
// buckets of its direction's latency distribution — the tail-based
// sampling trigger that pins the observation's trace (see
// FrontEnd.record). Non-chunk request types never qualify.
func (fm *FrontEndMetrics) slowExemplar(typ trace.ReqType, sec float64) bool {
	var h *metrics.Histogram
	switch typ {
	case trace.ChunkStore:
		h = fm.chunkLatAll[0]
	case trace.ChunkRetrieve:
		h = fm.chunkLatAll[1]
	default:
		return false
	}
	return h.Count() >= slowExemplarMinCount && h.TopBucket(sec, 2)
}

// InstrumentStore exposes any chunk store's occupancy and dedup
// counters as the mcs_store_* series. Values are sampled from Stats()
// at scrape time, so the store's hot path is untouched. Register the
// top-level store only (the one the front-ends serve from): tier- and
// engine-specific series (mcs_tier_*, mcs_disk_*) have their own
// Instrument methods.
func InstrumentStore(reg *metrics.Registry, s ChunkStore) {
	reg.GaugeFunc("mcs_store_chunks", "Unique chunks resident in the store.",
		func() float64 { return float64(s.Stats().Chunks) })
	reg.GaugeFunc("mcs_store_bytes", "Unique bytes resident in the store.",
		func() float64 { return float64(s.Stats().Bytes) })
	reg.CounterFunc("mcs_store_puts_total", "Chunk Put operations offered to the store.",
		func() float64 { return float64(s.Stats().Puts) })
	reg.CounterFunc("mcs_store_dedup_hits_total", "Puts that found their content already stored.",
		func() float64 { return float64(s.Stats().DedupHits) })
	reg.CounterFunc("mcs_store_bytes_offered_total", "Total bytes offered across all Puts.",
		func() float64 { return float64(s.Stats().BytesStored) })
}

// Instrument exposes the in-memory chunk store's occupancy and dedup
// counters.
func (m *MemStore) Instrument(reg *metrics.Registry) { InstrumentStore(reg, m) }

// Instrument exposes the durable segment store's on-disk accounting
// as the mcs_disk_* series (alongside whatever mcs_store_* series the
// top-level store registers).
func (ds *DiskStore) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("mcs_disk_segments", "Segment files on disk.",
		func() float64 { return float64(ds.DiskStats().Segments) })
	reg.GaugeFunc("mcs_disk_live_bytes", "Record bytes still addressed by the index.",
		func() float64 { return float64(ds.DiskStats().LiveBytes) })
	reg.GaugeFunc("mcs_disk_dead_bytes", "Record bytes awaiting compaction (tombstoned or superseded).",
		func() float64 { return float64(ds.DiskStats().DeadBytes) })
	reg.CounterFunc("mcs_disk_fsyncs_total", "fsync syscalls issued (group-committed across writers).",
		func() float64 { return float64(ds.DiskStats().Fsyncs) })
	reg.CounterFunc("mcs_disk_compactions_total", "Segments rewritten and reclaimed by the compactor.",
		func() float64 { return float64(ds.DiskStats().Compactions) })
	reg.CounterFunc("mcs_disk_stream_reads_total", "Chunk reads served zero-copy from a pinned segment region.",
		func() float64 { return float64(ds.DiskStats().StreamReads) })
	reg.GaugeFunc("mcs_disk_recovery_seconds", "Index rebuild time at the last open.",
		func() float64 { return ds.DiskStats().Recovery.Seconds() })
	reg.GaugeFunc("mcs_disk_truncated_bytes", "Torn-tail bytes discarded at the last open.",
		func() float64 { return float64(ds.DiskStats().Truncated) })
}

// Instrument exposes the read cache's effectiveness and occupancy.
func (c *CachedStore) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("mcs_cache_hits_total", "Chunk reads served from the LRU cache.",
		func() float64 { return float64(c.CacheStats().Hits) })
	reg.CounterFunc("mcs_cache_misses_total", "Chunk reads that fell through to the backing store.",
		func() float64 { return float64(c.CacheStats().Misses) })
	reg.CounterFunc("mcs_cache_evictions_total", "Entries evicted to make room.",
		func() float64 { return float64(c.CacheStats().Evictions) })
	reg.CounterFunc("mcs_cache_hit_bytes_total", "Bytes served from the cache.",
		func() float64 { return float64(c.CacheStats().HitBytes) })
	reg.CounterFunc("mcs_cache_miss_bytes_total", "Bytes fetched from the backing store.",
		func() float64 { return float64(c.CacheStats().MissBytes) })
	reg.GaugeFunc("mcs_cache_used_bytes", "Bytes currently resident in the cache.",
		func() float64 { return float64(c.CacheStats().Used) })
	reg.GaugeFunc("mcs_cache_capacity_bytes", "Configured cache capacity.",
		func() float64 { return float64(c.CacheStats().Capacity) })
	reg.GaugeFunc("mcs_cache_entries", "Entries currently resident in the cache.",
		func() float64 { return float64(c.CacheStats().Entries) })
}

// Instrument exposes the hot/cold tiering behaviour.
func (t *TieredStore) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("mcs_tier_demotions_total", "Chunks migrated hot -> cold.",
		func() float64 { return float64(t.TierStats().Demotions) })
	reg.CounterFunc("mcs_tier_promotions_total", "Cold chunks promoted back on read.",
		func() float64 { return float64(t.TierStats().Promotions) })
	reg.CounterFunc("mcs_tier_hot_reads_total", "Reads served by the hot tier.",
		func() float64 { return float64(t.TierStats().HotReads) })
	reg.CounterFunc("mcs_tier_cold_reads_total", "Reads that had to touch the cold tier.",
		func() float64 { return float64(t.TierStats().ColdReads) })
	reg.GaugeFunc("mcs_tier_hot_byte_hours", "Accumulated hot-tier occupancy.",
		func() float64 { return t.TierStats().HotByteHours })
	reg.GaugeFunc("mcs_tier_cold_byte_hours", "Accumulated cold-tier occupancy.",
		func() float64 { return t.TierStats().ColdByteHours })
}
