package storage

import (
	"fmt"
	"time"
)

// Download is a resumable retrieval. The paper observes that 28 % of
// retrieved files are ~150 MB and recommends "support for resuming a
// failed download, to avoid downloading from the beginning after
// failures that could be frequent for mobile network" (§3.1.4).
// A Download keeps the chunk manifest and completed prefix, so Resume
// continues from the first missing chunk after any error.
// The file assembles in place: the full buffer is allocated once and
// every chunk downloads straight into its slot, so a resume-heavy
// 150 MB retrieval costs one allocation instead of one per chunk plus
// a final assembly copy.
type Download struct {
	c        *Client
	frontend string
	sums     []Sum
	size     int64
	buf      []byte // the assembling file
	have     []bool // per-chunk completion
	done     int    // chunks fetched so far
}

// NewDownload resolves url and issues the file retrieval operation
// request, returning a Download ready to Resume.
func (c *Client) NewDownload(url string) (*Download, error) {
	budget := c.newBudget()
	var res ResolveResponse
	if err := c.postJSON(c.MetaURL, "/meta/resolve", ResolveRequest{UserID: c.UserID, URL: url}, &res, budget); err != nil {
		return nil, err
	}
	if res.FrontEnd == "" {
		return nil, fmt.Errorf("storage: metadata server assigned no front-end")
	}
	var op FileOpResponse
	err := c.postJSON(res.FrontEnd, "/op/retrieve", FileOpRequest{
		UserID:   c.UserID,
		DeviceID: c.DeviceID,
		Device:   c.Device.String(),
		FileMD5:  res.FileMD5,
		Size:     res.Size,
	}, &op, budget)
	if err != nil {
		return nil, err
	}
	sums := make([]Sum, len(op.ChunkMD5s))
	for i, s := range op.ChunkMD5s {
		if sums[i], err = ParseSum(s); err != nil {
			return nil, err
		}
	}
	// Every chunk but the last is exactly ChunkSize by construction
	// (SplitSums), so the in-place layout is known up front — reject
	// metadata that contradicts it before allocating.
	n := int64(len(sums))
	if n > 0 && (res.Size <= (n-1)*ChunkSize || res.Size > n*ChunkSize) {
		return nil, fmt.Errorf("storage: metadata size %d inconsistent with %d chunks", res.Size, n)
	}
	return &Download{
		c:        c,
		frontend: res.FrontEnd,
		sums:     sums,
		size:     res.Size,
		buf:      make([]byte, res.Size),
		have:     make([]bool, len(sums)),
	}, nil
}

// Done reports how many chunks have been fetched.
func (d *Download) Done() int { return d.done }

// Total reports the chunk count of the file.
func (d *Download) Total() int { return len(d.sums) }

// Complete reports whether every chunk has arrived.
func (d *Download) Complete() bool { return d.done == len(d.sums) }

// Resume fetches the remaining chunks sequentially, stopping at the
// first error; already-fetched chunks are never re-transferred. Call
// it again after a failure to continue where it left off. Each Resume
// gets a fresh retry budget.
func (d *Download) Resume() error {
	budget := d.c.newBudget()
	for i := range d.sums {
		if d.have[i] {
			continue
		}
		if d.done > 0 && d.c.InterChunkDelay != nil {
			time.Sleep(d.c.InterChunkDelay())
		}
		lo := int64(i) * ChunkSize
		hi := lo + ChunkSize
		if hi > d.size {
			hi = d.size
		}
		// getChunk reads into a pooled scratch buffer and copies the
		// verified bytes straight into this chunk's slot of the file.
		data, err := d.c.getChunk(d.frontend, d.sums[i], budget, d.buf[lo:lo:hi])
		if err != nil {
			return fmt.Errorf("chunk %d/%d: %w", i+1, len(d.sums), err)
		}
		if int64(len(data)) != hi-lo {
			return fmt.Errorf("chunk %d/%d: chunk length %d does not fit file layout", i+1, len(d.sums), len(data))
		}
		d.have[i] = true
		d.done++
	}
	return nil
}

// Bytes returns the assembled file; it errors if the download is
// incomplete. The slice is the download's internal assembly buffer
// (no final copy); it stays valid after the Download is dropped.
func (d *Download) Bytes() ([]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("storage: download incomplete (%d/%d chunks)", d.done, len(d.sums))
	}
	return d.buf, nil
}
