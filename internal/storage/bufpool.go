package storage

import (
	"io"
	"sync"
)

// chunkBufPool recycles transfer-sized scratch buffers — one chunk
// plus a byte, so an oversized body is detectable without growing —
// for the front-end request reader and the client download path.
// Steady-state transfer then allocates only the bytes that outlive
// the request: the stored copy on the server and the assembled file
// on the client.
var chunkBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, ChunkSize+1)
		return &b
	},
}

func getChunkBuf() *[]byte  { return chunkBufPool.Get().(*[]byte) }
func putChunkBuf(b *[]byte) { chunkBufPool.Put(b) }

// readBody fills buf from r until EOF and returns the number of bytes
// read. It reports overflow (the body did not fit in buf) instead of
// growing, which is how chunk-sized reads stay allocation-free.
func readBody(r io.Reader, buf []byte) (n int, overflow bool, err error) {
	for n < len(buf) {
		k, rerr := r.Read(buf[n:])
		n += k
		if rerr == io.EOF {
			return n, false, nil
		}
		if rerr != nil {
			return n, false, rerr
		}
	}
	// Buffer full: a successful extra read means the body is longer
	// than the buffer.
	var probe [1]byte
	k, rerr := r.Read(probe[:])
	if k > 0 {
		return n, true, nil
	}
	if rerr != nil && rerr != io.EOF {
		return n, false, rerr
	}
	return n, false, nil
}
