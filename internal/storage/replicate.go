package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/metrics"
	"mcloud/internal/tracing"
)

// ReplicatedStore spreads chunks across a cluster of front-end nodes
// the way the paper's deployment spreads one namespace over many
// front-ends (§2): every chunk digest maps, via the consistent-hash
// ring, onto N replica owners; a PUT accepted by any node fans out to
// the owners and acknowledges once W of them have the bytes; a GET is
// served by the nearest live replica, failing over down the owner
// list. Replica sub-requests carry the X-MCS-Replica header, so a
// forwarded request is served from the target's local store and never
// forwarded again — placement converges in one hop from any node.
//
// Failed replica writes are remembered in a repair queue: a
// background loop (and the mcsrebalance pass) re-streams those chunks
// to their owners once they answer again, draining the
// mcs_cluster_underreplicated gauge back to zero.
//
// The store implements ChunkStore, so the front-end, cache and
// instrumentation layers compose with it unchanged. Stats() reports
// the local shard only; cluster-wide occupancy is the ring-weighted
// sum over nodes.
type ReplicatedStore struct {
	self   string
	ring   *cluster.Ring
	n, w   int
	local  ChunkStore
	http   *http.Client
	health *cluster.Health
	met    *cluster.Metrics // nil until Instrument; nil-safe

	repairMu sync.Mutex
	repairQ  map[Sum]map[string]bool // chunk -> owners known to be missing it

	binMu      sync.Mutex
	binPeers   map[string]bool // peer -> last-seen X-MCS-Bin capability
	disableBin bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ReplicatedConfig configures a ReplicatedStore.
type ReplicatedConfig struct {
	// Self is this node's advertised base URL; it must appear in
	// Peers.
	Self string
	// Peers is the full static membership, including Self. Order does
	// not matter: placement depends only on the member names.
	Peers []string
	// Replicas is N, the owners per chunk (default 3, clamped to the
	// membership size).
	Replicas int
	// WriteQuorum is W, the owner acks required before a PUT is
	// acknowledged (default 2, clamped to Replicas).
	WriteQuorum int
	// VNodes is the virtual nodes per member on the ring (default
	// cluster.DefaultVNodes).
	VNodes int
	// Local is this node's own chunk store.
	Local ChunkStore
	// HTTP is the peer transport; nil selects a shared default with
	// connection reuse and timeouts.
	HTTP *http.Client
	// Health tracks peer liveness; nil creates a default breaker
	// (3 consecutive failures, 2s cooldown).
	Health *cluster.Health
	// RepairEvery is the background repair sweep interval; 0 means
	// 2s, negative disables the loop (tests drive RepairNow directly).
	RepairEvery time.Duration
	// DisableBin pins replica traffic to the JSON chunk paths even
	// toward peers advertising mcsbin/1 — set on nodes running with
	// the binary dialect withheld, so a "legacy" node is legacy in
	// both directions.
	DisableBin bool
}

// NewReplicatedStore builds the replication layer and starts its
// repair loop. Call Close at shutdown.
func NewReplicatedStore(cfg ReplicatedConfig) (*ReplicatedStore, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("storage: replicated store needs a local store")
	}
	ring, err := cluster.NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if !ring.Contains(cfg.Self) {
		return nil, fmt.Errorf("storage: self %q is not in the peer list", cfg.Self)
	}
	n := cfg.Replicas
	if n <= 0 {
		n = 3
	}
	if n > ring.Size() {
		n = ring.Size()
	}
	w := cfg.WriteQuorum
	if w <= 0 {
		w = 2
	}
	if w > n {
		w = n
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = replicaHTTPClient
	}
	health := cfg.Health
	if health == nil {
		health = cluster.NewHealth(0, 0)
	}
	rs := &ReplicatedStore{
		self:    cfg.Self,
		ring:    ring,
		n:       n,
		w:       w,
		local:      cfg.Local,
		http:       httpc,
		health:     health,
		disableBin: cfg.DisableBin,
		repairQ:    make(map[Sum]map[string]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	every := cfg.RepairEvery
	if every == 0 {
		every = 2 * time.Second
	}
	if every > 0 {
		go rs.repairLoop(every)
	} else {
		close(rs.done)
	}
	return rs, nil
}

// Instrument registers the mcs_cluster_* series. Call once, before
// serving.
func (rs *ReplicatedStore) Instrument(reg *metrics.Registry) {
	rs.met = cluster.NewMetrics(reg, rs.ring, rs.health)
	rs.met.SetUnderreplicated(rs.Underreplicated())
}

// Local returns the node's own store (serves replica-internal
// requests).
func (rs *ReplicatedStore) Local() ChunkStore { return rs.local }

// Info describes the node's placement configuration.
func (rs *ReplicatedStore) Info() ClusterInfo {
	return ClusterInfo{Node: rs.self, Peers: rs.ring.Nodes(), Replicas: rs.n, Quorum: rs.w}
}

// Owners returns the replica set for a chunk, primary first.
func (rs *ReplicatedStore) Owners(sum Sum) []string {
	return rs.ring.Owners(cluster.Key(sum), rs.n)
}

// Close stops the repair loop.
func (rs *ReplicatedStore) Close() error {
	rs.stopOnce.Do(func() { close(rs.stop) })
	<-rs.done
	return nil
}

// Put implements ChunkStore: fan out to the N owners, acknowledge at
// W acks. Owners that fail are queued for repair; if the quorum is
// unreachable the error wraps ErrUnavailable (503 to the client,
// which retries).
func (rs *ReplicatedStore) Put(sum Sum, data []byte) error {
	return rs.PutCtx(context.Background(), sum, data)
}

// PutCtx implements CtxStore: the fan-out runs under one barrier span
// (child of the request's span) with a child span per remote replica
// write, so stragglers and failed owners are visible in the trace.
func (rs *ReplicatedStore) PutCtx(ctx context.Context, sum Sum, data []byte) (err error) {
	owners := rs.Owners(sum)
	if len(owners) == 1 && owners[0] == rs.self {
		return PutCtx(ctx, rs.local, sum, data)
	}
	fanout := tracing.ChildFromContext(ctx, tracing.CompReplicate, tracing.SpanFanout)
	fanout.AnnotateInt("replicas", int64(len(owners)))
	fanout.AnnotateInt("quorum", int64(rs.w))
	defer func() { fanout.EndErr(err) }()
	ctx = tracing.NewContext(ctx, fanout)

	// Copy the payload: the caller may recycle its (pooled) buffer as
	// soon as we return, but straggler replica sends — and the
	// background drain after a quorum ack — keep reading it.
	buf := make([]byte, len(data))
	copy(buf, data)

	start := time.Now()
	type result struct {
		node string
		err  error
	}
	results := make(chan result, len(owners))
	for _, o := range owners {
		go func(o string) { results <- result{o, rs.putReplica(ctx, o, sum, buf)} }(o)
	}

	needed := rs.w
	acks, fails, outstanding := 0, 0, len(owners)
	var firstErr error
	for outstanding > 0 && acks < needed && fails <= len(owners)-needed {
		r := <-results
		outstanding--
		if r.err == nil {
			acks++
		} else {
			fails++
			if firstErr == nil {
				firstErr = r.err
			}
			rs.noteMissing(sum, r.node)
		}
	}
	if outstanding > 0 {
		// Quorum decided; drain the stragglers off the hot path so
		// their failures still reach the repair queue.
		go func(outstanding int) {
			for i := 0; i < outstanding; i++ {
				if r := <-results; r.err != nil {
					rs.noteMissing(sum, r.node)
				}
			}
		}(outstanding)
	}
	if acks >= needed {
		rs.met.ObserveFanout(time.Since(start))
		return nil
	}
	return fmt.Errorf("%w: %d/%d owner acks (need %d): %v", ErrUnavailable, acks, len(owners), needed, firstErr)
}

// Get implements ChunkStore: serve from the nearest live replica —
// the local store when this node owns the chunk, then the remaining
// owners in ring order, live nodes first. A read that succeeds on a
// remote replica while the local node is an owner missing the bytes
// triggers read repair.
func (rs *ReplicatedStore) Get(sum Sum) ([]byte, error) {
	return rs.GetCtx(context.Background(), sum)
}

// GetCtx implements CtxStore: each remote failover read is a span
// (child of the request's span, annotated with the replica node), so
// a retrieve that had to walk the owner list shows every hop.
func (rs *ReplicatedStore) GetCtx(ctx context.Context, sum Sum) ([]byte, error) {
	owners := rs.Owners(sum)
	selfOwner := false
	remote := make([]string, 0, len(owners))
	for _, o := range owners {
		if o == rs.self {
			selfOwner = true
		} else {
			remote = append(remote, o)
		}
	}
	if selfOwner {
		if data, err := GetCtx(ctx, rs.local, sum); err == nil {
			return data, nil
		}
	}
	var firstErr error
	for _, o := range rs.health.Order(remote) {
		data, err := rs.getReplica(ctx, o, sum)
		if err == nil {
			if o != owners[0] {
				rs.met.GetFailover()
			}
			if selfOwner {
				// Read repair: this node owns the chunk but missed it
				// (it was down during the write, or the chunk predates a
				// membership change).
				if rs.local.Put(sum, data) == nil {
					rs.met.Repair()
					rs.dropMissing(sum, rs.self)
				}
			}
			return data, nil
		}
		if IsNotFound(err) {
			continue // a healthy replica missing the chunk; try the next
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w: no live replica answered for %s: %v", ErrUnavailable, sum, firstErr)
	}
	return nil, ErrNotFound
}

// GetReaderCtx implements ReaderStore: when this node owns the chunk
// and holds it locally, the response streams straight from the local
// tier's reader (pin-counted segment region on disk). Otherwise the
// materializing failover path runs — with its health-ordered owner
// walk and read repair intact — and the fetched bytes are wrapped.
func (rs *ReplicatedStore) GetReaderCtx(ctx context.Context, sum Sum) (*ChunkReader, error) {
	for _, o := range rs.Owners(sum) {
		if o != rs.self {
			continue
		}
		if rd, err := GetReader(ctx, rs.local, sum); err == nil {
			return rd, nil
		}
		break
	}
	data, err := rs.GetCtx(ctx, sum)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(data), nil
}

// Has implements ChunkStore.
func (rs *ReplicatedStore) Has(sum Sum) bool {
	if rs.local.Has(sum) {
		return true
	}
	return rs.MultiHas([]Sum{sum})[0]
}

// MultiHas implements MultiHaser with one batched /v1/op/stat probe
// per replica owner instead of a round trip per chunk: rank by rank,
// unresolved digests are grouped by their rank-r owner and asked in
// one request.
func (rs *ReplicatedStore) MultiHas(sums []Sum) []bool {
	out := make([]bool, len(sums))
	unresolved := make([]int, 0, len(sums))
	for i, sum := range sums {
		if rs.local.Has(sum) {
			out[i] = true
		} else {
			unresolved = append(unresolved, i)
		}
	}
	for rank := 0; rank < rs.n && len(unresolved) > 0; rank++ {
		byOwner := make(map[string][]int)
		for _, i := range unresolved {
			owners := rs.Owners(sums[i])
			if rank >= len(owners) {
				continue
			}
			o := owners[rank]
			if o == rs.self { // local already checked
				continue
			}
			byOwner[o] = append(byOwner[o], i)
		}
		// Deterministic probe order keeps test traffic reproducible.
		nodes := make([]string, 0, len(byOwner))
		for o := range byOwner {
			nodes = append(nodes, o)
		}
		sort.Strings(nodes)
		for _, o := range nodes {
			if !rs.health.Alive(o) {
				continue
			}
			idxs := byOwner[o]
			queried := make([]Sum, len(idxs))
			for j, i := range idxs {
				queried[j] = sums[i]
			}
			present, err := rs.statReplica(o, queried)
			if err != nil {
				continue
			}
			for j, i := range idxs {
				if present[j] {
					out[i] = true
				}
			}
		}
		next := unresolved[:0]
		for _, i := range unresolved {
			if !out[i] {
				next = append(next, i)
			}
		}
		unresolved = next
	}
	return out
}

// Stats implements ChunkStore; it reports the node's local shard.
func (rs *ReplicatedStore) Stats() StoreStats { return rs.local.Stats() }

// Underreplicated counts chunks with at least one owner known to be
// missing them.
func (rs *ReplicatedStore) Underreplicated() int {
	rs.repairMu.Lock()
	defer rs.repairMu.Unlock()
	return len(rs.repairQ)
}

// noteMissing queues (chunk, owner) for repair.
func (rs *ReplicatedStore) noteMissing(sum Sum, node string) {
	rs.repairMu.Lock()
	nodes, ok := rs.repairQ[sum]
	if !ok {
		nodes = make(map[string]bool, rs.n)
		rs.repairQ[sum] = nodes
	}
	nodes[node] = true
	depth := len(rs.repairQ)
	rs.repairMu.Unlock()
	rs.met.SetUnderreplicated(depth)
}

// dropMissing clears one repaired (chunk, owner) pair.
func (rs *ReplicatedStore) dropMissing(sum Sum, node string) {
	rs.repairMu.Lock()
	if nodes, ok := rs.repairQ[sum]; ok {
		delete(nodes, node)
		if len(nodes) == 0 {
			delete(rs.repairQ, sum)
		}
	}
	depth := len(rs.repairQ)
	rs.repairMu.Unlock()
	rs.met.SetUnderreplicated(depth)
}

// repairLoop periodically re-streams under-replicated chunks.
func (rs *ReplicatedStore) repairLoop(every time.Duration) {
	defer close(rs.done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case <-tick.C:
			rs.RepairNow()
		}
	}
}

// RepairNow synchronously attempts one repair pass over the queue,
// returning how many replicas it re-created. Owners still inside a
// breaker down-window are skipped until their cooldown lapses.
func (rs *ReplicatedStore) RepairNow() int {
	rs.repairMu.Lock()
	work := make(map[Sum][]string, len(rs.repairQ))
	for sum, nodes := range rs.repairQ {
		targets := make([]string, 0, len(nodes))
		for n := range nodes {
			targets = append(targets, n)
		}
		sort.Strings(targets)
		work[sum] = targets
	}
	rs.repairMu.Unlock()

	repaired := 0
	for sum, targets := range work {
		var data []byte
		for _, node := range targets {
			if node != rs.self && !rs.health.Alive(node) {
				continue
			}
			if data == nil {
				data = rs.fetchAny(sum)
				if data == nil {
					break // no live copy right now; retry next sweep
				}
			}
			var err error
			if node == rs.self {
				err = rs.local.Put(sum, data)
			} else {
				err = rs.putReplica(context.Background(), node, sum, data)
			}
			if err == nil {
				rs.dropMissing(sum, node)
				rs.met.Repair()
				repaired++
			}
		}
	}
	return repaired
}

// fetchAny returns the chunk bytes from the nearest live copy, nil
// when none answers.
func (rs *ReplicatedStore) fetchAny(sum Sum) []byte {
	if data, err := rs.local.Get(sum); err == nil {
		return data
	}
	for _, o := range rs.health.Order(rs.Owners(sum)) {
		if o == rs.self {
			continue
		}
		if data, err := rs.getReplica(context.Background(), o, sum); err == nil {
			return data
		}
	}
	return nil
}

// --- replica wire calls -------------------------------------------------

// replicaTimeout bounds one replica sub-request; the quorum decides
// overall latency, so a stuck peer must not hold the fan-out hostage.
const replicaTimeout = 15 * time.Second

// replicaHTTPClient is the default peer transport: connection reuse
// sized for intra-cluster chunk traffic, with the sub-request timeout
// baked in (http.Client.Timeout covers the body read too, so no
// per-request context plumbing is needed).
var replicaHTTPClient = &http.Client{
	Timeout: replicaTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

func (rs *ReplicatedStore) replicaReq(method, node, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, node+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(APIHeader, APIV1)
	req.Header.Set(ReplicaHeader, "1")
	return req, nil
}

// do runs one replica sub-request with health accounting. Every
// response also refreshes the peer's advertised dialect set, so bin
// capability is learned (and un-learned, after a downgrade restart)
// without any extra probe traffic.
func (rs *ReplicatedStore) do(node string, req *http.Request) (*http.Response, error) {
	resp, err := rs.http.Do(req)
	if err != nil {
		rs.health.ReportFailure(node)
		rs.met.ReplicaError()
		return nil, err
	}
	rs.noteBinPeer(node, resp.Header)
	// A 404 is a healthy node answering "I don't have it" — only
	// transport errors and 5xx count against liveness.
	if resp.StatusCode >= 500 {
		rs.health.ReportFailure(node)
		rs.met.ReplicaError()
	} else {
		rs.health.ReportSuccess(node)
	}
	return resp, nil
}

func (rs *ReplicatedStore) noteBinPeer(node string, h http.Header) {
	v := binAdvertised(h)
	rs.binMu.Lock()
	if rs.binPeers == nil {
		rs.binPeers = make(map[string]bool)
	}
	rs.binPeers[node] = v
	rs.binMu.Unlock()
}

func (rs *ReplicatedStore) binPeer(node string) bool {
	if rs.disableBin {
		return false
	}
	rs.binMu.Lock()
	ok := rs.binPeers[node]
	rs.binMu.Unlock()
	return ok
}

// putReplica writes one chunk to one owner. The local owner writes
// through the context (disk spans land under the fan-out barrier);
// a remote owner gets a replica-put span whose ID rides the request
// headers, so the remote handler span joins as its child.
func (rs *ReplicatedStore) putReplica(ctx context.Context, node string, sum Sum, data []byte) (err error) {
	if node == rs.self {
		return PutCtx(ctx, rs.local, sum, data)
	}
	sp := tracing.ChildFromContext(ctx, tracing.CompReplicate, tracing.SpanReplicaPut)
	sp.Annotate("node", node)
	defer func() { sp.EndErr(err) }()
	var req *http.Request
	if rs.binPeer(node) {
		sp.Annotate("dialect", BinV1)
		req, err = binPutOneReq(node, sum, data)
		if err == nil {
			req.Header.Set(APIHeader, APIV1)
			req.Header.Set(ReplicaHeader, "1")
		}
	} else {
		req, err = rs.replicaReq(http.MethodPut, node, "/v1/chunk/"+sum.String(), bytes.NewReader(data))
	}
	if err != nil {
		return err
	}
	sp.Inject(req.Header)
	rs.met.ForwardPut()
	resp, err := rs.do(node, req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// getReplica reads one chunk from one remote owner, verifying the
// digest so a corrupt replica is never propagated.
func (rs *ReplicatedStore) getReplica(ctx context.Context, node string, sum Sum) (_ []byte, err error) {
	sp := tracing.ChildFromContext(ctx, tracing.CompReplicate, tracing.SpanReplicaGet)
	sp.Annotate("node", node)
	defer func() { sp.EndErr(err) }()
	if rs.binPeer(node) {
		sp.Annotate("dialect", BinV1)
		req, err := binGetOneReq(node, sum)
		if err != nil {
			return nil, err
		}
		req.Header.Set(APIHeader, APIV1)
		req.Header.Set(ReplicaHeader, "1")
		sp.Inject(req.Header)
		rs.met.ForwardGet()
		resp, err := rs.do(node, req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out, err := binReadOneFrame(resp, sum)
		if err != nil && errors.Is(err, ErrBadDigest) {
			rs.health.ReportFailure(node)
		}
		return out, err
	}
	req, err := rs.replicaReq(http.MethodGet, node, "/v1/chunk/"+sum.String(), nil)
	if err != nil {
		return nil, err
	}
	sp.Inject(req.Header)
	rs.met.ForwardGet()
	resp, err := rs.do(node, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	scratch := getChunkBuf()
	defer putChunkBuf(scratch)
	n, overflow, err := readBody(resp.Body, *scratch)
	if err != nil {
		return nil, err
	}
	data := (*scratch)[:n]
	if overflow || SumBytes(data) != sum {
		rs.health.ReportFailure(node)
		return nil, fmt.Errorf("%w: replica %s returned corrupt bytes for %s", ErrBadDigest, node, sum)
	}
	out := make([]byte, n)
	copy(out, data)
	return out, nil
}

// statReplica asks one owner which of the queried chunks it holds.
func (rs *ReplicatedStore) statReplica(node string, sums []Sum) ([]bool, error) {
	body, err := json.Marshal(StatRequest{ChunkMD5s: sumStrings(sums)})
	if err != nil {
		return nil, err
	}
	req, err := rs.replicaReq(http.MethodPost, node, "/v1/op/stat", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rs.do(node, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var sr StatResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	missing := make(map[string]bool, len(sr.MissingMD5s))
	for _, m := range sr.MissingMD5s {
		missing[m] = true
	}
	out := make([]bool, len(sums))
	for i, s := range sums {
		out[i] = !missing[s.String()]
	}
	return out, nil
}

// IsNotFound reports a missing-chunk error, local or decoded from the
// wire (typed envelope or a legacy server's bare 404).
func IsNotFound(err error) bool {
	return errors.Is(err, ErrNotFound) || statusOf(err) == http.StatusNotFound
}

// statusOf extracts the HTTP status a wire error arrived with, zero
// for local errors.
func statusOf(err error) int {
	var se *serverError
	if errors.As(err, &se) {
		return se.Status
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}
