package storage

import (
	"sync"
)

// ChunkStore is a content-addressed store of fixed-size chunks.
// Implementations must be safe for concurrent use.
type ChunkStore interface {
	// Put stores data under its digest. Storing content that already
	// exists is not an error; it increments the dedup counter.
	Put(sum Sum, data []byte) error
	// Get returns the chunk bytes, or ErrNotFound.
	Get(sum Sum) ([]byte, error)
	// Has reports whether the chunk exists.
	Has(sum Sum) bool
	// Stats returns a snapshot of store counters.
	Stats() StoreStats
}

// StoreStats reports chunk store occupancy and dedup effectiveness.
type StoreStats struct {
	Chunks      int   // unique chunks held
	Bytes       int64 // unique bytes held
	Puts        int64 // total Put calls
	DedupHits   int64 // Puts that found existing content
	BytesStored int64 // total bytes offered across all Puts
}

// DedupRatio returns the fraction of offered bytes that deduplication
// avoided storing.
func (s StoreStats) DedupRatio() float64 {
	if s.BytesStored == 0 {
		return 0
	}
	return 1 - float64(s.Bytes)/float64(s.BytesStored)
}

// MemStore is an in-memory ChunkStore.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[Sum][]byte
	stats  StoreStats
}

// NewMemStore returns an empty in-memory chunk store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[Sum][]byte)}
}

// Put implements ChunkStore. The data slice is copied.
func (m *MemStore) Put(sum Sum, data []byte) error {
	if SumBytes(data) != sum {
		return errBadDigest
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	m.stats.BytesStored += int64(len(data))
	if _, ok := m.chunks[sum]; ok {
		m.stats.DedupHits++
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.chunks[sum] = cp
	m.stats.Chunks++
	m.stats.Bytes += int64(len(data))
	return nil
}

// Get implements ChunkStore.
func (m *MemStore) Get(sum Sum) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.chunks[sum]
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}

// Has implements ChunkStore.
func (m *MemStore) Has(sum Sum) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.chunks[sum]
	return ok
}

// Stats implements ChunkStore.
func (m *MemStore) Stats() StoreStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Delete removes a chunk, freeing its space (used by the garbage
// collector once the last referencing file is gone).
func (m *MemStore) Delete(sum Sum) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.chunks[sum]
	if !ok {
		return ErrNotFound
	}
	delete(m.chunks, sum)
	m.stats.Chunks--
	m.stats.Bytes -= int64(len(data))
	return nil
}
