package storage

import (
	"context"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// ChunkStore is a content-addressed store of fixed-size chunks.
// Implementations must be safe for concurrent use.
type ChunkStore interface {
	// Put stores data under its digest. Storing content that already
	// exists is not an error; it increments the dedup counter.
	Put(sum Sum, data []byte) error
	// Get returns the chunk bytes, or ErrNotFound.
	Get(sum Sum) ([]byte, error)
	// Has reports whether the chunk exists.
	Has(sum Sum) bool
	// Stats returns a snapshot of store counters.
	Stats() StoreStats
}

// MultiHaser is an optional ChunkStore extension answering many
// existence checks in one call. On a replicated store each Has is a
// network round trip; MultiHas batches the probes per replica owner.
type MultiHaser interface {
	// MultiHas reports, for each digest, whether the chunk exists.
	MultiHas(sums []Sum) []bool
}

// multiHas answers a batch of existence checks, using the store's
// batched path when it has one.
func multiHas(s ChunkStore, sums []Sum) []bool {
	if mh, ok := s.(MultiHaser); ok {
		return mh.MultiHas(sums)
	}
	out := make([]bool, len(sums))
	for i, sum := range sums {
		out[i] = s.Has(sum)
	}
	return out
}

// CtxStore is an optional ChunkStore extension for stores whose
// operations are worth tracing: the context carries the request's
// span (see internal/tracing) and the store records child spans for
// the time it spends — replication fan-out, segment appends, fsync
// waits, reads. Stores with nanosecond-scale operations (MemStore)
// skip it; a span would cost more than the work it measures.
type CtxStore interface {
	// PutCtx is Put under the context's trace.
	PutCtx(ctx context.Context, sum Sum, data []byte) error
	// GetCtx is Get under the context's trace.
	GetCtx(ctx context.Context, sum Sum) ([]byte, error)
}

// PutCtx stores through the context-aware path when the store has
// one, falling back to the plain Put.
func PutCtx(ctx context.Context, s ChunkStore, sum Sum, data []byte) error {
	if cs, ok := s.(CtxStore); ok {
		return cs.PutCtx(ctx, sum, data)
	}
	return s.Put(sum, data)
}

// GetCtx reads through the context-aware path when the store has one,
// falling back to the plain Get.
func GetCtx(ctx context.Context, s ChunkStore, sum Sum) ([]byte, error) {
	if cs, ok := s.(CtxStore); ok {
		return cs.GetCtx(ctx, sum)
	}
	return s.Get(sum)
}

// Ranger is an optional ChunkStore extension enumerating held chunks,
// used by the tiering migrator, the /v1/cluster/chunks listing and
// the rebalancer.
type Ranger interface {
	// Range calls f for each chunk until f returns false.
	Range(f func(sum Sum, size int64) bool)
}

// StoreStats reports chunk store occupancy and dedup effectiveness.
type StoreStats struct {
	Chunks      int   // unique chunks held
	Bytes       int64 // unique bytes held
	Puts        int64 // total Put calls
	DedupHits   int64 // Puts that found existing content
	BytesStored int64 // total bytes offered across all Puts
}

// DedupRatio returns the fraction of offered bytes that deduplication
// avoided storing.
func (s StoreStats) DedupRatio() float64 {
	if s.BytesStored == 0 {
		return 0
	}
	return 1 - float64(s.Bytes)/float64(s.BytesStored)
}

// defaultShards is next-pow2(GOMAXPROCS·4): enough shards that a
// fully loaded machine rarely lands two cores on the same lock, at a
// fixed footprint of a few dozen map headers.
func defaultShards() int {
	return nextPow2(runtime.GOMAXPROCS(0) * 4)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// MemStore is an in-memory ChunkStore. The key space is split across
// power-of-two shards selected by the leading bytes of the MD5 digest
// — MD5 output is uniform, so shards stay balanced with no rehashing
// — and each shard has its own lock, so concurrent Puts and Gets of
// distinct chunks do not contend. Counters are atomics; Stats is a
// near-point-in-time snapshot rather than a fully consistent one.
type MemStore struct {
	shards []memShard
	mask   uint32

	puts        atomic.Int64
	dedupHits   atomic.Int64
	bytesStored atomic.Int64
	chunks      atomic.Int64
	bytes       atomic.Int64
}

// memShard is padded out to a cache line so neighbouring shard locks
// do not false-share under write-heavy load.
type memShard struct {
	mu     sync.RWMutex
	chunks map[Sum][]byte
	_      [64 - 32]byte
}

// NewMemStore returns an empty in-memory chunk store with the default
// shard count.
func NewMemStore() *MemStore { return NewMemStoreShards(0) }

// NewMemStoreShards returns an empty store with n shards, rounded up
// to a power of two. n <= 0 selects next-pow2(GOMAXPROCS·4).
func NewMemStoreShards(n int) *MemStore {
	if n <= 0 {
		n = defaultShards()
	}
	n = nextPow2(n)
	m := &MemStore{shards: make([]memShard, n), mask: uint32(n - 1)}
	for i := range m.shards {
		m.shards[i].chunks = make(map[Sum][]byte)
	}
	return m
}

// Shards reports the shard count (for startup logging).
func (m *MemStore) Shards() int { return len(m.shards) }

func (m *MemStore) shard(sum Sum) *memShard {
	return &m.shards[binary.LittleEndian.Uint32(sum[:4])&m.mask]
}

// Put implements ChunkStore. The data slice is copied.
func (m *MemStore) Put(sum Sum, data []byte) error {
	if SumBytes(data) != sum {
		return errBadDigest
	}
	m.puts.Add(1)
	m.bytesStored.Add(int64(len(data)))
	sh := m.shard(sum)
	sh.mu.Lock()
	if _, ok := sh.chunks[sum]; ok {
		sh.mu.Unlock()
		m.dedupHits.Add(1)
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	sh.chunks[sum] = cp
	sh.mu.Unlock()
	m.chunks.Add(1)
	m.bytes.Add(int64(len(data)))
	return nil
}

// Get implements ChunkStore.
func (m *MemStore) Get(sum Sum) ([]byte, error) {
	sh := m.shard(sum)
	sh.mu.RLock()
	data, ok := sh.chunks[sum]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}

// GetReaderCtx implements ReaderStore: the reader wraps the resident
// slice without copying — chunk payloads are content-immutable, so
// sharing is safe for the reader's lifetime.
func (m *MemStore) GetReaderCtx(ctx context.Context, sum Sum) (*ChunkReader, error) {
	data, err := m.Get(sum)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(data), nil
}

// Has implements ChunkStore.
func (m *MemStore) Has(sum Sum) bool {
	sh := m.shard(sum)
	sh.mu.RLock()
	_, ok := sh.chunks[sum]
	sh.mu.RUnlock()
	return ok
}

// Stats implements ChunkStore.
func (m *MemStore) Stats() StoreStats {
	return StoreStats{
		Chunks:      int(m.chunks.Load()),
		Bytes:       m.bytes.Load(),
		Puts:        m.puts.Load(),
		DedupHits:   m.dedupHits.Load(),
		BytesStored: m.bytesStored.Load(),
	}
}

// Range implements Ranger: it visits every held chunk. The snapshot
// is per-shard consistent; chunks inserted or deleted concurrently
// may or may not be seen.
func (m *MemStore) Range(f func(sum Sum, size int64) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		// Copy the shard's keys so f runs without holding the lock
		// (f may call back into the store).
		entries := make([]struct {
			sum  Sum
			size int64
		}, 0, len(sh.chunks))
		for sum, data := range sh.chunks {
			entries = append(entries, struct {
				sum  Sum
				size int64
			}{sum, int64(len(data))})
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			if !f(e.sum, e.size) {
				return
			}
		}
	}
}

// Delete removes a chunk, freeing its space (used by the garbage
// collector once the last referencing file is gone).
func (m *MemStore) Delete(sum Sum) error {
	sh := m.shard(sum)
	sh.mu.Lock()
	data, ok := sh.chunks[sum]
	if !ok {
		sh.mu.Unlock()
		return ErrNotFound
	}
	delete(sh.chunks, sum)
	sh.mu.Unlock()
	m.chunks.Add(-1)
	m.bytes.Add(-int64(len(data)))
	return nil
}
