package storage

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastMetaRetry keeps RemoteMeta tests quick.
var fastMetaRetry = RetryPolicy{
	MaxAttempts:    6,
	BaseDelay:      time.Millisecond,
	MaxDelay:       5 * time.Millisecond,
	Multiplier:     2,
	Jitter:         0.5,
	RequestTimeout: 2 * time.Second,
}

// TestRemoteMetaRetriesTransients: 503s (with Retry-After) are retried
// until the server recovers; the commit lands exactly once.
func TestRemoteMetaRetriesTransients(t *testing.T) {
	meta := NewMetadata("fe")
	data := testChunk(50, 1)
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "r", Size: int64(len(data)), FileMD5: SumBytes(data).String()})
	if err != nil {
		t.Fatal(err)
	}
	inner := meta.Handler()
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeAPIError(w, r, http.StatusServiceUnavailable, ErrUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rm := NewRemoteMeta(srv.URL, nil)
	rm.SetRetry(fastMetaRetry, 1)
	if err := rm.Commit(0, resp.URL, SplitSums(data)); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if _, err := meta.Lookup(0, SumBytes(data)); err != nil {
		t.Fatalf("commit did not land: %v", err)
	}
}

// TestRemoteMetaNoRetryOnNotFound: a 404 envelope unwraps to
// ErrNotFound and is terminal — exactly one attempt.
func TestRemoteMetaNoRetryOnNotFound(t *testing.T) {
	meta := NewMetadata("fe")
	var attempts atomic.Int64
	inner := meta.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rm := NewRemoteMeta(srv.URL, nil)
	rm.SetRetry(fastMetaRetry, 1)
	if err := rm.Commit(0, "/f/unknown/1", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not retry)", got)
	}
}

// TestRemoteMetaDeadline: a hung server trips the per-attempt deadline
// instead of blocking the front-end forever.
func TestRemoteMetaDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	rm := NewRemoteMeta(srv.URL, &http.Client{})
	pol := fastMetaRetry
	pol.MaxAttempts = 2
	pol.RequestTimeout = 50 * time.Millisecond
	rm.SetRetry(pol, 1)
	start := time.Now()
	err := rm.Commit(0, "/f/x/1", nil)
	if err == nil {
		t.Fatal("commit against hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not fire: took %v", elapsed)
	}
}

// TestRemoteMetaFailover: with a dead endpoint listed first, attempts
// rotate to the live one; once the breaker trips, the live endpoint is
// tried first and a single round trip suffices.
func TestRemoteMetaFailover(t *testing.T) {
	meta := NewMetadata("fe")
	live := httptest.NewServer(meta.Handler())
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	rm := NewRemoteMeta(deadURL+","+live.URL, &http.Client{})
	rm.SetRetry(fastMetaRetry, 1)

	data := testChunk(51, 1)
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "f", Size: int64(len(data)), FileMD5: SumBytes(data).String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Commit(0, resp.URL, SplitSums(data)); err != nil {
		t.Fatalf("failover commit: %v", err)
	}
	if f, err := rm.Lookup(0, SumBytes(data)); err != nil || f.URL != resp.URL {
		t.Fatalf("failover lookup: %+v %v", f, err)
	}
}

// TestRemoteMetaStandbyRouting: a write that first lands on a standby
// is bounced with a retryable 503 and retried until it reaches the
// primary — the failover path a metadata-node kill exercises.
func TestRemoteMetaStandbyRouting(t *testing.T) {
	primary := NewMetadata("fe")
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()

	standby := NewMetadata("fe")
	standby.SetStandby(psrv.URL)
	ssrv := httptest.NewServer(standby.Handler())
	defer ssrv.Close()

	// Standby listed first: the write bounces there, then rotates.
	rm := NewRemoteMeta(ssrv.URL+","+psrv.URL, nil)
	rm.SetRetry(fastMetaRetry, 1)

	data := testChunk(52, 1)
	resp, err := primary.StoreCheck(StoreCheckRequest{UserID: 1, Name: "s", Size: int64(len(data)), FileMD5: SumBytes(data).String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Commit(0, resp.URL, SplitSums(data)); err != nil {
		t.Fatalf("commit through standby bounce: %v", err)
	}
	if _, err := primary.Lookup(0, SumBytes(data)); err != nil {
		t.Fatalf("commit did not land on primary: %v", err)
	}
}
