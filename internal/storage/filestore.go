package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is a ChunkStore persisted to a directory: each chunk lives
// in a file named by its hex digest, fanned out over 256 prefix
// subdirectories. It is safe for concurrent use and survives restarts
// (Reopen rebuilds the index by scanning the directory).
type FileStore struct {
	dir string

	mu    sync.RWMutex
	index map[Sum]int64 // digest -> size
	stats StoreStats
}

// NewFileStore opens (creating if needed) a chunk store rooted at dir
// and indexes any chunks already present.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: filestore: %w", err)
	}
	fs := &FileStore{dir: dir, index: make(map[Sum]int64)}
	if err := fs.reindex(); err != nil {
		return nil, err
	}
	return fs, nil
}

// reindex scans the directory tree and rebuilds the in-memory index.
func (fs *FileStore) reindex() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.index = make(map[Sum]int64)
	fs.stats = StoreStats{}
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(fs.dir, e.Name()))
		if err != nil {
			return err
		}
		for _, f := range sub {
			sum, err := ParseSum(f.Name())
			if err != nil {
				continue // foreign file; ignore
			}
			info, err := f.Info()
			if err != nil {
				return err
			}
			fs.index[sum] = info.Size()
			fs.stats.Chunks++
			fs.stats.Bytes += info.Size()
		}
	}
	return nil
}

// path returns the chunk's file path.
func (fs *FileStore) path(sum Sum) string {
	hex := sum.String()
	return filepath.Join(fs.dir, hex[:2], hex)
}

// Put implements ChunkStore. Writes are atomic (temp file + rename).
func (fs *FileStore) Put(sum Sum, data []byte) error {
	if SumBytes(data) != sum {
		return errBadDigest
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Puts++
	fs.stats.BytesStored += int64(len(data))
	if _, ok := fs.index[sum]; ok {
		fs.stats.DedupHits++
		return nil
	}
	p := fs.path(sum)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fs.index[sum] = int64(len(data))
	fs.stats.Chunks++
	fs.stats.Bytes += int64(len(data))
	return nil
}

// Get implements ChunkStore.
func (fs *FileStore) Get(sum Sum) ([]byte, error) {
	fs.mu.RLock()
	_, ok := fs.index[sum]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(fs.path(sum))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	if SumBytes(data) != sum {
		return nil, fmt.Errorf("storage: on-disk corruption for %s", sum)
	}
	return data, nil
}

// Has implements ChunkStore.
func (fs *FileStore) Has(sum Sum) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.index[sum]
	return ok
}

// Stats implements ChunkStore.
func (fs *FileStore) Stats() StoreStats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.stats
}

// Delete removes a chunk (used by the tiering migrator).
func (fs *FileStore) Delete(sum Sum) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	size, ok := fs.index[sum]
	if !ok {
		return ErrNotFound
	}
	if err := os.Remove(fs.path(sum)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(fs.index, sum)
	fs.stats.Chunks--
	fs.stats.Bytes -= size
	return nil
}
