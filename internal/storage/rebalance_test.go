package storage

import (
	"testing"
)

func TestRebalanceRestoresPlacementAndPrunes(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 2, 2)

	// Scatter chunks deliberately wrong: each lands only on the one
	// node the ring does NOT assign it to.
	var sums []Sum
	for i := 0; i < 8; i++ {
		sum, data := replChunk(uint64(40+i), 4<<10)
		owners := nodes[0].rs.Owners(sum)
		ownerSet := map[string]bool{owners[0]: true, owners[1]: true}
		for _, nd := range nodes {
			if !ownerSet[nd.url] {
				if err := nd.local.Put(sum, data); err != nil {
					t.Fatal(err)
				}
			}
		}
		sums = append(sums, sum)
	}

	rb := &Rebalancer{Seed: nodes[0].url, Prune: true, Logf: t.Logf}
	rep, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 3 || rep.Replicas != 2 {
		t.Fatalf("report topology = %d nodes N=%d, want 3/2", rep.Nodes, rep.Replicas)
	}
	// Every chunk was on one wrong node: two owner copies to create,
	// one misplaced copy to prune.
	if rep.Replicated != 2*len(sums) {
		t.Errorf("replicated = %d, want %d", rep.Replicated, 2*len(sums))
	}
	if rep.Pruned != len(sums) {
		t.Errorf("pruned = %d, want %d", rep.Pruned, len(sums))
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}

	for _, sum := range sums {
		owners := nodes[0].rs.Owners(sum)
		ownerSet := map[string]bool{owners[0]: true, owners[1]: true}
		for _, nd := range nodes {
			has := nd.local.Has(sum)
			if ownerSet[nd.url] && !has {
				t.Errorf("owner %s missing %s after rebalance", nd.url, sum)
			}
			if !ownerSet[nd.url] && has {
				t.Errorf("non-owner %s still holds %s after prune", nd.url, sum)
			}
		}
	}

	// A second pass is a no-op.
	rep, err = rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicated != 0 || rep.Pruned != 0 || rep.Misplaced != 0 {
		t.Errorf("second pass not idempotent: %+v", rep)
	}
}

func TestRebalanceDryRunMovesNothing(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 2, 2)
	sum, data := replChunk(60, 4<<10)
	owners := nodes[0].rs.Owners(sum)
	// Only the secondary holds the chunk.
	if err := nodeByURL(t, nodes, owners[1]).local.Put(sum, data); err != nil {
		t.Fatal(err)
	}

	rb := &Rebalancer{Seed: nodes[0].url, DryRun: true}
	rep, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicated != 1 {
		t.Errorf("dry run planned %d copies, want 1", rep.Replicated)
	}
	if nodeByURL(t, nodes, owners[0]).local.Has(sum) {
		t.Error("dry run moved bytes")
	}
}
