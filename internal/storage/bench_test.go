package storage

import (
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// benchChunks builds pre-hashed chunk payloads so the timed loop
// exercises only the store, not content generation.
func benchChunks(n, size int) ([]Sum, [][]byte) {
	src := randx.New(1)
	sums := make([]Sum, n)
	data := make([][]byte, n)
	for i := range data {
		buf := make([]byte, size)
		for j := 0; j+8 <= size; j += 8 {
			v := src.Uint64()
			for k := 0; k < 8; k++ {
				buf[j+k] = byte(v >> (8 * k))
			}
		}
		data[i] = buf
		sums[i] = SumBytes(buf)
	}
	return sums, data
}

// BenchmarkShardedStorePut measures concurrent Put throughput into
// the sharded MemStore at several goroutine counts.
func BenchmarkShardedStorePut(b *testing.B) {
	const chunks, size = 1024, 16 << 10
	sums, data := benchChunks(chunks, size)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(chunks) * int64(size))
			for i := 0; i < b.N; i++ {
				store := NewMemStore()
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							j := int(next.Add(1)) - 1
							if j >= chunks {
								return
							}
							if err := store.Put(sums[j], data[j]); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkTransferWindow measures a full store+retrieve of one
// multi-chunk file through a live front-end whose upstream delay is a
// ~2 ms lognormal, at several in-flight window sizes. The path is
// latency-bound, so wider windows win even on one core.
func BenchmarkTransferWindow(b *testing.B) {
	const chunksPerFile = 8
	delaySrc := randx.New(9)
	var delayMu sync.Mutex
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{
		Store:         store,
		Meta:          meta,
		Sink:          &Collector{},
		SleepUpstream: true,
		UpstreamDelay: func() time.Duration {
			delayMu.Lock()
			defer delayMu.Unlock()
			return time.Duration(delaySrc.LogNormal(math.Log(float64(2*time.Millisecond)), 0.45))
		},
	})
	feSrv := httptest.NewServer(fe.Handler())
	defer feSrv.Close()
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()
	meta.AddFrontEnd(feSrv.URL)

	src := randx.New(3)
	payload := make([]byte, chunksPerFile*ChunkSize)
	for j := 0; j < len(payload); j += 4096 {
		payload[j] = byte(src.Uint64())
	}

	for _, window := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			client := &Client{
				MetaURL:  metaSrv.URL,
				UserID:   1,
				DeviceID: 1,
				Device:   trace.Android,
				Parallel: window,
			}
			b.SetBytes(int64(len(payload)) * 2)
			for i := 0; i < b.N; i++ {
				res, err := client.StoreFile(fmt.Sprintf("bench-w%d-%d.bin", window, i), payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := client.RetrieveFile(res.URL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
