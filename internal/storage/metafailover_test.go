package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastFailover arms a MetaStandby with test-speed lease parameters.
func fastFailover(s *MetaStandby, rivals ...string) {
	s.SetFailover(60*time.Millisecond, rivals...)
}

// TestMetaEpochFencingRejoin is the core fencing matrix entry: a
// primary is deposed by a promoted standby, keeps running unaware, and
// must be fenced the moment it sees the new epoch — then rejoin as a
// standby of the new primary via a cross-epoch snapshot reseed.
func TestMetaEpochFencingRejoin(t *testing.T) {
	old := openDurableMeta(t, t.TempDir())
	oldSrv := httptest.NewServer(old.Handler())
	defer oldSrv.Close()

	neu := openDurableMeta(t, t.TempDir())
	puller := NewMetaStandby(neu, oldSrv.URL, nil, 5*time.Millisecond)
	puller.Start()
	defer puller.Close()

	var urls []string
	for i := 0; i < 8; i++ {
		urls = append(urls, metaUpload(t, old, 60, i, 1))
	}
	waitFor(t, "standby catch-up", func() bool { return neu.LastSeq() == old.LastSeq() })

	// Failover: the standby is promoted while the old primary is still
	// alive and, at its own epoch, still willing to take writes.
	puller.Close()
	if err := neu.PromoteEpoch(); err != nil {
		t.Fatal(err)
	}
	if ep := neu.Epoch(); ep != 1 {
		t.Fatalf("promoted epoch = %d, want 1", ep)
	}
	postURL := metaUpload(t, neu, 60, 100, 2)

	// A request carrying the new epoch fences the old primary: the
	// typed envelope comes back with code "fenced" and a 503.
	req, err := http.NewRequest(http.MethodPost, oldSrv.URL+"/v1/meta/store-check",
		strings.NewReader(`{"user_id":9,"name":"fp","size":1,"file_md5":"d41d8cd98f00b204e9800998ecf8427e"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(MetaEpochHeader, strconv.FormatUint(neu.Epoch(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Code != CodeFenced {
		t.Fatalf("deposed write: status=%d code=%q, want 503/%q", resp.StatusCode, env.Code, CodeFenced)
	}
	// Once fenced, every direct write bounces with the typed sentinel.
	data := testChunk(60, 200)
	if _, err := old.StoreCheck(StoreCheckRequest{UserID: 9, Name: "x", Size: 1, FileMD5: SumBytes(data).String()}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced write: err = %v, want ErrFenced", err)
	}
	if st := old.WALStatus(); !st.Fenced || st.Epoch != 0 {
		t.Fatalf("deposed status = %+v, want fenced at epoch 0", st)
	}

	// Rejoin: the deposed primary becomes a standby of the new primary
	// and is reseeded across the epoch boundary (its tail could hold
	// forked records the new primary never saw).
	neuSrv := httptest.NewServer(neu.Handler())
	defer neuSrv.Close()
	rejoin := NewMetaStandby(old, neuSrv.URL, nil, 5*time.Millisecond)
	rejoin.Start()
	defer rejoin.Close()
	waitFor(t, "rejoin catch-up", func() bool {
		return old.LastSeq() == neu.LastSeq() && old.Epoch() == neu.Epoch()
	})
	requireSameState(t, neu, old, "rejoined standby")
	st := old.WALStatus()
	if !st.Standby || st.Fenced || st.Primary != neuSrv.URL {
		t.Fatalf("rejoined status = %+v", st)
	}
	if _, err := old.StoreCheck(StoreCheckRequest{UserID: 9, Name: "y", Size: 1, FileMD5: SumBytes(data).String()}); !errors.Is(err, ErrNotPrimary) || !IsUnavailable(err) {
		t.Fatalf("standby write: err = %v, want ErrNotPrimary (retryable)", err)
	}
	// Every pre- and post-failover file is on both nodes.
	for _, u := range append(append([]string(nil), urls...), postURL) {
		if _, err := old.LookupURL(u); err != nil {
			t.Fatalf("rejoined standby missing %s: %v", u, err)
		}
	}
}

// TestMetaDoublePromotion: two nodes race for the same dead primary.
// The loser's rival check finds the winner already promoted at an
// equal-or-higher epoch, aborts its own promotion, and rejoins as the
// winner's standby instead of forking history.
func TestMetaDoublePromotion(t *testing.T) {
	winner := NewMetadata("fe")
	winner.SetStandby("gone")
	if err := winner.PromoteEpoch(); err != nil {
		t.Fatal(err)
	}
	metaReserveOnly(t, winner, 61, 50)
	winSrv := httptest.NewServer(winner.Handler())
	defer winSrv.Close()

	primary := NewMetadata("fe")
	priSrv := httptest.NewServer(primary.Handler())

	loser := NewMetadata("fe")
	puller := NewMetaStandby(loser, priSrv.URL, nil, 5*time.Millisecond)
	fastFailover(puller, winSrv.URL)
	puller.Start()
	defer puller.Close()

	for i := 0; i < 3; i++ {
		metaReserveOnly(t, primary, 61, i)
	}
	waitFor(t, "loser catch-up", func() bool { return loser.LastSeq() == primary.LastSeq() })

	priSrv.CloseClientConnections()
	priSrv.Close()

	waitFor(t, "promotion abort", func() bool { return puller.aborts.Load() >= 1 })
	if n := puller.promotions.Load(); n != 0 {
		t.Fatalf("loser promoted %d times, want 0", n)
	}
	// The loser retargets at the winner and reseeds across the epochs.
	waitFor(t, "retargeted catch-up", func() bool {
		return loser.Epoch() == winner.Epoch() && loser.LastSeq() == winner.LastSeq()
	})
	st := loser.WALStatus()
	if !st.Standby || st.Primary != winSrv.URL {
		t.Fatalf("loser status = %+v, want standby of %s", st, winSrv.URL)
	}
	requireSameState(t, winner, loser, "loser rejoined winner")
}

// TestMetaPromotionRace: promoting mid-pull-stream must stop the pull
// loop synchronously, so no replicated batch can land after local
// writes resume — the race the old flag-flip Promote() had. Run under
// -race in CI.
func TestMetaPromotionRace(t *testing.T) {
	primary := NewMetadata("fe")
	priSrv := httptest.NewServer(primary.Handler())
	defer priSrv.Close()

	standby := NewMetadata("fe")
	puller := NewMetaStandby(standby, priSrv.URL, nil, time.Millisecond)
	puller.Start()
	defer puller.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data := testChunk(62, i)
			primary.StoreCheck(StoreCheckRequest{
				UserID: 1, Name: fmt.Sprintf("race-%d", i), Size: int64(len(data)), FileMD5: SumBytes(data).String(),
			})
		}
	}()
	waitFor(t, "stream flowing", func() bool { return standby.LastSeq() > 20 })

	// Promote while batches are in flight: returns only after the pull
	// loop has exited.
	if err := standby.PromoteEpoch(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-writerDone

	seq := standby.LastSeq()
	data := testChunk(62, 100000)
	if _, err := standby.StoreCheck(StoreCheckRequest{UserID: 5, Name: "after", Size: 1, FileMD5: SumBytes(data).String()}); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if standby.LastSeq() != seq+1 {
		t.Fatalf("lastSeq %d -> %d, want contiguous local append", seq, standby.LastSeq())
	}
	// A stray replicated batch arriving after promotion is rejected
	// outright rather than interleaved with local writes.
	stray := []MetaWALRecord{{Seq: standby.LastSeq() + 1, Op: walOpReserve, User: 2, URL: "/f/stray/1", Name: "s", Size: 1, FileMD5: SumBytes(data).String(), URLSeq: 999999}}
	if _, err := standby.ApplyReplicated(stray); !errors.Is(err, errNotStandby) {
		t.Fatalf("stray batch: err = %v, want errNotStandby", err)
	}
}

// TestMetaLeaseExpiryDuringFsyncStall: the primary's WAL fsync hangs
// mid-commit while the primary dies to the outside world. The lease
// expires, the standby promotes, and the stalled commit — which the
// standby had already replicated, which is the only reason the
// primary may still ack it — survives on the new primary. Nothing
// acked is lost.
func TestMetaLeaseExpiryDuringFsyncStall(t *testing.T) {
	primary := openDurableMeta(t, t.TempDir())
	priSrv := httptest.NewServer(primary.Handler())
	defer priSrv.Close()

	standby := NewMetadata("fe")
	puller := NewMetaStandby(standby, priSrv.URL, nil, 2*time.Millisecond)
	fastFailover(puller)
	puller.Start()
	defer puller.Close()

	for i := 0; i < 5; i++ {
		metaUpload(t, primary, 63, i, 1)
	}
	waitFor(t, "standby catch-up", func() bool { return standby.LastSeq() == primary.LastSeq() })

	// Stall the primary's next fsync and start a write into the stall.
	release := make(chan struct{})
	metaFsyncDelay = func() { <-release }
	defer func() { metaFsyncDelay = nil }()
	type res struct {
		url string
		err error
	}
	stalled := make(chan res, 1)
	data := testChunk(63, 999)
	stallSeq := primary.LastSeq() + 1
	go func() {
		r, err := primary.StoreCheck(StoreCheckRequest{UserID: 3, Name: "stall", Size: int64(len(data)), FileMD5: SumBytes(data).String()})
		stalled <- res{r.URL, err}
	}()

	// The record is in the primary's tail before durability, so the
	// standby replicates and acknowledges it while the fsync hangs.
	waitFor(t, "stalled record replicated", func() bool {
		return standby.LastSeq() == stallSeq &&
			primary.WALStatus().ReplAckSeq == stallSeq
	})

	// The primary "dies": pulls fail, the lease expires, the standby
	// promotes — all while the commit is still stuck in fsync.
	priSrv.CloseClientConnections()
	priSrv.Close()
	waitFor(t, "lease-expiry promotion", func() bool { return puller.promotions.Load() == 1 })
	select {
	case r := <-stalled:
		t.Fatalf("stalled commit returned before fsync release: %+v", r)
	default:
	}

	close(release)
	r := <-stalled
	if r.err != nil {
		t.Fatalf("stalled commit: %v", r.err)
	}
	// The ack was only possible because the standby holds the record:
	// it must be resolvable on the new primary.
	if _, err := standby.LookupURL(r.url); err != nil {
		t.Fatalf("acked-during-stall record missing on new primary: %v", err)
	}
	// And the moment the deposed primary hears the new epoch, it stops
	// acking anything.
	primary.ObserveEpoch(standby.Epoch())
	if _, err := primary.StoreCheck(StoreCheckRequest{UserID: 3, Name: "late", Size: 1, FileMD5: SumBytes(testChunk(63, 1000)).String()}); !errors.Is(err, ErrFenced) {
		t.Fatalf("post-fence write: err = %v, want ErrFenced", err)
	}
}

// TestAutoFailover is the end-to-end path the cluster smoke gates on:
// a SIGKILLed primary that never comes back, a standby that promotes
// itself on lease expiry, and clients that follow the promotion — with
// every acknowledged commit still resolvable afterwards.
func TestAutoFailover(t *testing.T) {
	primary := openDurableMeta(t, t.TempDir())
	priSrv := httptest.NewServer(primary.Handler())
	defer priSrv.Close()

	standby := openDurableMeta(t, t.TempDir())
	stbSrv := httptest.NewServer(standby.Handler())
	defer stbSrv.Close()
	puller := NewMetaStandby(standby, priSrv.URL, nil, 5*time.Millisecond)
	fastFailover(puller)
	puller.Start()
	defer puller.Close()

	var urls []string
	for i := 0; i < 10; i++ {
		urls = append(urls, metaUpload(t, primary, 64, i, 1+uint64(i%3)))
	}
	waitFor(t, "pre-kill replication", func() bool {
		return standby.LastSeq() == primary.LastSeq() &&
			primary.WALStatus().ReplAckSeq == primary.LastSeq()
	})

	// Kill the primary. No restart.
	priSrv.CloseClientConnections()
	priSrv.Close()
	waitFor(t, "self-promotion", func() bool { return puller.promotions.Load() == 1 })
	st := standby.WALStatus()
	if st.Standby || st.Fenced || st.Epoch != 1 {
		t.Fatalf("promoted status = %+v, want primary at epoch 1", st)
	}

	// Every commit acked before the kill survived the failover.
	for _, u := range urls {
		if _, err := standby.LookupURL(u); err != nil {
			t.Fatalf("acked commit %s lost in failover: %v", u, err)
		}
	}

	// A client configured with both endpoints follows the promotion:
	// the dead endpoint is rotated away from and the promoted standby
	// handles the writes.
	rm := NewRemoteMeta(priSrv.URL+","+stbSrv.URL, &http.Client{})
	rm.SetRetry(fastMetaRetry, 1)
	data := testChunk(64, 500)
	resp, err := standby.StoreCheck(StoreCheckRequest{UserID: 9, Name: "post", Size: int64(len(data)), FileMD5: SumBytes(data).String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Commit(0, resp.URL, SplitSums(data)); err != nil {
		t.Fatalf("post-failover commit via client: %v", err)
	}
	if f, err := rm.Lookup(0, SumBytes(data)); err != nil || f.URL != resp.URL {
		t.Fatalf("post-failover lookup: %+v %v", f, err)
	}
}

// TestRemoteMetaDemotion is the regression for the sticky-endpoint
// bug: after one standby bounce the endpoint list is reordered, so the
// NEXT operation's first attempt goes straight to the primary instead
// of re-bouncing off the deposed endpoint every time.
func TestRemoteMetaDemotion(t *testing.T) {
	primary := NewMetadata("fe")
	var priPosts atomic.Int64
	priSrv := httptest.NewServer(countPosts(primary.Handler(), &priPosts))
	defer priSrv.Close()

	standby := NewMetadata("fe")
	standby.SetStandby(priSrv.URL)
	var stbPosts atomic.Int64
	stbSrv := httptest.NewServer(countPosts(standby.Handler(), &stbPosts))
	defer stbSrv.Close()

	// Standby listed first: the configured order is wrong on purpose.
	rm := NewRemoteMeta(stbSrv.URL+","+priSrv.URL, nil)
	rm.SetRetry(fastMetaRetry, 1)

	commit := func(seed int) {
		t.Helper()
		data := testChunk(65, seed)
		resp, err := primary.StoreCheck(StoreCheckRequest{UserID: 1, Name: fmt.Sprintf("d-%d", seed), Size: int64(len(data)), FileMD5: SumBytes(data).String()})
		if err != nil {
			t.Fatal(err)
		}
		if err := rm.Commit(0, resp.URL, SplitSums(data)); err != nil {
			t.Fatal(err)
		}
	}
	commit(1)
	if n := stbPosts.Load(); n != 1 {
		t.Fatalf("first op: standby took %d write attempts, want exactly 1 bounce", n)
	}
	// The bounce demoted the standby endpoint: later operations start
	// at the primary and never touch the standby again.
	for i := 2; i <= 4; i++ {
		commit(i)
	}
	if n := stbPosts.Load(); n != 1 {
		t.Fatalf("standby write attempts after demotion = %d, want 1 (no re-bounces)", n)
	}
	if n := priPosts.Load(); n != 4 {
		t.Fatalf("primary write attempts = %d, want 4", n)
	}
}

// countPosts counts mutating requests, excluding the /meta/wal/status
// discovery probes the client issues after a demotion.
func countPosts(inner http.Handler, n *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && !strings.Contains(r.URL.Path, "/meta/wal/") {
			n.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
}

// TestRemoteMetaEpochStaleDemotion: an epoch header lower than one
// already seen reads as stale (the signal that demotes an endpoint),
// and demotion reorders the endpoint list so the next first attempt
// goes elsewhere.
func TestRemoteMetaEpochStaleDemotion(t *testing.T) {
	rm := NewRemoteMeta("http://a,http://b", nil)
	rs := rm.shardState(0)

	h := http.Header{}
	h.Set(MetaEpochHeader, "3")
	if rs.observeEpochHeader(h) {
		t.Fatal("first epoch observation read as stale")
	}
	low := http.Header{}
	low.Set(MetaEpochHeader, "2")
	if !rs.observeEpochHeader(low) {
		t.Fatal("lower-than-seen epoch did not read as stale")
	}
	same := http.Header{}
	same.Set(MetaEpochHeader, "3")
	if rs.observeEpochHeader(same) {
		t.Fatal("equal epoch read as stale")
	}

	if first := rs.pick(1); first != "http://a" {
		t.Fatalf("initial pick = %q, want the configured head", first)
	}
	rs.demote("http://a")
	if first := rs.pick(1); first != "http://b" {
		t.Fatalf("post-demotion pick = %q, want the surviving endpoint first", first)
	}
}

// TestPickFrontEndBreaker: the round-robin assignment skips front-ends
// whose breaker is open, falls back to blind rotation when every one
// is down, and re-admits a front-end the moment it reports healthy.
func TestPickFrontEndBreaker(t *testing.T) {
	m := NewMetadata("a", "b", "c")
	pick := func() string {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.pickFrontEnd()
	}

	// Trip b's breaker (threshold 2).
	m.ReportFrontEnd("b", false)
	m.ReportFrontEnd("b", false)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		seen[pick()]++
	}
	if seen["b"] != 0 {
		t.Fatalf("open-breaker front-end still assigned: %v", seen)
	}
	if seen["a"] == 0 || seen["c"] == 0 {
		t.Fatalf("healthy front-ends not rotated: %v", seen)
	}

	// All breakers open: a maybe-dead assignment beats refusing.
	for _, fe := range []string{"a", "c"} {
		m.ReportFrontEnd(fe, false)
		m.ReportFrontEnd(fe, false)
	}
	if fe := pick(); fe == "" {
		t.Fatal("all-down fallback returned no front-end")
	}

	// b recovers: it is the only alive node, so every pick lands on it.
	m.ReportFrontEnd("b", true)
	for i := 0; i < 4; i++ {
		if fe := pick(); fe != "b" {
			t.Fatalf("recovered front-end not re-admitted: got %q", fe)
		}
	}
}
