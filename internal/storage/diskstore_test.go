package storage

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newDiskStore(t *testing.T, opts DiskStoreOptions) (*DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds, dir
}

// testChunk derives a deterministic pseudo-random chunk from (seed, i)
// with a size that varies across records. Parent and child of the
// SIGKILL test regenerate identical content from the same pair.
func testChunk(seed int64, i int) []byte {
	size := 100 + (i*2503)%9000
	r := rand.New(rand.NewSource(seed + int64(i)*7919))
	data := make([]byte, size)
	r.Read(data)
	return data
}

func TestDiskStorePutGetHasDelete(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{})
	data := []byte("durable chunk payload")
	sum := SumBytes(data)

	if ds.Has(sum) {
		t.Fatal("Has before Put")
	}
	if err := ds.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	if !ds.Has(sum) {
		t.Fatal("Has after Put")
	}
	got, err := ds.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if err := ds.Delete(sum); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Get(sum); err != ErrNotFound {
		t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
	}
	if err := ds.Delete(sum); err != ErrNotFound {
		t.Fatalf("double Delete: err = %v, want ErrNotFound", err)
	}
}

func TestDiskStoreRejectsWrongDigest(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{})
	if err := ds.Put(SumBytes([]byte("other")), []byte("data")); err != errBadDigest {
		t.Fatalf("err = %v, want errBadDigest", err)
	}
}

func TestDiskStoreDedupStats(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{})
	data := []byte("same content twice")
	sum := SumBytes(data)
	for i := 0; i < 2; i++ {
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
	}
	st := ds.Stats()
	want := StoreStats{Chunks: 1, Bytes: int64(len(data)), Puts: 2, DedupHits: 1, BytesStored: 2 * int64(len(data))}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sums []Sum
	var chunks [][]byte
	for i := 0; i < 20; i++ {
		data := testChunk(1, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
		chunks = append(chunks, data)
	}
	// A tombstone must survive reopen too.
	if err := ds.Delete(sums[3]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	for i, sum := range sums {
		got, err := ds2.Get(sum)
		if i == 3 {
			if err != ErrNotFound {
				t.Fatalf("deleted chunk %d resurrected: err = %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Fatalf("chunk %d corrupted after reopen", i)
		}
	}
	st := ds2.Stats()
	if st.Chunks != 19 {
		t.Fatalf("recovered Chunks = %d, want 19", st.Chunks)
	}
	var wantBytes int64
	for i, c := range chunks {
		if i != 3 {
			wantBytes += int64(len(c))
		}
	}
	if st.Bytes != wantBytes {
		t.Fatalf("recovered Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if ds2.DiskStats().Recovery <= 0 {
		t.Fatal("recovery duration not recorded")
	}
	// The store stays writable after recovery.
	extra := testChunk(1, 999)
	if err := ds2.Put(SumBytes(extra), extra); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreSegmentRotation(t *testing.T) {
	ds, dir := newDiskStore(t, DiskStoreOptions{SegmentSize: 4 << 10})
	var sums []Sum
	var chunks [][]byte
	for i := 0; i < 40; i++ {
		data := testChunk(2, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
		chunks = append(chunks, data)
	}
	st := ds.DiskStats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2 with a 4 KB segment size", st.Segments)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != st.Segments {
		t.Fatalf("%d files on disk, stats say %d segments", len(entries), st.Segments)
	}
	for i, sum := range sums {
		got, err := ds.Get(sum)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Fatalf("chunk %d corrupted across rotation", i)
		}
	}
}

func TestDiskStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, DiskStoreOptions{SegmentSize: 8 << 10, CompactBelow: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sums []Sum
	var chunks [][]byte
	for i := 0; i < 60; i++ {
		data := testChunk(3, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
		chunks = append(chunks, data)
	}
	// Kill three quarters of the chunks: most sealed segments drop
	// below 50% live.
	for i, sum := range sums {
		if i%4 != 0 {
			if err := ds.Delete(sum); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := ds.DiskStats()
	if before.DeadBytes == 0 {
		t.Fatal("no dead bytes after deletes")
	}
	n, err := ds.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Compact reclaimed no segments")
	}
	after := ds.DiskStats()
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d -> %d, want fewer", before.Segments, after.Segments)
	}
	if after.DeadBytes >= before.DeadBytes {
		t.Fatalf("dead bytes %d -> %d, want fewer", before.DeadBytes, after.DeadBytes)
	}
	if after.Compactions != int64(n) {
		t.Fatalf("Compactions = %d, want %d", after.Compactions, n)
	}
	// Survivors intact, victims gone — including across a reopen of
	// the compacted layout.
	check := func(ds *DiskStore) {
		t.Helper()
		for i, sum := range sums {
			got, err := ds.Get(sum)
			if i%4 != 0 {
				if err != ErrNotFound {
					t.Fatalf("deleted chunk %d: err = %v", i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("live chunk %d: %v", i, err)
			}
			if !bytes.Equal(got, chunks[i]) {
				t.Fatalf("live chunk %d corrupted by compaction", i)
			}
		}
	}
	check(ds)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := OpenDiskStore(dir, DiskStoreOptions{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	check(ds2)
}

// TestDiskStoreGCWiring exercises the existing GC path end to end
// against the durable store: deleting the last referencing file
// tombstones its chunks and triggers the compactor.
func TestDiskStoreGCWiring(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{SegmentSize: 2 << 10, CompactBelow: 0.9})
	meta := NewMetadata("fe")
	rc := NewRefCounter()

	content := bytes.Repeat([]byte("gcpayload!"), 600)
	fileSum := SumBytes(content)
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "gc.bin", Size: int64(len(content)), FileMD5: fileSum.String()})
	if err != nil {
		t.Fatal(err)
	}
	sums := SplitSums(content)
	if err := ds.Put(sums[0], content); err != nil {
		t.Fatal(err)
	}
	// Filler chunks spread across several sealed segments so the
	// delete sweep leaves compactable ones behind.
	for i := 0; i < 40; i++ {
		data := testChunk(4, i)
		if err := ds.Put(SumBytes(data), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := meta.Commit(0, resp.URL, sums); err != nil {
		t.Fatal(err)
	}
	rc.Acquire(sums)

	n, err := DeleteFile(meta, rc, ds, 1, resp.URL)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sums) {
		t.Fatalf("reclaimed %d chunks, want %d", n, len(sums))
	}
	for _, sum := range sums {
		if ds.Has(sum) {
			t.Fatal("reclaimed chunk still present")
		}
	}
	// The sweep's Compact hook ran: the segment holding the reclaimed
	// file chunk crossed the 0.9 live-ratio threshold and was rewritten.
	if ds.DiskStats().Compactions == 0 {
		t.Fatal("GC sweep did not trigger compaction")
	}
	for i := 0; i < 40; i++ {
		data := testChunk(4, i)
		got, err := ds.Get(SumBytes(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("filler chunk %d lost after GC compaction: %v", i, err)
		}
	}
}

// TestDiskStoreTornTail is the table-driven crash-recovery test: a
// store's final segment is truncated at assorted byte offsets and the
// reopened store must serve exactly the records that fully survived,
// discarding the torn tail.
func TestDiskStoreTornTail(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var chunks [][]byte
	var sums []Sum
	var ends []int64 // cumulative record end offsets
	off := int64(0)
	for i := 0; i < n; i++ {
		data := testChunk(5, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, data)
		sums = append(sums, sum)
		off += recordSize(uint32(len(data)))
		ends = append(ends, off)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	if info, err := os.Stat(seg); err != nil || info.Size() != ends[n-1] {
		t.Fatalf("segment size = %v/%v, want %d", info, err, ends[n-1])
	}

	cases := []struct {
		name string
		cut  int64 // file size after truncation
	}{
		{"one-byte-short", ends[n-1] - 1},
		{"mid-payload", ends[n-2] + recHeaderSize + 17},
		{"mid-header", ends[n-2] + recHeaderSize/2},
		{"exact-boundary", ends[n-2]},
		{"two-records-torn", ends[n-3] + 5},
		{"header-only", ends[n-3] + recHeaderSize},
		{"empty-file", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cdir := t.TempDir()
			copyFile(t, seg, filepath.Join(cdir, segName(0)))
			if err := os.Truncate(filepath.Join(cdir, segName(0)), tc.cut); err != nil {
				t.Fatal(err)
			}
			rs, err := OpenDiskStore(cdir, DiskStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Close()
			for i := range sums {
				got, err := rs.Get(sums[i])
				if ends[i] <= tc.cut {
					if err != nil {
						t.Fatalf("surviving chunk %d: %v", i, err)
					}
					if !bytes.Equal(got, chunks[i]) {
						t.Fatalf("surviving chunk %d corrupted", i)
					}
				} else if err != ErrNotFound {
					t.Fatalf("torn chunk %d: err = %v, want ErrNotFound", i, err)
				}
			}
			onBoundary := tc.cut == 0
			for _, e := range ends {
				onBoundary = onBoundary || tc.cut == e
			}
			if got := rs.DiskStats().Truncated; onBoundary && got != 0 {
				t.Fatalf("clean-boundary cut reported %d torn bytes", got)
			} else if !onBoundary && got == 0 {
				t.Fatal("truncated bytes not recorded")
			}
			// Appends resume cleanly on the healed tail.
			extra := testChunk(5, 1000)
			if err := rs.Put(SumBytes(extra), extra); err != nil {
				t.Fatal(err)
			}
			if got, err := rs.Get(SumBytes(extra)); err != nil || !bytes.Equal(got, extra) {
				t.Fatalf("post-recovery Put unreadable: %v", err)
			}
		})
	}
}

// TestDiskStoreTornTailFuzzSeed drives the same invariant from a
// seeded stream of random truncation points, including cuts landing
// inside earlier records of the final segment.
func TestDiskStoreTornTailFuzzSeed(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var chunks [][]byte
	var sums []Sum
	var ends []int64
	off := int64(0)
	for i := 0; i < n; i++ {
		data := testChunk(6, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, data)
		sums = append(sums, sum)
		off += recordSize(uint32(len(data)))
		ends = append(ends, off)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))

	r := rand.New(rand.NewSource(0xD15C))
	for round := 0; round < 25; round++ {
		cut := r.Int63n(ends[n-1] + 1)
		cdir := t.TempDir()
		copyFile(t, seg, filepath.Join(cdir, segName(0)))
		if err := os.Truncate(filepath.Join(cdir, segName(0)), cut); err != nil {
			t.Fatal(err)
		}
		rs, err := OpenDiskStore(cdir, DiskStoreOptions{})
		if err != nil {
			t.Fatalf("round %d (cut %d): %v", round, cut, err)
		}
		for i := range sums {
			got, err := rs.Get(sums[i])
			if ends[i] <= cut {
				if err != nil || !bytes.Equal(got, chunks[i]) {
					t.Fatalf("round %d (cut %d): surviving chunk %d bad: %v", round, cut, i, err)
				}
			} else if err != ErrNotFound {
				t.Fatalf("round %d (cut %d): torn chunk %d: err = %v", round, cut, i, err)
			}
		}
		rs.Close()
	}
}

// TestDiskStoreSIGKILLRecovery is the end-to-end crash test: a child
// process appends chunks (printing an ack only after Put's fsync
// cover returns), the parent SIGKILLs it mid-stream, reopens the
// directory, and every acknowledged chunk must come back
// byte-identical.
func TestDiskStoreSIGKILLRecovery(t *testing.T) {
	const seed = 0xC4A5
	if dir := os.Getenv("MCS_DISK_CRASH_DIR"); dir != "" {
		crashChild(dir, seed)
		return
	}
	if testing.Short() {
		t.Skip("subprocess test")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDiskStoreSIGKILLRecovery$")
	cmd.Env = append(os.Environ(), "MCS_DISK_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	acked := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		var i int
		if _, err := fmt.Sscanf(sc.Text(), "acked %d", &i); err == nil {
			acked = i
			if i >= 40 {
				break // enough durable state; kill mid-stream
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if acked < 0 {
		t.Fatal("child acknowledged no chunks before dying")
	}

	ds, err := OpenDiskStore(dir, DiskStoreOptions{SegmentSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	lost, corrupted := 0, 0
	for i := 0; i <= acked; i++ {
		data := testChunk(seed, i)
		got, err := ds.Get(SumBytes(data))
		if err != nil {
			lost++
			continue
		}
		if !bytes.Equal(got, data) {
			corrupted++
		}
	}
	if lost != 0 || corrupted != 0 {
		t.Fatalf("of %d acknowledged chunks: %d lost, %d corrupted", acked+1, lost, corrupted)
	}
	t.Logf("SIGKILL recovery: %d acknowledged chunks, 0 lost, 0 corrupted (recovery %v, %d torn bytes truncated)",
		acked+1, ds.DiskStats().Recovery, ds.DiskStats().Truncated)
}

// crashChild is the SIGKILL victim: it appends deterministic chunks
// forever, acknowledging each only once durable, until the parent
// kills it.
func crashChild(dir string, seed int64) {
	ds, err := OpenDiskStore(dir, DiskStoreOptions{SegmentSize: 32 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		data := testChunk(seed, i)
		if err := ds.Put(SumBytes(data), data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("acked %d\n", i)
	}
}

func TestDiskStoreConcurrent(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{SegmentSize: 64 << 10})
	const (
		workers = 8
		per     = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				data := testChunk(7, w*per+i)
				sum := SumBytes(data)
				if err := ds.Put(sum, data); err != nil {
					t.Error(err)
					return
				}
				got, err := ds.Get(sum)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("readback %d/%d: %v", w, i, err)
					return
				}
				if i%5 == 0 {
					if err := ds.Delete(sum); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// A compactor churning concurrently must never lose a live chunk.
	stop := make(chan struct{})
	compDone := make(chan struct{})
	go func() {
		defer close(compDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ds.Compact(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-compDone

	st := ds.Stats()
	want := workers * per * 4 / 5 // every 5th chunk of each worker deleted
	if st.Chunks != want {
		t.Fatalf("Chunks = %d, want %d", st.Chunks, want)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			data := testChunk(7, w*per+i)
			got, err := ds.Get(SumBytes(data))
			if i%5 == 0 {
				if err != ErrNotFound {
					t.Fatalf("deleted %d/%d: err = %v", w, i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("chunk %d/%d lost or corrupted: %v", w, i, err)
			}
		}
	}
}

// TestDiskStoreFsyncBatching verifies group commit deterministically:
// the test holds the sync lock while a batch of writers append, so
// when the lock is released the first writer's fsync must cover the
// whole batch and the rest return without syncing.
func TestDiskStoreFsyncBatching(t *testing.T) {
	ds, _ := newDiskStore(t, DiskStoreOptions{})
	const workers = 16

	// Warm up so the baseline fsync count is stable.
	warm := testChunk(8, 9999)
	if err := ds.Put(SumBytes(warm), warm); err != nil {
		t.Fatal(err)
	}
	base := ds.DiskStats().Fsyncs
	wantLSN := ds.appendLSN.Load()
	for i := 0; i < workers; i++ {
		wantLSN += recordSize(uint32(len(testChunk(8, i))))
	}

	ds.syncMu.Lock() // stall every writer's fsync behind the test
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := testChunk(8, w)
			if err := ds.Put(SumBytes(data), data); err != nil {
				t.Error(err)
			}
		}(w)
	}
	// Wait until every writer has appended (Put blocks only in syncTo).
	for ds.appendLSN.Load() < wantLSN {
		time.Sleep(time.Millisecond)
	}
	ds.syncMu.Unlock()
	wg.Wait()

	got := ds.DiskStats().Fsyncs - base
	if got >= workers {
		t.Fatalf("%d fsyncs for %d batched puts; group commit not batching", got, workers)
	}
	if got == 0 {
		t.Fatal("no fsync issued for the batch")
	}
	t.Logf("group commit: %d puts covered by %d fsyncs", workers, got)
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
