package storage

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mcloud/internal/randx"
)

func TestFileStorePutGetRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persistent chunk content")
	sum := SumBytes(data)
	if err := fs.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if !fs.Has(sum) {
		t.Error("Has should be true")
	}
	if _, err := fs.Get(SumBytes([]byte("missing"))); err != ErrNotFound {
		t.Errorf("missing: err = %v", err)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sums []Sum
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("chunk %d", i))
		sum := SumBytes(data)
		if err := fs.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}
	// A second store on the same directory sees everything.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, sum := range sums {
		got, err := fs2.Get(sum)
		if err != nil {
			t.Fatalf("chunk %d lost after reopen: %v", i, err)
		}
		if string(got) != fmt.Sprintf("chunk %d", i) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
	if st := fs2.Stats(); st.Chunks != 20 {
		t.Errorf("reindexed %d chunks, want 20", st.Chunks)
	}
}

func TestFileStoreDedupAndDelete(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("dup me")
	sum := SumBytes(data)
	for i := 0; i < 3; i++ {
		if err := fs.Put(sum, data); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.Chunks != 1 || st.DedupHits != 2 {
		t.Errorf("stats = %+v", st)
	}
	if err := fs.Delete(sum); err != nil {
		t.Fatal(err)
	}
	if fs.Has(sum) {
		t.Error("chunk still present after delete")
	}
	if err := fs.Delete(sum); err != ErrNotFound {
		t.Errorf("double delete: err = %v", err)
	}
}

func TestFileStoreRejectsWrongDigest(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(SumBytes([]byte("a")), []byte("b")); err == nil {
		t.Error("mismatched digest accepted")
	}
}

func TestFileStoreConcurrent(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := randx.New(uint64(g))
			for i := 0; i < 50; i++ {
				data := []byte(fmt.Sprintf("content-%d", src.Intn(30)))
				sum := SumBytes(data)
				if err := fs.Put(sum, data); err != nil {
					t.Error(err)
					return
				}
				if got, err := fs.Get(sum); err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent read failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := fs.Stats(); st.Chunks > 30 {
		t.Errorf("%d unique chunks for 30 contents", st.Chunks)
	}
}

func TestCachedStoreHitMiss(t *testing.T) {
	backing := NewMemStore()
	c := NewCachedStore(backing, 1<<20)
	data := bytes.Repeat([]byte("x"), 1000)
	sum := SumBytes(data)
	if err := c.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	// First read: miss (write-around policy), second: hit.
	if _, err := c.Get(sum); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(sum); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.HitRate() != 0.5 || st.ByteHitRate() != 0.5 {
		t.Errorf("rates = %.2f/%.2f", st.HitRate(), st.ByteHitRate())
	}
}

func TestCachedStoreEviction(t *testing.T) {
	backing := NewMemStore()
	c := NewCachedStore(backing, 2500) // fits two 1000-byte chunks
	var sums []Sum
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 1000)
		sum := SumBytes(data)
		if err := c.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
		if _, err := c.Get(sum); err != nil { // admit
			t.Fatal(err)
		}
	}
	st := c.CacheStats()
	if st.Entries != 2 {
		t.Errorf("cache holds %d entries, want 2 after eviction", st.Entries)
	}
	if st.Used > st.Capacity {
		t.Errorf("used %d exceeds capacity %d", st.Used, st.Capacity)
	}
	// The LRU (first) chunk was evicted; the last two are resident.
	c.Get(sums[1])
	c.Get(sums[2])
	after := c.CacheStats()
	if after.Hits-st.Hits != 2 {
		t.Errorf("expected 2 more hits, got %d", after.Hits-st.Hits)
	}
}

func TestCachedStoreOversizedObjectBypasses(t *testing.T) {
	c := NewCachedStore(NewMemStore(), 100)
	data := bytes.Repeat([]byte("y"), 1000)
	sum := SumBytes(data)
	if err := c.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(sum); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.CacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("oversized object should never be cached: %+v", st)
	}
}

func TestCachedStoreZipfWorkloadOffload(t *testing.T) {
	// The paper's what-if: popular downloads dominated by a handful of
	// files => a modest cache absorbs most reads.
	backing := NewMemStore()
	const n = 200
	sums := make([]Sum, n)
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i), byte(i >> 3)}, 4096)
		sums[i] = SumBytes(data)
		if err := backing.Put(sums[i], data); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCachedStore(backing, 20*8192) // caches 10% of objects
	src := randx.New(33)
	z := randx.NewZipf(src, n, 1.1)
	for i := 0; i < 20000; i++ {
		if _, err := c.Get(sums[z.Draw()-1]); err != nil {
			t.Fatal(err)
		}
	}
	if hr := c.CacheStats().HitRate(); hr < 0.5 {
		t.Errorf("Zipf hit rate = %.3f, want > 0.5 with 10%% cache", hr)
	}
}

func TestTieredStoreDemotionPromotion(t *testing.T) {
	clock := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	ts := NewTieredStore(NewMemStore(), NewMemStore(), 24*time.Hour, now)

	data := []byte("backup photo")
	sum := SumBytes(data)
	if err := ts.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	// Within a day: no demotion.
	clock = clock.Add(12 * time.Hour)
	if n, err := ts.Migrate(); err != nil || n != 0 {
		t.Fatalf("early migrate: n=%d err=%v", n, err)
	}
	// After the idle period: demoted.
	clock = clock.Add(36 * time.Hour)
	n, err := ts.Migrate()
	if err != nil || n != 1 {
		t.Fatalf("migrate: n=%d err=%v", n, err)
	}
	st := ts.TierStats()
	if st.Demotions != 1 {
		t.Errorf("demotions = %d", st.Demotions)
	}
	// Reading a cold chunk promotes it and still returns the content.
	got, err := ts.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cold read returned wrong content")
	}
	st = ts.TierStats()
	if st.Promotions != 1 || st.ColdReads != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Promoted content serves hot now.
	if _, err := ts.Get(sum); err != nil {
		t.Fatal(err)
	}
	if st := ts.TierStats(); st.HotReads != 1 {
		t.Errorf("hot reads = %d, want 1", st.HotReads)
	}
}

func TestTieredStoreMissingChunk(t *testing.T) {
	ts := NewTieredStore(NewMemStore(), NewMemStore(), time.Hour, nil)
	if _, err := ts.Get(SumBytes([]byte("nope"))); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestTieredStoreCostAccounting(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	ts := NewTieredStore(NewMemStore(), NewMemStore(), time.Hour, now)

	data := bytes.Repeat([]byte("z"), 1000)
	if err := ts.Put(SumBytes(data), data); err != nil {
		t.Fatal(err)
	}
	ts.AccrueOccupancy(10 * time.Hour) // 10h hot
	clock = clock.Add(10 * time.Hour)
	if _, err := ts.Migrate(); err != nil {
		t.Fatal(err)
	}
	ts.AccrueOccupancy(90 * time.Hour) // 90h cold
	st := ts.TierStats()
	if st.HotByteHours != 10000 {
		t.Errorf("hot byte-hours = %v, want 10000", st.HotByteHours)
	}
	if st.ColdByteHours != 90000 {
		t.Errorf("cold byte-hours = %v, want 90000", st.ColdByteHours)
	}
	// With cold at a fifth of hot price, tiering should cut cost
	// massively for this backup-like (write-once, rarely read) object.
	cost := st.Cost(1.0, 0.2)
	hotOnly := st.HotOnlyCost(1.0)
	if cost >= hotOnly {
		t.Errorf("tiered cost %v not below hot-only %v", cost, hotOnly)
	}
	if saving := 1 - cost/hotOnly; saving < 0.5 {
		t.Errorf("saving = %.2f, want > 0.5 for a cold-dominated object", saving)
	}
}

// flakyTransport fails every request after the first failAfter
// round trips, then works again after Reset.
type flakyTransport struct {
	mu        sync.Mutex
	calls     int
	failAfter int
	broken    bool
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.broken || (f.failAfter > 0 && f.calls > f.failAfter)
	if fail {
		f.broken = true
		f.mu.Unlock()
		return nil, fmt.Errorf("flaky: connection reset")
	}
	f.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

func (f *flakyTransport) Reset() {
	f.mu.Lock()
	f.calls = 0
	f.broken = false
	f.failAfter = 0
	f.mu.Unlock()
}

func TestDownloadResume(t *testing.T) {
	client, _, _, _, cleanup := newTestService(t)
	defer cleanup()

	// Store a 5-chunk file.
	src := randx.New(77)
	data := make([]byte, 4*ChunkSize+999)
	for i := range data {
		data[i] = byte(src.Uint64())
	}
	res, err := client.StoreFile("big.bin", data)
	if err != nil {
		t.Fatal(err)
	}

	// Download with a transport that dies mid-transfer.
	flaky := &flakyTransport{}
	dlClient := client.Clone()
	dlClient.HTTP = &http.Client{Transport: flaky}

	dl, err := dlClient.NewDownload(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Total() != 5 {
		t.Fatalf("chunk manifest has %d entries, want 5", dl.Total())
	}
	flaky.mu.Lock()
	flaky.calls = 0     // NewDownload's metadata round trips don't count
	flaky.failAfter = 2 // allow two chunk fetches, then break
	flaky.mu.Unlock()

	err = dl.Resume()
	if err == nil {
		t.Fatal("expected a mid-download failure")
	}
	if dl.Done() == 0 || dl.Complete() {
		t.Fatalf("done = %d after failure", dl.Done())
	}
	progress := dl.Done()
	if _, err := dl.Bytes(); err == nil {
		t.Fatal("Bytes should refuse an incomplete download")
	}

	// Network recovers; resume must fetch only the remaining chunks.
	flaky.Reset()
	if err := dl.Resume(); err != nil {
		t.Fatal(err)
	}
	if !dl.Complete() {
		t.Fatal("download incomplete after resume")
	}
	got, err := dl.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("resumed content differs")
	}
	if refetched := flaky.calls; refetched > dl.Total()-progress+1 {
		t.Errorf("resume made %d requests for %d missing chunks — refetching completed chunks",
			refetched, dl.Total()-progress)
	}
}

func TestDownloadUnknownURL(t *testing.T) {
	client, _, _, _, cleanup := newTestService(t)
	defer cleanup()
	if _, err := client.NewDownload("/f/doesnotexist/1"); err == nil {
		t.Error("expected error for unknown URL")
	}
}

func TestFrontEndWithFileStoreBacking(t *testing.T) {
	// The HTTP front-end works identically over the disk store.
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: fs, Meta: meta})
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()
	meta.AddFrontEnd(srv.URL)

	client := &Client{MetaURL: metaSrv.URL, UserID: 9}
	data := bytes.Repeat([]byte("disk-backed"), 100000)
	res, err := client.StoreFile("d.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("disk-backed round trip failed")
	}
}
