package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"mcloud/internal/cluster"
)

// MetaRebalancer restores the metadata plane's placement invariant:
// every user namespace on exactly the shard the current map assigns.
// It fetches the versioned shard map from a seed endpoint, discovers
// each shard group's current primary, takes a census of which shard
// holds which users, and moves every misplaced namespace — export
// from the holder, import into the owner (replayed through the
// owner's WAL, preserving the file URLs clients hold), verify the
// copy landed, and only then evict the leftover from the source.
//
// Run it after changing -metashards across the plane, or with Verify
// to audit placement without moving anything (the smoke test's gate).
type MetaRebalancer struct {
	Seed   string // base URL of any metadata endpoint (required)
	DryRun bool   // report planned moves without mutating anything
	Verify bool   // census only: count misplaced namespaces and stop
	HTTP   *http.Client
	Logf   func(format string, args ...interface{})
}

// MetaRebalanceReport summarizes one run.
type MetaRebalanceReport struct {
	Shards     int
	MapVersion uint64
	Users      int // namespaces seen across all shards
	Misplaced  int // namespaces the map assigns to a different shard
	Moved      int // namespaces exported + imported to their owner
	Evicted    int // source leftovers dropped after a verified move
	Errors     int
}

func (rb *MetaRebalancer) logf(format string, args ...interface{}) {
	if rb.Logf != nil {
		rb.Logf(format, args...)
	}
}

func (rb *MetaRebalancer) client() *http.Client {
	if rb.HTTP != nil {
		return rb.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Run executes the census and (unless Verify or DryRun) the moves.
func (rb *MetaRebalancer) Run() (MetaRebalanceReport, error) {
	var rep MetaRebalanceReport
	smap, err := rb.fetchMap(rb.Seed)
	if err != nil {
		return rep, fmt.Errorf("fetching shard map from %s: %w", rb.Seed, err)
	}
	rep.Shards = smap.NumShards()
	rep.MapVersion = smap.Version

	// Resolve each shard group's current primary once; every mutation
	// of the move goes through a primary so it replicates via the WAL.
	primaries := make([]string, rep.Shards)
	for i := 0; i < rep.Shards; i++ {
		eps := smap.Endpoints(i)
		if len(eps) == 0 && i == 0 {
			eps = []string{rb.Seed}
		}
		primaries[i] = rb.discoverPrimary(eps)
		if primaries[i] == "" {
			return rep, fmt.Errorf("shard %d: no endpoint answers as primary", i)
		}
		rb.logf("shard %d: primary %s", i, primaries[i])
	}

	// Census: who holds whom, and who should.
	type move struct {
		user uint64
		src  int
		dst  int
	}
	var moves []move
	for i := 0; i < rep.Shards; i++ {
		var census MetaUsersResponse
		if err := rb.post(primaries[i], "/v1/meta/users", struct{}{}, &census); err != nil {
			return rep, fmt.Errorf("shard %d census: %w", i, err)
		}
		if census.MapVersion != smap.Version {
			return rep, fmt.Errorf("shard %d runs map version %d, rebalancer fetched %d — converge the plane first",
				i, census.MapVersion, smap.Version)
		}
		rep.Users += len(census.Users)
		for _, u := range census.Users {
			if !u.Misplaced {
				continue
			}
			rep.Misplaced++
			moves = append(moves, move{user: u.User, src: i, dst: smap.ShardFor(u.User)})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].user < moves[j].user })

	if rb.Verify {
		return rep, nil
	}
	for _, mv := range moves {
		rb.logf("user %d: shard %d -> shard %d", mv.user, mv.src, mv.dst)
		if rb.DryRun {
			continue
		}
		if err := rb.moveUser(primaries, mv.user, mv.src, mv.dst); err != nil {
			rb.logf("user %d: %v", mv.user, err)
			rep.Errors++
			continue
		}
		rep.Moved++
		rep.Evicted++
	}
	return rep, nil
}

// moveUser runs one namespace move: export, import, verify, evict.
// The import replays the files through the owner's WAL preserving the
// source-minted URLs, so a client-held URL survives the move; the
// evict runs only after the owner's copy is read back and matches.
func (rb *MetaRebalancer) moveUser(primaries []string, user uint64, src, dst int) error {
	var exp MetaExportResponse
	if err := rb.post(primaries[src], "/v1/meta/export", MetaExportRequest{User: user}, &exp); err != nil {
		return fmt.Errorf("export from shard %d: %w", src, err)
	}
	var imp MetaImportResponse
	if err := rb.post(primaries[dst], "/v1/meta/import", MetaImportRequest{User: user, Files: exp.Files}, &imp); err != nil {
		return fmt.Errorf("import into shard %d: %w", dst, err)
	}
	var check MetaExportResponse
	if err := rb.post(primaries[dst], "/v1/meta/export", MetaExportRequest{User: user}, &check); err != nil {
		return fmt.Errorf("verifying shard %d copy: %w", dst, err)
	}
	if len(check.Files) < len(exp.Files) {
		return fmt.Errorf("shard %d holds %d of %d files after import — leaving source untouched",
			dst, len(check.Files), len(exp.Files))
	}
	var ev MetaEvictResponse
	if err := rb.post(primaries[src], "/v1/meta/evict", MetaEvictRequest{User: user}, &ev); err != nil {
		return fmt.Errorf("evicting from shard %d: %w", src, err)
	}
	return nil
}

// fetchMap reads the versioned shard map from one endpoint.
func (rb *MetaRebalancer) fetchMap(ep string) (*cluster.MetaShardMap, error) {
	req, err := http.NewRequest(http.MethodGet, ep+"/v1/meta/shards", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(APIHeader, APIV1)
	resp, err := rb.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var m cluster.MetaShardMap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// discoverPrimary probes a shard group's endpoints and returns the
// current primary: the non-standby, non-fenced node with the highest
// (epoch, last_seq). "" when none qualifies.
func (rb *MetaRebalancer) discoverPrimary(eps []string) string {
	best := ""
	var bestEpoch, bestSeq uint64
	for _, ep := range eps {
		req, err := http.NewRequest(http.MethodGet, ep+"/v1/meta/wal/status", nil)
		if err != nil {
			continue
		}
		req.Header.Set(APIHeader, APIV1)
		resp, err := rb.client().Do(req)
		if err != nil {
			continue
		}
		var st MetaWALStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || st.Standby || st.Fenced {
			continue
		}
		if best == "" || st.Epoch > bestEpoch || (st.Epoch == bestEpoch && st.LastSeq > bestSeq) {
			best, bestEpoch, bestSeq = ep, st.Epoch, st.LastSeq
		}
	}
	return best
}

// post is one JSON round trip against a metadata endpoint.
func (rb *MetaRebalancer) post(ep, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, ep+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(APIHeader, APIV1)
	resp, err := rb.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
