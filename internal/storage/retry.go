package storage

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/tracing"
)

// RetryPolicy controls how the client survives the failures the
// paper's mobile population lived with: flaky links, overloaded
// front-ends, interrupted transfers. The zero value means "use
// DefaultRetry". Every request gets its own deadline; failed attempts
// back off exponentially with jitter; a per-file-operation budget
// bounds the total retry work so a persistent outage fails fast
// instead of retrying forever.
type RetryPolicy struct {
	// MaxAttempts is the per-request attempt cap (first try included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of the backoff randomized away (0..1):
	// the actual sleep is uniform in [d*(1-Jitter), d].
	Jitter float64
	// Budget caps the total retries spent on one file operation
	// (StoreFile/RetrieveFile), across all its requests.
	Budget int
	// RequestTimeout is the per-attempt deadline.
	RequestTimeout time.Duration
}

// DefaultRetry is the policy used when Client.Retry is nil.
var DefaultRetry = RetryPolicy{
	MaxAttempts:    4,
	BaseDelay:      25 * time.Millisecond,
	MaxDelay:       2 * time.Second,
	Multiplier:     2,
	Jitter:         0.5,
	Budget:         32,
	RequestTimeout: 30 * time.Second,
}

// NoRetry disables retries while keeping the per-request deadline —
// useful to observe raw failure behavior.
var NoRetry = RetryPolicy{
	MaxAttempts:    1,
	Budget:         0,
	RequestTimeout: 30 * time.Second,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p = DefaultRetry
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultRetry.Multiplier
	}
	if p.RequestTimeout <= 0 {
		p.RequestTimeout = DefaultRetry.RequestTimeout
	}
	return p
}

// backoff returns the sleep before retry number n (1-based); u is a
// uniform [0,1) draw supplying the jitter.
func (p RetryPolicy) backoff(n int, u float64) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter*u
	}
	return time.Duration(d)
}

// retryBudget tracks the retries remaining for one file operation.
// Concurrent chunk requests of one operation share it, so the counter
// is atomic. It also carries the operation's root span (nil when the
// client is untraced or the trace was not sampled) so every request
// of the operation lands in one trace.
type retryBudget struct {
	remaining atomic.Int64
	span      *tracing.Span
}

func (b *retryBudget) take() bool {
	for {
		v := b.remaining.Load()
		if v <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// serverError is a non-2xx response decoded into an error; the status
// decides retryability.
type serverError struct {
	Status int
	Msg    string
}

func (e *serverError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("storage: server: %s (status %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("storage: server returned status %d", e.Status)
}

// corruptError marks a response whose payload failed verification
// (truncated or checksum-mismatched body); always worth a re-fetch.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return "storage: corrupt response: " + e.err.Error() }
func (e *corruptError) Unwrap() error { return e.err }

// retryable classifies an attempt failure. Transport-level errors
// (resets, timeouts) and body corruption are transient by nature;
// server statuses are retryable for 5xx and 429 (overload), while
// other 4xx are the client's own fault and retrying cannot help.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		// The v1 envelope states retryability explicitly — the server
		// knows better than a status heuristic.
		return ae.Retryable
	}
	var se *serverError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == http.StatusTooManyRequests
	}
	var ce *corruptError
	if errors.As(err, &ce) {
		return true
	}
	// Everything else that reaches the retry loop is a transport or
	// body-read failure.
	return true
}

// parseRetryAfter reads a Retry-After header (seconds form), zero when
// absent or malformed.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// ClientMetrics aggregates the resilience counters across any number
// of Clients; all methods are safe on a nil receiver so the hot path
// needs no guards.
type ClientMetrics struct {
	retries      *metrics.Counter // retry attempts issued
	retrySuccess *metrics.Counter // requests that succeeded after >=1 retry
	giveups      *metrics.Counter // requests abandoned after exhausting retries
	resumes      *metrics.Counter // uploads resumed from the missing-chunk set
	refetches    *metrics.Counter // chunk downloads re-fetched after corruption
}

// NewClientMetrics registers the client resilience series:
//
//	mcs_client_retries_total        retry attempts issued
//	mcs_client_retry_success_total  requests recovered by retrying
//	mcs_client_giveups_total        requests abandoned after retries
//	mcs_client_resumes_total        uploads resumed mid-file
//	mcs_client_refetches_total      corrupted chunk downloads re-fetched
//	mcs_client_retry_success_ratio  recovered / retried requests
func NewClientMetrics(reg *metrics.Registry) *ClientMetrics {
	m := &ClientMetrics{
		retries:      reg.Counter("mcs_client_retries_total", "Retry attempts issued by resilient clients."),
		retrySuccess: reg.Counter("mcs_client_retry_success_total", "Requests that succeeded after at least one retry."),
		giveups:      reg.Counter("mcs_client_giveups_total", "Requests abandoned after exhausting retries or budget."),
		resumes:      reg.Counter("mcs_client_resumes_total", "Uploads resumed from the server's missing-chunk set."),
		refetches:    reg.Counter("mcs_client_refetches_total", "Chunk downloads re-fetched after checksum or read failures."),
	}
	reg.GaugeFunc("mcs_client_retry_success_ratio",
		"Fraction of retried requests that eventually succeeded.",
		func() float64 {
			r := m.retries.Value()
			if r == 0 {
				return 0
			}
			return float64(m.retrySuccess.Value()) / float64(r)
		})
	return m
}

// ClientRetryStats is a snapshot of the counters, for summaries.
type ClientRetryStats struct {
	Retries, RetrySuccess, GiveUps, Resumes, Refetches int64
}

// Stats returns the current counter values (zero on nil).
func (m *ClientMetrics) Stats() ClientRetryStats {
	if m == nil {
		return ClientRetryStats{}
	}
	return ClientRetryStats{
		Retries:      m.retries.Value(),
		RetrySuccess: m.retrySuccess.Value(),
		GiveUps:      m.giveups.Value(),
		Resumes:      m.resumes.Value(),
		Refetches:    m.refetches.Value(),
	}
}

func (m *ClientMetrics) retry() {
	if m != nil {
		m.retries.Inc()
	}
}
func (m *ClientMetrics) recovered() {
	if m != nil {
		m.retrySuccess.Inc()
	}
}
func (m *ClientMetrics) giveup() {
	if m != nil {
		m.giveups.Inc()
	}
}
func (m *ClientMetrics) resume() {
	if m != nil {
		m.resumes.Inc()
	}
}
func (m *ClientMetrics) refetch() {
	if m != nil {
		m.refetches.Inc()
	}
}

// defaultHTTPClient replaces the old http.DefaultClient fallback: a
// shared client with connection reuse sized for chunk traffic and a
// generous overall timeout as the last line of defense (per-request
// deadlines from the RetryPolicy fire first).
var defaultHTTPClient = &http.Client{
	Timeout: 2 * time.Minute,
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// doRetry runs one logical request with retries: build must return a
// fresh request per attempt (bodies are rebuilt, so PUT retries are
// idempotent re-sends), handle consumes the response and reports
// success or a classified failure. The call respects the per-attempt
// deadline, exponential backoff with jitter, Retry-After hints, and
// the operation's retry budget.
//
// Under tracing, each attempt is a span (child of parent, annotated
// with the attempt number and the fault observed on failure) and the
// trace headers ride the request, so the server-side handler span
// joins to exactly the attempt that reached it.
func (c *Client) doRetry(budget *retryBudget, parent *tracing.Span, build func() (*http.Request, error), handle func(*http.Response) error) error {
	pol := c.policy()
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return err
		}
		att := parent.StartChild(tracing.CompClient, tracing.SpanAttempt)
		att.AnnotateInt("attempt", int64(attempt))
		att.Inject(req.Header)
		ctx, cancel := context.WithTimeout(req.Context(), pol.RequestTimeout)
		resp, err := c.httpClient().Do(req.WithContext(ctx))
		var retryAfter time.Duration
		if err == nil {
			retryAfter = parseRetryAfter(resp.Header)
			err = handle(resp)
		}
		cancel()
		if err != nil {
			att.Annotate("fault", err.Error())
		}
		att.End()
		if err == nil {
			if attempt > 1 {
				c.Metrics.recovered()
			}
			return nil
		}
		if errors.Is(err, errLegacyRetry) {
			// Dialect probe, not a failure: the host is now marked
			// legacy, so the rebuilt request takes the unversioned
			// path. No backoff, no attempt consumed — and no loop,
			// because the mark flips the path choice permanently.
			attempt--
			continue
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts || !budget.take() {
			c.Metrics.giveup()
			return fmt.Errorf("storage: giving up after %d attempts: %w", attempt, lastErr)
		}
		c.Metrics.retry()
		d := pol.backoff(attempt, c.jitterDraw())
		if retryAfter > d {
			d = retryAfter
		}
		if d > pol.MaxDelay {
			d = pol.MaxDelay
		}
		time.Sleep(d)
	}
}

// policy resolves the effective retry policy.
func (c *Client) policy() RetryPolicy {
	if c.Retry != nil {
		return c.Retry.withDefaults()
	}
	return DefaultRetry
}

// newBudget returns the retry budget for one file operation.
func (c *Client) newBudget() *retryBudget {
	b := &retryBudget{}
	b.remaining.Store(int64(c.policy().Budget))
	return b
}

// jitterDraw returns the next uniform draw from the client's jitter
// stream, created on first use from RetrySeed so backoff sequences
// are reproducible per client.
func (c *Client) jitterDraw() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = randx.Derive(c.RetrySeed, fmt.Sprintf("client/%d/%d", c.UserID, c.DeviceID))
	}
	return c.rng.Float64()
}
