package storage

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"mcloud/internal/cluster"
	"mcloud/internal/metrics"
)

// shardUser returns a user ID the map assigns to the wanted shard.
func shardUser(t *testing.T, m *cluster.MetaShardMap, want int, avoid map[uint64]bool) uint64 {
	t.Helper()
	for u := uint64(1); u < 10_000; u++ {
		if avoid[u] {
			continue
		}
		if m.ShardFor(u) == want {
			return u
		}
	}
	t.Fatalf("no user maps to shard %d", want)
	return 0
}

// commitFor runs the full store-check + commit handshake for one user
// directly against a Metadata, returning the minted URL.
func commitFor(t *testing.T, m *Metadata, shard int, user uint64, data []byte) string {
	t.Helper()
	chk, err := m.StoreCheck(StoreCheckRequest{
		UserID: user, Name: fmt.Sprintf("u%d.bin", user),
		Size: int64(len(data)), FileMD5: SumBytes(data).String(),
	})
	if err != nil {
		t.Fatalf("store-check for user %d: %v", user, err)
	}
	if chk.Duplicate {
		return chk.URL
	}
	if err := m.Commit(shard, chk.URL, SplitSums(data)); err != nil {
		t.Fatalf("commit for user %d: %v", user, err)
	}
	return chk.URL
}

// TestClientWrongShardOneBounce pins the redesign's convergence
// guarantee: a client routing with a stale shard map reaches the
// right shard after exactly one wrong_shard redirect — one request to
// the wrong group, one to the owner, nothing in between.
func TestClientWrongShardOneBounce(t *testing.T) {
	meta0 := NewMetadata("http://fe.invalid")
	meta1 := NewMetadata("http://fe.invalid")
	var hits0, hits1 atomic.Int64
	srv0 := httptest.NewServer(countPosts(meta0.Handler(), &hits0))
	defer srv0.Close()
	srv1 := httptest.NewServer(countPosts(meta1.Handler(), &hits1))
	defer srv1.Close()

	truth, err := cluster.NewMetaShardMap(2, [][]string{{srv0.URL}, {srv1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	meta0.SetShard(0, truth)
	meta1.SetShard(1, truth)

	// A shard-1 user already holds the content, so the misrouted
	// user's store-check dedups on the owner — no front-end involved.
	data := []byte("one-bounce payload")
	seed := shardUser(t, truth, 1, nil)
	commitFor(t, meta1, 1, seed, data)
	user := shardUser(t, truth, 1, map[uint64]bool{seed: true})

	// The stale map is one version behind and — the worst case —
	// points shard 1's group at the shard-0 endpoints.
	stale, err := cluster.NewMetaShardMap(1, [][]string{{srv0.URL}, {srv0.URL}})
	if err != nil {
		t.Fatal(err)
	}
	pol := fastRetry
	c := &Client{MetaURL: srv0.URL, UserID: user, Retry: &pol}
	c.metaMap, c.metaTried = stale, true

	res, err := c.StoreFile("bounce.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deduplicated {
		t.Errorf("store did not dedup on the owner shard: %+v", res)
	}
	if got := hits0.Load(); got != 1 {
		t.Errorf("wrong-shard group saw %d requests, want exactly 1 (the bounce)", got)
	}
	if got := hits1.Load(); got != 1 {
		t.Errorf("owner shard saw %d requests, want exactly 1", got)
	}
	c.metaMu.Lock()
	refetch := !c.metaTried
	c.metaMu.Unlock()
	if !refetch {
		t.Error("redirect carried map version 2 > stale 1, but no shard-map refetch was scheduled")
	}
}

// TestShardMapVersionSkew checks the exchange header accounting: a
// request stamped with an older map version increments
// mcs_meta_shard_skew_total, and the response names the server's
// authoritative shard@version.
func TestShardMapVersionSkew(t *testing.T) {
	meta := NewMetadata()
	smap, err := cluster.NewMetaShardMap(2, [][]string{{"http://a"}, {"http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	meta.SetShard(0, smap) // before Instrument: series labels carry the shard
	reg := metrics.NewRegistry()
	meta.Instrument(reg)
	srv := httptest.NewServer(meta.Handler())
	defer srv.Close()

	for i, hdr := range []string{"0@1", "0@2", "1@1"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/meta/shards", nil)
		req.Header.Set(APIHeader, APIV1)
		req.Header.Set(MetaShardHeader, hdr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := resp.Header.Get(MetaShardHeader), FormatMetaShard(0, 2); got != want {
			t.Errorf("request %d: response %s = %q, want %q", i, MetaShardHeader, got, want)
		}
		resp.Body.Close()
	}

	ops := httptest.NewServer(metrics.OpsMux(reg, &metrics.Health{}))
	defer ops.Close()
	mresp, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	vals, err := metrics.ParseText(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Two of the three requests routed with map version 1 != 2; the
	// matching-version one must not count.
	key := metrics.Key("mcs_meta_shard_skew_total", "shard", "0")
	if got := vals[key]; got != 2 {
		t.Errorf("%s = %v, want 2", key, got)
	}
}

// TestRemoteMetaPerShardIsolation hammers a two-shard RemoteMeta from
// concurrent goroutines (run under -race) where shard 1's preferred
// endpoint is dead: shard 1 must converge onto its live standby via
// per-shard rotation, and none of that failover traffic may leak into
// shard 0's routing.
func TestRemoteMetaPerShardIsolation(t *testing.T) {
	meta0 := NewMetadata("http://fe.invalid")
	meta1 := NewMetadata("http://fe.invalid")
	var ops0 atomic.Int64
	srv0 := httptest.NewServer(countPosts(meta0.Handler(), &ops0))
	defer srv0.Close()
	srv1 := httptest.NewServer(meta1.Handler())
	defer srv1.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	smap, err := cluster.NewMetaShardMap(3, [][]string{{srv0.URL}, {dead.URL, srv1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	meta0.SetShard(0, smap)
	meta1.SetShard(1, smap)

	data0 := []byte("shard zero content")
	data1 := []byte("shard one content")
	commitFor(t, meta0, 0, shardUser(t, smap, 0, nil), data0)
	commitFor(t, meta1, 1, shardUser(t, smap, 1, nil), data1)
	sum0, sum1 := SumBytes(data0), SumBytes(data1)

	rm := NewShardedRemoteMeta(smap, nil)
	rm.SetRetry(fastMetaRetry, 1)

	const workers, iters = 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := rm.Lookup(0, sum0); err != nil {
					errs <- fmt.Errorf("shard 0 lookup: %w", err)
				}
				if _, err := rm.Lookup(1, sum1); err != nil {
					errs <- fmt.Errorf("shard 1 lookup: %w", err)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Shard 0's endpoint saw exactly its own lookups: shard 1's
	// dead-endpoint retries never crossed shard boundaries.
	if got, want := ops0.Load(), int64(workers*iters); got != want {
		t.Errorf("shard 0 endpoint saw %d POSTs, want %d (no cross-shard leakage)", got, want)
	}
}

// TestMetaReshardRoundTrip replays an operator resharding: a
// single-shard plane is split in two, the rebalancer moves every
// misplaced namespace through export/import/evict, client-held URLs
// survive the move, and a -verify pass comes back clean.
func TestMetaReshardRoundTrip(t *testing.T) {
	meta0 := NewMetadata("http://fe.invalid")
	meta1 := NewMetadata("http://fe.invalid")
	srv0 := httptest.NewServer(meta0.Handler())
	defer srv0.Close()
	srv1 := httptest.NewServer(meta1.Handler())
	defer srv1.Close()

	v1, err := cluster.NewMetaShardMap(1, [][]string{{srv0.URL}})
	if err != nil {
		t.Fatal(err)
	}
	meta0.SetShard(0, v1)

	// Populate the unsharded plane: every user lands on shard 0.
	v2, err := cluster.NewMetaShardMap(2, [][]string{{srv0.URL}, {srv1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	urls := make(map[uint64]string)
	misplaced := 0
	for u := uint64(1); u <= 8; u++ {
		urls[u] = commitFor(t, meta0, 0, u, []byte(fmt.Sprintf("content of user %d", u)))
		if v2.ShardFor(u) == 1 {
			misplaced++
		}
	}
	if misplaced == 0 || misplaced == len(urls) {
		t.Fatalf("degenerate split: %d of %d users misplaced", misplaced, len(urls))
	}

	// The operator reshards: both nodes adopt the two-shard map.
	meta0.SetShard(0, v2)
	meta1.SetShard(1, v2)

	rb := &MetaRebalancer{Seed: srv0.URL, Logf: t.Logf}
	rep, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 2 || rep.MapVersion != 2 {
		t.Errorf("report shards=%d version=%d, want 2/2", rep.Shards, rep.MapVersion)
	}
	if rep.Errors != 0 {
		t.Fatalf("rebalance reported %d errors", rep.Errors)
	}
	if rep.Misplaced != misplaced || rep.Moved != misplaced || rep.Evicted != misplaced {
		t.Errorf("misplaced/moved/evicted = %d/%d/%d, want all %d",
			rep.Misplaced, rep.Moved, rep.Evicted, misplaced)
	}

	// Client-held URLs survive the move, on the owning shard only.
	for u, url := range urls {
		owner, other := meta0, meta1
		if v2.ShardFor(u) == 1 {
			owner, other = meta1, meta0
		}
		if _, err := owner.LookupURL(url); err != nil {
			t.Errorf("user %d: URL %s lost on owner shard %d: %v", u, url, v2.ShardFor(u), err)
		}
		if files := other.UserFiles(u); len(files) != 0 {
			t.Errorf("user %d: %d leftover files on the non-owner shard", u, len(files))
		}
	}

	// A -verify audit after the move finds a converged plane.
	check := &MetaRebalancer{Seed: srv0.URL, Verify: true}
	rep, err = check.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misplaced != 0 || rep.Users != len(urls) {
		t.Errorf("verify: users=%d misplaced=%d, want %d/0", rep.Users, rep.Misplaced, len(urls))
	}
}
