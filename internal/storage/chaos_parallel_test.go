package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mcloud/internal/faults"
	"mcloud/internal/randx"
)

// TestChaosConcurrentClientInvariant re-runs the PR 2 headline
// invariant — every store the service acknowledges must retrieve
// byte-identical — with the concurrent machinery engaged on both
// sides: several devices upload in parallel, each keeping a window of
// chunk requests in flight against the sharded store, all through the
// mixed10 fault preset. Run under -race this doubles as the data-race
// check for the windowed client and the sharded MemStore.
func TestChaosConcurrentClientInvariant(t *testing.T) {
	sc, err := faults.ParseScenario("mixed10,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	base, _, injFE, cleanup := chaosService(t, sc, nil)
	defer cleanup()

	const devices = 4
	const filesPer = 4

	type storedFile struct {
		url  string
		data []byte
	}
	var mu sync.Mutex
	var files []storedFile

	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			client := base.Clone()
			client.DeviceID = uint64(d)
			client.Parallel = 4
			src := randx.Derive(123, fmt.Sprintf("chaospar/%d", d))
			for i := 0; i < filesPer; i++ {
				// 3-5 chunks so the window genuinely overlaps requests.
				n := 2*ChunkSize + 1 + src.Intn(2*ChunkSize)
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(src.Uint64())
				}
				res, err := client.StoreFile(fmt.Sprintf("p%d-%d.bin", d, i), data)
				if err != nil {
					t.Logf("device %d store %d not acknowledged: %v", d, i, err)
					continue
				}
				mu.Lock()
				files = append(files, storedFile{res.URL, data})
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()

	if len(files) < devices*filesPer-4 {
		t.Fatalf("only %d/%d stores acknowledged under mixed10", len(files), devices*filesPer)
	}
	if injFE.Injected() == 0 {
		t.Error("no faults injected; scenario inert")
	}

	// Concurrent read-back, windows still active, faults still armed.
	var rwg sync.WaitGroup
	for d := 0; d < devices; d++ {
		rwg.Add(1)
		go func(d int) {
			defer rwg.Done()
			client := base.Clone()
			client.DeviceID = uint64(100 + d)
			client.Parallel = 4
			for i := d; i < len(files); i += devices {
				f := files[i]
				var data []byte
				var err error
				for attempt := 0; attempt < 3; attempt++ {
					if data, err = client.RetrieveFile(f.url); err == nil {
						break
					}
				}
				if err != nil {
					t.Errorf("acknowledged file %d lost: %v", i, err)
					continue
				}
				if !bytes.Equal(data, f.data) {
					t.Errorf("acknowledged file %d corrupted", i)
				}
			}
		}(d)
	}
	rwg.Wait()
}
