package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/tracing"
)

// DiskStore is a durable ChunkStore built from append-only segment
// files, modeling the paper's back-end storage servers: 512 KB
// deduplicated chunks land behind the front-ends and must survive a
// process crash (§2.1). Each record carries a sum|len|crc32 header so
// the in-memory index can be rebuilt by scanning segments on open; a
// torn final record — the only damage a crash can inflict, since
// sealed segments are fsynced before rotation — is detected by the
// checksum and truncated away.
//
// Durability contract: when Put returns nil the record has been
// written and covered by an fsync, so a SIGKILL at any later point
// loses nothing acknowledged. Fsyncs are group-committed: concurrent
// writers piggyback on one another's syncs, so the fsync rate stays
// roughly constant as writer count grows.
//
// Delete appends a tombstone record (replayed on recovery) and marks
// the dead bytes in the victim's segment; Compact rewrites sealed
// segments whose live ratio has dropped below a threshold, copying
// surviving records into the active segment and unlinking the old
// file. A crash mid-compaction is safe: copies live in a later
// segment than their originals, and the scan applies records in
// segment order, so the newest location wins and the stale segment is
// simply re-collected on the next pass.
type DiskStore struct {
	dir  string
	opts DiskStoreOptions

	mu        sync.RWMutex
	index     map[Sum]recLoc
	segs      map[uint32]*segment
	active    *segment
	nextID    uint32
	dataBytes int64 // live payload bytes (headers excluded)

	// appendLSN counts bytes ever appended (across segments); the
	// group-commit path tracks how far fsyncs have covered it.
	appendLSN atomic.Int64
	syncedLSN atomic.Int64
	syncMu    sync.Mutex

	puts        atomic.Int64
	dedupHits   atomic.Int64
	bytesStored atomic.Int64

	fsyncs      atomic.Int64
	compactions atomic.Int64
	streamReads atomic.Int64 // GetReaderCtx opens (zero-copy read path)
	recovery    time.Duration
	truncated   int64 // torn-tail bytes discarded at open
	closed      bool
}

// DiskStoreOptions tunes segment sizing and compaction.
type DiskStoreOptions struct {
	// SegmentSize is the byte size past which the active segment is
	// sealed and a new one started. Default 64 MB.
	SegmentSize int64
	// CompactBelow is the live-byte ratio under which Compact rewrites
	// a sealed segment. Default 0.5; <= 0 keeps the default, >= 1
	// compacts any segment with dead bytes.
	CompactBelow float64
	// NoSync disables fsync entirely (benchmarking only; the
	// durability contract is void).
	NoSync bool
}

func (o *DiskStoreOptions) setDefaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	if o.CompactBelow <= 0 {
		o.CompactBelow = 0.5
	}
}

// recLoc addresses one live record.
type recLoc struct {
	seg uint32
	off int64
	n   uint32 // payload length
}

// segment is one on-disk file plus its occupancy accounting. live and
// dead are record byte counts including headers, so live+dead equals
// the file size once sealed.
type segment struct {
	id   uint32
	f    *os.File
	size int64
	live int64
	dead int64
	pins atomic.Int64 // in-flight ReadAt count, blocks file close
}

const (
	recHeaderSize = 24         // sum[16] | len uint32 | crc32 uint32
	tombstoneLen  = ^uint32(0) // len sentinel for a delete record
	segPattern    = "seg-%08d.mseg"
)

func segName(id uint32) string { return fmt.Sprintf(segPattern, id) }

// recordSize is the on-disk footprint of a record with an n-byte
// payload (tombstones pass 0).
func recordSize(n uint32) int64 {
	if n == tombstoneLen {
		return recHeaderSize
	}
	return recHeaderSize + int64(n)
}

// encodeHeader fills hdr with sum|len|crc32, where the checksum covers
// the first 20 header bytes and the payload, catching torn or
// bit-flipped records in a single pass.
func encodeHeader(hdr []byte, sum Sum, length uint32, payload []byte) {
	copy(hdr[:16], sum[:])
	binary.LittleEndian.PutUint32(hdr[16:20], length)
	crc := crc32.ChecksumIEEE(hdr[:20])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[20:24], crc)
}

// OpenDiskStore opens (creating if needed) a segment store rooted at
// dir and rebuilds the index by scanning every segment in order.
func OpenDiskStore(dir string, opts DiskStoreOptions) (*DiskStore, error) {
	opts.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: diskstore: %w", err)
	}
	ds := &DiskStore{
		dir:   dir,
		opts:  opts,
		index: make(map[Sum]recLoc),
		segs:  make(map[uint32]*segment),
	}
	start := time.Now()
	if err := ds.recover(); err != nil {
		return nil, err
	}
	ds.recovery = time.Since(start)
	return ds, nil
}

// recover scans the segment files in id order, replaying data and
// tombstone records into the index. Only the final segment may hold a
// torn record (earlier ones were fsynced before rotation); the torn
// tail is truncated so appends resume at a clean offset.
func (ds *DiskStore) recover() error {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return err
	}
	var ids []uint32
	for _, e := range entries {
		var id uint32
		if _, err := fmt.Sscanf(e.Name(), segPattern, &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for i, id := range ids {
		if _, err := ds.scanSegment(id, i == len(ids)-1); err != nil {
			return err
		}
		if id >= ds.nextID {
			ds.nextID = id + 1
		}
	}

	// Resume appending into the final segment if it has room;
	// otherwise (or with no segments at all) start a fresh one.
	if n := len(ids); n > 0 {
		last := ds.segs[ids[n-1]]
		if last.size < ds.opts.SegmentSize {
			f, err := os.OpenFile(filepath.Join(ds.dir, segName(last.id)), os.O_RDWR, 0o644)
			if err != nil {
				return err
			}
			last.f.Close()
			last.f = f
			ds.active = last
		}
	}
	if ds.active == nil {
		if err := ds.newActiveLocked(); err != nil {
			return err
		}
	}
	ds.appendLSN.Store(totalSize(ds.segs))
	ds.syncedLSN.Store(ds.appendLSN.Load())
	return nil
}

func totalSize(segs map[uint32]*segment) int64 {
	var n int64
	for _, s := range segs {
		n += s.size
	}
	return n
}

// scanSegment replays one segment file, updating the index and
// returning its occupancy accounting. final marks the last segment,
// whose torn tail (if any) is truncated rather than rejected.
func (ds *DiskStore) scanSegment(id uint32, final bool) (*segment, error) {
	path := filepath.Join(ds.dir, segName(id))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, f: f}
	// Register before scanning so tombstones and duplicates that refer
	// back into this same segment adjust its accounting.
	ds.segs[id] = seg
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fileSize := info.Size()

	var off int64
	hdr := make([]byte, recHeaderSize)
	var payload []byte
	for off < fileSize {
		ok, length, sum := false, uint32(0), Sum{}
		if fileSize-off >= recHeaderSize {
			if _, err := f.ReadAt(hdr, off); err != nil {
				f.Close()
				return nil, err
			}
			copy(sum[:], hdr[:16])
			length = binary.LittleEndian.Uint32(hdr[16:20])
			want := binary.LittleEndian.Uint32(hdr[20:24])
			switch {
			case length == tombstoneLen:
				ok = crc32.ChecksumIEEE(hdr[:20]) == want
			case length <= ChunkSize && off+recordSize(length) <= fileSize:
				if int(length) > cap(payload) {
					payload = make([]byte, length)
				}
				payload = payload[:length]
				if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
					f.Close()
					return nil, err
				}
				crc := crc32.ChecksumIEEE(hdr[:20])
				ok = crc32.Update(crc, crc32.IEEETable, payload) == want
			}
		}
		if !ok {
			if !final {
				f.Close()
				return nil, fmt.Errorf("storage: diskstore: corrupt record in sealed segment %s at offset %d", segName(id), off)
			}
			// Torn tail from the crash that this recovery is healing:
			// discard it so the next append starts on a record boundary.
			ds.truncated += fileSize - off
			f.Close()
			if err := os.Truncate(path, off); err != nil {
				return nil, err
			}
			if f, err = os.Open(path); err != nil {
				return nil, err
			}
			seg.f = f
			fileSize = off
			break
		}

		rs := recordSize(length)
		if length == tombstoneLen {
			seg.dead += rs
			if loc, live := ds.index[sum]; live {
				ds.deadenLocked(loc)
				delete(ds.index, sum)
				ds.dataBytes -= int64(loc.n)
			}
		} else {
			if old, dup := ds.index[sum]; dup {
				// Duplicate data record (e.g. a crash between a
				// compaction copy and the old segment's unlink): the
				// newest location wins.
				ds.deadenLocked(old)
				ds.dataBytes -= int64(old.n)
			}
			ds.index[sum] = recLoc{seg: id, off: off, n: length}
			seg.live += rs
			ds.dataBytes += int64(length)
		}
		off += rs
	}
	seg.size = fileSize
	return seg, nil
}

// deadenLocked moves one record's bytes from live to dead in its
// segment accounting (caller holds mu, or is single-threaded open).
func (ds *DiskStore) deadenLocked(loc recLoc) {
	if s, ok := ds.segs[loc.seg]; ok {
		rs := recordSize(loc.n)
		s.live -= rs
		s.dead += rs
	}
}

// newActiveLocked seals nothing and opens the next segment file for
// appending (caller holds mu, or is single-threaded open).
func (ds *DiskStore) newActiveLocked() error {
	id := ds.nextID
	ds.nextID++
	f, err := os.OpenFile(filepath.Join(ds.dir, segName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	seg := &segment{id: id, f: f}
	ds.segs[id] = seg
	ds.active = seg
	return nil
}

// sealActiveLocked fsyncs the active segment and rotates to a new one
// (caller holds mu). Sealed files are never written again, which is
// what confines torn records to the final segment.
func (ds *DiskStore) sealActiveLocked() error {
	if !ds.opts.NoSync {
		if err := ds.active.f.Sync(); err != nil {
			return err
		}
		ds.fsyncs.Add(1)
	}
	// Everything appended so far lives in sealed, synced files.
	maxLSN(&ds.syncedLSN, ds.appendLSN.Load())
	return ds.newActiveLocked()
}

// maxLSN raises v to at least lsn.
func maxLSN(v *atomic.Int64, lsn int64) {
	for {
		cur := v.Load()
		if cur >= lsn || v.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// appendLocked writes one record to the active segment, rotating
// first if it is full, and returns the record's location and the LSN
// an fsync must cover for it to be durable (caller holds mu).
func (ds *DiskStore) appendLocked(sum Sum, length uint32, payload []byte) (recLoc, int64, error) {
	if ds.active.size >= ds.opts.SegmentSize {
		if err := ds.sealActiveLocked(); err != nil {
			return recLoc{}, 0, err
		}
	}
	seg := ds.active
	rs := recordSize(length)
	buf := make([]byte, rs)
	encodeHeader(buf[:recHeaderSize], sum, length, payload)
	copy(buf[recHeaderSize:], payload)
	if _, err := seg.f.WriteAt(buf, seg.size); err != nil {
		return recLoc{}, 0, err
	}
	loc := recLoc{seg: seg.id, off: seg.size, n: length}
	seg.size += rs
	return loc, ds.appendLSN.Add(rs), nil
}

// syncTo blocks until an fsync has covered lsn. Writers arriving
// while another writer's fsync is in flight queue on syncMu and
// usually find their record already covered when they get the lock —
// the group commit that keeps fsync count sublinear in writer count.
func (ds *DiskStore) syncTo(lsn int64) error {
	if ds.opts.NoSync {
		return nil
	}
	if ds.syncedLSN.Load() >= lsn {
		return nil
	}
	ds.syncMu.Lock()
	defer ds.syncMu.Unlock()
	if ds.syncedLSN.Load() >= lsn {
		return nil
	}
	ds.mu.RLock()
	f := ds.active.f
	cover := ds.appendLSN.Load()
	ds.mu.RUnlock()
	if err := f.Sync(); err != nil {
		return err
	}
	ds.fsyncs.Add(1)
	// Records at or below cover sit either in the file just synced or
	// in a segment that was fsynced when it was sealed.
	maxLSN(&ds.syncedLSN, cover)
	return nil
}

// Put implements ChunkStore. It returns only after the record is
// fsync-covered, so an acknowledged chunk survives SIGKILL.
func (ds *DiskStore) Put(sum Sum, data []byte) error {
	return ds.PutCtx(context.Background(), sum, data)
}

// PutCtx implements CtxStore: the locked append and the group-commit
// fsync wait are separate spans, so a slow write shows whether the
// time went to lock contention / segment I/O or to riding someone
// else's fsync group.
func (ds *DiskStore) PutCtx(ctx context.Context, sum Sum, data []byte) error {
	if SumBytes(data) != sum {
		return errBadDigest
	}
	ds.puts.Add(1)
	ds.bytesStored.Add(int64(len(data)))

	app := tracing.ChildFromContext(ctx, tracing.CompDisk, tracing.SpanDiskAppend)
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		app.End()
		return fmt.Errorf("storage: diskstore: closed")
	}
	if _, ok := ds.index[sum]; ok {
		ds.mu.Unlock()
		app.End()
		ds.dedupHits.Add(1)
		return nil
	}
	loc, lsn, err := ds.appendLocked(sum, uint32(len(data)), data)
	if err != nil {
		ds.mu.Unlock()
		app.EndErr(err)
		return err
	}
	ds.index[sum] = loc
	ds.segs[loc.seg].live += recordSize(loc.n)
	ds.dataBytes += int64(len(data))
	ds.mu.Unlock()
	app.End()

	fs := tracing.ChildFromContext(ctx, tracing.CompDisk, tracing.SpanDiskFsync)
	err = ds.syncTo(lsn)
	fs.EndErr(err)
	return err
}

// Get implements ChunkStore, verifying the record checksum on the way
// out so on-disk corruption is surfaced rather than served.
func (ds *DiskStore) Get(sum Sum) ([]byte, error) {
	return ds.GetCtx(context.Background(), sum)
}

// GetCtx implements CtxStore, recording the read as one span.
func (ds *DiskStore) GetCtx(ctx context.Context, sum Sum) (_ []byte, err error) {
	if sp := tracing.ChildFromContext(ctx, tracing.CompDisk, tracing.SpanDiskRead); sp != nil {
		defer func() { sp.EndErr(err) }()
	}
	ds.mu.RLock()
	loc, ok := ds.index[sum]
	if !ok {
		ds.mu.RUnlock()
		return nil, ErrNotFound
	}
	seg := ds.segs[loc.seg]
	seg.pins.Add(1)
	ds.mu.RUnlock()
	defer seg.pins.Add(-1)

	buf := make([]byte, recordSize(loc.n))
	if _, err := seg.f.ReadAt(buf, loc.off); err != nil {
		return nil, err
	}
	crc := crc32.ChecksumIEEE(buf[:20])
	crc = crc32.Update(crc, crc32.IEEETable, buf[recHeaderSize:])
	if binary.LittleEndian.Uint32(buf[20:24]) != crc {
		return nil, fmt.Errorf("storage: diskstore: on-disk corruption for %s", sum)
	}
	return buf[recHeaderSize:], nil
}

// GetReaderCtx implements ReaderStore: it returns a streaming view
// over the pinned record region of the segment file instead of
// materializing the payload. The pin is held until the reader is
// Closed, so compaction keeps the file open (and its bytes valid,
// even after an unlink) for as long as the response is in flight. The
// disk span covers only the lookup and header read; the payload
// streams under the caller's span. Unlike GetCtx, the payload CRC is
// not verified up front — ChunkReader.StreamTo folds the check into
// the copy loop, and binary-dialect receivers re-verify the frame CRC
// end to end.
func (ds *DiskStore) GetReaderCtx(ctx context.Context, sum Sum) (_ *ChunkReader, err error) {
	if sp := tracing.ChildFromContext(ctx, tracing.CompDisk, tracing.SpanDiskRead); sp != nil {
		defer func() { sp.EndErr(err) }()
	}
	ds.mu.RLock()
	if ds.closed {
		ds.mu.RUnlock()
		return nil, errReaderClosed
	}
	loc, ok := ds.index[sum]
	if !ok {
		ds.mu.RUnlock()
		return nil, ErrNotFound
	}
	seg := ds.segs[loc.seg]
	seg.pins.Add(1)
	ds.mu.RUnlock()
	ds.streamReads.Add(1)

	// One 24-byte pread fetches the stored CRC (so the streaming copy
	// can verify without a second pass) and sanity-checks the header
	// against the index before any payload byte is served.
	var hdr [recHeaderSize]byte
	if _, err := seg.f.ReadAt(hdr[:], loc.off); err != nil {
		seg.pins.Add(-1)
		return nil, err
	}
	var hsum Sum
	copy(hsum[:], hdr[:16])
	if hsum != sum || binary.LittleEndian.Uint32(hdr[16:20]) != loc.n {
		seg.pins.Add(-1)
		return nil, fmt.Errorf("storage: diskstore: on-disk corruption for %s", sum)
	}
	stored := binary.LittleEndian.Uint32(hdr[20:24])
	hdrCRC := crc32.ChecksumIEEE(hdr[:20])
	release := func() { seg.pins.Add(-1) }
	return newDiskReader(seg.f, loc.off, int64(loc.n), stored, hdrCRC, release), nil
}

// Has implements ChunkStore.
func (ds *DiskStore) Has(sum Sum) bool {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	_, ok := ds.index[sum]
	return ok
}

// Stats implements ChunkStore. Chunks/Bytes are rebuilt from the
// segment scan on open; the Put counters restart at zero per process,
// matching FileStore.
func (ds *DiskStore) Stats() StoreStats {
	ds.mu.RLock()
	chunks := len(ds.index)
	bytes := ds.dataBytes
	ds.mu.RUnlock()
	return StoreStats{
		Chunks:      chunks,
		Bytes:       bytes,
		Puts:        ds.puts.Load(),
		DedupHits:   ds.dedupHits.Load(),
		BytesStored: ds.bytesStored.Load(),
	}
}

// Delete appends a tombstone (durable like any other record) and
// marks the victim's bytes dead for the compactor.
func (ds *DiskStore) Delete(sum Sum) error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return fmt.Errorf("storage: diskstore: closed")
	}
	loc, ok := ds.index[sum]
	if !ok {
		ds.mu.Unlock()
		return ErrNotFound
	}
	_, lsn, err := ds.appendLocked(sum, tombstoneLen, nil)
	if err != nil {
		ds.mu.Unlock()
		return err
	}
	delete(ds.index, sum)
	ds.deadenLocked(loc)
	ds.dataBytes -= int64(loc.n)
	ds.segs[ds.active.id].dead += recHeaderSize // the tombstone itself is never live
	ds.mu.Unlock()
	return ds.syncTo(lsn)
}

// compactableLocked lists sealed segments whose live ratio is below
// the threshold (caller holds mu). Empty sealed segments qualify too.
func (ds *DiskStore) compactableLocked() []uint32 {
	var ids []uint32
	for id, s := range ds.segs {
		if s == ds.active || s.size == 0 {
			continue
		}
		if float64(s.live)/float64(s.size) < ds.opts.CompactBelow {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Compact rewrites every sealed segment whose live ratio has fallen
// below CompactBelow, copying surviving records into the active
// segment and unlinking the old file. It returns the number of
// segments reclaimed. Safe to run concurrently with reads, writes,
// and even another Compact: every record move re-checks the index
// under the lock, so racing compactors skip work instead of
// duplicating it.
func (ds *DiskStore) Compact() (int, error) {
	ds.mu.RLock()
	ids := ds.compactableLocked()
	ds.mu.RUnlock()

	reclaimed := 0
	for _, id := range ids {
		if err := ds.compactSegment(id); err != nil {
			return reclaimed, err
		}
		reclaimed++
		ds.compactions.Add(1)
	}
	return reclaimed, nil
}

// compactSegment moves one sealed segment's live records into the
// active segment and removes the file.
func (ds *DiskStore) compactSegment(id uint32) error {
	// Snapshot the live records currently addressed in this segment.
	ds.mu.RLock()
	seg, ok := ds.segs[id]
	if !ok || seg == ds.active {
		ds.mu.RUnlock()
		return nil
	}
	type rec struct {
		sum Sum
		loc recLoc
	}
	var live []rec
	for sum, loc := range ds.index {
		if loc.seg == id {
			live = append(live, rec{sum, loc})
		}
	}
	ds.mu.RUnlock()

	var maxLSNCopied int64
	for _, r := range live {
		data, err := ds.Get(r.sum)
		if err != nil {
			if err == ErrNotFound {
				continue // deleted since the snapshot
			}
			return err
		}
		ds.mu.Lock()
		cur, ok := ds.index[r.sum]
		if !ok || cur != r.loc {
			ds.mu.Unlock() // deleted or already moved; nothing to do
			continue
		}
		loc, lsn, err := ds.appendLocked(r.sum, uint32(len(data)), data)
		if err != nil {
			ds.mu.Unlock()
			return err
		}
		ds.index[r.sum] = loc
		ds.segs[loc.seg].live += recordSize(loc.n)
		ds.deadenLocked(r.loc)
		ds.mu.Unlock()
		maxLSNCopied = lsn
	}
	// The copies must be durable before the originals disappear,
	// otherwise a crash right after the unlink could lose live chunks.
	if maxLSNCopied > 0 {
		if err := ds.syncTo(maxLSNCopied); err != nil {
			return err
		}
	}

	ds.mu.Lock()
	if ds.segs[id] != seg || seg == ds.active {
		ds.mu.Unlock()
		return nil
	}
	delete(ds.segs, id)
	ds.mu.Unlock()

	if err := os.Remove(filepath.Join(ds.dir, segName(id))); err != nil && !os.IsNotExist(err) {
		return err
	}
	// Readers that grabbed the segment before the index swap may still
	// be mid-ReadAt on the (now unlinked) file; wait them out before
	// closing the descriptor.
	for seg.pins.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	return seg.f.Close()
}

// Close fsyncs the active segment and releases every file handle.
func (ds *DiskStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	var first error
	if !ds.opts.NoSync {
		if err := ds.active.f.Sync(); err != nil {
			first = err
		} else {
			ds.fsyncs.Add(1)
		}
	}
	for _, s := range ds.segs {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Range calls f for every live chunk with its payload size, stopping
// early if f returns false. Used to seed tier placement from the
// recovered index after a restart.
func (ds *DiskStore) Range(f func(sum Sum, size int64) bool) {
	ds.mu.RLock()
	type entry struct {
		sum  Sum
		size int64
	}
	entries := make([]entry, 0, len(ds.index))
	for sum, loc := range ds.index {
		entries = append(entries, entry{sum, int64(loc.n)})
	}
	ds.mu.RUnlock()
	for _, e := range entries {
		if !f(e.sum, e.size) {
			return
		}
	}
}

// DiskStats reports the segment-level state of the store.
type DiskStats struct {
	Segments    int           // segment files on disk
	LiveBytes   int64         // record bytes still addressed by the index
	DeadBytes   int64         // record bytes awaiting compaction
	Fsyncs      int64         // fsync syscalls issued (group-committed)
	Compactions int64         // segments rewritten and reclaimed
	StreamReads int64         // zero-copy streaming reads served
	Recovery    time.Duration // index rebuild time at open
	Truncated   int64         // torn-tail bytes discarded at open
}

// DiskStats returns a snapshot of the on-disk accounting.
func (ds *DiskStore) DiskStats() DiskStats {
	ds.mu.RLock()
	st := DiskStats{
		Segments:    len(ds.segs),
		Fsyncs:      ds.fsyncs.Load(),
		Compactions: ds.compactions.Load(),
		StreamReads: ds.streamReads.Load(),
		Recovery:    ds.recovery,
		Truncated:   ds.truncated,
	}
	for _, s := range ds.segs {
		st.LiveBytes += s.live
		st.DeadBytes += s.dead
	}
	ds.mu.RUnlock()
	return st
}
