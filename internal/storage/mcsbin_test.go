package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/trace"
)

func TestBinFrameRoundTrip(t *testing.T) {
	data := testChunk(91, 3)
	sum := SumBytes(data)
	frame := appendBinFrame(nil, sum, data)
	buf := make([]byte, ChunkSize)

	f, err := readBinFrame(bytes.NewReader(frame), buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.notFound {
		t.Fatal("data frame decoded as not-found")
	}
	if f.sum != sum || f.got != sum {
		t.Fatalf("digest mismatch: header %s, computed %s, want %s", f.sum, f.got, sum)
	}
	if !bytes.Equal(f.payload, data) {
		t.Fatal("payload mismatch after round trip")
	}

	nf := binNotFoundFrame(sum)
	f, err = readBinFrame(bytes.NewReader(nf), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.notFound || f.sum != sum {
		t.Fatal("not-found frame mis-decoded")
	}
}

// TestBinFrameFailsClosed covers the decoder's rejection paths: every
// malformed input must produce a typed error before any payload is
// accepted.
func TestBinFrameFailsClosed(t *testing.T) {
	data := testChunk(92, 1)
	sum := SumBytes(data)
	frame := appendBinFrame(nil, sum, data)
	buf := make([]byte, ChunkSize)

	if _, err := readBinFrame(bytes.NewReader(frame[:10]), buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: err = %v, want unexpected EOF", err)
	}
	if _, err := readBinFrame(bytes.NewReader(frame[:len(frame)-5]), buf); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
	bad := append([]byte(nil), frame...)
	bad[recHeaderSize] ^= 0x40
	if _, err := readBinFrame(bytes.NewReader(bad), buf); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("corrupt payload: err = %v, want bad digest", err)
	}
	big := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(big[16:20], ChunkSize+1)
	if _, err := readBinFrame(bytes.NewReader(big), buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: err = %v, want too large", err)
	}
	// A corrupted not-found frame (bad header CRC) is rejected too.
	nf := binNotFoundFrame(sum)
	nf[0] ^= 0x01
	if _, err := readBinFrame(bytes.NewReader(nf), buf); err == nil {
		t.Fatal("corrupt not-found frame accepted")
	}

	if _, err := decodeBinCount(bytes.NewReader([]byte{0, 0, 0, 0}), binMaxBatch); err == nil {
		t.Fatal("empty batch accepted")
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], binMaxBatch+1)
	if _, err := decodeBinCount(bytes.NewReader(cnt[:]), binMaxBatch); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized batch accepted")
	}
}

// FuzzBinFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and any frame it does accept must be internally
// consistent (CRC passed during the read, MD5 recomputed over the
// payload).
func FuzzBinFrame(f *testing.F) {
	data := testChunk(93, 2)
	if len(data) > 300 {
		data = data[:300]
	}
	sum := SumBytes(data)
	f.Add(appendBinFrame(nil, sum, data))
	f.Add(binNotFoundFrame(sum))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, recHeaderSize))
	f.Add(bytes.Repeat([]byte{0x00}, recHeaderSize+64))
	f.Fuzz(func(t *testing.T, b []byte) {
		buf := make([]byte, 4096)
		fr, err := readBinFrame(bytes.NewReader(b), buf)
		if err != nil {
			return // fail-closed: malformed input errors, never panics
		}
		if fr.notFound {
			return
		}
		if SumBytes(fr.payload) != fr.got {
			t.Fatalf("accepted frame has inconsistent MD5: %s vs %s", SumBytes(fr.payload), fr.got)
		}
	})
}

// TestBinNegotiation runs one client against a binary-capable and a
// JSON-pinned front-end: transfers succeed on both, and the binary
// endpoints only see traffic when the server advertises them.
func TestBinNegotiation(t *testing.T) {
	newSvc := func(disable bool) (*Client, *atomic.Int64, func()) {
		store := NewMemStore()
		meta := NewMetadata()
		fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta, DisableBin: disable})
		var binHits atomic.Int64
		h := fe.Handler()
		feSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/bin/") {
				binHits.Add(1)
			}
			h.ServeHTTP(w, r)
		}))
		metaSrv := httptest.NewServer(meta.Handler())
		meta.AddFrontEnd(feSrv.URL)
		pol := fastRetry
		client := &Client{MetaURL: metaSrv.URL, UserID: 9, DeviceID: 2, Device: trace.Android, Retry: &pol, Parallel: 4}
		return client, &binHits, func() { feSrv.Close(); metaSrv.Close() }
	}

	roundTrip := func(t *testing.T, client *Client, seed uint64) {
		t.Helper()
		data := chunkedData(t, seed, 3*ChunkSize+500) // 4 chunks
		res, err := client.StoreFile("n.bin", data)
		if err != nil {
			t.Fatal(err)
		}
		if res.ChunksSent != 4 {
			t.Fatalf("chunks sent = %d, want 4", res.ChunksSent)
		}
		got, err := client.RetrieveFile(res.URL)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("retrieved content differs")
		}
	}

	t.Run("binary", func(t *testing.T) {
		client, hits, cleanup := newSvc(false)
		defer cleanup()
		roundTrip(t, client, 21)
		if hits.Load() == 0 {
			t.Fatal("binary-capable host saw no /v1/bin traffic")
		}
	})
	t.Run("json-pinned-server", func(t *testing.T) {
		client, hits, cleanup := newSvc(true)
		defer cleanup()
		roundTrip(t, client, 22)
		if hits.Load() != 0 {
			t.Fatalf("JSON-pinned host saw %d /v1/bin requests", hits.Load())
		}
	})
	t.Run("json-pinned-client", func(t *testing.T) {
		client, hits, cleanup := newSvc(false)
		defer cleanup()
		client.DisableBin = true
		roundTrip(t, client, 23)
		if hits.Load() != 0 {
			t.Fatalf("DisableBin client issued %d /v1/bin requests", hits.Load())
		}
	})
}

// TestClusterMixedDialect boots a 3-node ring where one node withholds
// the binary dialect in both directions: replication fan-out, reads,
// and failover must keep working across the dialect boundary with
// nothing lost or corrupted.
func TestClusterMixedDialect(t *testing.T) {
	const n, jsonNode = 3, 1
	nodes := make([]*clusterNode, n)
	peers := make([]string, n)
	for i := range nodes {
		h := &switchHandler{}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		nodes[i] = &clusterNode{url: srv.URL, local: NewMemStore(), handler: h}
		peers[i] = srv.URL
	}
	meta := NewMetadata()
	for i, nd := range nodes {
		rs, err := NewReplicatedStore(ReplicatedConfig{
			Self:        nd.url,
			Peers:       peers,
			Replicas:    3,
			WriteQuorum: 2,
			Local:       nd.local,
			Health:      cluster.NewHealth(1, 50*time.Millisecond),
			RepairEvery: -1,
			DisableBin:  i == jsonNode,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.rs = rs
		t.Cleanup(func() { rs.Close() })
		fe := NewFrontEnd(FrontEndConfig{Store: rs, Meta: meta, DisableBin: i == jsonNode})
		nd.fe = fe.Handler()
		nd.up()
	}

	// Prime dialect discovery: one JSON round trip per peer pair so
	// every store has seen its peers' response headers.
	warm, warmData := replChunk(100, 8<<10)
	if err := nodes[0].rs.Put(warm, warmData); err != nil {
		t.Fatal(err)
	}

	var sums []Sum
	var payloads [][]byte
	for i := 0; i < 8; i++ {
		sum, data := replChunk(uint64(200+i), 32<<10)
		// Alternate the writing node so fan-out crosses the dialect
		// boundary in both directions (bin node -> JSON node and back).
		if err := nodes[i%n].rs.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
		payloads = append(payloads, data)
	}

	// Every owner holds every chunk (W=2 acks may precede the third
	// copy; poll briefly).
	deadline := time.Now().Add(2 * time.Second)
	for {
		missing := 0
		for _, sum := range sums {
			for _, nd := range nodes {
				if !nd.local.Has(sum) {
					missing++
				}
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replica copies still missing across the dialect boundary", missing)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reads from every node — including remote reads that cross the
	// boundary — return intact bytes.
	for i, sum := range sums {
		for _, nd := range nodes {
			got, err := nd.rs.Get(sum)
			if err != nil {
				t.Fatalf("chunk %d from %s: %v", i, nd.url, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("chunk %d from %s corrupted", i, nd.url)
			}
		}
	}

	// Failover read across the boundary: take a bin node down and read
	// everything through the JSON node.
	nodes[2].down()
	defer nodes[2].up()
	for i, sum := range sums {
		got, err := nodes[jsonNode].rs.Get(sum)
		if err != nil {
			t.Fatalf("failover chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("failover chunk %d corrupted", i)
		}
	}
}
