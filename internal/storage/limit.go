package storage

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"mcloud/internal/metrics"
)

// Shedder is the front-end's overload valve: a concurrency limiter
// that admits at most max requests at a time and sheds the rest with
// 503 + Retry-After instead of queueing them. The paper's service
// fronted 1.4 M devices whose synchronized retries could stampede a
// front-end; shedding keeps latency bounded for admitted requests and
// turns overload into explicit backpressure that resilient clients
// honor.
type Shedder struct {
	sem      chan struct{}
	inflight atomic.Int64
	sheds    atomic.Int64
	admitted atomic.Int64
}

// NewShedder returns a limiter admitting max concurrent requests.
// It panics if max <= 0 (an unlimited shedder is no shedder).
func NewShedder(max int) *Shedder {
	if max <= 0 {
		panic("storage: NewShedder with non-positive capacity")
	}
	return &Shedder{sem: make(chan struct{}, max)}
}

// Capacity returns the configured admission bound.
func (s *Shedder) Capacity() int { return cap(s.sem) }

// ShedStats reports the limiter's counters.
type ShedStats struct {
	InFlight int64 // requests currently admitted
	Admitted int64 // total requests admitted
	Sheds    int64 // total requests rejected with 503
}

// Stats returns a snapshot of the counters.
func (s *Shedder) Stats() ShedStats {
	return ShedStats{
		InFlight: s.inflight.Load(),
		Admitted: s.admitted.Load(),
		Sheds:    s.sheds.Load(),
	}
}

// Instrument registers the shedding series, labeled with the listener
// scope so several shedders can coexist in one process.
func (s *Shedder) Instrument(reg *metrics.Registry, scope string) {
	reg.CounterFunc("mcs_overload_sheds_total",
		"Requests rejected with 503 because the in-flight bound was hit.",
		func() float64 { return float64(s.Stats().Sheds) }, "scope", scope)
	reg.CounterFunc("mcs_overload_admitted_total",
		"Requests admitted by the concurrency limiter.",
		func() float64 { return float64(s.Stats().Admitted) }, "scope", scope)
	reg.GaugeFunc("mcs_overload_inflight",
		"Requests currently being served.",
		func() float64 { return float64(s.Stats().InFlight) }, "scope", scope)
	reg.GaugeFunc("mcs_overload_capacity",
		"Configured in-flight admission bound.",
		func() float64 { return float64(s.Capacity()) }, "scope", scope)
}

// Wrap returns next guarded by the limiter.
func (s *Shedder) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			s.admitted.Add(1)
			s.inflight.Add(1)
			defer func() {
				s.inflight.Add(-1)
				<-s.sem
			}()
			next.ServeHTTP(w, r)
		default:
			// The shedder sits outside the tracing middleware (a shed
			// must stay cheap), so the envelope's trace ID comes from
			// the request header via writeAPIError — enough for the
			// client's failed-attempt span to name its rejection.
			s.sheds.Add(1)
			w.Header().Set("Retry-After", "1")
			writeAPIError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("%w: server overloaded (%d requests in flight)", ErrOverloaded, s.Capacity()))
		}
	})
}
