package storage

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestChunkReaderPinAcrossCompaction holds a zero-copy reader open
// while the compactor reclaims the segment underneath it: the pinned
// region must stay readable (the unlinked file's descriptor is held
// open) and the segment file must only close after the reader
// releases its pin. Run under -race this also proves the pin counter
// ordering against the compactor's close.
func TestChunkReaderPinAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, DiskStoreOptions{SegmentSize: 4 << 10, CompactBelow: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	var sums []Sum
	for i := 0; i < 30; i++ {
		data := testChunk(77, i)
		sum := SumBytes(data)
		if err := ds.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}

	// Pick a chunk that landed in a sealed segment.
	ds.mu.RLock()
	activeID := ds.active.id
	var target Sum
	var targetSeg uint32
	found := false
	for _, sum := range sums {
		if loc := ds.index[sum]; loc.seg != activeID {
			target, targetSeg, found = sum, loc.seg, true
			break
		}
	}
	ds.mu.RUnlock()
	if !found {
		t.Fatal("no sealed segment produced; lower SegmentSize")
	}
	want, err := ds.Get(target)
	if err != nil {
		t.Fatal(err)
	}

	rd, err := ds.GetReaderCtx(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Size() != int64(len(want)) {
		t.Fatalf("Size() = %d, want %d", rd.Size(), len(want))
	}

	// Tombstone every other chunk in the pinned segment so only it
	// falls below the compaction threshold.
	for _, sum := range sums {
		if sum == target {
			continue
		}
		ds.mu.RLock()
		loc, ok := ds.index[sum]
		ds.mu.RUnlock()
		if ok && loc.seg == targetSeg {
			if err := ds.Delete(sum); err != nil {
				t.Fatal(err)
			}
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := ds.Compact()
		done <- err
	}()

	// Compaction progresses to the unlink, then must block on the pin
	// before closing the descriptor.
	segPath := filepath.Join(dir, segName(targetSeg))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(segPath); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never unlinked the pinned segment")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("compaction completed while the reader's pin was held (err=%v)", err)
	default:
	}

	// The pinned region still streams intact, CRC-verified bytes from
	// the unlinked file.
	var buf bytes.Buffer
	n, verified, err := rd.StreamTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !verified {
		t.Fatal("stream CRC did not verify")
	}
	if n != int64(len(want)) || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("streamed %d bytes, content match=%v", n, bytes.Equal(buf.Bytes(), want))
	}

	rd.Close()
	if err := <-done; err != nil {
		t.Fatalf("compaction failed after pin release: %v", err)
	}
	// The chunk survived the move into the active segment.
	got, err := ds.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chunk corrupted across compaction")
	}
}

// TestGetReaderAcrossTiers drives the uniform streamed-read interface
// over every store the front-end can serve from.
func TestGetReaderAcrossTiers(t *testing.T) {
	data := testChunk(81, 0)
	sum := SumBytes(data)

	disk, _ := newDiskStore(t, DiskStoreOptions{})
	stores := map[string]ChunkStore{
		"mem":    NewMemStore(),
		"cached": NewCachedStore(NewMemStore(), 1<<20),
		"disk":   disk,
		"tiered": NewTieredStore(NewMemStore(), NewMemStore(), time.Hour, nil),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(sum, data); err != nil {
				t.Fatal(err)
			}
			rd, err := GetReader(context.Background(), s, sum)
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			if rd.Size() != int64(len(data)) {
				t.Fatalf("Size() = %d, want %d", rd.Size(), len(data))
			}
			var buf bytes.Buffer
			n, verified, err := rd.StreamTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !verified || n != int64(len(data)) || !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("stream mismatch: n=%d verified=%v", n, verified)
			}
			// A second pass reads the same bytes (Payload is restartable).
			all := make([]byte, len(data))
			if _, err := rd.ReadAt(all, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(all, data) {
				t.Fatal("ReadAt mismatch")
			}
			if _, err := GetReader(context.Background(), s, SumBytes([]byte("absent"))); !IsNotFound(err) {
				t.Fatalf("missing chunk: err = %v, want not found", err)
			}
		})
	}
}
