package storage

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func openDurableMeta(t *testing.T, dir string) *Metadata {
	t.Helper()
	m, err := OpenDurableMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.WAL().Close() })
	return m
}

// metaUpload runs the full store handshake for deterministic content
// derived from (seed, i) and returns the assigned URL.
func metaUpload(t *testing.T, m *Metadata, seed int64, i int, user uint64) string {
	t.Helper()
	data := testChunk(seed, i)
	sum := SumBytes(data)
	resp, err := m.StoreCheck(StoreCheckRequest{
		UserID: user, Name: fmt.Sprintf("f-%d", i), Size: int64(len(data)), FileMD5: sum.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		if err := m.Commit(0, resp.URL, SplitSums(data)); err != nil {
			t.Fatal(err)
		}
	}
	return resp.URL
}

// canonSnapshot builds a canonicalized (sorted) snapshot for deep
// state comparison across replay paths and replicas.
func canonSnapshot(m *Metadata) metaSnapshot {
	m.mu.RLock()
	snap := m.snapshotLocked()
	m.mu.RUnlock()
	sort.Slice(snap.Files, func(i, j int) bool { return snap.Files[i].URL < snap.Files[j].URL })
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].UserID < snap.Users[j].UserID })
	for i := range snap.Users {
		sort.Strings(snap.Users[i].URLs)
	}
	return snap
}

func requireSameState(t *testing.T, a, b *Metadata, label string) {
	t.Helper()
	sa, sb := canonSnapshot(a), canonSnapshot(b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("%s: states differ:\n a=%+v\n b=%+v", label, sa, sb)
	}
}

func TestMetaWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := openDurableMeta(t, dir)
	var urls []string
	for i := 0; i < 10; i++ {
		urls = append(urls, metaUpload(t, m, 20, i, 1+uint64(i%3)))
	}
	// A dedup hit from another user and an unlink, so replay covers
	// every record type.
	dup := testChunk(20, 3)
	resp, err := m.StoreCheck(StoreCheckRequest{UserID: 9, Name: "dup", Size: int64(len(dup)), FileMD5: SumBytes(dup).String()})
	if err != nil || !resp.Duplicate {
		t.Fatalf("dedup hit: %v %+v", err, resp)
	}
	if _, _, err := m.Unlink(1, urls[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openDurableMeta(t, dir)
	requireSameState(t, m, m2, "pure WAL replay")
	if m2.LastSeq() != m.LastSeq() {
		t.Fatalf("lastSeq = %d, want %d", m2.LastSeq(), m.LastSeq())
	}
	// New uploads continue the URL sequence instead of reusing it.
	u := metaUpload(t, m2, 20, 100, 5)
	if _, err := m2.LookupURL(u); err != nil {
		t.Fatal(err)
	}
	for _, prev := range urls {
		if u == prev {
			t.Fatalf("URL %q reused after recovery", u)
		}
	}
}

// TestMetaWALCheckpointEquivalence: the same operation stream must
// produce identical recovered state whether it is replayed purely from
// the WAL or restored from interleaved checkpoints plus the WAL tail.
func TestMetaWALCheckpointEquivalence(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := openDurableMeta(t, dirA), openDurableMeta(t, dirB)

	apply := func(m *Metadata, checkpointEvery int) {
		var urls []string
		for i := 0; i < 30; i++ {
			urls = append(urls, metaUpload(t, m, 21, i%20, 1+uint64(i%4))) // i%20 forces some dedup hits
			if i%7 == 3 && len(urls) > 2 {
				m.Unlink(1+uint64(i%4), urls[len(urls)-3]) // some fail with ErrNotFound; fine
			}
			if checkpointEvery > 0 && i%checkpointEvery == checkpointEvery-1 {
				if err := m.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	apply(a, 5)
	apply(b, 0)
	requireSameState(t, a, b, "live states (checkpointed vs not)")

	if err := a.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	ra, rb := openDurableMeta(t, dirA), openDurableMeta(t, dirB)
	requireSameState(t, ra, a, "checkpoint+tail recovery")
	requireSameState(t, rb, b, "pure replay recovery")
	requireSameState(t, ra, rb, "recovered states")

	if st := ra.WAL().Stats(); st.CheckpointSeq == 0 {
		t.Fatal("checkpointed store recovered with CheckpointSeq 0")
	}
}

// TestMetaWALCheckpointPrunes: checkpoints bound the log — sealed
// segments covered by the checkpoint are deleted.
func TestMetaWALCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	m := openDurableMeta(t, dir)
	for i := 0; i < 20; i++ {
		metaUpload(t, m, 22, i, 1)
		if i%5 == 4 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.mwal"))
	if len(segs) != 1 {
		t.Fatalf("%d segments on disk after checkpoints, want 1 (the active)", len(segs))
	}
	st := m.WAL().Stats()
	if st.Checkpoints != 4 || st.CheckpointSeq != m.LastSeq() {
		t.Fatalf("stats = %+v, want 4 checkpoints at seq %d", st, m.LastSeq())
	}
	// Nothing new since the checkpoint: the next one is a no-op.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.WAL().Stats().Checkpoints; got != 4 {
		t.Fatalf("no-op checkpoint ran anyway (%d)", got)
	}
}

// metaReserveOnly appends reserve records (one WAL record per call)
// and returns the URL, for byte-precise torn-tail tables.
func metaReserveOnly(t *testing.T, m *Metadata, seed int64, i int) string {
	t.Helper()
	data := testChunk(seed, i)
	sum := SumBytes(data)
	resp, err := m.StoreCheck(StoreCheckRequest{
		UserID: 1, Name: fmt.Sprintf("r-%d", i), Size: int64(len(data)), FileMD5: sum.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicate {
		t.Fatalf("unexpected dedup hit at %d", i)
	}
	return resp.URL
}

// TestMetaWALTornTail: the WAL's final segment is truncated at
// assorted offsets; the reopened server must hold exactly the records
// that fully survived.
func TestMetaWALTornTail(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	m, err := OpenDurableMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	var ends []int64
	for i := 0; i < n; i++ {
		urls = append(urls, metaReserveOnly(t, m, 23, i))
		ends = append(ends, m.WAL().Stats().BytesLogged)
	}
	if err := m.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, walSegName(1))
	if info, err := os.Stat(seg); err != nil || info.Size() != ends[n-1] {
		t.Fatalf("segment size = %v/%v, want %d", info, err, ends[n-1])
	}

	cases := []struct {
		name string
		cut  int64
	}{
		{"one-byte-short", ends[n-1] - 1},
		{"mid-payload", ends[n-2] + walHeaderSize + 9},
		{"mid-header", ends[n-2] + walHeaderSize/2},
		{"exact-boundary", ends[n-2]},
		{"two-records-torn", ends[n-3] + 3},
		{"header-only", ends[n-3] + walHeaderSize},
		{"empty-file", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cdir := t.TempDir()
			copyFile(t, seg, filepath.Join(cdir, walSegName(1)))
			if err := os.Truncate(filepath.Join(cdir, walSegName(1)), tc.cut); err != nil {
				t.Fatal(err)
			}
			rm := openDurableMeta(t, cdir)
			for i, url := range urls {
				_, err := rm.LookupURL(url)
				if ends[i] <= tc.cut {
					if err != nil {
						t.Fatalf("surviving record %d (%s): %v", i, url, err)
					}
				} else if err != ErrNotFound {
					t.Fatalf("torn record %d (%s): err = %v, want ErrNotFound", i, url, err)
				}
			}
			onBoundary := tc.cut == 0
			for _, e := range ends {
				onBoundary = onBoundary || tc.cut == e
			}
			if got := rm.WAL().Stats().Truncated; onBoundary && got != 0 {
				t.Fatalf("clean-boundary cut reported %d torn bytes", got)
			} else if !onBoundary && got == 0 {
				t.Fatal("truncated bytes not recorded")
			}
			// Appends resume cleanly on the healed tail.
			u := metaReserveOnly(t, rm, 23, 1000)
			if _, err := rm.LookupURL(u); err != nil {
				t.Fatalf("post-recovery reserve unreadable: %v", err)
			}
		})
	}
}

// TestMetaWALTornTailFuzzSeed drives the same invariant from a seeded
// stream of random truncation points.
func TestMetaWALTornTailFuzzSeed(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	m, err := OpenDurableMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	var ends []int64
	for i := 0; i < n; i++ {
		urls = append(urls, metaReserveOnly(t, m, 24, i))
		ends = append(ends, m.WAL().Stats().BytesLogged)
	}
	if err := m.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, walSegName(1))

	r := rand.New(rand.NewSource(0x3E7A))
	for round := 0; round < 25; round++ {
		cut := r.Int63n(ends[n-1] + 1)
		cdir := t.TempDir()
		copyFile(t, seg, filepath.Join(cdir, walSegName(1)))
		if err := os.Truncate(filepath.Join(cdir, walSegName(1)), cut); err != nil {
			t.Fatal(err)
		}
		rm, err := OpenDurableMetadata(cdir)
		if err != nil {
			t.Fatalf("round %d (cut %d): %v", round, cut, err)
		}
		for i, url := range urls {
			_, err := rm.LookupURL(url)
			if ends[i] <= cut {
				if err != nil {
					t.Fatalf("round %d (cut %d): surviving record %d: %v", round, cut, i, err)
				}
			} else if err != ErrNotFound {
				t.Fatalf("round %d (cut %d): torn record %d: err = %v", round, cut, i, err)
			}
		}
		rm.WAL().Close()
	}
}

// TestMetaWALCorruptSealedSegment: corruption outside the final
// segment is unrecoverable damage and must refuse to open, not
// silently drop records.
func TestMetaWALCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenDurableMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		metaReserveOnly(t, m, 25, i)
	}
	// Rotate without checkpointing so the sealed segment stays.
	m.mu.Lock()
	m.wal.mu.Lock()
	rerr := m.wal.rotateLocked(m.lastSeq)
	m.wal.mu.Unlock()
	m.mu.Unlock()
	if rerr != nil {
		t.Fatal(rerr)
	}
	metaReserveOnly(t, m, 25, 100)
	if err := m.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	seg1 := filepath.Join(dir, walSegName(1))
	f, err := os.OpenFile(seg1, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, walHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenDurableMetadata(dir); err == nil {
		t.Fatal("open succeeded over a corrupt sealed segment")
	}
}

// TestMetaSIGKILLRecovery is the metadata counterpart of the DiskStore
// crash test: a child process runs the store-check/commit handshake in
// a loop (checkpointing periodically so rotation is live during the
// kill), acknowledging each file only after Commit's fsync cover
// returns; the parent SIGKILLs it mid-stream, reopens the directory,
// and every acknowledged commit must be present and intact.
func TestMetaSIGKILLRecovery(t *testing.T) {
	const seed = 0x6E7A
	if dir := os.Getenv("MCS_META_CRASH_DIR"); dir != "" {
		metaCrashChild(dir, seed)
		return
	}
	if testing.Short() {
		t.Skip("subprocess test")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestMetaSIGKILLRecovery$")
	cmd.Env = append(os.Environ(), "MCS_META_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	acked := -1
	urls := map[int]string{}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		var i int
		var url string
		if _, err := fmt.Sscanf(sc.Text(), "acked %d %s", &i, &url); err == nil {
			acked = i
			urls[i] = url
			if i >= 60 {
				break // past at least two checkpoints; kill mid-stream
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if acked < 0 {
		t.Fatal("child acknowledged no commits before dying")
	}

	m, err := OpenDurableMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.WAL().Close()
	lost, corrupted := 0, 0
	for i := 0; i <= acked; i++ {
		data := testChunk(seed, i)
		sum := SumBytes(data)
		f, err := m.Lookup(0, sum) // committed catalog: dedup must see it
		if err != nil {
			lost++
			continue
		}
		want := SplitSums(data)
		if f.URL != urls[i] || f.Size != int64(len(data)) || !reflect.DeepEqual(f.ChunkMD5s, want) {
			corrupted++
		}
	}
	if lost != 0 || corrupted != 0 {
		t.Fatalf("of %d acknowledged commits: %d lost, %d corrupted", acked+1, lost, corrupted)
	}
	st := m.WAL().Stats()
	t.Logf("meta SIGKILL recovery: %d acknowledged commits, 0 lost, 0 corrupted (recovery %v, %d torn bytes truncated, checkpoint seq %d)",
		acked+1, st.Recovery, st.Truncated, st.CheckpointSeq)
}

// metaCrashChild is the SIGKILL victim: it uploads deterministic files
// forever, acknowledging each only once the commit is durable.
func metaCrashChild(dir string, seed int64) {
	m, err := OpenDurableMetadata(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		data := testChunk(seed, i)
		sum := SumBytes(data)
		resp, err := m.StoreCheck(StoreCheckRequest{
			UserID: 1 + uint64(i%3), Name: fmt.Sprintf("crash-%d", i),
			Size: int64(len(data)), FileMD5: sum.String(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := m.Commit(0, resp.URL, SplitSums(data)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("acked %d %s\n", i, resp.URL)
		if i%25 == 24 {
			if err := m.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// TestMetaWALConcurrent hammers the mutators from several goroutines;
// group commit must keep every acked mutation and the -race detector
// quiet.
func TestMetaWALConcurrent(t *testing.T) {
	dir := t.TempDir()
	m := openDurableMeta(t, dir)
	const workers, per = 6, 20
	errc := make(chan error, workers)
	urlc := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				data := testChunk(int64(26+w), i)
				sum := SumBytes(data)
				resp, err := m.StoreCheck(StoreCheckRequest{
					UserID: uint64(w + 1), Name: fmt.Sprintf("c-%d-%d", w, i),
					Size: int64(len(data)), FileMD5: sum.String(),
				})
				if err != nil {
					errc <- err
					return
				}
				if !resp.Duplicate {
					if err := m.Commit(0, resp.URL, SplitSums(data)); err != nil {
						errc <- err
						return
					}
				}
				urlc <- resp.URL
				if i%10 == 9 {
					if err := m.Checkpoint(); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	close(urlc)
	var urls []string
	for u := range urlc {
		urls = append(urls, u)
	}
	if err := m.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	m2 := openDurableMeta(t, dir)
	requireSameState(t, m, m2, "recovery after concurrent load")
	for _, u := range urls {
		if _, err := m2.LookupURL(u); err != nil {
			t.Fatalf("acked URL %s lost: %v", u, err)
		}
	}
	st := m2.WAL().Stats()
	if st.Appends != 0 {
		t.Fatalf("fresh reopen counted %d appends", st.Appends)
	}
}

// TestMetaWALGroupCommit: one fsync covers every record appended
// before it — the LSN-cover semantics behind group commit.
func TestMetaWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	m := openDurableMeta(t, dir)
	w := m.WAL()

	const n = 20
	var last int64
	m.mu.Lock()
	for i := 0; i < n; i++ {
		rec := MetaWALRecord{
			Op: walOpReserve, User: 1, URL: fmt.Sprintf("/t/%d", i),
			Name: "t", Size: 1, FileMD5: SumBytes([]byte{byte(i)}).String(),
			URLSeq: int64(i + 1),
		}
		lsn, err := m.logApplyLocked(&rec)
		if err != nil {
			m.mu.Unlock()
			t.Fatal(err)
		}
		last = lsn
	}
	m.mu.Unlock()

	before := w.Stats().Fsyncs
	if err := w.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	after := w.Stats().Fsyncs
	if after-before != 1 {
		t.Fatalf("%d fsyncs to cover %d appends, want 1", after-before, n)
	}
	// Earlier LSNs are now covered: no further fsyncs.
	if err := w.WaitDurable(last - 100); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Fsyncs; got != after {
		t.Fatalf("covered wait issued an fsync (%d -> %d)", after, got)
	}
	if st := w.Stats(); st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
}
