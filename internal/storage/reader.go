package storage

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ChunkReader is a streaming view of one stored chunk. Disk-backed
// readers wrap an io.SectionReader-style window over the pin-counted
// segment region — the pin is held until Close, so compaction cannot
// close the file underneath an in-flight response — and memory-backed
// readers wrap the store's immutable payload slice without copying.
// Either way the front-end serves the bytes through io.Copy instead of
// materializing a []byte per GET.
//
// A ChunkReader must be Closed exactly once when the caller is done
// streaming (Close is idempotent, so defer is safe). The payload
// accessors (Payload, ReadAt, StreamTo) may be used repeatedly until
// then; each Payload call returns an independent reader.
type ChunkReader struct {
	size int64

	// Memory-backed source: the payload slice itself. Content-addressed
	// chunks are immutable, so sharing the store's slice is safe.
	data []byte

	// Disk-backed source: the record window [recOff, recOff+24+size) of
	// a segment file, pinned against compaction until release runs.
	ra     io.ReaderAt
	recOff int64
	// storedCRC is the record's CRC32 (over the 20-byte header prefix
	// and the payload) read from the header at open; hdrCRC is the
	// checksum state after the header prefix, so a streaming copy can
	// continue it over the payload without a second pass.
	storedCRC uint32
	hdrCRC    uint32

	release func()
	once    sync.Once
}

// NewBytesReader wraps an in-memory payload (no copy; the slice must
// be immutable for the reader's lifetime, which content-addressed
// chunks are).
func NewBytesReader(data []byte) *ChunkReader {
	return &ChunkReader{size: int64(len(data)), data: data}
}

// newDiskReader wraps a pinned record region. storedCRC/hdrCRC come
// from the record header; release drops the segment pin.
func newDiskReader(ra io.ReaderAt, recOff, size int64, storedCRC, hdrCRC uint32, release func()) *ChunkReader {
	return &ChunkReader{
		size:      size,
		ra:        ra,
		recOff:    recOff,
		storedCRC: storedCRC,
		hdrCRC:    hdrCRC,
		release:   release,
	}
}

// Size returns the payload length in bytes.
func (cr *ChunkReader) Size() int64 { return cr.size }

// Bytes returns the in-memory payload when the source is RAM. Callers
// must not mutate it.
func (cr *ChunkReader) Bytes() ([]byte, bool) {
	if cr.data != nil || cr.size == 0 && cr.ra == nil {
		return cr.data, true
	}
	return nil, false
}

// Payload returns a fresh reader over the payload bytes.
func (cr *ChunkReader) Payload() io.Reader {
	if cr.ra == nil {
		return io.NewSectionReader(byteReaderAt(cr.data), 0, cr.size)
	}
	return io.NewSectionReader(cr.ra, cr.recOff+recHeaderSize, cr.size)
}

// ReadAt implements io.ReaderAt over the payload.
func (cr *ChunkReader) ReadAt(p []byte, off int64) (int, error) {
	if cr.ra == nil {
		return byteReaderAt(cr.data).ReadAt(p, off)
	}
	if off < 0 || off > cr.size {
		return 0, io.EOF
	}
	if max := cr.size - off; int64(len(p)) > max {
		p = p[:max]
		n, err := cr.ra.ReadAt(p, cr.recOff+recHeaderSize+off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return cr.ra.ReadAt(p, cr.recOff+recHeaderSize+off)
}

// Frame returns a reader over the chunk's complete mcsbin/1 frame
// (sum|len|crc32|payload) when the store already holds the bytes in
// that framing — a DiskStore record IS the frame, so a binary GET
// response streams the raw record region with no re-encode and no CRC
// recompute. Memory-backed readers return false and the caller
// synthesizes the header.
func (cr *ChunkReader) Frame() (io.Reader, int64, bool) {
	if cr.ra == nil {
		return nil, 0, false
	}
	return io.NewSectionReader(cr.ra, cr.recOff, recHeaderSize+cr.size), recHeaderSize + cr.size, true
}

// StreamTo copies the payload into w, folding the record CRC check
// into the copy loop for disk-backed readers: the checksum is computed
// over the bytes as they stream (no second pass), and verified reports
// whether it matched the stored record CRC. Memory-backed payloads
// were verified on the way in and report true. A short or failed write
// returns the bytes actually written and the write error.
func (cr *ChunkReader) StreamTo(w io.Writer) (written int64, verified bool, err error) {
	if cr.ra == nil {
		n, err := w.Write(cr.data)
		return int64(n), true, err
	}
	scratch := getCopyBuf()
	defer putCopyBuf(scratch)
	buf := *scratch
	crc := cr.hdrCRC
	var off int64
	for off < cr.size {
		n := int64(len(buf))
		if rem := cr.size - off; rem < n {
			n = rem
		}
		k, rerr := cr.ra.ReadAt(buf[:n], cr.recOff+recHeaderSize+off)
		if k > 0 {
			crc = crc32.Update(crc, crc32.IEEETable, buf[:k])
			wn, werr := w.Write(buf[:k])
			written += int64(wn)
			if werr != nil {
				return written, false, werr
			}
			if wn < k {
				return written, false, io.ErrShortWrite
			}
			off += int64(k)
		}
		if rerr != nil && rerr != io.EOF {
			return written, false, rerr
		}
		if k == 0 {
			return written, false, io.ErrUnexpectedEOF
		}
	}
	return written, crc == cr.storedCRC, nil
}

// Close releases the underlying pin (idempotent).
func (cr *ChunkReader) Close() error {
	cr.once.Do(func() {
		if cr.release != nil {
			cr.release()
		}
	})
	return nil
}

// byteReaderAt adapts a byte slice to io.ReaderAt without the
// bytes.Reader allocation dance.
type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ReaderStore is an optional ChunkStore extension serving streaming
// reads. Every tier implements it (DiskStore from pinned segment
// regions, MemStore/CachedStore from resident slices, TieredStore and
// ReplicatedStore by delegation), so the front-end serves any stack
// uniformly without materializing chunk payloads.
type ReaderStore interface {
	// GetReaderCtx returns a streaming view of the chunk, or
	// ErrNotFound. The caller must Close the reader.
	GetReaderCtx(ctx context.Context, sum Sum) (*ChunkReader, error)
}

// GetReader reads through the streaming path when the store has one,
// falling back to a materialized GetCtx wrapped as a bytes reader.
func GetReader(ctx context.Context, s ChunkStore, sum Sum) (*ChunkReader, error) {
	if rs, ok := s.(ReaderStore); ok {
		return rs.GetReaderCtx(ctx, sum)
	}
	data, err := GetCtx(ctx, s, sum)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(data), nil
}

// copyBufPool recycles the mid-size buffers the streaming copy loops
// use (segment file -> socket); 64 KB keeps syscall counts low at a
// footprint far below a pooled full chunk.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

func getCopyBuf() *[]byte  { return copyBufPool.Get().(*[]byte) }
func putCopyBuf(b *[]byte) { copyBufPool.Put(b) }

// errReaderClosed reports use of a store that has shut down.
var errReaderClosed = fmt.Errorf("storage: store closed")
