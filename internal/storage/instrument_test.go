package storage

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/trace"
)

// TestInstrumentedServiceExposition drives a full store/retrieve
// round trip through an instrumented front-end + metadata server over
// real HTTP, scrapes the ops listener, and asserts the exposition
// parses and carries the expected front-end series.
func TestInstrumentedServiceExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	store := NewMemStore()
	store.Instrument(reg)
	cached := NewCachedStore(store, 1<<20)
	cached.Instrument(reg)
	meta := NewMetadata()
	meta.Instrument(reg)
	fem := NewFrontEndMetrics(reg)

	fe := NewFrontEnd(FrontEndConfig{Store: cached, Meta: meta, Sink: &Collector{}, Metrics: fem})
	feSrv := httptest.NewServer(fe.Handler())
	defer feSrv.Close()
	meta.AddFrontEnd(feSrv.URL)
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()

	client := &Client{
		MetaURL: metaSrv.URL, UserID: 7, DeviceID: 1, Device: trace.IOS,
	}
	data := make([]byte, ChunkSize+ChunkSize/2) // 2 chunks
	for i := range data {
		data[i] = byte(i)
	}
	res, err := client.StoreFile("a.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	// Retrieve twice: the second read must hit the LRU cache.
	for i := 0; i < 2; i++ {
		got, err := client.RetrieveFile(res.URL)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(data) {
			t.Fatalf("retrieved %d bytes, want %d", len(got), len(data))
		}
	}

	health := &metrics.Health{}
	health.SetReady(true)
	ops := httptest.NewServer(metrics.OpsMux(reg, health))
	defer ops.Close()
	resp, err := ops.Client().Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	vals, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	expect := map[string]float64{
		metrics.Key("mcs_frontend_requests_total", "op", "file-store"):                   1,
		metrics.Key("mcs_frontend_requests_total", "op", "file-retrieve"):                2,
		metrics.Key("mcs_frontend_requests_total", "op", "chunk-store"):                  2,
		metrics.Key("mcs_frontend_requests_total", "op", "chunk-retrieve"):               4,
		metrics.Key("mcs_frontend_bytes_total", "dir", "in"):                             float64(len(data)),
		metrics.Key("mcs_frontend_bytes_total", "dir", "out"):                            2 * float64(len(data)),
		metrics.Key("mcs_frontend_pending_uploads"):                                      0,
		metrics.Key("mcs_frontend_chunk_seconds_count", "dir", "store", "device", "ios"): 2,
		metrics.Key("mcs_frontend_chunk_seconds_count", "dir", "store", "device", "all"): 2,
		metrics.Key("mcs_store_chunks"):                                                  2,
		metrics.Key("mcs_store_puts_total"):                                              2,
		metrics.Key("mcs_meta_files", "shard", "0"):                                      1,
		metrics.Key("mcs_meta_users", "shard", "0"):                                      1,
		metrics.Key("mcs_meta_checks_total", "shard", "0"):                               1,
		metrics.Key("mcs_cache_hits_total"):                                              2,
		metrics.Key("mcs_cache_misses_total"):                                            2,
	}
	for k, want := range expect {
		got, ok := vals[k]
		if !ok {
			t.Errorf("missing series %s", k)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
	}
	if n := vals[metrics.Key("mcs_meta_op_seconds_count", "op", "store_check", "shard", "0")]; n != 1 {
		t.Errorf("store_check count = %g, want 1", n)
	}
	if p50 := vals[metrics.Key("mcs_frontend_chunk_seconds", "dir", "store", "device", "ios", "quantile", "0.5")]; !(p50 > 0) {
		t.Errorf("chunk-store p50 = %g, want > 0", p50)
	}
}

// TestFrontEndErrorCounters checks errors are attributed to the right
// operation.
func TestFrontEndErrorCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	fem := NewFrontEndMetrics(reg)
	fe := NewFrontEnd(FrontEndConfig{Store: NewMemStore(), Meta: NewMetadata(), Metrics: fem})
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()

	// Bad chunk digest on GET -> chunk-retrieve error.
	resp, err := srv.Client().Get(srv.URL + "/chunk/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Malformed JSON -> file-store error.
	resp, err = srv.Client().Post(srv.URL+"/op/store?url=/f/x", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := fem.errors[trace.ChunkRetrieve].Value(); got != 1 {
		t.Errorf("chunk-retrieve errors = %d, want 1", got)
	}
	if got := fem.errors[trace.FileStore].Value(); got != 1 {
		t.Errorf("file-store errors = %d, want 1", got)
	}
	if got := fem.requests[trace.ChunkRetrieve].Value(); got != 0 {
		t.Errorf("failed requests must not count as served, got %d", got)
	}
}

// TestGCMetrics checks the sweep series advance on observed deletes.
func TestGCMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	gm := NewGCMetrics(reg)
	store := NewMemStore()
	meta := NewMetadata("http://fe")
	rc := NewRefCounter()

	data := []byte("gc instrumentation test chunk")
	sum := SumBytes(data)
	check, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "x", Size: int64(len(data)), FileMD5: sum.String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	if err := meta.Commit(0, check.URL, []Sum{sum}); err != nil {
		t.Fatal(err)
	}
	rc.Acquire([]Sum{sum})

	n, err := DeleteFileObserved(gm, meta, rc, store, 1, check.URL)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reclaimed %d chunks, want 1", n)
	}
	if got := gm.Deletes.Value(); got != 1 {
		t.Errorf("deletes = %d, want 1", got)
	}
	if got := gm.Reclaimed.Value(); got != 1 {
		t.Errorf("reclaimed = %d, want 1", got)
	}
	if got := gm.Sweep.Count(); got != 1 {
		t.Errorf("sweep observations = %d, want 1", got)
	}
	if store.Has(sum) {
		t.Error("chunk should be collected")
	}
}

// TestWriterSinkLatchesError proves a failing log writer surfaces the
// first error at Flush instead of silently dropping records.
func TestWriterSinkLatchesError(t *testing.T) {
	s := NewWriterSink(trace.NewWriter(failWriter{}))
	// The trace writer buffers 64 KB; write well past that so the
	// failing backend surfaces mid-run, then keep recording.
	for i := 0; i < 5000; i++ {
		s.Record(trace.Log{Time: time.Unix(int64(i), 0)})
	}
	err := s.Flush()
	if err == nil {
		t.Fatal("Flush after failed writes should report an error")
	}
	if !strings.Contains(err.Error(), "log write failed") {
		t.Errorf("error should identify the latched write failure, got: %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("error should wrap the root cause, got: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errTestWrite
}

var errTestWrite = &testWriteError{}

type testWriteError struct{}

func (*testWriteError) Error() string { return "disk full" }
