package storage

import (
	"bytes"
	"testing"
)

func TestRefCounterAcquireRelease(t *testing.T) {
	rc := NewRefCounter()
	a := SumBytes([]byte("a"))
	b := SumBytes([]byte("b"))
	rc.Acquire([]Sum{a, b})
	rc.Acquire([]Sum{a}) // a shared by two files
	if rc.Refs(a) != 2 || rc.Refs(b) != 1 {
		t.Errorf("refs = %d/%d", rc.Refs(a), rc.Refs(b))
	}
	dead := rc.Release([]Sum{a, b})
	if len(dead) != 1 || dead[0] != b {
		t.Errorf("dead = %v, want just b", dead)
	}
	if rc.Refs(a) != 1 {
		t.Errorf("a refs = %d, want 1", rc.Refs(a))
	}
	dead = rc.Release([]Sum{a})
	if len(dead) != 1 || dead[0] != a {
		t.Errorf("dead = %v, want a", dead)
	}
	if rc.Live() != 0 {
		t.Errorf("live = %d, want 0", rc.Live())
	}
}

func TestRefCounterOverRelease(t *testing.T) {
	rc := NewRefCounter()
	a := SumBytes([]byte("a"))
	if dead := rc.Release([]Sum{a}); dead != nil {
		t.Errorf("releasing unknown chunk returned %v", dead)
	}
	rc.Acquire([]Sum{a})
	rc.Release([]Sum{a})
	if dead := rc.Release([]Sum{a}); dead != nil {
		t.Error("double release must not go negative or return dead chunks")
	}
}

func TestCollectReclaimsFromDeletableStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("collectable")
	sum := SumBytes(data)
	if err := fs.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	n, err := Collect(fs, []Sum{sum, SumBytes([]byte("missing"))})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reclaimed %d, want 1", n)
	}
	if fs.Has(sum) {
		t.Error("chunk survived collection")
	}
}

func TestCollectNoopWithoutDeleter(t *testing.T) {
	c := NewCachedStore(NewMemStore(), 1<<20) // no Delete method
	n, err := Collect(c, []Sum{SumBytes([]byte("x"))})
	if err != nil || n != 0 {
		t.Errorf("n=%d err=%v, want 0/nil", n, err)
	}
}

func TestMetadataUnlinkSharedContent(t *testing.T) {
	meta := NewMetadata("fe")
	sum := SumBytes([]byte("shared photo"))
	chunk := SumBytes([]byte("chunk0"))

	// User 1 uploads; user 2 links the same content via dedup.
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "p.jpg", Size: 12, FileMD5: sum.String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Commit(0, resp.URL, []Sum{chunk}); err != nil {
		t.Fatal(err)
	}
	resp2, err := meta.StoreCheck(StoreCheckRequest{UserID: 2, Name: "q.jpg", Size: 12, FileMD5: sum.String()})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Duplicate {
		t.Fatal("dedup expected")
	}

	// User 1 deletes: content must survive (user 2 still links it).
	chunks, last, err := meta.Unlink(1, resp.URL)
	if err != nil {
		t.Fatal(err)
	}
	if last {
		t.Error("content dropped while user 2 still links it")
	}
	if len(chunks) != 1 || chunks[0] != chunk {
		t.Errorf("chunks = %v", chunks)
	}
	if _, err := meta.Resolve(ResolveRequest{UserID: 2, URL: resp.URL}); err != nil {
		t.Error("user 2 lost access after user 1's delete")
	}

	// User 2 deletes: now it is the last reference.
	_, last, err = meta.Unlink(2, resp.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !last {
		t.Error("last unlink not reported")
	}
	if _, err := meta.Resolve(ResolveRequest{UserID: 2, URL: resp.URL}); err != ErrNotFound {
		t.Errorf("resolve after full delete: err = %v", err)
	}
	// Content hash no longer dedups: a re-upload is fresh.
	resp3, err := meta.StoreCheck(StoreCheckRequest{UserID: 3, Name: "r.jpg", Size: 12, FileMD5: sum.String()})
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Duplicate {
		t.Error("deleted content still dedups")
	}
}

func TestMetadataUnlinkErrors(t *testing.T) {
	meta := NewMetadata()
	if _, _, err := meta.Unlink(1, "/f/x"); err != ErrNotFound {
		t.Errorf("unknown user: err = %v", err)
	}
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "a", Size: 1, FileMD5: SumBytes([]byte("a")).String()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := meta.Unlink(1, "/f/other"); err != ErrNotFound {
		t.Errorf("unknown url: err = %v", err)
	}
	_ = resp
}

func TestDeleteFileEndToEnd(t *testing.T) {
	store := NewMemStore()
	meta := NewMetadata("fe")
	rc := NewRefCounter()

	upload := func(user uint64, content []byte, name string) string {
		fileSum := SumBytes(content)
		resp, err := meta.StoreCheck(StoreCheckRequest{UserID: user, Name: name, Size: int64(len(content)), FileMD5: fileSum.String()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Duplicate {
			return resp.URL
		}
		sums := SplitSums(content)
		for i, s := range sums {
			lo := i * ChunkSize
			hi := lo + ChunkSize
			if hi > len(content) {
				hi = len(content)
			}
			if err := store.Put(s, content[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := meta.Commit(0, resp.URL, sums); err != nil {
			t.Fatal(err)
		}
		rc.Acquire(sums)
		return resp.URL
	}

	contentA := bytes.Repeat([]byte("A"), 1000)
	contentB := bytes.Repeat([]byte("B"), 1000)
	urlA := upload(1, contentA, "a.bin")
	urlShared := upload(1, contentB, "b.bin")
	urlShared2 := upload(2, contentB, "b-copy.bin") // dedup link
	if urlShared != urlShared2 {
		t.Fatal("dedup should reuse the URL")
	}

	// Delete A: its chunk is reclaimed.
	n, err := DeleteFile(meta, rc, store, 1, urlA)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reclaimed %d chunks for A, want 1", n)
	}
	if store.Has(SplitSums(contentA)[0]) {
		t.Error("A's chunk survived")
	}

	// User 1 deletes shared content: nothing reclaimed (user 2 links).
	n, err = DeleteFile(meta, rc, store, 1, urlShared)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("reclaimed %d chunks for shared content, want 0", n)
	}
	if !store.Has(SplitSums(contentB)[0]) {
		t.Error("shared chunk lost")
	}

	// User 2 deletes: now reclaimed.
	n, err = DeleteFile(meta, rc, store, 2, urlShared)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reclaimed %d chunks, want 1", n)
	}
	if store.Has(SplitSums(contentB)[0]) {
		t.Error("chunk survived final delete")
	}
}

func TestMemStoreDelete(t *testing.T) {
	m := NewMemStore()
	data := []byte("deletable")
	sum := SumBytes(data)
	if err := m.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(sum); err != nil {
		t.Fatal(err)
	}
	if m.Has(sum) {
		t.Error("chunk survived delete")
	}
	if err := m.Delete(sum); err != ErrNotFound {
		t.Errorf("double delete: err = %v", err)
	}
	if st := m.Stats(); st.Chunks != 0 || st.Bytes != 0 {
		t.Errorf("stats after delete: %+v", st)
	}
}
