package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/metrics"
)

// Metadata replication: a standby node pulls committed WAL records
// from the primary over /v1/meta/wal/pull and applies them through the
// same applyRecordLocked path the primary used, so both hold identical
// state. A standby that is too far behind for the primary's in-memory
// tail (or is brand new) is reseeded with a full snapshot — the same
// codec the WAL checkpoint uses. The standby persists what it applies
// to its own WAL, so a promoted or restarted standby recovers exactly
// like a primary.
//
// Writes are rejected on the standby with a retryable 503 (see
// writeGuardLocked); reads are served from the replicated state. This
// is the metadata-plane counterpart of the chunk plane's replicated
// ring: the paper's metadata tier is a replicated database, and the
// request-cloning literature (PAPERS.md) shows a warm replica is what
// masks single-server failure from clients.

// MetaPullRequest asks the primary for every record after sequence
// After, bounded by Limit (default 1024).
type MetaPullRequest struct {
	After uint64 `json:"after"`
	Limit int    `json:"limit,omitempty"`
}

// MetaPullResponse carries either a batch of records contiguous from
// After+1, or — when the primary's tail no longer reaches that far
// back — a full snapshot to reseed from. LastSeq is the primary's
// newest sequence, so the standby knows whether to pull again
// immediately.
type MetaPullResponse struct {
	LastSeq     uint64          `json:"last_seq"`
	Records     []MetaWALRecord `json:"records,omitempty"`
	Snapshot    *metaSnapshot   `json:"snapshot,omitempty"`
	SnapshotSeq uint64          `json:"snapshot_seq,omitempty"`
}

// Pull serves one replication batch (primary side).
func (m *Metadata) Pull(req MetaPullRequest) MetaPullResponse {
	limit := req.Limit
	if limit <= 0 || limit > 4096 {
		limit = 1024
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	resp := MetaPullResponse{LastSeq: m.lastSeq}
	if req.After >= m.lastSeq {
		return resp // caught up
	}
	// The tail holds contiguous sequences ending at lastSeq; serve
	// from it when it reaches back to After+1.
	if n := len(m.tail); n > 0 && m.tail[0].Seq <= req.After+1 {
		start := int(req.After + 1 - m.tail[0].Seq)
		end := start + limit
		if end > n {
			end = n
		}
		resp.Records = append(resp.Records, m.tail[start:end]...)
		return resp
	}
	// Too far behind (or fresh): reseed with a snapshot.
	snap := m.snapshotLocked()
	resp.Snapshot = &snap
	resp.SnapshotSeq = m.lastSeq
	return resp
}

// SetStandby marks this metadata server a read-only replica of
// primary. Mutations are rejected with a retryable 503 until Promote.
func (m *Metadata) SetStandby(primary string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.standby = true
	m.primary = primary
}

// Promote clears standby mode, letting the node accept writes — the
// manual failover step when the primary is gone for good.
func (m *Metadata) Promote() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.standby = false
	m.primary = ""
}

// ApplyReplicated applies a contiguous batch of records pulled from
// the primary: mutate through the shared apply path, buffer for
// further replication, append to the local WAL, and wait once for
// durability at the end of the batch. Records at or below the current
// sequence are skipped (the pull raced an earlier apply); a sequence
// gap aborts the batch so the caller can re-pull.
func (m *Metadata) ApplyReplicated(recs []MetaWALRecord) (applied int, err error) {
	var lsn int64
	m.mu.Lock()
	for i := range recs {
		rec := recs[i]
		if rec.Seq <= m.lastSeq {
			continue
		}
		if rec.Seq != m.lastSeq+1 {
			err = fmt.Errorf("storage: meta replicate: sequence gap: have %d, got %d", m.lastSeq, rec.Seq)
			break
		}
		if aerr := m.applyRecordLocked(&rec); aerr != nil {
			err = aerr
			break
		}
		m.lastSeq = rec.Seq
		m.tailAppendLocked(rec)
		if m.wal != nil {
			l, werr := m.wal.Append(&rec)
			if werr != nil {
				err = werr
				break
			}
			lsn = l
		}
		applied++
	}
	wal := m.wal
	m.mu.Unlock()
	if wal != nil && lsn != 0 {
		if derr := wal.WaitDurable(lsn); derr != nil && err == nil {
			err = derr
		}
	}
	return applied, err
}

// ResetFromSnapshot discards all local state and reseeds from a
// primary snapshot at seq, then checkpoints so the local WAL drops its
// now-obsolete history.
func (m *Metadata) ResetFromSnapshot(snap metaSnapshot, seq uint64) error {
	m.mu.Lock()
	m.byMD5 = make(map[Sum]*FileMeta)
	m.byURL = make(map[string]*FileMeta)
	m.users = make(map[uint64]map[string]*FileMeta)
	m.links = make(map[string]int)
	m.tail = nil
	err := m.restoreLocked(snap)
	if err == nil {
		m.lastSeq = seq
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.Checkpoint()
}

// MetaWALStatus is the /meta/wal/status wire form, used by operators
// and the cluster smoke to check replication lag and durability.
type MetaWALStatus struct {
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	TailLen       int    `json:"tail_len"`
	Files         int    `json:"files"`
	Users         int    `json:"users"`
	Durable       bool   `json:"durable"`
	Standby       bool   `json:"standby"`
	Primary       string `json:"primary,omitempty"`
}

// WALStatus reports the durability/replication position.
func (m *Metadata) WALStatus() MetaWALStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := MetaWALStatus{
		LastSeq: m.lastSeq,
		TailLen: len(m.tail),
		Files:   len(m.byURL),
		Users:   len(m.users),
		Durable: m.wal != nil,
		Standby: m.standby,
		Primary: m.primary,
	}
	if m.wal != nil {
		st.CheckpointSeq = m.wal.Stats().CheckpointSeq
	}
	return st
}

// MetaStandby runs the standby's pull loop against the primary.
type MetaStandby struct {
	meta     *Metadata
	primary  string
	httpc    *http.Client
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	pulls   atomic.Int64
	applied atomic.Int64
	resets  atomic.Int64
	lag     atomic.Int64 // primary lastSeq - local lastSeq at last pull
	errs    atomic.Int64
}

// NewMetaStandby marks meta as a standby of primary and returns the
// pull loop (not yet started). interval is the idle poll period;
// while behind, the loop pulls back-to-back.
func NewMetaStandby(meta *Metadata, primary string, httpc *http.Client, interval time.Duration) *MetaStandby {
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	meta.SetStandby(primary)
	return &MetaStandby{
		meta:     meta,
		primary:  primary,
		httpc:    httpc,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the pull loop.
func (s *MetaStandby) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
			// Drain until caught up; errors wait for the next tick
			// (the primary is restarting — hammering won't help).
			for {
				behind, err := s.pullOnce()
				if err != nil {
					s.errs.Add(1)
					break
				}
				if !behind {
					break
				}
				select {
				case <-s.stop:
					return
				default:
				}
			}
		}
	}()
}

// Close stops the pull loop and waits for it to exit (idempotent).
func (s *MetaStandby) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// pullOnce fetches and applies one batch; behind reports whether the
// primary has more records than we now hold.
func (s *MetaStandby) pullOnce() (behind bool, err error) {
	req := MetaPullRequest{After: s.meta.LastSeq(), Limit: 1024}
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	hreq, err := http.NewRequest(http.MethodPost, s.primary+"/v1/meta/wal/pull", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(APIHeader, APIV1)
	hresp, err := s.httpc.Do(hreq)
	if err != nil {
		return false, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return false, decodeError(hresp)
	}
	var resp MetaPullResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return false, err
	}
	s.pulls.Add(1)
	switch {
	case resp.Snapshot != nil:
		if err := s.meta.ResetFromSnapshot(*resp.Snapshot, resp.SnapshotSeq); err != nil {
			return false, err
		}
		s.resets.Add(1)
	case len(resp.Records) > 0:
		n, err := s.meta.ApplyReplicated(resp.Records)
		s.applied.Add(int64(n))
		if err != nil {
			return false, err
		}
	}
	local := s.meta.LastSeq()
	lag := int64(0)
	if resp.LastSeq > local {
		lag = int64(resp.LastSeq - local)
	}
	s.lag.Store(lag)
	return lag > 0, nil
}

// Instrument registers the standby-side replication series.
func (s *MetaStandby) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("mcs_meta_standby_pulls_total", "Replication pull batches fetched from the primary.",
		func() float64 { return float64(s.pulls.Load()) })
	reg.CounterFunc("mcs_meta_standby_applied_total", "Replicated metadata records applied.",
		func() float64 { return float64(s.applied.Load()) })
	reg.CounterFunc("mcs_meta_standby_snapshot_resets_total", "Full-snapshot reseeds (standby fell behind the tail).",
		func() float64 { return float64(s.resets.Load()) })
	reg.CounterFunc("mcs_meta_standby_pull_errors_total", "Failed replication pulls (primary down or restarting).",
		func() float64 { return float64(s.errs.Load()) })
	reg.GaugeFunc("mcs_meta_standby_lag", "Records the standby trails the primary by (at last pull).",
		func() float64 { return float64(s.lag.Load()) })
}
