package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/tracing"
)

// Metadata replication: a standby node pulls committed WAL records
// from the primary over /v1/meta/wal/pull and applies them through the
// same applyRecordLocked path the primary used, so both hold identical
// state. A standby that is too far behind for the primary's in-memory
// tail (or is brand new) is reseeded with a full snapshot — the same
// codec the WAL checkpoint uses. The standby persists what it applies
// to its own WAL, so a promoted or restarted standby recovers exactly
// like a primary.
//
// Writes are rejected on the standby with a retryable 503 (see
// writeGuardLocked); reads are served from the replicated state. This
// is the metadata-plane counterpart of the chunk plane's replicated
// ring: the paper's metadata tier is a replicated database, and the
// request-cloning literature (PAPERS.md) shows a warm replica is what
// masks single-server failure from clients.

// MetaPullRequest asks the primary for every record after sequence
// After, bounded by Limit (default 1024). Epoch is the puller's
// current leadership term: a mismatch means the two nodes may not
// share history, so the primary answers with a snapshot (puller
// behind) or fences itself (puller ahead) instead of streaming
// records across a fork. WaitMS, when nonzero, lets the primary park
// the request until new records exist (long-poll) — this keeps the
// standby's replication ack one RTT behind the primary's appends,
// which is what makes semi-sync commit waits cheap.
type MetaPullRequest struct {
	After  uint64 `json:"after"`
	Limit  int    `json:"limit,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	WaitMS int    `json:"wait_ms,omitempty"`
}

// MetaPullResponse carries either a batch of records contiguous from
// After+1, or — when the primary's tail no longer reaches that far
// back, or the epochs diverge — a full snapshot to reseed from.
// LastSeq is the primary's newest sequence, so the standby knows
// whether to pull again immediately; Epoch is the primary's term,
// which the standby adopts.
type MetaPullResponse struct {
	LastSeq     uint64          `json:"last_seq"`
	Epoch       uint64          `json:"epoch,omitempty"`
	Records     []MetaWALRecord `json:"records,omitempty"`
	Snapshot    *metaSnapshot   `json:"snapshot,omitempty"`
	SnapshotSeq uint64          `json:"snapshot_seq,omitempty"`
}

// metaPullWaitCap bounds how long one long-poll pull may park.
const metaPullWaitCap = time.Second

// Pull serves one replication batch (primary side).
func (m *Metadata) Pull(req MetaPullRequest) MetaPullResponse {
	limit := req.Limit
	if limit <= 0 || limit > 4096 {
		limit = 1024
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	resp := MetaPullResponse{LastSeq: m.lastSeq, Epoch: m.epoch}
	if req.Epoch == m.epoch && req.After <= m.lastSeq {
		// The pull doubles as the replication ack and lease renewal —
		// but only at epoch parity with a plausible position; a forked
		// standby must not confirm sequences it holds from another
		// timeline.
		m.noteStandbyPull(req.After)
	}
	if req.Epoch != m.epoch {
		// Epoch divergence: the puller's history may be forked (e.g. a
		// deposed primary rejoining as a standby with writes the new
		// primary never saw). Streaming records could interleave two
		// timelines, so force a full reseed at our epoch.
		snap := m.snapshotLocked()
		resp.Snapshot = &snap
		resp.SnapshotSeq = m.lastSeq
		return resp
	}
	if req.After >= m.lastSeq {
		return resp // caught up
	}
	// The tail holds contiguous sequences ending at lastSeq; serve
	// from it when it reaches back to After+1.
	if n := len(m.tail); n > 0 && m.tail[0].Seq <= req.After+1 {
		start := int(req.After + 1 - m.tail[0].Seq)
		end := start + limit
		if end > n {
			end = n
		}
		resp.Records = append(resp.Records, m.tail[start:end]...)
		return resp
	}
	// Too far behind (or fresh): reseed with a snapshot.
	snap := m.snapshotLocked()
	resp.Snapshot = &snap
	resp.SnapshotSeq = m.lastSeq
	return resp
}

// notifyChan returns the channel closed on the next applied record.
func (m *Metadata) notifyChan() chan struct{} {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.notify
}

// PullWait is Pull with long-polling: when the puller is caught up and
// asked to wait, the request parks until a new record is applied, the
// wait cap lapses, or ctx is done. Grabbing the notify channel before
// the Pull closes the missed-wakeup window.
func (m *Metadata) PullWait(ctx context.Context, req MetaPullRequest) MetaPullResponse {
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > metaPullWaitCap {
		wait = metaPullWaitCap
	}
	deadline := time.Now().Add(wait)
	for {
		ch := m.notifyChan()
		resp := m.Pull(req)
		if len(resp.Records) > 0 || resp.Snapshot != nil || resp.LastSeq > req.After {
			return resp
		}
		remain := time.Until(deadline)
		if wait <= 0 || remain <= 0 || ctx.Err() != nil {
			return resp
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	}
}

// SetStandby marks this metadata server a read-only replica of
// primary. Mutations are rejected with a retryable 503 until
// promotion. Rejoining as a standby also clears the fenced flag: the
// node has stopped claiming leadership, so there is nothing left to
// fence (fencedBy is kept, so a later promotion still jumps above
// every epoch this node has seen).
func (m *Metadata) SetStandby(primary string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.standby = true
	m.primary = primary
	m.fenced = false
}

// setPuller registers the pull loop feeding this standby, so
// promotion can stop it synchronously.
func (m *Metadata) setPuller(p interface{ Close() }) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puller = p
}

// Promote is the operator-facing manual promotion; errors (which can
// only come from persisting the fence record) leave the node fenced
// rather than half-promoted. See PromoteEpoch.
func (m *Metadata) Promote() {
	_ = m.PromoteEpoch()
}

// PromoteEpoch makes this node the primary for a new, higher epoch:
//
//  1. The registered pull loop is stopped synchronously — after this
//     returns, no in-flight ApplyReplicated batch can land after local
//     writes resume (the race the old flag-flip Promote had).
//  2. The epoch is bumped above both this node's own term and every
//     remote epoch it has observed, and a walOpEpoch fence record is
//     written through the normal log-apply path and fsynced. The new
//     term is durable before the first write is accepted, so even a
//     promote-then-crash sequence recovers into the new epoch.
//
// The node stops being a standby and unfences itself; every record it
// writes from here carries the new epoch, which is what fences the old
// primary when they next share a client or a pull.
func (m *Metadata) PromoteEpoch() error {
	m.mu.Lock()
	p := m.puller
	m.puller = nil
	m.mu.Unlock()
	if p != nil {
		// Outside the lock: the pull loop's ApplyReplicated needs mu to
		// finish the batch Close waits on.
		p.Close()
	}
	m.mu.Lock()
	m.standby = false
	m.primary = ""
	m.fenced = false
	if m.fencedBy > m.epoch {
		m.epoch = m.fencedBy
	}
	m.epoch++
	m.fencedBy = 0
	rec := MetaWALRecord{Op: walOpEpoch}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.waitDurable(context.Background(), lsn, rec.Seq)
}

// ApplyReplicated applies a contiguous batch of records pulled from
// the primary: mutate through the shared apply path, buffer for
// further replication, append to the local WAL, and wait once for
// durability at the end of the batch. Records at or below the current
// sequence are skipped (the pull raced an earlier apply); a sequence
// gap aborts the batch so the caller can re-pull.
func (m *Metadata) ApplyReplicated(recs []MetaWALRecord) (applied int, err error) {
	var lsn int64
	m.mu.Lock()
	if !m.standby {
		// A batch arriving after promotion (or aimed at a node that was
		// never a standby) must not interleave with local writes — the
		// sequences would collide and the catalogs fork.
		m.mu.Unlock()
		return 0, errNotStandby
	}
	for i := range recs {
		rec := recs[i]
		if rec.Seq <= m.lastSeq {
			continue
		}
		if rec.Seq != m.lastSeq+1 {
			err = fmt.Errorf("storage: meta replicate: sequence gap: have %d, got %d", m.lastSeq, rec.Seq)
			break
		}
		if aerr := m.applyRecordLocked(&rec); aerr != nil {
			err = aerr
			break
		}
		m.lastSeq = rec.Seq
		m.tailAppendLocked(rec)
		if m.wal != nil {
			l, werr := m.wal.Append(&rec)
			if werr != nil {
				err = werr
				break
			}
			lsn = l
		}
		applied++
	}
	wal := m.wal
	m.mu.Unlock()
	if wal != nil && lsn != 0 {
		if derr := wal.WaitDurable(lsn); derr != nil && err == nil {
			err = derr
		}
	}
	return applied, err
}

// errNotStandby rejects replicated batches on a node that is not (or
// no longer) a standby.
var errNotStandby = fmt.Errorf("storage: meta replicate: node is not a standby")

// ResetFromSnapshot discards all local state and reseeds from a
// primary snapshot at seq under the primary's epoch, then checkpoints
// so the local WAL drops its now-obsolete (possibly forked) history.
func (m *Metadata) ResetFromSnapshot(snap metaSnapshot, seq, epoch uint64) error {
	m.mu.Lock()
	m.byMD5 = make(map[Sum]*FileMeta)
	m.byURL = make(map[string]*FileMeta)
	m.users = make(map[uint64]map[string]*FileMeta)
	m.links = make(map[string]int)
	m.tail = nil
	err := m.restoreLocked(snap)
	if err == nil {
		m.lastSeq = seq
		if epoch > m.epoch {
			m.epoch = epoch
		}
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.Checkpoint()
}

// MetaWALStatus is the /meta/wal/status wire form, used by operators
// and the cluster smoke to check replication lag and durability.
type MetaWALStatus struct {
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	TailLen       int    `json:"tail_len"`
	Files         int    `json:"files"`
	Users         int    `json:"users"`
	Durable       bool   `json:"durable"`
	Standby       bool   `json:"standby"`
	Primary       string `json:"primary,omitempty"`
	// Epoch is the node's leadership term; Fenced marks a deposed
	// primary that rejects writes. Together with Standby these are what
	// clients use to discover the current primary: the non-standby,
	// non-fenced node with the highest epoch.
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced,omitempty"`
	// ReplAckSeq is the highest sequence the attached standby has
	// acknowledged; SyncStandby reports whether one is attached (writes
	// wait for its ack before being acknowledged).
	ReplAckSeq  uint64 `json:"repl_ack_seq,omitempty"`
	SyncStandby bool   `json:"sync_standby,omitempty"`
	// Shard is the user-hash range this node owns; MapVersion the
	// shard-map version it owns it under (0 = unsharded).
	Shard      int    `json:"shard"`
	MapVersion uint64 `json:"map_version,omitempty"`
}

// WALStatus reports the durability/replication/leadership position.
func (m *Metadata) WALStatus() MetaWALStatus {
	m.mu.RLock()
	st := MetaWALStatus{
		LastSeq: m.lastSeq,
		TailLen: len(m.tail),
		Files:   len(m.byURL),
		Users:   len(m.users),
		Durable: m.wal != nil,
		Standby: m.standby,
		Primary: m.primary,
		Epoch:   m.epoch,
		Fenced:  m.fenced,
		Shard:   m.shardID,
	}
	if m.shardMap != nil {
		st.MapVersion = m.shardMap.Version
	}
	if m.wal != nil {
		st.CheckpointSeq = m.wal.Stats().CheckpointSeq
	}
	m.mu.RUnlock()
	m.replMu.Lock()
	st.ReplAckSeq = m.replSeq
	st.SyncStandby = !m.replSeen.IsZero()
	m.replMu.Unlock()
	return st
}

// MetaStandby runs the standby's pull loop against the primary. With
// a failover lease configured (SetFailover), every successful pull
// renews the lease; when pulls have failed for longer than the TTL the
// standby concludes the primary is dead, checks its rivals have not
// already promoted, and promotes itself under a new epoch.
type MetaStandby struct {
	meta     *Metadata
	httpc    *http.Client
	interval time.Duration

	mu      sync.Mutex
	primary string
	stop    chan struct{}
	done    chan struct{}
	closed  bool
	lastOK  time.Time // last successful pull = last lease renewal
	// Failover config: leaseTTL 0 keeps promotion manual. rivals are
	// other metadata nodes consulted before promoting, so two standbys
	// racing for the same dead primary resolve on epoch/position
	// instead of both winning.
	leaseTTL time.Duration
	rivals   []string

	tracer *tracing.Tracer
	logf   func(format string, args ...interface{})

	contacted atomic.Bool // at least one successful pull ever

	pulls      atomic.Int64
	applied    atomic.Int64
	resets     atomic.Int64
	lag        atomic.Int64 // primary lastSeq - local lastSeq at last pull
	errs       atomic.Int64
	promotions atomic.Int64
	aborts     atomic.Int64 // promotions abandoned to a winning rival
}

// NewMetaStandby marks meta as a standby of primary and returns the
// pull loop (not yet started). interval is the error backoff period;
// while the primary is reachable the loop long-polls back-to-back.
// The loop registers itself as meta's puller, so PromoteEpoch stops it
// synchronously.
func NewMetaStandby(meta *Metadata, primary string, httpc *http.Client, interval time.Duration) *MetaStandby {
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	meta.SetStandby(primary)
	s := &MetaStandby{
		meta:     meta,
		primary:  primary,
		httpc:    httpc,
		interval: interval,
	}
	meta.setPuller(s)
	return s
}

// SetFailover arms automatic promotion: when every pull inside ttl
// fails, the standby self-promotes (after losing to any rival that
// promoted first). rivals are the other metadata nodes' base URLs.
func (s *MetaStandby) SetFailover(ttl time.Duration, rivals ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.leaseTTL = ttl
	s.rivals = append([]string(nil), rivals...)
}

// SetTracer attaches a tracer for lease-renew/expiry/promotion spans.
func (s *MetaStandby) SetTracer(tr *tracing.Tracer) { s.tracer = tr }

// SetLogf attaches a logger for failover transitions.
func (s *MetaStandby) SetLogf(f func(format string, args ...interface{})) { s.logf = f }

func (s *MetaStandby) logFailover(format string, args ...interface{}) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// Start launches the pull loop (idempotent with Close; a closed
// standby does not restart).
func (s *MetaStandby) Start() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.lastOK = time.Now() // the lease starts now, not at epoch zero
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		promote := s.loop(stop)
		close(done)
		if promote {
			s.finishPromotion()
		}
	}()
}

// loop pulls until stopped; it returns true when the lease expired and
// the standby should promote (after the done channel closes, so the
// promotion's synchronous puller stop cannot deadlock on this
// goroutine).
func (s *MetaStandby) loop(stop chan struct{}) bool {
	for {
		select {
		case <-stop:
			return false
		default:
		}
		behind, err := s.pullOnce()
		if err != nil {
			s.errs.Add(1)
			if s.leaseExpired() {
				if s.contacted.Load() || s.meta.LastSeq() > 0 {
					return true
				}
				// Never reached the primary and holding nothing: there
				// is no state worth promoting; keep trying instead of
				// becoming an empty primary.
			}
			select {
			case <-stop:
				return false
			case <-time.After(s.interval):
			}
			continue
		}
		s.markRenewed(behind)
	}
}

// leaseExpired reports whether pulls have been failing past the TTL.
func (s *MetaStandby) leaseExpired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaseTTL > 0 && time.Since(s.lastOK) > s.leaseTTL
}

// markRenewed records a successful pull as a lease renewal.
func (s *MetaStandby) markRenewed(behind bool) {
	s.contacted.Store(true)
	s.mu.Lock()
	s.lastOK = time.Now()
	s.mu.Unlock()
	if tr := s.tracer; tr != nil {
		sp := tr.StartRoot(tracing.CompMeta, tracing.SpanLeaseRenew)
		sp.AnnotateInt("lag", s.lag.Load())
		if behind {
			sp.Annotate("behind", "true")
		}
		sp.End()
	}
}

// LeaseAge returns how long ago the lease was last renewed.
func (s *MetaStandby) LeaseAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Since(s.lastOK)
}

// finishPromotion runs after the pull loop has exited with an expired
// lease: consult rivals, then either promote under a new epoch or
// retarget the loop at the rival that won.
func (s *MetaStandby) finishPromotion() {
	s.mu.Lock()
	age, primary := time.Since(s.lastOK), s.primary
	s.mu.Unlock()
	var expired *tracing.Span
	if tr := s.tracer; tr != nil {
		expired = tr.StartRoot(tracing.CompMeta, tracing.SpanLeaseExpired)
		expired.Annotate("primary", primary)
		expired.AnnotateInt("age_ms", age.Milliseconds())
	}
	expired.End()
	s.logFailover("meta failover: lease on %s expired (%v since last pull)", primary, age.Round(time.Millisecond))

	if winner, ok := s.rivalWon(); ok {
		s.aborts.Add(1)
		s.logFailover("meta failover: aborting promotion, %s already took over; rejoining as its standby", winner)
		// The winner is the new primary: pull from it instead. Start
		// re-arms stop/done, and SetStandby re-marks the node.
		s.meta.SetStandby(winner)
		s.meta.setPuller(s)
		s.mu.Lock()
		s.primary = winner
		s.mu.Unlock()
		s.Start()
		return
	}

	sp := (*tracing.Span)(nil)
	if tr := s.tracer; tr != nil {
		sp = tr.StartRoot(tracing.CompMeta, tracing.SpanPromote)
	}
	err := s.meta.PromoteEpoch()
	if sp != nil {
		sp.AnnotateInt("epoch", int64(s.meta.Epoch()))
		sp.EndErr(err)
	}
	if err != nil {
		s.logFailover("meta failover: promotion failed: %v", err)
		return
	}
	s.promotions.Add(1)
	s.logFailover("meta failover: promoted to primary at epoch %d (last seq %d)", s.meta.Epoch(), s.meta.LastSeq())
}

// rivalWon asks each rival for its WAL status; a live non-standby
// rival at our epoch or above has already promoted (or never died), so
// this standby must not. A standby rival that is strictly more caught
// up also wins — it will promote and we would lose acked records.
func (s *MetaStandby) rivalWon() (winner string, ok bool) {
	s.mu.Lock()
	rivals := append([]string(nil), s.rivals...)
	s.mu.Unlock()
	localEpoch, localSeq := s.meta.Epoch(), s.meta.LastSeq()
	for _, r := range rivals {
		st, err := fetchWALStatus(s.httpc, r)
		if err != nil {
			continue // unreachable rivals don't vote
		}
		if !st.Standby && !st.Fenced && st.Epoch >= localEpoch {
			return r, true
		}
		if st.Standby && st.LastSeq > localSeq {
			return "", true // more caught-up standby should win; stay put
		}
	}
	return "", false
}

// fetchWALStatus reads a metadata node's /v1/meta/wal/status.
func fetchWALStatus(httpc *http.Client, base string) (MetaWALStatus, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/meta/wal/status", nil)
	if err != nil {
		return MetaWALStatus{}, err
	}
	req.Header.Set(APIHeader, APIV1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := httpc.Do(req.WithContext(ctx))
	if err != nil {
		return MetaWALStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetaWALStatus{}, decodeError(resp)
	}
	var st MetaWALStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return MetaWALStatus{}, err
	}
	return st, nil
}

// Close stops the pull loop and waits for it to exit (idempotent).
// After Close the standby never restarts, even from an in-flight
// promotion abort.
func (s *MetaStandby) Close() {
	s.mu.Lock()
	stop, done, was := s.stop, s.done, s.closed
	s.closed = true
	s.mu.Unlock()
	if !was && stop != nil {
		close(stop)
	}
	if done != nil {
		<-done
	}
}

// pullOnce fetches and applies one batch; behind reports whether the
// primary has more records than we now hold. The request long-polls —
// the primary parks it until records exist — so acks flow back within
// one RTT of every append.
func (s *MetaStandby) pullOnce() (behind bool, err error) {
	s.mu.Lock()
	primary := s.primary
	s.mu.Unlock()
	wait := 4 * s.interval
	if wait > metaPullWaitCap {
		wait = metaPullWaitCap
	}
	req := MetaPullRequest{
		After:  s.meta.LastSeq(),
		Limit:  1024,
		Epoch:  s.meta.Epoch(),
		WaitMS: int(wait / time.Millisecond),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	hreq, err := http.NewRequest(http.MethodPost, primary+"/v1/meta/wal/pull", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(APIHeader, APIV1)
	hresp, err := s.httpc.Do(hreq)
	if err != nil {
		return false, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return false, decodeError(hresp)
	}
	var resp MetaPullResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return false, err
	}
	if resp.Epoch < s.meta.Epoch() {
		// A primary behind our epoch is a deposed one still answering;
		// applying its stream would fork us backwards.
		return false, fmt.Errorf("%w: pull source at epoch %d is behind local epoch %d", ErrFenced, resp.Epoch, s.meta.Epoch())
	}
	s.pulls.Add(1)
	switch {
	case resp.Snapshot != nil:
		if err := s.meta.ResetFromSnapshot(*resp.Snapshot, resp.SnapshotSeq, resp.Epoch); err != nil {
			return false, err
		}
		s.resets.Add(1)
	case len(resp.Records) > 0:
		n, err := s.meta.ApplyReplicated(resp.Records)
		s.applied.Add(int64(n))
		if err != nil {
			return false, err
		}
	}
	local := s.meta.LastSeq()
	lag := int64(0)
	if resp.LastSeq > local {
		lag = int64(resp.LastSeq - local)
	}
	s.lag.Store(lag)
	return lag > 0, nil
}

// Instrument registers the standby-side replication series, labeled
// with the shard the standby replicates (call after the metadata
// node's SetShard).
func (s *MetaStandby) Instrument(reg *metrics.Registry) {
	shard := []string{"shard", strconv.Itoa(s.meta.ShardID())}
	reg.CounterFunc("mcs_meta_standby_pulls_total", "Replication pull batches fetched from the primary.",
		func() float64 { return float64(s.pulls.Load()) }, shard...)
	reg.CounterFunc("mcs_meta_standby_applied_total", "Replicated metadata records applied.",
		func() float64 { return float64(s.applied.Load()) }, shard...)
	reg.CounterFunc("mcs_meta_standby_snapshot_resets_total", "Full-snapshot reseeds (standby fell behind the tail).",
		func() float64 { return float64(s.resets.Load()) }, shard...)
	reg.CounterFunc("mcs_meta_standby_pull_errors_total", "Failed replication pulls (primary down or restarting).",
		func() float64 { return float64(s.errs.Load()) }, shard...)
	reg.GaugeFunc("mcs_meta_standby_lag", "Records the standby trails the primary by (at last pull).",
		func() float64 { return float64(s.lag.Load()) }, shard...)
	reg.CounterFunc("mcs_meta_standby_promotions_total", "Automatic promotions performed after lease expiry.",
		func() float64 { return float64(s.promotions.Load()) }, shard...)
	reg.CounterFunc("mcs_meta_standby_promote_aborts_total", "Promotions abandoned because a rival had already taken over.",
		func() float64 { return float64(s.aborts.Load()) }, shard...)
	reg.GaugeFunc("mcs_meta_standby_lease_age_seconds", "Seconds since the last successful pull renewed the primary lease.",
		func() float64 { return s.LeaseAge().Seconds() }, shard...)
}
