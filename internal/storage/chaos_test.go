package storage

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mcloud/internal/faults"
	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/session"
	"mcloud/internal/trace"
)

// chaosScenario is the fixed ~10% disruptive-fault mix used by the
// end-to-end chaos tests: every decision is a pure function of the
// seed, so these runs are bit-reproducible.
var chaosScenario = faults.Scenario{
	Name:          "e2e",
	Seed:          7,
	ErrorRate:     0.05,
	ResetRate:     0.03,
	TruncateRate:  0.02,
	TruncateAfter: 200,
}

// chaosService builds a full service with fault-injection middleware on
// both the front-end and the metadata server, plus a resilient client.
// Keep-alives are disabled so connection-pool races cannot perturb the
// server-side request order.
func chaosService(t *testing.T, sc faults.Scenario, reg *metrics.Registry) (*Client, *Collector, *faults.Injector, func()) {
	t.Helper()
	store := NewMemStore()
	col := &Collector{}
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta, Sink: col})

	injFE := faults.New(sc.Derive("frontend"))
	injMeta := faults.New(sc.Derive("meta"))
	if reg != nil {
		injFE.Instrument(reg, "frontend")
		injMeta.Instrument(reg, "meta")
	}
	feSrv := httptest.NewServer(injFE.Middleware(fe.Handler()))
	metaSrv := httptest.NewServer(injMeta.Middleware(meta.Handler()))
	meta.AddFrontEnd(feSrv.URL)

	pol := fastRetry
	pol.MaxAttempts = 6
	pol.Budget = 256
	client := &Client{
		MetaURL:    metaSrv.URL,
		UserID:     42,
		DeviceID:   7,
		Device:     trace.Android,
		Retry:      &pol,
		RetrySeed:  sc.Seed,
		MaxResumes: 6,
		// Sequential transfers: the deterministic-fault-sequence test
		// needs a reproducible server-side request order. Concurrency
		// is chaos-tested separately (see chaos_parallel_test.go).
		Parallel: 1,
		HTTP:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	cleanup := func() {
		feSrv.Close()
		metaSrv.Close()
	}
	return client, col, injFE, cleanup
}

// TestChaosStoreRetrieveInvariant is the headline robustness check:
// under ~10% injected faults on every service path, each store the
// service ACKNOWLEDGES must retrieve byte-identical, the request log
// must still support session analysis, and the injected faults and
// client retries must be visible in the metrics exposition.
func TestChaosStoreRetrieveInvariant(t *testing.T) {
	reg := metrics.NewRegistry()
	client, col, injFE, cleanup := chaosService(t, chaosScenario, reg)
	defer cleanup()
	client.Metrics = NewClientMetrics(reg)

	clock := time.Date(2015, 8, 4, 9, 0, 0, 0, time.UTC)
	client.SimClock = func() time.Time { return clock }

	src := randx.New(99)
	type storedFile struct {
		url  string
		data []byte
	}
	var files []storedFile
	const want = 12
	for i := 0; i < want; i++ {
		n := ChunkSize + 1 + src.Intn(ChunkSize) // always 2 chunks
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(src.Uint64())
		}
		res, err := client.StoreFile(fmt.Sprintf("c%d.bin", i), data)
		if err != nil {
			// An unacknowledged store may fail under chaos; the invariant
			// covers acknowledged ones only.
			t.Logf("store %d not acknowledged: %v", i, err)
			continue
		}
		files = append(files, storedFile{res.URL, data})
		clock = clock.Add(20 * time.Second)
	}
	if len(files) < want-2 {
		t.Fatalf("only %d/%d stores acknowledged; retry machinery too weak for the fault rate", len(files), want)
	}

	// Two virtual hours later, a retrieve-only session reads everything
	// back — still through the fault injectors.
	clock = clock.Add(2 * time.Hour)
	for i, f := range files {
		var data []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if data, err = client.RetrieveFile(f.url); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("acknowledged file %d unavailable: %v", i, err)
		}
		if !bytes.Equal(data, f.data) {
			t.Fatalf("acknowledged file %d corrupted after chaos run", i)
		}
		clock = clock.Add(10 * time.Second)
	}

	// The run must actually have been chaotic.
	if injFE.Injected() == 0 {
		t.Error("no faults injected at the front-end; scenario inert")
	}
	st := client.Metrics.Stats()
	if st.Retries == 0 {
		t.Error("no client retries recorded under a 10% fault rate")
	}

	// The request log still yields the scripted session structure.
	id := session.NewIdentifier(time.Hour)
	for _, l := range col.Logs() {
		id.Add(l)
	}
	sessions := id.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("identified %d sessions, want 2 (store + retrieve)", len(sessions))
	}
	if sessions[0].Class() != session.StoreOnly {
		t.Errorf("session 1 class = %v, want store-only", sessions[0].Class())
	}
	if sessions[1].Class() != session.RetrieveOnly {
		t.Errorf("session 2 class = %v, want retrieve-only", sessions[1].Class())
	}

	// Faults, sheds and retries are scrapable.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"mcs_faults_injected_total",
		"mcs_faults_requests_total",
		"mcs_client_retries_total",
		"mcs_client_retry_success_ratio",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}

// TestChaosDeterministicFaultSequence replays the identical workload
// twice against fresh services with the same scenario seed and demands
// the bit-identical fault-kind sequence — the property that makes a
// chaos failure reproducible from its seed alone.
func TestChaosDeterministicFaultSequence(t *testing.T) {
	run := func() []faults.Kind {
		client, _, injFE, cleanup := chaosService(t, chaosScenario, nil)
		defer cleanup()

		var mu sync.Mutex
		var kinds []faults.Kind
		injFE.OnDecision = func(d faults.Decision) {
			mu.Lock()
			kinds = append(kinds, d.Kind)
			mu.Unlock()
		}

		src := randx.New(4242)
		var urls []string
		for i := 0; i < 6; i++ {
			data := make([]byte, ChunkSize+1+src.Intn(1000))
			for j := range data {
				data[j] = byte(src.Uint64())
			}
			res, err := client.StoreFile(fmt.Sprintf("d%d.bin", i), data)
			if err != nil {
				continue
			}
			urls = append(urls, res.URL)
		}
		for _, u := range urls {
			client.RetrieveFile(u) // outcome checked by the invariant test
		}
		mu.Lock()
		defer mu.Unlock()
		return kinds
	}

	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault sequences diverge across identically-seeded runs:\n run 1: %v\n run 2: %v", first, second)
	}
	injected := 0
	for _, k := range first {
		if k != faults.None {
			injected++
		}
	}
	if injected == 0 {
		t.Error("deterministic run injected nothing; scenario inert")
	}
}
