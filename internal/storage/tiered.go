package storage

import (
	"sync"
	"time"
)

// TieredStore implements the cold/warm split the paper recommends for
// a backup-dominated workload (§3.2.2, citing Facebook's f4): objects
// land in the hot tier and migrate to a cheaper cold tier once they
// have not been read for ColdAfter; a read of a cold chunk promotes it
// back. The store tracks the byte-hours spent in each tier so the
// cost benefit can be quantified against per-tier prices.
type TieredStore struct {
	hot, cold ChunkStore
	coldAfter time.Duration
	now       func() time.Time

	mu        sync.Mutex
	lastRead  map[Sum]time.Time
	placedHot map[Sum]bool
	sizes     map[Sum]int64

	tstats TierStats
}

// TierStats reports tiering behaviour and accumulated occupancy.
type TierStats struct {
	Demotions  int64
	Promotions int64
	ColdReads  int64
	HotReads   int64
	// Byte-hours accumulated by chunks resident in each tier; cost is
	// byteHours x per-tier price. Updated on Migrate and on reads.
	HotByteHours  float64
	ColdByteHours float64
}

// NewTieredStore combines a hot and a cold store. coldAfter is the
// idle period after which a chunk is demoted (the paper's finding —
// over 80% of uploads unread after a week — makes even 1-2 days
// effective).
func NewTieredStore(hot, cold ChunkStore, coldAfter time.Duration, now func() time.Time) *TieredStore {
	if now == nil {
		now = time.Now
	}
	return &TieredStore{
		hot: hot, cold: cold,
		coldAfter: coldAfter,
		now:       now,
		lastRead:  make(map[Sum]time.Time),
		placedHot: make(map[Sum]bool),
		sizes:     make(map[Sum]int64),
	}
}

// Put stores into the hot tier.
func (t *TieredStore) Put(sum Sum, data []byte) error {
	if err := t.hot.Put(sum, data); err != nil {
		return err
	}
	t.mu.Lock()
	if _, ok := t.sizes[sum]; !ok {
		t.sizes[sum] = int64(len(data))
		t.lastRead[sum] = t.now()
		t.placedHot[sum] = true
	}
	t.mu.Unlock()
	return nil
}

// Get reads from whichever tier holds the chunk, promoting cold hits.
func (t *TieredStore) Get(sum Sum) ([]byte, error) {
	t.mu.Lock()
	hot, known := t.placedHot[sum], true
	if _, ok := t.sizes[sum]; !ok {
		known = false
	}
	t.mu.Unlock()
	if !known {
		return nil, ErrNotFound
	}

	if hot {
		data, err := t.hot.Get(sum)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		t.tstats.HotReads++
		t.lastRead[sum] = t.now()
		t.mu.Unlock()
		return data, nil
	}

	data, err := t.cold.Get(sum)
	if err != nil {
		return nil, err
	}
	// Promote: the user is active on this content again.
	if err := t.hot.Put(sum, data); err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.tstats.ColdReads++
	t.tstats.Promotions++
	t.placedHot[sum] = true
	t.lastRead[sum] = t.now()
	t.mu.Unlock()
	return data, nil
}

// Has implements ChunkStore.
func (t *TieredStore) Has(sum Sum) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sizes[sum]
	return ok
}

// Stats returns the hot tier's counters (ingest accounting).
func (t *TieredStore) Stats() StoreStats { return t.hot.Stats() }

// Migrate demotes every hot chunk idle for longer than coldAfter and
// accrues tier byte-hours up to now. Call it periodically (the service
// would run it as a background job). It returns the number demoted.
func (t *TieredStore) Migrate() (int, error) {
	t.mu.Lock()
	now := t.now()
	var demote []Sum
	for sum, hot := range t.placedHot {
		if hot && now.Sub(t.lastRead[sum]) > t.coldAfter {
			demote = append(demote, sum)
		}
	}
	t.mu.Unlock()

	for _, sum := range demote {
		data, err := t.hot.Get(sum)
		if err != nil {
			return 0, err
		}
		if err := t.cold.Put(sum, data); err != nil {
			return 0, err
		}
		if d, ok := t.hot.(interface{ Delete(Sum) error }); ok {
			if err := d.Delete(sum); err != nil && err != ErrNotFound {
				return 0, err
			}
		}
		t.mu.Lock()
		t.placedHot[sum] = false
		t.tstats.Demotions++
		t.mu.Unlock()
	}
	return len(demote), nil
}

// AccrueOccupancy adds dt of residency to the tier byte-hour counters
// for every chunk (the simulation clock advances in steps).
func (t *TieredStore) AccrueOccupancy(dt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	hours := dt.Hours()
	for sum, hot := range t.placedHot {
		bh := float64(t.sizes[sum]) * hours
		if hot {
			t.tstats.HotByteHours += bh
		} else {
			t.tstats.ColdByteHours += bh
		}
	}
}

// TierStats returns a snapshot.
func (t *TieredStore) TierStats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tstats
}

// Cost evaluates storage cost given per-tier prices in arbitrary
// units per byte-hour.
func (s TierStats) Cost(hotPrice, coldPrice float64) float64 {
	return s.HotByteHours*hotPrice + s.ColdByteHours*coldPrice
}

// HotOnlyCost is the counterfactual of keeping everything hot.
func (s TierStats) HotOnlyCost(hotPrice float64) float64 {
	return (s.HotByteHours + s.ColdByteHours) * hotPrice
}
