package storage

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// TieredStore implements the cold/warm split the paper recommends for
// a backup-dominated workload (§3.2.2, citing Facebook's f4): objects
// land in the hot tier and migrate to a cheaper cold tier once they
// have not been read for ColdAfter; a read of a cold chunk promotes it
// back. The store tracks the byte-hours spent in each tier so the
// cost benefit can be quantified against per-tier prices.
//
// Placement state is sharded by digest like MemStore, so tier
// bookkeeping does not serialize concurrent chunk traffic.
type TieredStore struct {
	hot, cold ChunkStore
	coldAfter time.Duration
	now       func() time.Time

	shards []tierShard
	mask   uint32

	// Ingest accounting owned by the tiered view itself, so Stats()
	// reflects the logical store across both tiers and is not skewed
	// by migration traffic hitting the per-tier counters.
	puts        atomic.Int64
	dedupHits   atomic.Int64
	bytesStored atomic.Int64
	chunks      atomic.Int64
	bytes       atomic.Int64
}

type tierShard struct {
	mu        sync.Mutex
	lastRead  map[Sum]time.Time
	placedHot map[Sum]bool
	sizes     map[Sum]int64
	tstats    TierStats
}

// TierStats reports tiering behaviour and accumulated occupancy.
type TierStats struct {
	Demotions  int64
	Promotions int64
	ColdReads  int64
	HotReads   int64
	// Byte-hours accumulated by chunks resident in each tier; cost is
	// byteHours x per-tier price. Updated on Migrate and on reads.
	HotByteHours  float64
	ColdByteHours float64
}

// NewTieredStore combines a hot and a cold store. coldAfter is the
// idle period after which a chunk is demoted (the paper's finding —
// over 80% of uploads unread after a week — makes even 1-2 days
// effective).
func NewTieredStore(hot, cold ChunkStore, coldAfter time.Duration, now func() time.Time) *TieredStore {
	if now == nil {
		now = time.Now
	}
	n := defaultShards()
	t := &TieredStore{
		hot: hot, cold: cold,
		coldAfter: coldAfter,
		now:       now,
		shards:    make([]tierShard, n),
		mask:      uint32(n - 1),
	}
	for i := range t.shards {
		t.shards[i].lastRead = make(map[Sum]time.Time)
		t.shards[i].placedHot = make(map[Sum]bool)
		t.shards[i].sizes = make(map[Sum]int64)
	}
	return t
}

func (t *TieredStore) shardIndex(sum Sum) uint32 {
	return binary.LittleEndian.Uint32(sum[:4]) & t.mask
}

func (t *TieredStore) shard(sum Sum) *tierShard {
	return &t.shards[t.shardIndex(sum)]
}

// Put stores into the hot tier. A Put whose content is already known
// to either tier is a dedup hit and touches neither backing store, so
// re-uploading a demoted chunk does not resurrect an unaccounted hot
// copy.
func (t *TieredStore) Put(sum Sum, data []byte) error {
	return t.PutCtx(context.Background(), sum, data)
}

// PutCtx implements CtxStore, forwarding the trace context to the
// backing tier (the tier bookkeeping itself is memory-speed).
func (t *TieredStore) PutCtx(ctx context.Context, sum Sum, data []byte) error {
	if SumBytes(data) != sum {
		return errBadDigest
	}
	t.puts.Add(1)
	t.bytesStored.Add(int64(len(data)))

	s := t.shard(sum)
	s.mu.Lock()
	_, known := s.sizes[sum]
	s.mu.Unlock()
	if known {
		t.dedupHits.Add(1)
		return nil
	}

	if err := PutCtx(ctx, t.hot, sum, data); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.sizes[sum]; !ok {
		s.sizes[sum] = int64(len(data))
		s.lastRead[sum] = t.now()
		s.placedHot[sum] = true
		t.chunks.Add(1)
		t.bytes.Add(int64(len(data)))
	} else {
		// Raced with an identical Put that registered first.
		t.dedupHits.Add(1)
	}
	s.mu.Unlock()
	return nil
}

// Get reads from whichever tier holds the chunk, promoting cold hits.
func (t *TieredStore) Get(sum Sum) ([]byte, error) {
	return t.GetCtx(context.Background(), sum)
}

// GetCtx implements CtxStore, forwarding the trace context to
// whichever tier serves the read.
func (t *TieredStore) GetCtx(ctx context.Context, sum Sum) ([]byte, error) {
	s := t.shard(sum)
	s.mu.Lock()
	hot := s.placedHot[sum]
	_, known := s.sizes[sum]
	s.mu.Unlock()
	if !known {
		return nil, ErrNotFound
	}

	if hot {
		data, err := GetCtx(ctx, t.hot, sum)
		if err == nil {
			s.mu.Lock()
			s.tstats.HotReads++
			s.lastRead[sum] = t.now()
			s.mu.Unlock()
			return data, nil
		}
		if err != ErrNotFound {
			return nil, err
		}
		// A concurrent Migrate demoted the chunk between our placement
		// check and the hot read; fall through to the cold tier.
	}

	data, err := GetCtx(ctx, t.cold, sum)
	if err != nil {
		return nil, err
	}
	// Promote: the user is active on this content again.
	if err := PutCtx(ctx, t.hot, sum, data); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tstats.ColdReads++
	s.tstats.Promotions++
	s.placedHot[sum] = true
	s.lastRead[sum] = t.now()
	s.mu.Unlock()
	return data, nil
}

// GetReaderCtx implements ReaderStore: a hot-placed chunk streams
// through the hot tier's own reader (pin-counted and zero-copy when
// that tier is a DiskStore), updating the read-recency bookkeeping
// exactly like GetCtx. Cold hits take the materializing GetCtx path
// so promotion still happens, then serve the promoted bytes.
func (t *TieredStore) GetReaderCtx(ctx context.Context, sum Sum) (*ChunkReader, error) {
	s := t.shard(sum)
	s.mu.Lock()
	hot := s.placedHot[sum]
	_, known := s.sizes[sum]
	s.mu.Unlock()
	if !known {
		return nil, ErrNotFound
	}
	if hot {
		rd, err := GetReader(ctx, t.hot, sum)
		if err == nil {
			s.mu.Lock()
			s.tstats.HotReads++
			s.lastRead[sum] = t.now()
			s.mu.Unlock()
			return rd, nil
		}
		if err != ErrNotFound {
			return nil, err
		}
		// Demoted between the placement check and the hot read; the
		// GetCtx below finds it in the cold tier.
	}
	data, err := t.GetCtx(ctx, sum)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(data), nil
}

// Has implements ChunkStore.
func (t *TieredStore) Has(sum Sum) bool {
	s := t.shard(sum)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[sum]
	return ok
}

// Stats aggregates the logical store across both tiers: unique chunks
// and bytes are whatever the placement maps track (each chunk counts
// once, whichever tier holds it), and the Put counters are the tiered
// store's own ingest accounting — migration and promotion copies do
// not inflate them.
func (t *TieredStore) Stats() StoreStats {
	return StoreStats{
		Chunks:      int(t.chunks.Load()),
		Bytes:       t.bytes.Load(),
		Puts:        t.puts.Load(),
		DedupHits:   t.dedupHits.Load(),
		BytesStored: t.bytesStored.Load(),
	}
}

// Migrate demotes every hot chunk idle for longer than coldAfter and
// accrues tier byte-hours up to now. Call it periodically (the service
// would run it as a background job). It returns the number demoted.
//
// Each demotion is atomic with respect to the shard state: the idle
// check is re-run under the shard lock (a concurrent Get may have
// refreshed lastRead since the candidate scan), and the copy to cold,
// hot delete, and placement flip happen with the lock held, so a
// failure leaves the chunk either fully hot (cold.Put failed — no
// state changed) or fully cold (placement flipped only after the cold
// copy succeeded).
func (t *TieredStore) Migrate() (int, error) {
	now := t.now()
	demoted := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var demote []Sum
		for sum, hot := range s.placedHot {
			if hot && now.Sub(s.lastRead[sum]) > t.coldAfter {
				demote = append(demote, sum)
			}
		}
		s.mu.Unlock()

		for _, sum := range demote {
			ok, err := t.demoteOne(s, sum, func() bool {
				// Re-check under the lock: a read since the scan keeps
				// the chunk hot, and a delete removes it from play.
				return s.placedHot[sum] && now.Sub(s.lastRead[sum]) > t.coldAfter
			})
			if ok {
				demoted++
			}
			if err != nil {
				return demoted, err
			}
		}
	}
	return demoted, nil
}

// demoteOne moves a single chunk from hot to cold with the shard lock
// held across the copy, delete, and placement flip. eligible runs
// under the lock and aborts the demotion when it returns false. A
// cold.Put failure leaves the chunk fully hot — placement, sizes, and
// tier stats untouched; a hot delete failure after a successful cold
// copy still flips placement (the cold copy is authoritative, the hot
// copy lingers until its store reclaims it) and reports the error.
func (t *TieredStore) demoteOne(s *tierShard, sum Sum, eligible func() bool) (bool, error) {
	s.mu.Lock()
	if !eligible() {
		s.mu.Unlock()
		return false, nil
	}
	data, err := t.hot.Get(sum)
	if err != nil {
		s.mu.Unlock()
		if err == ErrNotFound {
			return false, nil // deleted concurrently; nothing to demote
		}
		return false, err
	}
	if err := t.cold.Put(sum, data); err != nil {
		s.mu.Unlock()
		return false, err
	}
	var deleteErr error
	if d, ok := t.hot.(Deleter); ok {
		if err := d.Delete(sum); err != nil && err != ErrNotFound {
			deleteErr = err
		}
	}
	s.placedHot[sum] = false
	s.tstats.Demotions++
	s.mu.Unlock()
	return true, deleteErr
}

// FlushHot demotes every hot-placed chunk to the cold tier regardless
// of idle time. When the hot tier is volatile (the server's RAM tier
// over a durable disk tier), a graceful shutdown must call this before
// closing the cold store, or acknowledged chunks that never sat idle
// long enough for Migrate would be lost with the process.
func (t *TieredStore) FlushHot() (int, error) {
	flushed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var demote []Sum
		for sum, hot := range s.placedHot {
			if hot {
				demote = append(demote, sum)
			}
		}
		s.mu.Unlock()

		for _, sum := range demote {
			ok, err := t.demoteOne(s, sum, func() bool {
				return s.placedHot[sum]
			})
			if ok {
				flushed++
			}
			if err != nil {
				return flushed, err
			}
		}
	}
	return flushed, nil
}

// AdoptCold registers a chunk already resident in the cold store —
// typically one recovered from disk after a restart, when the
// in-memory placement maps start empty — as cold-placed. A chunk the
// store already tracks is left untouched.
func (t *TieredStore) AdoptCold(sum Sum, size int64) {
	s := t.shard(sum)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[sum]; ok {
		return
	}
	s.sizes[sum] = size
	s.placedHot[sum] = false
	s.lastRead[sum] = t.now()
	t.chunks.Add(1)
	t.bytes.Add(size)
}

// Delete removes a chunk from whichever tiers hold it and from the
// placement maps, so the garbage collector reclaims tiered space like
// any other store's.
func (t *TieredStore) Delete(sum Sum) error {
	s := t.shard(sum)
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.sizes[sum]
	if !ok {
		return ErrNotFound
	}
	// Both tiers may hold bytes (a promoted chunk leaves its cold copy
	// behind); try each and tolerate the one that never had it.
	for _, tier := range []ChunkStore{t.hot, t.cold} {
		if d, ok := tier.(Deleter); ok {
			if err := d.Delete(sum); err != nil && err != ErrNotFound {
				return err
			}
		}
	}
	delete(s.sizes, sum)
	delete(s.placedHot, sum)
	delete(s.lastRead, sum)
	t.chunks.Add(-1)
	t.bytes.Add(-size)
	return nil
}

// Range implements Ranger across both tiers: the sizes maps track the
// logical store, so every chunk is visited exactly once regardless of
// its current placement.
func (t *TieredStore) Range(f func(sum Sum, size int64) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		entries := make([]struct {
			sum  Sum
			size int64
		}, 0, len(s.sizes))
		for sum, size := range s.sizes {
			entries = append(entries, struct {
				sum  Sum
				size int64
			}{sum, size})
		}
		s.mu.Unlock()
		for _, e := range entries {
			if !f(e.sum, e.size) {
				return
			}
		}
	}
}

// AccrueOccupancy adds dt of residency to the tier byte-hour counters
// for every chunk (the simulation clock advances in steps).
func (t *TieredStore) AccrueOccupancy(dt time.Duration) {
	hours := dt.Hours()
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for sum, hot := range s.placedHot {
			bh := float64(s.sizes[sum]) * hours
			if hot {
				s.tstats.HotByteHours += bh
			} else {
				s.tstats.ColdByteHours += bh
			}
		}
		s.mu.Unlock()
	}
}

// TierStats returns a snapshot aggregated across shards.
func (t *TieredStore) TierStats() TierStats {
	var st TierStats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		st.Demotions += s.tstats.Demotions
		st.Promotions += s.tstats.Promotions
		st.ColdReads += s.tstats.ColdReads
		st.HotReads += s.tstats.HotReads
		st.HotByteHours += s.tstats.HotByteHours
		st.ColdByteHours += s.tstats.ColdByteHours
		s.mu.Unlock()
	}
	return st
}

// Cost evaluates storage cost given per-tier prices in arbitrary
// units per byte-hour.
func (s TierStats) Cost(hotPrice, coldPrice float64) float64 {
	return s.HotByteHours*hotPrice + s.ColdByteHours*coldPrice
}

// HotOnlyCost is the counterfactual of keeping everything hot.
func (s TierStats) HotOnlyCost(hotPrice float64) float64 {
	return (s.HotByteHours + s.ColdByteHours) * hotPrice
}
