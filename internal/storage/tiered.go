package storage

import (
	"encoding/binary"
	"sync"
	"time"
)

// TieredStore implements the cold/warm split the paper recommends for
// a backup-dominated workload (§3.2.2, citing Facebook's f4): objects
// land in the hot tier and migrate to a cheaper cold tier once they
// have not been read for ColdAfter; a read of a cold chunk promotes it
// back. The store tracks the byte-hours spent in each tier so the
// cost benefit can be quantified against per-tier prices.
//
// Placement state is sharded by digest like MemStore, so tier
// bookkeeping does not serialize concurrent chunk traffic.
type TieredStore struct {
	hot, cold ChunkStore
	coldAfter time.Duration
	now       func() time.Time

	shards []tierShard
	mask   uint32
}

type tierShard struct {
	mu        sync.Mutex
	lastRead  map[Sum]time.Time
	placedHot map[Sum]bool
	sizes     map[Sum]int64
	tstats    TierStats
}

// TierStats reports tiering behaviour and accumulated occupancy.
type TierStats struct {
	Demotions  int64
	Promotions int64
	ColdReads  int64
	HotReads   int64
	// Byte-hours accumulated by chunks resident in each tier; cost is
	// byteHours x per-tier price. Updated on Migrate and on reads.
	HotByteHours  float64
	ColdByteHours float64
}

// NewTieredStore combines a hot and a cold store. coldAfter is the
// idle period after which a chunk is demoted (the paper's finding —
// over 80% of uploads unread after a week — makes even 1-2 days
// effective).
func NewTieredStore(hot, cold ChunkStore, coldAfter time.Duration, now func() time.Time) *TieredStore {
	if now == nil {
		now = time.Now
	}
	n := defaultShards()
	t := &TieredStore{
		hot: hot, cold: cold,
		coldAfter: coldAfter,
		now:       now,
		shards:    make([]tierShard, n),
		mask:      uint32(n - 1),
	}
	for i := range t.shards {
		t.shards[i].lastRead = make(map[Sum]time.Time)
		t.shards[i].placedHot = make(map[Sum]bool)
		t.shards[i].sizes = make(map[Sum]int64)
	}
	return t
}

func (t *TieredStore) shard(sum Sum) *tierShard {
	return &t.shards[binary.LittleEndian.Uint32(sum[:4])&t.mask]
}

// Put stores into the hot tier.
func (t *TieredStore) Put(sum Sum, data []byte) error {
	if err := t.hot.Put(sum, data); err != nil {
		return err
	}
	s := t.shard(sum)
	s.mu.Lock()
	if _, ok := s.sizes[sum]; !ok {
		s.sizes[sum] = int64(len(data))
		s.lastRead[sum] = t.now()
		s.placedHot[sum] = true
	}
	s.mu.Unlock()
	return nil
}

// Get reads from whichever tier holds the chunk, promoting cold hits.
func (t *TieredStore) Get(sum Sum) ([]byte, error) {
	s := t.shard(sum)
	s.mu.Lock()
	hot := s.placedHot[sum]
	_, known := s.sizes[sum]
	s.mu.Unlock()
	if !known {
		return nil, ErrNotFound
	}

	if hot {
		data, err := t.hot.Get(sum)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.tstats.HotReads++
		s.lastRead[sum] = t.now()
		s.mu.Unlock()
		return data, nil
	}

	data, err := t.cold.Get(sum)
	if err != nil {
		return nil, err
	}
	// Promote: the user is active on this content again.
	if err := t.hot.Put(sum, data); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tstats.ColdReads++
	s.tstats.Promotions++
	s.placedHot[sum] = true
	s.lastRead[sum] = t.now()
	s.mu.Unlock()
	return data, nil
}

// Has implements ChunkStore.
func (t *TieredStore) Has(sum Sum) bool {
	s := t.shard(sum)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[sum]
	return ok
}

// Stats returns the hot tier's counters (ingest accounting).
func (t *TieredStore) Stats() StoreStats { return t.hot.Stats() }

// Migrate demotes every hot chunk idle for longer than coldAfter and
// accrues tier byte-hours up to now. Call it periodically (the service
// would run it as a background job). It returns the number demoted.
func (t *TieredStore) Migrate() (int, error) {
	now := t.now()
	demoted := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var demote []Sum
		for sum, hot := range s.placedHot {
			if hot && now.Sub(s.lastRead[sum]) > t.coldAfter {
				demote = append(demote, sum)
			}
		}
		s.mu.Unlock()

		for _, sum := range demote {
			data, err := t.hot.Get(sum)
			if err != nil {
				return demoted, err
			}
			if err := t.cold.Put(sum, data); err != nil {
				return demoted, err
			}
			if d, ok := t.hot.(interface{ Delete(Sum) error }); ok {
				if err := d.Delete(sum); err != nil && err != ErrNotFound {
					return demoted, err
				}
			}
			s.mu.Lock()
			s.placedHot[sum] = false
			s.tstats.Demotions++
			s.mu.Unlock()
			demoted++
		}
	}
	return demoted, nil
}

// AccrueOccupancy adds dt of residency to the tier byte-hour counters
// for every chunk (the simulation clock advances in steps).
func (t *TieredStore) AccrueOccupancy(dt time.Duration) {
	hours := dt.Hours()
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for sum, hot := range s.placedHot {
			bh := float64(s.sizes[sum]) * hours
			if hot {
				s.tstats.HotByteHours += bh
			} else {
				s.tstats.ColdByteHours += bh
			}
		}
		s.mu.Unlock()
	}
}

// TierStats returns a snapshot aggregated across shards.
func (t *TieredStore) TierStats() TierStats {
	var st TierStats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		st.Demotions += s.tstats.Demotions
		st.Promotions += s.tstats.Promotions
		st.ColdReads += s.tstats.ColdReads
		st.HotReads += s.tstats.HotReads
		st.HotByteHours += s.tstats.HotByteHours
		st.ColdByteHours += s.tstats.ColdByteHours
		s.mu.Unlock()
	}
	return st
}

// Cost evaluates storage cost given per-tier prices in arbitrary
// units per byte-hour.
func (s TierStats) Cost(hotPrice, coldPrice float64) float64 {
	return s.HotByteHours*hotPrice + s.ColdByteHours*coldPrice
}

// HotOnlyCost is the counterfactual of keeping everything hot.
func (s TierStats) HotOnlyCost(hotPrice float64) float64 {
	return (s.HotByteHours + s.ColdByteHours) * hotPrice
}
