package storage

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

func TestSumRoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		s := SumBytes(data)
		parsed, err := ParseSum(s.String())
		return err == nil && parsed == s
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSumErrors(t *testing.T) {
	for _, bad := range []string{"", "zz", "abcd", "0123456789abcdef0123456789abcdef00"} {
		if _, err := ParseSum(bad); err == nil {
			t.Errorf("ParseSum(%q) accepted", bad)
		}
	}
}

func TestSplitSums(t *testing.T) {
	data := make([]byte, ChunkSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	sums := SplitSums(data)
	if len(sums) != 2 {
		t.Fatalf("got %d sums, want 2", len(sums))
	}
	if sums[0] != SumBytes(data[:ChunkSize]) {
		t.Error("first chunk sum wrong")
	}
	if sums[1] != SumBytes(data[ChunkSize:]) {
		t.Error("tail chunk sum wrong")
	}
	if SplitSums(nil) != nil {
		t.Error("empty data should produce no sums")
	}
}

func TestMemStorePutGet(t *testing.T) {
	m := NewMemStore()
	data := []byte("hello chunk")
	sum := SumBytes(data)
	if err := m.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if !m.Has(sum) {
		t.Error("Has should be true")
	}
	if _, err := m.Get(SumBytes([]byte("other"))); err != ErrNotFound {
		t.Errorf("missing chunk: err = %v, want ErrNotFound", err)
	}
}

func TestMemStoreRejectsWrongDigest(t *testing.T) {
	m := NewMemStore()
	if err := m.Put(SumBytes([]byte("a")), []byte("b")); err == nil {
		t.Error("mismatched digest accepted")
	}
}

func TestMemStoreDedup(t *testing.T) {
	m := NewMemStore()
	data := bytes.Repeat([]byte("x"), 1000)
	sum := SumBytes(data)
	for i := 0; i < 5; i++ {
		if err := m.Put(sum, data); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Chunks != 1 || st.Puts != 5 || st.DedupHits != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != 1000 || st.BytesStored != 5000 {
		t.Errorf("bytes = %d/%d", st.Bytes, st.BytesStored)
	}
	if r := st.DedupRatio(); r != 0.8 {
		t.Errorf("dedup ratio = %v, want 0.8", r)
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	m := NewMemStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := randx.New(uint64(g))
			for i := 0; i < 200; i++ {
				data := []byte(fmt.Sprintf("chunk-%d", src.Intn(50)))
				sum := SumBytes(data)
				if err := m.Put(sum, data); err != nil {
					t.Error(err)
					return
				}
				if got, err := m.Get(sum); err != nil || !bytes.Equal(got, data) {
					t.Error("concurrent get mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := m.Stats(); st.Chunks > 50 {
		t.Errorf("more unique chunks (%d) than distinct contents (50)", st.Chunks)
	}
}

func TestMetadataDedupFlow(t *testing.T) {
	meta := NewMetadata("http://fe1")
	req := StoreCheckRequest{UserID: 1, Name: "a.jpg", Size: 100, FileMD5: SumBytes([]byte("photo")).String()}
	resp, err := meta.StoreCheck(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicate {
		t.Fatal("first store should not be a duplicate")
	}
	if resp.FrontEnd != "http://fe1" {
		t.Errorf("frontend = %q", resp.FrontEnd)
	}
	// Until commit, a second check is also not a duplicate.
	resp2, err := meta.StoreCheck(StoreCheckRequest{UserID: 2, Name: "b.jpg", Size: 100, FileMD5: req.FileMD5})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Duplicate {
		t.Error("uncommitted content reported as duplicate")
	}
	if err := meta.Commit(0, resp.URL, []Sum{SumBytes([]byte("photo"))}); err != nil {
		t.Fatal(err)
	}
	resp3, err := meta.StoreCheck(StoreCheckRequest{UserID: 3, Name: "c.jpg", Size: 100, FileMD5: req.FileMD5})
	if err != nil {
		t.Fatal(err)
	}
	if !resp3.Duplicate {
		t.Error("committed content should dedup")
	}
	st := meta.Stats()
	if st.DedupHits != 1 || st.Checks != 3 {
		t.Errorf("stats = %+v", st)
	}
	// User 3 got the file linked without uploading.
	if files := meta.UserFiles(3); len(files) != 1 {
		t.Errorf("user 3 has %d files, want 1", len(files))
	}
}

func TestMetadataResolve(t *testing.T) {
	meta := NewMetadata("http://fe1", "http://fe2")
	sum := SumBytes([]byte("content"))
	resp, err := meta.StoreCheck(StoreCheckRequest{UserID: 1, Name: "f", Size: 7, FileMD5: sum.String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Commit(0, resp.URL, []Sum{sum}); err != nil {
		t.Fatal(err)
	}
	res, err := meta.Resolve(ResolveRequest{UserID: 1, URL: resp.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.FileMD5 != sum.String() || res.Size != 7 {
		t.Errorf("resolve = %+v", res)
	}
	if _, err := meta.Resolve(ResolveRequest{URL: "/f/nope"}); err != ErrNotFound {
		t.Errorf("missing URL: err = %v", err)
	}
}

func TestMetadataCommitUnknownURL(t *testing.T) {
	meta := NewMetadata()
	if err := meta.Commit(0, "/f/unknown", nil); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestMetadataRoundRobin(t *testing.T) {
	meta := NewMetadata("a", "b", "c")
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		resp, err := meta.StoreCheck(StoreCheckRequest{
			UserID: 1, Name: "f", Size: 1,
			FileMD5: SumBytes([]byte(fmt.Sprintf("c%d", i))).String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		seen[resp.FrontEnd]++
	}
	if seen["a"] != 3 || seen["b"] != 3 || seen["c"] != 3 {
		t.Errorf("round robin skewed: %v", seen)
	}
}

// newTestService spins up a metadata server and one front-end over
// httptest, returning the client base configuration and the collector.
func newTestService(t *testing.T) (*Client, *Collector, *MemStore, *Metadata, func()) {
	t.Helper()
	store := NewMemStore()
	col := &Collector{}
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{
		Store:         store,
		Meta:          meta,
		Sink:          col,
		UpstreamDelay: func() time.Duration { return 100 * time.Millisecond },
	})
	feSrv := httptest.NewServer(fe.Handler())
	metaSrv := httptest.NewServer(meta.Handler())
	meta.AddFrontEnd(feSrv.URL)
	client := &Client{
		MetaURL:  metaSrv.URL,
		UserID:   42,
		DeviceID: 7,
		Device:   trace.Android,
		SimRTT:   89 * time.Millisecond,
	}
	cleanup := func() {
		feSrv.Close()
		metaSrv.Close()
	}
	return client, col, store, meta, cleanup
}

func TestEndToEndStoreRetrieve(t *testing.T) {
	client, col, store, _, cleanup := newTestService(t)
	defer cleanup()

	src := randx.New(55)
	data := make([]byte, ChunkSize*2+12345) // 3 chunks
	for i := range data {
		data[i] = byte(src.Uint64())
	}

	res, err := client.StoreFile("video.mp4", data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduplicated {
		t.Fatal("fresh content reported deduplicated")
	}
	if res.ChunksSent != 3 || res.BytesSent != int64(len(data)) {
		t.Errorf("sent %d chunks / %d bytes", res.ChunksSent, res.BytesSent)
	}
	if st := store.Stats(); st.Chunks != 3 {
		t.Errorf("store has %d chunks, want 3", st.Chunks)
	}

	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved content differs from stored content")
	}

	// Log accounting: 1 file-store + 3 chunk-store + 1 file-retrieve +
	// 3 chunk-retrieve.
	logs := col.Logs()
	counts := map[trace.ReqType]int{}
	var chunkBytes int64
	for _, l := range logs {
		counts[l.Type]++
		if l.Type == trace.ChunkStore {
			chunkBytes += l.Bytes
		}
		if l.UserID != 42 || l.DeviceID != 7 || l.Device != trace.Android {
			t.Errorf("log identity wrong: %+v", l)
		}
		if l.RTT != 89*time.Millisecond {
			t.Errorf("log RTT = %v", l.RTT)
		}
		if l.Server != 100*time.Millisecond {
			t.Errorf("log Tsrv = %v", l.Server)
		}
		if l.Proc < l.Server {
			t.Errorf("Proc (%v) below Server (%v)", l.Proc, l.Server)
		}
	}
	if counts[trace.FileStore] != 1 || counts[trace.ChunkStore] != 3 ||
		counts[trace.FileRetrieve] != 1 || counts[trace.ChunkRetrieve] != 3 {
		t.Errorf("log counts = %v", counts)
	}
	if chunkBytes != int64(len(data)) {
		t.Errorf("chunk-store bytes = %d, want %d", chunkBytes, len(data))
	}
}

func TestEndToEndDeduplication(t *testing.T) {
	client, col, store, meta, cleanup := newTestService(t)
	defer cleanup()

	data := bytes.Repeat([]byte("same content "), 1000)
	first, err := client.StoreFile("a.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	if first.Deduplicated {
		t.Fatal("first upload deduplicated")
	}

	// A different user uploading identical content should not move any
	// bytes.
	other := client.Clone()
	other.UserID = 77
	second, err := other.StoreFile("b.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduplicated {
		t.Fatal("identical content not deduplicated")
	}
	if second.ChunksSent != 0 {
		t.Errorf("dedup upload sent %d chunks", second.ChunksSent)
	}
	if second.URL != first.URL {
		t.Errorf("dedup URL %q != original %q", second.URL, first.URL)
	}
	if st := store.Stats(); st.Puts != 1 {
		t.Errorf("store saw %d puts, want 1", st.Puts)
	}
	if ms := meta.Stats(); ms.DedupHits != 1 {
		t.Errorf("metadata dedup hits = %d", ms.DedupHits)
	}
	// Both users can retrieve.
	if got, err := other.RetrieveFile(second.URL); err != nil || !bytes.Equal(got, data) {
		t.Fatal("dedup user cannot retrieve content", err)
	}
	_ = col
}

func TestRetrieveMissingFile(t *testing.T) {
	client, _, _, _, cleanup := newTestService(t)
	defer cleanup()
	if _, err := client.RetrieveFile("/f/deadbeef/99"); err == nil {
		t.Error("expected error for unknown URL")
	}
}

func TestProxiedFlagPropagates(t *testing.T) {
	client, col, _, _, cleanup := newTestService(t)
	defer cleanup()
	client.Proxied = true
	if _, err := client.StoreFile("p.bin", []byte("proxied upload")); err != nil {
		t.Fatal(err)
	}
	for _, l := range col.Logs() {
		if !l.Proxied {
			t.Errorf("log not marked proxied: %+v", l)
		}
	}
}

func TestEmptyFileStore(t *testing.T) {
	client, _, _, _, cleanup := newTestService(t)
	defer cleanup()
	res, err := client.StoreFile("empty.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksSent != 0 {
		t.Errorf("empty file sent %d chunks", res.ChunksSent)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("retrieved %d bytes for empty file", len(got))
	}
}

func TestConcurrentClients(t *testing.T) {
	client, _, store, _, cleanup := newTestService(t)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := client.Clone()
			c.UserID = uint64(100 + g)
			c.DeviceID = uint64(g)
			src := randx.New(uint64(g))
			data := make([]byte, 100*1024+src.Intn(100*1024))
			for i := range data {
				data[i] = byte(src.Uint64())
			}
			res, err := c.StoreFile(fmt.Sprintf("f%d.bin", g), data)
			if err != nil {
				errs <- err
				return
			}
			got, err := c.RetrieveFile(res.URL)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("user %d: content mismatch", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := store.Stats(); st.Chunks != 8 {
		t.Errorf("store has %d chunks, want 8 (one small file each)", st.Chunks)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(trace.NewWriter(&buf))
	sink.Record(trace.Log{Time: time.Unix(0, 1).UTC(), Type: trace.ChunkStore, Bytes: 5})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	logs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Bytes != 5 {
		t.Errorf("logs = %+v", logs)
	}
}

func TestChunkTooLargeRejected(t *testing.T) {
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta})
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()
	meta.AddFrontEnd(srv.URL)

	big := make([]byte, ChunkSize+1)
	sum := SumBytes(big)
	client := &Client{MetaURL: srv.URL}
	if err := client.putChunk(srv.URL, "/f/x/1", sum, big, client.newBudget()); err == nil {
		t.Error("oversized chunk accepted")
	}
}
