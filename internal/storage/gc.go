package storage

import (
	"sync"
	"time"

	"mcloud/internal/metrics"
)

// RefCounter tracks how many committed files reference each chunk, so
// unreferenced chunks can be garbage collected. The measured service
// supports file deletion (it bypasses the front-ends, §2.1), which
// means a production chunk store needs exactly this: deduplicated
// chunks may be shared by many files and can only be reclaimed when
// the last referencing file goes away.
type RefCounter struct {
	mu   sync.Mutex
	refs map[Sum]int
}

// NewRefCounter returns an empty reference tracker.
func NewRefCounter() *RefCounter {
	return &RefCounter{refs: make(map[Sum]int)}
}

// Acquire increments every chunk's reference count (a file commit).
func (rc *RefCounter) Acquire(sums []Sum) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, s := range sums {
		rc.refs[s]++
	}
}

// Release decrements the chunks' counts (a file deletion) and returns
// the chunks that reached zero — candidates for collection.
func (rc *RefCounter) Release(sums []Sum) []Sum {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var dead []Sum
	for _, s := range sums {
		if rc.refs[s] <= 0 {
			continue // over-release is ignored, never negative
		}
		rc.refs[s]--
		if rc.refs[s] == 0 {
			delete(rc.refs, s)
			dead = append(dead, s)
		}
	}
	return dead
}

// Refs returns the current count for a chunk.
func (rc *RefCounter) Refs(sum Sum) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.refs[sum]
}

// Live returns the number of referenced chunks.
func (rc *RefCounter) Live() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.refs)
}

// Deleter is the optional ChunkStore extension for reclaiming space.
type Deleter interface {
	Delete(sum Sum) error
}

// Compactor is the optional ChunkStore extension for stores whose
// deletes only tombstone (e.g. DiskStore): Compact rewrites storage
// whose live ratio has dropped and returns how many units (segments)
// it reclaimed.
type Compactor interface {
	Compact() (int, error)
}

// Collect removes the given chunks from store if it supports deletion,
// returning how many were reclaimed. Stores without Delete (e.g. the
// cached wrapper) report zero reclaimed without error.
func Collect(store ChunkStore, dead []Sum) (int, error) {
	d, ok := store.(Deleter)
	if !ok {
		return 0, nil
	}
	n := 0
	for _, s := range dead {
		switch err := d.Delete(s); err {
		case nil:
			n++
		case ErrNotFound:
			// Already gone; fine.
		default:
			return n, err
		}
	}
	return n, nil
}

// GCMetrics holds the garbage-collection series: how many delete
// sweeps ran, how long each took, and how many chunks they reclaimed.
type GCMetrics struct {
	Deletes   *metrics.Counter
	Reclaimed *metrics.Counter
	Sweep     *metrics.Histogram
}

// NewGCMetrics registers the GC series in reg.
func NewGCMetrics(reg *metrics.Registry) *GCMetrics {
	return &GCMetrics{
		Deletes:   reg.Counter("mcs_gc_deletes_total", "File delete sweeps processed."),
		Reclaimed: reg.Counter("mcs_gc_chunks_reclaimed_total", "Chunks freed by garbage collection."),
		Sweep:     reg.Histogram("mcs_gc_sweep_seconds", "Duration of one delete sweep (unlink, release, collect)."),
	}
}

// DeleteFile removes a file from a user's namespace in the metadata
// server, releases its chunk references, and collects newly
// unreferenced chunks from the store. It returns the number of chunks
// reclaimed. The file's catalog entry survives while other users still
// link it (content-addressed sharing).
func DeleteFile(m *Metadata, rc *RefCounter, store ChunkStore, user uint64, url string) (int, error) {
	return DeleteFileObserved(nil, m, rc, store, user, url)
}

// DeleteFileObserved is DeleteFile with sweep instrumentation: when
// gm is non-nil it records the sweep duration and the number of
// chunks reclaimed.
func DeleteFileObserved(gm *GCMetrics, m *Metadata, rc *RefCounter, store ChunkStore, user uint64, url string) (int, error) {
	start := time.Now()
	chunks, lastRef, err := m.Unlink(user, url)
	if err != nil {
		return 0, err
	}
	n := 0
	if lastRef {
		dead := rc.Release(chunks)
		n, err = Collect(store, dead)
		if err == nil && n > 0 {
			// Deletes against a log-structured store only tombstone;
			// give its compactor a chance to reclaim segment space.
			// Compact no-ops unless a segment crossed its threshold.
			if c, ok := store.(Compactor); ok {
				_, err = c.Compact()
			}
		}
	}
	if gm != nil {
		gm.Deletes.Inc()
		gm.Reclaimed.Add(int64(n))
		gm.Sweep.ObserveSince(start)
	}
	return n, err
}
