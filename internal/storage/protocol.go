// Package storage implements the mobile cloud storage service that the
// paper measures: a metadata server that performs file-level
// deduplication and front-end assignment, storage front-end servers
// that move 512 KB chunks over HTTP and emit the Table 1 request logs,
// a content-addressed chunk store, and the client used by mobile apps
// and PC clients.
//
// The store/retrieve protocol follows §2.1 of the paper:
//
//   - To store, a client sends the file metadata (name, size, MD5) to
//     the metadata server. If the content is already known, the server
//     links it into the user's namespace and the upload is skipped
//     (deduplication). Otherwise the client is directed to a front-end
//     and sends a file storage operation request followed by chunk
//     storage requests, one per 512 KB chunk.
//   - To retrieve, a client resolves a file URL at the metadata server
//     to the file's MD5, issues a file retrieval operation request to
//     a front-end, then requests each chunk in sequence.
package storage

import (
	"crypto/md5"
	"encoding/hex"
)

// ChunkSize is the fixed transfer unit of the service (§2.1).
const ChunkSize = 512 << 10

// Sum is a content hash (MD5, as in the measured service).
type Sum [md5.Size]byte

// SumBytes hashes a byte slice.
func SumBytes(b []byte) Sum { return md5.Sum(b) }

// ParseSum decodes a hex digest.
func ParseSum(s string) (Sum, error) {
	var out Sum
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != md5.Size {
		return out, errBadDigest
	}
	copy(out[:], b)
	return out, nil
}

func (s Sum) String() string { return hex.EncodeToString(s[:]) }

// SplitSums hashes each ChunkSize-sized piece of data and returns the
// per-chunk digests, mirroring what the mobile app computes before a
// file storage operation request.
func SplitSums(data []byte) []Sum {
	n := (len(data) + ChunkSize - 1) / ChunkSize
	if n == 0 {
		return nil
	}
	sums := make([]Sum, 0, n)
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		sums = append(sums, SumBytes(data[off:end]))
	}
	return sums
}

// StoreCheckRequest asks the metadata server whether a file's content
// is already stored.
type StoreCheckRequest struct {
	UserID  uint64 `json:"user_id"`
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	FileMD5 string `json:"file_md5"`
}

// StoreCheckResponse carries the dedup verdict and, when an upload is
// needed, the front-end to contact.
type StoreCheckResponse struct {
	Duplicate bool   `json:"duplicate"`          // content already stored; no upload needed
	FrontEnd  string `json:"frontend,omitempty"` // base URL of the assigned front-end
	URL       string `json:"url"`                // the file's service URL
	Shard     int    `json:"shard"`              // metadata shard that owns this user's namespace
}

// ResolveRequest asks the metadata server for the MD5 behind a file
// URL (the first step of a retrieval, §2.1).
type ResolveRequest struct {
	UserID uint64 `json:"user_id"`
	URL    string `json:"url"`
}

// ResolveResponse returns the file hash and a front-end that can serve
// it.
type ResolveResponse struct {
	FileMD5  string `json:"file_md5"`
	Size     int64  `json:"size"`
	FrontEnd string `json:"frontend"`
	Shard    int    `json:"shard"` // metadata shard that resolved (and will commit) this file
}

// FileOpRequest is the file storage/retrieval operation request sent
// to a front-end before chunks move. For storage it carries the chunk
// digests; for retrieval the front-end returns them.
type FileOpRequest struct {
	UserID    uint64   `json:"user_id"`
	DeviceID  uint64   `json:"device_id"`
	Device    string   `json:"device"` // "android", "ios", "pc"
	Name      string   `json:"name,omitempty"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s,omitempty"`
	// Shard pins the metadata shard that reserved (store) or resolved
	// (retrieve) the file, so the front-end commits the namespace
	// mutation against the same shard the client's handshake used.
	Shard int `json:"shard"`
}

// FileOpResponse acknowledges a file operation. For retrievals it
// lists the chunk digests to fetch. For stores on a resumable
// front-end it lists the chunks the server still needs — an empty set
// means the upload is already complete (all chunks present, file
// committed), which is how an interrupted client resumes without
// re-sending data.
type FileOpResponse struct {
	OK        bool     `json:"ok"`
	ChunkMD5s []string `json:"chunk_md5s,omitempty"`
	Size      int64    `json:"size,omitempty"`
	// Resumable marks a server that reports MissingMD5s; clients fall
	// back to sending every chunk when it is false.
	Resumable   bool     `json:"resumable,omitempty"`
	MissingMD5s []string `json:"missing_md5s,omitempty"`
}

// StatRequest is the batched existence check of /v1/op/stat: one
// round trip answers "which of these chunks do you already hold?" for
// a whole file, where the legacy protocol needed a per-chunk probe.
// The resumable-upload path and the rebalancer both ride on it.
type StatRequest struct {
	ChunkMD5s []string `json:"chunk_md5s"`
}

// StatResponse lists the subset of the queried chunks the server does
// NOT hold, in query order. Present = len(queried) - len(missing).
type StatResponse struct {
	MissingMD5s []string `json:"missing_md5s"`
	Present     int      `json:"present"`
}

// ChunkInfo describes one locally-held chunk, as listed by the
// /v1/cluster/chunks admin endpoint (consumed by mcsrebalance).
type ChunkInfo struct {
	MD5  string `json:"md5"`
	Size int64  `json:"size"`
}

// MetaShardInfo describes one metadata shard in the cluster-info
// summary: its current primary as last discovered ("" when unknown)
// and the fencing epoch that primary serves at.
type MetaShardInfo struct {
	Shard   int    `json:"shard"`
	Primary string `json:"primary,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// MetaShardSummary is the metadata-plane half of /v1/cluster/info:
// one probe tells an operator how many shards exist, under which map
// version, and who currently leads each.
type MetaShardSummary struct {
	Shards     int             `json:"shards"`
	MapVersion uint64          `json:"map_version"`
	ShardInfo  []MetaShardInfo `json:"shard_info,omitempty"`
}

// ClusterInfo describes a node's cluster configuration, served by
// /v1/cluster/info.
type ClusterInfo struct {
	Node     string   `json:"node"`     // this node's advertised base URL ("" when single-node)
	Peers    []string `json:"peers"`    // full membership, including Node
	Replicas int      `json:"replicas"` // N
	Quorum   int      `json:"quorum"`   // W
	// Meta summarizes the metadata shard plane, when this node knows
	// it (omitted by nodes without metadata wiring).
	Meta *MetaShardSummary `json:"meta,omitempty"`
}

// errorResponse is the uniform legacy error body.
type errorResponse struct {
	Error string `json:"error"`
}
