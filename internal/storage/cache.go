package storage

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
)

// CachedStore wraps a backing ChunkStore with a fixed-capacity LRU
// byte cache on the read path. It models the web-cache-proxy
// deployment the paper suggests for popular downloads (§3.1.4: "if a
// handful of popular files dominate the downloads, web cache proxies
// can reduce server workload").
//
// Large caches are split into independent LRU shards (each holding at
// least 64 chunks) so read hits on distinct chunks do not serialize
// on one lock; small caches keep a single exact LRU.
type CachedStore struct {
	backing  ChunkStore
	capacity int64
	shards   []cacheShard
	mask     uint32
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[Sum]*list.Element

	hits, misses int64
	hitBytes     int64
	missBytes    int64
	evictions    int64
}

type cacheEntry struct {
	sum  Sum
	data []byte
}

// NewCachedStore wraps backing with an LRU cache of capacity bytes,
// sharded when the capacity is large enough that the split cannot
// distort eviction (>= 64 chunks per shard).
func NewCachedStore(backing ChunkStore, capacity int64) *CachedStore {
	n := int(capacity / (64 * ChunkSize))
	if d := defaultShards(); n > d {
		n = d
	}
	return NewCachedStoreShards(backing, capacity, n)
}

// NewCachedStoreShards is NewCachedStore with an explicit shard count
// (rounded up to a power of two; values < 1 mean one shard, the exact
// single-LRU behaviour).
func NewCachedStoreShards(backing ChunkStore, capacity int64, n int) *CachedStore {
	if n < 1 {
		n = 1
	}
	n = nextPow2(n)
	c := &CachedStore{
		backing:  backing,
		capacity: capacity,
		shards:   make([]cacheShard, n),
		mask:     uint32(n - 1),
	}
	per := capacity / int64(n)
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Sum]*list.Element)
	}
	return c
}

func (c *CachedStore) shard(sum Sum) *cacheShard {
	return &c.shards[binary.LittleEndian.Uint32(sum[:4])&c.mask]
}

// Put writes through to the backing store; fresh content is not
// admitted to the cache (the workload is read-skewed, and uploads are
// rarely re-read — the paper's key observation).
func (c *CachedStore) Put(sum Sum, data []byte) error {
	return c.backing.Put(sum, data)
}

// PutCtx implements CtxStore, forwarding the trace context through
// the write-around path.
func (c *CachedStore) PutCtx(ctx context.Context, sum Sum, data []byte) error {
	return PutCtx(ctx, c.backing, sum, data)
}

// Get serves from the cache when possible, falling back to the
// backing store and admitting the result.
func (c *CachedStore) Get(sum Sum) ([]byte, error) {
	return c.GetCtx(context.Background(), sum)
}

// GetCtx implements CtxStore: a cache hit records no span (it is a
// map lookup), a miss forwards the context so the backing read's disk
// time lands in the trace.
func (c *CachedStore) GetCtx(ctx context.Context, sum Sum) ([]byte, error) {
	s := c.shard(sum)
	s.mu.Lock()
	if el, ok := s.items[sum]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		s.hits++
		s.hitBytes += int64(len(data))
		s.mu.Unlock()
		return data, nil
	}
	s.mu.Unlock()

	data, err := GetCtx(ctx, c.backing, sum)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.misses++
	s.missBytes += int64(len(data))
	s.admit(sum, data)
	s.mu.Unlock()
	return data, nil
}

// admit inserts (caller holds s.mu), evicting LRU entries as needed.
func (s *cacheShard) admit(sum Sum, data []byte) {
	if int64(len(data)) > s.capacity {
		return
	}
	if _, ok := s.items[sum]; ok {
		return
	}
	for s.used+int64(len(data)) > s.capacity {
		back := s.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.items, ev.sum)
		s.used -= int64(len(ev.data))
		s.evictions++
	}
	s.items[sum] = s.ll.PushFront(&cacheEntry{sum: sum, data: data})
	s.used += int64(len(data))
}

// GetReaderCtx implements ReaderStore: hits stream the cached slice
// without copying; misses read through GetCtx so the chunk is still
// admitted, then serve the admitted copy from RAM. The cache tier
// therefore trades the backing store's zero-copy disk path for
// RAM-resident re-reads, which is the point of putting it there.
func (c *CachedStore) GetReaderCtx(ctx context.Context, sum Sum) (*ChunkReader, error) {
	data, err := c.GetCtx(ctx, sum)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(data), nil
}

// Has implements ChunkStore.
func (c *CachedStore) Has(sum Sum) bool {
	s := c.shard(sum)
	s.mu.Lock()
	_, ok := s.items[sum]
	s.mu.Unlock()
	if ok {
		return true
	}
	return c.backing.Has(sum)
}

// Stats implements ChunkStore (backing store counters).
func (c *CachedStore) Stats() StoreStats { return c.backing.Stats() }

// Range implements Ranger when the backing store does: the cache is a
// read accelerator, so enumeration reflects the backing holdings.
func (c *CachedStore) Range(f func(sum Sum, size int64) bool) {
	if ranger, ok := c.backing.(Ranger); ok {
		ranger.Range(f)
	}
}

// Shards reports the shard count (for startup logging).
func (c *CachedStore) Shards() int { return len(c.shards) }

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits, Misses        int64
	HitBytes, MissBytes int64
	Evictions           int64
	Used, Capacity      int64
	Entries             int
}

// HitRate returns the request hit fraction.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ByteHitRate returns the byte hit fraction — the origin offload.
func (s CacheStats) ByteHitRate() float64 {
	total := s.HitBytes + s.MissBytes
	if total == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(total)
}

// CacheStats returns a snapshot aggregated across shards.
func (c *CachedStore) CacheStats() CacheStats {
	st := CacheStats{Capacity: c.capacity}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.HitBytes += s.hitBytes
		st.MissBytes += s.missBytes
		st.Evictions += s.evictions
		st.Used += s.used
		st.Entries += len(s.items)
		s.mu.Unlock()
	}
	return st
}
