package storage

import (
	"container/list"
	"sync"
)

// CachedStore wraps a backing ChunkStore with a fixed-capacity LRU
// byte cache on the read path. It models the web-cache-proxy
// deployment the paper suggests for popular downloads (§3.1.4: "if a
// handful of popular files dominate the downloads, web cache proxies
// can reduce server workload").
type CachedStore struct {
	backing ChunkStore

	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[Sum]*list.Element

	hits, misses int64
	hitBytes     int64
	missBytes    int64
	evictions    int64
}

type cacheEntry struct {
	sum  Sum
	data []byte
}

// NewCachedStore wraps backing with an LRU cache of capacity bytes.
func NewCachedStore(backing ChunkStore, capacity int64) *CachedStore {
	return &CachedStore{
		backing:  backing,
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Sum]*list.Element),
	}
}

// Put writes through to the backing store; fresh content is not
// admitted to the cache (the workload is read-skewed, and uploads are
// rarely re-read — the paper's key observation).
func (c *CachedStore) Put(sum Sum, data []byte) error {
	return c.backing.Put(sum, data)
}

// Get serves from the cache when possible, falling back to the
// backing store and admitting the result.
func (c *CachedStore) Get(sum Sum) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.items[sum]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.hitBytes += int64(len(data))
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()

	data, err := c.backing.Get(sum)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	c.missBytes += int64(len(data))
	c.admit(sum, data)
	c.mu.Unlock()
	return data, nil
}

// admit inserts (caller holds mu), evicting LRU entries as needed.
func (c *CachedStore) admit(sum Sum, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	if _, ok := c.items[sum]; ok {
		return
	}
	for c.used+int64(len(data)) > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ev.sum)
		c.used -= int64(len(ev.data))
		c.evictions++
	}
	c.items[sum] = c.ll.PushFront(&cacheEntry{sum: sum, data: data})
	c.used += int64(len(data))
}

// Has implements ChunkStore.
func (c *CachedStore) Has(sum Sum) bool {
	c.mu.Lock()
	_, ok := c.items[sum]
	c.mu.Unlock()
	if ok {
		return true
	}
	return c.backing.Has(sum)
}

// Stats implements ChunkStore (backing store counters).
func (c *CachedStore) Stats() StoreStats { return c.backing.Stats() }

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits, Misses        int64
	HitBytes, MissBytes int64
	Evictions           int64
	Used, Capacity      int64
	Entries             int
}

// HitRate returns the request hit fraction.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ByteHitRate returns the byte hit fraction — the origin offload.
func (s CacheStats) ByteHitRate() float64 {
	total := s.HitBytes + s.MissBytes
	if total == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(total)
}

// CacheStats returns a snapshot.
func (c *CachedStore) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		HitBytes: c.hitBytes, MissBytes: c.missBytes,
		Evictions: c.evictions,
		Used:      c.used, Capacity: c.capacity,
		Entries: len(c.items),
	}
}
