package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// RemoteMeta implements MetaService against a metadata server running
// in another process, so a clustered front-end node without a
// colocated metadata server can still commit uploads and resolve
// retrievals. It speaks the /meta/commit and /meta/lookup internal
// endpoints and decodes the typed /v1 error envelope, so sentinel
// checks (errors.Is(err, ErrNotFound)) behave exactly as with a local
// *Metadata.
type RemoteMeta struct {
	base string
	http *http.Client
}

// NewRemoteMeta returns a MetaService talking to the metadata server
// at baseURL. httpc may be nil for a shared default with sane
// timeouts.
func NewRemoteMeta(baseURL string, httpc *http.Client) *RemoteMeta {
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	return &RemoteMeta{base: baseURL, http: httpc}
}

// postJSON is a single-attempt JSON round trip; retries are the
// caller's business (front-end commit failures surface to the client,
// which re-issues the operation).
func (m *RemoteMeta) postJSON(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, m.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(APIHeader, APIV1)
	resp, err := m.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Commit implements MetaService.
func (m *RemoteMeta) Commit(url string, chunkMD5s []Sum) error {
	return m.postJSON("/meta/commit", CommitRequest{URL: url, ChunkMD5s: sumStrings(chunkMD5s)}, nil)
}

// Lookup implements MetaService.
func (m *RemoteMeta) Lookup(sum Sum) (FileMeta, error) {
	var resp LookupResponse
	if err := m.postJSON("/meta/lookup", LookupRequest{FileMD5: sum.String()}, &resp); err != nil {
		return FileMeta{}, err
	}
	fileSum, err := ParseSum(resp.FileMD5)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad file digest: %w", err)
	}
	chunks, err := parseSums(resp.ChunkMD5s)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad chunk digest: %w", err)
	}
	return FileMeta{
		Name:      resp.Name,
		Size:      resp.Size,
		FileMD5:   fileSum,
		ChunkMD5s: chunks,
		URL:       resp.URL,
	}, nil
}
