package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/randx"
	"mcloud/internal/tracing"
)

// RemoteMeta implements MetaService against a metadata server running
// in another process, so a clustered front-end node without a
// colocated metadata server can still commit uploads and resolve
// retrievals. It speaks the /meta/commit and /meta/lookup internal
// endpoints and decodes the typed /v1 error envelope, so sentinel
// checks (errors.Is(err, ErrNotFound)) behave exactly as with a local
// *Metadata.
//
// It is built to ride through a metadata-node kill: every request gets
// a per-attempt deadline, failed attempts back off exponentially with
// deterministic jitter and honor Retry-After, and when several
// endpoints are configured (primary first, then standbys) attempts
// rotate through them in circuit-breaker health order. A standby
// answers reads and rejects writes with a retryable 503, so writes
// keep cycling until the primary is back — the front-end never has to
// know which node is which.
type RemoteMeta struct {
	endpoints []string // primary first; never empty
	http      *http.Client
	health    *cluster.Health
	retry     RetryPolicy

	rngMu sync.Mutex
	rng   *randx.Source
}

// DefaultMetaRetry shapes RemoteMeta's persistence: enough attempts
// and delay headroom to span a metadata-node restart (a few seconds),
// with short per-attempt deadlines so a dead node is detected fast.
var DefaultMetaRetry = RetryPolicy{
	MaxAttempts:    8,
	BaseDelay:      50 * time.Millisecond,
	MaxDelay:       2 * time.Second,
	Multiplier:     2,
	Jitter:         0.5,
	RequestTimeout: 5 * time.Second,
}

// NewRemoteMeta returns a MetaService talking to the metadata servers
// listed in baseURL — a comma-separated list, primary first, standbys
// after. httpc may be nil for a shared default with sane timeouts.
func NewRemoteMeta(baseURL string, httpc *http.Client) *RemoteMeta {
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	var eps []string
	for _, e := range strings.Split(baseURL, ",") {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e != "" {
			eps = append(eps, e)
		}
	}
	if len(eps) == 0 {
		eps = []string{""}
	}
	return &RemoteMeta{
		endpoints: eps,
		http:      httpc,
		health:    cluster.NewHealth(0, 0),
		retry:     DefaultMetaRetry,
		rng:       randx.Derive(0, "remotemeta"),
	}
}

// SetRetry overrides the retry policy and jitter seed (tests, tuning).
func (m *RemoteMeta) SetRetry(pol RetryPolicy, seed uint64) {
	m.retry = pol.withDefaults()
	m.rngMu.Lock()
	m.rng = randx.Derive(seed, "remotemeta")
	m.rngMu.Unlock()
}

// pick chooses the endpoint for a 1-based attempt: health-ordered
// (alive before tripped, configured order inside each class), rotated
// by attempt so consecutive retries try different nodes.
func (m *RemoteMeta) pick(attempt int) string {
	ordered := m.health.Order(m.endpoints)
	if len(ordered) == 0 {
		ordered = m.endpoints
	}
	return ordered[(attempt-1)%len(ordered)]
}

func (m *RemoteMeta) jitterDraw() float64 {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Float64()
}

// postJSON runs one logical metadata operation with retries. Each
// attempt is a span (child of the caller's trace, annotated with the
// endpoint and the fault seen) whose headers ride the request, so the
// metadata server's handler span joins under the caller's trace.
func (m *RemoteMeta) postJSON(ctx context.Context, op, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	pol := m.retry.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		ep := m.pick(attempt)
		req, err := http.NewRequest(http.MethodPost, ep+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(APIHeader, APIV1)
		att := tracing.ChildFromContext(ctx, tracing.CompMeta, op)
		att.AnnotateInt("attempt", int64(attempt))
		att.Annotate("endpoint", ep)
		att.Inject(req.Header)
		actx, cancel := context.WithTimeout(ctx, pol.RequestTimeout)
		resp, err := m.http.Do(req.WithContext(actx))
		var retryAfter time.Duration
		if err != nil {
			m.health.ReportFailure(ep)
		} else {
			// Any HTTP response means the node is up — even a 503
			// standby rejection (routing, not node health).
			m.health.ReportSuccess(ep)
			retryAfter = parseRetryAfter(resp.Header)
			if resp.StatusCode != http.StatusOK {
				err = decodeError(resp)
			} else if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
		}
		cancel()
		if err != nil {
			att.Annotate("fault", err.Error())
		}
		att.End()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("storage: meta %s: giving up after %d attempts: %w", op, attempt, lastErr)
		}
		d := pol.backoff(attempt, m.jitterDraw())
		if retryAfter > d {
			d = retryAfter
		}
		if d > pol.MaxDelay {
			d = pol.MaxDelay
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return fmt.Errorf("storage: meta %s: %w (last error: %v)", op, ctx.Err(), lastErr)
		}
	}
}

// Commit implements MetaService.
func (m *RemoteMeta) Commit(url string, chunkMD5s []Sum) error {
	return m.CommitCtx(context.Background(), url, chunkMD5s)
}

// CommitCtx is Commit with trace propagation and cancellation.
func (m *RemoteMeta) CommitCtx(ctx context.Context, url string, chunkMD5s []Sum) error {
	return m.postJSON(ctx, "meta-commit", "/meta/commit",
		CommitRequest{URL: url, ChunkMD5s: sumStrings(chunkMD5s)}, nil)
}

// Lookup implements MetaService.
func (m *RemoteMeta) Lookup(sum Sum) (FileMeta, error) {
	return m.LookupCtx(context.Background(), sum)
}

// LookupCtx is Lookup with trace propagation and cancellation.
func (m *RemoteMeta) LookupCtx(ctx context.Context, sum Sum) (FileMeta, error) {
	var resp LookupResponse
	if err := m.postJSON(ctx, "meta-lookup", "/meta/lookup", LookupRequest{FileMD5: sum.String()}, &resp); err != nil {
		return FileMeta{}, err
	}
	fileSum, err := ParseSum(resp.FileMD5)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad file digest: %w", err)
	}
	chunks, err := parseSums(resp.ChunkMD5s)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad chunk digest: %w", err)
	}
	return FileMeta{
		Name:      resp.Name,
		Size:      resp.Size,
		FileMD5:   fileSum,
		ChunkMD5s: chunks,
		URL:       resp.URL,
	}, nil
}
