package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/randx"
	"mcloud/internal/tracing"
)

// RemoteMeta implements MetaService against a metadata plane running
// in other processes, so a clustered front-end node without a
// colocated metadata server can still commit uploads and resolve
// retrievals. It speaks the /meta/commit and /meta/lookup internal
// endpoints and decodes the typed /v1 error envelope, so sentinel
// checks (errors.Is(err, ErrNotFound)) behave exactly as with a local
// *Metadata.
//
// The plane may be sharded: RemoteMeta keeps fully independent
// routing state per shard — endpoint rotation, circuit breakers,
// discovered primary, and highest observed epoch are all per-shard,
// so a failover in one shard never perturbs routing to the others.
// Every request is pinned to the shard the caller names (the pin a
// client's store-check/resolve handshake produced); a wrong_shard
// rejection carries the authoritative assignment, which is adopted
// before the retry — convergence in one bounce.
//
// It is built to ride through a metadata-node kill and an automatic
// failover: every request gets a per-attempt deadline, failed attempts
// back off exponentially with deterministic jitter and honor
// Retry-After, and attempts rotate through the shard's endpoints in
// circuit-breaker health order. The configured order is only the
// starting point — a node answering "not primary" or "fenced" is
// demoted to the back of the rotation and the shard's current primary
// is rediscovered via /v1/meta/wal/status, so after a failover
// requests go straight to the promoted standby instead of burning a
// round trip on the deposed primary first. The highest leadership
// epoch seen per shard is echoed on every request, which is what
// fences a deposed primary the moment a post-failover client talks
// to it.
type RemoteMeta struct {
	http  *http.Client
	retry RetryPolicy

	shMu   sync.Mutex
	shards map[int]*remoteShard
	smap   *cluster.MetaShardMap // nil: unsharded, every pin falls back to boot
	boot   []string              // bootstrap endpoints (the unsharded endpoint list)

	rngMu sync.Mutex
	rng   *randx.Source
}

// remoteShard is the routing state for one metadata shard group.
type remoteShard struct {
	health *cluster.Health

	epMu      sync.Mutex
	endpoints []string // rotation order; demotions move entries back
	preferred string   // last discovered primary ("" until known)
	lastDisc  time.Time

	epochSeen    atomic.Uint64 // highest epoch observed on any response
	primaryEpoch atomic.Uint64 // epoch of the last discovered primary
}

// DefaultMetaRetry shapes RemoteMeta's persistence: enough attempts
// and delay headroom to span a metadata-node restart (a few seconds),
// with short per-attempt deadlines so a dead node is detected fast.
var DefaultMetaRetry = RetryPolicy{
	MaxAttempts:    8,
	BaseDelay:      50 * time.Millisecond,
	MaxDelay:       2 * time.Second,
	Multiplier:     2,
	Jitter:         0.5,
	RequestTimeout: 5 * time.Second,
}

// NewRemoteMeta returns a MetaService talking to the metadata servers
// listed in baseURL — a comma-separated list, primary first, standbys
// after. The whole list is one shard group (the unsharded
// deployment); use NewShardedRemoteMeta for a sharded plane. httpc
// may be nil for a shared default with sane timeouts.
func NewRemoteMeta(baseURL string, httpc *http.Client) *RemoteMeta {
	eps := splitEndpoints(baseURL)
	if len(eps) == 0 {
		eps = []string{""}
	}
	return newRemoteMeta(eps, nil, httpc)
}

// NewShardedRemoteMeta returns a MetaService routing across the shard
// groups of the given map (the -metashards wiring). Each shard's
// endpoint list seeds that shard's rotation.
func NewShardedRemoteMeta(smap *cluster.MetaShardMap, httpc *http.Client) *RemoteMeta {
	var boot []string
	if smap != nil {
		boot = smap.Endpoints(0)
	}
	return newRemoteMeta(boot, smap, httpc)
}

func newRemoteMeta(boot []string, smap *cluster.MetaShardMap, httpc *http.Client) *RemoteMeta {
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	return &RemoteMeta{
		http:   httpc,
		retry:  DefaultMetaRetry,
		shards: make(map[int]*remoteShard),
		smap:   smap,
		boot:   boot,
		rng:    randx.Derive(0, "remotemeta"),
	}
}

// splitEndpoints parses a comma-separated endpoint list.
func splitEndpoints(s string) []string {
	var eps []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e != "" {
			eps = append(eps, e)
		}
	}
	return eps
}

// SetRetry overrides the retry policy and jitter seed (tests, tuning).
func (m *RemoteMeta) SetRetry(pol RetryPolicy, seed uint64) {
	m.retry = pol.withDefaults()
	m.rngMu.Lock()
	m.rng = randx.Derive(seed, "remotemeta")
	m.rngMu.Unlock()
}

// ShardMap returns the map this router was configured with (nil when
// unsharded).
func (m *RemoteMeta) ShardMap() *cluster.MetaShardMap {
	m.shMu.Lock()
	defer m.shMu.Unlock()
	return m.smap
}

// shardState returns (creating on first use) the routing state for a
// shard: seeded from the shard map's endpoint list, falling back to
// the bootstrap endpoints for an unsharded deployment.
func (m *RemoteMeta) shardState(shard int) *remoteShard {
	m.shMu.Lock()
	defer m.shMu.Unlock()
	if rs, ok := m.shards[shard]; ok {
		return rs
	}
	eps := m.smap.Endpoints(shard)
	if len(eps) == 0 {
		eps = m.boot
	}
	rs := &remoteShard{
		endpoints: append([]string(nil), eps...),
		health:    cluster.NewHealth(0, 0),
	}
	m.shards[shard] = rs
	return rs
}

// adoptAssignment folds a wrong_shard redirect's authoritative
// assignment into the router: the named shard's rotation is replaced
// with the owner group's endpoints. The next attempt lands there.
func (m *RemoteMeta) adoptAssignment(a *ShardAssignment) {
	if a == nil || len(a.Endpoints) == 0 {
		return
	}
	rs := m.shardState(a.Shard)
	rs.epMu.Lock()
	rs.endpoints = append([]string(nil), a.Endpoints...)
	rs.preferred = ""
	rs.lastDisc = time.Time{}
	rs.epMu.Unlock()
}

// pick chooses the endpoint for a 1-based attempt: the discovered
// primary first when one is known, then the rest health-ordered (alive
// before tripped, rotation order inside each class), rotated by
// attempt so consecutive retries try different nodes.
func (rs *remoteShard) pick(attempt int) string {
	rs.epMu.Lock()
	eps := append([]string(nil), rs.endpoints...)
	pref := rs.preferred
	rs.epMu.Unlock()
	var ordered []string
	if pref != "" {
		ordered = append(ordered, pref)
		for _, e := range eps {
			if e != pref {
				ordered = append(ordered, e)
			}
		}
		rest := rs.health.Order(ordered[1:])
		ordered = append(ordered[:1], rest...)
	} else {
		ordered = rs.health.Order(eps)
	}
	if len(ordered) == 0 {
		ordered = eps
	}
	return ordered[(attempt-1)%len(ordered)]
}

// demote reacts to a routing signal (standby rejection, fencing, or a
// stale epoch): ep moves to the back of the rotation and loses its
// preferred status, so the next attempt starts somewhere else.
func (rs *remoteShard) demote(ep string) {
	rs.epMu.Lock()
	defer rs.epMu.Unlock()
	for i, e := range rs.endpoints {
		if e == ep {
			rs.endpoints = append(append(rs.endpoints[:i:i], rs.endpoints[i+1:]...), ep)
			break
		}
	}
	if rs.preferred == ep {
		rs.preferred = ""
	}
}

// Discover probes a shard's endpoints via /v1/meta/wal/status and
// prefers that shard's current primary: the non-standby, non-fenced
// node with the highest (epoch, last_seq). Throttled per shard, so a
// burst of demotions costs one sweep. Returns the preferred endpoint,
// "" when none answered as a primary.
func (m *RemoteMeta) Discover(ctx context.Context, shard int) string {
	rs := m.shardState(shard)
	rs.epMu.Lock()
	if time.Since(rs.lastDisc) < 500*time.Millisecond {
		pref := rs.preferred
		rs.epMu.Unlock()
		return pref
	}
	rs.lastDisc = time.Now()
	eps := append([]string(nil), rs.endpoints...)
	rs.epMu.Unlock()

	best := ""
	var bestEpoch, bestSeq uint64
	for _, ep := range eps {
		st, err := m.fetchStatus(ctx, ep)
		if err != nil {
			continue
		}
		if st.Epoch > rs.epochSeen.Load() {
			rs.epochSeen.Store(st.Epoch)
		}
		if st.Standby || st.Fenced {
			continue
		}
		if best == "" || st.Epoch > bestEpoch || (st.Epoch == bestEpoch && st.LastSeq > bestSeq) {
			best, bestEpoch, bestSeq = ep, st.Epoch, st.LastSeq
		}
	}
	if best != "" {
		rs.epMu.Lock()
		rs.preferred = best
		rs.epMu.Unlock()
		rs.primaryEpoch.Store(bestEpoch)
	}
	return best
}

// Summary assembles the metadata-shard half of /v1/cluster/info from
// this router's view: shard count and map version from the configured
// map, each shard's primary from its (throttled) discovery sweep.
func (m *RemoteMeta) Summary(ctx context.Context) *MetaShardSummary {
	m.shMu.Lock()
	smap := m.smap
	m.shMu.Unlock()
	sum := &MetaShardSummary{Shards: smap.NumShards()}
	if smap != nil {
		sum.MapVersion = smap.Version
	}
	for i := 0; i < sum.Shards; i++ {
		pref := m.Discover(ctx, i)
		rs := m.shardState(i)
		sum.ShardInfo = append(sum.ShardInfo, MetaShardInfo{
			Shard:   i,
			Primary: pref,
			Epoch:   rs.primaryEpoch.Load(),
		})
	}
	return sum
}

// fetchStatus reads one endpoint's WAL status with a short deadline.
func (m *RemoteMeta) fetchStatus(ctx context.Context, ep string) (MetaWALStatus, error) {
	req, err := http.NewRequest(http.MethodGet, ep+"/v1/meta/wal/status", nil)
	if err != nil {
		return MetaWALStatus{}, err
	}
	req.Header.Set(APIHeader, APIV1)
	sctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := m.http.Do(req.WithContext(sctx))
	if err != nil {
		return MetaWALStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetaWALStatus{}, decodeError(resp)
	}
	var st MetaWALStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return MetaWALStatus{}, err
	}
	return st, nil
}

// observeEpochHeader folds a response's epoch stamp into the shard's
// view, reporting whether the serving endpoint is behind an epoch this
// client has already seen (a deposed primary still answering).
func (rs *remoteShard) observeEpochHeader(h http.Header) (stale bool) {
	v := h.Get(MetaEpochHeader)
	if v == "" {
		return false
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return false
	}
	for {
		seen := rs.epochSeen.Load()
		if e <= seen {
			return e < seen
		}
		if rs.epochSeen.CompareAndSwap(seen, e) {
			return false
		}
	}
}

func (m *RemoteMeta) jitterDraw() float64 {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Float64()
}

// postJSON runs one logical metadata operation against one shard with
// retries. Each attempt is a span (child of the caller's trace,
// annotated with the shard, endpoint, and the fault seen) whose
// headers ride the request, so the metadata server's handler span
// joins under the caller's trace.
func (m *RemoteMeta) postJSON(ctx context.Context, op string, shard int, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	pol := m.retry.withDefaults()
	var lastErr error
	rotation := 0
	for attempt := 1; ; attempt++ {
		rs := m.shardState(shard)
		rotation++
		ep := rs.pick(rotation)
		req, err := http.NewRequest(http.MethodPost, ep+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(APIHeader, APIV1)
		if e := rs.epochSeen.Load(); e > 0 {
			req.Header.Set(MetaEpochHeader, strconv.FormatUint(e, 10))
		}
		req.Header.Set(MetaShardHeader, FormatMetaShard(shard, m.mapVersion()))
		att := tracing.ChildFromContext(ctx, tracing.CompMeta, op)
		att.AnnotateInt("attempt", int64(attempt))
		att.AnnotateInt("shard", int64(shard))
		att.Annotate("endpoint", ep)
		att.Inject(req.Header)
		actx, cancel := context.WithTimeout(ctx, pol.RequestTimeout)
		resp, err := m.http.Do(req.WithContext(actx))
		var retryAfter time.Duration
		stale := false
		if err != nil {
			rs.health.ReportFailure(ep)
		} else {
			// Any HTTP response means the node is up — even a 503
			// standby rejection (routing, not node health).
			rs.health.ReportSuccess(ep)
			stale = rs.observeEpochHeader(resp.Header)
			retryAfter = parseRetryAfter(resp.Header)
			if resp.StatusCode != http.StatusOK {
				err = decodeError(resp)
			} else if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
		}
		cancel()
		// A wrong_shard redirect outranks rotation: the endpoint group
		// we hold for this shard is not the owner. Adopt the attached
		// assignment and restart the rotation on the corrected group.
		if errors.Is(err, ErrWrongShard) {
			var ae *APIError
			if errors.As(err, &ae) && ae.Assignment != nil {
				m.adoptAssignment(ae.Assignment)
				att.Annotate("redirect", fmt.Sprintf("shard %d", ae.Assignment.Shard))
				// Follow the redirect: later attempts route (and stamp
				// the exchange header) for the owner shard.
				shard = ae.Assignment.Shard
				rotation = 0
			}
		} else if stale || errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrFenced) {
			// Routing signals, distinct from node health: the node
			// answered, but it is not (or no longer) the shard's
			// primary. Demote it so the next attempt — and every later
			// request — starts elsewhere, and rediscover where the
			// primary went.
			rs.demote(ep)
			m.Discover(ctx, shard)
			att.Annotate("demoted", ep)
			// Restart the rotation: the next attempt must go to the
			// rediscovered primary, not to whatever the pre-demotion
			// attempt index happens to land on.
			rotation = 0
		}
		if err != nil {
			att.Annotate("fault", err.Error())
		}
		att.End()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("storage: meta %s: giving up after %d attempts: %w", op, attempt, lastErr)
		}
		d := pol.backoff(attempt, m.jitterDraw())
		if retryAfter > d {
			d = retryAfter
		}
		if d > pol.MaxDelay {
			d = pol.MaxDelay
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return fmt.Errorf("storage: meta %s: %w (last error: %v)", op, ctx.Err(), lastErr)
		}
	}
}

// mapVersion returns the configured map's version (0 when unsharded).
func (m *RemoteMeta) mapVersion() uint64 {
	m.shMu.Lock()
	defer m.shMu.Unlock()
	if m.smap == nil {
		return 0
	}
	return m.smap.Version
}

// Commit implements MetaService.
func (m *RemoteMeta) Commit(shard int, url string, chunkMD5s []Sum) error {
	return m.CommitCtx(context.Background(), shard, url, chunkMD5s)
}

// CommitCtx is Commit with trace propagation and cancellation.
func (m *RemoteMeta) CommitCtx(ctx context.Context, shard int, url string, chunkMD5s []Sum) error {
	return m.postJSON(ctx, "meta-commit", shard, "/v1/meta/commit",
		CommitRequest{Shard: shard, URL: url, ChunkMD5s: sumStrings(chunkMD5s)}, nil)
}

// Lookup implements MetaService.
func (m *RemoteMeta) Lookup(shard int, sum Sum) (FileMeta, error) {
	return m.LookupCtx(context.Background(), shard, sum)
}

// LookupCtx is Lookup with trace propagation and cancellation.
func (m *RemoteMeta) LookupCtx(ctx context.Context, shard int, sum Sum) (FileMeta, error) {
	var resp LookupResponse
	if err := m.postJSON(ctx, "meta-lookup", shard, "/v1/meta/lookup",
		LookupRequest{Shard: shard, FileMD5: sum.String()}, &resp); err != nil {
		return FileMeta{}, err
	}
	fileSum, err := ParseSum(resp.FileMD5)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad file digest: %w", err)
	}
	chunks, err := parseSums(resp.ChunkMD5s)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad chunk digest: %w", err)
	}
	return FileMeta{
		Name:      resp.Name,
		Size:      resp.Size,
		FileMD5:   fileSum,
		ChunkMD5s: chunks,
		URL:       resp.URL,
	}, nil
}
