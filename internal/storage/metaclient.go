package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/randx"
	"mcloud/internal/tracing"
)

// RemoteMeta implements MetaService against a metadata server running
// in another process, so a clustered front-end node without a
// colocated metadata server can still commit uploads and resolve
// retrievals. It speaks the /meta/commit and /meta/lookup internal
// endpoints and decodes the typed /v1 error envelope, so sentinel
// checks (errors.Is(err, ErrNotFound)) behave exactly as with a local
// *Metadata.
//
// It is built to ride through a metadata-node kill and an automatic
// failover: every request gets a per-attempt deadline, failed attempts
// back off exponentially with deterministic jitter and honor
// Retry-After, and when several endpoints are configured attempts
// rotate through them in circuit-breaker health order. The configured
// order is only the starting point — a node answering "not primary" or
// "fenced" is demoted to the back of the rotation and the current
// primary is rediscovered via /v1/meta/wal/status, so after a failover
// requests go straight to the promoted standby instead of burning a
// round trip on the deposed primary first. The highest leadership
// epoch seen is echoed on every request, which is what fences a
// deposed primary the moment a post-failover client talks to it.
type RemoteMeta struct {
	http   *http.Client
	health *cluster.Health
	retry  RetryPolicy

	epMu      sync.Mutex
	endpoints []string // rotation order; demotions move entries back
	preferred string   // last discovered primary ("" until known)
	lastDisc  time.Time

	epochSeen atomic.Uint64 // highest epoch observed on any response

	rngMu sync.Mutex
	rng   *randx.Source
}

// DefaultMetaRetry shapes RemoteMeta's persistence: enough attempts
// and delay headroom to span a metadata-node restart (a few seconds),
// with short per-attempt deadlines so a dead node is detected fast.
var DefaultMetaRetry = RetryPolicy{
	MaxAttempts:    8,
	BaseDelay:      50 * time.Millisecond,
	MaxDelay:       2 * time.Second,
	Multiplier:     2,
	Jitter:         0.5,
	RequestTimeout: 5 * time.Second,
}

// NewRemoteMeta returns a MetaService talking to the metadata servers
// listed in baseURL — a comma-separated list, primary first, standbys
// after. httpc may be nil for a shared default with sane timeouts.
func NewRemoteMeta(baseURL string, httpc *http.Client) *RemoteMeta {
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	var eps []string
	for _, e := range strings.Split(baseURL, ",") {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e != "" {
			eps = append(eps, e)
		}
	}
	if len(eps) == 0 {
		eps = []string{""}
	}
	return &RemoteMeta{
		endpoints: eps,
		http:      httpc,
		health:    cluster.NewHealth(0, 0),
		retry:     DefaultMetaRetry,
		rng:       randx.Derive(0, "remotemeta"),
	}
}

// SetRetry overrides the retry policy and jitter seed (tests, tuning).
func (m *RemoteMeta) SetRetry(pol RetryPolicy, seed uint64) {
	m.retry = pol.withDefaults()
	m.rngMu.Lock()
	m.rng = randx.Derive(seed, "remotemeta")
	m.rngMu.Unlock()
}

// pick chooses the endpoint for a 1-based attempt: the discovered
// primary first when one is known, then the rest health-ordered (alive
// before tripped, rotation order inside each class), rotated by
// attempt so consecutive retries try different nodes.
func (m *RemoteMeta) pick(attempt int) string {
	m.epMu.Lock()
	eps := append([]string(nil), m.endpoints...)
	pref := m.preferred
	m.epMu.Unlock()
	var ordered []string
	if pref != "" {
		ordered = append(ordered, pref)
		for _, e := range eps {
			if e != pref {
				ordered = append(ordered, e)
			}
		}
		rest := m.health.Order(ordered[1:])
		ordered = append(ordered[:1], rest...)
	} else {
		ordered = m.health.Order(eps)
	}
	if len(ordered) == 0 {
		ordered = eps
	}
	return ordered[(attempt-1)%len(ordered)]
}

// demote reacts to a routing signal (standby rejection, fencing, or a
// stale epoch): ep moves to the back of the rotation and loses its
// preferred status, so the next attempt starts somewhere else.
func (m *RemoteMeta) demote(ep string) {
	m.epMu.Lock()
	defer m.epMu.Unlock()
	for i, e := range m.endpoints {
		if e == ep {
			m.endpoints = append(append(m.endpoints[:i:i], m.endpoints[i+1:]...), ep)
			break
		}
	}
	if m.preferred == ep {
		m.preferred = ""
	}
}

// Discover probes every endpoint's /v1/meta/wal/status and prefers the
// current primary: the non-standby, non-fenced node with the highest
// (epoch, last_seq). Throttled, so a burst of demotions costs one
// sweep. Returns the preferred endpoint, "" when none answered as a
// primary.
func (m *RemoteMeta) Discover(ctx context.Context) string {
	m.epMu.Lock()
	if time.Since(m.lastDisc) < 500*time.Millisecond {
		pref := m.preferred
		m.epMu.Unlock()
		return pref
	}
	m.lastDisc = time.Now()
	eps := append([]string(nil), m.endpoints...)
	m.epMu.Unlock()

	best := ""
	var bestEpoch, bestSeq uint64
	for _, ep := range eps {
		st, err := m.fetchStatus(ctx, ep)
		if err != nil {
			continue
		}
		if st.Epoch > m.epochSeen.Load() {
			m.epochSeen.Store(st.Epoch)
		}
		if st.Standby || st.Fenced {
			continue
		}
		if best == "" || st.Epoch > bestEpoch || (st.Epoch == bestEpoch && st.LastSeq > bestSeq) {
			best, bestEpoch, bestSeq = ep, st.Epoch, st.LastSeq
		}
	}
	if best != "" {
		m.epMu.Lock()
		m.preferred = best
		m.epMu.Unlock()
	}
	return best
}

// fetchStatus reads one endpoint's WAL status with a short deadline.
func (m *RemoteMeta) fetchStatus(ctx context.Context, ep string) (MetaWALStatus, error) {
	req, err := http.NewRequest(http.MethodGet, ep+"/v1/meta/wal/status", nil)
	if err != nil {
		return MetaWALStatus{}, err
	}
	req.Header.Set(APIHeader, APIV1)
	sctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := m.http.Do(req.WithContext(sctx))
	if err != nil {
		return MetaWALStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetaWALStatus{}, decodeError(resp)
	}
	var st MetaWALStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return MetaWALStatus{}, err
	}
	return st, nil
}

// observeEpochHeader folds a response's epoch stamp into the client's
// view, reporting whether the serving endpoint is behind an epoch this
// client has already seen (a deposed primary still answering).
func (m *RemoteMeta) observeEpochHeader(h http.Header) (stale bool) {
	v := h.Get(MetaEpochHeader)
	if v == "" {
		return false
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return false
	}
	for {
		seen := m.epochSeen.Load()
		if e <= seen {
			return e < seen
		}
		if m.epochSeen.CompareAndSwap(seen, e) {
			return false
		}
	}
}

func (m *RemoteMeta) jitterDraw() float64 {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Float64()
}

// postJSON runs one logical metadata operation with retries. Each
// attempt is a span (child of the caller's trace, annotated with the
// endpoint and the fault seen) whose headers ride the request, so the
// metadata server's handler span joins under the caller's trace.
func (m *RemoteMeta) postJSON(ctx context.Context, op, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	pol := m.retry.withDefaults()
	var lastErr error
	rotation := 0
	for attempt := 1; ; attempt++ {
		rotation++
		ep := m.pick(rotation)
		req, err := http.NewRequest(http.MethodPost, ep+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(APIHeader, APIV1)
		if e := m.epochSeen.Load(); e > 0 {
			req.Header.Set(MetaEpochHeader, strconv.FormatUint(e, 10))
		}
		att := tracing.ChildFromContext(ctx, tracing.CompMeta, op)
		att.AnnotateInt("attempt", int64(attempt))
		att.Annotate("endpoint", ep)
		att.Inject(req.Header)
		actx, cancel := context.WithTimeout(ctx, pol.RequestTimeout)
		resp, err := m.http.Do(req.WithContext(actx))
		var retryAfter time.Duration
		stale := false
		if err != nil {
			m.health.ReportFailure(ep)
		} else {
			// Any HTTP response means the node is up — even a 503
			// standby rejection (routing, not node health).
			m.health.ReportSuccess(ep)
			stale = m.observeEpochHeader(resp.Header)
			retryAfter = parseRetryAfter(resp.Header)
			if resp.StatusCode != http.StatusOK {
				err = decodeError(resp)
			} else if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
		}
		cancel()
		// Routing signals, distinct from node health: the node answered,
		// but it is not (or no longer) the primary. Demote it so the
		// next attempt — and every later request — starts elsewhere, and
		// rediscover where the primary went.
		if stale || errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrFenced) {
			m.demote(ep)
			m.Discover(ctx)
			att.Annotate("demoted", ep)
			// Restart the rotation: the next attempt must go to the
			// rediscovered primary, not to whatever the pre-demotion
			// attempt index happens to land on.
			rotation = 0
		}
		if err != nil {
			att.Annotate("fault", err.Error())
		}
		att.End()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("storage: meta %s: giving up after %d attempts: %w", op, attempt, lastErr)
		}
		d := pol.backoff(attempt, m.jitterDraw())
		if retryAfter > d {
			d = retryAfter
		}
		if d > pol.MaxDelay {
			d = pol.MaxDelay
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return fmt.Errorf("storage: meta %s: %w (last error: %v)", op, ctx.Err(), lastErr)
		}
	}
}

// Commit implements MetaService.
func (m *RemoteMeta) Commit(url string, chunkMD5s []Sum) error {
	return m.CommitCtx(context.Background(), url, chunkMD5s)
}

// CommitCtx is Commit with trace propagation and cancellation.
func (m *RemoteMeta) CommitCtx(ctx context.Context, url string, chunkMD5s []Sum) error {
	return m.postJSON(ctx, "meta-commit", "/meta/commit",
		CommitRequest{URL: url, ChunkMD5s: sumStrings(chunkMD5s)}, nil)
}

// Lookup implements MetaService.
func (m *RemoteMeta) Lookup(sum Sum) (FileMeta, error) {
	return m.LookupCtx(context.Background(), sum)
}

// LookupCtx is Lookup with trace propagation and cancellation.
func (m *RemoteMeta) LookupCtx(ctx context.Context, sum Sum) (FileMeta, error) {
	var resp LookupResponse
	if err := m.postJSON(ctx, "meta-lookup", "/meta/lookup", LookupRequest{FileMD5: sum.String()}, &resp); err != nil {
		return FileMeta{}, err
	}
	fileSum, err := ParseSum(resp.FileMD5)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad file digest: %w", err)
	}
	chunks, err := parseSums(resp.ChunkMD5s)
	if err != nil {
		return FileMeta{}, fmt.Errorf("storage: remote meta returned bad chunk digest: %w", err)
	}
	return FileMeta{
		Name:      resp.Name,
		Size:      resp.Size,
		FileMD5:   fileSum,
		ChunkMD5s: chunks,
		URL:       resp.URL,
	}, nil
}
