package storage

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mcloud/internal/metrics"
	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

// fastRetry keeps resilience tests quick: real retries, tiny backoffs.
var fastRetry = RetryPolicy{
	MaxAttempts:    4,
	BaseDelay:      time.Millisecond,
	MaxDelay:       5 * time.Millisecond,
	Multiplier:     2,
	Jitter:         0.1,
	Budget:         64,
	RequestTimeout: 10 * time.Second,
}

// newFlakyService is newTestService with a middleware hook on the
// front-end handler, for injecting targeted failures.
func newFlakyService(t *testing.T, wrap func(http.Handler) http.Handler) (*Client, *MemStore, func()) {
	t.Helper()
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta})
	h := fe.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	feSrv := httptest.NewServer(h)
	metaSrv := httptest.NewServer(meta.Handler())
	meta.AddFrontEnd(feSrv.URL)
	pol := fastRetry
	client := &Client{
		MetaURL:  metaSrv.URL,
		UserID:   42,
		DeviceID: 7,
		Device:   trace.Android,
		Retry:    &pol,
	}
	cleanup := func() {
		feSrv.Close()
		metaSrv.Close()
	}
	return client, store, cleanup
}

// isChunkReq matches chunk requests in either API dialect
// ("/chunk/{md5}" or "/v1/chunk/{md5}").
func isChunkReq(r *http.Request) bool {
	return strings.HasPrefix(strings.TrimPrefix(r.URL.Path, "/v1"), "/chunk/")
}

func chunkedData(t *testing.T, seed uint64, n int) []byte {
	t.Helper()
	src := randx.New(seed)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(src.Uint64())
	}
	return data
}

// TestRetryTransient5xx: a metadata server that fails twice with 503
// must not fail the store — the client retries and recovers.
func TestRetryTransient5xx(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			// The one-time shard-map bootstrap probe; not an op attempt.
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("overloaded"))
			return
		}
		writeJSON(w, StoreCheckResponse{Duplicate: true, URL: "/f/dup"})
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	pol := fastRetry
	client := &Client{MetaURL: srv.URL, UserID: 1, Retry: &pol, Metrics: NewClientMetrics(reg)}
	res, err := client.StoreFile("a.bin", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deduplicated || res.URL != "/f/dup" {
		t.Errorf("result = %+v", res)
	}
	if attempts != 3 {
		t.Errorf("server saw %d attempts, want 3", attempts)
	}
	st := client.Metrics.Stats()
	if st.Retries != 2 || st.RetrySuccess != 1 {
		t.Errorf("stats = %+v, want 2 retries / 1 recovered", st)
	}
}

// TestPermanent4xxFailsFast: client-caused errors must not be retried.
func TestPermanent4xxFailsFast(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed"))
	}))
	defer srv.Close()

	pol := fastRetry
	client := &Client{MetaURL: srv.URL, UserID: 1, Retry: &pol}
	if _, err := client.StoreFile("a.bin", []byte("hello")); err == nil {
		t.Fatal("400 response did not surface as an error")
	}
	if attempts != 1 {
		t.Errorf("server saw %d attempts, want 1 (no retries on 4xx)", attempts)
	}
}

// TestRetryBudgetExhaustion: a dead server consumes MaxAttempts, not
// the whole budget, and reports a give-up.
func TestRetryBudgetExhaustion(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		writeError(w, http.StatusInternalServerError, fmt.Errorf("down"))
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	pol := fastRetry
	client := &Client{MetaURL: srv.URL, UserID: 1, Retry: &pol, Metrics: NewClientMetrics(reg)}
	if _, err := client.StoreFile("a.bin", []byte("hello")); err == nil {
		t.Fatal("persistent 500s did not surface as an error")
	}
	if attempts != pol.MaxAttempts {
		t.Errorf("server saw %d attempts, want %d", attempts, pol.MaxAttempts)
	}
	if st := client.Metrics.Stats(); st.GiveUps != 1 {
		t.Errorf("giveups = %d, want 1", st.GiveUps)
	}
}

// TestDownloadTruncationRefetched: the first chunk GET returns a body
// cut off mid-stream; the client must detect it and re-fetch rather
// than hand back corrupt data.
func TestDownloadTruncationRefetched(t *testing.T) {
	var mu sync.Mutex
	truncated := false
	wrap := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hit := r.Method == http.MethodGet && isChunkReq(r) && !truncated
			if hit {
				truncated = true
			}
			mu.Unlock()
			if !hit {
				next.ServeHTTP(w, r)
				return
			}
			// Serve the real response but cut the body in half, advertising
			// the full length so the client sees an unexpected EOF.
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.Code)
			w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		})
	}
	client, _, cleanup := newFlakyService(t, wrap)
	defer cleanup()
	// The injected truncation targets the per-chunk JSON GET; pin the
	// dialect so the batched binary path does not route around it.
	client.DisableBin = true
	reg := metrics.NewRegistry()
	client.Metrics = NewClientMetrics(reg)

	data := chunkedData(t, 11, ChunkSize+999) // 2 chunks
	res, err := client.StoreFile("v.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved content differs after truncated download")
	}
	if !truncated {
		t.Fatal("test never injected the truncation")
	}
	if st := client.Metrics.Stats(); st.Refetches < 1 {
		t.Errorf("refetches = %d, want >= 1", st.Refetches)
	}
}

// TestUploadConnectionResetRecovered: the server kills the connection
// on the first chunk PUT; the idempotent re-PUT must recover.
func TestUploadConnectionResetRecovered(t *testing.T) {
	var mu sync.Mutex
	reset := false
	wrap := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hit := r.Method == http.MethodPut && isChunkReq(r) && !reset
			if hit {
				reset = true
			}
			mu.Unlock()
			if hit {
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
	client, store, cleanup := newFlakyService(t, wrap)
	defer cleanup()
	// The injected reset targets the per-chunk JSON PUT; pin the
	// dialect so the batched binary path does not route around it.
	client.DisableBin = true
	reg := metrics.NewRegistry()
	client.Metrics = NewClientMetrics(reg)

	data := chunkedData(t, 12, ChunkSize+1)
	res, err := client.StoreFile("v.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved content differs after mid-upload reset")
	}
	if st := store.Stats(); st.Chunks != 2 {
		t.Errorf("store has %d chunks, want 2", st.Chunks)
	}
	if st := client.Metrics.Stats(); st.Retries < 1 || st.RetrySuccess < 1 {
		t.Errorf("stats = %+v, want at least one recovered retry", st)
	}
}

// TestStoreResumeSendsOnlyMissing: when an upload dies mid-file, the
// re-issued operation request must resume from the missing-chunk set —
// chunks that already landed are never re-sent.
func TestStoreResumeSendsOnlyMissing(t *testing.T) {
	var mu sync.Mutex
	putAttempts := 0
	putsByDigest := map[string]int{}
	wrap := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPut && isChunkReq(r) {
				mu.Lock()
				putAttempts++
				fail := putAttempts == 2
				if !fail {
					putsByDigest[trimChunkPath(r.URL.Path)]++
				}
				mu.Unlock()
				if fail {
					writeError(w, http.StatusServiceUnavailable, fmt.Errorf("upstream flapped"))
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
	client, _, cleanup := newFlakyService(t, wrap)
	defer cleanup()
	// Per-chunk upload accounting only holds on the JSON dialect; the
	// binary path batches PUTs.
	client.DisableBin = true
	// One attempt per request: the injected 503 immediately fails the
	// chunk PUT, forcing the resume path rather than an in-place retry.
	pol := fastRetry
	pol.MaxAttempts = 1
	client.Retry = &pol
	reg := metrics.NewRegistry()
	client.Metrics = NewClientMetrics(reg)

	data := chunkedData(t, 13, 2*ChunkSize+100) // 3 chunks
	sums := SplitSums(data)
	res, err := client.StoreFile("v.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", res.Resumes)
	}
	if res.ChunksSent != 3 {
		t.Errorf("chunks sent = %d, want 3", res.ChunksSent)
	}
	// The first chunk landed before the failure and must not be re-sent
	// by the resumed pass.
	if n := putsByDigest[sums[0].String()]; n != 1 {
		t.Errorf("chunk 0 uploaded %d times, want 1", n)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved content differs after resumed upload")
	}
	if st := client.Metrics.Stats(); st.Resumes != 1 {
		t.Errorf("metrics resumes = %d, want 1", st.Resumes)
	}
}

// TestStoreOpReportsMissingAfterPartialUpload exercises the server side
// of resume directly: op re-issue reports exactly the chunks that have
// not arrived, and an op re-issue with nothing missing commits.
func TestStoreOpReportsMissingAfterPartialUpload(t *testing.T) {
	client, _, cleanup := newFlakyService(t, nil)
	defer cleanup()

	data := chunkedData(t, 14, 2*ChunkSize+100) // 3 chunks
	sums := SplitSums(data)
	budget := client.newBudget()

	var check StoreCheckResponse
	err := client.postJSON(client.MetaURL, "/meta/store-check", StoreCheckRequest{
		UserID: client.UserID, Name: "p.bin", Size: int64(len(data)), FileMD5: SumBytes(data).String(),
	}, &check, budget)
	if err != nil {
		t.Fatal(err)
	}
	strs := make([]string, len(sums))
	for i, s := range sums {
		strs[i] = s.String()
	}
	op := FileOpRequest{UserID: client.UserID, Name: "p.bin", Size: int64(len(data)), FileMD5: SumBytes(data).String(), ChunkMD5s: strs}

	var resp FileOpResponse
	if err := client.postJSON(check.FrontEnd, "/op/store?url="+check.URL, op, &resp, budget); err != nil {
		t.Fatal(err)
	}
	if !resp.Resumable || len(resp.MissingMD5s) != 3 {
		t.Fatalf("fresh op response = %+v, want 3 missing", resp)
	}

	// Upload only the first chunk, then re-issue the op.
	if err := client.putChunk(check.FrontEnd, check.URL, sums[0], data[:ChunkSize], budget); err != nil {
		t.Fatal(err)
	}
	if err := client.postJSON(check.FrontEnd, "/op/store?url="+check.URL, op, &resp, budget); err != nil {
		t.Fatal(err)
	}
	if len(resp.MissingMD5s) != 2 {
		t.Fatalf("after 1 chunk, missing = %v, want 2 entries", resp.MissingMD5s)
	}
	for _, m := range resp.MissingMD5s {
		if m == sums[0].String() {
			t.Errorf("stored chunk still reported missing")
		}
	}
}

// TestShedderSheds503: beyond the in-flight bound the limiter must
// reject with 503 + Retry-After, and recover once load drains.
func TestShedderSheds503(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	shedder := NewShedder(1)
	srv := httptest.NewServer(shedder.Wrap(slow))
	defer srv.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // first request occupies the only slot

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("second request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Drained: requests are admitted again.
	go func() { <-entered }()
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-drain status = %d, want 200", resp2.StatusCode)
	}
	st := shedder.Stats()
	if st.Sheds != 1 || st.Admitted != 2 || st.InFlight != 0 {
		t.Errorf("stats = %+v", st)
	}
}
