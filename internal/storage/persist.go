package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// metaSnapshot is the JSON form of the metadata server's durable
// state. Front-end assignment and counters are runtime state and are
// not persisted.
type metaSnapshot struct {
	Version int            `json:"version"`
	URLSeq  int64          `json:"url_seq"`
	Files   []fileSnapshot `json:"files"`
	Users   []userSnapshot `json:"users"`
}

type fileSnapshot struct {
	URL       string   `json:"url"`
	Name      string   `json:"name"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s"`
	Committed bool     `json:"committed"`
}

type userSnapshot struct {
	UserID uint64   `json:"user_id"`
	URLs   []string `json:"urls"`
}

const snapshotVersion = 1

// Snapshot serializes the catalog and user namespaces to w.
func (m *Metadata) Snapshot(w io.Writer) error {
	m.mu.RLock()
	snap := m.snapshotLocked()
	m.mu.RUnlock()

	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// snapshotLocked builds the serializable form of the durable state
// (caller holds mu in either mode). The WAL checkpoint and the
// standby snapshot transfer reuse it, so every durability path shares
// one codec.
func (m *Metadata) snapshotLocked() metaSnapshot {
	snap := metaSnapshot{Version: snapshotVersion, URLSeq: m.urlSeq}
	for url, f := range m.byURL {
		_, committed := m.byMD5[f.FileMD5]
		fs := fileSnapshot{
			URL:       url,
			Name:      f.Name,
			Size:      f.Size,
			FileMD5:   f.FileMD5.String(),
			Committed: committed,
		}
		for _, c := range f.ChunkMD5s {
			fs.ChunkMD5s = append(fs.ChunkMD5s, c.String())
		}
		snap.Files = append(snap.Files, fs)
	}
	for uid, ns := range m.users {
		us := userSnapshot{UserID: uid}
		for url := range ns {
			us.URLs = append(us.URLs, url)
		}
		snap.Users = append(snap.Users, us)
	}
	return snap
}

// Restore loads a snapshot into an empty metadata server. Restoring
// into a non-empty server is an error (merge semantics would be
// ambiguous).
func (m *Metadata) Restore(r io.Reader) error {
	var snap metaSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("storage: restore: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byURL) != 0 || len(m.users) != 0 {
		return fmt.Errorf("storage: restore into non-empty metadata server")
	}
	return m.restoreLocked(snap)
}

// restoreLocked rebuilds the in-memory state from a snapshot (caller
// holds mu and has emptied or just-created the maps).
func (m *Metadata) restoreLocked(snap metaSnapshot) error {
	if snap.Version != snapshotVersion {
		return fmt.Errorf("storage: restore: unsupported snapshot version %d", snap.Version)
	}
	m.urlSeq = snap.URLSeq
	for _, fs := range snap.Files {
		sum, err := ParseSum(fs.FileMD5)
		if err != nil {
			return fmt.Errorf("storage: restore file %q: %w", fs.URL, err)
		}
		f := &FileMeta{Name: fs.Name, Size: fs.Size, FileMD5: sum, URL: fs.URL}
		for _, c := range fs.ChunkMD5s {
			cs, err := ParseSum(c)
			if err != nil {
				return fmt.Errorf("storage: restore chunk of %q: %w", fs.URL, err)
			}
			f.ChunkMD5s = append(f.ChunkMD5s, cs)
		}
		m.byURL[fs.URL] = f
		if fs.Committed {
			m.byMD5[sum] = f
		}
	}
	for _, us := range snap.Users {
		for _, url := range us.URLs {
			f, ok := m.byURL[url]
			if !ok {
				return fmt.Errorf("storage: restore: user %d links unknown URL %q", us.UserID, url)
			}
			m.linkLocked(us.UserID, f)
		}
	}
	return nil
}

// renameSnapshot is swapped out by crash-safety tests to simulate a
// failure between the temp-file write and the atomic rename.
var renameSnapshot = os.Rename

// SaveFile writes a snapshot atomically (temp file + fsync + rename +
// parent-directory fsync), so a crash at any point leaves either the
// previous snapshot or the new one — never a torn file. The directory
// fsync matters: without it the rename itself may not have reached
// disk, and a crash immediately after SaveFile returns could resurrect
// the old snapshot (or, for a first save, no snapshot at all).
func (m *Metadata) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".meta-*")
	if err != nil {
		return err
	}
	if err := m.Snapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := renameSnapshot(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dirOf(path))
}

// syncDir fsyncs a directory, making previously-renamed entries in it
// durable. Filesystems that reject directory fsync (some network or
// FUSE mounts) are tolerated: the rename is still atomic, only its
// durability timing is weaker there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (os.IsPermission(err) || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// LoadFile restores from a snapshot file; a missing file is not an
// error (fresh start).
func (m *Metadata) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Restore(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
