package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// populateMeta puts a few files into a metadata server: one committed,
// one provisional, one shared by two users.
func populateMeta(t *testing.T) (*Metadata, map[string]string) {
	t.Helper()
	m := NewMetadata("http://fe1")
	urls := map[string]string{}

	// Committed file for user 1.
	sumA := SumBytes([]byte("content A"))
	respA, err := m.StoreCheck(StoreCheckRequest{UserID: 1, Name: "a.jpg", Size: 9, FileMD5: sumA.String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(0, respA.URL, []Sum{SumBytes([]byte("chunkA"))}); err != nil {
		t.Fatal(err)
	}
	urls["a"] = respA.URL

	// Provisional (uncommitted) file for user 2.
	sumB := SumBytes([]byte("content B"))
	respB, err := m.StoreCheck(StoreCheckRequest{UserID: 2, Name: "b.mp4", Size: 9, FileMD5: sumB.String()})
	if err != nil {
		t.Fatal(err)
	}
	urls["b"] = respB.URL

	// User 3 links user 1's committed content via dedup.
	respA2, err := m.StoreCheck(StoreCheckRequest{UserID: 3, Name: "a-copy.jpg", Size: 9, FileMD5: sumA.String()})
	if err != nil {
		t.Fatal(err)
	}
	if !respA2.Duplicate {
		t.Fatal("expected dedup")
	}
	return m, urls
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, urls := populateMeta(t)

	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewMetadata("http://fe1")
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	// Committed file resolves for both linked users.
	for _, uid := range []uint64{1, 3} {
		res, err := restored.Resolve(ResolveRequest{UserID: uid, URL: urls["a"]})
		if err != nil {
			t.Fatalf("user %d resolve: %v", uid, err)
		}
		if res.Size != 9 {
			t.Errorf("size = %d", res.Size)
		}
	}

	// Committed content still deduplicates.
	resp, err := restored.StoreCheck(StoreCheckRequest{
		UserID: 9, Name: "again.jpg", Size: 9,
		FileMD5: SumBytes([]byte("content A")).String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Error("committed content lost dedup across restore")
	}

	// Provisional content does NOT dedup (chunks never arrived).
	resp, err = restored.StoreCheck(StoreCheckRequest{
		UserID: 9, Name: "b2.mp4", Size: 9,
		FileMD5: SumBytes([]byte("content B")).String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicate {
		t.Error("uncommitted content dedups after restore")
	}

	// URL sequence continues without collisions.
	if resp.URL == urls["a"] || resp.URL == urls["b"] {
		t.Errorf("fresh URL %q collides with restored one", resp.URL)
	}

	// Unlink semantics survive the restore: users 1, 3 and 9 (who just
	// linked via the dedup check above) release the shared file; only
	// the final release is last.
	if _, last, err := restored.Unlink(1, urls["a"]); err != nil || last {
		t.Errorf("first unlink: last=%v err=%v", last, err)
	}
	if _, last, err := restored.Unlink(3, urls["a"]); err != nil || last {
		t.Errorf("second unlink: last=%v err=%v", last, err)
	}
	if _, last, err := restored.Unlink(9, urls["a"]); err != nil || !last {
		t.Errorf("final unlink: last=%v err=%v", last, err)
	}
}

func TestRestoreIntoNonEmptyFails(t *testing.T) {
	m, _ := populateMeta(t)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(&buf); err == nil {
		t.Error("restore into a populated server should fail")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	m := NewMetadata()
	if err := m.Restore(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := m.Restore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := m.Restore(strings.NewReader(
		`{"version":1,"users":[{"user_id":1,"urls":["/f/nope"]}]}`)); err == nil {
		t.Error("dangling user link accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, urls := populateMeta(t)
	path := filepath.Join(t.TempDir(), "meta.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewMetadata()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Resolve(ResolveRequest{UserID: 1, URL: urls["a"]}); err != nil {
		t.Errorf("resolve after file round trip: %v", err)
	}
	// Missing file is a fresh start, not an error.
	fresh := NewMetadata()
	if err := fresh.LoadFile(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Errorf("missing snapshot should not error: %v", err)
	}
	if fresh.Stats().Files != 0 {
		t.Error("fresh server not empty")
	}
}

// TestSaveFileCrashKeepsPreviousSnapshot simulates a crash between the
// temp-file write and the atomic rename: the previous snapshot must
// survive intact, LoadFile must restore it, and no temp file may leak.
func TestSaveFileCrashKeepsPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")

	m1, urls := populateMeta(t)
	if err := m1.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// A second, different state fails to persist at the rename step.
	m2 := NewMetadata("http://fe1")
	resp, err := m2.StoreCheck(StoreCheckRequest{
		UserID: 8, Name: "new.bin", Size: 3,
		FileMD5: SumBytes([]byte("v2!")).String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(0, resp.URL, []Sum{SumBytes([]byte("c"))}); err != nil {
		t.Fatal(err)
	}
	renameSnapshot = func(oldpath, newpath string) error {
		return fmt.Errorf("simulated crash before rename")
	}
	defer func() { renameSnapshot = os.Rename }()
	if err := m2.SaveFile(path); err == nil {
		t.Fatal("SaveFile succeeded despite the injected rename failure")
	}

	// The previous snapshot is untouched and loads cleanly.
	restored := NewMetadata()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Resolve(ResolveRequest{UserID: 1, URL: urls["a"]}); err != nil {
		t.Errorf("previous snapshot lost after failed save: %v", err)
	}
	if _, err := restored.Resolve(ResolveRequest{UserID: 8, URL: resp.URL}); err == nil {
		t.Error("failed save's state leaked into the snapshot")
	}

	// No orphaned temp files.
	leftovers, err := filepath.Glob(filepath.Join(dir, ".meta-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files leaked after failed save: %v", leftovers)
	}
}
