package storage

import "errors"

var (
	errBadDigest = errors.New("storage: malformed MD5 digest")

	// ErrNotFound reports a missing chunk or file.
	ErrNotFound = errors.New("storage: not found")

	// ErrExists reports a duplicate chunk insert (not fatal; the
	// chunk store deduplicates by content).
	ErrExists = errors.New("storage: already stored")
)
