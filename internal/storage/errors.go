package storage

import "errors"

var (
	// ErrBadDigest reports a malformed or mismatched MD5 digest.
	ErrBadDigest = errors.New("storage: malformed MD5 digest")

	// ErrNotFound reports a missing chunk or file.
	ErrNotFound = errors.New("storage: not found")

	// ErrExists reports a duplicate chunk insert (not fatal; the
	// chunk store deduplicates by content).
	ErrExists = errors.New("storage: already stored")

	// ErrTooLarge reports a chunk payload above ChunkSize.
	ErrTooLarge = errors.New("storage: chunk too large")

	// ErrOverloaded reports a request shed by the server's
	// concurrency limiter; retry after backing off.
	ErrOverloaded = errors.New("storage: server overloaded")

	// ErrUnavailable reports a cluster operation that could not reach
	// its write quorum or any live replica; retryable once the
	// affected nodes recover.
	ErrUnavailable = errors.New("storage: replicas unavailable")
)

// errBadDigest is the historical internal name; new code should use
// the exported sentinel.
var errBadDigest = ErrBadDigest
