package storage

import (
	"errors"
	"fmt"
)

var (
	// ErrBadDigest reports a malformed or mismatched MD5 digest.
	ErrBadDigest = errors.New("storage: malformed MD5 digest")

	// ErrNotFound reports a missing chunk or file.
	ErrNotFound = errors.New("storage: not found")

	// ErrExists reports a duplicate chunk insert (not fatal; the
	// chunk store deduplicates by content).
	ErrExists = errors.New("storage: already stored")

	// ErrTooLarge reports a chunk payload above ChunkSize.
	ErrTooLarge = errors.New("storage: chunk too large")

	// ErrOverloaded reports a request shed by the server's
	// concurrency limiter; retry after backing off.
	ErrOverloaded = errors.New("storage: server overloaded")

	// ErrUnavailable reports a cluster operation that could not reach
	// its write quorum or any live replica; retryable once the
	// affected nodes recover.
	ErrUnavailable = errors.New("storage: replicas unavailable")

	// ErrFenced reports a metadata write rejected because this node's
	// leadership epoch has been superseded: a newer primary exists and
	// accepting the write would fork history. Clients should rediscover
	// the current primary and retry there.
	ErrFenced = errors.New("storage: metadata epoch fenced")

	// ErrWrongShard reports a metadata request routed to a shard that
	// does not own the target user. The wire envelope (code
	// "wrong_shard") carries the authoritative ShardAssignment so the
	// client can adopt it and converge on the owning shard in a single
	// redirect bounce.
	ErrWrongShard = errors.New("storage: wrong metadata shard")
)

// ErrNotPrimary reports a metadata mutation sent to a node that is not
// the current primary (a standby, or a deposed primary). It wraps
// ErrUnavailable so existing availability checks keep treating it as a
// retry-elsewhere condition, while clients that know about failover can
// use it as a demotion signal for their endpoint ordering.
var ErrNotPrimary = fmt.Errorf("%w: not the metadata primary", ErrUnavailable)

// errBadDigest is the historical internal name; new code should use
// the exported sentinel.
var errBadDigest = ErrBadDigest
