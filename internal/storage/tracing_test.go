package storage

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
)

// tracedService boots a single-node service whose front-end and client
// share one tracer, so a single Snapshot joins both sides end-to-end.
func tracedService(t *testing.T, wrap func(http.Handler) http.Handler) (*Client, *tracing.Tracer, func()) {
	t.Helper()
	tr := tracing.New(tracing.Config{Node: "solo"})
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta, Tracer: tr})
	h := fe.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	feSrv := httptest.NewServer(h)
	metaSrv := httptest.NewServer(meta.Handler())
	meta.AddFrontEnd(feSrv.URL)
	pol := fastRetry
	client := &Client{
		MetaURL:  metaSrv.URL,
		UserID:   42,
		DeviceID: 7,
		Device:   trace.Android,
		Retry:    &pol,
		Tracer:   tr,
	}
	return client, tr, func() { feSrv.Close(); metaSrv.Close() }
}

// diagnoseTracer joins the given exports and asserts every acked chunk
// transfer is complete, returning the diagnosis.
func assertJoined(t *testing.T, exports ...tracing.Export) tracing.Diagnosis {
	t.Helper()
	d := tracing.Diagnose(tracing.Join(exports))
	acked := 0
	for _, c := range d.Chunks {
		if !c.Acked {
			continue
		}
		acked++
		if !c.Complete {
			t.Errorf("acked %s chunk %.8s on trace %s did not join: %s", c.Dir, c.Chunk, c.Trace, c.Missing)
		}
	}
	if acked == 0 {
		t.Fatal("no acked chunk transfers diagnosed")
	}
	return d
}

// TestTraceJoinsSingleNode: the baseline — store + retrieve through a
// modern /v1 service, every acked chunk decomposes completely.
func TestTraceJoinsSingleNode(t *testing.T) {
	client, tr, cleanup := tracedService(t, nil)
	defer cleanup()

	data := chunkedData(t, 91, 2*ChunkSize+777)
	res, err := client.StoreFile("traced.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	ex := tracing.Export{Node: tr.Node(), Spans: tr.Snapshot(tracing.Filter{})}
	d := assertJoined(t, ex)
	// A batched mcsbin/1 transfer decomposes as one diagnosis carrying
	// Count chunks, so tally carried chunks rather than spans.
	stores, retrieves := 0, 0
	for _, c := range d.Chunks {
		switch c.Dir {
		case "store":
			stores += c.Count
		case "retrieve":
			retrieves += c.Count
		}
		if c.Node != "solo" {
			t.Errorf("chunk served on node %q, want solo", c.Node)
		}
	}
	if stores != 3 || retrieves != 3 {
		t.Fatalf("diagnosed %d stores, %d retrieves; want 3 each", stores, retrieves)
	}
	if len(d.Ops) != 2 {
		t.Fatalf("diagnosed %d file ops, want 2", len(d.Ops))
	}
	for _, op := range d.Ops {
		if !op.Complete {
			t.Errorf("op %s incomplete", op.Op)
		}
	}
}

// TestTraceJoinsThroughLegacyNegotiation: a client falling back to the
// pre-/v1 dialect must still propagate trace headers — the probe 404
// becomes a faulted attempt, the legacy re-issue joins as the acked
// one. This is the regression test for propagation surviving the
// negotiation path.
func TestTraceJoinsThroughLegacyNegotiation(t *testing.T) {
	client, tr, cleanup := tracedService(t, legacyWrap)
	defer cleanup()

	data := chunkedData(t, 92, ChunkSize+321)
	res, err := client.StoreFile("legacy-traced.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RetrieveFile(res.URL); err != nil {
		t.Fatal(err)
	}

	ex := tracing.Export{Node: tr.Node(), Spans: tr.Snapshot(tracing.Filter{})}
	d := assertJoined(t, ex)
	// The fallback happens on the first metadata POST, not on chunk
	// transfers, so chunk attempts stay single; what matters is that
	// every chunk joined despite the legacy dialect.
	for _, c := range d.Chunks {
		if c.Node != "solo" {
			t.Errorf("legacy-path chunk has node %q, want solo (server span missing?)", c.Node)
		}
	}
}

// TestTraceHeaderOnResponses: traced requests echo X-MCS-Trace on both
// success and error responses, and the v1 error envelope quotes the
// trace ID (how a user correlates a 503 with a trace).
func TestTraceHeaderOnResponses(t *testing.T) {
	tr := tracing.New(tracing.Config{Node: "solo"})
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta, Tracer: tr})
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/chunk/"+fmt.Sprintf("%032x", 1), nil)
	req.Header.Set(APIHeader, APIV1)
	parent := tr.StartRoot("client", "probe")
	parent.Inject(req.Header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	parent.End()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(tracing.TraceHeader); got != parent.Trace.String() {
		t.Fatalf("error response %s = %q, want %s", tracing.TraceHeader, got, parent.Trace)
	}
	decoded := decodeError(resp)
	ae, ok := decoded.(*APIError)
	if !ok {
		t.Fatalf("decoded %T, want *APIError", decoded)
	}
	if ae.TraceID != parent.Trace.String() {
		t.Fatalf("envelope trace_id = %q, want %s", ae.TraceID, parent.Trace)
	}
}

// TestShedderQuotesTraceID: a shed 503 happens outside the tracing
// middleware, but the envelope must still quote the request's trace ID
// straight from the header.
func TestShedderQuotesTraceID(t *testing.T) {
	block := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	})
	shedder := NewShedder(1)
	srv := httptest.NewServer(shedder.Wrap(inner))
	defer srv.Close()
	defer close(block)

	// Occupy the only slot.
	go http.Get(srv.URL + "/hold")
	waitInflight := time.Now().Add(2 * time.Second)
	for shedder.Stats().InFlight == 0 {
		if time.Now().After(waitInflight) {
			t.Fatal("holder request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/shed", nil)
	req.Header.Set(APIHeader, APIV1)
	req.Header.Set(tracing.TraceHeader, "00000000deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(tracing.TraceHeader); got != "00000000deadbeef" {
		t.Fatalf("shed response trace header = %q", got)
	}
	ae, ok := decodeError(resp).(*APIError)
	if !ok || ae.TraceID != "00000000deadbeef" {
		t.Fatalf("shed envelope = %+v, want trace_id 00000000deadbeef", ae)
	}
}

// TestTraceJoinsAcrossCluster: the tentpole integration check — a
// 3-node replicated cluster, each node with its own tracer, a traced
// client storing and retrieving multi-chunk files. Joining the four
// exports must fully decompose every acked transfer, with replica
// fan-out spans crossing node boundaries.
func TestTraceJoinsAcrossCluster(t *testing.T) {
	const n = 3
	tracers := make([]*tracing.Tracer, n)
	handlers := make([]*switchHandler, n)
	peers := make([]string, n)
	for i := range handlers {
		handlers[i] = &switchHandler{}
		srv := httptest.NewServer(handlers[i])
		t.Cleanup(srv.Close)
		peers[i] = srv.URL
	}
	meta := NewMetadata()
	for i := range peers {
		tracers[i] = tracing.New(tracing.Config{Node: peers[i]})
		rs, err := NewReplicatedStore(ReplicatedConfig{
			Self:        peers[i],
			Peers:       peers,
			Replicas:    3,
			WriteQuorum: 2,
			Local:       NewMemStore(),
			Health:      cluster.NewHealth(1, 50*time.Millisecond),
			RepairEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		fe := NewFrontEnd(FrontEndConfig{Store: rs, Meta: meta, Tracer: tracers[i]})
		handlers[i].set(fe.Handler())
		meta.AddFrontEnd(peers[i])
	}
	metaSrv := httptest.NewServer(meta.Handler())
	t.Cleanup(metaSrv.Close)

	clientTr := tracing.New(tracing.Config{Node: "loadgen"})
	pol := fastRetry
	client := &Client{
		MetaURL:  metaSrv.URL,
		UserID:   5,
		DeviceID: 5,
		Device:   trace.Android,
		Retry:    &pol,
		Parallel: 4,
		Tracer:   clientTr,
	}

	var urls []string
	for i := 0; i < 3; i++ {
		data := chunkedData(t, uint64(100+i), 3*ChunkSize+i*1000)
		res, err := client.StoreFile(fmt.Sprintf("cluster-%d.bin", i), data)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, res.URL)
	}
	for _, u := range urls {
		if _, err := client.RetrieveFile(u); err != nil {
			t.Fatal(err)
		}
	}
	// Straggler replica writes may still be in flight after the quorum
	// ack; give their spans a moment to land in the rings.
	time.Sleep(100 * time.Millisecond)

	exports := []tracing.Export{{Node: "loadgen", Spans: clientTr.Snapshot(tracing.Filter{})}}
	for i, nodeTr := range tracers {
		exports = append(exports, tracing.Export{Node: peers[i], Spans: nodeTr.Snapshot(tracing.Filter{})})
	}
	d := assertJoined(t, exports...)

	// Replication must be visible: some store chunk saw fan-out time
	// spent on a remote replica (spans from more than one node).
	nodesSeen := map[string]bool{}
	fanouts := 0
	for _, c := range d.Chunks {
		nodesSeen[c.Node] = true
		if c.Dir == "store" && c.Fanout > 0 {
			fanouts++
		}
	}
	if fanouts == 0 {
		t.Error("no store chunk shows fan-out time in a replicated cluster")
	}
	t.Logf("diagnosed %d chunks across nodes %v, %d with fan-out", len(d.Chunks), nodesSeen, fanouts)
}
