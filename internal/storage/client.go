package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mcloud/internal/trace"
)

// Client is the device-side implementation of the store/retrieve
// protocol: it talks to the metadata server first, then to the
// assigned front-end, chunk by chunk, exactly as §2.1 describes.
type Client struct {
	MetaURL  string // base URL of the metadata server
	UserID   uint64
	DeviceID uint64
	Device   trace.DeviceType
	// SimRTT, when nonzero, is reported to the front-end as the
	// connection's average RTT (the simulated path latency).
	SimRTT time.Duration
	// Proxied marks requests as relayed via an HTTP proxy.
	Proxied bool
	// HTTP is the underlying client (defaults to http.DefaultClient).
	HTTP *http.Client
	// InterChunkDelay, when set, is called between consecutive chunk
	// requests and the client sleeps for the returned duration. It
	// models the client processing time Tclt that §4 shows dominates
	// inter-chunk idle gaps.
	InterChunkDelay func() time.Duration
	// SimClock, when set, stamps every request with a virtual
	// timestamp (X-Sim-Time) that the front-end logs instead of the
	// wall clock — used to replay pre-generated traces through the
	// live service in compressed time.
	SimClock func() time.Time
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// setIdentity attaches the identity headers the front-end logs.
func (c *Client) setIdentity(req *http.Request) {
	req.Header.Set("X-Device-Type", c.Device.String())
	req.Header.Set("X-Device-ID", strconv.FormatUint(c.DeviceID, 10))
	req.Header.Set("X-User-ID", strconv.FormatUint(c.UserID, 10))
	if c.SimRTT > 0 {
		req.Header.Set("X-Sim-RTT", strconv.FormatInt(int64(c.SimRTT), 10))
	}
	if c.Proxied {
		req.Header.Set("X-Forwarded-For", "10.0.0.1")
	}
	if c.SimClock != nil {
		req.Header.Set("X-Sim-Time", strconv.FormatInt(c.SimClock().UnixNano(), 10))
	}
}

// postJSON performs a JSON request/response round trip.
func (c *Client) postJSON(url string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("storage: server: %s (status %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("storage: server returned status %d", resp.StatusCode)
}

// StoreResult reports the outcome of a file upload.
type StoreResult struct {
	URL          string // the file's service URL
	Deduplicated bool   // content was already stored; nothing uploaded
	ChunksSent   int
	BytesSent    int64
}

// StoreFile uploads one file: dedup check at the metadata server, then
// a file storage operation request and chunk storage requests at the
// front-end.
func (c *Client) StoreFile(name string, data []byte) (StoreResult, error) {
	fileSum := SumBytes(data)
	var check StoreCheckResponse
	err := c.postJSON(c.MetaURL+"/meta/store-check", StoreCheckRequest{
		UserID:  c.UserID,
		Name:    name,
		Size:    int64(len(data)),
		FileMD5: fileSum.String(),
	}, &check)
	if err != nil {
		return StoreResult{}, err
	}
	if check.Duplicate {
		return StoreResult{URL: check.URL, Deduplicated: true}, nil
	}
	if check.FrontEnd == "" {
		return StoreResult{}, fmt.Errorf("storage: metadata server assigned no front-end")
	}

	chunkSums := SplitSums(data)
	chunkStrs := make([]string, len(chunkSums))
	for i, s := range chunkSums {
		chunkStrs[i] = s.String()
	}
	var opResp FileOpResponse
	err = c.postJSON(check.FrontEnd+"/op/store?url="+check.URL, FileOpRequest{
		UserID:    c.UserID,
		DeviceID:  c.DeviceID,
		Device:    c.Device.String(),
		Name:      name,
		Size:      int64(len(data)),
		FileMD5:   fileSum.String(),
		ChunkMD5s: chunkStrs,
	}, &opResp)
	if err != nil {
		return StoreResult{}, err
	}

	res := StoreResult{URL: check.URL}
	for i, sum := range chunkSums {
		if i > 0 && c.InterChunkDelay != nil {
			time.Sleep(c.InterChunkDelay())
		}
		lo := i * ChunkSize
		hi := lo + ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		if err := c.putChunk(check.FrontEnd, check.URL, sum, data[lo:hi]); err != nil {
			return res, fmt.Errorf("chunk %d: %w", i, err)
		}
		res.ChunksSent++
		res.BytesSent += int64(hi - lo)
	}
	return res, nil
}

func (c *Client) putChunk(frontend, url string, sum Sum, data []byte) error {
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/chunk/%s?url=%s", frontend, sum, url), bytes.NewReader(data))
	if err != nil {
		return err
	}
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// RetrieveFile downloads the file behind a service URL and returns its
// contents: URL resolution at the metadata server, a file retrieval
// operation request, then sequential chunk retrieval requests.
func (c *Client) RetrieveFile(url string) ([]byte, error) {
	var res ResolveResponse
	err := c.postJSON(c.MetaURL+"/meta/resolve", ResolveRequest{UserID: c.UserID, URL: url}, &res)
	if err != nil {
		return nil, err
	}
	if res.FrontEnd == "" {
		return nil, fmt.Errorf("storage: metadata server assigned no front-end")
	}

	var op FileOpResponse
	err = c.postJSON(res.FrontEnd+"/op/retrieve", FileOpRequest{
		UserID:   c.UserID,
		DeviceID: c.DeviceID,
		Device:   c.Device.String(),
		FileMD5:  res.FileMD5,
		Size:     res.Size,
	}, &op)
	if err != nil {
		return nil, err
	}

	buf := make([]byte, 0, res.Size)
	for i, s := range op.ChunkMD5s {
		if i > 0 && c.InterChunkDelay != nil {
			time.Sleep(c.InterChunkDelay())
		}
		sum, err := ParseSum(s)
		if err != nil {
			return nil, err
		}
		data, err := c.getChunk(res.FrontEnd, sum)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		buf = append(buf, data...)
	}
	if got := SumBytes(buf); got.String() != res.FileMD5 {
		return nil, fmt.Errorf("storage: retrieved content hash mismatch")
	}
	return buf, nil
}

func (c *Client) getChunk(frontend string, sum Sum) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/chunk/%s", frontend, sum), nil)
	if err != nil {
		return nil, err
	}
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}
