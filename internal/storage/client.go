package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/randx"
	"mcloud/internal/trace"
	"mcloud/internal/tracing"
)

// Client is the device-side implementation of the store/retrieve
// protocol: it talks to the metadata server first, then to the
// assigned front-end, chunk by chunk, exactly as §2.1 describes.
//
// The client is built for the network the paper measured — cellular
// links that stall, reset and corrupt transfers. Every request runs
// under a deadline and retries transient failures with exponential
// backoff (see RetryPolicy); chunk uploads are idempotent re-PUTs;
// interrupted uploads resume from the front-end's missing-chunk set
// instead of restarting the file; downloads verify each chunk's MD5
// and re-fetch corrupted ones.
type Client struct {
	MetaURL  string // base URL of the metadata server
	UserID   uint64
	DeviceID uint64
	Device   trace.DeviceType
	// SimRTT, when nonzero, is reported to the front-end as the
	// connection's average RTT (the simulated path latency).
	SimRTT time.Duration
	// Proxied marks requests as relayed via an HTTP proxy.
	Proxied bool
	// HTTP is the underlying client. Nil means a shared internal
	// client with connection reuse and a cap timeout (never the
	// timeoutless http.DefaultClient).
	HTTP *http.Client
	// Retry tunes resilience; nil means DefaultRetry.
	Retry *RetryPolicy
	// RetrySeed seeds the deterministic backoff jitter stream.
	RetrySeed uint64
	// MaxResumes bounds how many times one upload re-queries the
	// missing-chunk set after mid-file failures; 0 means 3.
	MaxResumes int
	// Parallel is the chunk-transfer window: how many chunk PUTs/GETs
	// one file operation keeps in flight. 0 means DefaultParallel; 1
	// restores strictly sequential transfers. When InterChunkDelay is
	// set the client always transfers sequentially, since the delay
	// models the sequential inter-chunk gaps of §4.
	Parallel int
	// Metrics, when non-nil, receives retry/resume/refetch counters
	// (see NewClientMetrics). May be shared across clients.
	Metrics *ClientMetrics
	// InterChunkDelay, when set, is called between consecutive chunk
	// requests and the client sleeps for the returned duration. It
	// models the client processing time Tclt that §4 shows dominates
	// inter-chunk idle gaps.
	InterChunkDelay func() time.Duration
	// SimClock, when set, stamps every request with a virtual
	// timestamp (X-Sim-Time) that the front-end logs instead of the
	// wall clock — used to replay pre-generated traces through the
	// live service in compressed time.
	SimClock func() time.Time
	// Tracer, when non-nil, roots a distributed trace per file
	// operation (subject to the tracer's sampling rate) and
	// propagates it on every request via X-MCS-Trace/X-MCS-Span.
	Tracer *tracing.Tracer

	// LegacyAPI pins the client to the unversioned wire paths,
	// skipping negotiation (used to exercise the compatibility path in
	// tests).
	LegacyAPI bool

	// DisableBin pins the client to the JSON chunk paths even against
	// binary-capable servers — the knob mcsbench and tests use for
	// like-for-like dialect comparisons.
	DisableBin bool

	rngMu sync.Mutex
	rng   *randx.Source

	// legacyHosts remembers front-ends that answered a /v1 request
	// with a bare 404 (no X-MCS-API stamp) — the legacy-server
	// signature. Negotiation then costs one round trip per host, once.
	legacyMu    sync.Mutex
	legacyHosts map[string]bool

	// binHosts remembers, per host, the last-seen X-MCS-Bin stamp —
	// the capability signal for the batched binary chunk dialect.
	// Refreshed on every handled response, so a host restarted without
	// the dialect downgrades the client back to JSON automatically.
	binMu    sync.Mutex
	binHosts map[string]bool

	// rings caches each front-end's cluster ring (nil: single-node or
	// legacy), learned once per host from /v1/cluster/info.
	ringMu sync.Mutex
	rings  map[string]*cluster.Ring

	// Metadata-plane routing. MetaURL parses as a comma-separated
	// bootstrap endpoint list (primary first, standbys after). On the
	// first metadata operation the client asks one bootstrap endpoint
	// for the shard map (GET /v1/meta/shards) and afterwards routes
	// each user-keyed call to the owning shard's endpoint group; a
	// wrong_shard rejection carries the authoritative assignment and is
	// adopted before the retry, so a stale map converges in one bounce.
	// Unsharded and legacy servers leave metaMap nil and everything
	// routes through the bootstrap list, exactly as before sharding.
	metaMu     sync.Mutex
	metaBoot   []string
	metaMap    *cluster.MetaShardMap
	metaTried  bool // shard-map fetch attempted (reset by a newer map sighting)
	metaShards map[int]*clientMetaShard
}

// clientMetaShard is the client's routing state for one metadata
// shard group: the endpoint rotation, the index of the endpoint last
// seen acting as primary (so retries start there instead of walking
// the configured order), and the highest fencing epoch observed in
// X-MCS-Meta-Epoch response headers — echoed on every request to that
// shard, so a deposed primary rejects the write instead of acking it
// onto a forked history.
type clientMetaShard struct {
	mu    sync.Mutex
	eps   []string
	pref  int
	epoch atomic.Uint64
}

// pick returns the endpoint for the given zero-based attempt: the
// preferred (last-known-primary) endpoint first, then the rest in
// rotation order.
func (s *clientMetaShard) pick(attempt int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eps[(s.pref+attempt)%len(s.eps)]
}

// mark pins base as the shard's preferred endpoint (ok) or, if base
// was preferred, advances preference past it (a standby bounce or a
// fencing rejection means it is not the primary anymore).
func (s *clientMetaShard) mark(base string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.eps {
		if e != base {
			continue
		}
		if ok {
			s.pref = i
		} else if s.pref == i {
			s.pref = (i + 1) % len(s.eps)
		}
		return
	}
}

// observeEpoch folds a response's fencing epoch into the highest seen
// for this shard.
func (s *clientMetaShard) observeEpoch(h http.Header) {
	v := h.Get(MetaEpochHeader)
	if v == "" {
		return
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return
	}
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// markLegacy records that base speaks only the unversioned API.
func (c *Client) markLegacy(base string) {
	c.legacyMu.Lock()
	if c.legacyHosts == nil {
		c.legacyHosts = make(map[string]bool)
	}
	c.legacyHosts[base] = true
	c.legacyMu.Unlock()
}

// useV1 reports whether requests to base should take the /v1 paths.
func (c *Client) useV1(base string) bool {
	if c.LegacyAPI {
		return false
	}
	c.legacyMu.Lock()
	legacy := c.legacyHosts[base]
	c.legacyMu.Unlock()
	return !legacy
}

// noteBin records the dialect capability a response from base
// advertised (or stopped advertising).
func (c *Client) noteBin(base string, h http.Header) {
	if c.DisableBin || c.LegacyAPI {
		return
	}
	v := binAdvertised(h)
	c.binMu.Lock()
	if c.binHosts == nil {
		c.binHosts = make(map[string]bool)
	}
	c.binHosts[base] = v
	c.binMu.Unlock()
}

// binHost reports whether chunk traffic to base may take the binary
// dialect: the client allows it and the host's last response carried
// the X-MCS-Bin stamp.
func (c *Client) binHost(base string) bool {
	if c.DisableBin || !c.useV1(base) {
		return false
	}
	c.binMu.Lock()
	ok := c.binHosts[base]
	c.binMu.Unlock()
	return ok
}

// apiPath joins base and path, inserting the /v1 prefix when the host
// negotiates the versioned API.
func (c *Client) apiPath(base, path string) string {
	if c.useV1(base) {
		return base + "/v1" + path
	}
	return base + path
}

// errLegacyRetry signals that the attempt hit a legacy server on a
// /v1 path; the host has been marked and the request should be
// rebuilt on the unversioned path immediately (no backoff, no
// attempt consumed — nothing failed, the dialect was wrong).
var errLegacyRetry = errors.New("storage: legacy server detected, retrying unversioned path")

// checkLegacy classifies a 404: a v1 server stamps every response
// with X-MCS-API, so a 404 without it on a /v1 request means the
// server predates the versioned API.
func (c *Client) checkLegacy(base string, resp *http.Response) bool {
	if c.LegacyAPI || !c.useV1(base) {
		return false
	}
	if resp.StatusCode == http.StatusNotFound && resp.Header.Get(APIHeader) == "" {
		c.markLegacy(base)
		return true
	}
	return false
}

// clusterRing returns the ring behind a front-end, fetched once from
// /v1/cluster/info. Nil means route everything through the assigned
// front-end: single-node deployments, legacy servers, or an info
// fetch that failed (forwarding keeps working regardless — the ring
// is a latency optimization, not a correctness requirement).
func (c *Client) clusterRing(frontend string) *cluster.Ring {
	c.ringMu.Lock()
	ring, ok := c.rings[frontend]
	c.ringMu.Unlock()
	if ok {
		return ring
	}
	ring = c.fetchRing(frontend)
	c.ringMu.Lock()
	if c.rings == nil {
		c.rings = make(map[string]*cluster.Ring)
	}
	c.rings[frontend] = ring
	c.ringMu.Unlock()
	return ring
}

func (c *Client) fetchRing(frontend string) *cluster.Ring {
	if !c.useV1(frontend) {
		return nil
	}
	req, err := http.NewRequest(http.MethodGet, frontend+"/v1/cluster/info", nil)
	if err != nil {
		return nil
	}
	req.Header.Set(APIHeader, APIV1)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if c.checkLegacy(frontend, resp) || resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var info ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil || len(info.Peers) < 2 {
		return nil
	}
	ring, err := cluster.NewRing(info.Peers, 0)
	if err != nil {
		return nil
	}
	return ring
}

// chunkTarget picks the host to address for one chunk: the chunk's
// primary owner when the ring is known, else the assigned front-end.
func (c *Client) chunkTarget(frontend string, sum Sum) string {
	ring := c.clusterRing(frontend)
	if ring == nil {
		return frontend
	}
	return ring.Primary(cluster.Key(sum))
}

// StatChunks asks a front-end which of the given chunks it already
// holds, in one batched /v1/op/stat round trip (the check the
// resumable-upload path runs server-side). Legacy servers do not
// speak it; the caller falls back to per-chunk behavior.
func (c *Client) StatChunks(frontend string, chunkMD5s []string) (*StatResponse, error) {
	if !c.useV1(frontend) {
		return nil, fmt.Errorf("storage: %s does not speak /v1/op/stat", frontend)
	}
	var resp StatResponse
	budget := c.newBudget()
	if err := c.postJSON(frontend, "/op/stat", StatRequest{ChunkMD5s: chunkMD5s}, &resp, budget); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ClientConfig configures a client built with NewClient; the fields
// mirror Client's (see their docs there). The options struct exists
// so cluster-era knobs extend it without another signature break.
type ClientConfig struct {
	MetaURL         string
	UserID          uint64
	DeviceID        uint64
	Device          trace.DeviceType
	SimRTT          time.Duration
	Proxied         bool
	HTTP            *http.Client
	Retry           *RetryPolicy
	RetrySeed       uint64
	MaxResumes      int
	Parallel        int
	Metrics         *ClientMetrics
	InterChunkDelay func() time.Duration
	SimClock        func() time.Time
	Tracer          *tracing.Tracer
	LegacyAPI       bool
	DisableBin      bool
}

// NewClient returns a client built from cfg.
func NewClient(cfg ClientConfig) *Client {
	return &Client{
		MetaURL:         cfg.MetaURL,
		UserID:          cfg.UserID,
		DeviceID:        cfg.DeviceID,
		Device:          cfg.Device,
		SimRTT:          cfg.SimRTT,
		Proxied:         cfg.Proxied,
		HTTP:            cfg.HTTP,
		Retry:           cfg.Retry,
		RetrySeed:       cfg.RetrySeed,
		MaxResumes:      cfg.MaxResumes,
		Parallel:        cfg.Parallel,
		Metrics:         cfg.Metrics,
		InterChunkDelay: cfg.InterChunkDelay,
		SimClock:        cfg.SimClock,
		Tracer:          cfg.Tracer,
		LegacyAPI:       cfg.LegacyAPI,
		DisableBin:      cfg.DisableBin,
	}
}

// Clone returns an independent client with the same configuration and
// a fresh backoff-jitter stream. Client holds internal locked state,
// so it must not be copied by value; retarget a Clone instead.
func (c *Client) Clone() *Client {
	return &Client{
		MetaURL:         c.MetaURL,
		UserID:          c.UserID,
		DeviceID:        c.DeviceID,
		Device:          c.Device,
		SimRTT:          c.SimRTT,
		Proxied:         c.Proxied,
		HTTP:            c.HTTP,
		Retry:           c.Retry,
		RetrySeed:       c.RetrySeed,
		MaxResumes:      c.MaxResumes,
		Parallel:        c.Parallel,
		Metrics:         c.Metrics,
		InterChunkDelay: c.InterChunkDelay,
		SimClock:        c.SimClock,
		Tracer:          c.Tracer,
		LegacyAPI:       c.LegacyAPI,
		DisableBin:      c.DisableBin,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// setIdentity attaches the identity headers the front-end logs.
func (c *Client) setIdentity(req *http.Request) {
	req.Header.Set("X-Device-Type", c.Device.String())
	req.Header.Set("X-Device-ID", strconv.FormatUint(c.DeviceID, 10))
	req.Header.Set("X-User-ID", strconv.FormatUint(c.UserID, 10))
	if c.SimRTT > 0 {
		req.Header.Set("X-Sim-RTT", strconv.FormatInt(int64(c.SimRTT), 10))
	}
	if c.Proxied {
		req.Header.Set("X-Forwarded-For", "10.0.0.1")
	}
	if c.SimClock != nil {
		req.Header.Set("X-Sim-Time", strconv.FormatInt(c.SimClock().UnixNano(), 10))
	}
}

// postJSON performs a JSON request/response round trip with retries.
// The URL is rebuilt per attempt from base and path so the versioned
// prefix tracks the host's negotiated dialect: a bare 404 (no
// X-MCS-API stamp) on a /v1 path marks the host legacy and the next
// attempt takes the unversioned path immediately.
func (c *Client) postJSON(base, path string, in, out interface{}, budget *retryBudget) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.doRetry(budget, budget.span,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPost, c.apiPath(base, path), bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			c.setIdentity(req)
			c.setAPIVersion(req, base)
			return req, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			if c.checkLegacy(base, resp) {
				io.Copy(io.Discard, resp.Body)
				return errLegacyRetry
			}
			c.noteBin(base, resp.Header)
			if resp.StatusCode != http.StatusOK {
				return decodeError(resp)
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				// A JSON body cut off mid-stream means the connection
				// died under us; the request is safe to retry.
				return &corruptError{err: err}
			}
			return nil
		})
}

// metaBootLocked parses MetaURL as a comma-separated endpoint list,
// once. Callers hold c.metaMu. A single-endpoint MetaURL behaves
// exactly as before.
func (c *Client) metaBootLocked() []string {
	if c.metaBoot == nil {
		for _, e := range strings.Split(c.MetaURL, ",") {
			e = strings.TrimRight(strings.TrimSpace(e), "/")
			if e != "" {
				c.metaBoot = append(c.metaBoot, e)
			}
		}
		if len(c.metaBoot) == 0 {
			c.metaBoot = []string{c.MetaURL}
		}
	}
	return c.metaBoot
}

// metaShardMap returns the metadata shard map, fetching it from a
// bootstrap endpoint on first use. Nil (unsharded, legacy, or fetch
// failure) routes every call through the bootstrap list — the
// pre-sharding behavior — and a wrong_shard redirect still corrects
// the routing, so the fetch is a fast path, not a correctness
// requirement.
func (c *Client) metaShardMap() *cluster.MetaShardMap {
	if c.LegacyAPI {
		return nil
	}
	c.metaMu.Lock()
	if c.metaTried {
		m := c.metaMap
		c.metaMu.Unlock()
		return m
	}
	c.metaTried = true
	boot := append([]string(nil), c.metaBootLocked()...)
	c.metaMu.Unlock()

	fetched := c.fetchShardMap(boot)
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	if fetched != nil && (c.metaMap == nil || fetched.Version >= c.metaMap.Version) {
		c.metaMap = fetched
	}
	return c.metaMap
}

// fetchShardMap asks the bootstrap endpoints, in order, for the shard
// map. Returns nil when none answered (or the server predates
// sharding / speaks only the legacy API).
func (c *Client) fetchShardMap(boot []string) *cluster.MetaShardMap {
	for _, ep := range boot {
		if !c.useV1(ep) {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, ep+"/v1/meta/shards", nil)
		if err != nil {
			continue
		}
		req.Header.Set(APIHeader, APIV1)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			continue
		}
		if c.checkLegacy(ep, resp) || resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var m cluster.MetaShardMap
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil || len(m.Shards) == 0 {
			continue
		}
		return &m
	}
	return nil
}

// metaShardFor maps a user to the owning metadata shard (0 when the
// plane is unsharded or the map is unknown).
func (c *Client) metaShardFor(user uint64) int {
	return c.metaShardMap().ShardFor(user)
}

// metaMapVersion is the version of the map the client currently holds
// (0 when none), stamped into the X-MCS-Meta-Shard exchange header so
// servers can count skewed clients.
func (c *Client) metaMapVersion() uint64 {
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	if c.metaMap == nil {
		return 0
	}
	return c.metaMap.Version
}

// metaShardState returns (creating on first use) the routing state
// for a shard, seeded from the shard map's endpoint group or, absent
// a map entry, the bootstrap list.
func (c *Client) metaShardState(shard int) *clientMetaShard {
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	if s, ok := c.metaShards[shard]; ok {
		return s
	}
	eps := c.metaMap.Endpoints(shard)
	if len(eps) == 0 {
		eps = c.metaBootLocked()
	}
	s := &clientMetaShard{eps: append([]string(nil), eps...)}
	if c.metaShards == nil {
		c.metaShards = make(map[int]*clientMetaShard)
	}
	c.metaShards[shard] = s
	return s
}

// adoptMetaAssignment folds a wrong_shard redirect's authoritative
// assignment into the routing state: the owner shard's rotation is
// replaced with the server-provided endpoint group, and a newer map
// version than ours schedules a shard-map refetch on the next
// operation.
func (c *Client) adoptMetaAssignment(a *ShardAssignment) {
	if a == nil || len(a.Endpoints) == 0 {
		return
	}
	s := c.metaShardState(a.Shard)
	s.mu.Lock()
	s.eps = append([]string(nil), a.Endpoints...)
	s.pref = 0
	s.mu.Unlock()
	c.metaMu.Lock()
	if c.metaMap == nil || a.MapVersion > c.metaMap.Version {
		c.metaTried = false
	}
	c.metaMu.Unlock()
}

// postMetaJSON is postJSON against the metadata plane, pinned to one
// shard: each attempt may target a different endpoint of the shard's
// group, rotating away from nodes that answer as standby
// (ErrNotPrimary) or fenced deposed primaries (ErrFenced), and
// sticking to whichever endpoint last completed a call. A wrong_shard
// rejection redirects the remaining attempts to the owner group named
// in the response, so a client holding a stale shard map converges in
// one bounce. Build and handle closures run sequentially per attempt
// inside doRetry, so the captured counters are race-free.
func (c *Client) postMetaJSON(shard int, path string, in, out interface{}, budget *retryBudget) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	rotation := 0
	base := ""
	return c.doRetry(budget, budget.span,
		func() (*http.Request, error) {
			st := c.metaShardState(shard)
			base = st.pick(rotation)
			rotation++
			req, err := http.NewRequest(http.MethodPost, c.apiPath(base, path), bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			if e := st.epoch.Load(); e > 0 {
				req.Header.Set(MetaEpochHeader, strconv.FormatUint(e, 10))
			}
			if c.useV1(base) {
				req.Header.Set(MetaShardHeader, FormatMetaShard(shard, c.metaMapVersion()))
			}
			c.setIdentity(req)
			c.setAPIVersion(req, base)
			return req, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			if c.checkLegacy(base, resp) {
				io.Copy(io.Discard, resp.Body)
				return errLegacyRetry
			}
			st := c.metaShardState(shard)
			st.observeEpoch(resp.Header)
			if resp.StatusCode != http.StatusOK {
				err := decodeError(resp)
				if errors.Is(err, ErrWrongShard) {
					var ae *APIError
					if errors.As(err, &ae) && ae.Assignment != nil {
						c.adoptMetaAssignment(ae.Assignment)
						// Follow the redirect: the retry goes to the
						// owner group, not back into this rotation.
						shard = ae.Assignment.Shard
						rotation = 0
					}
				} else if errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrFenced) {
					st.mark(base, false)
					// Restart the rotation at the advanced preference
					// instead of letting the attempt index skip it.
					rotation = 0
				}
				return err
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return &corruptError{err: err}
			}
			st.mark(base, true)
			return nil
		})
}

// setAPIVersion advertises v1 on requests to hosts not known legacy.
func (c *Client) setAPIVersion(req *http.Request, base string) {
	if c.useV1(base) {
		req.Header.Set(APIHeader, APIV1)
	}
}

// decodeError turns a non-2xx response into an error. A v1 server's
// typed envelope decodes into an *APIError (which unwraps to the
// package sentinels); anything else — including a legacy server's
// {"error": ...} body — becomes a *serverError classified by status.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if resp.Header.Get(APIHeader) == APIV1 {
		var ae APIError
		if err := json.Unmarshal(body, &ae); err == nil && ae.Code != "" {
			ae.Status = resp.StatusCode
			return &ae
		}
	}
	se := &serverError{Status: resp.StatusCode}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err == nil {
		se.Msg = e.Error
	}
	return se
}

// StoreResult reports the outcome of a file upload.
type StoreResult struct {
	URL          string // the file's service URL
	Deduplicated bool   // content was already stored; nothing uploaded
	ChunksSent   int
	BytesSent    int64
	Resumes      int // times the upload re-queried the missing-chunk set
}

// StoreFile uploads one file: dedup check at the metadata server, then
// a file storage operation request and chunk storage requests at the
// front-end. A mid-file failure does not restart the upload — the
// client re-issues the file operation request, learns which chunks the
// front-end is still missing, and sends only those.
func (c *Client) StoreFile(name string, data []byte) (res StoreResult, err error) {
	budget := c.newBudget()
	budget.span = c.Tracer.StartRoot(tracing.CompClient, tracing.SpanStoreFile)
	budget.span.AnnotateInt("bytes", int64(len(data)))
	defer func() { budget.span.EndErr(err) }()
	fileSum := SumBytes(data)
	shard := c.metaShardFor(c.UserID)
	var check StoreCheckResponse
	err = c.postMetaJSON(shard, "/meta/store-check", StoreCheckRequest{
		UserID:  c.UserID,
		Name:    name,
		Size:    int64(len(data)),
		FileMD5: fileSum.String(),
	}, &check, budget)
	if err != nil {
		return StoreResult{}, err
	}
	if check.Duplicate {
		budget.span.Annotate("dedup", "true")
		return StoreResult{URL: check.URL, Deduplicated: true}, nil
	}
	if check.FrontEnd == "" {
		return StoreResult{}, fmt.Errorf("storage: metadata server assigned no front-end")
	}

	chunkSums := SplitSums(data)
	chunkStrs := make([]string, len(chunkSums))
	byDigest := make(map[string]int, len(chunkSums))
	for i, s := range chunkSums {
		chunkStrs[i] = s.String()
		if _, ok := byDigest[chunkStrs[i]]; !ok {
			byDigest[chunkStrs[i]] = i
		}
	}
	opReq := FileOpRequest{
		UserID:    c.UserID,
		DeviceID:  c.DeviceID,
		Device:    c.Device.String(),
		Name:      name,
		Size:      int64(len(data)),
		FileMD5:   fileSum.String(),
		ChunkMD5s: chunkStrs,
		// Pin the front-end's commit to the shard that reserved the
		// URL (authoritative: the server that answered store-check).
		Shard: check.Shard,
	}

	maxResumes := c.MaxResumes
	if maxResumes <= 0 {
		maxResumes = 3
	}
	res = StoreResult{URL: check.URL}
	budget.span.Annotate("url", check.URL)
	var lastErr error
	for pass := 0; pass <= maxResumes; pass++ {
		if pass > 0 {
			res.Resumes++
			c.Metrics.resume()
		}
		var opResp FileOpResponse
		err = c.postJSON(check.FrontEnd, "/op/store?url="+check.URL, opReq, &opResp, budget)
		if err != nil {
			return res, err
		}
		// A resumable front-end reports exactly which chunks it still
		// needs (possibly none: the upload is already complete). Older
		// servers expect everything.
		todo := chunkStrs
		if opResp.Resumable {
			todo = opResp.MissingMD5s
		}
		if len(todo) == 0 {
			return res, nil
		}

		lastErr = c.sendChunks(check.FrontEnd, check.URL, todo, byDigest, chunkSums, data, budget, &res)
		if lastErr == nil {
			return res, nil
		}
		if !retryable(lastErr) || !opResp.Resumable {
			break
		}
	}
	return res, lastErr
}

// DefaultParallel is the chunk-transfer window used when
// Client.Parallel is zero.
const DefaultParallel = 4

// window resolves the effective in-flight window for an operation of
// the given chunk count.
func (c *Client) window(chunks int) int {
	w := c.Parallel
	if w == 0 {
		w = DefaultParallel
	}
	if w < 1 || c.InterChunkDelay != nil {
		w = 1
	}
	if w > chunks {
		w = chunks
	}
	return w
}

// sendChunks uploads the chunks the front-end reported missing,
// keeping up to the configured window in flight. Success counters
// fold into res; the returned error is the one from the lowest chunk
// position, so reporting does not depend on goroutine interleaving.
func (c *Client) sendChunks(frontend, url string, todo []string, byDigest map[string]int, chunkSums []Sum, data []byte, budget *retryBudget, res *StoreResult) error {
	if w := c.window(len(todo)); w > 1 && c.binHost(frontend) {
		if err := c.sendChunksBin(frontend, url, todo, byDigest, chunkSums, data, budget, res, w); err == nil {
			return nil
		}
		// Any batched-upload failure degrades to the per-chunk JSON
		// path below, which re-sends everything with its own retry
		// machinery — chunk PUTs are idempotent, so frames the batch
		// already landed deduplicate server-side.
	}
	var sent, sentBytes int64
	send := func(j int) error {
		i, ok := byDigest[todo[j]]
		if !ok {
			return fmt.Errorf("storage: front-end wants unknown chunk %s", todo[j])
		}
		lo := i * ChunkSize
		hi := lo + ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		if err := c.putChunk(frontend, url, chunkSums[i], data[lo:hi], budget); err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		atomic.AddInt64(&sent, 1)
		atomic.AddInt64(&sentBytes, int64(hi-lo))
		return nil
	}

	var err error
	if w := c.window(len(todo)); w <= 1 {
		for j := range todo {
			if j > 0 && c.InterChunkDelay != nil {
				time.Sleep(c.InterChunkDelay())
			}
			if err = send(j); err != nil {
				break
			}
		}
	} else {
		err = runWindow(w, len(todo), send)
	}
	res.ChunksSent += int(sent)
	res.BytesSent += sentBytes
	return err
}

// batchSize resolves how many chunks ride one binary batch: small
// enough that a window's worth of batches still fills the transfer
// window (keeping the parallelism the JSON path had), capped at the
// protocol's binMaxBatch.
func batchSize(n, w int) int {
	// Split the chunks so every window slot carries one batch: the
	// server folds each batch's upstream round trips into one shared
	// wait, while keeping w requests in flight overlaps the per-request
	// decode/hash work with the other batches' upstream waits. Fewer,
	// fuller batches measure slower on-core — a single giant request
	// serializes its transfer and checksum work behind the shared wait.
	per := (n + w - 1) / w
	if per > binMaxBatch {
		per = binMaxBatch
	}
	if per < 1 {
		per = 1
	}
	return per
}

// sendChunksBin uploads the missing chunks over the binary dialect,
// batching them into /v1/bin/put requests that the window runs in
// parallel. Counters fold into res only when every batch lands, so a
// fallback to the JSON path never double-counts.
func (c *Client) sendChunksBin(frontend, url string, todo []string, byDigest map[string]int, chunkSums []Sum, data []byte, budget *retryBudget, res *StoreResult, w int) error {
	idx := make([]int, len(todo))
	for j, d := range todo {
		i, ok := byDigest[d]
		if !ok {
			return fmt.Errorf("storage: front-end wants unknown chunk %s", d)
		}
		idx[j] = i
	}
	slice := func(i int) []byte {
		lo := i * ChunkSize
		hi := lo + ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		return data[lo:hi]
	}
	per := batchSize(len(idx), w)
	var batches [][]int
	for lo := 0; lo < len(idx); lo += per {
		hi := lo + per
		if hi > len(idx) {
			hi = len(idx)
		}
		batches = append(batches, idx[lo:hi])
	}
	if w > len(batches) {
		w = len(batches)
	}
	var sent, sentBytes int64
	err := runWindow(w, len(batches), func(b int) error {
		n, err := c.putChunkBatch(frontend, url, batches[b], chunkSums, slice, budget)
		if err != nil {
			return err
		}
		atomic.AddInt64(&sent, int64(len(batches[b])))
		atomic.AddInt64(&sentBytes, n)
		return nil
	})
	if err != nil {
		return err
	}
	res.ChunksSent += int(sent)
	res.BytesSent += sentBytes
	return nil
}

// runWindow runs fn(0..n-1) on w goroutines, keeping at most w calls
// in flight. On failure the remaining indices are abandoned (calls
// already in flight complete, and their side effects count) and the
// error from the lowest failing index is returned.
func runWindow(w, n int, fn func(int) error) error {
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		minJ   int
		minErr error
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				j := int(next.Add(1))
				if j >= n {
					return
				}
				if err := fn(j); err != nil {
					failed.Store(true)
					mu.Lock()
					if minErr == nil || j < minJ {
						minJ, minErr = j, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return minErr
}

// putChunk uploads one chunk. The PUT is idempotent — the chunk store
// deduplicates by content — so retries simply re-send the same bytes.
// Chunk PUTs always address the assigned front-end: it owns the
// upload's completion bookkeeping and fans the bytes out to the
// replica owners itself.
func (c *Client) putChunk(frontend, url string, sum Sum, data []byte, budget *retryBudget) error {
	sp := budget.span.StartChild(tracing.CompClient, tracing.SpanChunkPut)
	sp.Annotate("chunk", sum.String())
	sp.AnnotateInt("bytes", int64(len(data)))
	err := c.doRetry(budget, sp,
		func() (*http.Request, error) {
			target := c.apiPath(frontend, fmt.Sprintf("/chunk/%s?url=%s", sum, url))
			req, err := http.NewRequest(http.MethodPut, target, bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			c.setIdentity(req)
			c.setAPIVersion(req, frontend)
			return req, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			if c.checkLegacy(frontend, resp) {
				io.Copy(io.Discard, resp.Body)
				return errLegacyRetry
			}
			c.noteBin(frontend, resp.Header)
			if resp.StatusCode != http.StatusOK {
				return decodeError(resp)
			}
			io.Copy(io.Discard, resp.Body)
			return nil
		})
	sp.EndErr(err)
	return err
}

// putChunkBatch uploads a set of chunks in one binary /v1/bin/put
// request. The span keeps the chunk-put shape (attempt children, a
// joined server-side handler span), so the trace pipeline diagnoses
// the batch exactly like a single bigger chunk transfer. Retries
// re-send the whole batch — chunk PUTs deduplicate by content, so
// re-sending frames the server already committed is harmless.
func (c *Client) putChunkBatch(frontend, url string, ids []int, chunkSums []Sum, slice func(int) []byte, budget *retryBudget) (int64, error) {
	// Zero-copy body: frame headers are encoded once (the CRC pass over
	// each payload happens here), then every attempt streams the
	// headers interleaved with the caller's payload slices — the file
	// bytes are never staged into a batch buffer.
	var total, wire int64
	hdrs := make([]byte, len(ids)*recHeaderSize)
	for k, i := range ids {
		p := slice(i)
		encodeHeader(hdrs[k*recHeaderSize:(k+1)*recHeaderSize], chunkSums[i], uint32(len(p)), p)
		total += int64(len(p))
	}
	count := appendBinCount(nil, len(ids))
	wire = int64(len(count)) + int64(len(hdrs)) + total
	body := func() io.Reader {
		parts := make([]io.Reader, 0, 1+2*len(ids))
		parts = append(parts, bytes.NewReader(count))
		for k, i := range ids {
			parts = append(parts, bytes.NewReader(hdrs[k*recHeaderSize:(k+1)*recHeaderSize]))
			parts = append(parts, bytes.NewReader(slice(i)))
		}
		return io.MultiReader(parts...)
	}
	sp := budget.span.StartChild(tracing.CompClient, tracing.SpanChunkPut)
	sp.Annotate("chunk", chunkSums[ids[0]].String())
	sp.Annotate("dialect", BinV1)
	sp.AnnotateInt("count", int64(len(ids)))
	sp.AnnotateInt("bytes", total)
	err := c.doRetry(budget, sp,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPost, frontend+"/v1/bin/put?url="+url, body())
			if err != nil {
				return nil, err
			}
			req.ContentLength = wire
			req.Header.Set("Content-Type", binContentType)
			c.setIdentity(req)
			c.setAPIVersion(req, frontend)
			return req, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			c.noteBin(frontend, resp.Header)
			if resp.StatusCode != http.StatusOK {
				return decodeError(resp)
			}
			io.Copy(io.Discard, resp.Body)
			return nil
		})
	sp.EndErr(err)
	return total, err
}

// RetrieveFile downloads the file behind a service URL and returns its
// contents: URL resolution at the metadata server, a file retrieval
// operation request, then sequential chunk retrieval requests. Each
// chunk is verified against its digest and re-fetched on corruption;
// the assembled file is verified against the file hash.
func (c *Client) RetrieveFile(url string) (out []byte, err error) {
	budget := c.newBudget()
	budget.span = c.Tracer.StartRoot(tracing.CompClient, tracing.SpanRetrieveFile)
	budget.span.Annotate("url", url)
	defer func() {
		budget.span.AnnotateInt("bytes", int64(len(out)))
		budget.span.EndErr(err)
	}()
	// A URL is a shareable capability: it lives on the shard of the
	// user who STORED it, which the requester's own hash says nothing
	// about. Try our shard first (own files, the common case), then
	// scatter the resolve across the remaining shards on a miss.
	own := c.metaShardFor(c.UserID)
	var res ResolveResponse
	err = c.postMetaJSON(own, "/meta/resolve", ResolveRequest{UserID: c.UserID, URL: url}, &res, budget)
	if errors.Is(err, ErrNotFound) {
		for s := 0; s < c.metaShardMap().NumShards(); s++ {
			if s == own {
				continue
			}
			err = c.postMetaJSON(s, "/meta/resolve", ResolveRequest{UserID: c.UserID, URL: url}, &res, budget)
			if !errors.Is(err, ErrNotFound) {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if res.FrontEnd == "" {
		return nil, fmt.Errorf("storage: metadata server assigned no front-end")
	}

	var op FileOpResponse
	err = c.postJSON(res.FrontEnd, "/op/retrieve", FileOpRequest{
		UserID:   c.UserID,
		DeviceID: c.DeviceID,
		Device:   c.Device.String(),
		FileMD5:  res.FileMD5,
		Size:     res.Size,
		Shard:    res.Shard,
	}, &op, budget)
	if err != nil {
		return nil, err
	}

	sums := make([]Sum, len(op.ChunkMD5s))
	for i, s := range op.ChunkMD5s {
		if sums[i], err = ParseSum(s); err != nil {
			return nil, err
		}
	}

	var buf []byte
	if w := c.window(len(sums)); w <= 1 {
		buf = make([]byte, 0, res.Size)
		for i, sum := range sums {
			if i > 0 && c.InterChunkDelay != nil {
				time.Sleep(c.InterChunkDelay())
			}
			data, err := c.getChunk(res.FrontEnd, sum, budget, nil)
			if err != nil {
				return nil, fmt.Errorf("chunk %d: %w", i, err)
			}
			buf = append(buf, data...)
		}
	} else {
		// Concurrent chunks assemble at fixed offsets: every chunk but
		// the last is exactly ChunkSize by construction (SplitSums), so
		// the layout is known up front from the metadata size.
		n := int64(len(sums))
		if res.Size <= (n-1)*ChunkSize || res.Size > n*ChunkSize {
			return nil, fmt.Errorf("storage: metadata size %d inconsistent with %d chunks", res.Size, n)
		}
		buf = make([]byte, res.Size)
		rest := c.retrieveBin(res.FrontEnd, sums, buf, res.Size, budget, w)
		if len(rest) > 0 {
			if w > len(rest) {
				w = len(rest)
			}
			err = runWindow(w, len(rest), func(k int) error {
				i := rest[k]
				lo := int64(i) * ChunkSize
				hi := lo + ChunkSize
				if hi > res.Size {
					hi = res.Size
				}
				data, err := c.getChunk(res.FrontEnd, sums[i], budget, buf[lo:lo:hi])
				if err != nil {
					return fmt.Errorf("chunk %d: %w", i, err)
				}
				if int64(len(data)) != hi-lo {
					return fmt.Errorf("chunk %d: storage: chunk length %d does not fit file layout", i, len(data))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if got := SumBytes(buf); got.String() != res.FileMD5 {
		return nil, fmt.Errorf("storage: retrieved content hash mismatch")
	}
	return buf, nil
}

// retrieveBin fetches as many chunks as possible over the binary
// dialect, writing verified payloads straight into their slots of the
// assembled file, and returns the indices the per-chunk JSON path
// must still fetch (everything, when no target speaks the dialect).
// Chunks are grouped by their routed primary; hosts not yet seen
// advertising mcsbin/1 keep their chunks on the fallback path. Batch
// failures degrade, never abort: the fallback path has per-chunk
// retries and front-end failover.
func (c *Client) retrieveBin(frontend string, sums []Sum, buf []byte, size int64, budget *retryBudget, w int) []int {
	rest := make([]int, 0, len(sums))
	if c.DisableBin || c.LegacyAPI {
		for i := range sums {
			rest = append(rest, i)
		}
		return rest
	}
	byHost := make(map[string][]int)
	for i, sum := range sums {
		t := c.chunkTarget(frontend, sum)
		if !c.binHost(t) {
			rest = append(rest, i)
			continue
		}
		byHost[t] = append(byHost[t], i)
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	type batch struct {
		host string
		ids  []int
	}
	var batches []batch
	for _, h := range hosts {
		ids := byHost[h]
		per := batchSize(len(ids), w)
		for lo := 0; lo < len(ids); lo += per {
			hi := lo + per
			if hi > len(ids) {
				hi = len(ids)
			}
			batches = append(batches, batch{h, ids[lo:hi]})
		}
	}
	if len(batches) == 0 {
		return rest
	}
	if w > len(batches) {
		w = len(batches)
	}
	var mu sync.Mutex
	runWindow(w, len(batches), func(b int) error {
		missed := c.getChunkBatch(batches[b].host, batches[b].ids, sums, buf, size, budget)
		if len(missed) > 0 {
			mu.Lock()
			rest = append(rest, missed...)
			mu.Unlock()
		}
		return nil
	})
	sort.Ints(rest)
	return rest
}

// getChunkBatch fetches one batch of chunks from host over the binary
// dialect. Frame payloads land directly in their file slots — the CRC
// and MD5 verification happen during that single copy off the socket.
// It returns the indices still unfetched: the whole batch after an
// exhausted retry, or the individual chunks the host answered
// not-found frames for (the fallback path then walks the replicas).
func (c *Client) getChunkBatch(host string, ids []int, sums []Sum, buf []byte, size int64, budget *retryBudget) []int {
	req := make([]Sum, len(ids))
	for k, i := range ids {
		req[k] = sums[i]
	}
	body := encodeBinGet(req)
	sp := budget.span.StartChild(tracing.CompClient, tracing.SpanChunkGet)
	sp.Annotate("chunk", sums[ids[0]].String())
	sp.Annotate("dialect", BinV1)
	sp.AnnotateInt("count", int64(len(ids)))
	var missed []int
	var got int64
	err := c.doRetry(budget, sp,
		func() (*http.Request, error) {
			r, err := http.NewRequest(http.MethodPost, host+"/v1/bin/get", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			r.Header.Set("Content-Type", binContentType)
			c.setIdentity(r)
			c.setAPIVersion(r, host)
			return r, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			c.noteBin(host, resp.Header)
			if resp.StatusCode != http.StatusOK {
				return decodeError(resp)
			}
			missed = missed[:0]
			got = 0
			for _, i := range ids {
				lo := int64(i) * ChunkSize
				hi := lo + ChunkSize
				if hi > size {
					hi = size
				}
				f, err := readBinFrame(resp.Body, buf[lo:hi])
				if err != nil {
					c.Metrics.refetch()
					return &corruptError{err: err}
				}
				if f.notFound {
					missed = append(missed, i)
					continue
				}
				if f.sum != sums[i] || f.got != sums[i] || int64(len(f.payload)) != hi-lo {
					c.Metrics.refetch()
					return &corruptError{err: fmt.Errorf("mcsbin frame mismatch for chunk %d", i)}
				}
				got += int64(len(f.payload))
			}
			return nil
		})
	sp.AnnotateInt("bytes", got)
	sp.EndErr(err)
	if err != nil {
		return ids
	}
	return missed
}

// getChunk downloads and verifies one chunk; truncated or corrupted
// bodies count as transient failures and are re-fetched. The body is
// read into a pooled scratch buffer and the verified bytes are
// appended into dst (in place when dst has the capacity — the
// concurrent download path passes the chunk's slot in the assembled
// file, making the steady-state read allocation-free).
func (c *Client) getChunk(frontend string, sum Sum, budget *retryBudget, dst []byte) ([]byte, error) {
	var out []byte
	tries, base := 0, frontend
	sp := budget.span.StartChild(tracing.CompClient, tracing.SpanChunkGet)
	sp.Annotate("chunk", sum.String())
	err := c.doRetry(budget, sp,
		func() (*http.Request, error) {
			// The first attempt goes straight to the chunk's primary
			// owner when the client knows the ring (saving the
			// forwarding hop); retries fall back to the assigned
			// front-end, which can serve from any live replica.
			tries++
			base = frontend
			if tries == 1 {
				base = c.chunkTarget(frontend, sum)
			}
			req, err := http.NewRequest(http.MethodGet, c.apiPath(base, "/chunk/"+sum.String()), nil)
			if err != nil {
				return nil, err
			}
			c.setIdentity(req)
			c.setAPIVersion(req, base)
			return req, nil
		},
		func(resp *http.Response) error {
			defer resp.Body.Close()
			if c.checkLegacy(base, resp) {
				io.Copy(io.Discard, resp.Body)
				return errLegacyRetry
			}
			if resp.StatusCode != http.StatusOK {
				return decodeError(resp)
			}
			scratch := getChunkBuf()
			defer putChunkBuf(scratch)
			n, overflow, err := readBody(resp.Body, *scratch)
			if err != nil {
				c.Metrics.refetch()
				return &corruptError{err: err}
			}
			data := (*scratch)[:n]
			if overflow || SumBytes(data) != sum {
				c.Metrics.refetch()
				return &corruptError{err: fmt.Errorf("chunk digest mismatch (%d bytes)", n)}
			}
			out = append(dst[:0], data...)
			return nil
		})
	sp.AnnotateInt("bytes", int64(len(out)))
	sp.EndErr(err)
	return out, err
}
