package storage

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMetaStandbyReplication: a durable standby pulls the primary's
// WAL stream, converges to identical state, rejects writes with a
// retryable unavailability error, and recovers its replicated state
// from its own WAL after a restart.
func TestMetaStandbyReplication(t *testing.T) {
	primary := openDurableMeta(t, t.TempDir())
	srv := httptest.NewServer(primary.Handler())
	defer srv.Close()

	sdir := t.TempDir()
	standby := openDurableMeta(t, sdir)
	puller := NewMetaStandby(standby, srv.URL, nil, 5*time.Millisecond)
	puller.Start()
	defer puller.Close()

	var urls []string
	for i := 0; i < 40; i++ {
		urls = append(urls, metaUpload(t, primary, 30, i, 1+uint64(i%4)))
	}
	if _, _, err := primary.Unlink(1, urls[0]); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "standby catch-up", func() bool { return standby.LastSeq() == primary.LastSeq() })
	requireSameState(t, primary, standby, "replicated state")

	// Writes must bounce with the retryable sentinel.
	data := testChunk(30, 999)
	_, err := standby.StoreCheck(StoreCheckRequest{UserID: 1, Name: "w", Size: 1, FileMD5: SumBytes(data).String()})
	if !IsUnavailable(err) {
		t.Fatalf("standby write: err = %v, want ErrUnavailable", err)
	}
	if err := standby.Commit(0, urls[1], nil); !IsUnavailable(err) {
		t.Fatalf("standby commit: err = %v, want ErrUnavailable", err)
	}
	// Reads are served from replicated state.
	if _, err := standby.LookupURL(urls[1]); err != nil {
		t.Fatalf("standby read: %v", err)
	}
	st := standby.WALStatus()
	if !st.Standby || !st.Durable || st.Primary != srv.URL {
		t.Fatalf("standby status = %+v", st)
	}

	// Restart the standby: the replicated records came back from its
	// own WAL, and a promoted replica accepts writes.
	puller.Close()
	if err := standby.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	reborn := openDurableMeta(t, sdir)
	requireSameState(t, primary, reborn, "standby restart")
	reborn.Promote()
	if _, err := reborn.StoreCheck(StoreCheckRequest{UserID: 7, Name: "p", Size: 1, FileMD5: SumBytes(data).String()}); err != nil {
		t.Fatalf("promoted standby write: %v", err)
	}
}

// TestMetaStandbySnapshotReseed: a standby whose position predates the
// primary's in-memory tail (here: a primary restarted after a
// checkpoint, so its tail is empty) is reseeded with a full snapshot.
func TestMetaStandbySnapshotReseed(t *testing.T) {
	pdir := t.TempDir()
	primary := openDurableMeta(t, pdir)
	for i := 0; i < 20; i++ {
		metaUpload(t, primary, 31, i, 1)
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := primary.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	primary = openDurableMeta(t, pdir) // tail now empty, lastSeq > 0
	srv := httptest.NewServer(primary.Handler())
	defer srv.Close()

	standby := openDurableMeta(t, t.TempDir())
	puller := NewMetaStandby(standby, srv.URL, nil, 5*time.Millisecond)
	puller.Start()
	defer puller.Close()

	waitFor(t, "snapshot reseed", func() bool {
		return standby.LastSeq() == primary.LastSeq() && puller.resets.Load() > 0
	})
	requireSameState(t, primary, standby, "reseeded state")
	// After the reseed, incremental records flow normally.
	metaUpload(t, primary, 31, 100, 2)
	waitFor(t, "incremental after reseed", func() bool { return standby.LastSeq() == primary.LastSeq() })
	requireSameState(t, primary, standby, "incremental after reseed")
}

// TestMetaPull covers the primary-side batch logic directly: caught-up
// pulls return nothing, tail pulls return contiguous batches honoring
// the limit, and pre-tail positions get a snapshot.
func TestMetaPull(t *testing.T) {
	m := NewMetadata("fe")
	for i := 0; i < 10; i++ {
		metaReserveOnly(t, m, 32, i)
	}
	if resp := m.Pull(MetaPullRequest{After: 10}); len(resp.Records) != 0 || resp.Snapshot != nil || resp.LastSeq != 10 {
		t.Fatalf("caught-up pull = %+v", resp)
	}
	resp := m.Pull(MetaPullRequest{After: 3, Limit: 4})
	if len(resp.Records) != 4 || resp.Records[0].Seq != 4 || resp.Records[3].Seq != 7 {
		t.Fatalf("tail pull = %+v", resp)
	}
	// Simulate a trimmed tail: records 1..5 gone.
	m.mu.Lock()
	m.tail = m.tail[5:]
	m.mu.Unlock()
	resp = m.Pull(MetaPullRequest{After: 2})
	if resp.Snapshot == nil || resp.SnapshotSeq != 10 {
		t.Fatalf("pre-tail pull should reseed, got %+v", resp)
	}
}

// TestApplyReplicatedGap: a non-contiguous batch is rejected so the
// puller re-pulls instead of silently skipping mutations.
func TestApplyReplicatedGap(t *testing.T) {
	src := NewMetadata()
	for i := 0; i < 6; i++ {
		metaReserveOnly(t, src, 33, i)
	}
	src.mu.RLock()
	recs := append([]MetaWALRecord(nil), src.tail...)
	src.mu.RUnlock()

	dst := NewMetadata()
	// Replicated batches only land on standbys; a non-standby must
	// reject them outright (promotion vs. pull-loop race).
	if _, err := dst.ApplyReplicated(recs[:3]); err == nil {
		t.Fatal("ApplyReplicated on a non-standby succeeded")
	}
	dst.SetStandby("src")
	if n, err := dst.ApplyReplicated(recs[:3]); err != nil || n != 3 {
		t.Fatalf("contiguous apply: n=%d err=%v", n, err)
	}
	// A gap (skipping record 4) must abort without applying anything.
	if _, err := dst.ApplyReplicated(recs[4:]); err == nil {
		t.Fatal("gap apply succeeded")
	}
	if dst.LastSeq() != 3 {
		t.Fatalf("lastSeq after gap = %d, want 3", dst.LastSeq())
	}
	// Re-applying an overlapping batch skips the old, applies the new.
	if n, err := dst.ApplyReplicated(recs[1:5]); err != nil || n != 2 {
		t.Fatalf("overlapping apply: n=%d err=%v", n, err)
	}
	if dst.LastSeq() != 5 {
		t.Fatalf("lastSeq after overlap = %d, want 5", dst.LastSeq())
	}
}

// TestMetaTailTrim: the tail buffer stays bounded and contiguous under
// sustained writes.
func TestMetaTailTrim(t *testing.T) {
	m := NewMetadata()
	m.mu.Lock()
	for i := 0; i < metaTailCap+100; i++ {
		rec := MetaWALRecord{
			Op: walOpReserve, User: 1, URL: fmt.Sprintf("/tt/%d", i),
			Name: "t", Size: 1, FileMD5: SumBytes([]byte(fmt.Sprint(i))).String(),
			URLSeq: int64(i + 1),
		}
		if _, err := m.logApplyLocked(&rec); err != nil {
			m.mu.Unlock()
			t.Fatal(err)
		}
	}
	if len(m.tail) > metaTailCap {
		m.mu.Unlock()
		t.Fatalf("tail grew to %d (cap %d)", len(m.tail), metaTailCap)
	}
	for i := 1; i < len(m.tail); i++ {
		if m.tail[i].Seq != m.tail[i-1].Seq+1 {
			m.mu.Unlock()
			t.Fatalf("tail not contiguous at %d: %d then %d", i, m.tail[i-1].Seq, m.tail[i].Seq)
		}
	}
	if m.tail[len(m.tail)-1].Seq != m.lastSeq {
		m.mu.Unlock()
		t.Fatal("tail does not end at lastSeq")
	}
	m.mu.Unlock()
}
