package storage

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/randx"
)

// switchHandler lets a test swap (or disable) a node's handler after
// the server is already listening — membership URLs must exist before
// the ReplicatedStores that reference them can be built, and a nil
// handler simulates a node outage (503 on every request).
type switchHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *switchHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type clusterNode struct {
	url     string
	local   *MemStore
	rs      *ReplicatedStore
	handler *switchHandler
	fe      http.Handler
}

// down simulates an outage; up restores the node.
func (n *clusterNode) down() { n.handler.set(nil) }
func (n *clusterNode) up()   { n.handler.set(n.fe) }

// newTestCluster boots n in-process nodes sharing one metadata server,
// each running a ReplicatedStore over the full membership. The health
// breaker trips on the first failure with a short cooldown so outage
// tests don't wait on production timings.
func newTestCluster(t *testing.T, n, replicas, quorum int) ([]*clusterNode, *Metadata) {
	t.Helper()
	nodes := make([]*clusterNode, n)
	peers := make([]string, n)
	for i := range nodes {
		h := &switchHandler{}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		nodes[i] = &clusterNode{url: srv.URL, local: NewMemStore(), handler: h}
		peers[i] = srv.URL
	}
	meta := NewMetadata()
	for _, nd := range nodes {
		rs, err := NewReplicatedStore(ReplicatedConfig{
			Self:        nd.url,
			Peers:       peers,
			Replicas:    replicas,
			WriteQuorum: quorum,
			Local:       nd.local,
			Health:      cluster.NewHealth(1, 50*time.Millisecond),
			RepairEvery: -1, // tests drive RepairNow directly
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.rs = rs
		t.Cleanup(func() { rs.Close() })
		fe := NewFrontEnd(FrontEndConfig{Store: rs, Meta: meta})
		nd.fe = fe.Handler()
		nd.up()
	}
	return nodes, meta
}

func replChunk(seed uint64, n int) (Sum, []byte) {
	src := randx.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src.Uint64())
	}
	return SumBytes(b), b
}

// nodeByURL maps an owner URL back to its test node.
func nodeByURL(t *testing.T, nodes []*clusterNode, url string) *clusterNode {
	t.Helper()
	for _, nd := range nodes {
		if nd.url == url {
			return nd
		}
	}
	t.Fatalf("no node for %s", url)
	return nil
}

func TestReplicatedPutReachesAllOwners(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 3, 2)
	sum, data := replChunk(1, 32<<10)

	if err := nodes[0].rs.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	// Quorum acks before the slowest replica lands; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := 0
		for _, nd := range nodes {
			if nd.local.Has(sum) {
				n++
			}
		}
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chunk on %d/3 nodes after quorum put", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every node serves the chunk, byte-identical.
	for i, nd := range nodes {
		got, err := nd.rs.Get(sum)
		if err != nil {
			t.Fatalf("node %d get: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("node %d returned different bytes", i)
		}
	}
}

func TestReplicatedGetForwardsAndFailsOver(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 2, 2)
	sum, data := replChunk(2, 16<<10)
	owners := nodes[0].rs.Owners(sum)
	if len(owners) != 2 {
		t.Fatalf("owners = %d, want 2", len(owners))
	}
	// Find the one node that does NOT own the chunk.
	var outsider *clusterNode
	for _, nd := range nodes {
		if nd.url != owners[0] && nd.url != owners[1] {
			outsider = nd
		}
	}
	if err := nodeByURL(t, nodes, owners[0]).rs.Put(sum, data); err != nil {
		t.Fatal(err)
	}

	// A non-owner serves the chunk by forwarding to an owner.
	got, err := outsider.rs.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("forwarded get returned different bytes")
	}

	// Primary owner dies: the read fails over to the secondary.
	nodeByURL(t, nodes, owners[0]).down()
	got, err = outsider.rs.Get(sum)
	if err != nil {
		t.Fatalf("get with primary down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover get returned different bytes")
	}
}

func TestReplicatedReadRepair(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 2, 2)
	sum, data := replChunk(3, 8<<10)
	owners := nodes[0].rs.Owners(sum)
	first := nodeByURL(t, nodes, owners[0])
	second := nodeByURL(t, nodes, owners[1])

	// The chunk exists only on the secondary — as if the primary was
	// down during the write.
	if err := second.local.Put(sum, data); err != nil {
		t.Fatal(err)
	}
	got, err := first.rs.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different bytes")
	}
	if !first.local.Has(sum) {
		t.Fatal("read repair did not restore the primary's copy")
	}
}

func TestReplicatedOutageQuorumAndRepair(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 3, 2)
	sum, data := replChunk(4, 8<<10)

	// One replica down: W=2 of N=3 still acks the write.
	nodes[2].down()
	if err := nodes[0].rs.Put(sum, data); err != nil {
		t.Fatalf("put with one node down: %v", err)
	}
	// The failed replica lands in the repair queue (possibly from the
	// post-quorum straggler drain).
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].rs.Underreplicated() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failed replica never queued for repair")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Node recovers; after the breaker cooldown a repair pass
	// re-streams the chunk and drains the gauge.
	nodes[2].up()
	time.Sleep(60 * time.Millisecond) // breaker cooldown (50ms in tests)
	deadline = time.Now().Add(2 * time.Second)
	for nodes[0].rs.Underreplicated() > 0 {
		nodes[0].rs.RepairNow()
		if time.Now().After(deadline) {
			t.Fatalf("underreplicated = %d after repair", nodes[0].rs.Underreplicated())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !nodes[2].local.Has(sum) {
		t.Fatal("repair did not restore the missing replica")
	}

	// Two replicas down: the quorum is unreachable and the write fails
	// with the retryable sentinel.
	nodes[1].down()
	nodes[2].down()
	sum2, data2 := replChunk(5, 4<<10)
	err := nodes[0].rs.Put(sum2, data2)
	if err == nil {
		t.Fatal("put succeeded with quorum unreachable")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("quorum failure = %v, want ErrUnavailable", err)
	}
}

func TestReplicatedMultiHasBatches(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, 2, 2)

	// Spread chunks directly into single nodes' local stores so only
	// the batched remote stat can find them.
	var sums []Sum
	for i := 0; i < 9; i++ {
		sum, data := replChunk(uint64(10+i), 4<<10)
		owners := nodes[0].rs.Owners(sum)
		if err := nodeByURL(t, nodes, owners[len(owners)-1]).local.Put(sum, data); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}
	missing, _ := replChunk(99, 4<<10)
	sums = append(sums, missing)

	for i, nd := range nodes {
		got := nd.rs.MultiHas(sums)
		for j := range sums[:len(sums)-1] {
			if !got[j] {
				t.Errorf("node %d: chunk %d reported missing", i, j)
			}
		}
		if got[len(sums)-1] {
			t.Errorf("node %d: absent chunk reported present", i)
		}
	}
}

// TestClusterEndToEndOutage drives the real client protocol against a
// 3-node cluster (node 0 is the advertised front-end; all three hold
// replicas) and checks that a single-node outage mid-lifetime loses no
// acknowledged data.
func TestClusterEndToEndOutage(t *testing.T) {
	nodes, meta := newTestCluster(t, 3, 2, 2)
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()
	meta.AddFrontEnd(nodes[0].url)

	pol := fastRetry
	client := NewClient(ClientConfig{
		MetaURL:  metaSrv.URL,
		UserID:   1,
		DeviceID: 1,
		Retry:    &pol,
	})

	data := make([]byte, 3*ChunkSize+777)
	src := randx.New(42)
	for i := range data {
		data[i] = byte(src.Uint64())
	}
	res, err := client.StoreFile("cluster.bin", data)
	if err != nil {
		t.Fatal(err)
	}

	// With N=2 over 3 nodes every chunk survives any single outage.
	for kill := 1; kill < 3; kill++ {
		nodes[kill].down()
		got, err := client.RetrieveFile(res.URL)
		if err != nil {
			t.Fatalf("retrieve with node %d down: %v", kill, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("retrieve with node %d down returned different bytes", kill)
		}
		nodes[kill].up()
		time.Sleep(60 * time.Millisecond) // let the breaker cooldown lapse
	}
}
