package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/metrics"
)

// MetaWAL is the metadata server's write-ahead log: the durability
// layer that makes every acknowledged metadata mutation — URL
// reservations, dedup links, commits, unlinks — survive SIGKILL, the
// way DiskStore already protects chunk payloads. The mechanism is the
// same group-commit design:
//
//   - Every mutation appends one framed record (seq | len | crc32 |
//     JSON payload) to the active segment file and then waits for an
//     fsync to cover its LSN. Concurrent writers piggyback on one
//     another's fsyncs, so the fsync rate stays roughly constant as
//     commit concurrency grows.
//   - A checkpoint serializes the full catalog with the snapshot
//     codec (persist.go), writes it atomically (temp + fsync + rename
//     + directory fsync), seals the active segment, and deletes the
//     sealed segments the checkpoint now covers. Rotation happens
//     only at checkpoints, so sealed segments are always fsynced
//     before they stop being written — a crash can tear only the
//     final segment.
//   - Open-time recovery loads the checkpoint, replays every WAL
//     record with a later sequence number, and truncates a torn final
//     record exactly like DiskStore's segment scan.
//
// The log is also the replication stream: committed records feed the
// in-memory tail buffer that standby nodes pull over /v1/meta/wal/pull
// (see metareplicate.go).
type MetaWAL struct {
	dir string

	mu         sync.Mutex
	active     *os.File
	activeID   uint32
	activeSize int64
	sealed     []sealedSeg
	cpSeq      uint64 // sequence number covered by checkpoint.json
	closed     bool

	// Group-commit state, mirroring DiskStore: appendLSN counts bytes
	// ever appended across segments, syncedLSN how far fsyncs cover.
	appendLSN atomic.Int64
	syncedLSN atomic.Int64
	syncMu    sync.Mutex

	appends     atomic.Int64
	bytesLogged atomic.Int64
	fsyncs      atomic.Int64
	checkpoints atomic.Int64
	recovery    time.Duration
	truncated   int64 // torn-tail bytes discarded at open

	fsyncHist *metrics.Histogram // nil until Instrument
}

// sealedSeg is one closed segment file awaiting checkpoint pruning.
type sealedSeg struct {
	id      uint32
	lastSeq uint64 // highest record sequence the segment holds
}

// Metadata WAL record operations. Each record is one logical mutation;
// replaying them in sequence order reproduces the in-memory state
// exactly (applyRecordLocked is the single mutation path shared by
// live operations, recovery replay, and standby apply).
const (
	walOpReserve = "reserve" // StoreCheck miss: reserve URL + link user
	walOpLink    = "link"    // StoreCheck dedup hit: link existing file
	walOpCommit  = "commit"  // finalize an upload (chunk digests land)
	walOpUnlink  = "unlink"  // remove a file from one user's namespace
	walOpEpoch   = "epoch"   // leadership fence: a promotion bumped the epoch
)

// MetaWALRecord is one logged metadata mutation; it doubles as the
// wire form streamed to standby nodes.
type MetaWALRecord struct {
	Seq uint64 `json:"seq"`
	// Epoch is the leadership term the record was written under. It
	// rides inside the JSON payload (covered by the frame CRC) so the
	// 16-byte header layout is unchanged and old segments decode with
	// epoch 0. A walOpEpoch record is how the epoch rises; every later
	// record carries the new value, so replaying a WAL reproduces the
	// epoch along with the catalog.
	Epoch     uint64   `json:"epoch,omitempty"`
	Op        string   `json:"op"`
	User      uint64   `json:"user,omitempty"`
	URL       string   `json:"url,omitempty"`
	Name      string   `json:"name,omitempty"`
	Size      int64    `json:"size,omitempty"`
	FileMD5   string   `json:"file_md5,omitempty"`
	ChunkMD5s []string `json:"chunk_md5s,omitempty"`
	URLSeq    int64    `json:"url_seq,omitempty"`
}

const (
	walHeaderSize = 16 // seq uint64 | len uint32 | crc32 uint32
	walSegPattern = "wal-%08d.mwal"
	// maxWALRecord bounds one record's payload; anything larger in a
	// header is framing damage, not a real record.
	maxWALRecord = 8 << 20
	// checkpointName is the atomic snapshot file beside the segments.
	checkpointName = "checkpoint.json"
)

func walSegName(id uint32) string { return fmt.Sprintf(walSegPattern, id) }

// encodeWALHeader frames one record; the CRC covers the first 12
// header bytes and the payload, catching torn and bit-flipped records
// in one check.
func encodeWALHeader(hdr []byte, seq uint64, payload []byte) {
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
}

// checkpointFile is the on-disk form of a metadata checkpoint: the
// snapshot codec plus the WAL sequence number it covers.
type checkpointFile struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	// Epoch is the leadership term at checkpoint time; absent (0) in
	// checkpoints written before fencing existed.
	Epoch uint64       `json:"epoch,omitempty"`
	Meta  metaSnapshot `json:"meta"`
}

// OpenDurableMetadata opens (creating if needed) a WAL-backed metadata
// server rooted at dir: state is the latest checkpoint plus a replay
// of every WAL record past it, with a torn final record truncated
// away. Every subsequent mutation is disk-covered before it is
// acknowledged.
func OpenDurableMetadata(dir string) (*Metadata, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: metawal: %w", err)
	}
	m := NewMetadata()

	cp, err := loadCheckpoint(filepath.Join(dir, checkpointName))
	if err != nil {
		return nil, err
	}
	if cp != nil {
		if err := m.restoreLocked(cp.Meta); err != nil {
			return nil, fmt.Errorf("storage: metawal: checkpoint: %w", err)
		}
		m.lastSeq = cp.Seq
		m.epoch = cp.Epoch
	}

	w := &MetaWAL{dir: dir}
	if cp != nil {
		w.cpSeq = cp.Seq
	}
	replay, err := w.recover()
	if err != nil {
		return nil, err
	}
	for i := range replay {
		rec := replay[i]
		if rec.Seq <= m.lastSeq {
			continue // covered by the checkpoint (prune raced a crash)
		}
		if err := m.applyRecordLocked(&rec); err != nil {
			return nil, fmt.Errorf("storage: metawal: replay seq %d: %w", rec.Seq, err)
		}
		m.lastSeq = rec.Seq
		m.tailAppendLocked(rec)
	}
	w.recovery = time.Since(start)
	m.wal = w
	return m, nil
}

// loadCheckpoint reads a checkpoint file; a missing file is a fresh
// start, not an error.
func loadCheckpoint(path string) (*checkpointFile, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cp checkpointFile
	if err := json.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("storage: metawal: corrupt checkpoint: %w", err)
	}
	if cp.Version != snapshotVersion {
		return nil, fmt.Errorf("storage: metawal: unsupported checkpoint version %d", cp.Version)
	}
	return &cp, nil
}

// recover scans the WAL segments in id order, returning every decoded
// record. Only the final segment may hold a torn record (earlier ones
// were fsynced when they were sealed at a checkpoint); the torn tail
// is truncated so appends resume at a clean offset.
func (w *MetaWAL) recover() ([]MetaWALRecord, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, e := range entries {
		var id uint32
		if _, err := fmt.Sscanf(e.Name(), walSegPattern, &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var records []MetaWALRecord
	for i, id := range ids {
		final := i == len(ids)-1
		segRecs, size, err := w.scanSegment(id, final)
		if err != nil {
			return nil, err
		}
		records = append(records, segRecs...)
		if final {
			// Resume appending into the last segment.
			f, err := os.OpenFile(filepath.Join(w.dir, walSegName(id)), os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			w.active = f
			w.activeID = id
			w.activeSize = size
		} else {
			last := w.cpSeq
			if n := len(segRecs); n > 0 {
				last = segRecs[n-1].Seq
			}
			w.sealed = append(w.sealed, sealedSeg{id: id, lastSeq: last})
		}
	}
	if w.active == nil {
		if err := w.newActiveLocked(); err != nil {
			return nil, err
		}
	}
	w.appendLSN.Store(w.activeSize)
	w.syncedLSN.Store(w.activeSize)
	return records, nil
}

// scanSegment decodes one segment file. final marks the last segment,
// whose torn tail (if any) is truncated rather than rejected.
func (w *MetaWAL) scanSegment(id uint32, final bool) ([]MetaWALRecord, int64, error) {
	path := filepath.Join(w.dir, walSegName(id))
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	fileSize := info.Size()

	var records []MetaWALRecord
	var off int64
	hdr := make([]byte, walHeaderSize)
	var payload []byte
	for off < fileSize {
		var rec MetaWALRecord
		ok := false
		if fileSize-off >= walHeaderSize {
			if _, err := f.ReadAt(hdr, off); err != nil {
				return nil, 0, err
			}
			seq := binary.LittleEndian.Uint64(hdr[0:8])
			length := binary.LittleEndian.Uint32(hdr[8:12])
			want := binary.LittleEndian.Uint32(hdr[12:16])
			if length <= maxWALRecord && off+walHeaderSize+int64(length) <= fileSize {
				if int(length) > cap(payload) {
					payload = make([]byte, length)
				}
				payload = payload[:length]
				if _, err := f.ReadAt(payload, off+walHeaderSize); err != nil {
					return nil, 0, err
				}
				crc := crc32.ChecksumIEEE(hdr[:12])
				if crc32.Update(crc, crc32.IEEETable, payload) == want {
					if err := json.Unmarshal(payload, &rec); err == nil && rec.Seq == seq {
						ok = true
					}
				}
			}
		}
		if !ok {
			if !final {
				return nil, 0, fmt.Errorf("storage: metawal: corrupt record in sealed segment %s at offset %d", walSegName(id), off)
			}
			// Torn tail from the crash this recovery is healing.
			w.truncated += fileSize - off
			if err := os.Truncate(path, off); err != nil {
				return nil, 0, err
			}
			fileSize = off
			break
		}
		records = append(records, rec)
		off += walHeaderSize + int64(len(payload))
	}
	return records, fileSize, nil
}

// newActiveLocked creates the next segment file and fsyncs the
// directory so the entry survives a crash (caller holds mu, or is
// single-threaded open).
func (w *MetaWAL) newActiveLocked() error {
	id := w.activeID + 1
	if w.active == nil && w.activeID == 0 {
		id = 1
	}
	f, err := os.OpenFile(filepath.Join(w.dir, walSegName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeID = id
	w.activeSize = 0
	return nil
}

// Append writes one framed record to the active segment and returns
// the LSN an fsync must cover for it to be durable. The caller holds
// the Metadata lock, which is what serializes record order with apply
// order; WaitDurable is called after the lock is released.
func (w *MetaWAL) Append(rec *MetaWALRecord) (int64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("storage: metawal: closed")
	}
	buf := make([]byte, walHeaderSize+len(payload))
	encodeWALHeader(buf[:walHeaderSize], rec.Seq, payload)
	copy(buf[walHeaderSize:], payload)
	if _, err := w.active.WriteAt(buf, w.activeSize); err != nil {
		return 0, err
	}
	w.activeSize += int64(len(buf))
	w.appends.Add(1)
	w.bytesLogged.Add(int64(len(buf)))
	return w.appendLSN.Add(int64(len(buf))), nil
}

// WaitDurable blocks until an fsync has covered lsn. Writers arriving
// while another writer's fsync is in flight queue on syncMu and
// usually find their record already covered when they get the lock —
// the same group commit that keeps DiskStore's fsync rate sublinear
// in writer count.
func (w *MetaWAL) WaitDurable(lsn int64) error {
	if lsn == 0 || w.syncedLSN.Load() >= lsn {
		return nil
	}
	start := time.Now()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncedLSN.Load() >= lsn {
		w.observeFsyncWait(start)
		return nil
	}
	w.mu.Lock()
	f := w.active
	cover := w.appendLSN.Load()
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return fmt.Errorf("storage: metawal: closed")
	}
	if d := metaFsyncDelay; d != nil {
		d()
	}
	if err := f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	// Records at or below cover sit either in the file just synced or
	// in a segment fsynced when it was sealed at a checkpoint.
	maxLSN(&w.syncedLSN, cover)
	w.observeFsyncWait(start)
	return nil
}

// metaFsyncDelay, when set, runs inside WaitDurable's fsync path while
// syncMu is held. Test hook: lets the fencing tests stall the disk
// under an in-flight commit the way a sick device would.
var metaFsyncDelay func()

func (w *MetaWAL) observeFsyncWait(start time.Time) {
	if h := w.fsyncHist; h != nil {
		h.ObserveSince(start)
	}
}

// rotateLocked seals the active segment (fsync, so it can never tear)
// and opens the next one; sealSeq records the highest sequence the
// sealed file holds, for checkpoint pruning (caller holds w.mu).
func (w *MetaWAL) rotateLocked(sealSeq uint64) error {
	if err := w.active.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	maxLSN(&w.syncedLSN, w.appendLSN.Load())
	if err := w.active.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, sealedSeg{id: w.activeID, lastSeq: sealSeq})
	w.active = nil
	return w.newActiveLocked()
}

// writeCheckpoint persists the snapshot atomically beside the
// segments: temp file + fsync + rename + directory fsync.
func (w *MetaWAL) writeCheckpoint(snap metaSnapshot, seq, epoch uint64) error {
	tmp, err := os.CreateTemp(w.dir, ".checkpoint-*")
	if err != nil {
		return err
	}
	cp := checkpointFile{Version: snapshotVersion, Seq: seq, Epoch: epoch, Meta: snap}
	err = json.NewEncoder(tmp).Encode(cp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(w.dir, checkpointName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(w.dir)
}

// prune deletes sealed segments fully covered by the checkpoint at
// seq. A crash before (or during) pruning is safe: replay skips
// records at or below the checkpoint sequence, and the next
// checkpoint collects the leftovers.
func (w *MetaWAL) prune(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cpSeq = seq
	w.checkpoints.Add(1)
	kept := w.sealed[:0]
	var first error
	for _, s := range w.sealed {
		if s.lastSeq <= seq {
			if err := os.Remove(filepath.Join(w.dir, walSegName(s.id))); err != nil && !os.IsNotExist(err) && first == nil {
				first = err
				kept = append(kept, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	return first
}

// Close fsyncs and releases the active segment. Call Checkpoint first
// for a clean shutdown; Close alone is still crash-equivalent (the
// WAL replays).
func (w *MetaWAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return err
	}
	w.fsyncs.Add(1)
	maxLSN(&w.syncedLSN, w.appendLSN.Load())
	return w.active.Close()
}

// MetaWALStats is a snapshot of the log's accounting.
type MetaWALStats struct {
	CheckpointSeq uint64        // sequence covered by the checkpoint file
	Segments      int           // segment files on disk (sealed + active)
	Appends       int64         // records appended this process
	BytesLogged   int64         // framed bytes appended this process
	Fsyncs        int64         // fsync syscalls issued (group-committed)
	Checkpoints   int64         // checkpoints taken this process
	Recovery      time.Duration // checkpoint load + replay time at open
	Truncated     int64         // torn-tail bytes discarded at open
}

// Stats returns the current accounting.
func (w *MetaWAL) Stats() MetaWALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return MetaWALStats{
		CheckpointSeq: w.cpSeq,
		Segments:      len(w.sealed) + 1,
		Appends:       w.appends.Load(),
		BytesLogged:   w.bytesLogged.Load(),
		Fsyncs:        w.fsyncs.Load(),
		Checkpoints:   w.checkpoints.Load(),
		Recovery:      w.recovery,
		Truncated:     w.truncated,
	}
}

// Instrument registers the WAL series. Called from
// Metadata.Instrument when a WAL is attached.
func (w *MetaWAL) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("mcs_meta_wal_appends_total", "Metadata WAL records appended.",
		func() float64 { return float64(w.appends.Load()) })
	reg.CounterFunc("mcs_meta_wal_bytes_total", "Metadata WAL bytes appended (headers included).",
		func() float64 { return float64(w.bytesLogged.Load()) })
	reg.CounterFunc("mcs_meta_wal_fsyncs_total", "Metadata WAL fsync syscalls (group-committed).",
		func() float64 { return float64(w.fsyncs.Load()) })
	reg.CounterFunc("mcs_meta_wal_checkpoints_total", "Metadata checkpoints taken.",
		func() float64 { return float64(w.checkpoints.Load()) })
	reg.GaugeFunc("mcs_meta_wal_segments", "Metadata WAL segment files on disk.",
		func() float64 { return float64(w.Stats().Segments) })
	reg.GaugeFunc("mcs_meta_wal_recovery_seconds", "Metadata recovery time at open (checkpoint load + WAL replay).",
		func() float64 { return w.recovery.Seconds() })
	reg.GaugeFunc("mcs_meta_wal_truncated_bytes", "Torn-tail bytes discarded at the last open.",
		func() float64 { return float64(w.truncated) })
	w.fsyncHist = reg.Histogram("mcs_meta_wal_fsync_seconds",
		"Group-commit fsync wait behind one metadata mutation.")
}

// Checkpoint serializes the current catalog, seals the active WAL
// segment, writes the snapshot atomically, and prunes the segments it
// covers. Mutations are paused only for the in-memory serialization
// and rotation; the disk writes happen after the lock drops. A no-op
// when nothing was logged since the last checkpoint.
func (m *Metadata) Checkpoint() error {
	w := m.wal
	if w == nil {
		return nil
	}
	m.mu.Lock()
	seq := m.lastSeq
	epoch := m.epoch
	w.mu.Lock()
	if seq == w.cpSeq {
		w.mu.Unlock()
		m.mu.Unlock()
		return nil
	}
	snap := m.snapshotLocked()
	err := w.rotateLocked(seq)
	w.mu.Unlock()
	m.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.writeCheckpoint(snap, seq, epoch); err != nil {
		return err
	}
	return w.prune(seq)
}

// CloseWAL checkpoints and closes the log; the metadata server keeps
// serving from memory but no longer persists (used at shutdown).
func (m *Metadata) CloseWAL() error {
	if m.wal == nil {
		return nil
	}
	if err := m.Checkpoint(); err != nil {
		return err
	}
	return m.wal.Close()
}

// WAL exposes the attached log, nil for a RAM-only metadata server.
func (m *Metadata) WAL() *MetaWAL { return m.wal }

// LastSeq returns the sequence number of the newest applied mutation.
func (m *Metadata) LastSeq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lastSeq
}
